// Ablation A3: cost of keyed header location vs volume fill.
//
// The locator probes pseudorandom candidates until it finds a free block
// (create) or the matching signature (open). Expected probes follow a
// geometric distribution with success probability (1 - fill): at 50% fill
// ~2 probes, at 90% ~10, at 99% ~100. This bounds the overhead StegFS pays
// for having no central index — negligible against whole-file I/O.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "blockdev/mem_block_device.h"
#include "cache/buffer_cache.h"
#include "core/hidden_object.h"
#include "fs/bitmap.h"
#include "util/random.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Ablation A3: Header Locator Probe Counts vs Volume Fill",
      "probes to create+reopen a hidden object at increasing occupancy");

  Layout layout = Layout::Compute(1024, 65536, 1024);  // 64 MB volume
  std::printf("%-10s %10s %10s %10s %12s\n", "fill", "mean", "p50", "p99",
              "max probes");

  for (double fill : {0.0, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    MemBlockDevice dev(layout.block_size, layout.num_blocks);
    BufferCache cache(&dev, 512);
    BlockBitmap bitmap(layout);
    Xoshiro rng(7);

    // Pre-fill the data region to the target occupancy.
    uint64_t target =
        static_cast<uint64_t>(layout.data_blocks() * fill);
    for (uint64_t i = 0; i < target; ++i) {
      auto b = bitmap.AllocateByPolicy(AllocPolicy::kRandom, &rng);
      if (!b.ok()) break;
    }

    HiddenVolume vol;
    vol.cache = &cache;
    vol.bitmap = &bitmap;
    vol.layout = layout;
    vol.params = StegParams{};
    vol.params.free_pool_max = 0;  // isolate the locator cost
    vol.rng = &rng;
    vol.probe_limit = 100000;

    std::vector<uint32_t> probes;
    const int kObjects = 200;
    for (int i = 0; i < kObjects; ++i) {
      std::string name = "probe-obj-" + std::to_string(i);
      std::string key = "probe-key-" + std::to_string(i);
      auto obj = HiddenObject::Create(vol, name, key, HiddenType::kFile);
      if (!obj.ok()) break;
      probes.push_back((*obj)->last_probe_count());
      (void)(*obj)->Sync();
      // Reopen: same probe distribution applies to lookups.
      auto reopened = HiddenObject::Open(vol, name, key);
      if (reopened.ok()) probes.push_back((*reopened)->last_probe_count());
    }
    if (probes.empty()) continue;
    std::sort(probes.begin(), probes.end());
    double mean = 0;
    for (uint32_t p : probes) mean += p;
    mean /= probes.size();
    std::printf("%-10.2f %10.2f %10u %10u %12u\n", fill, mean,
                probes[probes.size() / 2], probes[probes.size() * 99 / 100],
                probes.back());
  }

  std::printf("\nGeometric-law check: mean ~ 1/(1-fill); even at 99%% fill "
              "the locator costs\n~100 block probes, a fraction of one file's "
              "I/O.\n");
  bench::PrintFooter();
  return 0;
}
