// Aggregate ops/sec scaling of the concurrency engine: K OS threads, each a
// distinct user session, driving one mounted StegFs volume with a mixed
// read-heavy hidden-file workload (7 whole-file reads : 1 partial rewrite).
//
// The device is an in-memory volume throttled to a fixed per-block service
// latency, so — exactly as on a real disk — aggregate throughput grows with
// concurrency only if sessions can overlap their device waits. That is what
// the sharded cache + per-session locking buy: pre-engine, the stack
// serialized every block access behind one structure.
//
// Output: a table on stdout plus BENCH_concurrency.json (machine-readable,
// archived by CI). Acceptance floor for the engine: >2x aggregate ops/sec
// at 8 threads vs 1 thread.
//
// --durability=journal additionally runs the DURABLE-WRITE scaling leg
// (ISSUE 9): K sessions issuing journaled plain WriteFile commits against
// a device whose Sync() costs real wall-clock time (the fdatasync
// stand-in). Aggregate durable ops/sec grows with concurrency only if
// sessions share barrier sequences — which is exactly what journal group
// commit buys: concurrent transactions merge into one record under one
// barrier triple. The leg lands as a "durable" section in the same JSON;
// acceptance floor (multi-core runners): >= 2x at 8 sessions vs 1.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/throttled_block_device.h"
#include "core/stegfs.h"
#include "obs/metrics.h"
#include "util/random.h"

using namespace stegfs;

namespace {

constexpr uint32_t kBlockSize = 1024;
constexpr uint64_t kNumBlocks = 64 << 10;  // 64 MB volume
constexpr int kMaxUsers = 16;
constexpr int kFilesPerUser = 4;
constexpr size_t kFileBytes = 64 << 10;  // 64 KB: working set >> cache
constexpr int kOpsPerThread = 96;
constexpr auto kLatency = std::chrono::microseconds(40);

std::string Uid(int t) { return "user" + std::to_string(t); }
std::string Uak(int t) { return "uak" + std::to_string(t); }
std::string Obj(int f) { return "file" + std::to_string(f); }

struct LevelResult {
  int threads = 0;
  int total_ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  double speedup = 0;
  // Per-level hidden-op latency percentiles (us), from the mount's
  // histogram deltas across the level.
  double read_p50_us = 0;
  double read_p99_us = 0;
  double write_p50_us = 0;
  double write_p99_us = 0;
};

// The mount (and so its registry) lives across all levels; per-level
// percentiles come from bucket deltas. Bucket counts are monotonic, so
// the difference is exactly the level's samples. `max` is not
// delta-able — carry the running max, which only loosens Percentile()'s
// clamp, never the bucket math.
obs::HistogramSnapshot Delta(const obs::HistogramSnapshot& after,
                             const obs::HistogramSnapshot& before) {
  obs::HistogramSnapshot d;
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  d.max = after.max;
  for (size_t i = 0; i < d.buckets.size(); ++i) {
    d.buckets[i] = after.buckets[i] - before.buckets[i];
  }
  return d;
}

obs::HistogramSnapshot HistOrEmpty(const obs::RegistrySnapshot& snap,
                                   const char* name) {
  const obs::HistogramSnapshot* h = snap.histogram(name);
  return h != nullptr ? *h : obs::HistogramSnapshot{};
}

double Us(uint64_t ns) { return static_cast<double>(ns) / 1e3; }

// --- durable-write scaling leg (--durability=journal) -------------------

constexpr int kDurableOpsPerThread = 48;
constexpr size_t kDurableWriteBytes = 3 << 10;  // ~3 KB: a few-block txn
constexpr auto kSyncLatency = std::chrono::microseconds(400);

struct DurableResult {
  int threads = 0;
  int total_ops = 0;
  double seconds = 0;
  double ops_per_sec = 0;
  double speedup = 0;
  uint64_t txns = 0;     // group-commit txns this level
  uint64_t batches = 0;  // batch records this level
};

// Runs the durable leg on its own volume (a fresh mount per call keeps it
// independent of the hidden-mix leg's cache state). Returns false on any
// failed operation.
bool RunDurableLeg(std::vector<DurableResult>* results) {
  MemBlockDevice raw(kBlockSize, kNumBlocks);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 2;
  fo.params.dummy_file_avg_bytes = 64 << 10;
  fo.entropy = "bench-concurrency-durable";
  fo.journal_blocks = 64;
  if (!StegFs::Format(&raw, fo).ok()) return false;

  // Reads/writes stay cheap; the barrier is what costs — group commit's
  // whole value is amortizing that cost across sessions.
  ThrottledBlockDevice dev(&raw, std::chrono::microseconds(2),
                           std::chrono::microseconds(2), kSyncLatency);
  StegFsOptions so;
  so.mount.durability = Durability::kJournal;
  auto mounted = StegFs::Mount(&dev, so);
  if (!mounted.ok()) {
    std::fprintf(stderr, "durable mount failed: %s\n",
                 mounted.status().ToString().c_str());
    return false;
  }
  StegFs* fs = mounted->get();

  std::printf("\ndurable-write scaling (journal group commit, %lld us "
              "sync barrier):\n",
              static_cast<long long>(kSyncLatency.count()));
  std::printf("%-10s%12s%10s%12s%10s%12s%12s\n", "threads", "ops", "seconds",
              "ops/sec", "speedup", "txns", "batches");
  const int kDurableLevels[] = {1, 2, 4, 8};
  for (int level : kDurableLevels) {
    journal::JournalStats before = fs->plain()->journal()->stats();
    std::vector<std::thread> threads;
    std::atomic<int> failed_ops{0};
    auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < level; ++t) {
      threads.emplace_back([fs, level, t, &failed_ops] {
        Xoshiro rng(level * 7000 + t);
        std::string content(kDurableWriteBytes, '\0');
        for (int op = 0; op < kDurableOpsPerThread; ++op) {
          rng.FillBytes(reinterpret_cast<uint8_t*>(content.data()),
                        content.size());
          std::string path = "/dur_l" + std::to_string(level) + "_t" +
                             std::to_string(t) + "_f" + std::to_string(op % 4);
          if (!fs->plain()->WriteFile(path, content).ok()) {
            failed_ops.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    auto end = std::chrono::steady_clock::now();
    if (failed_ops.load() != 0) {
      std::fprintf(stderr, "%d durable op(s) failed at %d threads\n",
                   failed_ops.load(), level);
      return false;
    }
    journal::JournalStats after = fs->plain()->journal()->stats();

    DurableResult r;
    r.threads = level;
    r.total_ops = level * kDurableOpsPerThread;
    r.seconds = std::chrono::duration<double>(end - start).count();
    r.ops_per_sec = r.total_ops / r.seconds;
    r.speedup = results->empty()
                    ? 1.0
                    : r.ops_per_sec / results->front().ops_per_sec;
    r.txns = after.group_txns - before.group_txns;
    r.batches = after.group_batches - before.group_batches;
    results->push_back(r);
    std::printf("%-10d%12d%10.3f%12.1f%9.2fx%12llu%12llu\n", r.threads,
                r.total_ops, r.seconds, r.ops_per_sec, r.speedup,
                static_cast<unsigned long long>(r.txns),
                static_cast<unsigned long long>(r.batches));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool durable_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--durability=journal") durable_mode = true;
  }
  bench::PrintHeader(
      "Concurrent throughput: real threads, one volume",
      "aggregate ops/sec vs threads; 64 MB volume, 40us/block device, "
      "7:1 read:write hidden-file mix");

  MemBlockDevice raw(kBlockSize, kNumBlocks);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 2;
  fo.params.dummy_file_avg_bytes = 64 << 10;
  fo.entropy = "bench-concurrency";
  if (!StegFs::Format(&raw, fo).ok()) {
    std::fprintf(stderr, "format failed\n");
    return 1;
  }

  ThrottledBlockDevice dev(&raw, kLatency, kLatency);
  StegFsOptions so;
  so.mount.cache_blocks = 128;  // << per-user working set: miss-heavy
  so.mount.cache_shards = 16;
  auto mounted = StegFs::Mount(&dev, so);
  if (!mounted.ok()) {
    std::fprintf(stderr, "mount failed: %s\n",
                 mounted.status().ToString().c_str());
    return 1;
  }
  StegFs* fs = mounted->get();

  std::fprintf(stderr, "[throughput] populating %d users x %d files...\n",
               kMaxUsers, kFilesPerUser);
  Xoshiro data_rng(20260730);
  for (int t = 0; t < kMaxUsers; ++t) {
    for (int f = 0; f < kFilesPerUser; ++f) {
      std::string content(kFileBytes, '\0');
      data_rng.FillBytes(reinterpret_cast<uint8_t*>(content.data()),
                         content.size());
      if (!fs->StegCreate(Uid(t), Obj(f), Uak(t), HiddenType::kFile).ok() ||
          !fs->StegConnect(Uid(t), Obj(f), Uak(t)).ok() ||
          !fs->HiddenWriteAll(Uid(t), Obj(f), content).ok()) {
        std::fprintf(stderr, "populate failed (user %d file %d)\n", t, f);
        return 1;
      }
    }
  }

  const int kLevels[] = {1, 2, 4, 8, 16};
  std::vector<LevelResult> results;
  std::printf("%-10s%12s%10s%12s%10s%18s%18s\n", "threads", "ops", "seconds",
              "ops/sec", "speedup", "rd p50/p99 us", "wr p50/p99 us");
  for (int level : kLevels) {
    // Cold cache per level so every level pays the same miss profile.
    if (!fs->Flush().ok()) return 1;
    fs->plain()->cache()->DropAll();

    obs::RegistrySnapshot before = fs->plain()->metrics_registry()->Snapshot();
    std::vector<std::thread> threads;
    std::atomic<int> failed_ops{0};
    auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < level; ++t) {
      threads.emplace_back([fs, level, t, &failed_ops] {
        Xoshiro rng(level * 1000 + t);
        std::string scratch(4096, '\0');
        for (int op = 0; op < kOpsPerThread; ++op) {
          int f = static_cast<int>(rng.Uniform(kFilesPerUser));
          if (op % 8 == 7) {
            // Partial rewrite somewhere inside the file.
            rng.FillBytes(reinterpret_cast<uint8_t*>(scratch.data()),
                          scratch.size());
            uint64_t off = rng.Uniform(kFileBytes - scratch.size());
            if (!fs->HiddenWrite(Uid(t), Obj(f), off, scratch).ok()) {
              failed_ops.fetch_add(1);
              return;
            }
          } else {
            auto data = fs->HiddenReadAll(Uid(t), Obj(f));
            if (!data.ok() || data->size() != kFileBytes) {
              failed_ops.fetch_add(1);
              return;
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    auto end = std::chrono::steady_clock::now();
    if (failed_ops.load() != 0) {
      // A failed op also aborts its thread's remaining ops, so every
      // derived number would be fiction — refuse to report any.
      std::fprintf(stderr, "%d op(s) failed at %d threads; aborting\n",
                   failed_ops.load(), level);
      return 1;
    }

    LevelResult r;
    r.threads = level;
    r.total_ops = level * kOpsPerThread;
    r.seconds = std::chrono::duration<double>(end - start).count();
    r.ops_per_sec = r.total_ops / r.seconds;
    r.speedup = results.empty() ? 1.0
                                : r.ops_per_sec / results.front().ops_per_sec;
    obs::RegistrySnapshot after = fs->plain()->metrics_registry()->Snapshot();
    obs::HistogramSnapshot rd =
        Delta(HistOrEmpty(after, "stegfs_hidden_read_seconds"),
              HistOrEmpty(before, "stegfs_hidden_read_seconds"));
    obs::HistogramSnapshot wr =
        Delta(HistOrEmpty(after, "stegfs_hidden_write_seconds"),
              HistOrEmpty(before, "stegfs_hidden_write_seconds"));
    r.read_p50_us = Us(rd.Percentile(0.5));
    r.read_p99_us = Us(rd.Percentile(0.99));
    r.write_p50_us = Us(wr.Percentile(0.5));
    r.write_p99_us = Us(wr.Percentile(0.99));
    results.push_back(r);
    std::printf("%-10d%12d%10.3f%12.1f%9.2fx%8.0f /%7.0f%9.0f /%7.0f\n",
                r.threads, r.total_ops, r.seconds, r.ops_per_sec, r.speedup,
                r.read_p50_us, r.read_p99_us, r.write_p50_us, r.write_p99_us);
  }

  CacheStats cs = fs->plain()->cache()->stats();
  std::printf("\ncache: %llu hits, %llu misses (%.1f%% hit rate), "
              "%llu writebacks; device: %llu reads, %llu writes\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              cs.HitRate() * 100,
              static_cast<unsigned long long>(cs.writebacks),
              static_cast<unsigned long long>(dev.reads()),
              static_cast<unsigned long long>(dev.writes()));

  double speedup8 = 0;
  for (const LevelResult& r : results) {
    if (r.threads == 8) speedup8 = r.speedup;
  }
  std::printf("scaling check: %.2fx aggregate ops/sec at 8 threads vs 1 "
              "(target > 2x): %s\n",
              speedup8, speedup8 > 2.0 ? "PASS" : "FAIL");

  // Durable-write leg: only meaningful where sessions can actually run
  // concurrently, so the >= 2x gate applies on multi-core runners only
  // (single-core numbers are still measured and reported).
  std::vector<DurableResult> durable;
  double durable_speedup8 = 0;
  bool durable_pass = true;
  const bool multi_core = std::thread::hardware_concurrency() >= 4;
  if (durable_mode) {
    if (!RunDurableLeg(&durable)) return 1;
    for (const DurableResult& r : durable) {
      if (r.threads == 8) durable_speedup8 = r.speedup;
    }
    durable_pass = !multi_core || durable_speedup8 >= 2.0;
    std::printf("durable scaling check: %.2fx aggregate durable writes at 8 "
                "sessions vs 1 (target >= 2x, %s): %s\n",
                durable_speedup8,
                multi_core ? "gated" : "single-core runner, ungated",
                durable_pass ? "PASS" : "FAIL");
  }

  std::FILE* json = std::fopen("BENCH_concurrency.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"concurrent_throughput\",\n"
                 "  \"volume_mb\": %llu,\n  \"block_size\": %u,\n"
                 "  \"device_latency_us\": %lld,\n"
                 "  \"workload\": \"7:1 read:write, %d ops/thread, "
                 "%d KB files\",\n  \"levels\": [\n",
                 static_cast<unsigned long long>(
                     kBlockSize * kNumBlocks >> 20),
                 kBlockSize, static_cast<long long>(kLatency.count()),
                 kOpsPerThread, static_cast<int>(kFileBytes >> 10));
    for (size_t i = 0; i < results.size(); ++i) {
      const LevelResult& r = results[i];
      std::fprintf(json,
                   "    {\"threads\": %d, \"ops\": %d, \"seconds\": %.4f, "
                   "\"ops_per_sec\": %.1f, \"speedup\": %.3f, "
                   "\"read_p50_us\": %.1f, \"read_p99_us\": %.1f, "
                   "\"write_p50_us\": %.1f, \"write_p99_us\": %.1f}%s\n",
                   r.threads, r.total_ops, r.seconds, r.ops_per_sec,
                   r.speedup, r.read_p50_us, r.read_p99_us, r.write_p50_us,
                   r.write_p99_us, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"speedup_at_8_threads\": %.3f,\n"
                 "  \"target\": 2.0,\n  \"pass\": %s",
                 speedup8, speedup8 > 2.0 ? "true" : "false");
    if (durable_mode) {
      std::fprintf(json,
                   ",\n  \"durable\": {\n"
                   "    \"workload\": \"journaled plain WriteFile, %d "
                   "ops/session, %d KB writes\",\n"
                   "    \"sync_latency_us\": %lld,\n    \"levels\": [\n",
                   kDurableOpsPerThread,
                   static_cast<int>(kDurableWriteBytes >> 10),
                   static_cast<long long>(kSyncLatency.count()));
      for (size_t i = 0; i < durable.size(); ++i) {
        const DurableResult& r = durable[i];
        std::fprintf(json,
                     "      {\"threads\": %d, \"ops\": %d, \"seconds\": "
                     "%.4f, \"ops_per_sec\": %.1f, \"speedup\": %.3f, "
                     "\"group_txns\": %llu, \"group_batches\": %llu}%s\n",
                     r.threads, r.total_ops, r.seconds, r.ops_per_sec,
                     r.speedup, static_cast<unsigned long long>(r.txns),
                     static_cast<unsigned long long>(r.batches),
                     i + 1 < durable.size() ? "," : "");
      }
      std::fprintf(json,
                   "    ],\n    \"speedup_at_8_sessions\": %.3f,\n"
                   "    \"target\": 2.0,\n    \"gated\": %s,\n"
                   "    \"pass\": %s\n  }",
                   durable_speedup8, multi_core ? "true" : "false",
                   durable_pass ? "true" : "false");
    }
    std::fprintf(json, "\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_concurrency.json\n");
  }

  bench::PrintFooter();
  return speedup8 > 2.0 && durable_pass ? 0 : 1;
}
