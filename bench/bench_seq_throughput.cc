// Batched data path: per-block vs batched vs ASYNC sequential throughput
// on a real host-file volume (FileBlockDevice), through the full
// hidden-object stack (cache -> ESSIV crypto -> device).
//
// Phase A ("per-block") replays the pre-batching data path: one
// block-sized call per I/O (no extent batching, no coalescing, no
// readahead) with the AES tier forced to the t-table software
// implementation. Phase B is the PR 3 synchronous batch path: whole
// extents at four sizes, best AES tier, call-and-wait vectored device
// I/O. Phase C attaches the async I/O engine (io_uring by default,
// --engine=threads|uring|auto selects) so hidden extents pipeline
// decrypt with in-flight submissions — the case that matters for
// random-placed hidden blocks, where coalescing can never help.
// A readahead window sweep on the async mount closes with the numbers
// behind the default window choice.
//
// Output: a table on stdout plus BENCH_io.json and per-phase latency
// percentiles in BENCH_latency.json (both archived by CI).
// Acceptance floors: batched 1 MiB sequential reads >= 2x per-block, and
// async 1 MiB hidden reads >= 1.5x the synchronous batch path — the
// latter enforced on >= 2 core hosts only (on one core there is no
// parallelism for the engine to recover; the number is still reported).
// Phase E covers the redundancy path: the SIMD GF(256) parity encoder
// must be >= 4x the scalar backend on AVX2 hosts (mirroring the AES tier
// check), and 1 MiB sequential hidden reads through a kIda(3,4) object
// must stay within 35% of an unprotected object.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "blockdev/file_block_device.h"
#include "core/stegfs.h"
#include "crypto/aes.h"
#include "crypto/gf256.h"
#include "crypto/gf256_simd.h"
#include "obs/metrics.h"

using namespace stegfs;

namespace {

constexpr uint32_t kBlockSize = 4096;
constexpr uint64_t kNumBlocks = 16 << 10;  // 64 MB volume
constexpr size_t kFileBytes = 8 << 20;     // 8 MB hidden file
constexpr size_t kExtentsKb[] = {4, 64, 256, 1024};
constexpr int kPasses = 3;
constexpr double kTarget = 2.0;
constexpr double kAsyncTarget = 1.5;
constexpr uint32_t kReadaheadWindows[] = {0, 8, 16, 32};
constexpr uint32_t kDefaultReadahead = 16;
constexpr double kGfTarget = 4.0;        // SIMD vs scalar GF(256) encode
constexpr double kIdaReadTarget = 0.65;  // kIda(3,4) vs kNone 1 MiB reads

const char* kUid = "bench";
const char* kObj = "seqfile";
const char* kUak = "bench-uak";

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Mbps(double seconds) {
  return static_cast<double>(kFileBytes) / seconds / 1e6;
}

// Reads the whole file in `chunk`-sized calls; returns MB/s of the best of
// kPasses cold-cache passes.
double TimedReadObj(StegFs* fs, const char* obj, size_t chunk) {
  double best = 0;
  for (int p = 0; p < kPasses; ++p) {
    fs->plain()->cache()->DropAll();
    std::string out;
    double t0 = Now();
    for (size_t off = 0; off < kFileBytes; off += chunk) {
      out.clear();
      if (!fs->HiddenRead(kUid, obj, off, chunk, &out).ok()) return -1;
    }
    best = std::max(best, Mbps(Now() - t0));
  }
  return best;
}

double TimedRead(StegFs* fs, size_t chunk) {
  return TimedReadObj(fs, kObj, chunk);
}

// Overwrites the whole (already allocated) file in `chunk`-sized calls;
// each pass ends with a Flush so the write-back path to the device is
// inside the timed region.
double TimedWrite(StegFs* fs, size_t chunk) {
  std::string data(chunk, '\x5a');
  double best = 0;
  for (int p = 0; p < kPasses; ++p) {
    double t0 = Now();
    for (size_t off = 0; off < kFileBytes; off += chunk) {
      if (!fs->HiddenWrite(kUid, kObj, off, data).ok()) return -1;
    }
    if (!fs->Flush().ok()) return -1;
    best = std::max(best, Mbps(Now() - t0));
  }
  return best;
}

// Same two measurements on a PLAIN file (contiguous allocation — the
// paper's CleanDisk substrate). This is where device-level run coalescing
// shows up: hidden blocks are uniformly random by design, so their extents
// never form contiguous runs.
const char* kPlainPath = "/seq.dat";

double TimedPlainRead(StegFs* fs, size_t chunk) {
  double best = 0;
  for (int p = 0; p < kPasses; ++p) {
    fs->plain()->cache()->DropAll();
    std::string out;
    double t0 = Now();
    for (size_t off = 0; off < kFileBytes; off += chunk) {
      out.clear();
      if (!fs->plain()->ReadAt(kPlainPath, off, chunk, &out).ok()) return -1;
    }
    best = std::max(best, Mbps(Now() - t0));
  }
  return best;
}

double TimedPlainWrite(StegFs* fs, size_t chunk) {
  std::string data(chunk, '\x2f');
  double best = 0;
  for (int p = 0; p < kPasses; ++p) {
    double t0 = Now();
    for (size_t off = 0; off < kFileBytes; off += chunk) {
      if (!fs->plain()->WriteAt(kPlainPath, off, data).ok()) return -1;
    }
    if (!fs->Flush().ok()) return -1;
    best = std::max(best, Mbps(Now() - t0));
  }
  return best;
}

// --- Latency percentiles (BENCH_latency.json) --------------------------
// Each phase's mount carries its own MetricsRegistry, so one registry
// snapshot taken before teardown is that phase's latency profile. Device
// and crypto instruments outlive mounts (device-owned / process-global),
// so those families are collected once, at the end, as "cumulative".
struct LatRow {
  const char* phase;
  std::string metric;
  obs::HistogramSnapshot h;
};

double Us(uint64_t ns) { return static_cast<double>(ns) / 1e3; }

// Pulls the named histogram families out of one registry snapshot;
// families the phase never exercised (count == 0) are skipped.
void CollectLat(std::vector<LatRow>* out, const obs::RegistrySnapshot& snap,
                const char* phase,
                std::initializer_list<const char*> names) {
  for (const char* name : names) {
    const obs::HistogramSnapshot* h = snap.histogram(name);
    if (h != nullptr && h->count > 0) out->push_back({phase, name, *h});
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --engine=auto|uring|threads|sync (default auto). "sync" skips phase C
  // (useful to regenerate PR 3 numbers only).
  IoEngine engine_choice = IoEngine::kAuto;
  const char* engine_arg = "auto";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_arg = argv[i] + 9;
      if (std::strcmp(engine_arg, "uring") == 0) {
        engine_choice = IoEngine::kUring;
      } else if (std::strcmp(engine_arg, "threads") == 0) {
        engine_choice = IoEngine::kThreads;
      } else if (std::strcmp(engine_arg, "sync") == 0) {
        engine_choice = IoEngine::kSync;
      } else if (std::strcmp(engine_arg, "auto") == 0) {
        engine_choice = IoEngine::kAuto;
      } else {
        std::fprintf(stderr, "unknown --engine=%s\n", engine_arg);
        return 2;
      }
    }
  }

  bench::PrintHeader(
      "Batched data path: sequential throughput",
      "per-block (t-table) vs batched (vectored I/O + pipelined AES) vs "
      "async engine (submit/complete overlap) on FileBlockDevice");

  const std::string image = "bench_seq_vol.img";
  std::remove(image.c_str());
  auto device = FileBlockDevice::Create(image, kBlockSize, kNumBlocks);
  if (!device.ok()) {
    std::fprintf(stderr, "create volume: %s\n",
                 device.status().ToString().c_str());
    return 1;
  }
  StegFormatOptions fmt;
  fmt.entropy = "bench-seq-throughput";
  // Journal region for phase D (the durability-overhead phase); its 64
  // blocks and the per-mount recovery scrub are noise at this volume size.
  fmt.journal_blocks = 64;
  if (!StegFs::Format(device->get(), fmt).ok()) return 1;

  // --- Phase A: the pre-batching path ----------------------------------
  crypto::SetAesTier(crypto::AesTier::kTable);
  double per_block_read = -1, per_block_write = -1;
  double plain_pb_read = -1, plain_pb_write = -1;
  {
    StegFsOptions opts;  // readahead off
    opts.mount.cache_shards = 1;  // single session: no sharding needed
    opts.mount.durable_flush = false;  // PR 4-comparable data-path numbers
    auto fs = StegFs::Mount(device->get(), opts);
    if (!fs.ok()) return 1;
    if (!(*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile).ok() ||
        !(*fs)->StegConnect(kUid, kObj, kUak).ok()) {
      return 1;
    }
    // Allocate the full extents once, untimed, so both phases measure
    // steady-state overwrites/reads rather than first-touch allocation.
    std::string data(kFileBytes, '\x11');
    if (!(*fs)->HiddenWrite(kUid, kObj, 0, data).ok()) return 1;
    if (!(*fs)->plain()->WriteFile(kPlainPath, data).ok()) return 1;
    per_block_write = TimedWrite(fs->get(), kBlockSize);
    plain_pb_write = TimedPlainWrite(fs->get(), kBlockSize);
    if (!(*fs)->Flush().ok()) return 1;
    per_block_read = TimedRead(fs->get(), kBlockSize);
    plain_pb_read = TimedPlainRead(fs->get(), kBlockSize);
    std::printf(
        "per-block baseline (%s): hidden read %.1f / write %.1f MB/s, "
        "plain read %.1f / write %.1f MB/s\n",
        crypto::AesTierName(), per_block_read, per_block_write, plain_pb_read,
        plain_pb_write);
  }

  // --- Phase B: the batched path ---------------------------------------
  crypto::SetAesTier(crypto::AesTier::kAesNi);  // no-op without hardware
  const char* batched_tier = crypto::AesTierName();
  struct Row {
    size_t extent_kb;
    double read_mbps;
    double write_mbps;
    double plain_read_mbps;
    double plain_write_mbps;
  };
  std::vector<Row> rows;
  std::vector<LatRow> lat_rows;
  uint64_t prefetch_hits = 0;
  DeviceBatchStats dev_stats;
  {
    StegFsOptions opts;
    opts.mount.readahead_blocks = 16;
    // One shard: a single sequential session wants whole-extent device
    // coalescing, not lock parallelism (see buffer_cache.h).
    opts.mount.cache_shards = 1;
    opts.mount.durable_flush = false;  // PR 4-comparable data-path numbers
    auto fs = StegFs::Mount(device->get(), opts);
    if (!fs.ok()) return 1;
    if (!(*fs)->StegConnect(kUid, kObj, kUak).ok()) return 1;
    for (size_t kb : kExtentsKb) {
      Row r;
      r.extent_kb = kb;
      r.read_mbps = TimedRead(fs->get(), kb << 10);
      r.write_mbps = TimedWrite(fs->get(), kb << 10);
      r.plain_read_mbps = TimedPlainRead(fs->get(), kb << 10);
      r.plain_write_mbps = TimedPlainWrite(fs->get(), kb << 10);
      if (r.read_mbps < 0 || r.write_mbps < 0 || r.plain_read_mbps < 0 ||
          r.plain_write_mbps < 0) {
        std::fprintf(stderr, "I/O failed at extent %zu KB\n", kb);
        return 1;
      }
      rows.push_back(r);
    }
    if (!(*fs)->Flush().ok()) return 1;
    prefetch_hits = (*fs)->plain()->cache()->stats().prefetch_hits;
    dev_stats = device->get()->batch_stats();
    CollectLat(&lat_rows, (*fs)->plain()->metrics_registry()->Snapshot(),
               "sync_batch",
               {"stegfs_hidden_read_seconds", "stegfs_hidden_write_seconds",
                "stegfs_fs_read_seconds", "stegfs_fs_write_at_seconds",
                "stegfs_fs_flush_seconds", "stegfs_cache_fill_seconds"});
  }

  // --- Phase C: the async engine ---------------------------------------
  // Same hidden workload, same AES tier, same one-shard cache — the only
  // change is submit/complete overlap through the engine. Hidden blocks
  // are random-placed by design, so this phase (not coalescing) is what
  // speeds the hidden path up.
  struct AsyncRow {
    size_t extent_kb;
    double read_mbps;
    double write_mbps;
  };
  std::vector<AsyncRow> async_rows;
  struct RaRow {
    uint32_t window;
    double read_mbps;
    uint64_t prefetch_hits;
  };
  std::vector<RaRow> ra_rows;
  const char* async_engine_name = "sync";
  AsyncIoStats async_stats;
  if (engine_choice != IoEngine::kSync) {
    StegFsOptions opts;
    opts.mount.io_engine = engine_choice;
    opts.mount.readahead_blocks = kDefaultReadahead;
    opts.mount.cache_shards = 1;  // single sequential session (see phase B)
    opts.mount.durable_flush = false;  // PR 4-comparable data-path numbers
    auto fs = StegFs::Mount(device->get(), opts);
    if (!fs.ok()) {
      std::fprintf(stderr, "async mount (--engine=%s): %s\n", engine_arg,
                   fs.status().ToString().c_str());
      return 1;
    }
    async_engine_name = (*fs)->plain()->io_engine_name();
    if (!(*fs)->StegConnect(kUid, kObj, kUak).ok()) return 1;
    for (size_t kb : kExtentsKb) {
      AsyncRow r;
      r.extent_kb = kb;
      r.read_mbps = TimedRead(fs->get(), kb << 10);
      r.write_mbps = TimedWrite(fs->get(), kb << 10);
      if (r.read_mbps < 0 || r.write_mbps < 0) {
        std::fprintf(stderr, "async I/O failed at extent %zu KB\n", kb);
        return 1;
      }
      async_rows.push_back(r);
    }
    if (!(*fs)->Flush().ok()) return 1;
    if ((*fs)->plain()->io_engine() != nullptr) {
      async_stats = (*fs)->plain()->io_engine()->stats();
    }
    CollectLat(&lat_rows, (*fs)->plain()->metrics_registry()->Snapshot(),
               "async",
               {"stegfs_hidden_read_seconds", "stegfs_hidden_write_seconds",
                "stegfs_async_batch_seconds", "stegfs_cache_fill_seconds"});

    // Readahead window sweep at 64 KB extents (16 blocks — the size where
    // the prefetcher, not the pipeline, carries the overlap). One fresh
    // mount per window so the prefetch counters are per-window.
    for (uint32_t window : kReadaheadWindows) {
      StegFsOptions ra;
      ra.mount.io_engine = engine_choice;
      ra.mount.readahead_blocks = window;
      ra.mount.cache_shards = 1;
      ra.mount.durable_flush = false;
      auto rfs = StegFs::Mount(device->get(), ra);
      if (!rfs.ok()) return 1;
      if (!(*rfs)->StegConnect(kUid, kObj, kUak).ok()) return 1;
      RaRow row;
      row.window = window;
      row.read_mbps = TimedRead(rfs->get(), 64 << 10);
      if (row.read_mbps < 0) return 1;
      row.prefetch_hits = (*rfs)->plain()->cache()->stats().prefetch_hits;
      ra_rows.push_back(row);
    }
  }

  // --- Phase D: durability on (journal + barriers) ---------------------
  // The journal subsystem's own cost, measured apples to apples: BOTH
  // legs run with durable Flush (fdatasync — the PR 4 data path plus the
  // restored durability), and the journal leg adds the crash-consistency
  // machinery on top: per-txn journal commits, the dual-header commit
  // protocol with its write barriers, ordered writeback. The acceptance
  // criterion is <= 15% overhead for that machinery. (Durable-vs-page-
  // cache is NOT the comparison: flushing 8 MB to stable storage costs
  // whatever the disk costs, journal or no journal.)
  double durable_flush_write_mbps = -1;  // PR 4 path + fdatasync flushes
  double durable_write_mbps = -1;        // + the journal subsystem
  uint64_t journal_syncs = 0, fixed_ops = 0, journal_records = 0;
  {
    StegFsOptions base;
    base.mount.io_engine = engine_choice;
    base.mount.cache_shards = 1;
    auto fs = StegFs::Mount(device->get(), base);  // durable_flush default on
    if (!fs.ok()) return 1;
    if (!(*fs)->StegConnect(kUid, kObj, kUak).ok()) return 1;
    durable_flush_write_mbps = TimedWrite(fs->get(), 1024 << 10);
    if (durable_flush_write_mbps < 0) return 1;
  }
  {
    StegFsOptions opts;
    opts.mount.io_engine = engine_choice;
    opts.mount.cache_shards = 1;
    opts.mount.durability = Durability::kJournal;
    const uint64_t syncs_before = device->get()->sync_count();
    auto fs = StegFs::Mount(device->get(), opts);
    if (!fs.ok()) {
      std::fprintf(stderr, "durable mount: %s\n",
                   fs.status().ToString().c_str());
      return 1;
    }
    if (!(*fs)->StegConnect(kUid, kObj, kUak).ok()) return 1;
    durable_write_mbps = TimedWrite(fs->get(), 1024 << 10);
    if (durable_write_mbps < 0) return 1;
    // Plain metadata transactions drive the journal ring proper; on an
    // io_uring mount its record writes stage through the registered
    // arena (IORING_OP_WRITE_FIXED — counted below).
    for (int i = 0; i < 16; ++i) {
      if (!(*fs)->plain()
               ->WriteFile("/jrnl" + std::to_string(i), std::string(900, 'j'))
               .ok()) {
        return 1;
      }
    }
    journal_syncs = device->get()->sync_count() - syncs_before;
    if ((*fs)->plain()->journal() != nullptr) {
      journal_records = (*fs)->plain()->journal()->stats().records_committed;
    }
    if ((*fs)->plain()->io_engine() != nullptr) {
      fixed_ops = (*fs)->plain()->io_engine()->stats().fixed_buffer_ops;
    }
    CollectLat(&lat_rows, (*fs)->plain()->metrics_registry()->Snapshot(),
               "journal",
               {"stegfs_hidden_write_seconds", "stegfs_journal_commit_seconds",
                "stegfs_journal_record_seconds",
                "stegfs_journal_barrier_seconds"});
  }

  // --- Phase E: IDA redundancy -----------------------------------------
  // E1: the GF(256) parity encoder itself, scalar backend vs the runtime-
  // detected SIMD tier, on a kIda(3,4)-shaped stripe (3 data blocks in,
  // 1 Cauchy parity row out). The floor mirrors the AES tier check: on a
  // host with AVX2 the SIMD tier must carry >= 4x the scalar throughput.
  const crypto::GfTier best_gf_tier = crypto::ActiveGfTier();
  const char* gf_tier_name = crypto::GfTierName();
  const bool gf_enforced = __builtin_cpu_supports("avx2") != 0 &&
                           best_gf_tier != crypto::GfTier::kScalar;
  double gf_scalar_mbps = 0, gf_simd_mbps = 0;
  {
    constexpr int kM = 3, kN = 4;
    constexpr size_t kGfLen = 256 << 10;  // per data block
    constexpr int kGfReps = 24;
    std::vector<std::vector<uint8_t>> data(kM,
                                           std::vector<uint8_t>(kGfLen));
    for (int i = 0; i < kM; ++i) {
      for (size_t j = 0; j < kGfLen; ++j) {
        data[i][j] = static_cast<uint8_t>(i * 131 + j * 7 + 1);
      }
    }
    std::vector<uint8_t> parity(kGfLen);
    const uint8_t* blocks[kM] = {data[0].data(), data[1].data(),
                                 data[2].data()};
    uint8_t* parity_out[1] = {parity.data()};
    auto timed_encode = [&](crypto::GfTier tier) -> double {
      if (!crypto::SetGfTier(tier)) return 0;
      double best = 0;
      for (int p = 0; p < kPasses; ++p) {
        double t0 = Now();
        for (int r = 0; r < kGfReps; ++r) {
          crypto::IdaEncodeParity(blocks, kM, kN, kGfLen, parity_out);
        }
        double secs = Now() - t0;
        best = std::max(best,
                        static_cast<double>(kM) * kGfLen * kGfReps / secs /
                            1e6);
      }
      return best;
    };
    gf_scalar_mbps = timed_encode(crypto::GfTier::kScalar);
    gf_simd_mbps = timed_encode(best_gf_tier);
    crypto::SetGfTier(best_gf_tier);  // leave the process on the best tier
  }
  double gf_speedup = gf_scalar_mbps > 0 ? gf_simd_mbps / gf_scalar_mbps : 0;
  bool gf_pass = !gf_enforced || gf_speedup >= kGfTarget;

  // E2: the redundancy tax on the hot read path. Same mount config as the
  // sync batch phase; one object with kIda(3,4) (every stripe carries a
  // verified checksum + one parity share) against the unprotected object,
  // both read at 1 MiB extents on the same mount. Healthy reads never
  // decode — the data shares ARE the file blocks — so the gap is the
  // checksum verification plus the stripe-map bookkeeping.
  const char* kIdaObj = "seqfile_ida";
  double ida_read_mbps = -1, none_read_mbps = -1;
  uint64_t red_stripes_encoded = 0, red_shares_written = 0;
  {
    StegFsOptions opts;
    opts.mount.readahead_blocks = kDefaultReadahead;
    opts.mount.cache_shards = 1;
    opts.mount.durable_flush = false;
    auto fs = StegFs::Mount(device->get(), opts);
    if (!fs.ok()) return 1;
    if (!(*fs)->StegCreate(kUid, kIdaObj, kUak, HiddenType::kFile,
                           RedundancyPolicy::Ida(3, 4))
             .ok() ||
        !(*fs)->StegConnect(kUid, kIdaObj, kUak).ok() ||
        !(*fs)->StegConnect(kUid, kObj, kUak).ok()) {
      return 1;
    }
    std::string data(kFileBytes, '\x77');
    if (!(*fs)->HiddenWrite(kUid, kIdaObj, 0, data).ok()) return 1;
    if (!(*fs)->Flush().ok()) return 1;
    ida_read_mbps = TimedReadObj(fs->get(), kIdaObj, 1024 << 10);
    none_read_mbps = TimedReadObj(fs->get(), kObj, 1024 << 10);
    if (ida_read_mbps < 0 || none_read_mbps < 0) {
      std::fprintf(stderr, "redundant read phase failed\n");
      return 1;
    }
    red_stripes_encoded = (*fs)->redundancy_stats().stripes_encoded.load();
    red_shares_written = (*fs)->redundancy_stats().shares_written.load();
    obs::RegistrySnapshot esnap =
        (*fs)->plain()->metrics_registry()->Snapshot();
    CollectLat(&lat_rows, esnap, "ida",
               {"stegfs_hidden_read_seconds", "stegfs_hidden_write_seconds"});
    // Device- and process-lifetime instruments: everything since startup.
    CollectLat(&lat_rows, esnap, "cumulative",
               {"stegfs_device_read_seconds", "stegfs_device_write_seconds",
                "stegfs_device_sync_seconds", "stegfs_crypto_encrypt_seconds",
                "stegfs_crypto_decrypt_seconds"});
  }
  double ida_read_ratio =
      none_read_mbps > 0 ? ida_read_mbps / none_read_mbps : 0;
  bool ida_read_pass = ida_read_ratio >= kIdaReadTarget;

  // --- Phase F: fault-tolerance layer, fault-free ----------------------
  // The PR 8 retry decorator sits under the cache on every mount by
  // default. With no faults armed its fast path is a tag check on the
  // completion status — this phase bounds that tax at 1 MiB sequential
  // hidden reads: the retry-wrapped mount must stay within 3% of a mount
  // with the layer compiled out of the path (fault.enabled = false).
  const double kFaultOverheadTarget = 0.03;
  double fault_off_read_mbps = 0, fault_on_read_mbps = 0;
  double fault_on_write_mbps = 0;  // reported, not gated (flush noise)
  {
    auto timed_leg = [&](bool enabled, double* read_out,
                         double* write_out) -> bool {
      StegFsOptions opts;
      opts.mount.readahead_blocks = kDefaultReadahead;
      opts.mount.cache_shards = 1;
      opts.mount.durable_flush = false;
      opts.mount.fault.enabled = enabled;
      auto fs = StegFs::Mount(device->get(), opts);
      if (!fs.ok()) return false;
      if (!(*fs)->StegConnect(kUid, kObj, kUak).ok()) return false;
      double r = TimedRead(fs->get(), 1024 << 10);
      if (r < 0) return false;
      *read_out = std::max(*read_out, r);
      if (write_out != nullptr) {
        *write_out = std::max(*write_out, TimedWrite(fs->get(), 1024 << 10));
      }
      return true;
    };
    // The 3% gate needs tighter noise bounds than the 2x/1.5x phases:
    // alternate the two mounts across rounds (cancelling slow page-cache /
    // frequency drift) and keep each leg's best.
    for (int round = 0; round < 3; ++round) {
      if (!timed_leg(false, &fault_off_read_mbps, nullptr) ||
          !timed_leg(true, &fault_on_read_mbps, &fault_on_write_mbps)) {
        std::fprintf(stderr, "fault overhead phase failed\n");
        return 1;
      }
    }
  }
  double fault_overhead =
      fault_off_read_mbps > 0
          ? 1.0 - fault_on_read_mbps / fault_off_read_mbps
          : 1.0;
  bool fault_pass = fault_overhead <= kFaultOverheadTarget;

  std::printf("\n%-10s | %14s %8s %14s %8s | %14s %8s %14s %8s\n", "extent",
              "hid rd MB/s", "speedup", "hid wr MB/s", "speedup",
              "pln rd MB/s", "speedup", "pln wr MB/s", "speedup");
  double read_speedup_1mib = 0;
  for (const Row& r : rows) {
    double rs = r.read_mbps / per_block_read;
    double ws = r.write_mbps / per_block_write;
    if (r.extent_kb == 1024) read_speedup_1mib = rs;
    std::printf("%-10zu | %14.1f %7.2fx %14.1f %7.2fx | %14.1f %7.2fx "
                "%14.1f %7.2fx\n",
                r.extent_kb, r.read_mbps, rs, r.write_mbps, ws,
                r.plain_read_mbps, r.plain_read_mbps / plain_pb_read,
                r.plain_write_mbps, r.plain_write_mbps / plain_pb_write);
  }
  bool pass = read_speedup_1mib >= kTarget;
  std::printf(
      "\nbatched tier %s; coalesced runs %llu; vectored blocks %llu; "
      "prefetch hits %llu\n1 MiB sequential-read speedup %.2fx "
      "(target >= %.1fx): %s\n",
      batched_tier, static_cast<unsigned long long>(dev_stats.coalesced_runs),
      static_cast<unsigned long long>(dev_stats.vectored_blocks),
      static_cast<unsigned long long>(prefetch_hits), read_speedup_1mib,
      kTarget, pass ? "PASS" : "FAIL");

  // The async floor compares against the SYNC BATCH path (phase B), not
  // the per-block baseline: it isolates what submit/complete overlap buys
  // on random-placed hidden reads. Only enforced where the engine has a
  // second core to overlap with.
  double async_vs_sync_1mib = 0;
  const bool multi_core = std::thread::hardware_concurrency() >= 2;
  bool async_pass = true;
  if (!async_rows.empty()) {
    std::printf("\nasync engine %s (vs sync batch path):\n",
                async_engine_name);
    std::printf("%-10s | %14s %12s %14s\n", "extent", "hid rd MB/s",
                "vs sync", "hid wr MB/s");
    for (const AsyncRow& r : async_rows) {
      double vs = 0;
      for (const Row& s : rows) {
        if (s.extent_kb == r.extent_kb) vs = r.read_mbps / s.read_mbps;
      }
      if (r.extent_kb == 1024) async_vs_sync_1mib = vs;
      std::printf("%-10zu | %14.1f %11.2fx %14.1f\n", r.extent_kb,
                  r.read_mbps, vs, r.write_mbps);
    }
    async_pass = !multi_core || async_vs_sync_1mib >= kAsyncTarget;
    std::printf(
        "engine batches: %llu submitted, %llu completed, %llu blocks\n"
        "async 1 MiB hidden-read speedup vs sync batch %.2fx "
        "(target >= %.1fx, %s): %s\n",
        static_cast<unsigned long long>(async_stats.submitted_batches),
        static_cast<unsigned long long>(async_stats.completed_batches),
        static_cast<unsigned long long>(async_stats.submitted_blocks),
        async_vs_sync_1mib, kAsyncTarget,
        multi_core ? "enforced" : "advisory on 1 core",
        async_pass ? "PASS" : "FAIL");
    std::printf("readahead sweep (64 KB extents, async mount):\n");
    for (const RaRow& r : ra_rows) {
      std::printf("  window %2u: %8.1f MB/s, %llu prefetch hits\n", r.window,
                  r.read_mbps,
                  static_cast<unsigned long long>(r.prefetch_hits));
    }
  }

  // Journal-overhead verdict: both legs durable-flush; the delta is the
  // crash-consistency machinery itself.
  const double kJournalOverheadTarget = 0.15;
  double journal_overhead =
      durable_flush_write_mbps > 0
          ? 1.0 - durable_write_mbps / durable_flush_write_mbps
          : 1.0;
  bool journal_pass = journal_overhead <= kJournalOverheadTarget;
  std::printf(
      "\ndurability on (journal + dual-header commits + write barriers):\n"
      "  1 MiB hidden writes %.1f MB/s vs %.1f MB/s durable-flush "
      "baseline -> %.1f%% overhead (target <= %.0f%%): %s\n"
      "  device syncs %llu, journal records %llu, fixed-buffer ops %llu\n",
      durable_write_mbps, durable_flush_write_mbps, journal_overhead * 100,
      kJournalOverheadTarget * 100, journal_pass ? "PASS" : "FAIL",
      static_cast<unsigned long long>(journal_syncs),
      static_cast<unsigned long long>(journal_records),
      static_cast<unsigned long long>(fixed_ops));

  std::printf(
      "\nredundancy (GF(256) tier %s):\n"
      "  parity encode %.1f MB/s scalar -> %.1f MB/s SIMD = %.2fx "
      "(target >= %.1fx, %s): %s\n"
      "  1 MiB hidden reads: kIda(3,4) %.1f MB/s vs kNone %.1f MB/s = "
      "%.2fx (target >= %.2fx): %s\n"
      "  stripes encoded %llu, parity shares written %llu\n",
      gf_tier_name, gf_scalar_mbps, gf_simd_mbps, gf_speedup, kGfTarget,
      gf_enforced ? "enforced" : "advisory without AVX2",
      gf_pass ? "PASS" : "FAIL", ida_read_mbps, none_read_mbps,
      ida_read_ratio, kIdaReadTarget, ida_read_pass ? "PASS" : "FAIL",
      static_cast<unsigned long long>(red_stripes_encoded),
      static_cast<unsigned long long>(red_shares_written));

  std::printf(
      "\nfault-tolerance layer (retry decorator, no faults armed):\n"
      "  1 MiB hidden reads %.1f MB/s with retry layer vs %.1f MB/s "
      "without -> %.1f%% overhead (target <= %.0f%%): %s\n"
      "  1 MiB hidden writes with retry layer %.1f MB/s (advisory)\n",
      fault_on_read_mbps, fault_off_read_mbps, fault_overhead * 100,
      kFaultOverheadTarget * 100, fault_pass ? "PASS" : "FAIL",
      fault_on_write_mbps);

  if (!lat_rows.empty()) {
    std::printf("\nper-phase latency percentiles (us):\n%-11s %-32s %9s %9s "
                "%9s %9s %9s\n",
                "phase", "metric", "count", "p50", "p90", "p99", "max");
    for (const LatRow& r : lat_rows) {
      std::printf("%-11s %-32s %9llu %9.1f %9.1f %9.1f %9.1f\n", r.phase,
                  r.metric.c_str(),
                  static_cast<unsigned long long>(r.h.count),
                  Us(r.h.Percentile(0.5)), Us(r.h.Percentile(0.9)),
                  Us(r.h.Percentile(0.99)), Us(r.h.max));
    }
  } else {
    std::printf("\nlatency percentiles: none (observability disabled — "
                "STEGFS_OBS=0)\n");
  }

  std::FILE* json = std::fopen("BENCH_io.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"bench\": \"seq_throughput\",\n"
                 "  \"block_size\": %u,\n  \"file_mb\": %zu,\n"
                 "  \"baseline\": {\"tier\": \"t-table\", "
                 "\"read_mbps\": %.1f, \"write_mbps\": %.1f, "
                 "\"plain_read_mbps\": %.1f, \"plain_write_mbps\": %.1f},\n"
                 "  \"batched_tier\": \"%s\",\n  \"extents\": [\n",
                 kBlockSize, kFileBytes >> 20, per_block_read,
                 per_block_write, plain_pb_read, plain_pb_write,
                 batched_tier);
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "    {\"extent_kb\": %zu, \"read_mbps\": %.1f, "
                   "\"read_speedup\": %.3f, \"write_mbps\": %.1f, "
                   "\"write_speedup\": %.3f, \"plain_read_mbps\": %.1f, "
                   "\"plain_write_mbps\": %.1f}%s\n",
                   r.extent_kb, r.read_mbps, r.read_mbps / per_block_read,
                   r.write_mbps, r.write_mbps / per_block_write,
                   r.plain_read_mbps, r.plain_write_mbps,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"dev_coalesced_runs\": %llu,\n"
                 "  \"dev_vectored_blocks\": %llu,\n"
                 "  \"prefetch_hits\": %llu,\n"
                 "  \"read_speedup_at_1mib\": %.3f,\n"
                 "  \"target\": %.1f,\n  \"pass\": %s,\n",
                 static_cast<unsigned long long>(dev_stats.coalesced_runs),
                 static_cast<unsigned long long>(dev_stats.vectored_blocks),
                 static_cast<unsigned long long>(prefetch_hits),
                 read_speedup_1mib, kTarget, pass ? "true" : "false");
    std::fprintf(json, "  \"async\": {\n    \"engine\": \"%s\",\n",
                 async_engine_name);
    std::fprintf(json, "    \"extents\": [\n");
    for (size_t i = 0; i < async_rows.size(); ++i) {
      const AsyncRow& r = async_rows[i];
      double vs = 0;
      for (const Row& s : rows) {
        if (s.extent_kb == r.extent_kb) vs = r.read_mbps / s.read_mbps;
      }
      std::fprintf(json,
                   "      {\"extent_kb\": %zu, \"read_mbps\": %.1f, "
                   "\"read_vs_sync\": %.3f, \"write_mbps\": %.1f}%s\n",
                   r.extent_kb, r.read_mbps, vs, r.write_mbps,
                   i + 1 < async_rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "    ],\n    \"submitted_batches\": %llu,\n"
                 "    \"completed_batches\": %llu,\n"
                 "    \"read_vs_sync_at_1mib\": %.3f,\n"
                 "    \"target\": %.1f,\n    \"enforced\": %s,\n"
                 "    \"pass\": %s\n  },\n",
                 static_cast<unsigned long long>(async_stats.submitted_batches),
                 static_cast<unsigned long long>(async_stats.completed_batches),
                 async_vs_sync_1mib, kAsyncTarget,
                 multi_core ? "true" : "false",
                 async_pass ? "true" : "false");
    std::fprintf(json, "  \"readahead_tuning\": [\n");
    for (size_t i = 0; i < ra_rows.size(); ++i) {
      std::fprintf(json,
                   "    {\"window\": %u, \"read_mbps\": %.1f, "
                   "\"prefetch_hits\": %llu}%s\n",
                   ra_rows[i].window, ra_rows[i].read_mbps,
                   static_cast<unsigned long long>(ra_rows[i].prefetch_hits),
                   i + 1 < ra_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"readahead_default\": %u,\n",
                 kDefaultReadahead);
    std::fprintf(json,
                 "  \"journal\": {\n"
                 "    \"durable_write_mbps\": %.1f,\n"
                 "    \"durable_flush_baseline_mbps\": %.1f,\n"
                 "    \"overhead\": %.3f,\n"
                 "    \"target\": %.2f,\n"
                 "    \"device_syncs\": %llu,\n"
                 "    \"records_committed\": %llu,\n"
                 "    \"fixed_buffer_ops\": %llu,\n"
                 "    \"pass\": %s\n  },\n",
                 durable_write_mbps, durable_flush_write_mbps,
                 journal_overhead, kJournalOverheadTarget,
                 static_cast<unsigned long long>(journal_syncs),
                 static_cast<unsigned long long>(journal_records),
                 static_cast<unsigned long long>(fixed_ops),
                 journal_pass ? "true" : "false");
    std::fprintf(json,
                 "  \"fault\": {\n"
                 "    \"read_with_retry_mbps\": %.1f,\n"
                 "    \"read_without_retry_mbps\": %.1f,\n"
                 "    \"write_with_retry_mbps\": %.1f,\n"
                 "    \"overhead\": %.3f,\n"
                 "    \"target\": %.2f,\n"
                 "    \"pass\": %s\n  },\n",
                 fault_on_read_mbps, fault_off_read_mbps,
                 fault_on_write_mbps, fault_overhead, kFaultOverheadTarget,
                 fault_pass ? "true" : "false");
    std::fprintf(json,
                 "  \"ida\": {\n    \"gf_tier\": \"%s\",\n"
                 "    \"gf_scalar_mbps\": %.1f,\n"
                 "    \"gf_simd_mbps\": %.1f,\n"
                 "    \"gf_speedup\": %.3f,\n"
                 "    \"gf_target\": %.1f,\n    \"gf_enforced\": %s,\n"
                 "    \"gf_pass\": %s,\n"
                 "    \"read_ida_mbps\": %.1f,\n"
                 "    \"read_none_mbps\": %.1f,\n"
                 "    \"read_ratio\": %.3f,\n"
                 "    \"read_ratio_target\": %.2f,\n"
                 "    \"read_pass\": %s,\n"
                 "    \"stripes_encoded\": %llu,\n"
                 "    \"parity_shares_written\": %llu\n  }\n}\n",
                 gf_tier_name, gf_scalar_mbps, gf_simd_mbps, gf_speedup,
                 kGfTarget, gf_enforced ? "true" : "false",
                 gf_pass ? "true" : "false", ida_read_mbps, none_read_mbps,
                 ida_read_ratio, kIdaReadTarget,
                 ida_read_pass ? "true" : "false",
                 static_cast<unsigned long long>(red_stripes_encoded),
                 static_cast<unsigned long long>(red_shares_written));
    std::fclose(json);
    std::printf("wrote BENCH_io.json\n");
  }

  // Per-phase latency percentiles, one row per (phase, histogram family).
  // Empty `rows` means the bench ran with observability disabled
  // (STEGFS_OBS=0) — the CI overhead job uses that leg for throughput only.
  std::FILE* lat_json = std::fopen("BENCH_latency.json", "w");
  if (lat_json != nullptr) {
    std::fprintf(lat_json,
                 "{\n  \"bench\": \"seq_throughput\",\n"
                 "  \"unit\": \"microseconds\",\n"
                 "  \"engine\": \"%s\",\n"
                 "  \"obs_enabled\": %s,\n  \"rows\": [\n",
                 async_engine_name,
                 obs::MetricsEnabled() ? "true" : "false");
    for (size_t i = 0; i < lat_rows.size(); ++i) {
      const LatRow& r = lat_rows[i];
      std::fprintf(lat_json,
                   "    {\"phase\": \"%s\", \"metric\": \"%s\", "
                   "\"count\": %llu, \"p50_us\": %.1f, \"p90_us\": %.1f, "
                   "\"p99_us\": %.1f, \"max_us\": %.1f, "
                   "\"mean_us\": %.1f}%s\n",
                   r.phase, r.metric.c_str(),
                   static_cast<unsigned long long>(r.h.count),
                   Us(r.h.Percentile(0.5)), Us(r.h.Percentile(0.9)),
                   Us(r.h.Percentile(0.99)), Us(r.h.max),
                   r.h.MeanNanos() / 1e3,
                   i + 1 < lat_rows.size() ? "," : "");
    }
    std::fprintf(lat_json, "  ]\n}\n");
    std::fclose(lat_json);
    std::printf("wrote BENCH_latency.json\n");
  }
  std::remove(image.c_str());
  bench::PrintFooter();
  return (pass && async_pass && journal_pass && gf_pass && ida_read_pass &&
          fault_pass)
             ? 0
             : 1;
}
