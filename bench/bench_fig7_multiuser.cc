// Figure 7: read (a) and write (b) access time vs number of concurrent
// users, for the five Table 4 systems.
//
// Expected shape (paper 5.3):
//   - StegCover is worst by a wide margin at every load (every operation
//     touches 16 cover files).
//   - StegRand reads trail StegFS (replica hunting); StegRand writes are
//     much worse (every replica written).
//   - CleanDisk/FragDisk are far ahead at 1 user, but interleaving destroys
//     their sequential locality: StegFS matches them from ~16 users for
//     reads and ~8 users for writes.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/perf_common.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Figure 7: Multiple Concurrent Users",
      "access time (s) vs users; 1 GB volume, 1 KB blocks, files (1,2] MB");

  sim::WorkloadConfig workload;  // Table 3 defaults
  FileStoreOptions store_opts;   // 16 covers, replication 4 (paper 5.3)
  const int kTraceCount = 64;
  const int kUserCounts[] = {1, 2, 4, 8, 16, 32};

  std::vector<bench::SchemePools> all_pools;
  for (SchemeKind kind : bench::AllSchemes()) {
    std::fprintf(stderr, "[fig7] preparing %s...\n", SchemeName(kind));
    auto pools =
        bench::PreparePools(kind, workload, store_opts, kTraceCount);
    if (!pools.ok()) {
      std::fprintf(stderr, "[fig7] %s failed: %s\n", SchemeName(kind),
                   pools.status().ToString().c_str());
      return 1;
    }
    all_pools.push_back(std::move(pools).value());
  }

  std::printf("\n(a) Read access time (seconds per whole-file read)\n");
  bench::PrintSeriesHeader("users");
  for (int users : kUserCounts) {
    std::printf("%-10d", users);
    for (const auto& pools : all_pools) {
      std::printf("%12.2f", bench::MeanAccessTime(pools.reads, users,
                                                  workload.block_size));
    }
    std::printf("\n");
  }

  std::printf("\n(b) Write access time (seconds per whole-file write)\n");
  bench::PrintSeriesHeader("users");
  for (int users : kUserCounts) {
    std::printf("%-10d", users);
    for (const auto& pools : all_pools) {
      std::printf("%12.2f", bench::MeanAccessTime(pools.writes, users,
                                                  workload.block_size));
    }
    std::printf("\n");
  }

  std::printf("\nNotes: StegRand trace capture skips files its own "
              "collisions destroyed\n(data-loss rate at this density is the "
              "scheme's documented flaw).\n");
  for (const auto& pools : all_pools) {
    if (pools.load_failures || pools.read_failures || pools.write_failures) {
      std::printf("  %s: load_failures=%llu read_failures=%llu "
                  "write_failures=%llu\n",
                  SchemeName(pools.kind),
                  static_cast<unsigned long long>(pools.load_failures),
                  static_cast<unsigned long long>(pools.read_failures),
                  static_cast<unsigned long long>(pools.write_failures));
    }
  }
  std::printf("\nPaper shape check: StegFS converges with CleanDisk/FragDisk "
              "at >=16 users\n(reads) and >=8 users (writes); StegCover worst "
              "throughout.\n");
  bench::PrintFooter();
  return 0;
}
