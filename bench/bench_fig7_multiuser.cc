// Figure 7: read (a) and write (b) access time vs number of concurrent
// users, for the five Table 4 systems.
//
// Two modes:
//   (default)  trace-replay: captured per-op I/O traces interleaved through
//              the seek/rotate disk model (reproducible on any host; covers
//              all five Table 4 systems).
//   --threads  real threads: K OS threads = K user sessions driving ONE
//              mounted StegFs volume over a latency-throttled device, via
//              the concurrency engine. Measures StegFS only — the baseline
//              stores are single-threaded by design; the engine is what
//              makes real-thread measurement possible at all.
//
// Expected shape (paper 5.3):
//   - StegCover is worst by a wide margin at every load (every operation
//     touches 16 cover files).
//   - StegRand reads trail StegFS (replica hunting); StegRand writes are
//     much worse (every replica written).
//   - CleanDisk/FragDisk are far ahead at 1 user, but interleaving destroys
//     their sequential locality: StegFS matches them from ~16 users for
//     reads and ~8 users for writes.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_util.h"
#include "bench/perf_common.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/throttled_block_device.h"
#include "core/stegfs.h"

using namespace stegfs;

namespace {

// --threads mode: mean per-op wall latency as real concurrent sessions pile
// onto one volume. Access time rises with load (threads contend for cache
// shards, the allocation lock and the device) — the paper's figure 7 x-axis
// realized with actual threads instead of replayed traces.
int RunRealThreads() {
  bench::PrintHeader(
      "Figure 7 (real threads): StegFS access time vs concurrent sessions",
      "mean wall ms per op; one 64 MB volume, 40us/block device, 64 KB "
      "files, K threads = K user sessions");

  constexpr uint32_t kBlockSize = 1024;
  constexpr int kMaxUsers = 32;
  constexpr int kFiles = 2;
  constexpr size_t kFileBytes = 64 << 10;
  constexpr int kReadOps = 12;
  constexpr int kWriteOps = 4;

  MemBlockDevice raw(kBlockSize, 64 << 10);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 2;
  fo.params.dummy_file_avg_bytes = 64 << 10;
  fo.entropy = "fig7-threads";
  if (!StegFs::Format(&raw, fo).ok()) return 1;

  ThrottledBlockDevice dev(&raw, std::chrono::microseconds(40),
                           std::chrono::microseconds(40));
  StegFsOptions so;
  so.mount.cache_blocks = 128;
  so.mount.cache_shards = 16;
  auto mounted = StegFs::Mount(&dev, so);
  if (!mounted.ok()) return 1;
  StegFs* fs = mounted->get();

  std::fprintf(stderr, "[fig7 --threads] populating %d sessions...\n",
               kMaxUsers);
  Xoshiro data_rng(7);
  for (int t = 0; t < kMaxUsers; ++t) {
    std::string uid = "u" + std::to_string(t);
    for (int f = 0; f < kFiles; ++f) {
      std::string obj = "f" + std::to_string(f);
      std::string content(kFileBytes, '\0');
      data_rng.FillBytes(reinterpret_cast<uint8_t*>(content.data()),
                         content.size());
      if (!fs->StegCreate(uid, obj, "uak", HiddenType::kFile).ok() ||
          !fs->StegConnect(uid, obj, "uak").ok() ||
          !fs->HiddenWriteAll(uid, obj, content).ok()) {
        std::fprintf(stderr, "populate failed\n");
        return 1;
      }
    }
  }

  std::printf("%-10s%14s%14s\n", "users", "read ms/op", "write ms/op");
  for (int users : {1, 2, 4, 8, 16, 32}) {
    double read_ms = 0, write_ms = 0;
    for (bool writes : {false, true}) {
      if (!fs->Flush().ok()) return 1;
      fs->plain()->cache()->DropAll();
      std::vector<double> per_thread_ms(users, 0);
      std::vector<std::thread> threads;
      std::atomic<bool> op_failed{false};
      for (int t = 0; t < users; ++t) {
        threads.emplace_back([fs, users, t, writes, &per_thread_ms,
                              &op_failed] {
          Xoshiro rng(users * 100 + t + (writes ? 50 : 0));
          std::string uid = "u" + std::to_string(t);
          std::string scratch(16 << 10, '\0');
          int ops = writes ? kWriteOps : kReadOps;
          auto start = std::chrono::steady_clock::now();
          for (int op = 0; op < ops; ++op) {
            std::string obj = "f" + std::to_string(rng.Uniform(kFiles));
            if (writes) {
              rng.FillBytes(reinterpret_cast<uint8_t*>(scratch.data()),
                            scratch.size());
              uint64_t off = rng.Uniform(kFileBytes - scratch.size());
              if (!fs->HiddenWrite(uid, obj, off, scratch).ok()) {
                op_failed.store(true);
                return;
              }
            } else {
              auto data = fs->HiddenReadAll(uid, obj);
              if (!data.ok()) {
                op_failed.store(true);
                return;
              }
            }
          }
          auto end = std::chrono::steady_clock::now();
          per_thread_ms[t] =
              std::chrono::duration<double, std::milli>(end - start).count() /
              ops;
        });
      }
      for (auto& th : threads) th.join();
      if (op_failed.load()) {
        std::fprintf(stderr, "op failed at %d users; aborting\n", users);
        return 1;
      }
      double sum = 0;
      for (double ms : per_thread_ms) sum += ms;
      (writes ? write_ms : read_ms) = sum / users;
    }
    std::printf("%-10d%14.2f%14.2f\n", users, read_ms, write_ms);
  }
  std::printf("\nShape check: per-op time should stay near-flat while the "
              "device has idle\ncapacity and rise once K sessions saturate "
              "it — the figure-7 contention\ncurve, from actual threads.\n");
  bench::PrintFooter();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--threads") == 0) {
    return RunRealThreads();
  }
  bench::PrintHeader(
      "Figure 7: Multiple Concurrent Users",
      "access time (s) vs users; 1 GB volume, 1 KB blocks, files (1,2] MB");

  sim::WorkloadConfig workload;  // Table 3 defaults
  FileStoreOptions store_opts;   // 16 covers, replication 4 (paper 5.3)
  const int kTraceCount = 64;
  const int kUserCounts[] = {1, 2, 4, 8, 16, 32};

  std::vector<bench::SchemePools> all_pools;
  for (SchemeKind kind : bench::AllSchemes()) {
    std::fprintf(stderr, "[fig7] preparing %s...\n", SchemeName(kind));
    auto pools =
        bench::PreparePools(kind, workload, store_opts, kTraceCount);
    if (!pools.ok()) {
      std::fprintf(stderr, "[fig7] %s failed: %s\n", SchemeName(kind),
                   pools.status().ToString().c_str());
      return 1;
    }
    all_pools.push_back(std::move(pools).value());
  }

  std::printf("\n(a) Read access time (seconds per whole-file read)\n");
  bench::PrintSeriesHeader("users");
  for (int users : kUserCounts) {
    std::printf("%-10d", users);
    for (const auto& pools : all_pools) {
      std::printf("%12.2f", bench::MeanAccessTime(pools.reads, users,
                                                  workload.block_size));
    }
    std::printf("\n");
  }

  std::printf("\n(b) Write access time (seconds per whole-file write)\n");
  bench::PrintSeriesHeader("users");
  for (int users : kUserCounts) {
    std::printf("%-10d", users);
    for (const auto& pools : all_pools) {
      std::printf("%12.2f", bench::MeanAccessTime(pools.writes, users,
                                                  workload.block_size));
    }
    std::printf("\n");
  }

  std::printf("\nNotes: StegRand trace capture skips files its own "
              "collisions destroyed\n(data-loss rate at this density is the "
              "scheme's documented flaw).\n");
  for (const auto& pools : all_pools) {
    if (pools.load_failures || pools.read_failures || pools.write_failures) {
      std::printf("  %s: load_failures=%llu read_failures=%llu "
                  "write_failures=%llu\n",
                  SchemeName(pools.kind),
                  static_cast<unsigned long long>(pools.load_failures),
                  static_cast<unsigned long long>(pools.read_failures),
                  static_cast<unsigned long long>(pools.write_failures));
    }
  }
  std::printf("\nPaper shape check: StegFS converges with CleanDisk/FragDisk "
              "at >=16 users\n(reads) and >=8 users (writes); StegCover worst "
              "throughout.\n");
  bench::PrintFooter();
  return 0;
}
