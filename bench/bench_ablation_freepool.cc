// Ablation A2: the free-block pool bounds (Fmin, Fmax) of Table 1.
//
// The pool exists for secrecy (a snapshot-differencing intruder cannot tell
// data blocks from pool blocks), but it costs space (held-free blocks) and
// write traffic (scrub + header churn). This bench quantifies both so the
// default (0, 10) can be judged.
#include <cstdio>

#include "bench/bench_util.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"
#include "cache/buffer_cache.h"
#include "core/hidden_object.h"
#include "fs/bitmap.h"
#include "util/random.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Ablation A2: Free-Pool Bounds vs Space and Write Amplification",
      "grow/shrink workload on one hidden file, 64 MB volume, 1 KB blocks");

  struct Bounds {
    uint32_t min, max;
  };
  const Bounds kBounds[] = {{0, 0},  {0, 10}, {2, 10},
                            {0, 40}, {8, 40}, {0, 96}};

  std::printf("%-12s %14s %16s %18s\n", "(min,max)", "held blocks",
              "device writes", "write amplification");

  for (const Bounds& b : kBounds) {
    Layout layout = Layout::Compute(1024, 65536, 1024);
    auto sim = std::make_unique<SimDisk>(
        std::make_unique<MemBlockDevice>(layout.block_size,
                                         layout.num_blocks),
        DiskModelConfig{});
    BufferCache cache(sim.get(), 512, WritePolicy::kWriteThrough);
    BlockBitmap bitmap(layout);
    Xoshiro rng(11);

    HiddenVolume vol;
    vol.cache = &cache;
    vol.bitmap = &bitmap;
    vol.layout = layout;
    vol.params.free_pool_min = b.min;
    vol.params.free_pool_max = b.max;
    vol.rng = &rng;
    vol.probe_limit = 10000;

    auto obj = HiddenObject::Create(vol, "pool-bench", "k", HiddenType::kFile);
    if (!obj.ok()) return 1;

    // Grow/shrink churn: the pattern that exercises pool top-up/release.
    Xoshiro wl(3);
    uint64_t logical_bytes = 0;
    uint64_t size = 0;
    for (int round = 0; round < 60; ++round) {
      if (wl.Bernoulli(0.65) || size < 65536) {
        std::string chunk(wl.UniformRange(16 << 10, 256 << 10), '\0');
        wl.FillBytes(reinterpret_cast<uint8_t*>(chunk.data()), chunk.size());
        if (!(*obj)->Write(size, chunk).ok()) break;
        size += chunk.size();
        logical_bytes += chunk.size();
      } else {
        size /= 2;
        if (!(*obj)->Truncate(size).ok()) break;
      }
      (void)(*obj)->Sync();
    }

    uint64_t logical_blocks = logical_bytes / layout.block_size;
    double amp = logical_blocks == 0
                     ? 0
                     : static_cast<double>(sim->stats().blocks_written) /
                           logical_blocks;
    std::printf("(%2u,%3u)     %14u %16llu %17.3fx\n", b.min, b.max,
                (*obj)->pool_size(),
                static_cast<unsigned long long>(sim->stats().blocks_written),
                amp);
  }

  std::printf("\nReading: larger pools hold more dead space and scrub more "
              "noise blocks; the\npaper default (0,10) keeps amplification "
              "close to 1 while still masking\nallocation order from "
              "snapshot differencing.\n");
  bench::PrintFooter();
  return 0;
}
