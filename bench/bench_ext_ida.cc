// Extension experiment: Rabin IDA vs plain replication for the
// random-placement scheme (the paper's section 2 discussion of Hand &
// Roscoe's Mnemosyne, which "replaced simple replication with the
// information dispersal algorithm ... at the expense of higher storage and
// read/write overheads").
//
// At equal storage blow-up, an (m, n) code with n/m = r tolerates the loss
// of any n-m fragments PER STRIPE, whereas replication r tolerates r-1
// losses per block but wastes r-1 full copies. This bench quantifies how
// much effective space utilization IDA buys over replication on the same
// volume — and what the paper's StegFS achieves with no redundancy at all.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/space.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Extension: IDA (Mnemosyne) vs replication for random placement",
      "effective space utilization, 1 GB volume, 1 KB blocks, files (1,2] MB");

  std::printf("%-26s %10s %14s\n", "scheme", "blow-up", "utilization");

  for (uint32_t r : {2u, 4u, 8u}) {
    sim::StegRandSpaceConfig cfg;
    cfg.replication = r;
    cfg.trials = 3;
    double util = sim::StegRandSpaceUtilization(cfg);
    std::printf("replication r=%-12u %9ux %13.2f%%\n", r, r, util * 100);
  }

  struct MN {
    int m, n;
  };
  for (MN mn : {MN{4, 8}, MN{8, 16}, MN{4, 16}, MN{8, 12}, MN{16, 24}}) {
    sim::StegRandIdaSpaceConfig cfg;
    cfg.ida_m = mn.m;
    cfg.ida_n = mn.n;
    cfg.trials = 3;
    double util = sim::StegRandIdaSpaceUtilization(cfg);
    std::printf("IDA (m=%2d, n=%2d)          %8.1fx %13.2f%%\n", mn.m, mn.n,
                static_cast<double>(mn.n) / mn.m, util * 100);
  }

  sim::StegFsSpaceConfig fs_cfg;
  std::printf("%-26s %10s %13.2f%%\n", "StegFS (paper's answer)", "1x",
              sim::StegFsSpaceUtilization(fs_cfg) * 100);

  std::printf(
      "\nReading: at the same 2x blow-up, IDA(8,16) sustains several times\n"
      "replication-2's utilization because a stripe dies only after 9 of 16\n"
      "fragments are lost. But both remain an order of magnitude below\n"
      "StegFS, which avoids collisions entirely via the block bitmap —\n"
      "the paper's core argument in one table.\n");
  bench::PrintFooter();
  return 0;
}
