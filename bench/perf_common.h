// Shared plumbing for the performance-figure benches (figures 7, 8, 9):
// build a loaded volume per scheme, capture whole-file read/write operation
// traces, replay them through the disk model at various concurrency levels.
#ifndef STEGFS_BENCH_PERF_COMMON_H_
#define STEGFS_BENCH_PERF_COMMON_H_

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/file_store.h"
#include "sim/experiment.h"
#include "sim/interleaver.h"
#include "sim/workload.h"

namespace stegfs {
namespace bench {

inline const std::vector<SchemeKind>& AllSchemes() {
  static const std::vector<SchemeKind> kSchemes = {
      SchemeKind::kCleanDisk, SchemeKind::kFragDisk, SchemeKind::kStegCover,
      SchemeKind::kStegRand, SchemeKind::kStegFs};
  return kSchemes;
}

struct SchemePools {
  SchemeKind kind;
  std::vector<IoTrace> reads;
  std::vector<IoTrace> writes;
  uint64_t read_failures = 0;
  uint64_t write_failures = 0;
  uint64_t load_failures = 0;
};

// Builds the volume, loads the population, captures `trace_count` read and
// write op traces, then discards the (memory-heavy) volume.
inline StatusOr<SchemePools> PreparePools(SchemeKind kind,
                                          const sim::WorkloadConfig& workload,
                                          const FileStoreOptions& store_opts,
                                          int trace_count) {
  STEGFS_ASSIGN_OR_RETURN(std::unique_ptr<sim::BenchEnv> env,
                          sim::BuildLoadedEnv(kind, workload, store_opts));
  SchemePools pools;
  pools.kind = kind;
  pools.load_failures = env->load_failures;
  auto reads = sim::CaptureReadOps(env.get(), trace_count, workload.seed + 1);
  pools.reads = std::move(reads.traces);
  pools.read_failures = reads.failures;
  auto writes =
      sim::CaptureWriteOps(env.get(), trace_count, workload.seed + 2);
  pools.writes = std::move(writes.traces);
  pools.write_failures = writes.failures;
  return pools;
}

// Mean per-operation access time when `users` users replay ops from `pool`
// concurrently. Each user receives distinct traces whenever the pool is
// large enough — two users replaying the same trace in lockstep would share
// drive-cache streams and understate contention.
inline double MeanAccessTime(const std::vector<IoTrace>& pool, int users,
                             uint32_t block_size) {
  if (pool.empty()) return -1;
  int ops_per_user =
      std::max<int>(1, static_cast<int>(pool.size()) / users);
  auto streams = sim::AssignOps(pool, users, ops_per_user);
  auto result = sim::ReplayInterleaved(streams, DiskModelConfig{}, block_size);
  return result.mean_latency;
}

inline void PrintSeriesHeader(const char* xlabel) {
  std::printf("%-10s", xlabel);
  for (SchemeKind kind : AllSchemes()) {
    std::printf("%12s", SchemeName(kind));
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace stegfs

#endif  // STEGFS_BENCH_PERF_COMMON_H_
