// Ablation A5: crypto throughput.
//
// Backs the paper's section 5.1 claim that decryption cost is insignificant
// relative to I/O: "a 2 MBytes file can be decrypted in less than 120 ms on
// our test system, whereas the I/Os take at least 2 seconds".
//
// Uses Google Benchmark when the build found it (STEGFS_USE_GBENCH);
// otherwise the plain-chrono harness in chrono_benchmark.h, so this binary
// builds and runs everywhere CI does.
#ifdef STEGFS_USE_GBENCH
#include <benchmark/benchmark.h>
#else
#include "bench/chrono_benchmark.h"
#endif

#include <string>
#include <vector>

#include "crypto/aes.h"
#include "crypto/block_crypter.h"
#include "crypto/prng.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

using namespace stegfs;

static void BM_AesEncryptBlock(benchmark::State& state) {
  std::vector<uint8_t> key(32, 0x5a);
  crypto::Aes aes(key.data(), key.size());
  uint8_t block[16] = {0};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

// The two dispatch tiers head to head on the ECB batch entry point (the
// shape the ESSIV IV derivation and CBC decrypt paths use).
static void BM_AesEcbBatchTier(benchmark::State& state, crypto::AesTier tier) {
  crypto::AesTier saved = crypto::ActiveAesTier();
  if (!crypto::SetAesTier(tier)) {
    state.SkipWithError("tier unsupported on this CPU");
    return;
  }
  std::vector<uint8_t> key(32, 0x5a);
  crypto::Aes aes(key.data(), key.size());
  std::vector<uint8_t> buf(64 * 16, 0x3c);
  for (auto _ : state) {
    aes.EncryptBlocksEcb(buf.data(), buf.data(), 64);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * buf.size());
  crypto::SetAesTier(saved);
}
static void BM_AesEcbBatch_TTable(benchmark::State& state) {
  BM_AesEcbBatchTier(state, crypto::AesTier::kTable);
}
BENCHMARK(BM_AesEcbBatch_TTable);
static void BM_AesEcbBatch_AesNi(benchmark::State& state) {
  BM_AesEcbBatchTier(state, crypto::AesTier::kAesNi);
}
BENCHMARK(BM_AesEcbBatch_AesNi);

// The batched block path: 16 device blocks per call, the shape
// EncryptedBlockStore issues for a whole extent.
static void BM_BlockCrypterEncryptBatch16(benchmark::State& state) {
  crypto::BlockCrypter crypter("bench-key");
  const size_t kBlock = 4096, kN = 16;
  std::vector<uint8_t> data(kBlock * kN);
  std::vector<crypto::CryptSpan> spans(kN);
  for (size_t i = 0; i < kN; ++i) {
    spans[i] = {1000 + i * 7, data.data() + i * kBlock};
  }
  for (auto _ : state) {
    crypter.EncryptBlocks(spans.data(), kN, kBlock);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BlockCrypterEncryptBatch16);

static void BM_BlockCrypterDecryptBatch16(benchmark::State& state) {
  crypto::BlockCrypter crypter("bench-key");
  const size_t kBlock = 4096, kN = 16;
  std::vector<uint8_t> data(kBlock * kN);
  std::vector<crypto::CryptSpan> spans(kN);
  for (size_t i = 0; i < kN; ++i) {
    spans[i] = {1000 + i * 7, data.data() + i * kBlock};
  }
  for (auto _ : state) {
    crypter.DecryptBlocks(spans.data(), kN, kBlock);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_BlockCrypterDecryptBatch16);

static void BM_BlockCrypterEncrypt(benchmark::State& state) {
  crypto::BlockCrypter crypter("bench-key");
  std::vector<uint8_t> block(state.range(0));
  for (auto _ : state) {
    crypter.EncryptBlock(7, block.data(), block.size());
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockCrypterEncrypt)->Arg(512)->Arg(1024)->Arg(4096)->Arg(65536);

static void BM_BlockCrypterDecrypt(benchmark::State& state) {
  crypto::BlockCrypter crypter("bench-key");
  std::vector<uint8_t> block(state.range(0));
  for (auto _ : state) {
    crypter.DecryptBlock(7, block.data(), block.size());
    benchmark::DoNotOptimize(block.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockCrypterDecrypt)->Arg(1024)->Arg(65536);

// The paper's example: decrypting a whole 2 MB file.
static void BM_Decrypt2MBFile(benchmark::State& state) {
  crypto::BlockCrypter crypter("bench-key");
  std::vector<uint8_t> file(2 << 20);
  for (auto _ : state) {
    for (size_t off = 0; off < file.size(); off += 1024) {
      crypter.DecryptBlock(off / 1024, file.data() + off, 1024);
    }
    benchmark::DoNotOptimize(file.data());
  }
  state.SetBytesProcessed(state.iterations() * file.size());
}
BENCHMARK(BM_Decrypt2MBFile)->Unit(benchmark::kMillisecond);

static void BM_Sha256(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    auto digest = crypto::Sha256::Hash(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

static void BM_HashChainPrng(benchmark::State& state) {
  crypto::HashChainPrng prng(crypto::Sha256::Hash("seed"), 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prng.Next());
  }
}
BENCHMARK(BM_HashChainPrng);

static void BM_RsaEncrypt(benchmark::State& state) {
  auto pair = crypto::RsaGenerateKeyPair(512, "bench-keypair");
  if (!pair.ok()) {
    state.SkipWithError("keygen failed");
    return;
  }
  std::string msg = "objname=budget.xls fak=0123456789abcdef0123456789abcdef";
  int i = 0;
  for (auto _ : state) {
    auto ct = crypto::RsaEncrypt(pair->public_key, msg,
                                 "entropy" + std::to_string(i++));
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_RsaEncrypt)->Unit(benchmark::kMillisecond);

static void BM_RsaDecrypt(benchmark::State& state) {
  auto pair = crypto::RsaGenerateKeyPair(512, "bench-keypair");
  if (!pair.ok()) {
    state.SkipWithError("keygen failed");
    return;
  }
  auto ct = crypto::RsaEncrypt(pair->public_key, "shared-entry", "e");
  for (auto _ : state) {
    auto pt = crypto::RsaDecrypt(pair->private_key, ct.value());
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_RsaDecrypt)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
