// Shared output helpers for the figure/table reproduction binaries. Every
// bench prints (a) a header identifying the paper artifact it regenerates,
// (b) a plain-text table of the same series the paper plots, readable by a
// human and trivially parseable (tab-separated).
#ifndef STEGFS_BENCH_BENCH_UTIL_H_
#define STEGFS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace stegfs {
namespace bench {

inline void PrintHeader(const std::string& artifact,
                        const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintFooter() { std::printf("\n"); }

}  // namespace bench
}  // namespace stegfs

#endif  // STEGFS_BENCH_BENCH_UTIL_H_
