// Reproduces Tables 1-4 of the paper from the code's actual defaults, so a
// drift between the implementation and the published configuration is
// immediately visible.
#include <cstdio>

#include "baselines/file_store.h"
#include "bench/bench_util.h"
#include "blockdev/disk_model.h"
#include "fs/layout.h"
#include "sim/workload.h"

using namespace stegfs;

int main() {
  bench::PrintHeader("Table 1: Parameters of StegFS",
                     "Values are the library defaults (fs/layout.h).");
  StegParams p;
  std::printf("%-28s %-38s %s\n", "parameter", "meaning", "default");
  std::printf("%-28s %-38s %.0f%%\n", "abandoned_fraction",
              "abandoned blocks in the disk volume",
              p.abandoned_fraction * 100);
  std::printf("%-28s %-38s %u\n", "free_pool_min",
              "min free blocks within a hidden file", p.free_pool_min);
  std::printf("%-28s %-38s %u\n", "free_pool_max",
              "max free blocks within a hidden file", p.free_pool_max);
  std::printf("%-28s %-38s %u\n", "dummy_file_count",
              "dummy hidden files in the file system", p.dummy_file_count);
  std::printf("%-28s %-38s %llu MB\n", "dummy_file_avg_bytes",
              "average size of the dummy hidden files",
              static_cast<unsigned long long>(p.dummy_file_avg_bytes >> 20));
  bench::PrintFooter();

  bench::PrintHeader("Table 2: Physical Resource Parameters",
                     "Disk timing model defaults (blockdev/disk_model.h); "
                     "models the paper's Ultra ATA/100 20 GB drive.");
  DiskModelConfig d;
  std::printf("%-28s %s\n", "drive class", "Ultra ATA/100, 20 GB");
  std::printf("%-28s %.0f RPM (avg rot. latency %.2f ms)\n", "spindle",
              d.rpm, d.AvgRotationalLatencyMs());
  std::printf("%-28s %.1f ms track-to-track, %.1f ms full stroke\n", "seek",
              d.track_to_track_seek_ms, d.full_stroke_seek_ms);
  std::printf("%-28s %.0f MB/s media rate\n", "transfer",
              d.media_transfer_mb_s);
  std::printf("%-28s %.1f ms per request\n", "controller overhead",
              d.controller_overhead_ms);
  std::printf("%-28s %d read / %d write cache segments\n", "drive cache",
              d.read_segments, d.write_segments);
  bench::PrintFooter();

  bench::PrintHeader("Table 3: Workload Parameters",
                     "Workload generator defaults (sim/workload.h).");
  sim::WorkloadConfig w;
  std::printf("%-28s %u KB\n", "block size", w.block_size / 1024);
  std::printf("%-28s (%.0f, %.0f] MB uniform\n", "file size",
              (w.file_size_min - 1) / 1048576.0, w.file_size_max / 1048576.0);
  std::printf("%-28s %llu GB\n", "volume capacity",
              static_cast<unsigned long long>(w.volume_bytes >> 30));
  std::printf("%-28s %u\n", "number of files", w.num_files);
  std::printf("%-28s %s\n", "access pattern", "interleaved");
  std::printf("%-28s %d\n", "concurrent users", w.num_users);
  bench::PrintFooter();

  bench::PrintHeader("Table 4: Algorithm Indicators",
                     "The five systems every experiment compares.");
  std::printf("%-12s %s\n", SchemeName(SchemeKind::kStegFs),
              "our proposed StegFS scheme (src/core)");
  std::printf("%-12s %s\n", SchemeName(SchemeKind::kStegCover),
              "steganographic scheme using cover files [7] "
              "(src/baselines/steg_cover)");
  std::printf("%-12s %s\n", SchemeName(SchemeKind::kStegRand),
              "steganographic scheme using random block assignment [7] "
              "(src/baselines/steg_rand)");
  std::printf("%-12s %s\n", SchemeName(SchemeKind::kCleanDisk),
              "freshly defragmented native file system (contiguous)");
  std::printf("%-12s %s\n", SchemeName(SchemeKind::kFragDisk),
              "well-used native file system (8-block fragments)");
  bench::PrintFooter();
  return 0;
}
