// Figure 9: serial (single-user, whole-file-at-a-time) read (a) and write
// (b) access time vs block size, 1 MB files.
//
// Expected shape (paper 5.4): CleanDisk best (contiguous, sequential);
// FragDisk pays a seek every 8 blocks; StegFS and StegRand pay a seek per
// block so they suffer most at small blocks; StegCover is worst by an order
// of magnitude (16 cover streams per operation). All gaps close as the
// block size grows and per-block seeks amortize.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/perf_common.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Figure 9: Serial File Operations",
      "access time (s) vs block size; 1 user, serial pattern, 1 MB files");

  const uint32_t kBlockSizes[] = {512,   1024,  2048,  4096,
                                  8192,  16384, 32768, 65536};
  const int kTraceCount = 10;

  // pools[block size][scheme]
  std::vector<std::vector<bench::SchemePools>> all_pools;
  for (uint32_t bs : kBlockSizes) {
    sim::WorkloadConfig workload;
    workload.block_size = bs;
    workload.num_files = 30;
    workload.file_size_min = 1 << 20;  // figure 9: file size fixed at 1 MB
    workload.file_size_max = 1 << 20;
    std::vector<bench::SchemePools> row;
    for (SchemeKind kind : bench::AllSchemes()) {
      std::fprintf(stderr, "[fig9] %.1f KB blocks, %s...\n", bs / 1024.0,
                   SchemeName(kind));
      FileStoreOptions store_opts;
      auto pools =
          bench::PreparePools(kind, workload, store_opts, kTraceCount);
      if (!pools.ok()) {
        std::fprintf(stderr, "[fig9] %s failed: %s\n", SchemeName(kind),
                     pools.status().ToString().c_str());
        return 1;
      }
      row.push_back(std::move(pools).value());
    }
    all_pools.push_back(std::move(row));
  }

  std::printf("\n(a) Read access time (s), serial\n");
  bench::PrintSeriesHeader("bs(KB)");
  for (size_t b = 0; b < std::size(kBlockSizes); ++b) {
    std::printf("%-10.1f", kBlockSizes[b] / 1024.0);
    for (const auto& pools : all_pools[b]) {
      std::printf("%12.3f",
                  bench::MeanAccessTime(pools.reads, 1, kBlockSizes[b]));
    }
    std::printf("\n");
  }

  std::printf("\n(b) Write access time (s), serial\n");
  bench::PrintSeriesHeader("bs(KB)");
  for (size_t b = 0; b < std::size(kBlockSizes); ++b) {
    std::printf("%-10.1f", kBlockSizes[b] / 1024.0);
    for (const auto& pools : all_pools[b]) {
      std::printf("%12.3f",
                  bench::MeanAccessTime(pools.writes, 1, kBlockSizes[b]));
    }
    std::printf("\n");
  }

  std::printf("\nPaper shape check: CleanDisk << FragDisk << StegFS ~ "
              "StegRand << StegCover\nat small blocks; every gap narrows as "
              "block size grows.\n");
  bench::PrintFooter();
  return 0;
}
