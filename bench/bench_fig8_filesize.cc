// Figure 8: normalized access time (seconds per KB) vs file size, reads (a)
// and writes (b), at 16 concurrent users.
//
// The paper's point: "the relative trade-offs between the various schemes
// are independent of the file size" — each scheme's normalized curve is
// roughly flat and the ranking never changes.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/perf_common.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Figure 8: Sensitivity to File Size",
      "normalized access time (sec/KB) vs file size; 16 users, 1 KB blocks");

  const int kUsers = 16;
  const int kTraceCount = 32;
  const uint64_t kSizesKb[] = {200, 400, 600, 800, 1000,
                               1200, 1400, 1600, 1800, 2000};

  // pools[size][scheme]
  std::vector<std::vector<bench::SchemePools>> all_pools;
  for (uint64_t size_kb : kSizesKb) {
    sim::WorkloadConfig workload;
    workload.num_files = 50;  // fewer files, same density profile
    workload.file_size_min = size_kb * 1024;  // fixed size
    workload.file_size_max = size_kb * 1024;
    std::vector<bench::SchemePools> row;
    for (SchemeKind kind : bench::AllSchemes()) {
      std::fprintf(stderr, "[fig8] %llu KB, %s...\n",
                   static_cast<unsigned long long>(size_kb),
                   SchemeName(kind));
      FileStoreOptions store_opts;
      auto pools =
          bench::PreparePools(kind, workload, store_opts, kTraceCount);
      if (!pools.ok()) {
        std::fprintf(stderr, "[fig8] %s failed: %s\n", SchemeName(kind),
                     pools.status().ToString().c_str());
        return 1;
      }
      row.push_back(std::move(pools).value());
    }
    all_pools.push_back(std::move(row));
  }

  std::printf("\n(a) Read: normalized access time (sec/KB)\n");
  bench::PrintSeriesHeader("size(KB)");
  for (size_t s = 0; s < std::size(kSizesKb); ++s) {
    std::printf("%-10llu", static_cast<unsigned long long>(kSizesKb[s]));
    for (const auto& pools : all_pools[s]) {
      double t = bench::MeanAccessTime(pools.reads, kUsers, 1024);
      std::printf("%12.5f", t < 0 ? -1.0 : t / kSizesKb[s]);
    }
    std::printf("\n");
  }

  std::printf("\n(b) Write: normalized access time (sec/KB)\n");
  bench::PrintSeriesHeader("size(KB)");
  for (size_t s = 0; s < std::size(kSizesKb); ++s) {
    std::printf("%-10llu", static_cast<unsigned long long>(kSizesKb[s]));
    for (const auto& pools : all_pools[s]) {
      double t = bench::MeanAccessTime(pools.writes, kUsers, 1024);
      std::printf("%12.5f", t < 0 ? -1.0 : t / kSizesKb[s]);
    }
    std::printf("\n");
  }

  std::printf("\nPaper shape check: per-scheme curves are ~flat (ranking "
              "independent of file size).\n");
  bench::PrintFooter();
  return 0;
}
