// Ablation A1: abandoned-block fraction (Table 1's 1% default).
//
// Abandoned blocks are the untraceable cover population: more of them makes
// brute-force "allocated-but-unlisted" analysis less conclusive, but every
// abandoned block is storage lost forever. This bench sweeps the fraction
// and reports (a) space utilization of a fully loaded volume and (b) the
// cover ratio — abandoned blocks per hidden-data block at the default
// workload — which is the attacker's uncertainty factor.
#include <cstdio>

#include "bench/bench_util.h"
#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "sim/workload.h"
#include "util/random.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Ablation A1: Abandoned-Block Fraction",
      "128 MB volume, 1 KB blocks; load hidden files to NoSpace per setting");

  std::printf("%-12s %14s %16s %14s\n", "abandoned", "utilization",
              "abandoned blocks", "cover ratio*");

  for (double fraction : {0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    MemBlockDevice dev(1024, 131072);  // 128 MB
    StegFormatOptions fo;
    fo.params.abandoned_fraction = fraction;
    fo.params.dummy_file_count = 4;
    fo.params.dummy_file_avg_bytes = 256 << 10;
    fo.entropy = "ablation-abandoned";
    if (!StegFs::Format(&dev, fo).ok()) return 1;
    auto fs = StegFs::Mount(&dev, StegFsOptions{});
    if (!fs.ok()) return 1;

    const Layout& layout = (*fs)->plain()->layout();
    uint64_t abandoned_blocks = static_cast<uint64_t>(
        static_cast<double>(layout.data_blocks()) * fraction);

    // Load 256 KB hidden files until the volume refuses.
    HiddenVolume vol = (*fs)->VolumeCtx();
    Xoshiro rng(5);
    uint64_t loaded = 0;
    for (int i = 0;; ++i) {
      auto obj = HiddenObject::Create(vol, "f" + std::to_string(i),
                                      "k" + std::to_string(i),
                                      HiddenType::kFile);
      if (!obj.ok()) break;
      std::string content(256 << 10, '\0');
      rng.FillBytes(reinterpret_cast<uint8_t*>(content.data()),
                    content.size());
      if (!(*obj)->WriteAll(content).ok()) break;
      if (!(*obj)->Sync().ok()) break;
      loaded += content.size();
    }

    double util = static_cast<double>(loaded) / dev.capacity_bytes();
    double cover_ratio =
        loaded == 0 ? 0
                    : static_cast<double>(abandoned_blocks) /
                          (static_cast<double>(loaded) / 1024);
    std::string label = std::to_string(fraction * 100).substr(0, 4) + "%";
    std::printf("%-12s %13.1f%% %16llu %14.4f\n", label.c_str(),
                util * 100,
                static_cast<unsigned long long>(abandoned_blocks),
                cover_ratio);
  }

  std::printf("\n* abandoned blocks per hidden-data block at full load. The "
              "paper's 1%%\ndefault costs ~1 utilization point; raising it "
              "buys cover linearly in space.\n");
  bench::PrintFooter();
  return 0;
}
