// A tiny plain-chrono stand-in for the Google Benchmark API surface that
// bench_crypto.cc uses, so the crypto benchmark builds and runs on machines
// (and CI runners) without libbenchmark. When the real library is present
// the build defines STEGFS_USE_GBENCH and this header is never included.
//
// Supported subset: BENCHMARK(fn)->Arg(x)->Unit(u), State range-for with
// state.range(0) / state.iterations() / SetBytesProcessed / SkipWithError,
// DoNotOptimize, BENCHMARK_MAIN. Each benchmark runs for ~0.2 s of wall
// time and reports ns/op plus MB/s when bytes were recorded.
#ifndef STEGFS_BENCH_CHRONO_BENCHMARK_H_
#define STEGFS_BENCH_CHRONO_BENCHMARK_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond };

template <typename T>
inline void DoNotOptimize(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

class State {
 public:
  explicit State(int64_t arg) : arg_(arg) {}

  class iterator {
   public:
    iterator(State* s, bool at_end) : s_(s), at_end_(at_end) {}
    bool operator!=(const iterator& other) const {
      return at_end_ != other.at_end_ || !at_end_;
    }
    iterator& operator++() {
      if (!s_->KeepRunning()) at_end_ = true;
      return *this;
    }
    int operator*() const { return 0; }

   private:
    State* s_;
    bool at_end_;
  };

  iterator begin() {
    start_ = std::chrono::steady_clock::now();
    return iterator(this, skipped_);
  }
  iterator end() { return iterator(this, true); }

  int64_t range(int) const { return arg_; }
  int64_t iterations() const { return iters_; }
  void SetBytesProcessed(int64_t bytes) { bytes_ = bytes; }
  void SkipWithError(const char* msg) {
    skipped_ = true;
    error_ = msg;
  }

  bool skipped() const { return skipped_; }
  const std::string& error() const { return error_; }
  int64_t bytes() const { return bytes_; }
  double seconds() const { return seconds_; }

 private:
  bool KeepRunning() {
    ++iters_;
    if (skipped_) return false;
    // Check the clock every 256 iterations (cheap ops), or every iteration
    // once past 4k (so slow ops still stop near the budget).
    if ((iters_ & 0xff) != 0 && iters_ < 4096) return true;
    seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
    return seconds_ < kMinSeconds;
  }

  static constexpr double kMinSeconds = 0.2;
  int64_t arg_;
  int64_t iters_ = 0;
  int64_t bytes_ = 0;
  bool skipped_ = false;
  std::string error_;
  double seconds_ = 0;
  std::chrono::steady_clock::time_point start_;
};

struct Benchmark {
  std::string name;
  std::function<void(State&)> fn;
  std::vector<int64_t> args;

  Benchmark* Arg(int64_t a) {
    args.push_back(a);
    return this;
  }
  Benchmark* Unit(TimeUnit) { return this; }
};

inline std::vector<Benchmark*>& Registry() {
  static std::vector<Benchmark*> benches;
  return benches;
}

inline Benchmark* RegisterBenchmark(const char* name,
                                    std::function<void(State&)> fn) {
  auto* b = new Benchmark{name, std::move(fn), {}};
  Registry().push_back(b);
  return b;
}

inline void RunOne(const Benchmark& b, int64_t arg, bool has_arg) {
  State state(arg);
  b.fn(state);
  std::string label = b.name;
  if (has_arg) label += "/" + std::to_string(arg);
  if (state.skipped()) {
    std::printf("%-36s SKIPPED: %s\n", label.c_str(), state.error().c_str());
    return;
  }
  double sec = state.seconds();
  int64_t iters = state.iterations();
  double ns_per_op = iters > 0 ? sec * 1e9 / iters : 0;
  if (state.bytes() > 0 && sec > 0) {
    std::printf("%-36s %12.1f ns/op %10ld iters %9.1f MB/s\n", label.c_str(),
                ns_per_op, static_cast<long>(iters),
                static_cast<double>(state.bytes()) / sec / 1e6);
  } else {
    std::printf("%-36s %12.1f ns/op %10ld iters\n", label.c_str(), ns_per_op,
                static_cast<long>(iters));
  }
}

inline int RunAll() {
  std::printf("%-36s %15s %16s %14s\n", "benchmark", "time", "iterations",
              "throughput");
  for (const Benchmark* b : Registry()) {
    if (b->args.empty()) {
      RunOne(*b, 0, false);
    } else {
      for (int64_t a : b->args) RunOne(*b, a, true);
    }
  }
  return 0;
}

}  // namespace benchmark

#define BENCHMARK(fn)                                  \
  static ::benchmark::Benchmark* bench_reg_##fn =      \
      ::benchmark::RegisterBenchmark(#fn, fn)

#define BENCHMARK_MAIN() \
  int main() { return ::benchmark::RunAll(); }

#endif  // STEGFS_BENCH_CHRONO_BENCHMARK_H_
