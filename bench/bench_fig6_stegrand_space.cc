// Figure 6: StegRand effective space utilization vs replication factor,
// one series per block size.
//
// Reproduces the paper's loading experiment: a 1 GB volume is filled with
// (1, 2] MB files, each block of each replica written to a pseudorandom
// absolute address, until the first file loses all replicas of any block.
// Expected shape: utilization rises with replication (resilience), peaks in
// the 8-16 window, then falls (replication overhead dominates); smaller
// blocks yield uniformly lower utilization.
#include <cstdio>

#include "bench/bench_util.h"
#include "sim/space.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Figure 6: StegRand Space Utilization",
      "effective space utilization vs replication factor, per block size");

  const uint32_t kBlockSizes[] = {512,   1024,  2048,  4096,
                                  8192,  16384, 32768, 65536};
  const uint32_t kReplications[] = {1, 2, 4, 8, 16, 32, 64};

  std::printf("%-12s", "repl\\bs");
  for (uint32_t bs : kBlockSizes) {
    std::printf("%7.1fKB", bs / 1024.0);
  }
  std::printf("\n");

  for (uint32_t r : kReplications) {
    std::printf("%-12u", r);
    for (uint32_t bs : kBlockSizes) {
      sim::StegRandSpaceConfig cfg;
      cfg.volume_bytes = 1ULL << 30;  // paper: 1 GB
      cfg.block_size = bs;
      cfg.replication = r;
      cfg.trials = 3;
      double util = sim::StegRandSpaceUtilization(cfg);
      std::printf("%8.4f ", util);
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper shape check: peak in the 8-16 replication window; ~5%% at\n"
      "1 KB blocks; smaller blocks strictly worse.\n");
  bench::PrintFooter();
  return 0;
}
