// Ablation A4: buffer-cache size vs StegFS access time.
//
// StegFS's random placement defeats read-ahead but not caching: repeated
// reads of a working set are served from the buffer cache. This bench reads
// a small working set repeatedly under varying cache sizes and reports the
// simulated time per pass plus the hit rate.
#include <cstdio>

#include "bench/bench_util.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"
#include "cache/buffer_cache.h"
#include "core/hidden_object.h"
#include "fs/bitmap.h"
#include "util/random.h"

using namespace stegfs;

int main() {
  bench::PrintHeader(
      "Ablation A4: Buffer Cache Size vs StegFS Read Time",
      "8 hidden files x 256 KB working set, 3 read passes, 64 MB volume");

  const size_t kCacheSizes[] = {64, 256, 1024, 4096, 16384};
  std::printf("%-14s %14s %14s %12s\n", "cache blocks", "pass1 (s)",
              "pass3 (s)", "hit rate");

  for (size_t cache_blocks : kCacheSizes) {
    Layout layout = Layout::Compute(1024, 65536, 1024);
    auto sim = std::make_unique<SimDisk>(
        std::make_unique<MemBlockDevice>(layout.block_size,
                                         layout.num_blocks),
        DiskModelConfig{});
    BufferCache cache(sim.get(), cache_blocks, WritePolicy::kWriteThrough);
    BlockBitmap bitmap(layout);
    Xoshiro rng(9);

    HiddenVolume vol;
    vol.cache = &cache;
    vol.bitmap = &bitmap;
    vol.layout = layout;
    vol.rng = &rng;
    vol.probe_limit = 10000;

    // Build the working set.
    std::vector<std::unique_ptr<HiddenObject>> objs;
    for (int i = 0; i < 8; ++i) {
      auto obj = HiddenObject::Create(vol, "ws" + std::to_string(i),
                                      "k" + std::to_string(i),
                                      HiddenType::kFile);
      if (!obj.ok()) return 1;
      std::string content(256 << 10, '\0');
      rng.FillBytes(reinterpret_cast<uint8_t*>(content.data()),
                    content.size());
      if (!(*obj)->WriteAll(content).ok()) return 1;
      objs.push_back(std::move(*obj));
    }
    sim->ResetClock();

    double pass_times[3] = {0, 0, 0};
    for (int pass = 0; pass < 3; ++pass) {
      double before = sim->sim_time_seconds();
      for (auto& obj : objs) {
        auto data = obj->ReadAll();
        if (!data.ok()) return 1;
      }
      pass_times[pass] = sim->sim_time_seconds() - before;
    }

    std::printf("%-14zu %14.3f %14.3f %11.1f%%\n", cache_blocks,
                pass_times[0], pass_times[2],
                cache.stats().HitRate() * 100);
  }

  std::printf("\nReading: once the cache covers the working set (2048 "
              "blocks here), repeat\npasses become free — StegFS pays its "
              "random-placement penalty only on cold reads.\n");
  bench::PrintFooter();
  return 0;
}
