// Section 5.2 headline numbers: effective space utilization of the three
// steganographic schemes on a 1 GB volume with (1, 2] MB files.
//
//   StegCover ~ 75%      (analytic: E[file]/cover, one file per cover)
//   StegRand  ~ 5%       (Monte-Carlo at 1 KB blocks, replication sweep max)
//   StegFS    > 80%      (measured: real volume loaded until NoSpace)
//
// The paper's conclusion: StegFS is at least 10x more space-efficient than
// StegRand and beats StegCover without needing file packing/spanning.
#include <cstdio>

#include "baselines/file_store.h"
#include "bench/bench_util.h"
#include "blockdev/mem_block_device.h"
#include "sim/space.h"
#include "sim/workload.h"

using namespace stegfs;

namespace {

// Loads files into a real StegFS volume until allocation fails; returns
// unique-data bytes / volume bytes.
double MeasureStegFs(uint64_t volume_bytes, uint32_t block_size) {
  MemBlockDevice dev(block_size, volume_bytes / block_size);
  FileStoreOptions opts;
  auto store = CreateFileStore(SchemeKind::kStegFs, &dev, opts);
  if (!store.ok()) return -1;

  sim::WorkloadConfig wl;
  wl.volume_bytes = volume_bytes;
  wl.block_size = block_size;
  wl.num_files = 100000;  // effectively unbounded: load until full
  Xoshiro rng(42);
  uint64_t loaded = 0;
  for (uint32_t i = 0;; ++i) {
    uint64_t size = rng.UniformRange(wl.file_size_min, wl.file_size_max);
    sim::WorkloadFile f;
    f.name = "file-" + std::to_string(i);
    f.key = "key-" + std::to_string(i);
    f.size = size;
    Status s =
        (*store)->WriteFile(f.name, f.key, sim::FileContent(f, wl.seed));
    if (!s.ok()) break;
    loaded += size;
  }
  return static_cast<double>(loaded) / volume_bytes;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Section 5.2: Effective Space Utilization",
      "1 GB volume, 1 KB blocks, files uniform (1, 2] MB, Table 1 defaults");

  double cover = sim::StegCoverSpaceUtilization((1 << 20) + 1, 2 << 20,
                                                2 << 20);

  sim::StegRandSpaceConfig rand_cfg;
  rand_cfg.block_size = 1024;
  rand_cfg.trials = 3;
  double rand_best = 0;
  uint32_t rand_best_r = 1;
  for (uint32_t r : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    rand_cfg.replication = r;
    double u = sim::StegRandSpaceUtilization(rand_cfg);
    if (u > rand_best) {
      rand_best = u;
      rand_best_r = r;
    }
  }

  // Measured on a real (smaller) volume plus the analytic model at 1 GB;
  // the measurement uses 256 MB to keep the bench fast — utilization is
  // scale-free for StegFS (overheads are proportional).
  double stegfs_measured = MeasureStegFs(256ULL << 20, 1024);
  sim::StegFsSpaceConfig fs_cfg;
  double stegfs_analytic = sim::StegFsSpaceUtilization(fs_cfg);

  std::printf("%-12s %-14s %s\n", "scheme", "utilization", "method");
  std::printf("%-12s %8.1f%%      %s\n", "StegCover", cover * 100,
              "analytic (E[file]/cover, paper 5.2)");
  std::printf("%-12s %8.1f%%      %s\n", "StegRand", rand_best * 100,
              ("Monte-Carlo, best replication=" + std::to_string(rand_best_r))
                  .c_str());
  std::printf("%-12s %8.1f%%      %s\n", "StegFS", stegfs_measured * 100,
              "measured: real 256 MB volume loaded to NoSpace");
  std::printf("%-12s %8.1f%%      %s\n", "StegFS", stegfs_analytic * 100,
              "analytic overhead model at 1 GB");

  std::printf("\nPaper check: StegCover ~75%%; StegRand ~5%% at 1 KB blocks; "
              "StegFS >80%%\n(>=10x more space-efficient than StegRand).\n");
  if (rand_best > 0) {
    std::printf("StegFS / StegRand space advantage: %.1fx\n",
                stegfs_measured / rand_best);
  }
  bench::PrintFooter();
  return 0;
}
