// The redundancy write hole (PR 8 satellite): a partial-stripe write used
// to fold whatever the UNTOUCHED sibling shares currently held into the
// fresh parity — if a sibling had rotted since the last encode, the new
// parity (and new checksums) laundered the corruption into "verified"
// state. EncodeStripe now verifies untouched siblings against the OLD
// stripe record first, heals stale ones from the old codeword when k old
// shares survive, and fails with DataLoss (keeping the old record, so
// detection is preserved) when they don't.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "util/random.h"

namespace stegfs {
namespace {

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 4096;
const char* kUid = "alice";
const char* kUak = "uak-secret";
const char* kObj = "payload";

StegFormatOptions SmallFormat() {
  StegFormatOptions fmt;
  fmt.params.dummy_file_count = 2;
  fmt.params.dummy_file_avg_bytes = 2048;
  fmt.entropy = "write-hole-entropy";
  return fmt;
}

std::string Content(size_t bytes, uint64_t tag) {
  std::string s;
  s.reserve(bytes);
  while (s.size() < bytes) {
    s += "wh" + std::to_string(tag) + ":";
    s.push_back(static_cast<char>('A' + (s.size() % 29)));
  }
  s.resize(bytes);
  return s;
}

void OverwriteWithNoise(BlockDevice* dev, uint64_t block, uint64_t seed) {
  Xoshiro rng(0x5742a1e ^ seed);
  std::vector<uint8_t> noise(kBs);
  rng.FillBytes(noise.data(), noise.size());
  ASSERT_TRUE(dev->WriteBlock(block, noise.data()).ok());
}

// Creates the object under `policy`, flushes, and returns the device
// blocks of stripe 0's shares (data 0..k-1, then parity).
std::vector<uint64_t> SetUpObject(MemBlockDevice* dev,
                                  const RedundancyPolicy& policy,
                                  const std::string& content) {
  std::vector<uint64_t> shares;
  auto fs = StegFs::Mount(dev, StegFsOptions());
  EXPECT_TRUE(fs.ok());
  EXPECT_TRUE(
      (*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile, policy).ok());
  EXPECT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
  EXPECT_TRUE((*fs)->HiddenWriteAll(kUid, kObj, content).ok());
  auto obj = (*fs)->ConnectedForTesting(kUid, kObj);
  EXPECT_TRUE(obj.ok());
  auto blocks = obj.value()->ShareBlocksForTesting(0);
  EXPECT_TRUE(blocks.ok());
  shares = std::move(blocks).value();
  EXPECT_TRUE((*fs)->Flush().ok());
  return shares;
}

// IDA(2,4): two parity shares, so one rotted sibling is recoverable from
// the old codeword even while another data share is being rewritten. The
// unaligned write must succeed, heal the sibling, and leave the object
// reading back as (old content + patch) — not parity-laundered garbage.
TEST(WriteHoleTest, StaleSiblingHealedOnPartialStripeWrite) {
  MemBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  const RedundancyPolicy policy = RedundancyPolicy::Ida(2, 4);
  const std::string content = Content(4 * policy.k * kBs, 1);
  std::vector<uint64_t> stripe0 = SetUpObject(&dev, policy, content);
  ASSERT_EQ(stripe0.size(), 4u);
  ASSERT_NE(stripe0[0], 0u);

  // Rot data share 0 of stripe 0 beneath everything (cache is gone with
  // the unmount, so the corruption is what the next mount reads).
  OverwriteWithNoise(&dev, stripe0[0], 1);

  // Unaligned write INSIDE data share 1 of stripe 0: touches only that
  // share, so share 0 is an untouched sibling of the re-encode.
  const uint64_t patch_off = 1 * kBs + 37;  // file block 1 = share 1 (k=2)
  const std::string patch = "PATCHED-BYTES";
  std::string expected = content;
  expected.replace(patch_off, patch.size(), patch);
  {
    auto fs = StegFs::Mount(&dev, StegFsOptions());
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
    Status w = (*fs)->HiddenWrite(kUid, kObj, patch_off, patch);
    ASSERT_TRUE(w.ok()) << w.ToString();
    // The stale sibling was detected against the old record and healed
    // from the old codeword before parity was recomputed.
    EXPECT_GE((*fs)->redundancy_stats().verify_failures.load(), 1u);
    EXPECT_GE((*fs)->redundancy_stats().shares_healed.load(), 1u);
    auto back = (*fs)->HiddenReadAll(kUid, kObj);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), expected);
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  // The healed state persists: a cold mount reads the same bytes.
  auto fs = StegFs::Mount(&dev, StegFsOptions());
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
  auto back = (*fs)->HiddenReadAll(kUid, kObj);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), expected);
}

// IDA(3,4): one parity share. With one sibling rotted and one sibling
// legitimately being rewritten, only k-1 old shares survive — recovery
// is impossible and the write must fail CLEANLY with DataLoss. The old
// stripe record stays, so later reads still flag the stripe instead of
// returning laundered bytes (this is the regression the old code failed:
// it would re-checksum the rot and report success everywhere).
TEST(WriteHoleTest, UnrecoverableStaleSiblingFailsCleanNotSilent) {
  MemBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  const RedundancyPolicy policy = RedundancyPolicy::Ida(3, 4);
  const std::string content = Content(4 * policy.k * kBs, 2);
  std::vector<uint64_t> stripe0 = SetUpObject(&dev, policy, content);
  ASSERT_EQ(stripe0.size(), 4u);
  ASSERT_NE(stripe0[0], 0u);

  OverwriteWithNoise(&dev, stripe0[0], 2);

  auto fs = StegFs::Mount(&dev, StegFsOptions());
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
  const uint64_t patch_off = 1 * kBs + 37;  // file block 1 = share 1 (k=3)
  Status w = (*fs)->HiddenWrite(kUid, kObj, patch_off, "DOOMED");
  ASSERT_FALSE(w.ok()) << "write silently laundered a rotted sibling";
  EXPECT_TRUE(w.IsDataLoss()) << w.ToString();
  EXPECT_GE((*fs)->redundancy_stats().verify_failures.load(), 1u);

  // Reading the object must never return garbage: either the damaged
  // stripe flags DataLoss, or (if healing found enough shares) the bytes
  // are exactly one of the two legitimate states.
  auto back = (*fs)->HiddenReadAll(kUid, kObj);
  if (back.ok()) {
    std::string patched = content;
    patched.replace(patch_off, 6, "DOOMED");
    EXPECT_TRUE(back.value() == content || back.value() == patched)
        << "read returned bytes matching neither version";
  } else {
    EXPECT_TRUE(back.status().IsDataLoss()) << back.status().ToString();
  }
}

// Fault-free partial-stripe writes keep working exactly as before the
// verify-before-write change (the verification must not reject stripes
// whose siblings are simply fine, including trailing holes).
TEST(WriteHoleTest, CleanPartialStripeWritesUnaffected) {
  MemBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  const RedundancyPolicy policy = RedundancyPolicy::Ida(3, 4);
  // 1.5 stripes: stripe 1 has a trailing hole share.
  const std::string content = Content(4 * kBs + 200, 3);
  SetUpObject(&dev, policy, content);

  auto fs = StegFs::Mount(&dev, StegFsOptions());
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
  std::string expected = content;
  // Patch every file block in turn: full-stripe and partial-stripe
  // encodes, boundary stripe included.
  for (uint64_t blk = 0; blk * kBs < content.size(); ++blk) {
    const uint64_t off = blk * kBs + (blk % 100);
    const std::string patch = "p" + std::to_string(blk);
    Status w = (*fs)->HiddenWrite(kUid, kObj, off, patch);
    ASSERT_TRUE(w.ok()) << "block " << blk << ": " << w.ToString();
    expected.replace(off, patch.size(), patch);
  }
  EXPECT_EQ((*fs)->redundancy_stats().verify_failures.load(), 0u);
  EXPECT_EQ((*fs)->redundancy_stats().shares_healed.load(), 0u);
  auto back = (*fs)->HiddenReadAll(kUid, kObj);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), expected);
}

// Growing the object across the old boundary stripe re-encodes it with
// the new blocks marked touched; the old shares must verify, not flag.
TEST(WriteHoleTest, BoundaryStripeGrowthVerifiesOldShares) {
  MemBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  const RedundancyPolicy policy = RedundancyPolicy::Ida(2, 3);
  // 0.75 of a stripe, then append past the stripe boundary.
  const std::string head = Content(kBs + kBs / 2, 4);
  SetUpObject(&dev, policy, head);

  auto fs = StegFs::Mount(&dev, StegFsOptions());
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
  const std::string tail = Content(3 * kBs, 5);
  ASSERT_TRUE((*fs)->HiddenWrite(kUid, kObj, head.size(), tail).ok());
  EXPECT_EQ((*fs)->redundancy_stats().verify_failures.load(), 0u);
  auto back = (*fs)->HiddenReadAll(kUid, kObj);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), head + tail);
}

}  // namespace
}  // namespace stegfs
