// PlainFs stress and edge cases: directories spanning many blocks, name
// limits, slot reuse, deep nesting, and randomized churn against a model.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/mem_block_device.h"
#include "fs/plain_fs.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class PlainFsStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 65536);  // 64 MB
    FormatOptions fo;
    fo.num_inodes = 2048;
    ASSERT_TRUE(PlainFs::Format(dev_.get(), fo).ok());
    auto fs = PlainFs::Mount(dev_.get(), MountOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<PlainFs> fs_;
};

TEST_F(PlainFsStressTest, DirectorySpanningManyBlocks) {
  // 500 entries x 64 bytes = 32000 bytes of directory data (32 blocks).
  ASSERT_TRUE(fs_->MkDir("/big").ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        fs_->WriteFile("/big/file" + std::to_string(i), "x").ok())
        << i;
  }
  auto entries = fs_->List("/big");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 500u);
  // Spot-check lookups across the span.
  for (int i : {0, 123, 250, 499}) {
    EXPECT_TRUE(fs_->Exists("/big/file" + std::to_string(i))) << i;
  }
}

TEST_F(PlainFsStressTest, DirectorySlotReuse) {
  ASSERT_TRUE(fs_->MkDir("/d").ok());
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          fs_->WriteFile("/d/f" + std::to_string(i), "data").ok());
    }
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(fs_->Unlink("/d/f" + std::to_string(i)).ok());
    }
  }
  // Freed slots are reused: the directory never grows past ~one round.
  auto info = fs_->Stat("/d");
  ASSERT_TRUE(info.ok());
  EXPECT_LE(info->size, 50u * 64 + 64);
}

TEST_F(PlainFsStressTest, NameLengthLimits) {
  std::string max_name(kMaxNameLen, 'n');
  ASSERT_TRUE(fs_->WriteFile("/" + max_name, "ok").ok());
  EXPECT_EQ(fs_->ReadFile("/" + max_name).value(), "ok");
  std::string too_long(kMaxNameLen + 1, 'n');
  EXPECT_TRUE(fs_->CreateFile("/" + too_long).IsInvalidArgument());
}

TEST_F(PlainFsStressTest, DeepNesting) {
  std::string path;
  for (int depth = 0; depth < 24; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(fs_->MkDir(path).ok()) << path;
  }
  ASSERT_TRUE(fs_->WriteFile(path + "/leaf", "deep").ok());
  EXPECT_EQ(fs_->ReadFile(path + "/leaf").value(), "deep");
}

TEST_F(PlainFsStressTest, InodeExhaustionSurfacesCleanly) {
  Status s;
  int created = 0;
  for (int i = 0; i < 5000 && s.ok(); ++i) {
    s = fs_->CreateFile("/x" + std::to_string(i));
    if (s.ok()) ++created;
  }
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
  EXPECT_GT(created, 2000);  // 2048 inodes minus root
  // The file system still functions after hitting the wall.
  ASSERT_TRUE(fs_->Unlink("/x0").ok());
  EXPECT_TRUE(fs_->CreateFile("/recycled").ok());
}

TEST_F(PlainFsStressTest, RandomizedChurnAgainstModel) {
  // 300 random operations mirrored against an in-memory model; contents
  // must match exactly at every step's end.
  std::map<std::string, std::string> model;
  Xoshiro rng(99);
  for (int op = 0; op < 300; ++op) {
    int kind = static_cast<int>(rng.Uniform(10));
    std::string name = "/churn" + std::to_string(rng.Uniform(20));
    if (kind < 5) {  // write
      std::string content = RandomData(rng.Uniform(200000), op);
      ASSERT_TRUE(fs_->WriteFile(name, content).ok()) << op;
      model[name] = content;
    } else if (kind < 7 && !model.empty()) {  // delete random existing
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(fs_->Unlink(it->first).ok()) << op;
      model.erase(it);
    } else if (kind < 9 && !model.empty()) {  // verify random existing
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      auto data = fs_->ReadFile(it->first);
      ASSERT_TRUE(data.ok()) << op;
      ASSERT_EQ(data.value(), it->second) << op;
    } else {  // truncate random existing
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      uint64_t new_size = rng.Uniform(it->second.size() + 1);
      ASSERT_TRUE(fs_->TruncateFile(it->first, new_size).ok()) << op;
      it->second.resize(new_size);
    }
  }
  // Final audit of everything.
  for (const auto& [name, content] : model) {
    auto data = fs_->ReadFile(name);
    ASSERT_TRUE(data.ok()) << name;
    EXPECT_EQ(data.value(), content) << name;
  }
  // No leaks: allocated blocks == blocks referenced by inodes + metadata.
  std::vector<uint8_t> referenced;
  ASSERT_TRUE(fs_->CollectReferencedBlocks(&referenced).ok());
  for (uint64_t b = 0; b < fs_->layout().num_blocks; ++b) {
    EXPECT_EQ(fs_->bitmap()->IsAllocated(b), static_cast<bool>(referenced[b]))
        << "block " << b;
  }
}

TEST_F(PlainFsStressTest, StatDistinguishesTypes) {
  ASSERT_TRUE(fs_->MkDir("/dir").ok());
  ASSERT_TRUE(fs_->WriteFile("/file", "x").ok());
  EXPECT_EQ(fs_->Stat("/dir")->type, InodeType::kDirectory);
  EXPECT_EQ(fs_->Stat("/file")->type, InodeType::kFile);
  EXPECT_TRUE(fs_->ReadFile("/dir").status().IsInvalidArgument());
  EXPECT_TRUE(fs_->List("/file").status().IsInvalidArgument());
  EXPECT_TRUE(fs_->Unlink("/dir").IsInvalidArgument());
  EXPECT_TRUE(fs_->RmDir("/file").IsInvalidArgument());
}

}  // namespace
}  // namespace stegfs
