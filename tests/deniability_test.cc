// Deniability properties (the paper's objective (b)): an attacker with the
// raw disk image, the bitmap and the full source code must not be able to
// tell whether hidden files exist beyond the volume's standing population
// (abandoned blocks + dummy files).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

StegFormatOptions FastFormat(const std::string& entropy) {
  StegFormatOptions o;
  o.params.dummy_file_count = 2;
  o.params.dummy_file_avg_bytes = 64 << 10;
  o.entropy = entropy;
  return o;
}

// Shannon entropy per byte over a block, in bits (8.0 = perfectly uniform).
double BlockEntropy(const uint8_t* data, size_t n) {
  std::vector<int> counts(256, 0);
  for (size_t i = 0; i < n; ++i) counts[data[i]]++;
  double h = 0;
  for (int c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

class DeniabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 32768);
    ASSERT_TRUE(StegFs::Format(dev_.get(), FastFormat("deny-test")).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
};

TEST_F(DeniabilityTest, FreshVolumeDataBlocksLookUniformlyRandom) {
  const Layout& l = fs_->plain()->layout();
  const auto& raw = dev_->raw();
  // Sample data blocks: each must have near-8-bit entropy.
  for (uint64_t b = l.data_start; b < l.num_blocks; b += 997) {
    double h = BlockEntropy(raw.data() + b * l.block_size, l.block_size);
    EXPECT_GT(h, 7.5) << "low-entropy data block " << b;
  }
}

TEST_F(DeniabilityTest, HiddenBlocksIndistinguishableFromFreeBlocks) {
  // Write a hidden file, then compare the entropy distribution of its
  // blocks (allocated, unlisted) against untouched free blocks. An
  // attacker running this exact test must learn nothing.
  ASSERT_TRUE(
      fs_->StegCreate("u", "secret", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("u", "secret", "uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("u", "secret", RandomData(1 << 20, 4)).ok());
  ASSERT_TRUE(fs_->Flush().ok());

  const Layout& l = fs_->plain()->layout();
  std::vector<uint8_t> referenced;
  ASSERT_TRUE(fs_->plain()->CollectReferencedBlocks(&referenced).ok());

  const auto& raw = dev_->raw();
  std::vector<double> unlisted_entropy, free_entropy;
  for (uint64_t b = l.data_start; b < l.num_blocks; ++b) {
    double h = BlockEntropy(raw.data() + b * l.block_size, l.block_size);
    bool allocated = fs_->plain()->bitmap()->IsAllocated(b);
    if (allocated && !referenced[b]) {
      unlisted_entropy.push_back(h);
    } else if (!allocated) {
      free_entropy.push_back(h);
    }
  }
  ASSERT_GT(unlisted_entropy.size(), 100u);
  ASSERT_GT(free_entropy.size(), 100u);

  double unlisted_mean = 0, free_mean = 0;
  for (double h : unlisted_entropy) unlisted_mean += h;
  for (double h : free_entropy) free_mean += h;
  unlisted_mean /= unlisted_entropy.size();
  free_mean /= free_entropy.size();
  // Means within noise of each other (both ~7.8 bits at 1 KB blocks).
  EXPECT_NEAR(unlisted_mean, free_mean, 0.02);
}

TEST_F(DeniabilityTest, PlaintextNeverOnDisk) {
  // A recognizable plaintext pattern written to a hidden file must not
  // appear anywhere in the raw image.
  std::string marker = "THIS-IS-THE-SECRET-MARKER-0123456789";
  std::string content;
  for (int i = 0; i < 1000; ++i) content += marker;

  ASSERT_TRUE(fs_->StegCreate("u", "m", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("u", "m", "uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("u", "m", content).ok());
  ASSERT_TRUE(fs_->Flush().ok());

  const auto& raw = dev_->raw();
  auto it = std::search(raw.begin(), raw.end(), marker.begin(), marker.end());
  EXPECT_EQ(it, raw.end()) << "plaintext leaked to the raw device";
}

TEST_F(DeniabilityTest, TwoVolumesDifferOnlyByKnowledge) {
  // Volume A: no user hidden files. Volume B: one hidden file. Without
  // keys, the *structure visible to an attacker* (bitmap counts beyond the
  // standing population, central directory, entropy profile) must not
  // prove B hides more than A — because A's abandoned blocks and dummies
  // already account for allocated-but-unlisted space. We check that both
  // volumes have a nonzero unlisted population and that B's does not stand
  // out as the only volume with unlisted blocks.
  auto make_volume = [](bool with_hidden) -> uint64_t {
    MemBlockDevice dev(1024, 32768);
    StegFormatOptions fo;
    fo.params.dummy_file_count = 2;
    fo.params.dummy_file_avg_bytes = 64 << 10;
    fo.entropy = "volume-compare";
    EXPECT_TRUE(StegFs::Format(&dev, fo).ok());
    auto fs = StegFs::Mount(&dev, StegFsOptions{});
    EXPECT_TRUE(fs.ok());
    if (with_hidden) {
      EXPECT_TRUE(
          (*fs)->StegCreate("u", "s", "uak", HiddenType::kFile).ok());
      EXPECT_TRUE((*fs)->StegConnect("u", "s", "uak").ok());
      EXPECT_TRUE(
          (*fs)->HiddenWriteAll("u", "s", RandomData(200 << 10, 9)).ok());
    }
    EXPECT_TRUE((*fs)->Flush().ok());
    std::vector<uint8_t> referenced;
    EXPECT_TRUE((*fs)->plain()->CollectReferencedBlocks(&referenced).ok());
    uint64_t unlisted = 0;
    const Layout& l = (*fs)->plain()->layout();
    for (uint64_t b = l.data_start; b < l.num_blocks; ++b) {
      if ((*fs)->plain()->bitmap()->IsAllocated(b) && !referenced[b]) {
        ++unlisted;
      }
    }
    return unlisted;
  };

  uint64_t without_hidden = make_volume(false);
  uint64_t with_hidden = make_volume(true);
  // Both volumes have large unlisted populations; the attacker cannot use
  // "unlisted blocks exist" as evidence of hidden data.
  EXPECT_GT(without_hidden, 300u);
  EXPECT_GT(with_hidden, without_hidden);  // more, but...
  // ...the baseline population is the cover: the increment is a small
  // fraction of the standing population, and dummy churn (MaintenanceTick)
  // varies it over time anyway.
  EXPECT_LT(static_cast<double>(with_hidden - without_hidden) /
                without_hidden,
            1.0);
}

TEST_F(DeniabilityTest, BitmapConsistentWithNoHiddenInterpretation) {
  // Every allocated-but-unlisted block could plausibly be abandoned: the
  // attacker cannot partition them. We verify the file system itself can't
  // either (without keys): no API reveals hidden block ownership.
  ASSERT_TRUE(fs_->StegCreate("u", "s", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->Flush().ok());
  SpaceReport r = fs_->ReportSpace();
  // The report exposes only aggregate counts — structural check that the
  // public surface carries no per-block ownership information.
  EXPECT_GT(r.allocated_blocks, 0u);
}

TEST(DeniabilityCryptoFillTest, CryptoFillAlsoUniform) {
  MemBlockDevice dev(1024, 8192);
  StegFormatOptions fo;
  fo.fill_mode = FillMode::kCrypto;
  fo.params.dummy_file_count = 1;
  fo.params.dummy_file_avg_bytes = 16 << 10;
  fo.entropy = "crypto-fill";
  ASSERT_TRUE(StegFs::Format(&dev, fo).ok());
  const auto& raw = dev.raw();
  // Sample some data-region blocks.
  for (size_t off = 4096 * 1024; off + 1024 <= raw.size(); off += 997 * 1024) {
    double h = BlockEntropy(raw.data() + off, 1024);
    EXPECT_GT(h, 7.5);
  }
}

}  // namespace
}  // namespace stegfs
