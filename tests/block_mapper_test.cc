#include "fs/block_mapper.h"

#include <gtest/gtest.h>

#include <set>

#include "blockdev/mem_block_device.h"
#include "fs/bitmap.h"

namespace stegfs {
namespace {

// A simple allocator over the bitmap with the random policy.
class TestAllocator : public BlockAllocator {
 public:
  TestAllocator(BlockBitmap* bm, Xoshiro* rng) : bm_(bm), rng_(rng) {}
  StatusOr<uint64_t> AllocateBlock() override {
    return bm_->AllocateByPolicy(AllocPolicy::kRandom, rng_);
  }
  Status FreeBlock(uint64_t block) override { return bm_->Free(block); }

 private:
  BlockBitmap* bm_;
  Xoshiro* rng_;
};

class BlockMapperTest : public ::testing::Test {
 protected:
  BlockMapperTest()
      : layout_(Layout::Compute(512, 40000, 64)),
        dev_(layout_.block_size, layout_.num_blocks),
        cache_(&dev_, 512),
        store_(&cache_),
        bitmap_(layout_),
        rng_(11),
        alloc_(&bitmap_, &rng_),
        mapper_(layout_.block_size) {}

  Layout layout_;
  MemBlockDevice dev_;
  BufferCache cache_;
  CacheBlockStore store_;
  BlockBitmap bitmap_;
  Xoshiro rng_;
  TestAllocator alloc_;
  BlockMapper mapper_;
};

TEST_F(BlockMapperTest, MaxFileBlocks) {
  // 512 B blocks -> 128 pointers per block: 10 + 128 + 128*128 = 16522.
  EXPECT_EQ(mapper_.MaxFileBlocks(), 10u + 128u + 128u * 128u);
}

TEST_F(BlockMapperTest, HoleReportsNotFound) {
  Inode ino;
  ino.type = InodeType::kFile;
  EXPECT_TRUE(mapper_.Map(ino, 0, &store_).status().IsNotFound());
  EXPECT_TRUE(mapper_.Map(ino, 100, &store_).status().IsNotFound());
  EXPECT_TRUE(mapper_.Map(ino, 16000, &store_).status().IsNotFound());
  // Beyond the maximum file size is a caller error, not a hole.
  EXPECT_TRUE(mapper_.Map(ino, 20000, &store_).status().IsInvalidArgument());
}

TEST_F(BlockMapperTest, MapOrAllocateDirect) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  auto b = mapper_.MapOrAllocate(&ino, 3, &store_, &alloc_, &dirty);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(dirty);
  EXPECT_EQ(ino.direct[3], b.value());
  // Mapping again returns the same block without reallocation.
  auto again = mapper_.Map(ino, 3, &store_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), b.value());
}

TEST_F(BlockMapperTest, SingleIndirectRange) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  uint64_t idx = kDirectPointers + 5;
  auto b = mapper_.MapOrAllocate(&ino, idx, &store_, &alloc_, &dirty);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(ino.single_indirect, kNullBlock);
  auto read_back = mapper_.Map(ino, idx, &store_);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), b.value());
}

TEST_F(BlockMapperTest, DoubleIndirectRange) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  uint64_t ptrs = 128;
  uint64_t idx = kDirectPointers + ptrs + 3 * ptrs + 7;  // deep in double
  auto b = mapper_.MapOrAllocate(&ino, idx, &store_, &alloc_, &dirty);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(ino.double_indirect, kNullBlock);
  auto read_back = mapper_.Map(ino, idx, &store_);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), b.value());
}

TEST_F(BlockMapperTest, BeyondMaxRejected) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  uint64_t idx = mapper_.MaxFileBlocks();
  EXPECT_TRUE(mapper_.MapOrAllocate(&ino, idx, &store_, &alloc_, &dirty)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BlockMapperTest, DistinctIndicesGetDistinctBlocks) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  std::set<uint64_t> blocks;
  for (uint64_t idx = 0; idx < 300; ++idx) {
    auto b = mapper_.MapOrAllocate(&ino, idx, &store_, &alloc_, &dirty);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(blocks.insert(b.value()).second) << "dup at " << idx;
  }
}

TEST_F(BlockMapperTest, FreeFromReturnsAllBlocks) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  uint64_t before = bitmap_.free_count();
  for (uint64_t idx = 0; idx < 200; ++idx) {
    ASSERT_TRUE(
        mapper_.MapOrAllocate(&ino, idx, &store_, &alloc_, &dirty).ok());
  }
  EXPECT_LT(bitmap_.free_count(), before);
  ASSERT_TRUE(mapper_.FreeFrom(&ino, 0, &store_, &alloc_).ok());
  EXPECT_EQ(bitmap_.free_count(), before);  // no leaks, indirects included
  EXPECT_EQ(ino.single_indirect, kNullBlock);
  EXPECT_EQ(ino.double_indirect, kNullBlock);
  for (uint32_t i = 0; i < kDirectPointers; ++i) {
    EXPECT_EQ(ino.direct[i], kNullBlock);
  }
}

TEST_F(BlockMapperTest, PartialTruncateKeepsPrefix) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  std::vector<uint64_t> blocks;
  for (uint64_t idx = 0; idx < 150; ++idx) {
    auto b = mapper_.MapOrAllocate(&ino, idx, &store_, &alloc_, &dirty);
    ASSERT_TRUE(b.ok());
    blocks.push_back(b.value());
  }
  ASSERT_TRUE(mapper_.FreeFrom(&ino, 100, &store_, &alloc_).ok());
  for (uint64_t idx = 0; idx < 100; ++idx) {
    auto b = mapper_.Map(ino, idx, &store_);
    ASSERT_TRUE(b.ok()) << idx;
    EXPECT_EQ(b.value(), blocks[idx]);
  }
  for (uint64_t idx = 100; idx < 150; ++idx) {
    EXPECT_TRUE(mapper_.Map(ino, idx, &store_).status().IsNotFound()) << idx;
  }
}

TEST_F(BlockMapperTest, CollectBlocksCountsDataAndIndirect) {
  Inode ino;
  ino.type = InodeType::kFile;
  bool dirty = false;
  const uint64_t kData = 150;  // spans direct + single + into double
  for (uint64_t idx = 0; idx < kData; ++idx) {
    ASSERT_TRUE(
        mapper_.MapOrAllocate(&ino, idx, &store_, &alloc_, &dirty).ok());
  }
  std::vector<uint64_t> collected;
  ASSERT_TRUE(mapper_.CollectBlocks(ino, &store_, &collected).ok());
  // 150 data + 1 single-indirect + 1 double-indirect + 1 L2 block.
  EXPECT_EQ(collected.size(), kData + 3);
}

}  // namespace
}  // namespace stegfs
