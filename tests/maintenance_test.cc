// Long-run properties of the dummy-file maintenance loop (paper 3.1): the
// churn must be perpetual (bitmap keeps changing), bounded (dummy sizes
// hover near their configured average), and harmless (hidden/plain data and
// space accounting stay intact over many ticks).
#include <gtest/gtest.h>

#include <set>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 65536);
    StegFormatOptions fo;
    fo.params.dummy_file_count = 4;
    fo.params.dummy_file_avg_bytes = 128 << 10;
    fo.entropy = "maintenance-test";
    ASSERT_TRUE(StegFs::Format(dev_.get(), fo).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  // Snapshot of allocated block numbers (what a bitmap-diffing intruder
  // records).
  std::set<uint64_t> BitmapSnapshot() {
    std::set<uint64_t> allocated;
    const Layout& l = fs_->plain()->layout();
    for (uint64_t b = l.data_start; b < l.num_blocks; ++b) {
      if (fs_->plain()->bitmap()->IsAllocated(b)) allocated.insert(b);
    }
    return allocated;
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
};

TEST_F(MaintenanceTest, ChurnIsPerpetual) {
  // Across 20 ticks, the allocation picture must keep changing — a static
  // picture would let snapshot differencing isolate real hidden writes.
  auto prev = BitmapSnapshot();
  int changed_rounds = 0;
  for (int tick = 0; tick < 20; ++tick) {
    ASSERT_TRUE(fs_->MaintenanceTick().ok());
    auto now = BitmapSnapshot();
    if (now != prev) ++changed_rounds;
    prev = std::move(now);
  }
  EXPECT_GE(changed_rounds, 15);
}

TEST_F(MaintenanceTest, AllocationStaysBounded) {
  // Dummies grow and shrink around their average: total allocation must
  // not drift upward without bound.
  uint64_t start_alloc = 65536 - fs_->plain()->bitmap()->free_count();
  uint64_t max_alloc = start_alloc;
  for (int tick = 0; tick < 60; ++tick) {
    ASSERT_TRUE(fs_->MaintenanceTick().ok());
    max_alloc = std::max(
        max_alloc, 65536 - fs_->plain()->bitmap()->free_count());
  }
  // 4 dummies x 128 KB average: allow 3x average in flight + pools.
  EXPECT_LT(max_alloc, start_alloc + 4 * 3 * 128 + 512);
}

TEST_F(MaintenanceTest, SurvivesManyTicksWithUserData) {
  std::string content = RandomData(700000, 5);
  ASSERT_TRUE(
      fs_->StegCreate("u", "vault", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("u", "vault", "uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("u", "vault", content).ok());
  ASSERT_TRUE(fs_->DisconnectAll("u").ok());
  ASSERT_TRUE(fs_->plain()->WriteFile("/plain.bin", content).ok());

  for (int tick = 0; tick < 50; ++tick) {
    ASSERT_TRUE(fs_->MaintenanceTick().ok()) << tick;
  }

  ASSERT_TRUE(fs_->StegConnect("u", "vault", "uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("u", "vault").value(), content);
  EXPECT_EQ(fs_->plain()->ReadFile("/plain.bin").value(), content);
}

TEST_F(MaintenanceTest, TicksPersistAcrossRemount) {
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(fs_->MaintenanceTick().ok());
  ASSERT_TRUE(fs_->Flush().ok());
  fs_.reset();
  auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  // Dummies remain maintainable after remount.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_->MaintenanceTick().ok()) << i;
  }
}

TEST_F(MaintenanceTest, NoLeaksOverManyTicks) {
  // Allocated-but-unlisted population = dummies + pools + abandoned. After
  // many ticks it must still be fully consistent: free count + allocated
  // count == total, and a remount computes the same free count.
  for (int tick = 0; tick < 30; ++tick) {
    ASSERT_TRUE(fs_->MaintenanceTick().ok());
  }
  uint64_t free_in_memory = fs_->plain()->bitmap()->free_count();
  ASSERT_TRUE(fs_->Flush().ok());
  fs_.reset();
  auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ((*fs)->plain()->bitmap()->free_count(), free_in_memory);
}

}  // namespace
}  // namespace stegfs
