// The crash-injection matrix (ISSUE 5 acceptance): record a durable
// StegFS workload's device write stream, materialize crash states
// (prefix replay × dropped-subset tails × torn final write), remount,
// and verify that
//   - every committed operation is fully visible,
//   - every uncommitted operation is fully absent (at worst, the single
//     in-flight operation is visible — complete — or not),
//   - no hidden file readable before the crash is lost,
//   - fsck finds nothing to repair and the journal ring is at rest,
// across recording engines {sync, thread-pool} × verify engines
// {sync, thread-pool, io_uring-when-available}. (io_uring cannot RECORD:
// it writes through the raw fd underneath any decorator — by design.)
//
// The deniability leg: after a crash during hidden activity and a
// recovery with NO level opened, the journal region must be bit-
// identical to that of a plain-only volume with the same format entropy
// — and to a freshly formatted one. Nothing in the ring may parse.
//
// A summary of every materialized crash state is written to
// CRASH_matrix.json (archived by the crash-consistency CI job).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "fs/plain_fs.h"
#include "journal/recovery.h"
#include "tests/crash_harness.h"

namespace stegfs {
namespace {

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 8192;
constexpr uint32_t kRing = 16;
const char* kUid = "alice";
const char* kUak = "uak-secret";

struct MatrixCell {
  std::string record_engine;
  std::string verify_engine;
  uint64_t crash_states = 0;
  uint64_t torn_states = 0;
  uint64_t subset_states = 0;
  uint64_t failures = 0;
};
std::vector<MatrixCell>& Summary() {
  static std::vector<MatrixCell> cells;
  return cells;
}

class CrashMatrixJson : public ::testing::Environment {
 public:
  void TearDown() override {
    std::FILE* f = std::fopen("CRASH_matrix.json", "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"crash_consistency\",\n  \"cells\": [\n");
    const auto& cells = Summary();
    for (size_t i = 0; i < cells.size(); ++i) {
      const MatrixCell& c = cells[i];
      std::fprintf(f,
                   "    {\"record_engine\": \"%s\", \"verify_engine\": "
                   "\"%s\", \"crash_states\": %llu, \"torn\": %llu, "
                   "\"subset\": %llu, \"failures\": %llu}%s\n",
                   c.record_engine.c_str(), c.verify_engine.c_str(),
                   (unsigned long long)c.crash_states,
                   (unsigned long long)c.torn_states,
                   (unsigned long long)c.subset_states,
                   (unsigned long long)c.failures,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
};
const auto* const kJsonEnv =
    ::testing::AddGlobalTestEnvironment(new CrashMatrixJson);

std::string Content(int op, size_t bytes) {
  std::string s;
  s.reserve(bytes);
  while (s.size() < bytes) {
    s += "op" + std::to_string(op) + ":";
    s.push_back(static_cast<char>('a' + (s.size() % 23)));
  }
  s.resize(bytes);
  return s;
}

// One tracked object and its committed version chain (empty string =
// the object exists with no content yet; absent = not in the chain).
struct Tracked {
  bool hidden = false;
  std::string name;                   // path or hidden object name
  std::vector<std::string> versions;  // committed contents, oldest first
  std::vector<int> version_ops;       // op index that committed each
  int unlink_op = -1;                 // op that removed it (-1 = never)
};

StegFsOptions DurableOpts(IoEngine engine) {
  StegFsOptions opts;
  opts.mount.durability = Durability::kJournal;
  opts.mount.io_engine = engine;
  opts.mount.cache_blocks = 128;
  return opts;
}

StegFormatOptions SmallFormat() {
  StegFormatOptions fmt;
  fmt.journal_blocks = kRing;
  fmt.params.dummy_file_count = 2;
  fmt.params.dummy_file_avg_bytes = 2048;
  fmt.entropy = "crash-matrix-entropy";
  return fmt;
}

// Runs the workload on `fs`, appending to the tracked-object table. Each
// op ends with a Flush (a real barrier on a durable mount), so op i is
// fully durable before op i+1 touches the device.
void RunWorkload(StegFs* fs, std::vector<Tracked>* tracked) {
  auto plain_op = [&](int op, const std::string& path, size_t bytes) {
    ASSERT_TRUE(fs->plain()->WriteFile(path, Content(op, bytes)).ok());
    ASSERT_TRUE(fs->Flush().ok());
    for (Tracked& t : *tracked) {
      if (!t.hidden && t.name == path) {
        t.versions.push_back(Content(op, bytes));
        t.version_ops.push_back(op);
        return;
      }
    }
    Tracked t;
    t.name = path;
    t.versions = {Content(op, bytes)};
    t.version_ops = {op};
    tracked->push_back(t);
  };
  auto hidden_op = [&](int op, const std::string& name, size_t bytes) {
    for (Tracked& t : *tracked) {
      if (t.hidden && t.name == name) {
        ASSERT_TRUE(fs->HiddenWriteAll(kUid, name, Content(op, bytes)).ok());
        ASSERT_TRUE(fs->Flush().ok());
        t.versions.push_back(Content(op, bytes));
        t.version_ops.push_back(op);
        return;
      }
    }
    ASSERT_TRUE(fs->StegCreate(kUid, name, kUak, HiddenType::kFile).ok());
    ASSERT_TRUE(fs->StegConnect(kUid, name, kUak).ok());
    ASSERT_TRUE(fs->HiddenWriteAll(kUid, name, Content(op, bytes)).ok());
    ASSERT_TRUE(fs->Flush().ok());
    Tracked t;
    t.hidden = true;
    t.name = name;
    t.versions = {Content(op, bytes)};
    t.version_ops = {op};
    tracked->push_back(t);
  };

  plain_op(0, "/f0", 700);
  hidden_op(1, "h1", 1800);
  plain_op(2, "/f2", 8 * kBs);    // spans the single-indirect boundary
  hidden_op(3, "h3", 7 * kBs);    // ditto, through the pool allocator
  plain_op(4, "/f0", 900);        // plain overwrite (version check)
  hidden_op(5, "h1", 2600);       // hidden overwrite (version check)
  {                               // op 6: directory create + file
    ASSERT_TRUE(fs->plain()->MkDir("/d6").ok());
    plain_op(6, "/d6/g", 1200);
  }
  {                               // op 7: unlink
    ASSERT_TRUE(fs->plain()->Unlink("/f2").ok());
    ASSERT_TRUE(fs->Flush().ok());
    for (Tracked& t : *tracked) {
      if (!t.hidden && t.name == "/f2") t.unlink_op = 7;
    }
  }
  hidden_op(8, "h8", 1500);
  ASSERT_TRUE(fs->DisconnectAll(kUid).ok());
  ASSERT_TRUE(fs->Flush().ok());
}

// Observed state of one tracked object after a crash+remount:
// which committed version (index into `versions`), kAbsent, or kEmpty.
constexpr int kAbsent = -1;
constexpr int kEmpty = -2;
constexpr int kGarbage = -3;

int Observe(StegFs* fs, const Tracked& t) {
  if (!t.hidden) {
    auto content = fs->plain()->ReadFile(t.name);
    if (!content.ok()) return kAbsent;
    for (size_t v = 0; v < t.versions.size(); ++v) {
      if (*content == t.versions[v]) return static_cast<int>(v);
    }
    return content->empty() ? kEmpty : kGarbage;
  }
  Status c = fs->StegConnect(kUid, t.name, kUak);
  if (!c.ok()) return kAbsent;
  auto content = fs->HiddenReadAll(kUid, t.name);
  (void)fs->StegDisconnect(kUid, t.name);
  if (!content.ok()) return kGarbage;  // readable name, unreadable bytes
  for (size_t v = 0; v < t.versions.size(); ++v) {
    if (*content == t.versions[v]) return static_cast<int>(v);
  }
  return content->empty() ? kEmpty : kGarbage;
}

// Verifies one crash state on an already-mounted volume. Returns a
// failure description or "".
//
// Oracle: because every workload op ends with a barrier before the next
// one starts, at most ONE op (the in-flight one) can be partially
// applied. Pass 1 establishes the commit frontier M from unambiguous
// evidence (an observed version commits the op that wrote it; absence
// proves nothing — it may mean never-created). Pass 2 then requires each
// object to sit exactly at its newest version committed by ops <= M,
// except that the single in-flight op M+1 may or may not have landed.
std::string VerifyState(StegFs* fs, const std::vector<Tracked>& tracked) {
  int M = -1;
  std::vector<int> observed(tracked.size());
  for (size_t i = 0; i < tracked.size(); ++i) {
    observed[i] = Observe(fs, tracked[i]);
    if (observed[i] == kGarbage) {
      return "garbage content in " + tracked[i].name;
    }
    if (observed[i] >= 0) {
      M = std::max(M, tracked[i].version_ops[observed[i]]);
    } else if (observed[i] == kEmpty && tracked[i].hidden) {
      // An empty hidden object proves its creating op started, which
      // proves every earlier op fully committed (per-op barriers).
      M = std::max(M, tracked[i].version_ops[0] - 1);
    }
  }
  for (size_t i = 0; i < tracked.size(); ++i) {
    const Tracked& t = tracked[i];
    const int ob = observed[i];
    // Newest version committed at or before the frontier.
    int r = -1;
    for (size_t v = 0; v < t.version_ops.size(); ++v) {
      if (t.version_ops[v] <= M) r = static_cast<int>(v);
    }
    if (t.unlink_op >= 0 && t.unlink_op <= M) {
      if (ob != kAbsent) {
        return t.name + " unlinked by committed op " +
               std::to_string(t.unlink_op) + " but still visible";
      }
      continue;
    }
    bool ok = false;
    if (r >= 0) {
      ok = ob == r;  // committed content fully visible
    } else {
      ok = ob == kAbsent;  // never committed: fully absent
    }
    // The single in-flight op may have landed completely...
    if (!ok && r + 1 < static_cast<int>(t.version_ops.size()) &&
        t.version_ops[r + 1] == M + 1) {
      ok = ob == r + 1;
    }
    // ...or, for an in-flight unlink, the file may already be gone...
    if (!ok && t.unlink_op == M + 1) ok = ob == kAbsent;
    // ...or, for an in-flight hidden create, the object may exist with
    // its content write still pending (create and write are separate
    // commits inside one workload op).
    if (!ok && t.hidden && r == -1 && !t.version_ops.empty() &&
        t.version_ops[0] == M + 1) {
      ok = ob == kEmpty;
    }
    if (!ok) {
      return t.name + " observed state " + std::to_string(ob) +
             " inconsistent with commit frontier op " + std::to_string(M);
    }
  }
  // Pass 3: the volume itself must be sound.
  journal::FsckReport report;
  Status s = fs->Fsck(&report);
  if (!s.ok()) return "fsck failed: " + s.ToString();
  if (report.repaired_refs != 0) {
    return "fsck repaired " + std::to_string(report.repaired_refs) +
           " referenced-but-unmarked blocks";
  }
  if (report.journal_live_records != 0) {
    return "journal ring not at rest after recovery";
  }
  return "";
}

std::string EngineName(IoEngine e) {
  switch (e) {
    case IoEngine::kSync:
      return "sync";
    case IoEngine::kThreads:
      return "threads";
    case IoEngine::kUring:
      return "uring";
    default:
      return "auto";
  }
}

// Mounts the image on a Mem device (sync/threads) or via a temp file
// (uring) and verifies it. Returns "" on pass, "skip" when the engine is
// unavailable, else the failure.
std::string VerifyImage(const std::vector<uint8_t>& image,
                        const std::vector<Tracked>& tracked,
                        IoEngine engine) {
  if (engine == IoEngine::kUring) {
    char path[] = "/tmp/stegfs_crash_XXXXXX";
    int fd = mkstemp(path);
    if (fd < 0) return "skip";
    close(fd);
    std::string failure = "skip";
    {
      auto file = FileBlockDevice::Create(path, kBs, kBlocks);
      if (file.ok()) {
        for (uint64_t b = 0; b < kBlocks; ++b) {
          (void)(*file)->WriteBlock(b, image.data() + b * kBs);
        }
        auto fs = StegFs::Mount(file->get(), DurableOpts(engine));
        if (fs.ok()) {
          failure = VerifyState(fs->get(), tracked);
        } else if (!fs.status().IsNotSupported()) {
          failure = "mount failed: " + fs.status().ToString();
        }
      }
    }
    std::remove(path);
    return failure;
  }
  auto dev = test::DeviceFromImage(image, kBs);
  auto fs = StegFs::Mount(dev.get(), DurableOpts(engine));
  if (!fs.ok()) return "mount failed: " + fs.status().ToString();
  return VerifyState(fs->get(), tracked);
}

class CrashMatrixTest : public ::testing::TestWithParam<IoEngine> {};

TEST_P(CrashMatrixTest, PrefixTornAndReorderedTails) {
  const IoEngine record_engine = GetParam();
  test::RecordingDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  dev.StartRecording();

  std::vector<Tracked> tracked;
  {
    auto fs = StegFs::Mount(&dev, DurableOpts(record_engine));
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    RunWorkload(fs->get(), &tracked);
  }
  const size_t total = dev.event_count();
  ASSERT_GT(total, 100u);

  const bool uring_available =
      FileBlockDevice::Create("/tmp/stegfs_probe_del", kBs, 64).ok() &&
      (std::remove("/tmp/stegfs_probe_del"), true);

  std::map<IoEngine, MatrixCell> cells;
  for (IoEngine ve : {IoEngine::kSync, IoEngine::kThreads, IoEngine::kUring}) {
    cells[ve].record_engine = EngineName(record_engine);
    cells[ve].verify_engine = EngineName(ve);
  }

  const size_t kTargetPoints = 48;
  const size_t stride = std::max<size_t>(1, total / kTargetPoints);
  size_t point = 0;
  for (size_t k = 1; k <= total; k += stride, ++point) {
    // Variant rotation: pure prefix, dropped-subset tail, torn write,
    // subset+torn.
    const uint64_t subset_seed = (point % 2 == 1) ? 0x9000 + point : 0;
    const bool torn = point % 3 == 1;
    auto image = dev.Materialize(k, subset_seed, torn);

    std::vector<IoEngine> legs = {IoEngine::kSync};
    if (point % 4 == 0) legs.push_back(IoEngine::kThreads);
    if (uring_available && point % 8 == 0) legs.push_back(IoEngine::kUring);

    for (IoEngine ve : legs) {
      std::string failure = VerifyImage(image, tracked, ve);
      if (failure == "skip") continue;
      MatrixCell& cell = cells[ve];
      ++cell.crash_states;
      if (torn) ++cell.torn_states;
      if (subset_seed != 0) ++cell.subset_states;
      if (!failure.empty()) {
        ++cell.failures;
        ADD_FAILURE() << "crash state k=" << k << " seed=" << subset_seed
                      << " torn=" << torn << " verify=" << EngineName(ve)
                      << " record=" << EngineName(record_engine) << ": "
                      << failure;
      }
    }
  }
  // The final state (no crash) must also verify, on every leg.
  auto image = dev.Materialize(total, 0, false);
  for (IoEngine ve : {IoEngine::kSync, IoEngine::kThreads, IoEngine::kUring}) {
    if (ve == IoEngine::kUring && !uring_available) continue;
    std::string failure = VerifyImage(image, tracked, ve);
    if (failure == "skip") continue;
    ++cells[ve].crash_states;
    if (!failure.empty()) {
      ++cells[ve].failures;
      ADD_FAILURE() << "final state verify=" << EngineName(ve) << ": "
                    << failure;
    }
  }
  for (auto& [ve, cell] : cells) {
    if (cell.crash_states > 0) Summary().push_back(cell);
  }
}

INSTANTIATE_TEST_SUITE_P(RecordEngines, CrashMatrixTest,
                         ::testing::Values(IoEngine::kSync,
                                           IoEngine::kThreads),
                         [](const ::testing::TestParamInfo<IoEngine>& info) {
                           return EngineName(info.param);
                         });

// ---------------------------------------------------------------------
// Deniability: a crashed-and-recovered volume with an UNOPENED hidden
// level must carry a journal region bit-identical to a plain-only
// volume's — and to a freshly formatted one — with nothing parseable.
// ---------------------------------------------------------------------
std::vector<uint8_t> JournalRegion(BlockDevice* dev) {
  std::vector<uint8_t> buf(kBs);
  auto sb_or = [&] {
    std::vector<uint8_t> b0(kBs);
    (void)dev->ReadBlock(0, b0.data());
    return Superblock::DecodeFrom(b0.data(), b0.size());
  }();
  EXPECT_TRUE(sb_or.ok());
  std::vector<uint8_t> region;
  for (uint32_t j = 0; j < sb_or->journal_blocks; ++j) {
    (void)dev->ReadBlock(sb_or->journal_start + j, buf.data());
    region.insert(region.end(), buf.begin(), buf.end());
  }
  return region;
}

TEST(CrashDeniabilityTest, RecoveredJournalRegionIndistinguishable) {
  // Volume A: plain + hidden traffic, crash mid-run (subset + torn),
  // then recovery with no hidden level opened.
  test::RecordingDevice dev_a(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev_a, SmallFormat()).ok());
  dev_a.StartRecording();
  {
    auto fs = StegFs::Mount(&dev_a, DurableOpts(IoEngine::kSync));
    ASSERT_TRUE(fs.ok());
    std::vector<Tracked> tracked;
    RunWorkload(fs->get(), &tracked);
  }
  auto crash_a =
      dev_a.Materialize(dev_a.event_count() * 7 / 10, 0x5eed, true);
  auto recovered_a = test::DeviceFromImage(crash_a, kBs);
  {
    // Plain mount, NO hidden level ever opened: recovery runs at mount.
    auto fs = StegFs::Mount(recovered_a.get(), StegFsOptions());
    ASSERT_TRUE(fs.ok());
  }

  // Volume B: same format entropy, PLAIN-ONLY traffic, crash, recover.
  test::RecordingDevice dev_b(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev_b, SmallFormat()).ok());
  dev_b.StartRecording();
  {
    auto fs = StegFs::Mount(&dev_b, DurableOpts(IoEngine::kSync));
    ASSERT_TRUE(fs.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*fs)->plain()
                      ->WriteFile("/p" + std::to_string(i), Content(i, 900))
                      .ok());
      ASSERT_TRUE((*fs)->Flush().ok());
    }
  }
  auto crash_b = dev_b.Materialize(dev_b.event_count() / 2, 0xb0b, true);
  auto recovered_b = test::DeviceFromImage(crash_b, kBs);
  {
    auto fs = StegFs::Mount(recovered_b.get(), StegFsOptions());
    ASSERT_TRUE(fs.ok());
  }

  // Volume C: freshly formatted, never mounted.
  MemBlockDevice dev_c(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev_c, SmallFormat()).ok());

  auto region_a = JournalRegion(recovered_a.get());
  auto region_b = JournalRegion(recovered_b.get());
  auto region_c = JournalRegion(&dev_c);
  ASSERT_EQ(region_a.size(), static_cast<size_t>(kRing) * kBs);
  // Bit-indistinguishable: identical, in fact — the resting ring is a
  // pure function of the (public) format entropy.
  EXPECT_EQ(region_a, region_b);
  EXPECT_EQ(region_a, region_c);

  // And nothing in any of them parses as a record.
  for (BlockDevice* d :
       {static_cast<BlockDevice*>(recovered_a.get()),
        static_cast<BlockDevice*>(recovered_b.get()),
        static_cast<BlockDevice*>(&dev_c)}) {
    std::vector<uint8_t> b0(kBs);
    ASSERT_TRUE(d->ReadBlock(0, b0.data()).ok());
    auto sb = Superblock::DecodeFrom(b0.data(), b0.size());
    ASSERT_TRUE(sb.ok());
    uint64_t torn = 0;
    auto live = journal::JournalRecovery::Scan(d, *sb, &torn);
    ASSERT_TRUE(live.ok());
    EXPECT_TRUE(live->empty());
    EXPECT_EQ(torn, 0u);
  }
}

// Group commit (ISSUE 9): with several sessions committing through a
// linger window, journal records carry MULTIPLE transactions — and a
// torn write on such a record models the leader crashing mid-batch.
// Either the whole batch replays (checksum intact) or none of it does:
// every file must recover to a committed version or absence, never to
// torn content, and the ring must be at rest after recovery.
TEST(CrashGroupCommitTest, LeaderCrashMidBatchKeepsBatchesAtomic) {
  test::RecordingDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  dev.StartRecording();
  constexpr int kWriters = 4;
  constexpr int kRounds = 8;
  auto version = [](int t, int r) { return Content(t * 100 + r, 600 + 83 * r); };
  {
    StegFsOptions opts = DurableOpts(IoEngine::kSync);
    opts.mount.group_commit_window_us = 2000;
    auto fs = StegFs::Mount(&dev, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    std::vector<std::thread> workers;
    for (int t = 0; t < kWriters; ++t) {
      workers.emplace_back([&fs, &version, t] {
        for (int r = 0; r < kRounds; ++r) {
          Status s = (*fs)->plain()->WriteFile("/w" + std::to_string(t),
                                               version(t, r));
          EXPECT_TRUE(s.ok()) << s.ToString();
        }
      });
    }
    for (std::thread& w : workers) w.join();
    // The batching must have been real, or this leg tests nothing.
    EXPECT_LT((*fs)->plain()->journal()->stats().group_batches,
              (*fs)->plain()->journal()->stats().group_txns);
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  const size_t total = dev.event_count();
  ASSERT_GT(total, 50u);
  const size_t stride = std::max<size_t>(1, total / 24);
  for (size_t k = 1; k <= total; k += stride) {
    auto image = dev.Materialize(k, /*subset_seed=*/0x6ead + k, /*torn=*/true);
    auto mem = test::DeviceFromImage(image, kBs);
    auto fs = StegFs::Mount(mem.get(), DurableOpts(IoEngine::kSync));
    ASSERT_TRUE(fs.ok()) << "k=" << k << ": " << fs.status().ToString();
    for (int t = 0; t < kWriters; ++t) {
      auto content = (*fs)->plain()->ReadFile("/w" + std::to_string(t));
      if (!content.ok()) continue;  // absent: the create never committed
      bool committed = false;
      for (int r = 0; r < kRounds && !committed; ++r) {
        committed = *content == version(t, r);
      }
      EXPECT_TRUE(committed)
          << "/w" << t << " holds non-committed content at crash k=" << k;
    }
    journal::FsckReport report;
    ASSERT_TRUE((*fs)->Fsck(&report).ok());
    EXPECT_EQ(report.journal_live_records, 0u) << "k=" << k;
  }
}

// No hidden file READABLE BEFORE the crash may be lost: the strongest
// single-object guarantee, checked explicitly with a torn primary-header
// write at every hidden commit boundary in the stream.
TEST(CrashDurableHiddenTest, CommittedHiddenObjectNeverLost) {
  test::RecordingDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  dev.StartRecording();
  std::vector<Tracked> tracked;
  {
    auto fs = StegFs::Mount(&dev, DurableOpts(IoEngine::kSync));
    ASSERT_TRUE(fs.ok());
    RunWorkload(fs->get(), &tracked);
  }
  // Torn-write sweep across the whole stream: whatever tears, every
  // hidden object committed before the crash point must reopen at a
  // committed version.
  const size_t total = dev.event_count();
  const size_t stride = std::max<size_t>(1, total / 24);
  for (size_t k = 1; k <= total; k += stride) {
    auto image = dev.Materialize(k, /*subset_seed=*/k, /*torn=*/true);
    auto mem = test::DeviceFromImage(image, kBs);
    auto fs = StegFs::Mount(mem.get(), DurableOpts(IoEngine::kSync));
    ASSERT_TRUE(fs.ok()) << "k=" << k;
    for (const Tracked& t : tracked) {
      if (!t.hidden) continue;
      int ob = Observe(fs->get(), t);
      EXPECT_NE(ob, kGarbage)
          << t.name << " lost/corrupted at crash state k=" << k;
    }
  }
}

}  // namespace
}  // namespace stegfs
