#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace stegfs {
namespace crypto {
namespace {

std::vector<uint8_t> FromHex(const std::string& h) {
  std::vector<uint8_t> out;
  EXPECT_TRUE(HexDecode(h, &out));
  return out;
}

void CheckVector(const std::string& key_hex, const std::string& pt_hex,
                 const std::string& ct_hex) {
  auto key = FromHex(key_hex);
  auto pt = FromHex(pt_hex);
  auto ct = FromHex(ct_hex);
  Aes aes(key.data(), key.size());

  uint8_t enc[16];
  aes.EncryptBlock(pt.data(), enc);
  EXPECT_EQ(HexEncode(enc, 16), ct_hex);

  uint8_t dec[16];
  aes.DecryptBlock(ct.data(), dec);
  EXPECT_EQ(HexEncode(dec, 16), pt_hex);
}

// FIPS 197 appendix C example vectors.
TEST(AesTest, Fips197Aes128) {
  CheckVector("000102030405060708090a0b0c0d0e0f",
              "00112233445566778899aabbccddeeff",
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, Fips197Aes192) {
  CheckVector("000102030405060708090a0b0c0d0e0f1011121314151617",
              "00112233445566778899aabbccddeeff",
              "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(AesTest, Fips197Aes256) {
  CheckVector(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
      "00112233445566778899aabbccddeeff",
      "8ea2b7ca516745bfeafc49904b496089");
}

// NIST SP 800-38A F.1.1 (ECB-AES128 block 1).
TEST(AesTest, Sp80038aAes128) {
  CheckVector("2b7e151628aed2a6abf7158809cf4f3c",
              "6bc1bee22e409f96e93d7e117393172a",
              "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(AesTest, EncryptDecryptRoundTripAllKeySizes) {
  for (size_t key_len : {16u, 24u, 32u}) {
    std::vector<uint8_t> key(key_len);
    for (size_t i = 0; i < key_len; ++i) key[i] = static_cast<uint8_t>(i * 7);
    Aes aes(key.data(), key.size());
    uint8_t block[16], out[16];
    for (int i = 0; i < 16; ++i) block[i] = static_cast<uint8_t>(i * 13 + 1);
    aes.EncryptBlock(block, out);
    EXPECT_NE(std::memcmp(block, out, 16), 0);
    aes.DecryptBlock(out, out);
    EXPECT_EQ(std::memcmp(block, out, 16), 0);
  }
}

TEST(AesTest, InPlaceEncryption) {
  auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  auto pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  Aes aes(key.data(), key.size());
  uint8_t buf[16];
  std::memcpy(buf, pt.data(), 16);
  aes.EncryptBlock(buf, buf);  // aliasing allowed
  EXPECT_EQ(HexEncode(buf, 16), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(AesTest, RoundCounts) {
  std::vector<uint8_t> key(32, 0);
  EXPECT_EQ(Aes(key.data(), 16).rounds(), 10);
  EXPECT_EQ(Aes(key.data(), 24).rounds(), 12);
  EXPECT_EQ(Aes(key.data(), 32).rounds(), 14);
}

TEST(AesTest, KeySensitivity) {
  std::vector<uint8_t> k1(16, 0), k2(16, 0);
  k2[15] = 1;
  uint8_t pt[16] = {0}, c1[16], c2[16];
  Aes(k1.data(), 16).EncryptBlock(pt, c1);
  Aes(k2.data(), 16).EncryptBlock(pt, c2);
  EXPECT_NE(std::memcmp(c1, c2, 16), 0);
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
