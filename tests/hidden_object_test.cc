#include "core/hidden_object.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class HiddenObjectTest : public ::testing::Test {
 protected:
  HiddenObjectTest()
      : layout_(Layout::Compute(1024, 32768, 512)),  // 32 MB volume
        dev_(layout_.block_size, layout_.num_blocks),
        cache_(&dev_, 1024),
        bitmap_(layout_),
        rng_(777) {
    vol_.cache = &cache_;
    vol_.bitmap = &bitmap_;
    vol_.layout = layout_;
    vol_.params = StegParams{};  // Table 1 defaults
    vol_.rng = &rng_;
    vol_.probe_limit = 2000;
  }

  Layout layout_;
  MemBlockDevice dev_;
  BufferCache cache_;
  BlockBitmap bitmap_;
  Xoshiro rng_;
  HiddenVolume vol_;
};

TEST_F(HiddenObjectTest, CreateOpenRoundTrip) {
  auto obj = HiddenObject::Create(vol_, "user1-secret.txt", "fak-1",
                                  HiddenType::kFile);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  ASSERT_TRUE((*obj)->WriteAll("top secret content").ok());
  ASSERT_TRUE((*obj)->Sync().ok());
  obj->reset();

  auto reopened = HiddenObject::Open(vol_, "user1-secret.txt", "fak-1");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto content = (*reopened)->ReadAll();
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "top secret content");
}

TEST_F(HiddenObjectTest, WrongKeyNotFound) {
  auto obj =
      HiddenObject::Create(vol_, "name", "right-key", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->Sync().ok());
  EXPECT_TRUE(
      HiddenObject::Open(vol_, "name", "wrong-key").status().IsNotFound());
}

TEST_F(HiddenObjectTest, DuplicateCreateRejected) {
  ASSERT_TRUE(HiddenObject::Create(vol_, "n", "k", HiddenType::kFile).ok());
  EXPECT_TRUE(HiddenObject::Create(vol_, "n", "k", HiddenType::kFile)
                  .status()
                  .IsAlreadyExists());
}

TEST_F(HiddenObjectTest, LargeContentRoundTrip) {
  std::string big = RandomData(2 << 20, 42);  // 2 MB (paper's max file size)
  auto obj = HiddenObject::Create(vol_, "big", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->WriteAll(big).ok());
  ASSERT_TRUE((*obj)->Sync().ok());
  obj->reset();

  auto reopened = HiddenObject::Open(vol_, "big", "k");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), big.size());
  auto content = (*reopened)->ReadAll();
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), big);
}

TEST_F(HiddenObjectTest, PoolMaintainedAtCreation) {
  auto obj = HiddenObject::Create(vol_, "pooled", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  // Paper: blocks allocated to the file straightaway at creation.
  EXPECT_EQ((*obj)->pool_size(), vol_.params.free_pool_max);
}

TEST_F(HiddenObjectTest, PoolBlocksAreMarkedAllocated) {
  uint64_t free_before = bitmap_.free_count();
  auto obj = HiddenObject::Create(vol_, "pooled", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  // Header + pool blocks all marked.
  EXPECT_EQ(bitmap_.free_count(),
            free_before - 1 - vol_.params.free_pool_max);
}

TEST_F(HiddenObjectTest, RemoveReturnsEveryBlock) {
  uint64_t free_before = bitmap_.free_count();
  auto obj = HiddenObject::Create(vol_, "doomed", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->WriteAll(RandomData(300000, 7)).ok());
  ASSERT_TRUE((*obj)->Sync().ok());
  EXPECT_LT(bitmap_.free_count(), free_before);
  ASSERT_TRUE((*obj)->Remove().ok());
  EXPECT_EQ(bitmap_.free_count(), free_before);  // zero leakage
}

TEST_F(HiddenObjectTest, RemovedObjectCannotBeFound) {
  auto obj = HiddenObject::Create(vol_, "gone", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->WriteAll("data").ok());
  ASSERT_TRUE((*obj)->Sync().ok());
  ASSERT_TRUE((*obj)->Remove().ok());
  EXPECT_TRUE(HiddenObject::Open(vol_, "gone", "k").status().IsNotFound());
}

TEST_F(HiddenObjectTest, TruncateShrinkAndRegrow) {
  auto obj = HiddenObject::Create(vol_, "t", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  std::string data = RandomData(100000, 9);
  ASSERT_TRUE((*obj)->WriteAll(data).ok());
  ASSERT_TRUE((*obj)->Truncate(1000).ok());
  EXPECT_EQ((*obj)->size(), 1000u);
  auto content = (*obj)->ReadAll();
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), data.substr(0, 1000));
  // Regrow and verify the old tail is not resurrected.
  ASSERT_TRUE((*obj)->Write(1000, std::string(5000, 'Z')).ok());
  auto content2 = (*obj)->ReadAll();
  ASSERT_TRUE(content2.ok());
  EXPECT_EQ(content2->substr(1000), std::string(5000, 'Z'));
}

TEST_F(HiddenObjectTest, PoolBoundsRespectedDuringChurn) {
  StegParams params;
  params.free_pool_min = 2;
  params.free_pool_max = 8;
  vol_.params = params;
  auto obj = HiddenObject::Create(vol_, "churn", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  Xoshiro workload(5);
  uint64_t size = 0;
  for (int round = 0; round < 40; ++round) {
    if (workload.Bernoulli(0.6)) {
      std::string chunk = RandomData(workload.UniformRange(500, 20000), round);
      ASSERT_TRUE((*obj)->Write(size, chunk).ok());
      size += chunk.size();
    } else if (size > 0) {
      size /= 2;
      ASSERT_TRUE((*obj)->Truncate(size).ok());
    }
    EXPECT_LE((*obj)->pool_size(), params.free_pool_max + 1);
  }
}

TEST_F(HiddenObjectTest, ManyObjectsNoCrosstalk) {
  std::vector<std::string> contents;
  for (int i = 0; i < 20; ++i) {
    std::string name = "obj-" + std::to_string(i);
    std::string key = "key-" + std::to_string(i);
    contents.push_back(RandomData(5000 + i * 991, 100 + i));
    auto obj = HiddenObject::Create(vol_, name, key, HiddenType::kFile);
    ASSERT_TRUE(obj.ok()) << i;
    ASSERT_TRUE((*obj)->WriteAll(contents.back()).ok());
    ASSERT_TRUE((*obj)->Sync().ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto obj = HiddenObject::Open(vol_, "obj-" + std::to_string(i),
                                  "key-" + std::to_string(i));
    ASSERT_TRUE(obj.ok()) << i;
    auto content = (*obj)->ReadAll();
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(content.value(), contents[i]) << i;
  }
}

TEST_F(HiddenObjectTest, SparseWriteReadsHolesAsZeros) {
  auto obj = HiddenObject::Create(vol_, "sparse", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->Write(10000, "end").ok());
  std::string out;
  ASSERT_TRUE((*obj)->Read(0, 10, &out).ok());
  EXPECT_EQ(out, std::string(10, '\0'));
}

TEST_F(HiddenObjectTest, UseAfterRemoveRejected) {
  auto obj = HiddenObject::Create(vol_, "x", "k", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE((*obj)->Remove().ok());
  EXPECT_TRUE((*obj)->WriteAll("nope").IsFailedPrecondition());
  EXPECT_TRUE((*obj)->Sync().IsFailedPrecondition());
  EXPECT_TRUE((*obj)->Remove().IsFailedPrecondition());
}

}  // namespace
}  // namespace stegfs
