// Property test for the paper's objective (a) — "StegFS should not lose
// data or corrupt files" — under randomized interleaved churn: hidden
// objects and plain files created, rewritten, truncated and deleted in
// random order, with dummy maintenance and remounts mixed in, all mirrored
// against an in-memory ground-truth model. Any divergence is data loss.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(Xoshiro* rng, size_t n) {
  std::string s(n, '\0');
  rng->FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

struct ChurnParams {
  uint64_t seed;
  uint32_t free_pool_min;
  uint32_t free_pool_max;
  double abandoned;
};

class StegFsChurnTest : public ::testing::TestWithParam<ChurnParams> {};

TEST_P(StegFsChurnTest, NoDataLossUnderChurn) {
  const ChurnParams& p = GetParam();
  auto dev = std::make_unique<MemBlockDevice>(1024, 65536);  // 64 MB
  StegFormatOptions fo;
  fo.params.abandoned_fraction = p.abandoned;
  fo.params.free_pool_min = p.free_pool_min;
  fo.params.free_pool_max = p.free_pool_max;
  fo.params.dummy_file_count = 2;
  fo.params.dummy_file_avg_bytes = 64 << 10;
  fo.entropy = "churn-" + std::to_string(p.seed);
  ASSERT_TRUE(StegFs::Format(dev.get(), fo).ok());

  StegFsOptions so;
  so.steg_rng_seed = p.seed;
  auto mounted = StegFs::Mount(dev.get(), so);
  ASSERT_TRUE(mounted.ok());
  std::unique_ptr<StegFs> fs = std::move(mounted).value();

  Xoshiro rng(p.seed);
  std::map<std::string, std::string> hidden_truth;  // objname -> content
  std::map<std::string, std::string> plain_truth;   // path -> content
  const std::string uid = "churner";
  const std::string uak = "churn-uak";

  auto verify_one_hidden = [&](const std::string& name) {
    ASSERT_TRUE(fs->StegConnect(uid, name, uak).ok()) << name;
    auto data = fs->HiddenReadAll(uid, name);
    ASSERT_TRUE(data.ok()) << name << ": " << data.status().ToString();
    ASSERT_EQ(data.value(), hidden_truth[name]) << name;
  };

  for (int op = 0; op < 120; ++op) {
    int kind = static_cast<int>(rng.Uniform(12));
    if (kind < 4) {
      // Create or rewrite a hidden object.
      std::string name = "obj" + std::to_string(rng.Uniform(8));
      std::string content = RandomData(&rng, rng.Uniform(300000));
      if (hidden_truth.count(name) == 0) {
        Status s = fs->StegCreate(uid, name, uak, HiddenType::kFile);
        if (s.IsNoSpace()) continue;
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      ASSERT_TRUE(fs->StegConnect(uid, name, uak).ok());
      Status s = fs->HiddenWriteAll(uid, name, content);
      if (s.IsNoSpace()) {
        // Volume full: shrink instead so the test can proceed.
        ASSERT_TRUE(fs->HiddenTruncate(uid, name, 0).ok());
        hidden_truth[name] = "";
        continue;
      }
      ASSERT_TRUE(s.ok()) << s.ToString();
      hidden_truth[name] = content;
    } else if (kind < 6 && !hidden_truth.empty()) {
      // Truncate a random hidden object.
      auto it = hidden_truth.begin();
      std::advance(it, rng.Uniform(hidden_truth.size()));
      uint64_t new_size = rng.Uniform(it->second.size() + 1);
      ASSERT_TRUE(fs->StegConnect(uid, it->first, uak).ok());
      ASSERT_TRUE(fs->HiddenTruncate(uid, it->first, new_size).ok());
      it->second.resize(new_size);
    } else if (kind < 7 && !hidden_truth.empty()) {
      // Delete a random hidden object.
      auto it = hidden_truth.begin();
      std::advance(it, rng.Uniform(hidden_truth.size()));
      ASSERT_TRUE(fs->HiddenRemove(uid, it->first, uak).ok()) << it->first;
      hidden_truth.erase(it);
    } else if (kind < 9) {
      // Plain churn.
      std::string path = "/p" + std::to_string(rng.Uniform(6));
      if (rng.Bernoulli(0.7)) {
        std::string content = RandomData(&rng, rng.Uniform(400000));
        Status s = fs->plain()->WriteFile(path, content);
        if (s.IsNoSpace()) continue;
        ASSERT_TRUE(s.ok()) << s.ToString();
        plain_truth[path] = content;
      } else if (plain_truth.count(path)) {
        ASSERT_TRUE(fs->plain()->Unlink(path).ok());
        plain_truth.erase(path);
      }
    } else if (kind < 10) {
      ASSERT_TRUE(fs->MaintenanceTick().ok());
    } else if (kind < 11 && !hidden_truth.empty()) {
      // Spot-verify a random hidden object right now.
      auto it = hidden_truth.begin();
      std::advance(it, rng.Uniform(hidden_truth.size()));
      verify_one_hidden(it->first);
    } else {
      // Remount: the harshest consistency check.
      ASSERT_TRUE(fs->Flush().ok());
      fs.reset();
      auto again = StegFs::Mount(dev.get(), so);
      ASSERT_TRUE(again.ok());
      fs = std::move(again).value();
    }
  }

  // Final audit: every hidden object and plain file matches the model.
  for (const auto& [name, content] : hidden_truth) {
    verify_one_hidden(name);
  }
  for (const auto& [path, content] : plain_truth) {
    auto data = fs->plain()->ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    EXPECT_EQ(data.value(), content) << path;
  }

  // Space accounting stayed coherent: free + allocated == total after all
  // that churn (no double-alloc, no leaks into the void).
  SpaceReport r = fs->ReportSpace();
  EXPECT_EQ(r.free_blocks + r.allocated_blocks, r.total_blocks);
}

INSTANTIATE_TEST_SUITE_P(
    ParamMatrix, StegFsChurnTest,
    ::testing::Values(ChurnParams{101, 0, 10, 0.01},   // Table 1 defaults
                      ChurnParams{202, 0, 10, 0.01},   // another seed
                      ChurnParams{303, 0, 0, 0.01},    // pool disabled
                      ChurnParams{404, 4, 16, 0.01},   // wide pool
                      ChurnParams{505, 0, 10, 0.0},    // no abandoned
                      ChurnParams{606, 2, 8, 0.10}),   // heavy abandonment
    [](const ::testing::TestParamInfo<ChurnParams>& info) {
      const ChurnParams& p = info.param;
      return "seed" + std::to_string(p.seed) + "_pool" +
             std::to_string(p.free_pool_min) + "_" +
             std::to_string(p.free_pool_max) + "_ab" +
             std::to_string(static_cast<int>(p.abandoned * 100));
    });

// PR 6 extension: the same no-data-loss property with IDA-redundant
// hidden objects under active share loss. Random interleavings of plain
// writes, hidden kIda(3,4) writes, share corruption (never more than the
// n-k=1 tolerance per stripe between heals), fsck scrubs and remounts
// must never lose a hidden object. The seeded churn suites above run
// byte-for-byte unchanged — this is a separate suite with its own seeds.
class IdaChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdaChurnTest, NoDataLossWithinToleranceUnderChurn) {
  const uint64_t seed = GetParam();
  auto dev = std::make_unique<MemBlockDevice>(1024, 65536);  // 64 MB
  StegFormatOptions fo;
  fo.params.dummy_file_count = 2;
  fo.params.dummy_file_avg_bytes = 64 << 10;
  fo.entropy = "ida-churn-" + std::to_string(seed);
  ASSERT_TRUE(StegFs::Format(dev.get(), fo).ok());

  StegFsOptions so;
  so.steg_rng_seed = seed;
  auto mounted = StegFs::Mount(dev.get(), so);
  ASSERT_TRUE(mounted.ok());
  std::unique_ptr<StegFs> fs = std::move(mounted).value();

  const RedundancyPolicy kPolicy = RedundancyPolicy::Ida(3, 4);
  Xoshiro rng(seed);
  std::map<std::string, std::string> hidden_truth;
  std::map<std::string, bool> lossy;  // objname -> has an un-healed share
  std::map<std::string, bool> connected;
  std::map<std::string, std::string> plain_truth;
  const std::string uid = "idachurner";
  const std::string uak = "ida-uak";

  auto connect = [&](const std::string& name) {
    ASSERT_TRUE(fs->StegConnect(uid, name, uak).ok()) << name;
    connected[name] = true;
  };
  auto verify_one = [&](const std::string& name) {
    connect(name);
    auto data = fs->HiddenReadAll(uid, name);
    ASSERT_TRUE(data.ok()) << name << ": " << data.status().ToString();
    ASSERT_EQ(data.value(), hidden_truth[name]) << name;
    lossy[name] = false;  // a full read heals every stripe it touched
  };

  for (int op = 0; op < 100; ++op) {
    int kind = static_cast<int>(rng.Uniform(12));
    if (kind < 4) {
      // Create or rewrite a redundant hidden object (WriteAll re-encodes
      // every stripe, so it also clears any pending loss).
      std::string name = "red" + std::to_string(rng.Uniform(6));
      std::string content = RandomData(&rng, rng.Uniform(200000));
      if (hidden_truth.count(name) == 0) {
        Status s = fs->StegCreate(uid, name, uak, HiddenType::kFile, kPolicy);
        if (s.IsNoSpace()) continue;
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
      connect(name);
      Status s = fs->HiddenWriteAll(uid, name, content);
      if (s.IsNoSpace()) {
        ASSERT_TRUE(fs->HiddenTruncate(uid, name, 0).ok());
        hidden_truth[name] = "";
        lossy[name] = false;
        continue;
      }
      ASSERT_TRUE(s.ok()) << s.ToString();
      hidden_truth[name] = content;
      lossy[name] = false;
    } else if (kind < 6 && !hidden_truth.empty()) {
      // Corrupt ONE share of one stripe — within the (3,4) tolerance —
      // of an object with no other pending loss.
      auto it = hidden_truth.begin();
      std::advance(it, rng.Uniform(hidden_truth.size()));
      const std::string& name = it->first;
      if (lossy[name] || it->second.empty()) continue;
      connect(name);
      auto obj = fs->ConnectedForTesting(uid, name);
      ASSERT_TRUE(obj.ok());
      uint64_t stripes = obj.value()->StripeCountForTesting();
      if (stripes == 0) continue;
      auto blocks = obj.value()->ShareBlocksForTesting(rng.Uniform(stripes));
      ASSERT_TRUE(blocks.ok());
      uint64_t victim = blocks.value()[rng.Uniform(blocks.value().size())];
      if (victim == 0) continue;  // hole
      ASSERT_TRUE(fs->Flush().ok());
      std::vector<uint8_t> noise(1024);
      rng.FillBytes(noise.data(), noise.size());
      ASSERT_TRUE(dev->WriteBlock(victim, noise.data()).ok());
      fs->plain()->cache()->DropAll();
      lossy[name] = true;
    } else if (kind < 7 && !hidden_truth.empty()) {
      // Truncate — only on a healed object (a boundary re-encode must
      // not bake a corrupted share into fresh parity).
      auto it = hidden_truth.begin();
      std::advance(it, rng.Uniform(hidden_truth.size()));
      if (lossy[it->first]) verify_one(it->first);
      uint64_t new_size = rng.Uniform(it->second.size() + 1);
      connect(it->first);
      ASSERT_TRUE(fs->HiddenTruncate(uid, it->first, new_size).ok());
      it->second.resize(new_size);
    } else if (kind < 9) {
      // Plain churn.
      std::string path = "/q" + std::to_string(rng.Uniform(6));
      if (rng.Bernoulli(0.7)) {
        std::string content = RandomData(&rng, rng.Uniform(300000));
        Status s = fs->plain()->WriteFile(path, content);
        if (s.IsNoSpace()) continue;
        ASSERT_TRUE(s.ok()) << s.ToString();
        plain_truth[path] = content;
      } else if (plain_truth.count(path)) {
        ASSERT_TRUE(fs->plain()->Unlink(path).ok());
        plain_truth.erase(path);
      }
    } else if (kind < 10) {
      // Fsck: scrubs (and heals) every CONNECTED object.
      journal::FsckReport report;
      ASSERT_TRUE(fs->Fsck(&report).ok());
      EXPECT_EQ(report.hidden_unrecoverable_stripes, 0u);
      for (auto& [name, c] : connected) {
        if (c) lossy[name] = false;
      }
    } else if (kind < 11 && !hidden_truth.empty()) {
      auto it = hidden_truth.begin();
      std::advance(it, rng.Uniform(hidden_truth.size()));
      verify_one(it->first);
    } else {
      // Remount: map chains reload from disk; sessions reset.
      ASSERT_TRUE(fs->Flush().ok());
      fs.reset();
      auto again = StegFs::Mount(dev.get(), so);
      ASSERT_TRUE(again.ok());
      fs = std::move(again).value();
      connected.clear();
    }
  }

  // Final audit: every object heals to its modeled content.
  for (const auto& [name, content] : hidden_truth) {
    verify_one(name);
  }
  for (const auto& [path, content] : plain_truth) {
    auto data = fs->plain()->ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    EXPECT_EQ(data.value(), content) << path;
  }
  SpaceReport r = fs->ReportSpace();
  EXPECT_EQ(r.free_blocks + r.allocated_blocks, r.total_blocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdaChurnTest,
                         ::testing::Values(7101, 7202, 7303),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace stegfs
