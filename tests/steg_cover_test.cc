#include "baselines/steg_cover.h"

#include <gtest/gtest.h>

#include <set>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class StegCoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 65536);  // 64 MB
    FileStoreOptions opts;
    auto store = StegCoverStore::Create(dev_.get(), opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegCoverStore> store_;
};

TEST_F(StegCoverTest, GeometryFromOptions) {
  EXPECT_EQ(store_->num_covers(), 32u);  // 64 MB / 2 MB covers
}

TEST_F(StegCoverTest, SubsetIsDeterministicAndWithinOneGroup) {
  auto s1 = store_->SubsetFor("file", "key");
  auto s2 = store_->SubsetFor("file", "key");
  EXPECT_EQ(s1, s2);
  ASSERT_FALSE(s1.empty());
  uint32_t group = s1[0] / 16;
  for (uint32_t c : s1) {
    EXPECT_EQ(c / 16, group);
    EXPECT_LT(c, store_->num_covers());
  }
}

TEST_F(StegCoverTest, DifferentKeysDifferentSubsets) {
  EXPECT_NE(store_->SubsetFor("f", "k1"), store_->SubsetFor("f", "k2"));
}

TEST_F(StegCoverTest, CoResidentFilesSurviveEachOthersWrites) {
  // Write several files, then rewrite each repeatedly; all others must
  // remain intact (the GF(2) system routes deltas around live constraints).
  const int kFiles = 6;
  std::vector<std::string> contents(kFiles);
  for (int i = 0; i < kFiles; ++i) {
    contents[i] = RandomData(150000 + 1000 * i, i);
    ASSERT_TRUE(store_
                    ->WriteFile("f" + std::to_string(i),
                                "k" + std::to_string(i), contents[i])
                    .ok());
  }
  for (int round = 0; round < 3; ++round) {
    int target = round % kFiles;
    contents[target] = RandomData(120000 + round * 501, 100 + round);
    ASSERT_TRUE(store_
                    ->WriteFile("f" + std::to_string(target),
                                "k" + std::to_string(target),
                                contents[target])
                    .ok());
    for (int i = 0; i < kFiles; ++i) {
      auto data = store_->ReadFile("f" + std::to_string(i),
                                   "k" + std::to_string(i));
      ASSERT_TRUE(data.ok()) << "file " << i << " after rewriting " << target;
      EXPECT_EQ(data.value(), contents[i]) << i;
    }
  }
}

TEST_F(StegCoverTest, ReadsWorkWithoutRegistry) {
  // A fresh store instance (no registry) must still read by (name, key) —
  // only writes need co-resident knowledge.
  ASSERT_TRUE(store_->WriteFile("persist", "pk", "registry-free read").ok());
  ASSERT_TRUE(store_->Flush().ok());

  FileStoreOptions opts;
  // Re-open WITHOUT Create's formatting: construct via Create on a copy
  // would re-randomize; instead read through a second store sharing the
  // device is not offered by the API, so verify via the same store after
  // clearing nothing — the subset math itself is stateless:
  auto data = store_->ReadFile("persist", "pk");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "registry-free read");
}

TEST_F(StegCoverTest, FileLargerThanCoverRejected) {
  EXPECT_TRUE(store_->WriteFile("huge", "k", RandomData(3 << 20, 9))
                  .IsInvalidArgument());
}

TEST_F(StegCoverTest, GroupCapacityExhaustsGracefully) {
  // Fill one group beyond its rank: eventually masks become dependent and
  // the store must say NoSpace rather than corrupt data. We force files
  // into the same group by scanning names.
  auto target_group = store_->SubsetFor("seed-name", "seed-key")[0] / 16;
  int stored = 0;
  int attempts = 0;
  std::vector<std::pair<std::string, std::string>> placed;
  while (attempts < 4000 && stored < 17) {
    std::string name = "n" + std::to_string(attempts);
    std::string key = "k" + std::to_string(attempts);
    ++attempts;
    if (store_->SubsetFor(name, key)[0] / 16 != target_group) continue;
    Status s = store_->WriteFile(name, key, "x");
    if (s.ok()) {
      ++stored;
      placed.push_back({name, key});
    } else {
      EXPECT_TRUE(s.IsNoSpace());
      break;
    }
  }
  // A 16-cover group can hold at most 16 independent files.
  EXPECT_LE(stored, 16);
  // All committed files are intact.
  for (const auto& [name, key] : placed) {
    auto data = store_->ReadFile(name, key);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), "x");
  }
}

TEST_F(StegCoverTest, RawCoversLookRandom) {
  // After embedding, no cover should show structure (they started random
  // and XOR deltas preserve that).
  ASSERT_TRUE(store_->WriteFile("s", "k", std::string(100000, 'A')).ok());
  ASSERT_TRUE(store_->Flush().ok());
  const auto& raw = dev_->raw();
  std::vector<int> counts(256, 0);
  for (size_t i = 0; i < (1 << 20); ++i) counts[raw[i]]++;
  int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_LT(max_count, (1 << 20) / 256 * 2);  // no byte value dominates
}

}  // namespace
}  // namespace stegfs
