#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/interleaver.h"
#include "sim/space.h"
#include "sim/workload.h"

namespace stegfs {
namespace sim {
namespace {

TEST(WorkloadTest, GeneratesRequestedPopulation) {
  WorkloadConfig cfg;
  cfg.num_files = 25;
  auto files = GenerateFiles(cfg);
  ASSERT_EQ(files.size(), 25u);
  for (const auto& f : files) {
    EXPECT_GT(f.size, 1u << 20);
    EXPECT_LE(f.size, 2u << 20);
    EXPECT_FALSE(f.name.empty());
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadConfig cfg;
  auto a = GenerateFiles(cfg);
  auto b = GenerateFiles(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size, b[i].size);
  }
  EXPECT_EQ(FileContent(a[0], 1), FileContent(b[0], 1));
  EXPECT_NE(FileContent(a[0], 1), FileContent(a[0], 2));
}

TEST(InterleaverTest, SerialSumsServiceTimes) {
  // Two ops of one random request each: latency ~ seek + rotation each.
  IoTrace op1 = {{1000000, 1, false}};
  IoTrace op2 = {{5000000, 1, false}};
  auto result = ReplaySerial({op1, op2}, DiskModelConfig{}, 1024);
  EXPECT_EQ(result.op_latencies.size(), 2u);
  EXPECT_NEAR(result.total_seconds,
              result.op_latencies[0] + result.op_latencies[1], 1e-9);
}

TEST(InterleaverTest, InterleavingInflatesLatency) {
  // The same op replayed by 1 vs 8 users: per-op latency must grow
  // roughly with the user count (requests from others interleave).
  IoTrace op;
  for (int i = 0; i < 64; ++i) {
    op.push_back({static_cast<uint64_t>(1000000 + i * 4096), 1, false});
  }
  auto solo = ReplayInterleaved({{op}}, DiskModelConfig{}, 1024);
  std::vector<std::vector<IoTrace>> eight(8, std::vector<IoTrace>{op});
  auto crowd = ReplayInterleaved(eight, DiskModelConfig{}, 1024);
  ASSERT_EQ(crowd.op_latencies.size(), 8u);
  EXPECT_GT(crowd.mean_latency, solo.mean_latency * 4);
}

TEST(InterleaverTest, SequentialStreamsStayCheapUnderFewUsers) {
  // 4 users with disjoint sequential streams: drive segments keep all
  // streams cheap (this is why CleanDisk beats StegFS at low user counts).
  std::vector<std::vector<IoTrace>> users;
  for (int u = 0; u < 4; ++u) {
    IoTrace op;
    for (int i = 0; i < 256; ++i) {
      op.push_back(
          {static_cast<uint64_t>(u) * 1000000 + static_cast<uint64_t>(i), 1,
           false});
    }
    users.push_back({op});
  }
  auto result = ReplayInterleaved(users, DiskModelConfig{}, 1024);
  // 4 * 256 requests, almost all cache hits: mean service far below the
  // mechanical floor of ~5 ms.
  EXPECT_LT(result.mean_request_service, 0.002);
}

TEST(InterleaverTest, EmptyInputsSafe) {
  auto result = ReplayInterleaved({}, DiskModelConfig{}, 1024);
  EXPECT_EQ(result.total_seconds, 0.0);
  auto result2 = ReplayInterleaved({{}, {}}, DiskModelConfig{}, 1024);
  EXPECT_EQ(result2.op_latencies.size(), 0u);
}

TEST(SpaceTest, StegCoverAnalysisMatchesPaper) {
  // (1, 2] MB files in 2 MB covers -> 75% (paper 5.2).
  double util = StegCoverSpaceUtilization((1 << 20) + 1, 2 << 20, 2 << 20);
  EXPECT_NEAR(util, 0.75, 0.01);
}

TEST(SpaceTest, StegRandPeaksInMidReplication) {
  // Paper figure 6: utilization rises to a peak around replication 8-16,
  // then falls; absolute level is a few percent at 1 KB blocks.
  StegRandSpaceConfig cfg;
  cfg.volume_bytes = 256 << 20;  // scaled down for test speed
  cfg.trials = 2;
  cfg.replication = 1;
  double r1 = StegRandSpaceUtilization(cfg);
  cfg.replication = 8;
  double r8 = StegRandSpaceUtilization(cfg);
  cfg.replication = 64;
  double r64 = StegRandSpaceUtilization(cfg);

  EXPECT_GT(r8, r1);   // replication buys resilience...
  EXPECT_GT(r8, r64);  // ...until overhead dominates
  EXPECT_LT(r8, 0.20);
  EXPECT_GT(r8, 0.005);
}

TEST(SpaceTest, StegRandSmallerBlocksLowerUtilization) {
  StegRandSpaceConfig cfg;
  cfg.volume_bytes = 256 << 20;
  cfg.trials = 2;
  cfg.replication = 8;
  cfg.block_size = 512;
  double small_blocks = StegRandSpaceUtilization(cfg);
  cfg.block_size = 8192;
  double big_blocks = StegRandSpaceUtilization(cfg);
  EXPECT_GT(big_blocks, small_blocks);
}

TEST(SpaceTest, StegFsUtilizationAboveEightyPercent) {
  // Paper 5.2: "StegFS is able to consistently achieve more than 80% space
  // utilization" with Table 1 defaults.
  StegFsSpaceConfig cfg;
  double util = StegFsSpaceUtilization(cfg);
  EXPECT_GT(util, 0.80);
  EXPECT_LT(util, 1.0);
}

TEST(ExperimentTest, BuildLoadAndCapture) {
  WorkloadConfig wl;
  wl.volume_bytes = 64 << 20;
  wl.num_files = 10;
  wl.file_size_min = 100 << 10;
  wl.file_size_max = 200 << 10;
  FileStoreOptions so;
  auto env = BuildLoadedEnv(SchemeKind::kCleanDisk, wl, so);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  EXPECT_EQ((*env)->load_failures, 0u);

  auto reads = CaptureReadOps(env->get(), 5, 99);
  EXPECT_EQ(reads.traces.size(), 5u);
  for (const auto& t : reads.traces) {
    EXPECT_GT(t.size(), 50u);  // ~100-200 block reads per file
  }
  auto writes = CaptureWriteOps(env->get(), 3, 7);
  EXPECT_EQ(writes.traces.size(), 3u);
  bool has_write = false;
  for (const auto& req : writes.traces[0]) has_write |= req.is_write;
  EXPECT_TRUE(has_write);
}

TEST(ExperimentTest, AssignOpsRoundRobin) {
  IoTrace a = {{1, 1, false}};
  IoTrace b = {{2, 1, false}};
  auto streams = AssignOps({a, b}, 3, 4);
  ASSERT_EQ(streams.size(), 3u);
  for (const auto& s : streams) EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(streams[0][0][0].lba, 1u);
  EXPECT_EQ(streams[0][1][0].lba, 2u);
}

}  // namespace
}  // namespace sim
}  // namespace stegfs
