#include "core/escrow.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class EscrowTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto keys = crypto::RsaGenerateKeyPair(512, "escrow-admin");
    ASSERT_TRUE(keys.ok());
    admin_ = new crypto::RsaKeyPair(std::move(keys).value());
  }
  static void TearDownTestSuite() {
    delete admin_;
    admin_ = nullptr;
  }

  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 32768);
    StegFormatOptions fo;
    fo.params.dummy_file_count = 2;
    fo.params.dummy_file_avg_bytes = 64 << 10;
    fo.entropy = "escrow-test";
    ASSERT_TRUE(StegFs::Format(dev_.get(), fo).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
    escrow_ = std::make_unique<KeyEscrow>(fs_.get(), "/var/escrow.db");
  }

  void MakeHidden(const std::string& uid, const std::string& name,
                  const std::string& uak, const std::string& content) {
    ASSERT_TRUE(fs_->StegCreate(uid, name, uak, HiddenType::kFile).ok());
    ASSERT_TRUE(fs_->StegConnect(uid, name, uak).ok());
    ASSERT_TRUE(fs_->HiddenWriteAll(uid, name, content).ok());
    ASSERT_TRUE(fs_->DisconnectAll(uid).ok());
  }

  static crypto::RsaKeyPair* admin_;
  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
  std::unique_ptr<KeyEscrow> escrow_;
};

crypto::RsaKeyPair* EscrowTest::admin_ = nullptr;

TEST_F(EscrowTest, DepositAndList) {
  MakeHidden("alice", "doc1", "uak-a", "one");
  MakeHidden("bob", "doc2", "uak-b", "two");
  ASSERT_TRUE(escrow_
                  ->Deposit("alice", "doc1", "uak-a", admin_->public_key,
                            "e1")
                  .ok());
  ASSERT_TRUE(
      escrow_->Deposit("bob", "doc2", "uak-b", admin_->public_key, "e2")
          .ok());

  auto records = escrow_->List(admin_->private_key);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].uid, "alice");
  EXPECT_EQ((*records)[0].entry.name, "doc1");
  EXPECT_EQ((*records)[1].uid, "bob");
}

TEST_F(EscrowTest, ListNeedsPrivateKey) {
  MakeHidden("alice", "doc", "uak", "x");
  ASSERT_TRUE(
      escrow_->Deposit("alice", "doc", "uak", admin_->public_key, "e").ok());
  auto wrong = crypto::RsaGenerateKeyPair(512, "not-the-admin");
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(escrow_->List(wrong->private_key).ok());
}

TEST_F(EscrowTest, EscrowedFakGrantsAdminAccess) {
  MakeHidden("alice", "doc", "uak", "escrowed content");
  ASSERT_TRUE(
      escrow_->Deposit("alice", "doc", "uak", admin_->public_key, "e").ok());
  auto records = escrow_->List(admin_->private_key);
  ASSERT_TRUE(records.ok());
  // The admin can open the object directly with the escrowed FAK.
  auto obj = HiddenObject::Open(
      fs_->VolumeCtx(),
      StegFs::PhysicalName("alice", (*records)[0].entry.name),
      (*records)[0].entry.fak);
  ASSERT_TRUE(obj.ok());
  auto content = (*obj)->ReadAll();
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "escrowed content");
}

TEST_F(EscrowTest, PurgeExpiredUser) {
  MakeHidden("expired", "old1", "uak-e", RandomData(100000, 1));
  MakeHidden("expired", "old2", "uak-e", RandomData(80000, 2));
  MakeHidden("active", "keep", "uak-k", "still here");
  ASSERT_TRUE(escrow_
                  ->Deposit("expired", "old1", "uak-e", admin_->public_key,
                            "e1")
                  .ok());
  ASSERT_TRUE(escrow_
                  ->Deposit("expired", "old2", "uak-e", admin_->public_key,
                            "e2")
                  .ok());
  ASSERT_TRUE(escrow_
                  ->Deposit("active", "keep", "uak-k", admin_->public_key,
                            "e3")
                  .ok());

  uint64_t free_before = fs_->plain()->bitmap()->free_count();
  auto purged = escrow_->PurgeUser(admin_->private_key, "expired");
  ASSERT_TRUE(purged.ok()) << purged.status().ToString();
  EXPECT_EQ(*purged, 2);
  EXPECT_GT(fs_->plain()->bitmap()->free_count(), free_before);

  // Purged objects are unreachable even with the right UAK.
  EXPECT_TRUE(fs_->StegConnect("expired", "old1", "uak-e").IsNotFound());
  // The active user is untouched.
  ASSERT_TRUE(fs_->StegConnect("active", "keep", "uak-k").ok());
  EXPECT_EQ(fs_->HiddenReadAll("active", "keep").value(), "still here");
  // Their escrow records are gone, the active one remains.
  auto records = escrow_->List(admin_->private_key);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].uid, "active");
}

TEST_F(EscrowTest, PurgeIsIdempotent) {
  MakeHidden("u", "d", "uak", "x");
  ASSERT_TRUE(
      escrow_->Deposit("u", "d", "uak", admin_->public_key, "e").ok());
  ASSERT_TRUE(escrow_->PurgeUser(admin_->private_key, "u").ok());
  auto again = escrow_->PurgeUser(admin_->private_key, "u");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0);
}

TEST_F(EscrowTest, DefragmentPreservesContentAndRelocatesBlocks) {
  std::string content = RandomData(300000, 9);
  MakeHidden("alice", "frag", "uak", content);
  ASSERT_TRUE(
      escrow_->Deposit("alice", "frag", "uak", admin_->public_key, "e").ok());

  // Record the object's header block before.
  auto records = escrow_->List(admin_->private_key);
  ASSERT_TRUE(records.ok());
  auto before = HiddenObject::Open(
      fs_->VolumeCtx(), StegFs::PhysicalName("alice", "frag"),
      (*records)[0].entry.fak);
  ASSERT_TRUE(before.ok());
  uint64_t old_header = (*before)->header_block();
  before->reset();

  ASSERT_TRUE(
      escrow_->Defragment(admin_->private_key, "alice", "frag").ok());

  // The OWNER still reaches it through the same UAK directory entry...
  ASSERT_TRUE(fs_->StegConnect("alice", "frag", "uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("alice", "frag").value(), content);
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());

  // ...and the object was genuinely re-placed (same candidate chain, but
  // the header lands on the first free candidate again — verify the object
  // still opens and the volume leaked nothing).
  auto after = HiddenObject::Open(
      fs_->VolumeCtx(), StegFs::PhysicalName("alice", "frag"),
      (*records)[0].entry.fak);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->size(), content.size());
  (void)old_header;  // placement may or may not coincide; content governs
}

TEST_F(EscrowTest, DefragmentUnknownObjectFails) {
  EXPECT_TRUE(escrow_->Defragment(admin_->private_key, "alice", "nope")
                  .IsNotFound());
}

TEST_F(EscrowTest, EscrowSurvivesRemount) {
  MakeHidden("alice", "doc", "uak", "persistent");
  ASSERT_TRUE(
      escrow_->Deposit("alice", "doc", "uak", admin_->public_key, "e").ok());
  ASSERT_TRUE(fs_->Flush().ok());
  escrow_.reset();
  fs_.reset();

  auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  escrow_ = std::make_unique<KeyEscrow>(fs_.get(), "/var/escrow.db");
  auto records = escrow_->List(admin_->private_key);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].entry.name, "doc");
}

}  // namespace
}  // namespace stegfs
