#include "vfs/vfs.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"

namespace stegfs {
namespace vfs {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 32768);
    StegFormatOptions fo;
    fo.params.dummy_file_count = 2;
    fo.params.dummy_file_avg_bytes = 64 << 10;
    fo.entropy = "vfs-test";
    ASSERT_TRUE(StegFs::Format(dev_.get(), fo).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
    vfs_ = std::make_unique<Vfs>(fs_.get(), "alice");
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(VfsTest, CreateWriteReadPlainFile) {
  auto fd = vfs_->Open("/hello.txt", kRead | kWrite | kCreate);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  auto wrote = vfs_->Write(*fd, "hello vfs", 9);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 9);

  ASSERT_TRUE(vfs_->Seek(*fd, 0, Whence::kSet).ok());
  char buf[32] = {0};
  auto got = vfs_->Read(*fd, buf, sizeof(buf));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 9);
  EXPECT_STREQ(buf, "hello vfs");
  ASSERT_TRUE(vfs_->Close(*fd).ok());
}

TEST_F(VfsTest, OpenWithoutCreateFails) {
  EXPECT_TRUE(vfs_->Open("/missing", kRead).status().IsNotFound());
}

TEST_F(VfsTest, OpenNeedsAMode) {
  EXPECT_TRUE(vfs_->Open("/x", kCreate).status().IsInvalidArgument());
}

TEST_F(VfsTest, TruncateOnOpen) {
  auto fd = vfs_->Open("/t", kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, "0123456789", 10).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());

  auto fd2 = vfs_->Open("/t", kRead | kWrite | kTruncate);
  ASSERT_TRUE(fd2.ok());
  auto size = vfs_->FileSize(*fd2);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST_F(VfsTest, SeekSemantics) {
  auto fd = vfs_->Open("/s", kRead | kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, "abcdefgh", 8).ok());

  EXPECT_EQ(vfs_->Seek(*fd, 2, Whence::kSet).value(), 2);
  EXPECT_EQ(vfs_->Seek(*fd, 3, Whence::kCurrent).value(), 5);
  EXPECT_EQ(vfs_->Seek(*fd, -1, Whence::kEnd).value(), 7);
  char c;
  ASSERT_TRUE(vfs_->Read(*fd, &c, 1).ok());
  EXPECT_EQ(c, 'h');
  EXPECT_TRUE(vfs_->Seek(*fd, -100, Whence::kSet).status().IsInvalidArgument());
}

TEST_F(VfsTest, AppendMode) {
  auto fd = vfs_->Open("/a", kWrite | kCreate);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Write(*fd, "base", 4).ok());
  ASSERT_TRUE(vfs_->Close(*fd).ok());

  auto fd2 = vfs_->Open("/a", kWrite | kAppend);
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(vfs_->Write(*fd2, "+tail", 5).ok());
  ASSERT_TRUE(vfs_->Close(*fd2).ok());

  auto data = fs_->plain()->ReadFile("/a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "base+tail");
}

TEST_F(VfsTest, ReadOnlyDescriptorRejectsWrite) {
  ASSERT_TRUE(fs_->plain()->WriteFile("/ro", "data").ok());
  auto fd = vfs_->Open("/ro", kRead);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(vfs_->Write(*fd, "x", 1).status().IsPermissionDenied());
}

TEST_F(VfsTest, BadDescriptorRejected) {
  char buf[4];
  EXPECT_TRUE(vfs_->Read(99, buf, 4).status().IsInvalidArgument());
  EXPECT_TRUE(vfs_->Close(-1).IsInvalidArgument());
}

TEST_F(VfsTest, DescriptorSlotsAreReused) {
  auto fd1 = vfs_->Open("/f1", kWrite | kCreate);
  ASSERT_TRUE(fd1.ok());
  ASSERT_TRUE(vfs_->Close(*fd1).ok());
  auto fd2 = vfs_->Open("/f2", kWrite | kCreate);
  ASSERT_TRUE(fd2.ok());
  EXPECT_EQ(*fd1, *fd2);  // lowest free slot, POSIX-style
}

TEST_F(VfsTest, HiddenObjectThroughStandardCalls) {
  // The paper's headline property: once connected, existing applications
  // read hidden data through ordinary file APIs.
  ASSERT_TRUE(
      fs_->StegCreate("alice", "secret.db", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(vfs_->Connect("secret.db", "uak").ok());

  auto fd = vfs_->Open("/steg/secret.db", kRead | kWrite);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(vfs_->Write(*fd, "hidden payload", 14).ok());
  ASSERT_TRUE(vfs_->Seek(*fd, 7, Whence::kSet).ok());
  char buf[8] = {0};
  auto got = vfs_->Read(*fd, buf, 7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, 7), "payload");
  ASSERT_TRUE(vfs_->Close(*fd).ok());
}

TEST_F(VfsTest, UnconnectedHiddenPathFails) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "ghost", "uak", HiddenType::kFile).ok());
  // Not connected: the path does not resolve, and open() takes no keys.
  EXPECT_FALSE(vfs_->Open("/steg/ghost", kRead).ok());
}

TEST_F(VfsTest, DisconnectInvalidatesDescriptors) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "vol", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(vfs_->Connect("vol", "uak").ok());
  auto fd = vfs_->Open("/steg/vol", kRead | kWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs_->Disconnect("vol").ok());
  char buf[4];
  EXPECT_TRUE(vfs_->Read(*fd, buf, 4).status().IsInvalidArgument());
}

TEST_F(VfsTest, ReadDirPlainAndSteg) {
  ASSERT_TRUE(vfs_->MkDir("/docs").ok());
  ASSERT_TRUE(fs_->plain()->WriteFile("/docs/a.txt", "a").ok());
  auto root = vfs_->ReadDir("/");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 1u);
  EXPECT_EQ((*root)[0].name, "docs");
  EXPECT_TRUE((*root)[0].is_directory);

  ASSERT_TRUE(
      fs_->StegCreate("alice", "h1", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(vfs_->Connect("h1", "uak").ok());
  auto steg = vfs_->ReadDir("/steg");
  ASSERT_TRUE(steg.ok());
  ASSERT_EQ(steg->size(), 1u);
  EXPECT_EQ((*steg)[0].name, "h1");
  EXPECT_TRUE((*steg)[0].is_hidden);
}

TEST_F(VfsTest, HiddenNamespaceMutationsNeedStegApis) {
  EXPECT_TRUE(vfs_->MkDir("/steg/newdir").IsNotSupported());
  EXPECT_TRUE(vfs_->Unlink("/steg/x").IsNotSupported());
}

TEST_F(VfsTest, LogoffDisconnectsEverything) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "s1", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(vfs_->Connect("s1", "uak").ok());
  ASSERT_TRUE(vfs_->Logoff().ok());
  EXPECT_TRUE(fs_->ConnectedObjects("alice").empty());
  EXPECT_FALSE(vfs_->Open("/steg/s1", kRead).ok());
}

TEST_F(VfsTest, TwoSessionsAreIsolated) {
  Vfs bob(fs_.get(), "bob");
  ASSERT_TRUE(
      fs_->StegCreate("alice", "mine", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(vfs_->Connect("mine", "uak").ok());
  // bob's session does not see alice's connection.
  EXPECT_FALSE(bob.Open("/steg/mine", kRead).ok());
}

}  // namespace
}  // namespace vfs
}  // namespace stegfs
