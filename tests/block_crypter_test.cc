#include "crypto/block_crypter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace stegfs {
namespace crypto {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t start = 0) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(start + i * 3);
  return v;
}

TEST(BlockCrypterTest, RoundTrip) {
  BlockCrypter bc("file access key");
  std::vector<uint8_t> data = Pattern(1024);
  std::vector<uint8_t> orig = data;
  bc.EncryptBlock(7, data.data(), data.size());
  EXPECT_NE(data, orig);
  bc.DecryptBlock(7, data.data(), data.size());
  EXPECT_EQ(data, orig);
}

TEST(BlockCrypterTest, WrongBlockNumberFailsToDecrypt) {
  BlockCrypter bc("key");
  std::vector<uint8_t> data = Pattern(512);
  std::vector<uint8_t> orig = data;
  bc.EncryptBlock(1, data.data(), data.size());
  bc.DecryptBlock(2, data.data(), data.size());
  EXPECT_NE(data, orig);  // ESSIV ties ciphertext to the block address
}

TEST(BlockCrypterTest, WrongKeyFailsToDecrypt) {
  BlockCrypter a("key-a"), b("key-b");
  std::vector<uint8_t> data = Pattern(512);
  std::vector<uint8_t> orig = data;
  a.EncryptBlock(0, data.data(), data.size());
  b.DecryptBlock(0, data.data(), data.size());
  EXPECT_NE(data, orig);
}

TEST(BlockCrypterTest, SamePlaintextDifferentBlocksDiffer) {
  BlockCrypter bc("key");
  std::vector<uint8_t> b1 = Pattern(1024);
  std::vector<uint8_t> b2 = b1;
  bc.EncryptBlock(10, b1.data(), b1.size());
  bc.EncryptBlock(11, b2.data(), b2.size());
  EXPECT_NE(b1, b2);
}

TEST(BlockCrypterTest, Deterministic) {
  BlockCrypter a("key"), b("key");
  std::vector<uint8_t> d1 = Pattern(256), d2 = d1;
  a.EncryptBlock(5, d1.data(), d1.size());
  b.EncryptBlock(5, d2.data(), d2.size());
  EXPECT_EQ(d1, d2);
}

TEST(BlockCrypterTest, AllSupportedBlockSizes) {
  BlockCrypter bc("key");
  for (size_t size : {512u, 1024u, 2048u, 4096u, 8192u, 16384u, 32768u,
                      65536u}) {
    std::vector<uint8_t> data = Pattern(size, 9);
    std::vector<uint8_t> orig = data;
    bc.EncryptBlock(3, data.data(), size);
    bc.DecryptBlock(3, data.data(), size);
    EXPECT_EQ(data, orig) << "block size " << size;
  }
}

// A zero-filled plaintext block must produce high-entropy ciphertext:
// this is the core requirement for hidden blocks to be indistinguishable
// from the random fill written at format time.
TEST(BlockCrypterTest, ZeroBlockCiphertextLooksRandom) {
  BlockCrypter bc("key");
  std::vector<uint8_t> data(4096, 0);
  bc.EncryptBlock(0, data.data(), data.size());
  // Count byte-value distribution: no value should dominate.
  std::vector<int> counts(256, 0);
  for (uint8_t b : data) counts[b]++;
  int max_count = *std::max_element(counts.begin(), counts.end());
  // Expected ~16 per value; 64 would be a wild outlier.
  EXPECT_LT(max_count, 64);
}

TEST(BlockCrypterTest, CbcChainingPropagates) {
  // Flipping one bit of ciphertext must garble that 16-byte group and the
  // following one on decryption (CBC property).
  BlockCrypter bc("key");
  std::vector<uint8_t> data = Pattern(256);
  std::vector<uint8_t> orig = data;
  bc.EncryptBlock(0, data.data(), data.size());
  data[0] ^= 0x01;
  bc.DecryptBlock(0, data.data(), data.size());
  EXPECT_NE(std::memcmp(data.data(), orig.data(), 16), 0);
  EXPECT_NE(std::memcmp(data.data() + 16, orig.data() + 16, 16), 0);
  // Groups beyond the second are unaffected.
  EXPECT_EQ(std::memcmp(data.data() + 32, orig.data() + 32, 224), 0);
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
