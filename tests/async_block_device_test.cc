// The async I/O engines: the thread-pool fallback against MemBlockDevice
// and FaultyDevice (always available, so fault semantics and the
// exactly-once completion contract are covered on every host), and the
// io_uring backend against a real volume file when the kernel provides it
// (skipped cleanly otherwise). The concurrency cases run under TSan in CI.
#include "blockdev/async_block_device.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/thread_pool_async_device.h"
#include "blockdev/uring_block_device.h"
#include "gtest/gtest.h"
#include "tests/test_device.h"

namespace stegfs {
namespace {

constexpr uint32_t kBlockSize = 512;
constexpr uint64_t kNumBlocks = 256;

// Deterministic per-block pattern.
void FillBlock(uint64_t block, uint8_t* buf, uint32_t bs) {
  for (uint32_t i = 0; i < bs; ++i) {
    buf[i] = static_cast<uint8_t>((block * 131 + i * 7) & 0xff);
  }
}

void SeedDevice(BlockDevice* dev) {
  std::vector<uint8_t> buf(dev->block_size());
  for (uint64_t b = 0; b < dev->num_blocks(); ++b) {
    FillBlock(b, buf.data(), dev->block_size());
    ASSERT_TRUE(dev->WriteBlock(b, buf.data()).ok());
  }
}

TEST(ThreadPoolAsyncDeviceTest, ReadBatchMatchesSync) {
  MemBlockDevice dev(kBlockSize, kNumBlocks);
  SeedDevice(&dev);
  ThreadPoolAsyncDevice engine(&dev, 3);

  std::mt19937 rng(42);
  std::vector<uint8_t> out(64 * kBlockSize);
  std::vector<BlockIoVec> iov;
  std::vector<uint64_t> blocks;
  for (size_t i = 0; i < 64; ++i) {
    uint64_t b = rng() % kNumBlocks;
    blocks.push_back(b);
    iov.push_back({b, out.data() + i * kBlockSize});
  }
  IoTicket t = engine.SubmitRead(std::move(iov));
  ASSERT_TRUE(t.Wait().ok());
  std::vector<uint8_t> want(kBlockSize);
  for (size_t i = 0; i < 64; ++i) {
    FillBlock(blocks[i], want.data(), kBlockSize);
    EXPECT_EQ(0, std::memcmp(out.data() + i * kBlockSize, want.data(),
                             kBlockSize))
        << "block " << blocks[i] << " at position " << i;
  }
  AsyncIoStats s = engine.stats();
  EXPECT_EQ(s.submitted_batches, 1u);
  EXPECT_EQ(s.submitted_blocks, 64u);
  EXPECT_EQ(s.completed_batches, 1u);
  EXPECT_EQ(s.failed_batches, 0u);
  EXPECT_EQ(s.inflight_blocks, 0u);
}

TEST(ThreadPoolAsyncDeviceTest, WriteBatchLandsOnDevice) {
  MemBlockDevice dev(kBlockSize, kNumBlocks);
  ThreadPoolAsyncDevice engine(&dev, 2);

  std::vector<uint8_t> data(32 * kBlockSize);
  std::vector<ConstBlockIoVec> iov;
  for (size_t i = 0; i < 32; ++i) {
    FillBlock(100 + i, data.data() + i * kBlockSize, kBlockSize);
    iov.push_back({100 + i, data.data() + i * kBlockSize});
  }
  ASSERT_TRUE(engine.SubmitWrite(std::move(iov)).Wait().ok());

  std::vector<uint8_t> got(kBlockSize), want(kBlockSize);
  for (size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(dev.ReadBlock(100 + i, got.data()).ok());
    FillBlock(100 + i, want.data(), kBlockSize);
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(), kBlockSize));
  }
}

TEST(ThreadPoolAsyncDeviceTest, CallbackRunsExactlyOncePerBatch) {
  MemBlockDevice dev(kBlockSize, kNumBlocks);
  SeedDevice(&dev);
  ThreadPoolAsyncDevice engine(&dev, 4);

  std::atomic<int> calls{0};
  // One buffer per batch: 20 batches are in flight at once, and the
  // engine contract says each batch's target buffers are private to it.
  std::vector<std::vector<uint8_t>> outs(
      20, std::vector<uint8_t>((kNumBlocks / 4) * kBlockSize));
  std::vector<IoTicket> tickets;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<BlockIoVec> iov;
    for (uint64_t b = 0; b < kNumBlocks; b += 4) {
      iov.push_back({b, outs[batch].data() + (b / 4) * kBlockSize});
    }
    tickets.push_back(engine.SubmitRead(
        std::move(iov), [&calls](const Status&) { calls.fetch_add(1); }));
  }
  for (IoTicket& t : tickets) EXPECT_TRUE(t.Wait().ok());
  EXPECT_EQ(calls.load(), 20);
  // Wait() again: idempotent, and the counter must not move.
  for (IoTicket& t : tickets) EXPECT_TRUE(t.Wait().ok());
  EXPECT_EQ(calls.load(), 20);
}

TEST(ThreadPoolAsyncDeviceTest, MidBatchReadFaultFailsBatchOnce) {
  test::FaultyDevice dev(kBlockSize, kNumBlocks);
  SeedDevice(dev.inner());
  ThreadPoolAsyncDevice engine(&dev, 2);

  dev.FailReads(/*after=*/10);  // the 11th read of the batch fails
  std::atomic<int> calls{0};
  Status seen;
  std::vector<uint8_t> out(64 * kBlockSize);
  std::vector<BlockIoVec> iov;
  for (uint64_t b = 0; b < 64; ++b) {
    iov.push_back({b, out.data() + b * kBlockSize});
  }
  IoTicket t = engine.SubmitRead(std::move(iov),
                                 [&](const Status& s) {
                                   calls.fetch_add(1);
                                   seen = s;
                                 });
  Status waited = t.Wait();
  EXPECT_FALSE(waited.ok());
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen.ToString(), waited.ToString());
  EXPECT_EQ(engine.stats().failed_batches, 1u);
  dev.Heal();
}

TEST(ThreadPoolAsyncDeviceTest, ConcurrentSubmittersAndFaults) {
  test::FaultyDevice dev(kBlockSize, kNumBlocks);
  SeedDevice(dev.inner());
  ThreadPoolAsyncDevice engine(&dev, 3);

  std::atomic<int> completions{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&engine, &completions, tid] {
      std::mt19937 rng(1000 + tid);
      std::vector<uint8_t> out(16 * kBlockSize);
      for (int round = 0; round < 30; ++round) {
        std::vector<BlockIoVec> iov;
        for (size_t i = 0; i < 16; ++i) {
          iov.push_back({rng() % kNumBlocks, out.data() + i * kBlockSize});
        }
        // Errors are fine (the fault thread is firing); the contract under
        // test is exactly-one completion per batch and no races.
        engine
            .SubmitRead(std::move(iov),
                        [&completions](const Status&) {
                          completions.fetch_add(1);
                        })
            .Wait();
      }
    });
  }
  std::thread faulter([&dev] {
    for (int i = 0; i < 20; ++i) {
      dev.FailReads(/*after=*/5);
      std::this_thread::yield();
      dev.Heal();
    }
  });
  for (std::thread& t : threads) t.join();
  faulter.join();
  engine.Drain();
  EXPECT_EQ(completions.load(), 4 * 30);
  AsyncIoStats s = engine.stats();
  EXPECT_EQ(s.submitted_batches, s.completed_batches);
  EXPECT_EQ(s.inflight_blocks, 0u);
}

TEST(ThreadPoolAsyncDeviceTest, EmptyBatchCompletesInline) {
  MemBlockDevice dev(kBlockSize, kNumBlocks);
  ThreadPoolAsyncDevice engine(&dev, 2);
  bool called = false;
  IoTicket t = engine.SubmitRead({}, [&called](const Status& s) {
    called = s.ok();
  });
  EXPECT_TRUE(t.done());
  EXPECT_TRUE(t.Wait().ok());
  EXPECT_TRUE(called);
}

// --- io_uring backend (runtime-gated) ----------------------------------

class UringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "uring_test_vol.img";
    std::remove(path_.c_str());
    auto dev = FileBlockDevice::Create(path_, kBlockSize, kNumBlocks);
    ASSERT_TRUE(dev.ok());
    dev_ = std::move(dev).value();
    SeedDevice(dev_.get());
    auto engine = UringBlockDevice::Attach(
        dev_->file_descriptor(), kBlockSize, kNumBlocks);
    if (!engine.ok()) {
      GTEST_SKIP() << "io_uring unavailable: "
                   << engine.status().ToString();
    }
    engine_ = std::move(engine).value();
  }

  void TearDown() override {
    engine_.reset();  // drain before the fd closes
    dev_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<FileBlockDevice> dev_;
  std::unique_ptr<UringBlockDevice> engine_;
};

TEST_F(UringTest, RandomReadBatchMatchesSync) {
  std::mt19937 rng(7);
  std::vector<uint8_t> out(128 * kBlockSize);
  std::vector<uint64_t> blocks;
  std::vector<BlockIoVec> iov;
  for (size_t i = 0; i < 128; ++i) {
    uint64_t b = rng() % kNumBlocks;
    blocks.push_back(b);
    iov.push_back({b, out.data() + i * kBlockSize});
  }
  ASSERT_TRUE(engine_->SubmitRead(std::move(iov)).Wait().ok());
  std::vector<uint8_t> want(kBlockSize);
  for (size_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(dev_->ReadBlock(blocks[i], want.data()).ok());
    EXPECT_EQ(0, std::memcmp(out.data() + i * kBlockSize, want.data(),
                             kBlockSize));
  }
}

TEST_F(UringTest, WritesVisibleToSyncReads) {
  std::vector<uint8_t> data(64 * kBlockSize);
  std::vector<ConstBlockIoVec> iov;
  for (size_t i = 0; i < 64; ++i) {
    FillBlock(7000 + i, data.data() + i * kBlockSize, kBlockSize);
    iov.push_back({i * 3, data.data() + i * kBlockSize});
  }
  ASSERT_TRUE(engine_->SubmitWrite(std::move(iov)).Wait().ok());
  // Coherence with the synchronous pread path on the same descriptor.
  std::vector<uint8_t> got(kBlockSize), want(kBlockSize);
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(dev_->ReadBlock(i * 3, got.data()).ok());
    FillBlock(7000 + i, want.data(), kBlockSize);
    EXPECT_EQ(0, std::memcmp(got.data(), want.data(), kBlockSize));
  }
}

TEST_F(UringTest, BatchLargerThanRingCompletes) {
  // > 512 ops (the CQ capacity), so submission must chunk and backpressure.
  constexpr size_t kOps = 1500;
  std::vector<uint8_t> out(kOps * kBlockSize);
  std::vector<BlockIoVec> iov;
  for (size_t i = 0; i < kOps; ++i) {
    iov.push_back({i % kNumBlocks, out.data() + i * kBlockSize});
  }
  ASSERT_TRUE(engine_->SubmitRead(std::move(iov)).Wait().ok());
  std::vector<uint8_t> want(kBlockSize);
  for (size_t i = 0; i < kOps; i += 97) {
    FillBlock(i % kNumBlocks, want.data(), kBlockSize);
    EXPECT_EQ(0, std::memcmp(out.data() + i * kBlockSize, want.data(),
                             kBlockSize));
  }
  AsyncIoStats s = engine_->stats();
  EXPECT_EQ(s.submitted_blocks, kOps + 1);  // +1 Attach probe read
  EXPECT_EQ(s.inflight_blocks, 0u);
}

TEST_F(UringTest, OutOfRangeRejectedWithoutSubmission) {
  std::vector<uint8_t> buf(kBlockSize);
  IoTicket t = engine_->SubmitRead({{kNumBlocks, buf.data()}});
  Status s = t.Wait();
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(UringTest, ConcurrentSubmitters) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < 4; ++tid) {
    threads.emplace_back([this, tid, &failures] {
      std::mt19937 rng(50 + tid);
      std::vector<uint8_t> out(32 * kBlockSize);
      std::vector<uint8_t> want(kBlockSize);
      for (int round = 0; round < 25; ++round) {
        std::vector<uint64_t> blocks;
        std::vector<BlockIoVec> iov;
        for (size_t i = 0; i < 32; ++i) {
          uint64_t b = rng() % kNumBlocks;
          blocks.push_back(b);
          iov.push_back({b, out.data() + i * kBlockSize});
        }
        if (!engine_->SubmitRead(std::move(iov)).Wait().ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < 32; ++i) {
          FillBlock(blocks[i], want.data(), kBlockSize);
          if (std::memcmp(out.data() + i * kBlockSize, want.data(),
                          kBlockSize) != 0) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace stegfs
