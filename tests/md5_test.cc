#include "crypto/md5.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace stegfs {
namespace crypto {
namespace {

std::string HexOf(const Md5Digest& d) { return HexEncode(d.data(), d.size()); }

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(HexOf(Md5::Hash("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(HexOf(Md5::Hash("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(HexOf(Md5::Hash("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(HexOf(Md5::Hash("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(HexOf(Md5::Hash("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      HexOf(Md5::Hash(
          "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789")),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(HexOf(Md5::Hash("1234567890123456789012345678901234567890123456789"
                            "0123456789012345678901234567890")),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  std::string msg(200, 'q');
  Md5Digest oneshot = Md5::Hash(msg);
  for (size_t split : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 199u, 200u}) {
    Md5 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), oneshot) << "split at " << split;
  }
}

TEST(Md5Test, PaddingBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
    std::string msg(len, 'z');
    Md5 incremental;
    for (char c : msg) incremental.Update(&c, 1);
    EXPECT_EQ(incremental.Finish(), Md5::Hash(msg)) << "length " << len;
  }
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
