#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace stegfs {
namespace crypto {
namespace {

std::string HexOf(const Sha256Digest& d) {
  return HexEncode(d.data(), d.size());
}

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  std::string key(20, '\x0b');
  EXPECT_EQ(HexOf(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: short key.
TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexOf(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: key and data of 0xaa/0xdd bytes.
TEST(HmacTest, Rfc4231Case3) {
  std::string key(20, '\xaa');
  std::string data(50, '\xdd');
  EXPECT_EQ(HexOf(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size (hashed first).
TEST(HmacTest, Rfc4231Case6LongKey) {
  std::string key(131, '\xaa');
  EXPECT_EQ(HexOf(HmacSha256(key, "Test Using Larger Than Block-Size Key - "
                                  "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  EXPECT_NE(HexOf(HmacSha256("key1", "data")),
            HexOf(HmacSha256("key2", "data")));
}

TEST(HkdfTest, DeterministicAndLabelSeparated) {
  auto a = HkdfExpand("master", "label-a", 64);
  auto b = HkdfExpand("master", "label-a", 64);
  auto c = HkdfExpand("master", "label-b", 64);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 64u);
}

TEST(HkdfTest, PrefixConsistency) {
  // Expanding to a shorter length yields a prefix of the longer expansion.
  auto short_out = HkdfExpand("k", "info", 16);
  auto long_out = HkdfExpand("k", "info", 48);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(),
                         long_out.begin()));
}

TEST(HkdfTest, OddLengths) {
  for (size_t n : {1u, 31u, 32u, 33u, 100u}) {
    EXPECT_EQ(HkdfExpand("k", "i", n).size(), n);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
