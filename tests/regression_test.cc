// Regression pins for bugs found during development. Each test reproduces
// the exact minimal failure sequence so the bug class cannot return.
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "fs/plain_fs.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

// BUG 1: rewriting an EXISTING plain file updated the in-memory inode but
// never marked its inode-table block dirty; if no neighboring inode was
// (de)allocated before unmount, PersistAll skipped the block and the
// rewrite silently reverted to the previous version on remount.
TEST(RegressionTest, PlainRewritePersistsWithoutNeighborAllocations) {
  MemBlockDevice dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());

  std::string v1 = RandomData(100000, 1);
  std::string v2 = RandomData(120000, 2);
  {
    auto fs = PlainFs::Mount(&dev, MountOptions{});
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->WriteFile("/f", v1).ok());
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  {
    // Fresh mount: rewrite ONLY — no create, no unlink, nothing else that
    // would dirty the shared inode-table block as a side effect.
    auto fs = PlainFs::Mount(&dev, MountOptions{});
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->WriteFile("/f", v2).ok());
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  {
    auto fs = PlainFs::Mount(&dev, MountOptions{});
    ASSERT_TRUE(fs.ok());
    auto data = (*fs)->ReadFile("/f");
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), v2) << "rewrite lost on remount";
  }
}

// Same bug class for WriteAt / TruncateFile.
TEST(RegressionTest, WriteAtAndTruncatePersistAcrossRemount) {
  MemBlockDevice dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  {
    auto fs = PlainFs::Mount(&dev, MountOptions{});
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->WriteFile("/f", std::string(5000, 'a')).ok());
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  {
    auto fs = PlainFs::Mount(&dev, MountOptions{});
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->WriteAt("/f", 6000, "tail").ok());  // extends size
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  {
    auto fs = PlainFs::Mount(&dev, MountOptions{});
    ASSERT_TRUE(fs.ok());
    EXPECT_EQ((*fs)->Stat("/f")->size, 6004u);
    ASSERT_TRUE((*fs)->TruncateFile("/f", 100).ok());
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  {
    auto fs = PlainFs::Mount(&dev, MountOptions{});
    ASSERT_TRUE(fs.ok());
    EXPECT_EQ((*fs)->Stat("/f")->size, 100u);
  }
}

// BUG 2: a hidden object's free-pool block released back to the file
// system (pool overflow during truncate) stayed in the object's lazy-scrub
// queue; the next Sync wrote noise over the block, which by then could
// belong to a plain file. Sequence: fill a pool with fresh (unscrubbed)
// blocks, truncate to overflow the pool (releasing some), allocate the
// released blocks to a plain file, then Sync the hidden object.
TEST(RegressionTest, ReleasedPoolBlocksAreNeverScrubbed) {
  MemBlockDevice dev(1024, 32768);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 0;
  fo.params.free_pool_min = 0;
  fo.params.free_pool_max = 10;
  fo.entropy = "regression-scrub";
  ASSERT_TRUE(StegFs::Format(&dev, fo).ok());
  auto fs = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(fs.ok());

  // Hidden object grows (pool repeatedly refilled with unscrubbed blocks)
  // then shrinks hard (pool overflow -> releases to the bitmap).
  ASSERT_TRUE((*fs)->StegCreate("u", "h", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE((*fs)->StegConnect("u", "h", "uak").ok());
  ASSERT_TRUE(
      (*fs)->HiddenWriteAll("u", "h", RandomData(400000, 3)).ok());
  ASSERT_TRUE((*fs)->HiddenTruncate("u", "h", 100).ok());

  // Plain file takes over much of the volume — including any blocks the
  // hidden object just released.
  std::string plain_content = RandomData(8 << 20, 4);
  ASSERT_TRUE((*fs)->plain()->WriteFile("/victim", plain_content).ok());

  // Now the hidden object syncs (scrubs whatever it still owes noise to).
  ASSERT_TRUE((*fs)->HiddenWriteAll("u", "h", "tiny").ok());
  ASSERT_TRUE((*fs)->Flush().ok());

  auto data = (*fs)->plain()->ReadFile("/victim");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), plain_content)
      << "hidden-object scrub wrote over a plain file's block";
}

// BUG 3: "\x02system\x00dummy-" parsed "\x00d" as the single escape 0x0d,
// shortening the literal and over-reading by one byte. Pin the dummy
// lifecycle end-to-end instead of the private name: format must create
// maintainable dummies, and two formats with the same entropy must agree.
TEST(RegressionTest, DummyNamesStableAcrossFormatAndMount) {
  MemBlockDevice dev(1024, 32768);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 3;
  fo.params.dummy_file_avg_bytes = 64 << 10;
  fo.entropy = "regression-dummy";
  ASSERT_TRUE(StegFs::Format(&dev, fo).ok());
  auto fs = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  // MaintenanceTick must find every dummy by its derived (name, key); a
  // mis-parsed name would make this NotFound.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*fs)->MaintenanceTick().ok()) << i;
  }
}

}  // namespace
}  // namespace stegfs
