// Build/link sanity: instantiate one public type from every layer of the
// stack (util -> crypto -> blockdev -> cache -> fs -> core). A link-order
// or missing-symbol regression in any layer breaks this suite first — it
// is the cheapest test in the tree and the first one to consult when the
// build goes red.
#include <cstring>
#include <memory>
#include <string>

#include "blockdev/mem_block_device.h"
#include "cache/buffer_cache.h"
#include "core/stegfs.h"
#include "crypto/aes.h"
#include "fs/plain_fs.h"
#include "gtest/gtest.h"
#include "util/status.h"

namespace stegfs {
namespace {

TEST(BuildSanityTest, UtilStatus) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  Status bad = Status::NotFound("nothing here");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.ToString().find("nothing here"), std::string::npos);
}

TEST(BuildSanityTest, CryptoAes) {
  const std::string key(16, '\x42');
  crypto::Aes aes(key);
  uint8_t block[16] = {0};
  uint8_t out[16];
  aes.EncryptBlock(block, out);
  uint8_t round_trip[16];
  aes.DecryptBlock(out, round_trip);
  EXPECT_EQ(0, std::memcmp(block, round_trip, sizeof(block)));
}

TEST(BuildSanityTest, BlockdevMemBlockDevice) {
  MemBlockDevice dev(4096, 64);
  EXPECT_EQ(dev.block_size(), 4096u);
  EXPECT_EQ(dev.num_blocks(), 64u);
}

TEST(BuildSanityTest, CacheBufferCache) {
  MemBlockDevice dev(4096, 64);
  BufferCache cache(&dev, 8);
  EXPECT_EQ(cache.block_size(), 4096u);
  EXPECT_EQ(cache.num_blocks(), 64u);
}

TEST(BuildSanityTest, FsPlainFs) {
  MemBlockDevice dev(4096, 256);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  auto fs = PlainFs::Mount(&dev, MountOptions{});
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE((*fs)->Exists("/"));
}

TEST(BuildSanityTest, CoreStegFs) {
  MemBlockDevice dev(4096, 1024);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 1;
  fo.params.dummy_file_avg_bytes = 4 << 10;
  ASSERT_TRUE(StegFs::Format(&dev, fo).ok());
  auto fs = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(fs.ok());
}

}  // namespace
}  // namespace stegfs
