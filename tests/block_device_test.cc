#include "blockdev/block_device.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"
#include "tests/test_device.h"

namespace stegfs {
namespace {

std::vector<uint8_t> Pattern(uint32_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (uint32_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(seed + i);
  return v;
}

TEST(MemBlockDeviceTest, Geometry) {
  MemBlockDevice dev(1024, 100);
  EXPECT_EQ(dev.block_size(), 1024u);
  EXPECT_EQ(dev.num_blocks(), 100u);
  EXPECT_EQ(dev.capacity_bytes(), 102400u);
}

TEST(MemBlockDeviceTest, ReadWriteRoundTrip) {
  MemBlockDevice dev(512, 10);
  auto data = Pattern(512, 7);
  ASSERT_TRUE(dev.WriteBlock(3, data.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(dev.ReadBlock(3, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(MemBlockDeviceTest, FreshDeviceReadsZero) {
  MemBlockDevice dev(512, 4);
  std::vector<uint8_t> out(512, 0xff);
  ASSERT_TRUE(dev.ReadBlock(0, out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST(MemBlockDeviceTest, OutOfRangeRejected) {
  MemBlockDevice dev(512, 4);
  std::vector<uint8_t> buf(512);
  EXPECT_TRUE(dev.ReadBlock(4, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(dev.WriteBlock(100, buf.data()).IsInvalidArgument());
}

TEST(MemBlockDeviceTest, BlocksAreIndependent) {
  MemBlockDevice dev(512, 4);
  auto a = Pattern(512, 1);
  auto b = Pattern(512, 99);
  ASSERT_TRUE(dev.WriteBlock(0, a.data()).ok());
  ASSERT_TRUE(dev.WriteBlock(1, b.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(dev.ReadBlock(0, out.data()).ok());
  EXPECT_EQ(out, a);
}

class FileBlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/stegfs_fbd_test.img";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileBlockDeviceTest, CreateWriteReopenRead) {
  auto data = Pattern(1024, 42);
  {
    auto dev = FileBlockDevice::Create(path_, 1024, 16);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    ASSERT_TRUE((*dev)->WriteBlock(5, data.data()).ok());
    ASSERT_TRUE((*dev)->Flush().ok());
  }
  {
    auto dev = FileBlockDevice::Open(path_, 1024);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ((*dev)->num_blocks(), 16u);
    std::vector<uint8_t> out(1024);
    ASSERT_TRUE((*dev)->ReadBlock(5, out.data()).ok());
    EXPECT_EQ(out, data);
  }
}

TEST_F(FileBlockDeviceTest, OpenMissingFileFails) {
  auto dev = FileBlockDevice::Open(path_ + ".nope", 1024);
  EXPECT_FALSE(dev.ok());
}

TEST_F(FileBlockDeviceTest, RejectsBadBlockSize) {
  auto dev = FileBlockDevice::Create(path_, 1000, 4);  // not a power of two
  EXPECT_FALSE(dev.ok());
}

TEST_F(FileBlockDeviceTest, VectoredReadCoalescesContiguousRuns) {
  auto dev = FileBlockDevice::Create(path_, 512, 64);
  ASSERT_TRUE(dev.ok());
  std::vector<std::vector<uint8_t>> pats;
  for (uint64_t b = 0; b < 16; ++b) {
    pats.push_back(Pattern(512, static_cast<uint8_t>(b * 3 + 1)));
    ASSERT_TRUE((*dev)->WriteBlock(b, pats.back().data()).ok());
  }

  // 4+3 contiguous runs plus two singletons: 2 coalesced runs expected.
  uint64_t order[] = {2, 3, 4, 5, 9, 12, 13, 14, 40};
  std::vector<uint8_t> zero(512, 0);
  ASSERT_TRUE((*dev)->WriteBlock(40, zero.data()).ok());
  std::vector<std::vector<uint8_t>> bufs(9, std::vector<uint8_t>(512));
  std::vector<BlockIoVec> iov;
  for (size_t i = 0; i < 9; ++i) iov.push_back({order[i], bufs[i].data()});
  ASSERT_TRUE((*dev)->ReadBlocks(iov.data(), iov.size()).ok());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(bufs[i], pats[order[i]]) << "block " << order[i];
  }
  DeviceBatchStats s = (*dev)->batch_stats();
  EXPECT_EQ(s.vectored_blocks, 9u);
  EXPECT_EQ(s.coalesced_runs, 2u);
}

TEST_F(FileBlockDeviceTest, VectoredWriteCoalescesAndPersists) {
  auto dev = FileBlockDevice::Create(path_, 512, 64);
  ASSERT_TRUE(dev.ok());
  std::vector<std::vector<uint8_t>> pats;
  std::vector<ConstBlockIoVec> iov;
  uint64_t order[] = {10, 11, 12, 30, 7, 8};
  for (size_t i = 0; i < 6; ++i) {
    pats.push_back(Pattern(512, static_cast<uint8_t>(40 + i)));
  }
  for (size_t i = 0; i < 6; ++i) iov.push_back({order[i], pats[i].data()});
  ASSERT_TRUE((*dev)->WriteBlocks(iov.data(), iov.size()).ok());
  ASSERT_TRUE((*dev)->Flush().ok());
  DeviceBatchStats s = (*dev)->batch_stats();
  EXPECT_EQ(s.vectored_blocks, 6u);
  EXPECT_EQ(s.coalesced_runs, 2u);  // {10,11,12} and {7,8}

  // Reopen and verify per-block.
  auto reopened = FileBlockDevice::Open(path_, 512);
  ASSERT_TRUE(reopened.ok());
  std::vector<uint8_t> out(512);
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE((*reopened)->ReadBlock(order[i], out.data()).ok());
    EXPECT_EQ(out, pats[i]) << "block " << order[i];
  }
}

TEST_F(FileBlockDeviceTest, VectoredIoRejectsOutOfRangeUpFront) {
  auto dev = FileBlockDevice::Create(path_, 512, 8);
  ASSERT_TRUE(dev.ok());
  std::vector<uint8_t> a(512, 1), b(512, 2);
  ConstBlockIoVec iov[2] = {{3, a.data()}, {8, b.data()}};
  EXPECT_TRUE((*dev)->WriteBlocks(iov, 2).IsInvalidArgument());
  // Validation happens before any transfer: block 3 must be untouched.
  std::vector<uint8_t> out(512, 0xff);
  ASSERT_TRUE((*dev)->ReadBlock(3, out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

// A fault in the middle of a vectored request (served by the base-class
// per-block fallback on FaultyDevice) stops at the failing block: earlier
// blocks have transferred, later ones are untouched, and the error
// surfaces to the caller.
TEST(FaultyDeviceBatchTest, FaultMidBatchStopsAtFailingBlock) {
  test::FaultyDevice dev(512, 32);
  auto a = Pattern(512, 1);
  auto b = Pattern(512, 2);
  auto c = Pattern(512, 3);
  dev.FailWrites(2);  // first two writes succeed, third faults
  ConstBlockIoVec wr[3] = {{0, a.data()}, {1, b.data()}, {2, c.data()}};
  EXPECT_TRUE(dev.WriteBlocks(wr, 3).IsIOError());
  dev.Heal();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(dev.ReadBlock(0, out.data()).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(dev.ReadBlock(1, out.data()).ok());
  EXPECT_EQ(out, b);
  ASSERT_TRUE(dev.ReadBlock(2, out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));  // never written

  dev.FailReads(1);
  BlockIoVec rd[3] = {{0, out.data()}, {1, out.data()}, {2, out.data()}};
  EXPECT_TRUE(dev.ReadBlocks(rd, 3).IsIOError());
}

TEST(MemBlockDeviceTest, DefaultVectoredFallbackTransfersAllBlocks) {
  MemBlockDevice dev(512, 16);
  auto a = Pattern(512, 1);
  auto b = Pattern(512, 2);
  ConstBlockIoVec wr[2] = {{5, a.data()}, {1, b.data()}};
  ASSERT_TRUE(dev.WriteBlocks(wr, 2).ok());
  std::vector<uint8_t> oa(512), ob(512);
  BlockIoVec rd[2] = {{1, ob.data()}, {5, oa.data()}};
  ASSERT_TRUE(dev.ReadBlocks(rd, 2).ok());
  EXPECT_EQ(oa, a);
  EXPECT_EQ(ob, b);
  // The fallback reports no batch-path counters.
  EXPECT_EQ(dev.batch_stats().vectored_blocks, 0u);
  EXPECT_EQ(dev.batch_stats().coalesced_runs, 0u);
}

TEST(SimDiskTest, ForwardsDataAndAccumulatesTime) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 1000);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  auto data = Pattern(1024, 3);
  ASSERT_TRUE(disk.WriteBlock(10, data.data()).ok());
  std::vector<uint8_t> out(1024);
  ASSERT_TRUE(disk.ReadBlock(10, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(disk.sim_time_seconds(), 0.0);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
}

TEST(SimDiskTest, TraceRecordsRequests) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 1000);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  IoTrace trace;
  disk.set_trace(&trace);
  std::vector<uint8_t> buf(1024);
  ASSERT_TRUE(disk.WriteBlock(1, buf.data()).ok());
  ASSERT_TRUE(disk.ReadBlock(2, buf.data()).ok());
  disk.set_trace(nullptr);
  ASSERT_TRUE(disk.ReadBlock(3, buf.data()).ok());  // not recorded

  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].lba, 1u);
  EXPECT_TRUE(trace[0].is_write);
  EXPECT_EQ(trace[1].lba, 2u);
  EXPECT_FALSE(trace[1].is_write);
}

TEST(SimDiskTest, FailedIoNotCharged) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 10);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  std::vector<uint8_t> buf(1024);
  EXPECT_FALSE(disk.ReadBlock(999, buf.data()).ok());
  EXPECT_EQ(disk.sim_time_seconds(), 0.0);
}

}  // namespace
}  // namespace stegfs
