#include "blockdev/block_device.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"

namespace stegfs {
namespace {

std::vector<uint8_t> Pattern(uint32_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (uint32_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(seed + i);
  return v;
}

TEST(MemBlockDeviceTest, Geometry) {
  MemBlockDevice dev(1024, 100);
  EXPECT_EQ(dev.block_size(), 1024u);
  EXPECT_EQ(dev.num_blocks(), 100u);
  EXPECT_EQ(dev.capacity_bytes(), 102400u);
}

TEST(MemBlockDeviceTest, ReadWriteRoundTrip) {
  MemBlockDevice dev(512, 10);
  auto data = Pattern(512, 7);
  ASSERT_TRUE(dev.WriteBlock(3, data.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(dev.ReadBlock(3, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(MemBlockDeviceTest, FreshDeviceReadsZero) {
  MemBlockDevice dev(512, 4);
  std::vector<uint8_t> out(512, 0xff);
  ASSERT_TRUE(dev.ReadBlock(0, out.data()).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0));
}

TEST(MemBlockDeviceTest, OutOfRangeRejected) {
  MemBlockDevice dev(512, 4);
  std::vector<uint8_t> buf(512);
  EXPECT_TRUE(dev.ReadBlock(4, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(dev.WriteBlock(100, buf.data()).IsInvalidArgument());
}

TEST(MemBlockDeviceTest, BlocksAreIndependent) {
  MemBlockDevice dev(512, 4);
  auto a = Pattern(512, 1);
  auto b = Pattern(512, 99);
  ASSERT_TRUE(dev.WriteBlock(0, a.data()).ok());
  ASSERT_TRUE(dev.WriteBlock(1, b.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(dev.ReadBlock(0, out.data()).ok());
  EXPECT_EQ(out, a);
}

class FileBlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/stegfs_fbd_test.img";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileBlockDeviceTest, CreateWriteReopenRead) {
  auto data = Pattern(1024, 42);
  {
    auto dev = FileBlockDevice::Create(path_, 1024, 16);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    ASSERT_TRUE((*dev)->WriteBlock(5, data.data()).ok());
    ASSERT_TRUE((*dev)->Flush().ok());
  }
  {
    auto dev = FileBlockDevice::Open(path_, 1024);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ((*dev)->num_blocks(), 16u);
    std::vector<uint8_t> out(1024);
    ASSERT_TRUE((*dev)->ReadBlock(5, out.data()).ok());
    EXPECT_EQ(out, data);
  }
}

TEST_F(FileBlockDeviceTest, OpenMissingFileFails) {
  auto dev = FileBlockDevice::Open(path_ + ".nope", 1024);
  EXPECT_FALSE(dev.ok());
}

TEST_F(FileBlockDeviceTest, RejectsBadBlockSize) {
  auto dev = FileBlockDevice::Create(path_, 1000, 4);  // not a power of two
  EXPECT_FALSE(dev.ok());
}

TEST(SimDiskTest, ForwardsDataAndAccumulatesTime) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 1000);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  auto data = Pattern(1024, 3);
  ASSERT_TRUE(disk.WriteBlock(10, data.data()).ok());
  std::vector<uint8_t> out(1024);
  ASSERT_TRUE(disk.ReadBlock(10, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(disk.sim_time_seconds(), 0.0);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
}

TEST(SimDiskTest, TraceRecordsRequests) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 1000);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  IoTrace trace;
  disk.set_trace(&trace);
  std::vector<uint8_t> buf(1024);
  ASSERT_TRUE(disk.WriteBlock(1, buf.data()).ok());
  ASSERT_TRUE(disk.ReadBlock(2, buf.data()).ok());
  disk.set_trace(nullptr);
  ASSERT_TRUE(disk.ReadBlock(3, buf.data()).ok());  // not recorded

  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].lba, 1u);
  EXPECT_TRUE(trace[0].is_write);
  EXPECT_EQ(trace[1].lba, 2u);
  EXPECT_FALSE(trace[1].is_write);
}

TEST(SimDiskTest, FailedIoNotCharged) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 10);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  std::vector<uint8_t> buf(1024);
  EXPECT_FALSE(disk.ReadBlock(999, buf.data()).ok());
  EXPECT_EQ(disk.sim_time_seconds(), 0.0);
}

}  // namespace
}  // namespace stegfs
