#include "fs/bitmap.h"

#include <gtest/gtest.h>

#include <set>

#include "blockdev/mem_block_device.h"

namespace stegfs {
namespace {

Layout SmallLayout() { return Layout::Compute(1024, 4096, 256); }

TEST(BitmapTest, MetadataRegionPreMarked) {
  Layout l = SmallLayout();
  BlockBitmap bm(l);
  for (uint64_t b = 0; b < l.data_start; ++b) {
    EXPECT_TRUE(bm.IsAllocated(b)) << "metadata block " << b;
  }
  EXPECT_FALSE(bm.IsAllocated(l.data_start));
  EXPECT_EQ(bm.free_count(), l.num_blocks - l.data_start);
}

TEST(BitmapTest, AllocateFreeRoundTrip) {
  BlockBitmap bm(SmallLayout());
  uint64_t b = bm.layout().data_start + 5;
  uint64_t before = bm.free_count();
  ASSERT_TRUE(bm.Allocate(b).ok());
  EXPECT_TRUE(bm.IsAllocated(b));
  EXPECT_EQ(bm.free_count(), before - 1);
  ASSERT_TRUE(bm.Free(b).ok());
  EXPECT_FALSE(bm.IsAllocated(b));
  EXPECT_EQ(bm.free_count(), before);
}

TEST(BitmapTest, DoubleAllocationRejected) {
  BlockBitmap bm(SmallLayout());
  uint64_t b = bm.layout().data_start;
  ASSERT_TRUE(bm.Allocate(b).ok());
  EXPECT_TRUE(bm.Allocate(b).IsFailedPrecondition());
}

TEST(BitmapTest, DoubleFreeRejected) {
  BlockBitmap bm(SmallLayout());
  uint64_t b = bm.layout().data_start;
  ASSERT_TRUE(bm.Allocate(b).ok());
  ASSERT_TRUE(bm.Free(b).ok());
  EXPECT_TRUE(bm.Free(b).IsFailedPrecondition());
}

TEST(BitmapTest, CannotFreeMetadata) {
  BlockBitmap bm(SmallLayout());
  EXPECT_TRUE(bm.Free(0).IsInvalidArgument());
}

TEST(BitmapTest, OutOfRangeRejected) {
  BlockBitmap bm(SmallLayout());
  EXPECT_TRUE(bm.Allocate(999999).IsInvalidArgument());
}

TEST(BitmapTest, StoreLoadRoundTrip) {
  Layout l = SmallLayout();
  MemBlockDevice dev(l.block_size, l.num_blocks);
  BufferCache cache(&dev, 64);

  BlockBitmap bm(l);
  std::set<uint64_t> allocated;
  for (uint64_t b : {l.data_start, l.data_start + 17, l.num_blocks - 1}) {
    ASSERT_TRUE(bm.Allocate(b).ok());
    allocated.insert(b);
  }
  ASSERT_TRUE(bm.Store(&cache).ok());

  auto loaded = BlockBitmap::Load(&cache, l);
  ASSERT_TRUE(loaded.ok());
  for (uint64_t b = l.data_start; b < l.num_blocks; ++b) {
    EXPECT_EQ(loaded->IsAllocated(b), allocated.count(b) > 0) << b;
  }
  EXPECT_EQ(loaded->free_count(), bm.free_count());
}

TEST(BitmapTest, ContiguousPolicyAllocatesRuns) {
  BlockBitmap bm(SmallLayout());
  Xoshiro rng(1);
  uint64_t prev = 0;
  for (int i = 0; i < 20; ++i) {
    auto b = bm.AllocateByPolicy(AllocPolicy::kContiguous, &rng);
    ASSERT_TRUE(b.ok());
    if (i > 0) EXPECT_EQ(b.value(), prev + 1);
    prev = b.value();
  }
}

TEST(BitmapTest, Fragmented8PolicyMakesEightBlockRuns) {
  BlockBitmap bm(SmallLayout());
  Xoshiro rng(7);
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 64; ++i) {
    auto b = bm.AllocateByPolicy(AllocPolicy::kFragmented8, &rng);
    ASSERT_TRUE(b.ok());
    blocks.push_back(b.value());
  }
  // Within each group of 8, blocks are consecutive.
  int seq_breaks = 0;
  for (size_t i = 1; i < blocks.size(); ++i) {
    if (blocks[i] != blocks[i - 1] + 1) ++seq_breaks;
  }
  // 64 blocks in 8-block fragments -> exactly 7 breaks (8 fragments).
  EXPECT_EQ(seq_breaks, 7);
}

TEST(BitmapTest, RandomPolicyScatters) {
  BlockBitmap bm(SmallLayout());
  Xoshiro rng(3);
  std::vector<uint64_t> blocks;
  for (int i = 0; i < 200; ++i) {
    auto b = bm.AllocateByPolicy(AllocPolicy::kRandom, &rng);
    ASSERT_TRUE(b.ok());
    blocks.push_back(b.value());
  }
  int adjacent = 0;
  for (size_t i = 1; i < blocks.size(); ++i) {
    if (blocks[i] == blocks[i - 1] + 1) ++adjacent;
  }
  EXPECT_LT(adjacent, 20);  // random placement is almost never sequential
}

TEST(BitmapTest, RandomPolicyFindsLastBlocks) {
  // Allocation must succeed even at >99% occupancy (falls back to scan).
  Layout l = SmallLayout();
  BlockBitmap bm(l);
  Xoshiro rng(5);
  uint64_t total = bm.free_count();
  for (uint64_t i = 0; i < total; ++i) {
    auto b = bm.AllocateByPolicy(AllocPolicy::kRandom, &rng);
    ASSERT_TRUE(b.ok()) << "allocation " << i << " of " << total;
  }
  EXPECT_EQ(bm.free_count(), 0u);
  EXPECT_TRUE(bm.AllocateByPolicy(AllocPolicy::kRandom, &rng)
                  .status()
                  .IsNoSpace());
}

TEST(BitmapTest, AllocateContiguousRun) {
  BlockBitmap bm(SmallLayout());
  auto run = bm.AllocateContiguous(32);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->size(), 32u);
  for (size_t i = 1; i < run->size(); ++i) {
    EXPECT_EQ((*run)[i], (*run)[i - 1] + 1);
  }
}

TEST(BitmapTest, AllocateContiguousSkipsHoles) {
  Layout l = SmallLayout();
  BlockBitmap bm(l);
  // Poke an allocated block early in the data region.
  ASSERT_TRUE(bm.Allocate(l.data_start + 3).ok());
  auto run = bm.AllocateContiguous(8);
  ASSERT_TRUE(run.ok());
  EXPECT_GT((*run)[0], l.data_start + 3);
}

TEST(BitmapTest, AllocateContiguousFailsWhenFragmented) {
  Layout l = SmallLayout();
  BlockBitmap bm(l);
  // Allocate every second block: no run of 2 exists.
  for (uint64_t b = l.data_start; b < l.num_blocks; b += 2) {
    ASSERT_TRUE(bm.Allocate(b).ok());
  }
  EXPECT_TRUE(bm.AllocateContiguous(2).status().IsNoSpace());
  EXPECT_TRUE(bm.AllocateContiguous(1).ok());
}

}  // namespace
}  // namespace stegfs
