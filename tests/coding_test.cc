#include "util/coding.h"

#include <gtest/gtest.h>

namespace stegfs {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  uint8_t buf[2];
  EncodeFixed16(buf, 0xbeef);
  EXPECT_EQ(DecodeFixed16(buf), 0xbeef);
  EXPECT_EQ(buf[0], 0xef);  // little-endian on disk
  EXPECT_EQ(buf[1], 0xbe);
}

TEST(CodingTest, Fixed32RoundTrip) {
  uint8_t buf[4];
  EncodeFixed32(buf, 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
  EXPECT_EQ(buf[0], 0xef);
}

TEST(CodingTest, Fixed64RoundTrip) {
  uint8_t buf[8];
  EncodeFixed64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0xef);
  EXPECT_EQ(buf[7], 0x01);
}

TEST(CodingTest, PutGetSequence) {
  std::string s;
  PutFixed16(&s, 7);
  PutFixed32(&s, 99);
  PutFixed64(&s, 1ULL << 40);
  PutLengthPrefixed(&s, "hello");

  Decoder dec(s);
  uint16_t a;
  uint32_t b;
  uint64_t c;
  std::string d;
  ASSERT_TRUE(dec.GetFixed16(&a));
  ASSERT_TRUE(dec.GetFixed32(&b));
  ASSERT_TRUE(dec.GetFixed64(&c));
  ASSERT_TRUE(dec.GetLengthPrefixed(&d));
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 99u);
  EXPECT_EQ(c, 1ULL << 40);
  EXPECT_EQ(d, "hello");
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(CodingTest, DecoderRejectsTruncation) {
  std::string s;
  PutFixed32(&s, 123);
  s.resize(3);
  Decoder dec(s);
  uint32_t v = 0;
  EXPECT_FALSE(dec.GetFixed32(&v));
}

TEST(CodingTest, DecoderRejectsTruncatedLengthPrefix) {
  std::string s;
  PutLengthPrefixed(&s, "abcdef");
  s.resize(s.size() - 2);
  Decoder dec(s);
  std::string out;
  EXPECT_FALSE(dec.GetLengthPrefixed(&out));
}

TEST(CodingTest, DecoderSkip) {
  std::string s = "abcdefgh";
  Decoder dec(s);
  ASSERT_TRUE(dec.Skip(4));
  EXPECT_EQ(dec.remaining(), 4u);
  EXPECT_FALSE(dec.Skip(5));
}

TEST(CodingTest, EmptyLengthPrefixed) {
  std::string s;
  PutLengthPrefixed(&s, "");
  Decoder dec(s);
  std::string out = "sentinel";
  ASSERT_TRUE(dec.GetLengthPrefixed(&out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace stegfs
