// Group commit (ISSUE 9): concurrent sessions' journal transactions are
// batched into ONE merged record under ONE barrier sequence, and that
// must be invisible to every correctness property PR 5 established:
//
//   - equivalence: a single-threaded op sequence produces a bit-identical
//     device image whether the linger window is 0 (lead immediately, the
//     PR 5 event shape) or wide open,
//   - batch atomicity: under concurrent committers, any crash state —
//     including a torn batch record, i.e. the leader dying mid-write —
//     recovers every file to a committed version or to absence, never to
//     garbage, and leaves the ring at rest,
//   - the batching is real: concurrent committers measurably share
//     records (group_batches < group_txns),
//
// plus the registered-buffer read path: on io_uring, cache-miss reads
// staged through the pinned read pool (READ_FIXED) must return bytes
// bit-identical to the unregistered path, with fixed_buffer_read_ops
// proving the fixed path actually ran.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "fs/plain_fs.h"
#include "journal/recovery.h"
#include "tests/crash_harness.h"

namespace stegfs {
namespace {

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 8192;
constexpr uint32_t kRing = 32;
constexpr int kThreads = 4;
constexpr int kRounds = 12;

MountOptions DurableOpts(uint32_t window_us) {
  MountOptions mo;
  mo.durability = Durability::kJournal;
  mo.group_commit_window_us = window_us;
  mo.cache_blocks = 256;
  return mo;
}

FormatOptions RingFormat() {
  FormatOptions fo;
  fo.journal_blocks = kRing;
  return fo;
}

std::string Content(int tag, size_t bytes) {
  std::string s;
  s.reserve(bytes);
  while (s.size() < bytes) {
    s += "v" + std::to_string(tag) + ":";
    s.push_back(static_cast<char>('a' + (s.size() % 23)));
  }
  s.resize(bytes);
  return s;
}

std::string ThreadPath(int t) { return "/t" + std::to_string(t); }
std::string ThreadVersion(int t, int r) {
  // Sizes vary per round so versions cross block-count boundaries.
  return Content(t * 100 + r, 400 + 137 * r + 41 * t);
}

std::vector<uint8_t> Image(BlockDevice* dev) {
  std::vector<uint8_t> img(dev->num_blocks() * static_cast<size_t>(kBs));
  for (uint64_t b = 0; b < dev->num_blocks(); ++b) {
    EXPECT_TRUE(dev->ReadBlock(b, img.data() + b * kBs).ok());
  }
  return img;
}

// A wide linger window must not change WHAT a single-threaded mount
// writes — only when. Same format, same op sequence, window 0 vs 4ms:
// the final images must be bit-identical (batches of one, same records,
// same scrub stream).
TEST(GroupCommitTest, SoloWindowImageIdentical) {
  std::vector<std::vector<uint8_t>> images;
  for (uint32_t window_us : {0u, 4000u}) {
    MemBlockDevice dev(kBs, kBlocks);
    ASSERT_TRUE(PlainFs::Format(&dev, RingFormat()).ok());
    {
      auto fs = PlainFs::Mount(&dev, DurableOpts(window_us));
      ASSERT_TRUE(fs.ok()) << fs.status().ToString();
      ASSERT_TRUE((*fs)->MkDir("/d").ok());
      for (int r = 0; r < 6; ++r) {
        ASSERT_TRUE(
            (*fs)->WriteFile("/d/f" + std::to_string(r % 3), ThreadVersion(0, r))
                .ok());
      }
      ASSERT_TRUE((*fs)->Unlink("/d/f2").ok());
      ASSERT_TRUE((*fs)->Flush().ok());
    }
    images.push_back(Image(&dev));
  }
  EXPECT_EQ(images[0], images[1]);
}

// Concurrent committers: all writes land, batching measurably occurs,
// and every crash state (prefix x dropped-subset x torn) recovers each
// file to a committed version or absence — never torn content — with
// the ring at rest. A torn final write on a multi-txn record IS the
// leader crashing mid-batch: either the whole batch replays (checksum
// intact) or none of it does.
TEST(GroupCommitTest, ConcurrentCommitsBatchAndRecoverAtomically) {
  test::RecordingDevice dev(kBs, kBlocks);
  ASSERT_TRUE(PlainFs::Format(&dev, RingFormat()).ok());
  dev.StartRecording();
  {
    auto fs_or = PlainFs::Mount(&dev, DurableOpts(2000));
    ASSERT_TRUE(fs_or.ok()) << fs_or.status().ToString();
    PlainFs* fs = fs_or->get();

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([fs, t] {
        for (int r = 0; r < kRounds; ++r) {
          Status s = fs->WriteFile(ThreadPath(t), ThreadVersion(t, r));
          EXPECT_TRUE(s.ok()) << s.ToString();
        }
      });
    }
    for (std::thread& w : workers) w.join();

    journal::JournalStats st = fs->journal()->stats();
    EXPECT_GE(st.group_txns, static_cast<uint64_t>(kThreads * kRounds));
    // With 4 threads hammering a 2ms linger window, at least one batch
    // must have carried more than one transaction.
    EXPECT_LT(st.group_batches, st.group_txns);

    for (int t = 0; t < kThreads; ++t) {
      auto content = fs->ReadFile(ThreadPath(t));
      ASSERT_TRUE(content.ok());
      EXPECT_EQ(*content, ThreadVersion(t, kRounds - 1));
    }
    ASSERT_TRUE(fs->Flush().ok());
  }

  const size_t total = dev.event_count();
  ASSERT_GT(total, 50u);
  const size_t stride = std::max<size_t>(1, total / 32);
  size_t point = 0;
  for (size_t k = 1; k <= total; k += stride, ++point) {
    const uint64_t subset_seed = (point % 2 == 1) ? 0x6e00 + point : 0;
    const bool torn = point % 3 != 0;  // lean into torn records
    auto image = dev.Materialize(k, subset_seed, torn);
    auto mem = test::DeviceFromImage(image, kBs);
    auto fs = PlainFs::Mount(mem.get(), DurableOpts(0));
    ASSERT_TRUE(fs.ok()) << "k=" << k << ": " << fs.status().ToString();
    for (int t = 0; t < kThreads; ++t) {
      auto content = (*fs)->ReadFile(ThreadPath(t));
      if (!content.ok()) continue;  // absent: the create never committed
      bool committed_version = false;
      for (int r = 0; r < kRounds && !committed_version; ++r) {
        committed_version = *content == ThreadVersion(t, r);
      }
      EXPECT_TRUE(committed_version)
          << ThreadPath(t) << " holds a non-committed state at crash k=" << k
          << " seed=" << subset_seed << " torn=" << torn;
    }
    // Recovery must leave the ring scrubbed: nothing parseable remains.
    journal::FsckReport report;
    ASSERT_TRUE((*fs)->Fsck(&report).ok());
    EXPECT_EQ(report.journal_live_records, 0u) << "k=" << k;
  }
}

// Registered-buffer reads (io_uring only): a cold-cache hidden-extent
// read — the async read path — goes through the pinned read pool
// (READ_FIXED) and must return exactly the bytes the unregistered
// thread-pool path returns. Hidden objects are the right probe: their
// random placement is what the async engine exists for, and their reads
// route through EncryptedBlockStore's pipelined ReadBatchAsync.
TEST(FixedReadTest, ReadPoolBitIdenticalToUnregisteredPath) {
  char path[] = "/tmp/stegfs_fixed_read_XXXXXX";
  int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);

  const char* kUid = "alice";
  const char* kUak = "uak-secret";
  const std::string expected = Content(7, 220 * kBs);

  StegFormatOptions fmt;
  fmt.params.dummy_file_count = 2;
  fmt.params.dummy_file_avg_bytes = 2048;
  fmt.entropy = "fixed-read-entropy";

  auto read_back = [&](IoEngine engine, std::string* out,
                       uint64_t* fixed_reads, size_t* span_blocks) {
    auto file = FileBlockDevice::Open(path, kBs);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    StegFsOptions opts;
    opts.mount.io_engine = engine;
    opts.mount.cache_blocks = 64;  // cold mount + small cache: reads miss
    auto fs = StegFs::Mount(file->get(), opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    ASSERT_TRUE((*fs)->StegConnect(kUid, "big", kUak).ok());
    auto content = (*fs)->HiddenReadAll(kUid, "big");
    ASSERT_TRUE(content.ok()) << content.status().ToString();
    *out = *content;
    AsyncIoStats st = (*fs)->plain()->io_engine()->stats();
    *fixed_reads = st.fixed_buffer_read_ops;
    *span_blocks = (*fs)->plain()->io_engine()->read_span_blocks();
    ASSERT_TRUE((*fs)->DisconnectAll(kUid).ok());
  };

  {
    auto file = FileBlockDevice::Create(path, kBs, kBlocks);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    ASSERT_TRUE(StegFs::Format(file->get(), fmt).ok());
    StegFsOptions opts;
    opts.mount.io_engine = IoEngine::kUring;
    auto fs = StegFs::Mount(file->get(), opts);
    if (!fs.ok()) {
      ASSERT_TRUE(fs.status().IsNotSupported()) << fs.status().ToString();
      std::remove(path);
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
    ASSERT_TRUE((*fs)->StegCreate(kUid, "big", kUak, HiddenType::kFile).ok());
    ASSERT_TRUE((*fs)->StegConnect(kUid, "big", kUak).ok());
    ASSERT_TRUE((*fs)->HiddenWriteAll(kUid, "big", expected).ok());
    ASSERT_TRUE((*fs)->DisconnectAll(kUid).ok());
    ASSERT_TRUE((*fs)->Flush().ok());
  }

  std::string via_uring;
  uint64_t fixed_reads = 0;
  size_t span_blocks = 0;
  read_back(IoEngine::kUring, &via_uring, &fixed_reads, &span_blocks);
  EXPECT_EQ(via_uring, expected);
  // The fixed path must actually have run whenever the engine holds a
  // read pool (registration can be refused under a tight
  // RLIMIT_MEMLOCK, in which case the fallback path was just verified).
  if (span_blocks > 0) {
    EXPECT_GT(fixed_reads, 0u);
  }

  std::string via_threads;
  uint64_t threads_fixed_reads = 0;
  size_t threads_span_blocks = 0;
  read_back(IoEngine::kThreads, &via_threads, &threads_fixed_reads,
            &threads_span_blocks);
  EXPECT_EQ(threads_fixed_reads, 0u);
  EXPECT_EQ(threads_span_blocks, 0u);
  EXPECT_EQ(via_uring, via_threads);
  std::remove(path);
}

}  // namespace
}  // namespace stegfs
