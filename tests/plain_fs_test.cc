#include "fs/plain_fs.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class PlainFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 16384);  // 16 MB
    ASSERT_TRUE(PlainFs::Format(dev_.get(), FormatOptions{}).ok());
    auto fs = PlainFs::Mount(dev_.get(), MountOptions{});
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<PlainFs> fs_;
};

TEST_F(PlainFsTest, WriteReadSmallFile) {
  ASSERT_TRUE(fs_->WriteFile("/hello.txt", "hello world").ok());
  auto data = fs_->ReadFile("/hello.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello world");
}

TEST_F(PlainFsTest, WriteReadLargeFile) {
  std::string big = RandomData(3 << 20, 99);  // 3 MB spans double-indirect
  ASSERT_TRUE(fs_->WriteFile("/big.bin", big).ok());
  auto data = fs_->ReadFile("/big.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), big);
}

TEST_F(PlainFsTest, EmptyFile) {
  ASSERT_TRUE(fs_->CreateFile("/empty").ok());
  auto data = fs_->ReadFile("/empty");
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data.value().empty());
}

TEST_F(PlainFsTest, OverwriteReplacesContent) {
  ASSERT_TRUE(fs_->WriteFile("/f", std::string(5000, 'a')).ok());
  ASSERT_TRUE(fs_->WriteFile("/f", "short").ok());
  auto data = fs_->ReadFile("/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "short");
}

TEST_F(PlainFsTest, CreateDuplicateRejected) {
  ASSERT_TRUE(fs_->CreateFile("/dup").ok());
  EXPECT_TRUE(fs_->CreateFile("/dup").IsAlreadyExists());
}

TEST_F(PlainFsTest, ReadMissingFileFails) {
  EXPECT_TRUE(fs_->ReadFile("/nope").status().IsNotFound());
}

TEST_F(PlainFsTest, UnlinkFreesSpace) {
  uint64_t before = fs_->bitmap()->free_count();
  ASSERT_TRUE(fs_->WriteFile("/f", RandomData(1 << 20, 5)).ok());
  EXPECT_LT(fs_->bitmap()->free_count(), before);
  ASSERT_TRUE(fs_->Unlink("/f").ok());
  // The root directory may have grown a block for the entry; allow <= 1
  // block difference.
  EXPECT_GE(fs_->bitmap()->free_count() + 1, before);
  EXPECT_FALSE(fs_->Exists("/f"));
}

TEST_F(PlainFsTest, DirectoriesNestAndList) {
  ASSERT_TRUE(fs_->MkDir("/a").ok());
  ASSERT_TRUE(fs_->MkDir("/a/b").ok());
  ASSERT_TRUE(fs_->WriteFile("/a/b/c.txt", "deep").ok());
  ASSERT_TRUE(fs_->WriteFile("/a/top.txt", "top").ok());

  auto root = fs_->List("/");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ(root->size(), 1u);
  EXPECT_EQ((*root)[0].name, "a");

  auto a = fs_->List("/a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->size(), 2u);

  auto c = fs_->ReadFile("/a/b/c.txt");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), "deep");
}

TEST_F(PlainFsTest, RmDirOnlyWhenEmpty) {
  ASSERT_TRUE(fs_->MkDir("/d").ok());
  ASSERT_TRUE(fs_->WriteFile("/d/f", "x").ok());
  EXPECT_TRUE(fs_->RmDir("/d").IsFailedPrecondition());
  ASSERT_TRUE(fs_->Unlink("/d/f").ok());
  EXPECT_TRUE(fs_->RmDir("/d").ok());
  EXPECT_FALSE(fs_->Exists("/d"));
}

TEST_F(PlainFsTest, StatReportsMetadata) {
  ASSERT_TRUE(fs_->WriteFile("/s", std::string(2048, 'q')).ok());
  auto info = fs_->Stat("/s");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->type, InodeType::kFile);
  EXPECT_EQ(info->size, 2048u);
  auto dir_info = fs_->Stat("/");
  ASSERT_TRUE(dir_info.ok());
  EXPECT_EQ(dir_info->type, InodeType::kDirectory);
}

TEST_F(PlainFsTest, ReadWriteAtOffsets) {
  ASSERT_TRUE(fs_->WriteFile("/f", std::string(4096, 'a')).ok());
  ASSERT_TRUE(fs_->WriteAt("/f", 1000, "XYZ").ok());
  std::string out;
  ASSERT_TRUE(fs_->ReadAt("/f", 999, 5, &out).ok());
  EXPECT_EQ(out, "aXYZa");
}

TEST_F(PlainFsTest, WriteAtExtendsFile) {
  ASSERT_TRUE(fs_->CreateFile("/f").ok());
  ASSERT_TRUE(fs_->WriteAt("/f", 5000, "tail").ok());
  auto info = fs_->Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 5004u);
  // The hole reads as zeros.
  std::string out;
  ASSERT_TRUE(fs_->ReadAt("/f", 4998, 6, &out).ok());
  EXPECT_EQ(out, std::string(2, '\0') + "tail");
}

TEST_F(PlainFsTest, TruncateShrinks) {
  ASSERT_TRUE(fs_->WriteFile("/f", RandomData(100000, 3)).ok());
  ASSERT_TRUE(fs_->TruncateFile("/f", 10).ok());
  auto data = fs_->ReadFile("/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 10u);
}

TEST_F(PlainFsTest, PersistsAcrossRemount) {
  std::string content = RandomData(300000, 8);
  ASSERT_TRUE(fs_->MkDir("/docs").ok());
  ASSERT_TRUE(fs_->WriteFile("/docs/report.bin", content).ok());
  ASSERT_TRUE(fs_->Flush().ok());
  fs_.reset();

  auto fs = PlainFs::Mount(dev_.get(), MountOptions{});
  ASSERT_TRUE(fs.ok());
  auto data = (*fs)->ReadFile("/docs/report.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), content);
}

TEST_F(PlainFsTest, ManyFilesNoCrosstalk) {
  std::vector<std::string> contents;
  for (int i = 0; i < 50; ++i) {
    std::string path = "/file" + std::to_string(i);
    contents.push_back(RandomData(1000 + i * 137, 1000 + i));
    ASSERT_TRUE(fs_->WriteFile(path, contents.back()).ok());
  }
  for (int i = 0; i < 50; ++i) {
    auto data = fs_->ReadFile("/file" + std::to_string(i));
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), contents[i]) << i;
  }
}

TEST_F(PlainFsTest, RejectsRelativePaths) {
  EXPECT_TRUE(fs_->CreateFile("relative").IsInvalidArgument());
  EXPECT_TRUE(fs_->CreateFile("/a/../b").IsInvalidArgument());
}

TEST_F(PlainFsTest, NoSpaceSurfaceCleanly) {
  // 16 MB volume: the third 8 MB write must fail with NoSpace.
  Status s;
  for (int i = 0; i < 3 && s.ok(); ++i) {
    s = fs_->WriteFile("/big" + std::to_string(i), RandomData(8 << 20, i));
  }
  EXPECT_TRUE(s.IsNoSpace()) << s.ToString();
}

TEST_F(PlainFsTest, CollectReferencedBlocksCoversEverything) {
  ASSERT_TRUE(fs_->WriteFile("/f1", RandomData(50000, 1)).ok());
  ASSERT_TRUE(fs_->MkDir("/d").ok());
  ASSERT_TRUE(fs_->WriteFile("/d/f2", RandomData(200000, 2)).ok());

  std::vector<uint8_t> referenced;
  ASSERT_TRUE(fs_->CollectReferencedBlocks(&referenced).ok());

  // Every allocated block must be referenced (plain FS has no hidden data).
  for (uint64_t b = 0; b < fs_->layout().num_blocks; ++b) {
    if (fs_->bitmap()->IsAllocated(b)) {
      EXPECT_TRUE(referenced[b]) << "allocated but unreferenced block " << b;
    } else {
      EXPECT_FALSE(referenced[b]) << "free but referenced block " << b;
    }
  }
}

TEST_F(PlainFsTest, ContiguousPolicyLaysFilesSequentially) {
  ASSERT_TRUE(fs_->WriteFile("/seq", RandomData(1 << 20, 4)).ok());
  std::vector<uint8_t> referenced;
  ASSERT_TRUE(fs_->CollectReferencedBlocks(&referenced).ok());
  // Find the file's block span: with contiguous allocation on a fresh
  // volume the data blocks of a 1 MB file form (nearly) one run. Count
  // alloc runs in the data region.
  int runs = 0;
  bool in_run = false;
  for (uint64_t b = fs_->layout().data_start; b < fs_->layout().num_blocks;
       ++b) {
    bool alloc = fs_->bitmap()->IsAllocated(b);
    if (alloc && !in_run) ++runs;
    in_run = alloc;
  }
  EXPECT_LE(runs, 2);  // root-dir block + the file's run (possibly merged)
}

TEST_F(PlainFsTest, TotalPlainBytes) {
  EXPECT_EQ(fs_->TotalPlainBytes(), 0u);
  ASSERT_TRUE(fs_->WriteFile("/a", std::string(1000, 'x')).ok());
  ASSERT_TRUE(fs_->WriteFile("/b", std::string(234, 'y')).ok());
  EXPECT_EQ(fs_->TotalPlainBytes(), 1234u);
}

TEST(PlainFsFormatTest, MountRejectsUnformattedDevice) {
  MemBlockDevice dev(1024, 4096);
  EXPECT_FALSE(PlainFs::Mount(&dev, MountOptions{}).ok());
}

TEST(PlainFsFormatTest, MountRejectsGeometryMismatch) {
  MemBlockDevice dev(1024, 4096);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  MemBlockDevice dev2(1024, 8192);
  // Copy the formatted superblock into a larger device.
  std::vector<uint8_t> buf(1024);
  ASSERT_TRUE(dev.ReadBlock(0, buf.data()).ok());
  ASSERT_TRUE(dev2.WriteBlock(0, buf.data()).ok());
  EXPECT_TRUE(PlainFs::Mount(&dev2, MountOptions{}).status().IsCorruption());
}

TEST(PlainFsFormatTest, TinyVolumeRejected) {
  MemBlockDevice dev(512, 8);
  EXPECT_FALSE(PlainFs::Format(&dev, FormatOptions{}).ok());
}

TEST(PlainFsPolicyTest, FragmentedPolicyScattersFile) {
  MemBlockDevice dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  MountOptions opts;
  opts.policy = AllocPolicy::kFragmented8;
  auto fs = PlainFs::Mount(&dev, opts);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->WriteFile("/frag", RandomData(1 << 20, 6)).ok());
  // Count allocation runs: a 1 MB file (1024 blocks) in 8-block fragments
  // has ~128 separate runs.
  int runs = 0;
  bool in_run = false;
  for (uint64_t b = (*fs)->layout().data_start;
       b < (*fs)->layout().num_blocks; ++b) {
    bool alloc = (*fs)->bitmap()->IsAllocated(b);
    if (alloc && !in_run) ++runs;
    in_run = alloc;
  }
  EXPECT_GT(runs, 50);
}

}  // namespace
}  // namespace stegfs
