#include "cache/buffer_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"
#include "tests/test_device.h"

namespace stegfs {
namespace {

std::vector<uint8_t> Pattern(uint32_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (uint32_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(seed + i * 5);
  return v;
}

TEST(BufferCacheTest, ReadThroughAndHit) {
  MemBlockDevice dev(512, 16);
  auto data = Pattern(512, 1);
  ASSERT_TRUE(dev.WriteBlock(2, data.data()).ok());

  BufferCache cache(&dev, 4);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(2, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.stats().misses, 1u);
  ASSERT_TRUE(cache.Read(2, out.data()).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BufferCacheTest, WriteBackDefersDeviceWrite) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteBack);
  auto data = Pattern(512, 9);
  ASSERT_TRUE(cache.Write(3, data.data()).ok());

  // Device still has zeros until flush.
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, std::vector<uint8_t>(512, 0));

  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, data);
}

TEST(BufferCacheTest, WriteThroughHitsDeviceImmediately) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteThrough);
  auto data = Pattern(512, 9);
  ASSERT_TRUE(cache.Write(3, data.data()).ok());
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, data);
}

TEST(BufferCacheTest, EvictionWritesBackDirtyLru) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 2, WritePolicy::kWriteBack);
  auto a = Pattern(512, 1);
  auto b = Pattern(512, 2);
  auto c = Pattern(512, 3);
  ASSERT_TRUE(cache.Write(0, a.data()).ok());
  ASSERT_TRUE(cache.Write(1, b.data()).ok());
  ASSERT_TRUE(cache.Write(2, c.data()).ok());  // evicts block 0

  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(0, raw.data()).ok());
  EXPECT_EQ(raw, a);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(BufferCacheTest, LruOrderRespectsRecency) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 2);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());
  ASSERT_TRUE(cache.Read(1, buf.data()).ok());
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());  // touch 0 -> 1 becomes LRU
  ASSERT_TRUE(cache.Read(2, buf.data()).ok());  // evicts 1
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(BufferCacheTest, ReadAfterWriteSeesCachedData) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4);
  auto data = Pattern(512, 77);
  ASSERT_TRUE(cache.Write(5, data.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(5, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(BufferCacheTest, DropAllDiscardsDirtyData) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteBack);
  auto data = Pattern(512, 5);
  ASSERT_TRUE(cache.Write(1, data.data()).ok());
  cache.DropAll();
  ASSERT_TRUE(cache.Flush().ok());
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(1, raw.data()).ok());
  EXPECT_EQ(raw, std::vector<uint8_t>(512, 0));  // write was dropped
}

TEST(BufferCacheTest, CacheReducesDeviceReads) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 64);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  BufferCache cache(&disk, 16);
  std::vector<uint8_t> buf(1024);
  for (int pass = 0; pass < 10; ++pass) {
    for (uint64_t b = 0; b < 8; ++b) {
      ASSERT_TRUE(cache.Read(b, buf.data()).ok());
    }
  }
  EXPECT_EQ(disk.stats().reads, 8u);  // only the first pass misses
  EXPECT_EQ(cache.stats().hits, 72u);
}

TEST(BufferCacheTest, ReadBatchServesPartialHitsInsideExtent) {
  MemBlockDevice dev(512, 32);
  std::vector<std::vector<uint8_t>> patterns;
  for (uint64_t b = 0; b < 8; ++b) {
    patterns.push_back(Pattern(512, static_cast<uint8_t>(b + 1)));
    ASSERT_TRUE(dev.WriteBlock(b, patterns.back().data()).ok());
  }
  BufferCache cache(&dev, 16);

  // Warm blocks 2 and 5; then batch-read the extent 0..7 — 2 hits, 6
  // misses, every byte correct.
  std::vector<uint8_t> one(512);
  ASSERT_TRUE(cache.Read(2, one.data()).ok());
  ASSERT_TRUE(cache.Read(5, one.data()).ok());
  uint64_t hits0 = cache.stats().hits, misses0 = cache.stats().misses;

  uint64_t blocks[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<uint8_t> out(8 * 512);
  ASSERT_TRUE(cache.ReadBatch(blocks, 8, out.data()).ok());
  for (uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(std::vector<uint8_t>(out.begin() + b * 512,
                                   out.begin() + (b + 1) * 512),
              patterns[b])
        << "block " << b;
  }
  EXPECT_EQ(cache.stats().hits, hits0 + 2);
  EXPECT_EQ(cache.stats().misses, misses0 + 6);
  EXPECT_EQ(cache.stats().batched_reads, 8u);

  // Everything is cached now: a second batch is all hits.
  ASSERT_TRUE(cache.ReadBatch(blocks, 8, out.data()).ok());
  EXPECT_EQ(cache.stats().hits, hits0 + 10);
  EXPECT_EQ(cache.stats().misses, misses0 + 6);
}

TEST(BufferCacheTest, WriteBatchRoundTripsThroughPolicies) {
  for (WritePolicy policy :
       {WritePolicy::kWriteBack, WritePolicy::kWriteThrough}) {
    MemBlockDevice dev(512, 32);
    BufferCache cache(&dev, 16, policy);
    uint64_t blocks[3] = {9, 4, 17};
    std::vector<uint8_t> data(3 * 512);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 11);
    }
    ASSERT_TRUE(cache.WriteBatch(blocks, 3, data.data()).ok());
    EXPECT_EQ(cache.stats().batched_writes, 3u);
    if (policy == WritePolicy::kWriteThrough) {
      std::vector<uint8_t> raw(512);
      ASSERT_TRUE(dev.ReadBlock(4, raw.data()).ok());
      EXPECT_EQ(std::memcmp(raw.data(), data.data() + 512, 512), 0);
    }
    ASSERT_TRUE(cache.Flush().ok());
    std::vector<uint8_t> out(3 * 512);
    ASSERT_TRUE(cache.ReadBatch(blocks, 3, out.data()).ok());
    EXPECT_EQ(out, data);
  }
}

// The batch path must evict in exactly the order the per-block loop would:
// drive two identically-seeded caches through the same access sequence,
// one per-block and one batched, and compare counters plus the full
// surviving-entry set (probed via a SimDisk read count: cached blocks
// don't touch the device).
TEST(BufferCacheTest, BatchPreservesSeededEvictionOrder) {
  auto mk = [] {
    auto inner = std::make_unique<MemBlockDevice>(512, 64);
    return std::make_unique<SimDisk>(std::move(inner), DiskModelConfig{});
  };
  auto disk_a = mk();
  auto disk_b = mk();
  BufferCache loop_cache(disk_a.get(), 4, WritePolicy::kWriteBack, 1);
  BufferCache batch_cache(disk_b.get(), 4, WritePolicy::kWriteBack, 1);

  // Interleaved hits and misses, with revisits that only survive if LRU
  // order matches.
  const uint64_t seq[] = {1, 2, 3, 1, 4, 5, 2, 1, 6, 3, 1, 7};
  const size_t n = sizeof(seq) / sizeof(seq[0]);
  std::vector<uint8_t> buf(512);
  for (uint64_t b : seq) {
    ASSERT_TRUE(loop_cache.Read(b, buf.data()).ok());
  }
  std::vector<uint8_t> out(n * 512);
  ASSERT_TRUE(batch_cache.ReadBatch(seq, n, out.data()).ok());

  CacheStats ls = loop_cache.stats(), bs = batch_cache.stats();
  EXPECT_EQ(ls.hits, bs.hits);
  EXPECT_EQ(ls.misses, bs.misses);
  EXPECT_EQ(ls.evictions, bs.evictions);
  // The batch fetches each distinct block at most once up front, so when a
  // sequence revisits a block after it was evicted mid-sequence the batch
  // issues FEWER device reads than the loop — never more.
  EXPECT_LE(disk_b->stats().reads, disk_a->stats().reads);

  // Same survivors: re-read every block once in both caches; hit patterns
  // (device read deltas) must match block for block.
  for (uint64_t b = 1; b <= 7; ++b) {
    uint64_t ra = disk_a->stats().reads;
    uint64_t rb = disk_b->stats().reads;
    ASSERT_TRUE(loop_cache.Read(b, buf.data()).ok());
    ASSERT_TRUE(batch_cache.Read(b, buf.data()).ok());
    EXPECT_EQ(disk_a->stats().reads - ra, disk_b->stats().reads - rb)
        << "block " << b << " cached in one cache but not the other";
  }
}

TEST(BufferCacheTest, PrefetchPopulatesAndCountsHits) {
  MemBlockDevice dev(512, 64);
  std::vector<uint8_t> data = Pattern(512, 3);
  for (uint64_t b = 8; b < 12; ++b) {
    ASSERT_TRUE(dev.WriteBlock(b, data.data()).ok());
  }
  BufferCache cache(&dev, 16);
  concurrency::ThreadPool pool(1);
  cache.SetPrefetchPool(&pool);

  uint64_t blocks[4] = {8, 9, 10, 11};
  cache.Prefetch(blocks, 4);
  pool.WaitIdle();
  EXPECT_EQ(cache.stats().prefetched, 4u);
  EXPECT_EQ(cache.stats().prefetch_hits, 0u);
  EXPECT_EQ(cache.size(), 4u);

  // Demand reads claim the prefetched entries: hits, and prefetch_hits.
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(9, out.data()).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(cache.Read(10, out.data()).ok());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().prefetch_hits, 2u);
  // A re-read of a claimed entry is a plain hit, not a prefetch hit.
  ASSERT_TRUE(cache.Read(9, out.data()).ok());
  EXPECT_EQ(cache.stats().prefetch_hits, 2u);

  // Prefetching cached or out-of-range blocks is a harmless no-op.
  uint64_t mixed[3] = {9, 1000000, 11};
  cache.Prefetch(mixed, 3);
  pool.WaitIdle();
  EXPECT_EQ(cache.stats().prefetched, 4u);
  cache.SetPrefetchPool(nullptr);
}

// A device fault inside a batch's miss fetch surfaces the error and
// leaves the cache consistent: no entry is inserted from the failed
// fetch, so a healed retry re-reads everything from the device.
TEST(BufferCacheTest, ReadBatchSurfacesFaultWithoutCachingGarbage) {
  test::FaultyDevice dev(512, 32);
  std::vector<uint8_t> data = Pattern(512, 7);
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(dev.inner()->WriteBlock(b, data.data()).ok());
  }
  BufferCache cache(&dev, 8);
  dev.FailReads(2);
  uint64_t blocks[4] = {0, 1, 2, 3};
  std::vector<uint8_t> out(4 * 512);
  EXPECT_TRUE(cache.ReadBatch(blocks, 4, out.data()).IsIOError());
  EXPECT_EQ(cache.size(), 0u);  // nothing inserted from the failed fetch

  dev.Heal();
  ASSERT_TRUE(cache.ReadBatch(blocks, 4, out.data()).ok());
  for (uint64_t b = 0; b < 4; ++b) {
    EXPECT_EQ(std::memcmp(out.data() + b * 512, data.data(), 512), 0);
  }
  EXPECT_EQ(cache.size(), 4u);
}

TEST(BufferCacheTest, FlushIsIdempotent) {
  MemBlockDevice dev(512, 8);
  BufferCache cache(&dev, 4);
  auto data = Pattern(512, 8);
  ASSERT_TRUE(cache.Write(0, data.data()).ok());
  ASSERT_TRUE(cache.Flush().ok());
  uint64_t wb = cache.stats().writebacks;
  ASSERT_TRUE(cache.Flush().ok());
  EXPECT_EQ(cache.stats().writebacks, wb);  // nothing dirty the second time
}

}  // namespace
}  // namespace stegfs
