#include "cache/buffer_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"
#include "blockdev/thread_pool_async_device.h"
#include "tests/test_device.h"

namespace stegfs {
namespace {

std::vector<uint8_t> Pattern(uint32_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (uint32_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(seed + i * 5);
  return v;
}

TEST(BufferCacheTest, ReadThroughAndHit) {
  MemBlockDevice dev(512, 16);
  auto data = Pattern(512, 1);
  ASSERT_TRUE(dev.WriteBlock(2, data.data()).ok());

  BufferCache cache(&dev, 4);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(2, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.stats().misses, 1u);
  ASSERT_TRUE(cache.Read(2, out.data()).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BufferCacheTest, WriteBackDefersDeviceWrite) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteBack);
  auto data = Pattern(512, 9);
  ASSERT_TRUE(cache.Write(3, data.data()).ok());

  // Device still has zeros until flush.
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, std::vector<uint8_t>(512, 0));

  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, data);
}

TEST(BufferCacheTest, WriteThroughHitsDeviceImmediately) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteThrough);
  auto data = Pattern(512, 9);
  ASSERT_TRUE(cache.Write(3, data.data()).ok());
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, data);
}

TEST(BufferCacheTest, EvictionWritesBackDirtyLru) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 2, WritePolicy::kWriteBack);
  auto a = Pattern(512, 1);
  auto b = Pattern(512, 2);
  auto c = Pattern(512, 3);
  ASSERT_TRUE(cache.Write(0, a.data()).ok());
  ASSERT_TRUE(cache.Write(1, b.data()).ok());
  ASSERT_TRUE(cache.Write(2, c.data()).ok());  // evicts block 0

  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(0, raw.data()).ok());
  EXPECT_EQ(raw, a);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(BufferCacheTest, LruOrderRespectsRecency) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 2);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());
  ASSERT_TRUE(cache.Read(1, buf.data()).ok());
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());  // touch 0 -> 1 becomes LRU
  ASSERT_TRUE(cache.Read(2, buf.data()).ok());  // evicts 1
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(BufferCacheTest, ReadAfterWriteSeesCachedData) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4);
  auto data = Pattern(512, 77);
  ASSERT_TRUE(cache.Write(5, data.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(5, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(BufferCacheTest, DropAllDiscardsDirtyData) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteBack);
  auto data = Pattern(512, 5);
  ASSERT_TRUE(cache.Write(1, data.data()).ok());
  cache.DropAll();
  ASSERT_TRUE(cache.Flush().ok());
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(1, raw.data()).ok());
  EXPECT_EQ(raw, std::vector<uint8_t>(512, 0));  // write was dropped
}

TEST(BufferCacheTest, CacheReducesDeviceReads) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 64);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  BufferCache cache(&disk, 16);
  std::vector<uint8_t> buf(1024);
  for (int pass = 0; pass < 10; ++pass) {
    for (uint64_t b = 0; b < 8; ++b) {
      ASSERT_TRUE(cache.Read(b, buf.data()).ok());
    }
  }
  EXPECT_EQ(disk.stats().reads, 8u);  // only the first pass misses
  EXPECT_EQ(cache.stats().hits, 72u);
}

TEST(BufferCacheTest, ReadBatchServesPartialHitsInsideExtent) {
  MemBlockDevice dev(512, 32);
  std::vector<std::vector<uint8_t>> patterns;
  for (uint64_t b = 0; b < 8; ++b) {
    patterns.push_back(Pattern(512, static_cast<uint8_t>(b + 1)));
    ASSERT_TRUE(dev.WriteBlock(b, patterns.back().data()).ok());
  }
  BufferCache cache(&dev, 16);

  // Warm blocks 2 and 5; then batch-read the extent 0..7 — 2 hits, 6
  // misses, every byte correct.
  std::vector<uint8_t> one(512);
  ASSERT_TRUE(cache.Read(2, one.data()).ok());
  ASSERT_TRUE(cache.Read(5, one.data()).ok());
  uint64_t hits0 = cache.stats().hits, misses0 = cache.stats().misses;

  uint64_t blocks[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<uint8_t> out(8 * 512);
  ASSERT_TRUE(cache.ReadBatch(blocks, 8, out.data()).ok());
  for (uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(std::vector<uint8_t>(out.begin() + b * 512,
                                   out.begin() + (b + 1) * 512),
              patterns[b])
        << "block " << b;
  }
  EXPECT_EQ(cache.stats().hits, hits0 + 2);
  EXPECT_EQ(cache.stats().misses, misses0 + 6);
  EXPECT_EQ(cache.stats().batched_reads, 8u);

  // Everything is cached now: a second batch is all hits.
  ASSERT_TRUE(cache.ReadBatch(blocks, 8, out.data()).ok());
  EXPECT_EQ(cache.stats().hits, hits0 + 10);
  EXPECT_EQ(cache.stats().misses, misses0 + 6);
}

TEST(BufferCacheTest, WriteBatchRoundTripsThroughPolicies) {
  for (WritePolicy policy :
       {WritePolicy::kWriteBack, WritePolicy::kWriteThrough}) {
    MemBlockDevice dev(512, 32);
    BufferCache cache(&dev, 16, policy);
    uint64_t blocks[3] = {9, 4, 17};
    std::vector<uint8_t> data(3 * 512);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(i * 11);
    }
    ASSERT_TRUE(cache.WriteBatch(blocks, 3, data.data()).ok());
    EXPECT_EQ(cache.stats().batched_writes, 3u);
    if (policy == WritePolicy::kWriteThrough) {
      std::vector<uint8_t> raw(512);
      ASSERT_TRUE(dev.ReadBlock(4, raw.data()).ok());
      EXPECT_EQ(std::memcmp(raw.data(), data.data() + 512, 512), 0);
    }
    ASSERT_TRUE(cache.Flush().ok());
    std::vector<uint8_t> out(3 * 512);
    ASSERT_TRUE(cache.ReadBatch(blocks, 3, out.data()).ok());
    EXPECT_EQ(out, data);
  }
}

// The batch path must evict in exactly the order the per-block loop would:
// drive two identically-seeded caches through the same access sequence,
// one per-block and one batched, and compare counters plus the full
// surviving-entry set (probed via a SimDisk read count: cached blocks
// don't touch the device).
TEST(BufferCacheTest, BatchPreservesSeededEvictionOrder) {
  auto mk = [] {
    auto inner = std::make_unique<MemBlockDevice>(512, 64);
    return std::make_unique<SimDisk>(std::move(inner), DiskModelConfig{});
  };
  auto disk_a = mk();
  auto disk_b = mk();
  BufferCache loop_cache(disk_a.get(), 4, WritePolicy::kWriteBack, 1);
  BufferCache batch_cache(disk_b.get(), 4, WritePolicy::kWriteBack, 1);

  // Interleaved hits and misses, with revisits that only survive if LRU
  // order matches.
  const uint64_t seq[] = {1, 2, 3, 1, 4, 5, 2, 1, 6, 3, 1, 7};
  const size_t n = sizeof(seq) / sizeof(seq[0]);
  std::vector<uint8_t> buf(512);
  for (uint64_t b : seq) {
    ASSERT_TRUE(loop_cache.Read(b, buf.data()).ok());
  }
  std::vector<uint8_t> out(n * 512);
  ASSERT_TRUE(batch_cache.ReadBatch(seq, n, out.data()).ok());

  CacheStats ls = loop_cache.stats(), bs = batch_cache.stats();
  EXPECT_EQ(ls.hits, bs.hits);
  EXPECT_EQ(ls.misses, bs.misses);
  EXPECT_EQ(ls.evictions, bs.evictions);
  // The batch fetches each distinct block at most once up front, so when a
  // sequence revisits a block after it was evicted mid-sequence the batch
  // issues FEWER device reads than the loop — never more.
  EXPECT_LE(disk_b->stats().reads, disk_a->stats().reads);

  // Same survivors: re-read every block once in both caches; hit patterns
  // (device read deltas) must match block for block.
  for (uint64_t b = 1; b <= 7; ++b) {
    uint64_t ra = disk_a->stats().reads;
    uint64_t rb = disk_b->stats().reads;
    ASSERT_TRUE(loop_cache.Read(b, buf.data()).ok());
    ASSERT_TRUE(batch_cache.Read(b, buf.data()).ok());
    EXPECT_EQ(disk_a->stats().reads - ra, disk_b->stats().reads - rb)
        << "block " << b << " cached in one cache but not the other";
  }
}

TEST(BufferCacheTest, PrefetchPopulatesAndCountsHits) {
  MemBlockDevice dev(512, 64);
  std::vector<uint8_t> data = Pattern(512, 3);
  for (uint64_t b = 8; b < 12; ++b) {
    ASSERT_TRUE(dev.WriteBlock(b, data.data()).ok());
  }
  BufferCache cache(&dev, 16);
  concurrency::ThreadPool pool(1);
  cache.SetPrefetchPool(&pool);

  uint64_t blocks[4] = {8, 9, 10, 11};
  cache.Prefetch(blocks, 4);
  pool.WaitIdle();
  EXPECT_EQ(cache.stats().prefetched, 4u);
  EXPECT_EQ(cache.stats().prefetch_hits, 0u);
  EXPECT_EQ(cache.size(), 4u);

  // Demand reads claim the prefetched entries: hits, and prefetch_hits.
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(9, out.data()).ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(cache.Read(10, out.data()).ok());
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().prefetch_hits, 2u);
  // A re-read of a claimed entry is a plain hit, not a prefetch hit.
  ASSERT_TRUE(cache.Read(9, out.data()).ok());
  EXPECT_EQ(cache.stats().prefetch_hits, 2u);

  // Prefetching cached or out-of-range blocks is a harmless no-op.
  uint64_t mixed[3] = {9, 1000000, 11};
  cache.Prefetch(mixed, 3);
  pool.WaitIdle();
  EXPECT_EQ(cache.stats().prefetched, 4u);
  cache.SetPrefetchPool(nullptr);
}

// A device fault inside a batch's miss fetch surfaces the error and
// leaves the cache consistent: no entry is inserted from the failed
// fetch, so a healed retry re-reads everything from the device.
TEST(BufferCacheTest, ReadBatchSurfacesFaultWithoutCachingGarbage) {
  test::FaultyDevice dev(512, 32);
  std::vector<uint8_t> data = Pattern(512, 7);
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(dev.inner()->WriteBlock(b, data.data()).ok());
  }
  BufferCache cache(&dev, 8);
  dev.FailReads(2);
  uint64_t blocks[4] = {0, 1, 2, 3};
  std::vector<uint8_t> out(4 * 512);
  EXPECT_TRUE(cache.ReadBatch(blocks, 4, out.data()).IsIOError());
  EXPECT_EQ(cache.size(), 0u);  // nothing inserted from the failed fetch

  dev.Heal();
  ASSERT_TRUE(cache.ReadBatch(blocks, 4, out.data()).ok());
  for (uint64_t b = 0; b < 4; ++b) {
    EXPECT_EQ(std::memcmp(out.data() + b * 512, data.data(), 512), 0);
  }
  EXPECT_EQ(cache.size(), 4u);
}

// --- async data path ----------------------------------------------------

// Completes batches only when the test says so: SubmitRead performs the
// base device read at submission time (capturing the bytes of that
// moment, like a real in-flight request) but defers the completion
// handler until Release() — which is how the tests pin down the
// submit/complete race window deterministically.
class ManualAsyncDevice : public AsyncBlockDevice {
 public:
  explicit ManualAsyncDevice(BlockDevice* base) : base_(base) {}
  ~ManualAsyncDevice() override { Drain(); }

  uint32_t block_size() const override { return base_->block_size(); }
  uint64_t num_blocks() const override { return base_->num_blocks(); }
  const char* engine_name() const override { return "manual-test"; }

  IoTicket SubmitRead(std::vector<BlockIoVec> iov,
                      IoCompletionFn done) override {
    Status s = base_->ReadBlocks(iov.data(), iov.size());
    return Defer(std::move(done), std::move(s));
  }
  IoTicket SubmitWrite(std::vector<ConstBlockIoVec> iov,
                       IoCompletionFn done) override {
    Status s = base_->WriteBlocks(iov.data(), iov.size());
    return Defer(std::move(done), std::move(s));
  }

  // Fires every deferred completion, in submission order.
  void Release() {
    for (auto& p : pending_) {
      if (p.done) p.done(p.status);
      p.completion.Complete(p.status);
    }
    pending_.clear();
  }

  void Drain() override { Release(); }
  AsyncIoStats stats() const override { return {}; }

 private:
  struct Pending {
    IoCompletionFn done;
    Status status;
    IoCompletion completion;
  };
  IoTicket Defer(IoCompletionFn done, Status s) {
    pending_.push_back({std::move(done), std::move(s), IoCompletion()});
    return pending_.back().completion.ticket();
  }
  BlockDevice* base_;
  std::vector<Pending> pending_;
};

TEST(BufferCacheAsyncTest, ReadBatchAsyncMatchesSyncResults) {
  MemBlockDevice dev(512, 32);
  std::vector<std::vector<uint8_t>> patterns;
  for (uint64_t b = 0; b < 8; ++b) {
    patterns.push_back(Pattern(512, static_cast<uint8_t>(b + 1)));
    ASSERT_TRUE(dev.WriteBlock(b, patterns.back().data()).ok());
  }
  BufferCache cache(&dev, 16);
  ThreadPoolAsyncDevice engine(&dev, 2);
  cache.SetAsyncEngine(&engine);

  // Warm two blocks, then batch hits + misses + a duplicate.
  std::vector<uint8_t> one(512);
  ASSERT_TRUE(cache.Read(2, one.data()).ok());
  ASSERT_TRUE(cache.Read(5, one.data()).ok());
  uint64_t hits0 = cache.stats().hits, misses0 = cache.stats().misses;

  uint64_t blocks[9] = {0, 1, 2, 3, 4, 5, 6, 7, 3};  // 3 twice
  std::vector<uint8_t> out(9 * 512);
  ASSERT_TRUE(cache.ReadBatchAsync(blocks, 9, out.data()).Wait().ok());
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(std::memcmp(out.data() + i * 512, patterns[blocks[i]].data(),
                          512),
              0)
        << "position " << i;
  }
  // 2 warm hits + 1 duplicate hit; 6 distinct misses (sync parity).
  EXPECT_EQ(cache.stats().hits, hits0 + 3);
  EXPECT_EQ(cache.stats().misses, misses0 + 6);
  EXPECT_EQ(cache.stats().async_batched_reads, 9u);
  EXPECT_EQ(cache.size(), 8u);  // misses inserted by the completion

  // Everything cached: all hits, no engine involvement needed.
  ASSERT_TRUE(cache.ReadBatchAsync(blocks, 9, out.data()).Wait().ok());
  EXPECT_EQ(cache.stats().misses, misses0 + 6);
  cache.SetAsyncEngine(nullptr);
}

TEST(BufferCacheAsyncTest, WriteBatchAsyncWriteThroughRoundTrips) {
  MemBlockDevice dev(512, 32);
  BufferCache cache(&dev, 16, WritePolicy::kWriteThrough);
  ThreadPoolAsyncDevice engine(&dev, 2);
  cache.SetAsyncEngine(&engine);

  uint64_t blocks[3] = {9, 4, 17};
  std::vector<uint8_t> data(3 * 512);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 13);
  }
  ASSERT_TRUE(cache.WriteBatchAsync(blocks, 3, data.data()).Wait().ok());
  EXPECT_EQ(cache.stats().async_batched_writes, 3u);

  // Device has the bytes (write-through) and so does the cache.
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(4, raw.data()).ok());
  EXPECT_EQ(std::memcmp(raw.data(), data.data() + 512, 512), 0);
  std::vector<uint8_t> out(3 * 512);
  ASSERT_TRUE(cache.ReadBatch(blocks, 3, out.data()).ok());
  EXPECT_EQ(out, data);
  cache.SetAsyncEngine(nullptr);
}

// The PR 3 write-through contract on the async path: a mid-batch device
// fault invalidates exactly the failed group's entries — the cache never
// serves bytes older than the device — and other entries survive.
TEST(BufferCacheAsyncTest, AsyncWriteFaultInvalidatesExactlyTheGroup) {
  test::FaultyDevice dev(512, 64);
  // One shard so "the group" is the whole batch and the test is exact.
  BufferCache cache(&dev, 16, WritePolicy::kWriteThrough, 1);
  ThreadPoolAsyncDevice engine(&dev, 1);
  cache.SetAsyncEngine(&engine);

  // Warm entries 0..3 (old bytes) plus an unrelated entry 20.
  std::vector<uint8_t> old_data = Pattern(512, 1);
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(cache.Write(b, old_data.data()).ok());
  }
  std::vector<uint8_t> other = Pattern(512, 50);
  ASSERT_TRUE(cache.Write(20, other.data()).ok());
  ASSERT_EQ(cache.size(), 5u);

  // Fault mid-batch: an unknown prefix of the new bytes lands on the
  // device, then the batch fails.
  dev.FailWrites(/*after=*/2);
  uint64_t blocks[4] = {0, 1, 2, 3};
  std::vector<uint8_t> new_data(4 * 512);
  for (size_t i = 0; i < new_data.size(); ++i) {
    new_data[i] = static_cast<uint8_t>(i * 3 + 1);
  }
  EXPECT_FALSE(
      cache.WriteBatchAsync(blocks, 4, new_data.data()).Wait().ok());
  dev.Heal();

  // Exactly the group is gone; the unrelated entry survives.
  EXPECT_EQ(cache.size(), 1u);
  std::vector<uint8_t> out(512);
  uint64_t misses0 = cache.stats().misses;
  ASSERT_TRUE(cache.Read(20, out.data()).ok());
  EXPECT_EQ(out, other);
  EXPECT_EQ(cache.stats().misses, misses0);  // still cached

  // Reads of the group now come from the device — whatever prefix landed
  // there is what the cache serves, never the stale pre-fault entries.
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(cache.Read(b, out.data()).ok());
    ASSERT_TRUE(dev.inner()->ReadBlock(b, old_data.data()).ok());
    EXPECT_EQ(std::memcmp(out.data(), old_data.data(), 512), 0)
        << "block " << b << " differs from the device";
  }
  cache.SetAsyncEngine(nullptr);
}

// Generation guard: a write that lands while an async miss read is in
// flight must prevent the read's (stale) bytes from being inserted.
TEST(BufferCacheAsyncTest, RacedWriteBeatsInFlightReadInsert) {
  MemBlockDevice dev(512, 32);
  std::vector<uint8_t> old_bytes = Pattern(512, 1);
  ASSERT_TRUE(dev.WriteBlock(7, old_bytes.data()).ok());
  BufferCache cache(&dev, 8, WritePolicy::kWriteThrough, 1);
  ManualAsyncDevice engine(&dev);
  cache.SetAsyncEngine(&engine);

  uint64_t blocks[1] = {7};
  std::vector<uint8_t> out(512);
  CacheIoTicket t = cache.ReadBatchAsync(blocks, 1, out.data());
  // The engine has read the OLD bytes; before completion, new bytes land.
  std::vector<uint8_t> new_bytes = Pattern(512, 99);
  ASSERT_TRUE(cache.Write(7, new_bytes.data()).ok());
  engine.Release();
  ASSERT_TRUE(t.Wait().ok());
  // The caller legally observes the old bytes (its read began first)...
  EXPECT_EQ(out, old_bytes);
  // ...but the cache must keep serving the newer write.
  ASSERT_TRUE(cache.Read(7, out.data()).ok());
  EXPECT_EQ(out, new_bytes);
  ASSERT_TRUE(dev.ReadBlock(7, out.data()).ok());
  EXPECT_EQ(out, new_bytes);
  cache.SetAsyncEngine(nullptr);
}

// Same ordering on the write side: if a second write to the SAME block
// lands while an async write is in flight, the completion must not
// resurrect the first write's bytes into the cache.
TEST(BufferCacheAsyncTest, RacedWriteSupersedesInFlightWriteReplay) {
  MemBlockDevice dev(512, 32);
  BufferCache cache(&dev, 8, WritePolicy::kWriteThrough, 1);
  ManualAsyncDevice engine(&dev);
  cache.SetAsyncEngine(&engine);

  uint64_t blocks[1] = {3};
  std::vector<uint8_t> first = Pattern(512, 10);
  CacheIoTicket t = cache.WriteBatchAsync(blocks, 1, first.data());
  // A racing sync write supersedes the in-flight one (newer write_seq).
  std::vector<uint8_t> second = Pattern(512, 20);
  ASSERT_TRUE(cache.Write(3, second.data()).ok());
  engine.Release();
  ASSERT_TRUE(t.Wait().ok());
  // The completion kept the newer entry; cache and device agree on the
  // last write.
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(3, out.data()).ok());
  EXPECT_EQ(out, second);
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(out, raw);
  cache.SetAsyncEngine(nullptr);
}

// Regression: a pipelined write's sibling sub-batches (disjoint blocks,
// same shard, overlapping flights) must ALL cache their groups — the
// write ordering is per block, not per shard, so siblings don't
// invalidate each other.
TEST(BufferCacheAsyncTest, OverlappingSiblingWriteBatchesAllStayCached) {
  MemBlockDevice dev(512, 64);
  BufferCache cache(&dev, 32, WritePolicy::kWriteThrough, 1);
  ManualAsyncDevice engine(&dev);
  cache.SetAsyncEngine(&engine);

  // Three overlapping sub-batches, as EncryptedBlockStore's pipeline
  // submits them: all in flight together, completing in order.
  uint64_t g1[4] = {0, 1, 2, 3};
  uint64_t g2[4] = {10, 11, 12, 13};
  uint64_t g3[4] = {20, 21, 22, 23};
  std::vector<uint8_t> d1(4 * 512), d2(4 * 512), d3(4 * 512);
  for (size_t i = 0; i < d1.size(); ++i) {
    d1[i] = 1;
    d2[i] = 2;
    d3[i] = 3;
  }
  CacheIoTicket t1 = cache.WriteBatchAsync(g1, 4, d1.data());
  CacheIoTicket t2 = cache.WriteBatchAsync(g2, 4, d2.data());
  CacheIoTicket t3 = cache.WriteBatchAsync(g3, 4, d3.data());
  engine.Release();
  ASSERT_TRUE(t1.Wait().ok());
  ASSERT_TRUE(t2.Wait().ok());
  ASSERT_TRUE(t3.Wait().ok());

  // Every group is cached: re-reads are pure hits.
  EXPECT_EQ(cache.size(), 12u);
  uint64_t misses0 = cache.stats().misses;
  std::vector<uint8_t> out(4 * 512);
  ASSERT_TRUE(cache.ReadBatch(g1, 4, out.data()).ok());
  EXPECT_EQ(out, d1);
  ASSERT_TRUE(cache.ReadBatch(g2, 4, out.data()).ok());
  EXPECT_EQ(out, d2);
  ASSERT_TRUE(cache.ReadBatch(g3, 4, out.data()).ok());
  EXPECT_EQ(out, d3);
  EXPECT_EQ(cache.stats().misses, misses0);
  cache.SetAsyncEngine(nullptr);
}

TEST(BufferCacheAsyncTest, PrefetchIsAPureSubmitterWithEngine) {
  MemBlockDevice dev(512, 64);
  std::vector<uint8_t> data = Pattern(512, 3);
  for (uint64_t b = 8; b < 12; ++b) {
    ASSERT_TRUE(dev.WriteBlock(b, data.data()).ok());
  }
  BufferCache cache(&dev, 16);
  ThreadPoolAsyncDevice engine(&dev, 2);
  cache.SetAsyncEngine(&engine);
  // Deliberately NO prefetch pool: the engine is the whole mechanism.

  uint64_t blocks[4] = {8, 9, 10, 11};
  cache.Prefetch(blocks, 4);
  engine.Drain();
  EXPECT_EQ(cache.stats().prefetched, 4u);
  EXPECT_EQ(cache.size(), 4u);

  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(9, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().prefetch_hits, 1u);

  // Out-of-range and already-cached blocks stay harmless no-ops.
  uint64_t mixed[3] = {9, 1000000, 11};
  cache.Prefetch(mixed, 3);
  engine.Drain();
  EXPECT_EQ(cache.stats().prefetched, 4u);
  cache.SetAsyncEngine(nullptr);
}

// Concurrent demand traffic against async batches (the TSan job runs
// this): no lost updates, no double completions, consistent bytes.
TEST(BufferCacheAsyncTest, ConcurrentAsyncBatchesUnderContention) {
  MemBlockDevice dev(512, 128);
  std::vector<uint8_t> seed(512);
  for (uint64_t b = 0; b < 128; ++b) {
    for (size_t i = 0; i < 512; ++i) {
      seed[i] = static_cast<uint8_t>(b);
    }
    ASSERT_TRUE(dev.WriteBlock(b, seed.data()).ok());
  }
  BufferCache cache(&dev, 64, WritePolicy::kWriteThrough, 4);
  ThreadPoolAsyncDevice engine(&dev, 3);
  cache.SetAsyncEngine(&engine);

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < 4; ++tid) {
    threads.emplace_back([&cache, &errors, tid] {
      std::vector<uint64_t> blocks(16);
      std::vector<uint8_t> out(16 * 512);
      for (int round = 0; round < 40; ++round) {
        for (size_t i = 0; i < 16; ++i) {
          blocks[i] = (tid * 31 + round * 7 + i * 3) % 128;
        }
        if (!cache.ReadBatchAsync(blocks.data(), 16, out.data())
                 .Wait()
                 .ok()) {
          errors.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < 16; ++i) {
          // Every block holds one repeated byte; a torn or misplaced
          // transfer would break that.
          const uint8_t want = static_cast<uint8_t>(blocks[i]);
          for (size_t j = 0; j < 512; ++j) {
            if (out[i * 512 + j] != want) {
              errors.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  engine.Drain();
  EXPECT_EQ(errors.load(), 0);
  cache.SetAsyncEngine(nullptr);
}

TEST(BufferCacheTest, FlushIsIdempotent) {
  MemBlockDevice dev(512, 8);
  BufferCache cache(&dev, 4);
  auto data = Pattern(512, 8);
  ASSERT_TRUE(cache.Write(0, data.data()).ok());
  ASSERT_TRUE(cache.Flush().ok());
  uint64_t wb = cache.stats().writebacks;
  ASSERT_TRUE(cache.Flush().ok());
  EXPECT_EQ(cache.stats().writebacks, wb);  // nothing dirty the second time
}

}  // namespace
}  // namespace stegfs
