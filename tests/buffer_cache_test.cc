#include "cache/buffer_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"

namespace stegfs {
namespace {

std::vector<uint8_t> Pattern(uint32_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (uint32_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(seed + i * 5);
  return v;
}

TEST(BufferCacheTest, ReadThroughAndHit) {
  MemBlockDevice dev(512, 16);
  auto data = Pattern(512, 1);
  ASSERT_TRUE(dev.WriteBlock(2, data.data()).ok());

  BufferCache cache(&dev, 4);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(2, out.data()).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.stats().misses, 1u);
  ASSERT_TRUE(cache.Read(2, out.data()).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BufferCacheTest, WriteBackDefersDeviceWrite) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteBack);
  auto data = Pattern(512, 9);
  ASSERT_TRUE(cache.Write(3, data.data()).ok());

  // Device still has zeros until flush.
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, std::vector<uint8_t>(512, 0));

  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, data);
}

TEST(BufferCacheTest, WriteThroughHitsDeviceImmediately) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteThrough);
  auto data = Pattern(512, 9);
  ASSERT_TRUE(cache.Write(3, data.data()).ok());
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(3, raw.data()).ok());
  EXPECT_EQ(raw, data);
}

TEST(BufferCacheTest, EvictionWritesBackDirtyLru) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 2, WritePolicy::kWriteBack);
  auto a = Pattern(512, 1);
  auto b = Pattern(512, 2);
  auto c = Pattern(512, 3);
  ASSERT_TRUE(cache.Write(0, a.data()).ok());
  ASSERT_TRUE(cache.Write(1, b.data()).ok());
  ASSERT_TRUE(cache.Write(2, c.data()).ok());  // evicts block 0

  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(0, raw.data()).ok());
  EXPECT_EQ(raw, a);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(BufferCacheTest, LruOrderRespectsRecency) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 2);
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());
  ASSERT_TRUE(cache.Read(1, buf.data()).ok());
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());  // touch 0 -> 1 becomes LRU
  ASSERT_TRUE(cache.Read(2, buf.data()).ok());  // evicts 1
  ASSERT_TRUE(cache.Read(0, buf.data()).ok());  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(BufferCacheTest, ReadAfterWriteSeesCachedData) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4);
  auto data = Pattern(512, 77);
  ASSERT_TRUE(cache.Write(5, data.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(cache.Read(5, out.data()).ok());
  EXPECT_EQ(out, data);
}

TEST(BufferCacheTest, DropAllDiscardsDirtyData) {
  MemBlockDevice dev(512, 16);
  BufferCache cache(&dev, 4, WritePolicy::kWriteBack);
  auto data = Pattern(512, 5);
  ASSERT_TRUE(cache.Write(1, data.data()).ok());
  cache.DropAll();
  ASSERT_TRUE(cache.Flush().ok());
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(1, raw.data()).ok());
  EXPECT_EQ(raw, std::vector<uint8_t>(512, 0));  // write was dropped
}

TEST(BufferCacheTest, CacheReducesDeviceReads) {
  auto inner = std::make_unique<MemBlockDevice>(1024, 64);
  SimDisk disk(std::move(inner), DiskModelConfig{});
  BufferCache cache(&disk, 16);
  std::vector<uint8_t> buf(1024);
  for (int pass = 0; pass < 10; ++pass) {
    for (uint64_t b = 0; b < 8; ++b) {
      ASSERT_TRUE(cache.Read(b, buf.data()).ok());
    }
  }
  EXPECT_EQ(disk.stats().reads, 8u);  // only the first pass misses
  EXPECT_EQ(cache.stats().hits, 72u);
}

TEST(BufferCacheTest, FlushIsIdempotent) {
  MemBlockDevice dev(512, 8);
  BufferCache cache(&dev, 4);
  auto data = Pattern(512, 8);
  ASSERT_TRUE(cache.Write(0, data.data()).ok());
  ASSERT_TRUE(cache.Flush().ok());
  uint64_t wb = cache.stats().writebacks;
  ASSERT_TRUE(cache.Flush().ok());
  EXPECT_EQ(cache.stats().writebacks, wb);  // nothing dirty the second time
}

}  // namespace
}  // namespace stegfs
