// Degraded-mode state machine at the mount level (PR 8): persistent
// write faults trip the volume read-only with clean txn abort, transient
// exhaustion degrades without stopping writes, hidden reads lean on the
// IDA heal path under injected corruption, and the transitions hold under
// concurrent sessions (this test runs in the TSan matrix).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/stegfs.h"
#include "fault/fault_injection_device.h"
#include "fault/health.h"
#include "journal/recovery.h"

namespace stegfs {
namespace {

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 4096;
const char* kUid = "alice";
const char* kUak = "uak-secret";
const char* kObj = "payload";

using fault::FaultInjectionBlockDevice;
using fault::FaultRule;
using fault::MountHealth;

StegFormatOptions SmallFormat(uint32_t journal_blocks = 0) {
  StegFormatOptions fmt;
  fmt.params.dummy_file_count = 2;
  fmt.params.dummy_file_avg_bytes = 2048;
  fmt.entropy = "degraded-mode-entropy";
  fmt.journal_blocks = journal_blocks;
  return fmt;
}

// Write-through keeps device faults synchronous with the op that caused
// them, so transitions are deterministic to assert on.
StegFsOptions WriteThroughOpts() {
  StegFsOptions opts;
  opts.mount.write_policy = WritePolicy::kWriteThrough;
  opts.mount.cache_blocks = 64;
  // Microscopic backoff: exhaustion tests shouldn't sleep for real.
  opts.mount.fault.retry.base_backoff_ns = 1000;
  opts.mount.fault.retry.max_backoff_ns = 8000;
  return opts;
}

FaultRule Rule(FaultRule::Op op, FaultRule::Kind kind,
               uint64_t count = FaultRule::kForever, uint64_t after = 0) {
  FaultRule r;
  r.op = op;
  r.kind = kind;
  r.after = after;
  r.count = count;
  return r;
}

TEST(DegradedModeTest, PersistentWriteFaultTripsReadOnly) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  auto fs = StegFs::Mount(&dev, WriteThroughOpts());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  ASSERT_TRUE((*fs)->plain()->WriteFile("/before", "fine").ok());
  ASSERT_EQ((*fs)->plain()->health()->state(), MountHealth::kHealthy);

  dev.AddRule(Rule(FaultRule::Op::kWrite, FaultRule::Kind::kPersistentError));
  Status w = (*fs)->plain()->WriteFile("/doomed", "never lands");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kReadOnly);

  // Every subsequent mutating op is rejected up front — the device never
  // sees it (the schedule would fire if it did, but the op must fail with
  // FailedPrecondition, not an I/O error).
  const uint64_t injected_before = dev.faults_injected();
  Status rejected = (*fs)->plain()->WriteFile("/rejected", "x");
  EXPECT_TRUE(rejected.IsFailedPrecondition()) << rejected.ToString();
  EXPECT_EQ(dev.faults_injected(), injected_before);
  EXPECT_GE((*fs)->plain()->health()->rejected_writes(), 1u);
  // Hidden-path mutations are gated identically.
  Status hc = (*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile,
                                RedundancyPolicy::None());
  EXPECT_TRUE(hc.IsFailedPrecondition()) << hc.ToString();

  // Reads keep being served.
  auto back = (*fs)->plain()->ReadFile("/before");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "fine");

  // Operator fixes the substrate, resets: writes flow again.
  dev.ClearRules();
  (*fs)->plain()->health()->Reset();
  EXPECT_TRUE((*fs)->plain()->WriteFile("/after", "recovered").ok());
  EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kHealthy);
}

TEST(DegradedModeTest, TransientExhaustionDegradesButKeepsWriting) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  auto fs = StegFs::Mount(&dev, WriteThroughOpts());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();

  // More consecutive transient faults than the retry budget: the op
  // surfaces its error and the mount degrades — but does NOT go
  // read-only, transient exhaustion is a warning, not a verdict.
  dev.AddRule(Rule(FaultRule::Op::kWrite, FaultRule::Kind::kTransientError,
                   /*count=*/64));
  Status w = (*fs)->plain()->WriteFile("/bumpy", "data");
  ASSERT_FALSE(w.ok());
  EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kDegraded);

  dev.ClearRules();
  EXPECT_TRUE((*fs)->plain()->WriteFile("/bumpy", "data").ok());
  // Still degraded — the state is a latched warning until reset.
  EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kDegraded);
  auto back = (*fs)->plain()->ReadFile("/bumpy");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), "data");
}

TEST(DegradedModeTest, RetryAbsorbsShortTransientBursts) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  auto fs = StegFs::Mount(&dev, WriteThroughOpts());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();

  // Two-deep fault bursts stay within the default 4-attempt budget:
  // callers never see them, health never changes.
  for (int i = 0; i < 4; ++i) {
    dev.AddRule(Rule(FaultRule::Op::kWrite, FaultRule::Kind::kTransientError,
                     /*count=*/2));
    ASSERT_TRUE(
        (*fs)->plain()->WriteFile("/f" + std::to_string(i), "payload").ok());
  }
  EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kHealthy);
  EXPECT_GE((*fs)->plain()->fault_stats()->retry_successes.value(), 4u);
  EXPECT_GT(dev.faults_injected(), 0u);
}

// A persistent fault arriving mid-transaction on a DURABLE mount: the
// open txn aborts through the deferred-free machinery, leaving a ring a
// later recovery mount replays cleanly.
TEST(DegradedModeTest, MidTxnReadOnlyAbortsCleanlyOnDurableMount) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat(/*journal_blocks=*/16)).ok());
  const std::string doomed_bytes(4096, 'x');
  {
    // Journaling requires write-back (the ordered hold-back), so this
    // test uses the default policy, unlike the rest of the suite.
    StegFsOptions opts;
    opts.mount.durability = Durability::kJournal;
    opts.mount.fault.retry.base_backoff_ns = 1000;
    opts.mount.fault.retry.max_backoff_ns = 8000;
    auto fs = StegFs::Mount(&dev, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    ASSERT_TRUE((*fs)->plain()->WriteFile("/committed", "safe").ok());

    // Now the device dies for good: the next op's journal commit fails
    // mid-txn and must abort or surface cleanly, not tear.
    dev.AddRule(Rule(FaultRule::Op::kWrite,
                     FaultRule::Kind::kPersistentError));
    Status w = (*fs)->plain()->WriteFile("/doomed", doomed_bytes);
    ASSERT_FALSE(w.ok());
    EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kReadOnly);
    EXPECT_TRUE(
        (*fs)->plain()->WriteFile("/also", "x").IsFailedPrecondition());

    // Substrate fixed + reset: the mount is usable again in place.
    dev.ClearRules();
    (*fs)->plain()->health()->Reset();
    ASSERT_TRUE((*fs)->plain()->WriteFile("/recovered", "yes").ok());
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  // Recovery mount: committed state intact, fsck clean, and nothing torn.
  // "/doomed" reported failure; if its re-marked dirty blocks flushed
  // after the reset it may exist, but then it must be byte-exact — a
  // failed op may surface as fully-applied or not-applied, never half.
  StegFsOptions opts;
  opts.mount.durability = Durability::kJournal;
  auto fs = StegFs::Mount(&dev, opts);
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  auto committed = (*fs)->plain()->ReadFile("/committed");
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), "safe");
  auto recovered = (*fs)->plain()->ReadFile("/recovered");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), "yes");
  EXPECT_FALSE((*fs)->plain()->ReadFile("/also").ok());
  auto doomed = (*fs)->plain()->ReadFile("/doomed");
  if (doomed.ok()) EXPECT_EQ(doomed.value(), doomed_bytes);
  journal::FsckReport report;
  ASSERT_TRUE((*fs)->Fsck(&report).ok());
  EXPECT_TRUE(report.clean);
}

// Hidden reads under injected silent corruption: the redundancy layer
// detects the flip against its checksums, decodes from the surviving
// shares, and heals — the caller sees correct bytes, the health state
// notes nothing (corruption ownership is the heal path's).
TEST(DegradedModeTest, HiddenReadsHealAroundInjectedBitFlips) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  const RedundancyPolicy policy = RedundancyPolicy::Ida(2, 3);
  std::string content;
  while (content.size() < 6 * kBs) content += "hidden-payload.";
  content.resize(6 * kBs);

  std::vector<uint64_t> stripe0;
  {
    auto fs = StegFs::Mount(&dev, WriteThroughOpts());
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    ASSERT_TRUE(
        (*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile, policy).ok());
    ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
    ASSERT_TRUE((*fs)->HiddenWriteAll(kUid, kObj, content).ok());
    auto obj = (*fs)->ConnectedForTesting(kUid, kObj);
    ASSERT_TRUE(obj.ok());
    auto blocks = obj.value()->ShareBlocksForTesting(0);
    ASSERT_TRUE(blocks.ok());
    stripe0 = std::move(blocks).value();
    ASSERT_TRUE((*fs)->Flush().ok());
  }

  // Cold mount; every read of data share 0's device block comes back with
  // one (deterministically seeded) bit flipped.
  auto fs = StegFs::Mount(&dev, WriteThroughOpts());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
  ASSERT_NE(stripe0[0], 0u);
  FaultRule flip = Rule(FaultRule::Op::kRead, FaultRule::Kind::kBitFlip,
                        /*count=*/1);
  flip.block_lo = flip.block_hi = stripe0[0];
  dev.AddRule(flip);

  auto back = (*fs)->HiddenReadAll(kUid, kObj);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), content);
  EXPECT_GE((*fs)->redundancy_stats().degraded_reads.load(), 1u);
  EXPECT_GE((*fs)->redundancy_stats().shares_healed.load(), 1u);
}

// Concurrent sessions racing a persistent fault: some ops fail with the
// I/O error that tripped the state, the rest are rejected cleanly — no
// crash, no torn state, and after heal + reset the volume works.
TEST(DegradedModeTest, ConcurrentSessionsSeeCleanReadOnlyTransition) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  auto fs = StegFs::Mount(&dev, WriteThroughOpts());
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 24;
  std::atomic<int> successes{0}, rejections{0}, io_failures{0};
  std::atomic<bool> armed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (t == 0 && i == kOpsPerThread / 2 && !armed.exchange(true)) {
          dev.AddRule(Rule(FaultRule::Op::kWrite,
                           FaultRule::Kind::kPersistentError));
        }
        const std::string path =
            "/t" + std::to_string(t) + "_" + std::to_string(i);
        Status s = fs->get()->plain()->WriteFile(path, "concurrent");
        if (s.ok()) {
          ++successes;
        } else if (s.IsFailedPrecondition()) {
          ++rejections;
        } else {
          ++io_failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(successes + rejections + io_failures,
            kThreads * kOpsPerThread);
  EXPECT_GT(successes.load(), 0);
  EXPECT_GT(rejections.load(), 0);
  EXPECT_EQ(fs->get()->plain()->health()->state(), MountHealth::kReadOnly);
  EXPECT_EQ(fs->get()->plain()->health()->readonly_transitions(), 1u);

  // Every file that reported success must read back intact.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::string path =
          "/t" + std::to_string(t) + "_" + std::to_string(i);
      auto back = fs->get()->plain()->ReadFile(path);
      if (back.ok()) EXPECT_EQ(back.value(), "concurrent");
    }
  }

  dev.ClearRules();
  fs->get()->plain()->health()->Reset();
  EXPECT_TRUE(fs->get()->plain()->WriteFile("/post", "healed").ok());
}

}  // namespace
}  // namespace stegfs
