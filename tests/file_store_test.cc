// Cross-scheme property suite: every Table 4 system must behave as a
// correct (if differently-performing) file store under the same contract.
#include "baselines/file_store.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class FileStoreTest : public ::testing::TestWithParam<SchemeKind> {
 protected:
  void SetUp() override {
    // 64 MB volume, 1 KB blocks.
    dev_ = std::make_unique<MemBlockDevice>(1024, 65536);
    FileStoreOptions opts;
    opts.replication = 4;
    auto store = CreateFileStore(GetParam(), dev_.get(), opts);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(store).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<FileStore> store_;
};

TEST_P(FileStoreTest, SmallFileRoundTrip) {
  ASSERT_TRUE(store_->WriteFile("a.txt", "key-a", "hello steganography").ok());
  auto data = store_->ReadFile("a.txt", "key-a");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data.value(), "hello steganography");
}

TEST_P(FileStoreTest, MegabyteFileRoundTrip) {
  std::string content = RandomData(1 << 20, 11);
  ASSERT_TRUE(store_->WriteFile("big.bin", "key-b", content).ok());
  auto data = store_->ReadFile("big.bin", "key-b");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), content);
}

TEST_P(FileStoreTest, OverwriteReplacesContent) {
  ASSERT_TRUE(store_->WriteFile("f", "k", RandomData(300000, 1)).ok());
  std::string second = RandomData(200000, 2);
  ASSERT_TRUE(store_->WriteFile("f", "k", second).ok());
  auto data = store_->ReadFile("f", "k");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), second);
}

TEST_P(FileStoreTest, SeveralFilesNoCrosstalk) {
  // Modest count so StegRand (r=4) stays under its corruption threshold
  // on a 64 MB volume.
  std::vector<std::string> contents;
  for (int i = 0; i < 4; ++i) {
    contents.push_back(RandomData(100000 + i * 9999, 50 + i));
    ASSERT_TRUE(store_
                    ->WriteFile("multi-" + std::to_string(i),
                                "key-" + std::to_string(i), contents.back())
                    .ok())
        << i;
  }
  for (int i = 0; i < 4; ++i) {
    auto data = store_->ReadFile("multi-" + std::to_string(i),
                                 "key-" + std::to_string(i));
    ASSERT_TRUE(data.ok()) << i << ": " << data.status().ToString();
    EXPECT_EQ(data.value(), contents[i]) << i;
  }
}

TEST_P(FileStoreTest, MissingFileFailsCleanly) {
  auto data = store_->ReadFile("never-written", "some-key");
  EXPECT_FALSE(data.ok());
}

TEST_P(FileStoreTest, EmptyFileRoundTrip) {
  ASSERT_TRUE(store_->WriteFile("empty", "k", "").ok());
  auto data = store_->ReadFile("empty", "k");
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data.value().empty());
}

TEST_P(FileStoreTest, CapacityIsPositiveAndBounded) {
  EXPECT_GT(store_->CapacityBytes(), 0u);
  EXPECT_LE(store_->CapacityBytes(), dev_->capacity_bytes());
}

// Steganographic schemes must reject a wrong key (native ones ignore keys).
TEST_P(FileStoreTest, WrongKeyBehaviour) {
  ASSERT_TRUE(store_->WriteFile("locked", "right-key", "payload").ok());
  auto data = store_->ReadFile("locked", "wrong-key");
  switch (GetParam()) {
    case SchemeKind::kCleanDisk:
    case SchemeKind::kFragDisk:
      ASSERT_TRUE(data.ok());  // no protection: that is the point
      EXPECT_EQ(data.value(), "payload");
      break;
    default:
      EXPECT_FALSE(data.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FileStoreTest,
    ::testing::Values(SchemeKind::kCleanDisk, SchemeKind::kFragDisk,
                      SchemeKind::kStegCover, SchemeKind::kStegRand,
                      SchemeKind::kStegFs, SchemeKind::kStegRandIda),
    [](const ::testing::TestParamInfo<SchemeKind>& info) {
      return SchemeName(info.param);
    });

TEST(SchemeNameTest, AllNamesDistinct) {
  EXPECT_STREQ(SchemeName(SchemeKind::kCleanDisk), "CleanDisk");
  EXPECT_STREQ(SchemeName(SchemeKind::kFragDisk), "FragDisk");
  EXPECT_STREQ(SchemeName(SchemeKind::kStegCover), "StegCover");
  EXPECT_STREQ(SchemeName(SchemeKind::kStegRand), "StegRand");
  EXPECT_STREQ(SchemeName(SchemeKind::kStegFs), "StegFS");
  EXPECT_STREQ(SchemeName(SchemeKind::kStegRandIda), "StegRandIDA");
}

}  // namespace
}  // namespace stegfs
