// The C binding of the paper's section 4 API, exercised end-to-end exactly
// as a C application would use it (volume file on the host FS, raw buffers,
// int error codes).
#include "capi/steg_api.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace {

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs suites in parallel.
    std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    image_ = ::testing::TempDir() + "/capi_" + tag + "_volume.img";
    backup_ = ::testing::TempDir() + "/capi_" + tag + "_backup.bin";
    recovered_ = ::testing::TempDir() + "/capi_" + tag + "_recovered.img";
    std::remove(image_.c_str());
    std::remove(backup_.c_str());
    std::remove(recovered_.c_str());
    ASSERT_EQ(steg_mkfs(image_.c_str(), 1024, 32768), STEG_OK);
    ASSERT_EQ(steg_mount(image_.c_str(), 1024, &vol_), STEG_OK);
  }

  void TearDown() override {
    if (vol_ != nullptr) {
      EXPECT_EQ(steg_unmount(vol_), STEG_OK);
    }
    std::remove(image_.c_str());
    std::remove(backup_.c_str());
    std::remove(recovered_.c_str());
  }

  std::string image_, backup_, recovered_;
  stegfs_volume* vol_ = nullptr;
};

TEST_F(CapiTest, MountRejectsMissingImage) {
  stegfs_volume* v = nullptr;
  EXPECT_NE(steg_mount("/nonexistent/image.img", 1024, &v), STEG_OK);
  EXPECT_EQ(v, nullptr);
}

TEST_F(CapiTest, PlainRoundTrip) {
  ASSERT_EQ(steg_plain_write(vol_, "/note.txt", "plain data", 10), STEG_OK);
  char buf[64];
  size_t n = 0;
  ASSERT_EQ(steg_plain_read(vol_, "/note.txt", buf, sizeof(buf), &n),
            STEG_OK);
  EXPECT_EQ(std::string(buf, n), "plain data");
}

TEST_F(CapiTest, HiddenLifecycle) {
  ASSERT_EQ(steg_create(vol_, "alice", "vault", "uak", STEG_TYPE_FILE),
            STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "alice", "vault", "uak"), STEG_OK);
  ASSERT_EQ(steg_hidden_write(vol_, "alice", "vault", "secret!", 7), STEG_OK);

  char buf[64];
  size_t n = 0;
  ASSERT_EQ(steg_hidden_read(vol_, "alice", "vault", buf, sizeof(buf), &n),
            STEG_OK);
  EXPECT_EQ(std::string(buf, n), "secret!");

  ASSERT_EQ(steg_disconnect(vol_, "alice", "vault"), STEG_OK);
  // I/O after disconnect fails with a precondition error.
  EXPECT_EQ(steg_hidden_read(vol_, "alice", "vault", buf, sizeof(buf), &n),
            STEG_ERR_PRECONDITION);
  EXPECT_NE(std::string(steg_strerror(vol_)).find("not connected"),
            std::string::npos);
}

TEST_F(CapiTest, StatsReportCacheAndSpace) {
  stegfs_stats before;
  ASSERT_EQ(steg_stats(vol_, &before), STEG_OK);
  EXPECT_EQ(before.block_size, 1024u);
  EXPECT_EQ(before.total_blocks, 32768u);
  EXPECT_EQ(before.allocated_blocks + before.free_blocks,
            before.total_blocks);
  EXPECT_GE(before.allocated_blocks, before.metadata_blocks);

  ASSERT_EQ(steg_plain_write(vol_, "/stats.txt", "0123456789", 10), STEG_OK);
  char buf[16];
  size_t n = 0;
  ASSERT_EQ(steg_plain_read(vol_, "/stats.txt", buf, sizeof(buf), &n),
            STEG_OK);

  stegfs_stats after;
  ASSERT_EQ(steg_stats(vol_, &after), STEG_OK);
  EXPECT_EQ(after.plain_file_bytes, before.plain_file_bytes + 10);
  EXPECT_GT(after.cache_hits + after.cache_misses,
            before.cache_hits + before.cache_misses);
  EXPECT_GE(after.cache_hit_rate, 0.0);
  EXPECT_LE(after.cache_hit_rate, 1.0);

  EXPECT_EQ(steg_stats(nullptr, &after), STEG_ERR_INVALID);
  EXPECT_EQ(steg_stats(vol_, nullptr), STEG_ERR_INVALID);
}

TEST_F(CapiTest, DurableMountJournalsAndFsckRunsClean) {
  // steg_mkfs formats a journal region, so the mount is durable and
  // every plain write commits through the write-ahead journal.
  stegfs_stats s;
  ASSERT_EQ(steg_stats(vol_, &s), STEG_OK);
  EXPECT_STREQ(s.durability, "journal");
  ASSERT_EQ(steg_plain_write(vol_, "/durable.txt", "committed", 9), STEG_OK);
  ASSERT_EQ(steg_stats(vol_, &s), STEG_OK);
  EXPECT_GT(s.journal_records, 0u);
  EXPECT_GT(s.journal_barrier_syncs, 0u);
  EXPECT_EQ(s.journal_overflows, 0u);

  stegfs_fsck_report report;
  ASSERT_EQ(steg_fsck(vol_, &report), STEG_OK);
  EXPECT_EQ(report.clean, 1);
  EXPECT_EQ(report.repaired_refs, 0u);
  EXPECT_EQ(report.journal_live_records, 0u);  // ring at rest
  EXPECT_GT(report.referenced_blocks, 0u);
  EXPECT_GT(report.unaccounted_blocks, 0u);  // dummies + abandoned at least

  EXPECT_EQ(steg_fsck(nullptr, &report), STEG_ERR_INVALID);
  EXPECT_EQ(steg_fsck(vol_, nullptr), STEG_ERR_INVALID);
}

TEST_F(CapiTest, StatsReportBatchedDataPath) {
  // Push a multi-block extent through a hidden object so the batched
  // read/write paths and the vectored device path are all exercised.
  ASSERT_EQ(steg_create(vol_, "alice", "big", "uak", STEG_TYPE_FILE),
            STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "alice", "big", "uak"), STEG_OK);
  std::string payload(64 * 1024, 'B');  // 64 blocks at 1 KB
  ASSERT_EQ(steg_hidden_write(vol_, "alice", "big", payload.data(),
                              payload.size()),
            STEG_OK);

  // Remount so the read below runs against a cold cache: its misses must
  // reach the FileBlockDevice through the vectored path.
  ASSERT_EQ(steg_unmount(vol_), STEG_OK);
  vol_ = nullptr;
  ASSERT_EQ(steg_mount(image_.c_str(), 1024, &vol_), STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "alice", "big", "uak"), STEG_OK);
  std::vector<char> buf(payload.size());
  size_t n = 0;
  ASSERT_EQ(steg_hidden_read(vol_, "alice", "big", buf.data(), buf.size(),
                             &n),
            STEG_OK);
  ASSERT_EQ(n, payload.size());
  ASSERT_EQ(std::string(buf.data(), n), payload);

  // An overwrite ticks the batched write path (through the coalescing
  // store's vectored flush).
  ASSERT_EQ(steg_hidden_write(vol_, "alice", "big", payload.data(),
                              payload.size()),
            STEG_OK);

  stegfs_stats s;
  ASSERT_EQ(steg_stats(vol_, &s), STEG_OK);
  // The extent loops batch both directions, and the cold read misses
  // reach the device as vectored I/O.
  EXPECT_GT(s.cache_batched_reads, 0u);
  EXPECT_GT(s.cache_batched_writes, 0u);
  EXPECT_GT(s.dev_vectored_blocks, 0u);
  // Prefetch counters are present (nonzero only when the host has a spare
  // core for the prefetch thread AND reads miss; just check sanity).
  EXPECT_GE(s.cache_prefetched, s.cache_prefetch_hits);
  // The crypto tier name is a stable non-empty static string.
  ASSERT_NE(s.crypto_tier, nullptr);
  EXPECT_TRUE(std::string(s.crypto_tier) == "aes-ni" ||
              std::string(s.crypto_tier) == "t-table")
      << s.crypto_tier;
}

TEST_F(CapiTest, StatsReportAsyncEngineAndReadahead) {
  // C API mounts attach an async engine (io_uring when the kernel has it,
  // thread-pool otherwise — never "sync") and request a 16-block
  // readahead window, which arms only on multi-core hosts; either way the
  // effective state is observable instead of silently zeroed.
  stegfs_stats s;
  ASSERT_EQ(steg_stats(vol_, &s), STEG_OK);
  ASSERT_NE(s.io_engine, nullptr);
  EXPECT_TRUE(std::string(s.io_engine) == "io_uring" ||
              std::string(s.io_engine) == "thread-pool")
      << s.io_engine;
  const bool multi_core = std::thread::hardware_concurrency() >= 2;
  EXPECT_EQ(s.readahead_active, multi_core ? 1u : 0u);
  EXPECT_EQ(s.readahead_window, multi_core ? 16u : 0u);

  // A multi-block hidden extent must flow through the async engine: the
  // cold read below pipelines decrypt with in-flight submissions.
  ASSERT_EQ(steg_create(vol_, "bob", "wide", "uak2", STEG_TYPE_FILE),
            STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "bob", "wide", "uak2"), STEG_OK);
  std::string payload(128 * 1024, 'C');  // 128 blocks at 1 KB
  ASSERT_EQ(steg_hidden_write(vol_, "bob", "wide", payload.data(),
                              payload.size()),
            STEG_OK);
  ASSERT_EQ(steg_unmount(vol_), STEG_OK);
  vol_ = nullptr;
  ASSERT_EQ(steg_mount(image_.c_str(), 1024, &vol_), STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "bob", "wide", "uak2"), STEG_OK);
  std::vector<char> buf(payload.size());
  size_t n = 0;
  ASSERT_EQ(steg_hidden_read(vol_, "bob", "wide", buf.data(), buf.size(),
                             &n),
            STEG_OK);
  ASSERT_EQ(std::string(buf.data(), n), payload);

  ASSERT_EQ(steg_stats(vol_, &s), STEG_OK);
  EXPECT_GT(s.io_submitted_batches, 0u);
  // Fire-and-forget prefetch batches may still be in flight on multi-core
  // hosts, so only the ordering invariant is stable here.
  EXPECT_GE(s.io_submitted_batches, s.io_completed_batches);
}

TEST_F(CapiTest, WrongKeyIsNotFound) {
  ASSERT_EQ(steg_create(vol_, "alice", "x", "right", STEG_TYPE_FILE),
            STEG_OK);
  EXPECT_EQ(steg_connect(vol_, "alice", "x", "wrong"), STEG_ERR_NOT_FOUND);
}

TEST_F(CapiTest, BadObjTypeRejected) {
  EXPECT_EQ(steg_create(vol_, "alice", "x", "uak", 'z'), STEG_ERR_INVALID);
}

TEST_F(CapiTest, HideUnhide) {
  ASSERT_EQ(steg_plain_write(vol_, "/exposed", "now hidden", 10), STEG_OK);
  ASSERT_EQ(steg_hide(vol_, "bob", "/exposed", "obj", "uak"), STEG_OK);
  char buf[8];
  size_t n;
  EXPECT_EQ(steg_plain_read(vol_, "/exposed", buf, sizeof(buf), &n),
            STEG_ERR_NOT_FOUND);
  ASSERT_EQ(steg_unhide(vol_, "bob", "/back", "obj", "uak"), STEG_OK);
  char big[32];
  ASSERT_EQ(steg_plain_read(vol_, "/back", big, sizeof(big), &n), STEG_OK);
  EXPECT_EQ(std::string(big, n), "now hidden");
}

TEST_F(CapiTest, SharingThroughRawKeyBuffers) {
  uint8_t pub[512], priv[512];
  size_t pub_len = sizeof(pub), priv_len = sizeof(priv);
  ASSERT_EQ(steg_rsa_keygen(512, "capi-recipient", pub, &pub_len, priv,
                            &priv_len),
            STEG_OK);

  ASSERT_EQ(steg_create(vol_, "alice", "doc", "uak-a", STEG_TYPE_FILE),
            STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "alice", "doc", "uak-a"), STEG_OK);
  ASSERT_EQ(steg_hidden_write(vol_, "alice", "doc", "shared", 6), STEG_OK);
  ASSERT_EQ(steg_disconnect(vol_, "alice", "doc"), STEG_OK);

  ASSERT_EQ(steg_getentry(vol_, "alice", "doc", "uak-a", "/envelope", pub,
                          pub_len),
            STEG_OK);
  ASSERT_EQ(steg_addentry(vol_, "alice", "/envelope", priv, priv_len,
                          "uak-b"),
            STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "alice", "doc", "uak-b"), STEG_OK);
  char buf[16];
  size_t n;
  ASSERT_EQ(steg_hidden_read(vol_, "alice", "doc", buf, sizeof(buf), &n),
            STEG_OK);
  EXPECT_EQ(std::string(buf, n), "shared");
}

TEST_F(CapiTest, KeygenReportsBufferTooSmall) {
  uint8_t pub[4], priv[4];
  size_t pub_len = sizeof(pub), priv_len = sizeof(priv);
  EXPECT_EQ(steg_rsa_keygen(512, "s", pub, &pub_len, priv, &priv_len),
            STEG_ERR_NOSPACE);
  EXPECT_GT(pub_len, 4u);  // required sizes reported back
  EXPECT_GT(priv_len, 4u);
}

TEST_F(CapiTest, BackupAndRecovery) {
  ASSERT_EQ(steg_plain_write(vol_, "/keep.txt", "persist me", 10), STEG_OK);
  ASSERT_EQ(steg_create(vol_, "u", "hidden", "uak", STEG_TYPE_FILE),
            STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "u", "hidden", "uak"), STEG_OK);
  ASSERT_EQ(steg_hidden_write(vol_, "u", "hidden", "survives", 8), STEG_OK);
  ASSERT_EQ(steg_disconnect(vol_, "u", "hidden"), STEG_OK);

  ASSERT_EQ(steg_backup(vol_, backup_.c_str()), STEG_OK);
  ASSERT_EQ(steg_recovery(recovered_.c_str(), 1024, 32768, backup_.c_str()),
            STEG_OK);

  stegfs_volume* rec = nullptr;
  ASSERT_EQ(steg_mount(recovered_.c_str(), 1024, &rec), STEG_OK);
  char buf[32];
  size_t n;
  EXPECT_EQ(steg_plain_read(rec, "/keep.txt", buf, sizeof(buf), &n),
            STEG_OK);
  EXPECT_EQ(std::string(buf, n), "persist me");
  ASSERT_EQ(steg_connect(rec, "u", "hidden", "uak"), STEG_OK);
  EXPECT_EQ(steg_hidden_read(rec, "u", "hidden", buf, sizeof(buf), &n),
            STEG_OK);
  EXPECT_EQ(std::string(buf, n), "survives");
  EXPECT_EQ(steg_unmount(rec), STEG_OK);
}

TEST_F(CapiTest, VolumePersistsAcrossRemount) {
  ASSERT_EQ(steg_create(vol_, "u", "persist", "uak", STEG_TYPE_FILE),
            STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "u", "persist", "uak"), STEG_OK);
  ASSERT_EQ(steg_hidden_write(vol_, "u", "persist", "abc", 3), STEG_OK);
  ASSERT_EQ(steg_unmount(vol_), STEG_OK);
  vol_ = nullptr;

  stegfs_volume* again = nullptr;
  ASSERT_EQ(steg_mount(image_.c_str(), 1024, &again), STEG_OK);
  ASSERT_EQ(steg_connect(again, "u", "persist", "uak"), STEG_OK);
  char buf[8];
  size_t n;
  ASSERT_EQ(steg_hidden_read(again, "u", "persist", buf, sizeof(buf), &n),
            STEG_OK);
  EXPECT_EQ(std::string(buf, n), "abc");
  vol_ = again;  // TearDown unmounts
}

TEST_F(CapiTest, NullArgumentsRejected) {
  EXPECT_EQ(steg_create(nullptr, "u", "o", "k", STEG_TYPE_FILE),
            STEG_ERR_INVALID);
  EXPECT_EQ(steg_mount(image_.c_str(), 1024, nullptr), STEG_ERR_INVALID);
  size_t n;
  EXPECT_EQ(steg_hidden_read(nullptr, "u", "o", nullptr, 0, &n),
            STEG_ERR_INVALID);
}

}  // namespace
