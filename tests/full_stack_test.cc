// Full-stack integration: one long multi-user scenario exercising every
// subsystem together — plain churn, hidden objects, UAK hierarchies,
// sharing, revocation, maintenance, escrow, VFS, backup/recovery, and
// multiple remounts — with invariants checked at each stage.
#include <gtest/gtest.h>

#include <map>

#include "blockdev/mem_block_device.h"
#include "core/backup.h"
#include "core/escrow.h"
#include "core/stegfs.h"
#include "crypto/keys.h"
#include "util/random.h"
#include "vfs/vfs.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

TEST(FullStackTest, MultiUserLifecycle) {
  auto dev = std::make_unique<MemBlockDevice>(1024, 131072);  // 128 MB
  StegFormatOptions fo;
  fo.params.dummy_file_count = 3;
  fo.params.dummy_file_avg_bytes = 128 << 10;
  fo.entropy = "full-stack";
  ASSERT_TRUE(StegFs::Format(dev.get(), fo).ok());

  auto mounted = StegFs::Mount(dev.get(), StegFsOptions{});
  ASSERT_TRUE(mounted.ok());
  std::unique_ptr<StegFs> fs = std::move(mounted).value();

  // Ground truth the test maintains for every hidden object.
  std::map<std::string, std::string> truth;  // objname -> content

  // --- Stage 1: plain activity (cover traffic) -------------------------
  ASSERT_TRUE(fs->plain()->MkDir("/home").ok());
  ASSERT_TRUE(fs->plain()->MkDir("/home/alice").ok());
  ASSERT_TRUE(fs->plain()->MkDir("/home/bob").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs->plain()
                    ->WriteFile("/home/alice/doc" + std::to_string(i),
                                RandomData(50000 + i * 1111, i))
                    .ok());
  }

  // --- Stage 2: alice builds a hidden estate at two levels -------------
  crypto::UakHierarchy alice("alice-master", 2);
  truth["diary"] = RandomData(200000, 100);
  ASSERT_TRUE(fs->StegCreate("alice", "diary", alice.KeyForLevel(1),
                             HiddenType::kFile)
                  .ok());
  ASSERT_TRUE(fs->StegConnect("alice", "diary", alice.KeyForLevel(1)).ok());
  ASSERT_TRUE(fs->HiddenWriteAll("alice", "diary", truth["diary"]).ok());

  truth["board/minutes"] = RandomData(150000, 101);
  ASSERT_TRUE(fs->StegCreate("alice", "board", alice.KeyForLevel(2),
                             HiddenType::kDirectory)
                  .ok());
  ASSERT_TRUE(fs->StegCreate("alice", "board/minutes", alice.KeyForLevel(2),
                             HiddenType::kFile)
                  .ok());
  ASSERT_TRUE(
      fs->StegConnect("alice", "board/minutes", alice.KeyForLevel(2)).ok());
  ASSERT_TRUE(fs->HiddenWriteAll("alice", "board/minutes",
                                 truth["board/minutes"])
                  .ok());
  ASSERT_TRUE(fs->DisconnectAll("alice").ok());

  // --- Stage 3: bob converts a plain file to hidden (steg_hide) --------
  std::string bob_secret = RandomData(120000, 102);
  ASSERT_TRUE(fs->plain()->WriteFile("/home/bob/payroll.xls", bob_secret).ok());
  ASSERT_TRUE(
      fs->StegHide("bob", "/home/bob/payroll.xls", "payroll", "bob-uak").ok());
  EXPECT_FALSE(fs->plain()->Exists("/home/bob/payroll.xls"));

  // --- Stage 4: sharing alice -> bob ------------------------------------
  auto bob_rsa = crypto::RsaGenerateKeyPair(512, "bob-rsa");
  ASSERT_TRUE(bob_rsa.ok());
  ASSERT_TRUE(fs->StegGetEntry("alice", "diary", alice.KeyForLevel(1),
                               "/tmp-envelope", bob_rsa->public_key, "fs-e1")
                  .ok());
  ASSERT_TRUE(fs->StegAddEntry("alice", "/tmp-envelope",
                               bob_rsa->private_key, "bob-uak")
                  .ok());
  ASSERT_TRUE(fs->StegConnect("alice", "diary", "bob-uak").ok());
  EXPECT_EQ(fs->HiddenReadAll("alice", "diary").value(), truth["diary"]);
  ASSERT_TRUE(fs->DisconnectAll("alice").ok());

  // --- Stage 5: maintenance + plain churn must disturb nothing ---------
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(fs->MaintenanceTick().ok());
    ASSERT_TRUE(fs->plain()
                    ->WriteFile("/churn", RandomData(3 << 20, 200 + round))
                    .ok());
    ASSERT_TRUE(fs->plain()->Unlink("/churn").ok());
  }

  // --- Stage 6: VFS access to hidden data ------------------------------
  {
    vfs::Vfs session(fs.get(), "alice");
    ASSERT_TRUE(session.Connect("diary", alice.KeyForLevel(1)).ok());
    auto fd = session.Open("/steg/diary", vfs::kRead);
    ASSERT_TRUE(fd.ok());
    std::string head(16, '\0');
    auto got = session.Read(*fd, head.data(), 16);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(head, truth["diary"].substr(0, 16));
    // Session destructor logs off and disconnects.
  }
  EXPECT_TRUE(fs->ConnectedObjects("alice").empty());

  // --- Stage 7: escrow + admin purge of bob ----------------------------
  auto admin = crypto::RsaGenerateKeyPair(512, "admin-rsa");
  ASSERT_TRUE(admin.ok());
  KeyEscrow escrow(fs.get(), "/admin/escrow.db");
  ASSERT_TRUE(
      escrow.Deposit("bob", "payroll", "bob-uak", admin->public_key, "d1")
          .ok());
  auto purged = escrow.PurgeUser(admin->private_key, "bob");
  ASSERT_TRUE(purged.ok());
  EXPECT_EQ(*purged, 1);
  EXPECT_TRUE(fs->StegConnect("bob", "payroll", "bob-uak").IsNotFound());

  // --- Stage 8: revocation ----------------------------------------------
  ASSERT_TRUE(fs->RevokeSharing("alice", "diary", alice.KeyForLevel(1),
                                "diary-v2")
                  .ok());
  truth["diary-v2"] = truth["diary"];
  truth.erase("diary");
  EXPECT_TRUE(fs->StegConnect("alice", "diary", "bob-uak").IsNotFound());

  // --- Stage 9: backup, destroy, recover --------------------------------
  auto image = StegBackup(fs.get());
  ASSERT_TRUE(image.ok());
  fs.reset();
  auto fresh = std::make_unique<MemBlockDevice>(1024, 131072);
  ASSERT_TRUE(StegRecover(fresh.get(), image.value()).ok());
  auto remounted = StegFs::Mount(fresh.get(), StegFsOptions{});
  ASSERT_TRUE(remounted.ok());
  fs = std::move(remounted).value();

  // --- Stage 10: verify the whole estate after recovery -----------------
  // Plain tree intact.
  for (int i = 0; i < 10; ++i) {
    auto doc = fs->plain()->ReadFile("/home/alice/doc" + std::to_string(i));
    ASSERT_TRUE(doc.ok()) << i;
    EXPECT_EQ(doc.value(), RandomData(50000 + i * 1111, i)) << i;
  }
  // Hidden estate intact, at both UAK levels.
  ASSERT_TRUE(fs->StegConnect("alice", "diary-v2", alice.KeyForLevel(1)).ok());
  EXPECT_EQ(fs->HiddenReadAll("alice", "diary-v2").value(),
            truth["diary-v2"]);
  ASSERT_TRUE(
      fs->StegConnect("alice", "board/minutes", alice.KeyForLevel(2)).ok());
  EXPECT_EQ(fs->HiddenReadAll("alice", "board/minutes").value(),
            truth["board/minutes"]);
  // bob's purged object stays purged; his UAK still finds nothing.
  EXPECT_TRUE(fs->StegConnect("bob", "payroll", "bob-uak").IsNotFound());
  // Maintenance still runs on the recovered volume.
  EXPECT_TRUE(fs->MaintenanceTick().ok());

  // Level-1 disclosure still cannot reach the level-2 object.
  crypto::UakHierarchy disclosed(alice.KeyForLevel(1), 1);
  EXPECT_TRUE(fs->StegConnect("alice", "board/minutes",
                              disclosed.KeyForLevel(1))
                  .IsNotFound());

  // The file system must be torn down before `fresh` (its device).
  fs.reset();
}

}  // namespace
}  // namespace stegfs
