#include "core/hidden_header.h"

#include <gtest/gtest.h>

namespace stegfs {
namespace {

HiddenHeader SampleHeader() {
  HiddenHeader h;
  for (size_t i = 0; i < h.signature.size(); ++i) {
    h.signature[i] = static_cast<uint8_t>(i * 7);
  }
  h.type = HiddenType::kDirectory;
  h.size = 987654321;
  h.mtime = 17;
  for (uint32_t i = 0; i < kDirectPointers; ++i) h.inode.direct[i] = 500 + i;
  h.inode.single_indirect = 1000;
  h.inode.double_indirect = 2000;
  h.free_pool = {7, 8, 9, 10};
  return h;
}

TEST(HiddenHeaderTest, RoundTrip512) {
  HiddenHeader h = SampleHeader();
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(h.EncodeTo(buf.data(), buf.size()).ok());
  auto back = HiddenHeader::DecodeFrom(buf.data(), buf.size());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->signature, h.signature);
  EXPECT_EQ(back->type, HiddenType::kDirectory);
  EXPECT_EQ(back->size, 987654321u);
  EXPECT_EQ(back->mtime, 17u);
  for (uint32_t i = 0; i < kDirectPointers; ++i) {
    EXPECT_EQ(back->inode.direct[i], 500 + i);
  }
  EXPECT_EQ(back->inode.single_indirect, 1000u);
  EXPECT_EQ(back->inode.double_indirect, 2000u);
  EXPECT_EQ(back->free_pool, h.free_pool);
}

TEST(HiddenHeaderTest, InodeMirrorsHeaderMetadata) {
  HiddenHeader h = SampleHeader();
  std::vector<uint8_t> buf(1024);
  ASSERT_TRUE(h.EncodeTo(buf.data(), buf.size()).ok());
  auto back = HiddenHeader::DecodeFrom(buf.data(), buf.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->inode.size, back->size);
  EXPECT_EQ(back->inode.type, InodeType::kDirectory);
}

TEST(HiddenHeaderTest, EmptyPool) {
  HiddenHeader h = SampleHeader();
  h.free_pool.clear();
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(h.EncodeTo(buf.data(), buf.size()).ok());
  auto back = HiddenHeader::DecodeFrom(buf.data(), buf.size());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->free_pool.empty());
}

TEST(HiddenHeaderTest, MaxPoolFitsSmallestBlock) {
  HiddenHeader h = SampleHeader();
  h.free_pool.assign(kMaxFreePool, 42);
  std::vector<uint8_t> buf(512);
  EXPECT_TRUE(h.EncodeTo(buf.data(), buf.size()).ok());
}

TEST(HiddenHeaderTest, OversizedPoolRejected) {
  HiddenHeader h = SampleHeader();
  h.free_pool.assign(kMaxFreePool + 1, 42);
  std::vector<uint8_t> buf(65536);
  EXPECT_TRUE(h.EncodeTo(buf.data(), buf.size()).IsInvalidArgument());
}

TEST(HiddenHeaderTest, GarbageDecodesAsCorruption) {
  // A decrypt with the wrong key yields noise; the type byte check should
  // reject it almost always (signature check happens before decode in the
  // locator, so this is defense in depth).
  std::vector<uint8_t> buf(512, 0xA7);
  EXPECT_FALSE(HiddenHeader::DecodeFrom(buf.data(), buf.size()).ok());
}

TEST(HiddenHeaderTest, TruncatedBufferRejected) {
  HiddenHeader h = SampleHeader();
  std::vector<uint8_t> buf(64);
  EXPECT_FALSE(h.EncodeTo(buf.data(), buf.size()).ok());
  EXPECT_FALSE(HiddenHeader::DecodeFrom(buf.data(), buf.size()).ok());
}

}  // namespace
}  // namespace stegfs
