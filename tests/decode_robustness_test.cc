// Decode-robustness suite: every on-disk / wire decoder is fed adversarial
// byte soup — random garbage, truncations, and bit-flipped valid encodings.
// Decoders must return clean Status errors (or, for random garbage that
// happens to parse, yield structurally bounded values); they must never
// crash, hang, or over-read. These are deterministic pseudo-fuzz loops — a
// seized disk is attacker-controlled input, so this is part of the threat
// model, not just hygiene.
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "core/backup.h"
#include "core/hidden_directory.h"
#include "core/hidden_header.h"
#include "crypto/rsa.h"
#include "fs/layout.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::vector<uint8_t> RandomBytes(Xoshiro* rng, size_t n) {
  std::vector<uint8_t> v(n);
  rng->FillBytes(v.data(), n);
  return v;
}

TEST(DecodeRobustnessTest, SuperblockGarbage) {
  Xoshiro rng(1);
  int parsed = 0;
  for (int i = 0; i < 2000; ++i) {
    auto bytes = RandomBytes(&rng, 512);
    auto sb = Superblock::DecodeFrom(bytes.data(), bytes.size());
    if (sb.ok()) ++parsed;  // magic check makes this ~impossible
  }
  EXPECT_EQ(parsed, 0);
}

TEST(DecodeRobustnessTest, SuperblockBitFlips) {
  Superblock good;
  good.block_size = 1024;
  good.num_blocks = 65536;
  good.num_inodes = 1024;
  std::vector<uint8_t> buf(1024);
  ASSERT_TRUE(good.EncodeTo(buf.data(), buf.size()).ok());

  Xoshiro rng(2);
  for (int i = 0; i < 500; ++i) {
    auto copy = buf;
    // Flip 1-4 random bits in the encoded prefix.
    int flips = 1 + rng.Uniform(4);
    for (int f = 0; f < flips; ++f) {
      copy[rng.Uniform(64)] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    }
    auto sb = Superblock::DecodeFrom(copy.data(), copy.size());
    if (sb.ok()) {
      // If it still parses, the geometry must be self-consistent.
      Layout l = sb->ComputeLayout();
      EXPECT_LT(l.data_start, sb->num_blocks);
      EXPECT_GE(sb->block_size, 512u);
    }
  }
}

TEST(DecodeRobustnessTest, HiddenHeaderGarbage) {
  Xoshiro rng(3);
  for (int i = 0; i < 2000; ++i) {
    auto bytes = RandomBytes(&rng, 512);
    auto h = HiddenHeader::DecodeFrom(bytes.data(), bytes.size());
    if (h.ok()) {
      // 2-in-256 type bytes accept; pool count must then have been sane.
      EXPECT_LE(h->free_pool.size(), kMaxFreePool);
    }
  }
}

TEST(DecodeRobustnessTest, HiddenDirGarbageAndTruncation) {
  Xoshiro rng(4);
  for (int i = 0; i < 2000; ++i) {
    auto bytes = RandomBytes(&rng, 1 + rng.Uniform(256));
    std::string blob(bytes.begin(), bytes.end());
    auto dir = DecodeHiddenDir(blob);
    if (dir.ok()) {
      for (const auto& e : *dir) {
        EXPECT_LE(e.name.size(), blob.size());
        EXPECT_LE(e.fak.size(), blob.size());
      }
    }
  }
}

TEST(DecodeRobustnessTest, HiddenDirHostileCounts) {
  // A count field claiming 2^32-1 entries must not allocate the moon.
  std::string blob;
  blob.push_back('\xff');
  blob.push_back('\xff');
  blob.push_back('\xff');
  blob.push_back('\xff');
  EXPECT_FALSE(DecodeHiddenDir(blob).ok());
}

TEST(DecodeRobustnessTest, BackupImageGarbage) {
  Xoshiro rng(5);
  MemBlockDevice dev(1024, 4096);
  for (int i = 0; i < 200; ++i) {
    auto bytes = RandomBytes(&rng, 1 + rng.Uniform(4096));
    std::string image(bytes.begin(), bytes.end());
    EXPECT_FALSE(StegRecover(&dev, image).ok());
  }
}

TEST(DecodeRobustnessTest, BackupImageTruncations) {
  // A valid image truncated at every (sampled) prefix must fail cleanly.
  MemBlockDevice dev(1024, 16384);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 1;
  fo.params.dummy_file_avg_bytes = 16 << 10;
  fo.entropy = "trunc-test";
  ASSERT_TRUE(StegFs::Format(&dev, fo).ok());
  auto fs = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->plain()->WriteFile("/f", "plain data").ok());
  auto image = StegBackup(fs->get());
  ASSERT_TRUE(image.ok());

  MemBlockDevice target(1024, 16384);
  for (size_t cut = 0; cut < image->size(); cut += 997) {
    EXPECT_FALSE(StegRecover(&target, image->substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(DecodeRobustnessTest, RsaKeyBlobGarbage) {
  Xoshiro rng(6);
  for (int i = 0; i < 1000; ++i) {
    auto bytes = RandomBytes(&rng, rng.Uniform(128));
    std::string blob(bytes.begin(), bytes.end());
    auto pub = crypto::RsaPublicKey::Deserialize(blob);
    auto priv = crypto::RsaPrivateKey::Deserialize(blob);
    // Parsing may succeed for lucky lengths; using such a key must still
    // be safe (nonzero moduli enforced at decode).
    if (pub.ok()) EXPECT_FALSE(pub->n.IsZero());
    if (priv.ok()) EXPECT_FALSE(priv->n.IsZero());
  }
}

TEST(DecodeRobustnessTest, RsaEnvelopeGarbage) {
  auto keys = crypto::RsaGenerateKeyPair(512, "robustness");
  ASSERT_TRUE(keys.ok());
  Xoshiro rng(7);
  for (int i = 0; i < 500; ++i) {
    auto bytes = RandomBytes(&rng, rng.Uniform(512));
    std::string ct(bytes.begin(), bytes.end());
    EXPECT_FALSE(crypto::RsaDecrypt(keys->private_key, ct).ok());
  }
}

TEST(DecodeRobustnessTest, MountGarbageVolume) {
  // An entirely random device must never mount.
  Xoshiro rng(8);
  MemBlockDevice dev(1024, 4096);
  std::vector<uint8_t> block(1024);
  for (uint64_t b = 0; b < 64; ++b) {  // garbage where metadata would be
    rng.FillBytes(block.data(), block.size());
    ASSERT_TRUE(dev.WriteBlock(b, block.data()).ok());
  }
  EXPECT_FALSE(PlainFs::Mount(&dev, MountOptions{}).ok());
  EXPECT_FALSE(StegFs::Mount(&dev, StegFsOptions{}).ok());
}

}  // namespace
}  // namespace stegfs
