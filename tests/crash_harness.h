// Crash-injection harness: records a device's write stream (with its
// barrier points), then materializes arbitrary crash states from it.
//
// Model: the host may reorder or drop any write that has not been
// followed by a completed barrier (BlockDevice::Sync), and may tear the
// bytes of a single in-flight block write. Only Sync is a barrier —
// Flush is deliberately NOT (stricter than a durable FileBlockDevice,
// whose Flush is fdatasync; a file system correct under this model is
// correct under the weaker real one).
//
// A crash state for prefix k is therefore:
//   - every write before the last barrier completed at or before k,
//   - plus an arbitrary (seeded) subset of the writes between that
//     barrier and k,
//   - with optionally ONE applied post-barrier write torn (a prefix of
//     its new bytes over the old ones — sub-block granularity, which is
//     what makes single-block commit records need checksums).
#ifndef STEGFS_TESTS_CRASH_HARNESS_H_
#define STEGFS_TESTS_CRASH_HARNESS_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "blockdev/block_device.h"
#include "blockdev/mem_block_device.h"
#include "util/random.h"
#include "util/status.h"

namespace stegfs {
namespace test {

class RecordingDevice : public BlockDevice {
 public:
  struct Event {
    bool is_barrier = false;
    uint64_t block = 0;
    std::vector<uint8_t> data;  // empty for barriers
  };

  RecordingDevice(uint32_t block_size, uint64_t num_blocks)
      : inner_(block_size, num_blocks) {}

  uint32_t block_size() const override { return inner_.block_size(); }
  uint64_t num_blocks() const override { return inner_.num_blocks(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    return inner_.ReadBlock(block, buf);
  }
  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (recording_) {
        Event e;
        e.block = block;
        e.data.assign(buf, buf + inner_.block_size());
        log_.push_back(std::move(e));
      }
    }
    return inner_.WriteBlock(block, buf);
  }
  // No vectored override: the base-class loop funnels every block through
  // WriteBlock, so the log sees individual block writes in order.

  Status Flush() override { return inner_.Flush(); }  // NOT a barrier
  Status Sync() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (recording_) {
      Event e;
      e.is_barrier = true;
      log_.push_back(std::move(e));
    }
    return Status::OK();
  }

  // Snapshots the current device image as the crash baseline and starts
  // (re)recording from an empty log.
  void StartRecording() {
    std::lock_guard<std::mutex> lock(mu_);
    const uint32_t bs = inner_.block_size();
    snapshot_.resize(inner_.num_blocks() * static_cast<size_t>(bs));
    for (uint64_t b = 0; b < inner_.num_blocks(); ++b) {
      (void)inner_.ReadBlock(b, snapshot_.data() + b * bs);
    }
    log_.clear();
    recording_ = true;
  }

  size_t event_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_.size();
  }

  // Builds the crash-state image for `prefix` events (see file comment).
  // subset_seed == 0 applies every pre-prefix write (pure prefix replay);
  // any other seed drops a pseudo-random subset of the post-barrier tail.
  // `torn` tears the last applied post-barrier write at a seeded split.
  std::vector<uint8_t> Materialize(size_t prefix, uint64_t subset_seed,
                                   bool torn) const {
    std::lock_guard<std::mutex> lock(mu_);
    const uint32_t bs = inner_.block_size();
    std::vector<uint8_t> image = snapshot_;
    if (prefix > log_.size()) prefix = log_.size();

    size_t barrier = 0;  // first index NOT covered by a completed barrier
    for (size_t i = 0; i < prefix; ++i) {
      if (log_[i].is_barrier) barrier = i + 1;
    }
    // Decide which in-flight (post-barrier) writes reached the platter.
    Xoshiro rng(subset_seed == 0 ? 1 : subset_seed);
    std::vector<bool> applied(prefix, false);
    size_t last_inflight = prefix;  // sentinel: none
    for (size_t i = 0; i < prefix; ++i) {
      if (log_[i].is_barrier) continue;
      const bool durable_zone = i < barrier;
      const bool keep =
          durable_zone || subset_seed == 0 || !rng.Bernoulli(0.5);
      applied[i] = keep;
      if (keep && !durable_zone) last_inflight = i;
    }
    for (size_t i = 0; i < prefix; ++i) {
      if (!applied[i]) continue;
      const Event& e = log_[i];
      std::memcpy(image.data() + e.block * bs, e.data.data(), bs);
    }
    if (torn && last_inflight < prefix) {
      // Tear the last in-flight write: keep only a prefix of its new
      // bytes; the tail reverts to what the block held without it —
      // rebuilt by replaying every other applied write.
      const Event& victim = log_[last_inflight];
      std::vector<uint8_t> without(snapshot_.data() + victim.block * bs,
                                   snapshot_.data() + (victim.block + 1) * bs);
      for (size_t i = 0; i < prefix; ++i) {
        if (!applied[i] || i == last_inflight) continue;
        const Event& e = log_[i];
        if (e.block == victim.block) {
          std::memcpy(without.data(), e.data.data(), bs);
        }
      }
      const size_t split = 1 + rng.Uniform(bs - 1);
      std::memcpy(image.data() + victim.block * bs + split,
                  without.data() + split, bs - split);
    }
    return image;
  }

  MemBlockDevice* inner() { return &inner_; }

 private:
  mutable std::mutex mu_;
  MemBlockDevice inner_;
  bool recording_ = false;
  std::vector<uint8_t> snapshot_;
  std::vector<Event> log_;
};

// Clones an image into a fresh in-memory device.
inline std::unique_ptr<MemBlockDevice> DeviceFromImage(
    const std::vector<uint8_t>& image, uint32_t block_size) {
  const uint64_t num_blocks = image.size() / block_size;
  auto dev = std::make_unique<MemBlockDevice>(block_size, num_blocks);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    (void)dev->WriteBlock(b, image.data() + b * block_size);
  }
  return dev;
}

}  // namespace test
}  // namespace stegfs

#endif  // STEGFS_TESTS_CRASH_HARNESS_H_
