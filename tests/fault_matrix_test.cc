// The chaos matrix (PR 8 acceptance): scripted fault schedules × async
// engine configurations against a full StegFs workload, asserting the
// two gates the CI job enforces:
//   - transient-only schedules lose NOTHING: every fault is absorbed by
//     the retry layer and the final volume image is bit-identical to the
//     fault-free run (and to a second run of the same seeded schedule —
//     retry sequences are deterministic);
//   - persistent schedules fail CLEAN: the mount latches kReadOnly,
//     rejects further mutation, never crashes, and a remount after the
//     substrate heals serves everything that was committed;
// plus the deniability satellite: a compiled-in but IDLE fault layer
// leaves volume bytes identical to a mount with the layer disabled.
//
// Every cell lands in FAULT_matrix.json (archived by the chaos-matrix CI
// job, mirroring IDA_matrix.json / CRASH_matrix.json).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "capi/steg_api.h"
#include "core/stegfs.h"
#include "fault/fault_injection_device.h"
#include "fault/health.h"
#include "journal/recovery.h"

namespace stegfs {
namespace {

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 8192;
const char* kUid = "alice";
const char* kUak = "uak-secret";

using fault::FaultInjectionBlockDevice;
using fault::MountHealth;

struct MatrixCell {
  std::string schedule;
  std::string engine;
  std::string outcome;  // "absorbed" | "clean-readonly"
  uint64_t injected = 0;
  uint64_t failures = 0;
};
std::vector<MatrixCell>& Summary() {
  static std::vector<MatrixCell> cells;
  return cells;
}

class FaultMatrixJson : public ::testing::Environment {
 public:
  void TearDown() override {
    std::FILE* f = std::fopen("FAULT_matrix.json", "w");
    if (f == nullptr) return;
    // Engine coverage is structural, not incidental: the injection layer
    // decorates the synchronous BlockDevice interface and deliberately
    // hides the host file descriptor, so io_uring — which reads the raw
    // fd underneath any decorator — can never see injected faults. The
    // matrix therefore exercises {sync, threads} only; record that in
    // the artifact so a reader doesn't mistake the absent uring cells
    // for an oversight (uring's fault story is the crash matrix's torn/
    // dropped-write model plus the kernel's own error reporting).
    std::fprintf(f,
                 "{\n  \"bench\": \"fault_matrix\",\n"
                 "  \"engines_exercised\": [\"sync\", \"threads\"],\n"
                 "  \"engines_note\": \"io_uring bypasses BlockDevice "
                 "decorators by design (raw-fd I/O), so the injection "
                 "layer cannot cover it\",\n  \"cells\": [\n");
    const auto& cells = Summary();
    for (size_t i = 0; i < cells.size(); ++i) {
      const MatrixCell& c = cells[i];
      std::fprintf(f,
                   "    {\"schedule\": \"%s\", \"engine\": \"%s\", "
                   "\"outcome\": \"%s\", \"faults_injected\": %llu, "
                   "\"failures\": %llu}%s\n",
                   c.schedule.c_str(), c.engine.c_str(), c.outcome.c_str(),
                   (unsigned long long)c.injected,
                   (unsigned long long)c.failures,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
};
const auto* const kJsonEnv =
    ::testing::AddGlobalTestEnvironment(new FaultMatrixJson);

StegFormatOptions SmallFormat() {
  StegFormatOptions fmt;
  fmt.params.dummy_file_count = 2;
  fmt.params.dummy_file_avg_bytes = 2048;
  fmt.entropy = "fault-matrix-entropy";
  return fmt;
}

StegFsOptions EngineOpts(IoEngine engine) {
  StegFsOptions opts;
  opts.mount.io_engine = engine;
  opts.mount.cache_blocks = 128;
  opts.mount.fault.retry.base_backoff_ns = 1000;  // keep the matrix fast
  opts.mount.fault.retry.max_backoff_ns = 8000;
  return opts;
}

std::string EngineName(IoEngine e) {
  return e == IoEngine::kSync ? "sync" : "threads";
}

std::string Pattern(size_t bytes, uint64_t tag) {
  std::string s;
  s.reserve(bytes);
  while (s.size() < bytes) {
    s += "fm" + std::to_string(tag) + ":";
    s.push_back(static_cast<char>('a' + (s.size() % 23)));
  }
  s.resize(bytes);
  return s;
}

// The deterministic workload every cell runs: plain files of mixed sizes
// with an overwrite and an unlink, plus a redundant hidden object with a
// partial rewrite. Returns the contents a verifier should find.
struct Expected {
  std::map<std::string, std::string> plain;
  std::string hidden;
};

Expected RunWorkload(StegFs* fs) {
  Expected exp;
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/f" + std::to_string(i);
    const std::string data = Pattern(700 * (i + 1) + 37, i);
    EXPECT_TRUE(fs->plain()->WriteFile(path, data).ok()) << path;
    exp.plain[path] = data;
  }
  exp.plain["/f2"] = Pattern(1500, 42);
  EXPECT_TRUE(fs->plain()->WriteFile("/f2", exp.plain["/f2"]).ok());
  EXPECT_TRUE(fs->plain()->Unlink("/f5").ok());
  exp.plain.erase("/f5");

  const RedundancyPolicy policy = RedundancyPolicy::Ida(2, 3);
  EXPECT_TRUE(
      fs->StegCreate(kUid, "obj", kUak, HiddenType::kFile, policy).ok());
  EXPECT_TRUE(fs->StegConnect(kUid, "obj", kUak).ok());
  exp.hidden = Pattern(5 * policy.k * kBs - 99, 7);
  EXPECT_TRUE(fs->HiddenWriteAll(kUid, "obj", exp.hidden).ok());
  const std::string patch = "REWRITTEN-RANGE";
  exp.hidden.replace(kBs + 11, patch.size(), patch);
  EXPECT_TRUE(fs->HiddenWrite(kUid, "obj", kBs + 11, patch).ok());
  EXPECT_TRUE(fs->Flush().ok());
  return exp;
}

uint64_t VerifyAll(StegFs* fs, const Expected& exp) {
  uint64_t failures = 0;
  for (const auto& [path, data] : exp.plain) {
    auto back = fs->plain()->ReadFile(path);
    if (!back.ok() || back.value() != data) {
      ++failures;
      ADD_FAILURE() << path << ": "
                    << (back.ok() ? "content mismatch"
                                  : back.status().ToString());
    }
  }
  Status cs = fs->StegConnect(kUid, "obj", kUak);
  if (!cs.ok()) {
    ++failures;
    ADD_FAILURE() << "connect: " << cs.ToString();
    return failures;
  }
  auto hidden = fs->HiddenReadAll(kUid, "obj");
  if (!hidden.ok() || hidden.value() != exp.hidden) {
    ++failures;
    ADD_FAILURE() << "hidden: "
                  << (hidden.ok() ? "content mismatch"
                                  : hidden.status().ToString());
  }
  return failures;
}

std::vector<uint8_t> ImageOf(MemBlockDevice* mem) {
  std::vector<uint8_t> image(kBs * kBlocks);
  for (uint64_t b = 0; b < kBlocks; ++b) {
    EXPECT_TRUE(mem->ReadBlock(b, image.data() + b * kBs).ok());
  }
  return image;
}

// One faulted run: format, load the schedule, run the workload, verify,
// unmount. Returns the final raw image (beneath the injection layer).
std::vector<uint8_t> FaultedRun(const std::string& schedule, IoEngine engine,
                                uint64_t* injected, uint64_t* failures) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  EXPECT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  if (!schedule.empty()) {
    Status ls = dev.LoadSchedule(schedule);
    EXPECT_TRUE(ls.ok()) << ls.ToString();
  }
  {
    auto fs = StegFs::Mount(&dev, EngineOpts(engine));
    EXPECT_TRUE(fs.ok()) << fs.status().ToString();
    if (!fs.ok()) return {};
    Expected exp = RunWorkload(fs->get());
    *failures = VerifyAll(fs->get(), exp);
    // Transient-only schedules must leave the mount fully writable:
    // nothing escalated past the retry layer.
    EXPECT_NE((*fs)->plain()->health()->state(), MountHealth::kReadOnly);
    EXPECT_TRUE((*fs)->Flush().ok());
  }
  *injected = dev.faults_injected();
  return ImageOf(dev.mem());
}

// Transient-only schedules: every kind the injector can throw that the
// retry layer is expected to fully absorb.
const struct {
  const char* name;
  const char* spec;
} kTransientSchedules[] = {
    {"eio-burst", "seed=11;write:eio@5x3;read:eio@9x2;sync:eio@2"},
    {"torn-writes", "seed=12;write:torn@7x2;write:torn@40x1"},
    {"timeouts", "seed=13;read:timeout@4x2;write:timeout@11x2"},
    {"latency-spikes", "seed=14;any:delay@6x3:us=200"},
    {"mixed", "seed=15;write:eio@3x2;write:torn@25;read:timeout@8;"
              "read:eio@30x2;sync:eio@3"},
};

class FaultMatrixTest : public ::testing::TestWithParam<IoEngine> {};

TEST_P(FaultMatrixTest, TransientSchedulesAreFullyAbsorbed) {
  const IoEngine engine = GetParam();
  uint64_t base_injected = 0, base_failures = 0;
  const std::vector<uint8_t> baseline =
      FaultedRun("", engine, &base_injected, &base_failures);
  ASSERT_EQ(base_injected, 0u);
  ASSERT_EQ(base_failures, 0u);

  for (const auto& sched : kTransientSchedules) {
    SCOPED_TRACE(sched.name);
    MatrixCell cell;
    cell.schedule = sched.name;
    cell.engine = EngineName(engine);
    cell.outcome = "absorbed";

    uint64_t injected = 0;
    const std::vector<uint8_t> image =
        FaultedRun(sched.spec, engine, &injected, &cell.failures);
    EXPECT_GT(injected, 0u) << "schedule never fired";
    cell.injected = injected;
    // Zero data loss: the faulted volume ends bit-identical to fault-free.
    if (image != baseline) {
      ++cell.failures;
      ADD_FAILURE() << "faulted image diverged from fault-free baseline";
    }
    // Determinism: same seeded schedule, same workload => same faults
    // fired, same retry sequence, same final bytes.
    uint64_t injected2 = 0, failures2 = 0;
    const std::vector<uint8_t> image2 =
        FaultedRun(sched.spec, engine, &injected2, &failures2);
    EXPECT_EQ(injected, injected2);
    EXPECT_EQ(image, image2) << "second identical run diverged";
    cell.failures += failures2;
    Summary().push_back(cell);
  }
}

TEST_P(FaultMatrixTest, PersistentScheduleFailsCleanToReadOnly) {
  const IoEngine engine = GetParam();
  MatrixCell cell;
  cell.schedule = "persistent-write";
  cell.engine = EngineName(engine);
  cell.outcome = "clean-readonly";

  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  Expected committed;
  {
    // Write-through keeps device faults synchronous with the op, so the
    // read-only transition is deterministic to assert on (write-back
    // would defer the fault to writeback time).
    StegFsOptions opts = EngineOpts(engine);
    opts.mount.write_policy = WritePolicy::kWriteThrough;
    auto fs = StegFs::Mount(&dev, opts);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    // Commit a known-good prefix with no faults armed, fully flushed.
    for (int i = 0; i < 3; ++i) {
      const std::string path = "/pre" + std::to_string(i);
      const std::string data = Pattern(900 + i * 113, 50 + i);
      ASSERT_TRUE((*fs)->plain()->WriteFile(path, data).ok());
      committed.plain[path] = data;
    }
    ASSERT_TRUE((*fs)->Flush().ok());

    // The device dies for good. Ops fail, the mount latches read-only,
    // and nothing crashes — not even under continued abuse.
    ASSERT_TRUE(dev.LoadSchedule("write:fail").ok());
    Status w = (*fs)->plain()->WriteFile("/post", "doomed");
    EXPECT_FALSE(w.ok());
    EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kReadOnly);
    for (int i = 0; i < 5; ++i) {
      Status s = (*fs)->plain()->WriteFile("/again" + std::to_string(i), "x");
      EXPECT_TRUE(s.IsFailedPrecondition()) << s.ToString();
    }
    // Reads still flow while read-only.
    for (const auto& [path, data] : committed.plain) {
      auto back = (*fs)->plain()->ReadFile(path);
      if (!back.ok() || back.value() != data) ++cell.failures;
    }
    cell.injected = dev.faults_injected();
    EXPECT_GT(cell.injected, 0u);
    // Unmount runs against the still-dead device; it must not crash.
    dev.ClearRules();
  }
  // Substrate healed: a fresh mount serves every committed byte.
  auto fs = StegFs::Mount(&dev, EngineOpts(engine));
  ASSERT_TRUE(fs.ok()) << fs.status().ToString();
  EXPECT_EQ((*fs)->plain()->health()->state(), MountHealth::kHealthy);
  for (const auto& [path, data] : committed.plain) {
    auto back = (*fs)->plain()->ReadFile(path);
    if (!back.ok() || back.value() != data) {
      ++cell.failures;
      ADD_FAILURE() << path << " lost across the fault";
    }
  }
  EXPECT_TRUE((*fs)->plain()->WriteFile("/alive", "again").ok());
  Summary().push_back(cell);
}

INSTANTIATE_TEST_SUITE_P(Engines, FaultMatrixTest,
                         ::testing::Values(IoEngine::kSync,
                                           IoEngine::kThreads),
                         [](const ::testing::TestParamInfo<IoEngine>& info) {
                           return EngineName(info.param);
                         });

// Deniability satellite: with the fault layer compiled in but IDLE (no
// schedule), enabling vs disabling it must not change a single volume
// byte — retries and health are host-side state, never on-disk state.
TEST(FaultMatrixTest, IdleFaultLayerLeavesImageBitIdentical) {
  auto run = [](bool enabled) {
    MemBlockDevice dev(kBs, kBlocks);
    EXPECT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
    {
      StegFsOptions opts = EngineOpts(IoEngine::kSync);
      opts.mount.fault.enabled = enabled;
      auto fs = StegFs::Mount(&dev, opts);
      EXPECT_TRUE(fs.ok()) << fs.status().ToString();
      Expected exp = RunWorkload(fs->get());
      EXPECT_EQ(VerifyAll(fs->get(), exp), 0u);
      EXPECT_TRUE((*fs)->Flush().ok());
    }
    return ImageOf(&dev);
  };
  EXPECT_EQ(run(true), run(false));
}

// The C API face of the subsystem: steg_mount_faulty scripts faults on a
// real image file, steg_health exposes the taxonomy and state machine,
// steg_health_reset re-enables writes.
TEST(FaultMatrixTest, CApiFaultyMountAndHealth) {
  char path[] = "/tmp/stegfs_fault_XXXXXX";
  int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  std::remove(path);  // mkfs wants to create the image itself
  // Default format parameters want a real-sized volume (same geometry as
  // the capi_test suite).
  constexpr uint32_t kCapiBs = 1024;
  ASSERT_EQ(steg_mkfs(path, kCapiBs, 32768), STEG_OK);

  stegfs_volume* vol = nullptr;
  // A mount-time spec is legal but gets consumed by mount/recovery I/O,
  // so use a harmless latency schedule to prove the plumbing fires...
  ASSERT_EQ(steg_mount_faulty(path, kCapiBs, "seed=3;any:delay@0x2:us=50",
                              &vol),
            STEG_OK);
  stegfs_health h;
  ASSERT_EQ(steg_health(vol, &h), STEG_OK);
  EXPECT_GT(h.faults_injected, 0u);
  // ...and aim real error faults with steg_fault_inject once mounted.
  // Transient burst: absorbed invisibly, visible only in the counters.
  ASSERT_EQ(steg_fault_inject(vol, "write:eio@0x2"), STEG_OK);
  ASSERT_EQ(steg_plain_write(vol, "/hello", "payload", 7), STEG_OK);
  ASSERT_EQ(steg_health(vol, &h), STEG_OK);
  EXPECT_EQ(h.state, STEG_HEALTH_HEALTHY);
  EXPECT_STREQ(h.state_name, "healthy");
  EXPECT_GT(h.transient_errors, 0u);
  EXPECT_GT(h.retries, 0u);
  EXPECT_EQ(h.retry_exhausted, 0u);
  // steg_stats carries the headline fault fields too.
  stegfs_stats stats;
  ASSERT_EQ(steg_stats(vol, &stats), STEG_OK);
  EXPECT_STREQ(stats.health, "healthy");
  EXPECT_GT(stats.fault_retries, 0u);

  // Persistent write faults through the C API: read-only + clean reject.
  ASSERT_EQ(steg_fault_inject(vol, "write:fail"), STEG_OK);
  EXPECT_NE(steg_plain_write(vol, "/doomed", "x", 1), STEG_OK);
  ASSERT_EQ(steg_health(vol, &h), STEG_OK);
  EXPECT_EQ(h.state, STEG_HEALTH_READONLY);
  EXPECT_STREQ(h.state_name, "read-only");
  EXPECT_GT(h.persistent_errors, 0u);
  EXPECT_NE(steg_plain_write(vol, "/rejected", "x", 1), STEG_OK);
  ASSERT_EQ(steg_health(vol, &h), STEG_OK);
  EXPECT_GT(h.rejected_writes, 0u);
  // Unmount against the still-dead device: may report the flush error,
  // must not crash or corrupt.
  steg_unmount(vol);

  // Substrate healed (no schedule): journal recovery mounts clean.
  ASSERT_EQ(steg_mount_faulty(path, kCapiBs, NULL, &vol), STEG_OK);
  ASSERT_EQ(steg_health(vol, &h), STEG_OK);
  EXPECT_EQ(h.state, STEG_HEALTH_HEALTHY);
  EXPECT_EQ(h.faults_injected, 0u);
  ASSERT_EQ(steg_health_reset(vol), STEG_OK);
  ASSERT_EQ(steg_plain_write(vol, "/alive", "again", 5), STEG_OK);
  char buf[64];
  size_t out_len = 0;
  ASSERT_EQ(steg_plain_read(vol, "/hello", buf, sizeof(buf), &out_len),
            STEG_OK);
  EXPECT_EQ(std::string(buf, out_len), "payload");
  // Malformed schedules are rejected up front, both at mount and live.
  EXPECT_NE(steg_fault_inject(vol, "write:frobnicate"), STEG_OK);
  ASSERT_EQ(steg_unmount(vol), STEG_OK);
  stegfs_volume* bad = nullptr;
  EXPECT_NE(steg_mount_faulty(path, kCapiBs, "write:frobnicate", &bad), STEG_OK);
  // Injecting on a non-faulty mount is an error, not a crash.
  ASSERT_EQ(steg_mount(path, kCapiBs, &vol), STEG_OK);
  EXPECT_EQ(steg_fault_inject(vol, "write:eio"), STEG_ERR_INVALID);
  ASSERT_EQ(steg_unmount(vol), STEG_OK);
  std::remove(path);
}

}  // namespace
}  // namespace stegfs
