// The overwrite-loss matrix (ISSUE 6 acceptance): for every redundancy
// policy × loss count, destroy hidden shares two ways — direct device
// overwrites (the "plain side scribbled on us" case) and plain-side
// reclamation (bitmap bit freed, block handed to plain files) — and
// prove that
//   - up to n-k lost shares per stripe heal transparently on the read
//     path, and the healed object survives a remount,
//   - steg_fsck detects degraded objects and re-disperses their shares
//     online (a second fsck finds nothing),
//   - n-k+1 losses fail CLEANLY with DataLoss — never garbage bytes,
//   - the whole matrix holds across the sync / thread-pool / io_uring
//     engines, and across crash states materialized with the PR 5
//     harness (prefix × dropped-subset × torn) on a durable mount.
//
// A summary of every cell is written to IDA_matrix.json (archived by the
// ida-matrix CI job, mirroring CRASH_matrix.json).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "journal/recovery.h"
#include "tests/crash_harness.h"
#include "util/random.h"

namespace stegfs {
namespace {

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 8192;
const char* kUid = "alice";
const char* kUak = "uak-secret";
const char* kObj = "payload";

struct MatrixCell {
  std::string policy;
  std::string mode;    // "device" | "plain-claim" | "crash"
  std::string engine;  // verify engine
  int losses = 0;
  int tolerance = 0;
  std::string outcome;  // "healed" | "clean-dataloss"
  uint64_t states = 0;  // verified states (1, or crash-state count)
  uint64_t failures = 0;
};
std::vector<MatrixCell>& Summary() {
  static std::vector<MatrixCell> cells;
  return cells;
}

class IdaMatrixJson : public ::testing::Environment {
 public:
  void TearDown() override {
    std::FILE* f = std::fopen("IDA_matrix.json", "w");
    if (f == nullptr) return;
    std::fprintf(f, "{\n  \"bench\": \"ida_loss_matrix\",\n  \"cells\": [\n");
    const auto& cells = Summary();
    for (size_t i = 0; i < cells.size(); ++i) {
      const MatrixCell& c = cells[i];
      std::fprintf(
          f,
          "    {\"policy\": \"%s\", \"mode\": \"%s\", \"engine\": \"%s\", "
          "\"losses\": %d, \"tolerance\": %d, \"outcome\": \"%s\", "
          "\"states\": %llu, \"failures\": %llu}%s\n",
          c.policy.c_str(), c.mode.c_str(), c.engine.c_str(), c.losses,
          c.tolerance, c.outcome.c_str(), (unsigned long long)c.states,
          (unsigned long long)c.failures, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
};
const auto* const kJsonEnv =
    ::testing::AddGlobalTestEnvironment(new IdaMatrixJson);

struct PolicyCase {
  const char* name;
  RedundancyPolicy policy;
};
const PolicyCase kPolicies[] = {
    {"replicate-3", RedundancyPolicy::Replicate(3)},
    {"ida-2of3", RedundancyPolicy::Ida(2, 3)},
    {"ida-3of4", RedundancyPolicy::Ida(3, 4)},
};

StegFormatOptions SmallFormat() {
  StegFormatOptions fmt;
  fmt.params.dummy_file_count = 2;
  fmt.params.dummy_file_avg_bytes = 2048;
  fmt.entropy = "ida-matrix-entropy";
  return fmt;
}

StegFsOptions EngineOpts(IoEngine engine) {
  StegFsOptions opts;
  opts.mount.io_engine = engine;
  opts.mount.cache_blocks = 128;
  return opts;
}

std::string EngineName(IoEngine e) {
  switch (e) {
    case IoEngine::kSync:
      return "sync";
    case IoEngine::kThreads:
      return "threads";
    case IoEngine::kUring:
      return "uring";
    default:
      return "auto";
  }
}

std::string Content(size_t bytes, uint64_t tag) {
  std::string s;
  s.reserve(bytes);
  while (s.size() < bytes) {
    s += "ida" + std::to_string(tag) + ":";
    s.push_back(static_cast<char>('A' + (s.size() % 29)));
  }
  s.resize(bytes);
  return s;
}

// Device blocks of every share of every stripe, in share order.
StatusOr<std::vector<std::vector<uint64_t>>> CollectShares(StegFs* fs) {
  auto obj = fs->ConnectedForTesting(kUid, kObj);
  if (!obj.ok()) return obj.status();
  std::vector<std::vector<uint64_t>> shares;
  for (uint64_t s = 0; s < obj.value()->StripeCountForTesting(); ++s) {
    STEGFS_ASSIGN_OR_RETURN(std::vector<uint64_t> blocks,
                            obj.value()->ShareBlocksForTesting(s));
    shares.push_back(std::move(blocks));
  }
  return shares;
}

// For stripe s, the `losses` share slots to destroy: rotated by stripe so
// the matrix hits data shares, parity shares, and every mix of the two.
std::vector<uint64_t> VictimsOf(const std::vector<uint64_t>& stripe_shares,
                                uint64_t s, int losses) {
  std::vector<uint64_t> victims;
  const size_t n = stripe_shares.size();
  for (int i = 0; i < losses; ++i) {
    uint64_t b = stripe_shares[(s + i) % n];
    if (b != 0) victims.push_back(b);  // 0 = hole, nothing to destroy
  }
  return victims;
}

void OverwriteWithNoise(BlockDevice* dev, uint64_t block, uint64_t seed) {
  Xoshiro rng(0xda7a1055 ^ seed);
  std::vector<uint8_t> noise(kBs);
  rng.FillBytes(noise.data(), noise.size());
  ASSERT_TRUE(dev->WriteBlock(block, noise.data()).ok());
}

// One matrix cell: create the object under `pc.policy`, lose `losses`
// shares per stripe via `mode`, and verify heal-or-clean-failure on
// `engine`. Appends the cell to the JSON summary.
void RunCell(const PolicyCase& pc, int losses, const std::string& mode,
             IoEngine engine, BlockDevice* dev) {
  SCOPED_TRACE(pc.name + std::string(" losses=") + std::to_string(losses) +
               " mode=" + mode + " engine=" + EngineName(engine));
  const int tol = pc.policy.tolerance();
  MatrixCell cell;
  cell.policy = pc.name;
  cell.mode = mode;
  cell.engine = EngineName(engine);
  cell.losses = losses;
  cell.tolerance = tol;
  cell.outcome = losses <= tol ? "healed" : "clean-dataloss";
  cell.states = 1;

  ASSERT_TRUE(StegFs::Format(dev, SmallFormat()).ok());
  // ~7 stripes of payload so victim rotation covers every share mix.
  const std::string content = Content(7 * pc.policy.k * kBs - 123, 1);
  std::vector<std::vector<uint64_t>> shares;
  {
    auto fs = StegFs::Mount(dev, EngineOpts(engine));
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    ASSERT_TRUE(
        (*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile, pc.policy)
            .ok());
    ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
    ASSERT_TRUE((*fs)->HiddenWriteAll(kUid, kObj, content).ok());
    auto collected = CollectShares(fs->get());
    ASSERT_TRUE(collected.ok()) << collected.status().ToString();
    shares = std::move(collected).value();
    ASSERT_GE(shares.size(), 7u);
    ASSERT_TRUE((*fs)->Flush().ok());
  }

  // Destroy shares between mounts.
  if (mode == "device") {
    for (uint64_t s = 0; s < shares.size(); ++s) {
      for (uint64_t b : VictimsOf(shares[s], s, losses)) {
        OverwriteWithNoise(dev, b, s * 97 + b);
      }
    }
  } else {  // plain-claim: free the bits, let plain files take the blocks
    auto fs = StegFs::Mount(dev, EngineOpts(engine));
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    for (uint64_t s = 0; s < shares.size(); ++s) {
      for (uint64_t b : VictimsOf(shares[s], s, losses)) {
        ASSERT_TRUE((*fs)->plain()->bitmap()->Free(b).ok());
      }
    }
    // Fill the volume with plain files so the freed blocks are claimed
    // and overwritten by someone else's data, then unlink them — the
    // blocks stay overwritten (exactly the paper's overwrite hazard) and
    // the heal path has free space to re-disperse into.
    const std::string filler = Content(200 * 1024, 0xf111);
    int files = 0;
    while (files <= 64) {
      Status st = (*fs)->plain()->WriteFile(
          "/fill" + std::to_string(files), filler);
      if (!st.ok()) break;
      ++files;
    }
    for (int i = 0; i < files; ++i) {
      ASSERT_TRUE((*fs)->plain()->Unlink("/fill" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*fs)->Flush().ok());
  }

  // Verify: reads heal (and the heal survives a remount), or fail clean.
  auto verify = [&](bool expect_prior_heal) {
    auto fs = StegFs::Mount(dev, EngineOpts(engine));
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
    auto back = (*fs)->HiddenReadAll(kUid, kObj);
    if (losses <= tol) {
      if (!back.ok() || back.value() != content) {
        ++cell.failures;
        ADD_FAILURE() << "expected healed read, got "
                      << (back.ok() ? "wrong bytes" : back.status().ToString());
      }
      if (!expect_prior_heal && losses > 0 && mode == "device") {
        EXPECT_GT((*fs)->redundancy_stats().degraded_reads.load(), 0u);
      }
    } else {
      if (back.ok()) {
        ++cell.failures;
        ADD_FAILURE() << "expected DataLoss, read returned "
                      << back.value().size() << " bytes";
      } else {
        EXPECT_TRUE(back.status().IsDataLoss())
            << back.status().ToString();
      }
    }
    ASSERT_TRUE((*fs)->Flush().ok());
  };
  verify(/*expect_prior_heal=*/false);
  // Second mount: healed state must have persisted (no losses injected).
  verify(/*expect_prior_heal=*/true);
  Summary().push_back(cell);
}

class LossMatrixTest : public ::testing::TestWithParam<IoEngine> {};

TEST_P(LossMatrixTest, HealOrFailCleanAcrossPoliciesAndLossCounts) {
  const IoEngine engine = GetParam();
  if (engine == IoEngine::kUring) {
    char path[] = "/tmp/stegfs_ida_XXXXXX";
    int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    close(fd);
    auto dev = FileBlockDevice::Create(path, kBs, kBlocks);
    if (!dev.ok()) {
      std::remove(path);
      GTEST_SKIP() << "file device unavailable";
    }
    // Probe one uring mount before running the whole matrix.
    ASSERT_TRUE(StegFs::Format(dev->get(), SmallFormat()).ok());
    auto probe = StegFs::Mount(dev->get(), EngineOpts(engine));
    if (!probe.ok() && probe.status().IsNotSupported()) {
      std::remove(path);
      GTEST_SKIP() << "io_uring unavailable in this environment";
    }
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    probe->reset();
    for (const PolicyCase& pc : kPolicies) {
      const int tol = pc.policy.tolerance();
      for (int losses = 0; losses <= tol + 1; ++losses) {
        RunCell(pc, losses, "device", engine, dev->get());
      }
      RunCell(pc, tol, "plain-claim", engine, dev->get());
    }
    std::remove(path);
    return;
  }
  MemBlockDevice dev(kBs, kBlocks);
  for (const PolicyCase& pc : kPolicies) {
    const int tol = pc.policy.tolerance();
    for (int losses = 0; losses <= tol + 1; ++losses) {
      RunCell(pc, losses, "device", engine, &dev);
    }
    // Plain-claim reclamation at the tolerance bound and just past it.
    RunCell(pc, tol, "plain-claim", engine, &dev);
    RunCell(pc, tol + 1, "plain-claim", engine, &dev);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, LossMatrixTest,
                         ::testing::Values(IoEngine::kSync, IoEngine::kThreads,
                                           IoEngine::kUring),
                         [](const ::testing::TestParamInfo<IoEngine>& info) {
                           return EngineName(info.param);
                         });

// steg_fsck as the healer: corrupt shares, then let the online scrubber
// find and re-disperse them WITHOUT any read touching the object first.
TEST(LossMatrixTest, FsckDetectsAndRedispersesDegradedObjects) {
  MemBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  const PolicyCase& pc = kPolicies[2];  // ida-3of4
  const std::string content = Content(7 * pc.policy.k * kBs - 7, 2);
  std::vector<std::vector<uint64_t>> shares;
  {
    auto fs = StegFs::Mount(&dev, StegFsOptions());
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE(
        (*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile, pc.policy)
            .ok());
    ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
    ASSERT_TRUE((*fs)->HiddenWriteAll(kUid, kObj, content).ok());
    auto collected = CollectShares(fs->get());
    ASSERT_TRUE(collected.ok());
    shares = std::move(collected).value();
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  for (uint64_t s = 0; s < shares.size(); ++s) {
    for (uint64_t b : VictimsOf(shares[s], s, 1)) {
      OverwriteWithNoise(&dev, b, s);
    }
  }
  auto fs = StegFs::Mount(&dev, StegFsOptions());
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());

  journal::FsckReport report;
  ASSERT_TRUE((*fs)->Fsck(&report).ok());
  EXPECT_EQ(report.hidden_objects_scanned, 1u);
  EXPECT_GE(report.hidden_stripes_checked, shares.size());
  EXPECT_GT(report.hidden_degraded_stripes, 0u);
  EXPECT_GT(report.hidden_healed_shares, 0u);
  EXPECT_EQ(report.hidden_unrecoverable_stripes, 0u);
  EXPECT_FALSE(report.clean);

  // The scrub already re-dispersed everything: a second pass is clean and
  // the content reads back without further healing.
  journal::FsckReport again;
  ASSERT_TRUE((*fs)->Fsck(&again).ok());
  EXPECT_EQ(again.hidden_degraded_stripes, 0u);
  EXPECT_EQ(again.hidden_healed_shares, 0u);
  auto back = (*fs)->HiddenReadAll(kUid, kObj);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), content);

  MatrixCell cell;
  cell.policy = pc.name;
  cell.mode = "fsck";
  cell.engine = "sync";
  cell.losses = 1;
  cell.tolerance = pc.policy.tolerance();
  cell.outcome = "healed";
  cell.states = 1;
  cell.failures = ::testing::Test::HasFailure() ? 1 : 0;
  Summary().push_back(cell);
}

// Beyond-tolerance losses must be visible to fsck as unrecoverable, not
// silently "repaired".
TEST(LossMatrixTest, FsckReportsUnrecoverableStripes) {
  MemBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat()).ok());
  const PolicyCase& pc = kPolicies[1];  // ida-2of3, tolerance 1
  const std::string content = Content(5 * pc.policy.k * kBs, 3);
  std::vector<std::vector<uint64_t>> shares;
  {
    auto fs = StegFs::Mount(&dev, StegFsOptions());
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE(
        (*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile, pc.policy)
            .ok());
    ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
    ASSERT_TRUE((*fs)->HiddenWriteAll(kUid, kObj, content).ok());
    auto collected = CollectShares(fs->get());
    ASSERT_TRUE(collected.ok());
    shares = std::move(collected).value();
    ASSERT_TRUE((*fs)->Flush().ok());
  }
  for (uint64_t s = 0; s < shares.size(); ++s) {
    for (uint64_t b : VictimsOf(shares[s], s, 2)) {  // tolerance + 1
      OverwriteWithNoise(&dev, b, s);
    }
  }
  auto fs = StegFs::Mount(&dev, StegFsOptions());
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
  journal::FsckReport report;
  ASSERT_TRUE((*fs)->Fsck(&report).ok());
  EXPECT_GT(report.hidden_unrecoverable_stripes, 0u);
  EXPECT_FALSE(report.clean);
  auto back = (*fs)->HiddenReadAll(kUid, kObj);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsDataLoss()) << back.status().ToString();
}

// The crash leg: a durable mount's write stream is recorded, crash
// states are materialized (prefix × dropped-subset × torn), shares are
// destroyed IN the crash image, and recovery + read-path healing must
// still produce a committed version of the object.
TEST(LossMatrixTest, CrashRecoveryHealsLostShares) {
  constexpr uint32_t kRing = 16;
  const PolicyCase& pc = kPolicies[2];  // ida-3of4, tolerance 1
  test::RecordingDevice dev(kBs, kBlocks);
  StegFormatOptions fmt = SmallFormat();
  fmt.journal_blocks = kRing;
  ASSERT_TRUE(StegFs::Format(&dev, fmt).ok());
  dev.StartRecording();

  StegFsOptions durable;
  durable.mount.durability = Durability::kJournal;
  durable.mount.cache_blocks = 128;

  const std::string v1 = Content(6 * pc.policy.k * kBs - 11, 10);
  const std::string v2 = Content(6 * pc.policy.k * kBs - 11, 20);
  std::vector<std::vector<uint64_t>> shares_v1, shares_v2;
  size_t commit1 = 0, commit2 = 0;
  {
    auto fs = StegFs::Mount(&dev, durable);
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    ASSERT_TRUE(
        (*fs)->StegCreate(kUid, kObj, kUak, HiddenType::kFile, pc.policy)
            .ok());
    ASSERT_TRUE((*fs)->StegConnect(kUid, kObj, kUak).ok());
    ASSERT_TRUE((*fs)->HiddenWriteAll(kUid, kObj, v1).ok());
    ASSERT_TRUE((*fs)->Flush().ok());
    auto c1 = CollectShares(fs->get());
    ASSERT_TRUE(c1.ok());
    shares_v1 = std::move(c1).value();
    commit1 = dev.event_count();
    // v2 is a whole-object rewrite: on a durable mount WriteAll never
    // overwrites committed blocks in place (truncate defers the returns),
    // so v1's shares stay intact until v2's commit barrier.
    ASSERT_TRUE((*fs)->HiddenWriteAll(kUid, kObj, v2).ok());
    ASSERT_TRUE((*fs)->Flush().ok());
    auto c2 = CollectShares(fs->get());
    ASSERT_TRUE(c2.ok());
    shares_v2 = std::move(c2).value();
    commit2 = dev.event_count();
  }
  const size_t total = dev.event_count();
  ASSERT_GT(commit1, 0u);
  ASSERT_GT(commit2, commit1);

  MatrixCell cell;
  cell.policy = pc.name;
  cell.mode = "crash";
  cell.engine = "sync";
  cell.losses = 1;
  cell.tolerance = pc.policy.tolerance();
  cell.outcome = "healed";

  // Crash points: at each commit boundary, between them, and the final
  // state; rotate dropped-subset tails and torn final writes like the
  // crash-consistency matrix.
  const size_t points[] = {commit1, (commit1 + commit2) / 2, commit2, total};
  int point = 0;
  for (size_t k : points) {
    for (int variant = 0; variant < 3; ++variant, ++point) {
      const uint64_t subset_seed = variant == 1 ? 0x1da0 + point : 0;
      const bool torn = variant == 2;
      auto image = dev.Materialize(k, subset_seed, torn);
      // Destroy one share per stripe of BOTH versions in the image: the
      // committed state sees exactly `tolerance` losses either way (the
      // other version's blocks are pool noise / abandoned in that state).
      for (const auto* shares : {&shares_v1, &shares_v2}) {
        for (uint64_t s = 0; s < shares->size(); ++s) {
          for (uint64_t b : VictimsOf((*shares)[s], s, 1)) {
            Xoshiro rng(0xc4a54 ^ (s * 131) ^ b);
            rng.FillBytes(image.data() + b * kBs, kBs);
          }
        }
      }
      auto mem = test::DeviceFromImage(image, kBs);
      auto fs = StegFs::Mount(mem.get(), durable);
      ++cell.states;
      if (!fs.ok()) {
        ++cell.failures;
        ADD_FAILURE() << "mount failed at k=" << k << ": "
                      << fs.status().ToString();
        continue;
      }
      Status cs = (*fs)->StegConnect(kUid, kObj, kUak);
      if (!cs.ok()) {
        ++cell.failures;
        ADD_FAILURE() << "connect failed at k=" << k << ": " << cs.ToString();
        continue;
      }
      auto back = (*fs)->HiddenReadAll(kUid, kObj);
      if (!back.ok() || (back.value() != v1 && back.value() != v2)) {
        ++cell.failures;
        ADD_FAILURE() << "crash state k=" << k << " seed=" << subset_seed
                      << " torn=" << torn << ": "
                      << (back.ok() ? "content matches neither committed "
                                      "version"
                                    : back.status().ToString());
        continue;
      }
      // Recovery + heal must leave a volume fsck calls healthy (the heal
      // itself may have been the repair).
      journal::FsckReport report;
      Status fs_st = (*fs)->Fsck(&report);
      if (!fs_st.ok() || report.hidden_unrecoverable_stripes != 0) {
        ++cell.failures;
        ADD_FAILURE() << "fsck at k=" << k << ": " << fs_st.ToString()
                      << " unrecoverable="
                      << report.hidden_unrecoverable_stripes;
      }
    }
  }
  Summary().push_back(cell);
}

}  // namespace
}  // namespace stegfs
