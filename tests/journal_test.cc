// Unit tests for the crash-consistency subsystem's pieces: the
// write-ahead journal's commit/scrub cycle, recovery's replay of a
// committed-but-uncheckpointed record, the cache's ordered writeback
// (FlushExcept), durable-mount plumbing, the hidden-header commit
// trailer, and the blockdev durability primitives. The end-to-end
// crash matrix lives in crash_consistency_test.cc.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "cache/buffer_cache.h"
#include "core/hidden_header.h"
#include "core/stegfs.h"
#include "fs/plain_fs.h"
#include "journal/journal.h"
#include "journal/recovery.h"
#include "tests/crash_harness.h"
#include "tests/test_device.h"

namespace stegfs {
namespace {

using journal::JournalEntry;
using journal::JournalRecovery;
using journal::WriteAheadJournal;

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 2048;

Superblock RingOnlySuperblock(uint64_t start, uint32_t blocks) {
  Superblock sb;
  sb.block_size = kBs;
  sb.num_blocks = kBlocks;
  sb.num_inodes = 256;
  sb.journal_start = start;
  sb.journal_blocks = blocks;
  return sb;
}

TEST(ScrubNoiseTest, DeterministicAndPositionKeyed) {
  std::vector<uint8_t> a(kBs), b(kBs), c(kBs);
  journal::ScrubNoise(42, 3, a.data(), a.size());
  journal::ScrubNoise(42, 3, b.data(), b.size());
  journal::ScrubNoise(42, 4, c.data(), c.size());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(JournalTest, CommitCheckpointsAndScrubs) {
  MemBlockDevice dev(kBs, kBlocks);
  BufferCache cache(&dev, 64);
  const uint64_t start = 100;
  const uint32_t ring = 16;
  WriteAheadJournal j(&dev, &cache, nullptr, start, ring, /*seed=*/7);

  std::vector<JournalEntry> entries(3);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].block = 500 + i;
    entries[i].image.assign(kBs, static_cast<uint8_t>('A' + i));
  }
  ASSERT_TRUE(j.Commit(entries, {}).ok());

  // Checkpoint applied to the home blocks.
  std::vector<uint8_t> buf(kBs);
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_TRUE(dev.ReadBlock(500 + i, buf.data()).ok());
    EXPECT_EQ(0, std::memcmp(buf.data(), entries[i].image.data(), kBs));
  }
  // Ring back at rest: nothing parseable.
  Superblock sb = RingOnlySuperblock(start, ring);
  uint64_t torn = 0;
  auto live = JournalRecovery::Scan(&dev, sb, &torn);
  ASSERT_TRUE(live.ok());
  EXPECT_TRUE(live->empty());
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(j.stats().records_committed, 1u);
  EXPECT_EQ(j.stats().blocks_journaled, 3u);
  EXPECT_GE(j.stats().barrier_syncs, 3u);
}

TEST(JournalTest, OversizedTransactionFallsBackButPersists) {
  MemBlockDevice dev(kBs, kBlocks);
  BufferCache cache(&dev, 64);
  WriteAheadJournal j(&dev, &cache, nullptr, 100, /*ring=*/8, 7);
  ASSERT_EQ(j.MaxPayloadBlocks(), 7u);

  std::vector<JournalEntry> entries(10);
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i].block = 600 + i;
    entries[i].image.assign(kBs, static_cast<uint8_t>(i + 1));
  }
  ASSERT_TRUE(j.Commit(entries, {}).ok());
  EXPECT_EQ(j.stats().overflow_fallbacks, 1u);
  EXPECT_EQ(j.stats().records_committed, 0u);
  std::vector<uint8_t> buf(kBs);
  ASSERT_TRUE(dev.ReadBlock(609, buf.data()).ok());
  EXPECT_EQ(buf[0], 10);
}

// Crash between the record barrier (commit) and the checkpoint: recovery
// must replay the record's after-images onto their home blocks and scrub
// the ring.
TEST(JournalTest, RecoveryReplaysCommittedUncheckpointedRecord) {
  test::RecordingDevice dev(kBs, kBlocks);
  BufferCache cache(&dev, 64);
  const uint64_t start = 100;
  const uint32_t ring = 16;
  dev.StartRecording();
  WriteAheadJournal j(&dev, &cache, nullptr, start, ring, 7);

  std::vector<JournalEntry> entries(2);
  entries[0].block = 700;
  entries[0].image.assign(kBs, 0x5a);
  entries[1].block = 701;
  entries[1].image.assign(kBs, 0xa5);
  ASSERT_TRUE(j.Commit(entries, {}).ok());

  // Find the prefix ending right after the SECOND barrier (ordered-data
  // barrier, then the record + commit barrier) — the checkpoint and the
  // scrub never happen in this crash state.
  // Commit's event shape: [barrier][record writes][barrier][checkpoint
  // writes][barrier][scrub writes]. Walk the recorded log for barrier #2.
  // Scan for a crash state where the record is live but the home blocks
  // have not been checkpointed.
  size_t prefix = 0;
  {
    const size_t n = dev.event_count();
    for (size_t k = 1; k <= n; ++k) {
      auto image = dev.Materialize(k, 0, false);
      auto probe = test::DeviceFromImage(image, kBs);
      Superblock sb = RingOnlySuperblock(start, ring);
      auto live = JournalRecovery::Scan(probe.get(), sb, nullptr);
      if (!live.ok() || live->size() != 1) continue;
      std::vector<uint8_t> buf(kBs);
      ASSERT_TRUE(probe->ReadBlock(700, buf.data()).ok());
      if (buf[0] == 0x5a) continue;  // checkpoint already landed
      prefix = k;
      break;
    }
  }
  ASSERT_GT(prefix, 0u) << "no crash state with a live, uncheckpointed "
                           "record — commit protocol changed?";

  auto image = dev.Materialize(prefix, 0, false);
  auto crashed = test::DeviceFromImage(image, kBs);
  Superblock sb = RingOnlySuperblock(start, ring);
  auto report = JournalRecovery::Run(crashed.get(), sb);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records_replayed, 1u);
  EXPECT_EQ(report->blocks_restored, 2u);
  EXPECT_EQ(report->scrubbed_blocks, ring);

  std::vector<uint8_t> buf(kBs);
  ASSERT_TRUE(crashed->ReadBlock(700, buf.data()).ok());
  EXPECT_EQ(buf[0], 0x5a);
  ASSERT_TRUE(crashed->ReadBlock(701, buf.data()).ok());
  EXPECT_EQ(buf[0], 0xa5);
  // And the ring is at rest afterwards.
  auto live = JournalRecovery::Scan(crashed.get(), sb, nullptr);
  ASSERT_TRUE(live.ok());
  EXPECT_TRUE(live->empty());
}

TEST(BufferCacheOrderedWritebackTest, WriteBackDirtyHoldsBlocksBack) {
  MemBlockDevice dev(kBs, 64);
  BufferCache cache(&dev, 16);
  std::vector<uint8_t> a(kBs, 1), b(kBs, 2), buf(kBs);
  ASSERT_TRUE(cache.Write(10, a.data()).ok());
  ASSERT_TRUE(cache.Write(11, b.data()).ok());
  EXPECT_EQ(cache.dirty_count(), 2u);
  const uint64_t epoch_before = cache.dirty_epoch();

  const std::unordered_set<uint64_t> hold_back = {11};
  ASSERT_TRUE(cache.WriteBackDirty(&hold_back).ok());
  EXPECT_GT(cache.dirty_epoch(), epoch_before);
  ASSERT_TRUE(dev.ReadBlock(10, buf.data()).ok());
  EXPECT_EQ(buf[0], 1);  // flushed
  ASSERT_TRUE(dev.ReadBlock(11, buf.data()).ok());
  EXPECT_EQ(buf[0], 0);  // held back
  EXPECT_EQ(cache.dirty_count(), 1u);

  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(dev.ReadBlock(11, buf.data()).ok());
  EXPECT_EQ(buf[0], 2);
  EXPECT_EQ(cache.dirty_count(), 0u);

  // Parked blocks survive even a plain Flush (the cross-session guard).
  std::vector<uint8_t> c(kBs, 3);
  ASSERT_TRUE(cache.Write(12, c.data()).ok());
  cache.ParkBlocks(std::make_shared<const std::unordered_set<uint64_t>>(
      std::unordered_set<uint64_t>{12}));
  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(dev.ReadBlock(12, buf.data()).ok());
  EXPECT_EQ(buf[0], 0);  // parked: not written
  cache.ParkBlocks(nullptr);
  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(dev.ReadBlock(12, buf.data()).ok());
  EXPECT_EQ(buf[0], 3);
}

TEST(DurableMountTest, RequiresJournalRegionAndWriteBack) {
  MemBlockDevice dev(kBs, kBlocks);
  FormatOptions fo;
  ASSERT_TRUE(PlainFs::Format(&dev, fo).ok());  // no journal region
  MountOptions mo;
  mo.durability = Durability::kJournal;
  EXPECT_TRUE(PlainFs::Mount(&dev, mo).status().IsFailedPrecondition());

  MemBlockDevice dev2(kBs, kBlocks);
  FormatOptions fo2;
  fo2.journal_blocks = 16;
  ASSERT_TRUE(PlainFs::Format(&dev2, fo2).ok());
  MountOptions wt;
  wt.durability = Durability::kJournal;
  wt.write_policy = WritePolicy::kWriteThrough;
  Status refusal = PlainFs::Mount(&dev2, wt).status();
  EXPECT_TRUE(refusal.IsInvalidArgument());
  // The refusal must name the policy the caller needs, not just reject.
  EXPECT_NE(refusal.message().find("WritePolicy::kWriteBack"),
            std::string::npos)
      << refusal.ToString();

  MountOptions ok;
  ok.durability = Durability::kJournal;
  auto fs = PlainFs::Mount(&dev2, ok);
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE((*fs)->durable());
  ASSERT_NE((*fs)->journal(), nullptr);
}

TEST(DurableMountTest, OpsCommitAndSurviveRemount) {
  MemBlockDevice dev(kBs, 4096);
  FormatOptions fo;
  fo.journal_blocks = 16;
  ASSERT_TRUE(PlainFs::Format(&dev, fo).ok());
  MountOptions mo;
  mo.durability = Durability::kJournal;
  std::string big(8 * kBs, 'x');  // spans the single-indirect boundary
  {
    auto fs = PlainFs::Mount(&dev, mo);
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->WriteFile("/a", "hello journal").ok());
    ASSERT_TRUE((*fs)->MkDir("/d").ok());
    ASSERT_TRUE((*fs)->WriteFile("/d/b", big).ok());
    ASSERT_TRUE((*fs)->Unlink("/a").ok());
    auto stats = (*fs)->journal()->stats();
    EXPECT_GE(stats.records_committed, 4u);
    EXPECT_EQ(stats.overflow_fallbacks, 0u);
  }
  {
    auto fs = PlainFs::Mount(&dev, mo);
    ASSERT_TRUE(fs.ok());
    EXPECT_FALSE((*fs)->Exists("/a"));
    auto b = (*fs)->ReadFile("/d/b");
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*b, big);
    journal::FsckReport report;
    ASSERT_TRUE((*fs)->Fsck(&report).ok());
    EXPECT_TRUE(report.clean);
    EXPECT_EQ(report.repaired_refs, 0u);
    EXPECT_EQ(report.journal_live_records, 0u);
  }
}

TEST(DurableMountTest, SyncFaultSurfacesAsCommitError) {
  test::FaultyDevice dev(kBs, 4096);
  FormatOptions fo;
  fo.journal_blocks = 16;
  ASSERT_TRUE(PlainFs::Format(&dev, fo).ok());
  MountOptions mo;
  mo.durability = Durability::kJournal;
  auto fs = PlainFs::Mount(&dev, mo);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->WriteFile("/ok", "fine").ok());
  dev.FailSyncs();
  EXPECT_FALSE((*fs)->WriteFile("/broken", "nope").ok());
  dev.Heal();
  EXPECT_TRUE((*fs)->WriteFile("/again", "fine").ok());
}

TEST(HiddenHeaderTrailerTest, SeqPartnerChecksumRoundTrip) {
  HiddenHeader h;
  h.signature.fill(0x42);
  h.type = HiddenType::kFile;
  h.size = 1234;
  h.seq = 9;
  h.partner = 777;
  h.free_pool = {5, 6, 7};
  std::vector<uint8_t> buf(kBs);
  ASSERT_TRUE(h.EncodeTo(buf.data(), buf.size()).ok());
  auto d = HiddenHeader::DecodeFrom(buf.data(), buf.size());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->seq, 9u);
  EXPECT_EQ(d->partner, 777u);
  EXPECT_EQ(d->free_pool, h.free_pool);

  // A torn tail must be detected, not decoded into a garbage inode.
  buf[kBs - 40] ^= 0xff;
  EXPECT_TRUE(HiddenHeader::DecodeFrom(buf.data(), buf.size())
                  .status()
                  .IsCorruption());

  // Legacy image (no trailer at all) still decodes.
  std::vector<uint8_t> legacy(kBs);
  ASSERT_TRUE(h.EncodeTo(legacy.data(), legacy.size()).ok());
  std::memset(legacy.data() + kBs - kHeaderTrailerBytes, 0,
              kHeaderTrailerBytes);
  auto l = HiddenHeader::DecodeFrom(legacy.data(), legacy.size());
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->seq, 0u);
  EXPECT_EQ(l->free_pool, h.free_pool);
}

TEST(BlockDeviceDurabilityTest, FileDeviceFlushMapsToFdatasync) {
  char path[] = "/tmp/stegfs_sync_test_XXXXXX";
  int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  close(fd);
  auto dev = FileBlockDevice::Create(path, kBs, 64);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ((*dev)->flush_durability(), FlushDurability::kDurable);
  ASSERT_TRUE((*dev)->Flush().ok());
  EXPECT_EQ((*dev)->sync_count(), 1u);

  (*dev)->set_flush_durability(FlushDurability::kCacheOnly);
  ASSERT_TRUE((*dev)->Flush().ok());
  EXPECT_EQ((*dev)->sync_count(), 1u);  // no fdatasync this time
  ASSERT_TRUE((*dev)->Sync().ok());     // barriers are never downgraded
  EXPECT_EQ((*dev)->sync_count(), 2u);
  std::remove(path);
}

TEST(DurableHiddenTest, DualHeaderCommitAndAnchorRecovery) {
  MemBlockDevice dev(kBs, 8192);
  StegFormatOptions fmt;
  fmt.journal_blocks = 16;
  fmt.params.dummy_file_count = 2;
  fmt.params.dummy_file_avg_bytes = 2048;
  ASSERT_TRUE(StegFs::Format(&dev, fmt).ok());
  StegFsOptions opts;
  opts.mount.durability = Durability::kJournal;
  auto fs = StegFs::Mount(&dev, opts);
  ASSERT_TRUE(fs.ok());

  HiddenVolume vol = (*fs)->VolumeCtx();
  ASSERT_TRUE(vol.durable);
  ASSERT_NE(vol.device, nullptr);
  std::string name("alice");
  name.push_back('\0');
  name += "secret";
  auto obj = HiddenObject::Create(vol, name, "key", HiddenType::kFile);
  ASSERT_TRUE(obj.ok());
  const uint64_t primary = (*obj)->header_block();
  const uint64_t anchor = (*obj)->anchor_block();
  ASSERT_NE(anchor, 0u);
  ASSERT_NE(anchor, primary);
  ASSERT_TRUE((*obj)->Write(0, "payload v1").ok());
  ASSERT_TRUE((*obj)->Sync().ok());
  (*obj).reset();

  // Tear the PRIMARY header on disk; open must recover through the
  // anchor and heal it.
  std::vector<uint8_t>* raw = dev.mutable_raw();
  for (uint32_t i = 0; i < kBs / 2; ++i) {
    (*raw)[primary * kBs + i] ^= 0x77;
  }
  (*fs)->plain()->cache()->DropAll();
  auto reopened = HiddenObject::Open(vol, name, "key");
  ASSERT_TRUE(reopened.ok());
  auto content = (*reopened)->ReadAll();
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "payload v1");
}

}  // namespace
}  // namespace stegfs
