// Nested hidden-directory operations: resolution of children through their
// parent directories (connect/share/revoke/remove by full object path).
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"

namespace stegfs {
namespace {

class StegFsNestedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 32768);
    StegFormatOptions fo;
    fo.params.dummy_file_count = 2;
    fo.params.dummy_file_avg_bytes = 64 << 10;
    fo.entropy = "nested-test";
    ASSERT_TRUE(StegFs::Format(dev_.get(), fo).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();

    // Build a three-level hidden tree from a plain tree:
    //   tree/
    //     a.txt
    //     sub/
    //       b.txt
    //       deep/
    //         c.txt
    ASSERT_TRUE(fs_->plain()->MkDir("/tree").ok());
    ASSERT_TRUE(fs_->plain()->WriteFile("/tree/a.txt", "A").ok());
    ASSERT_TRUE(fs_->plain()->MkDir("/tree/sub").ok());
    ASSERT_TRUE(fs_->plain()->WriteFile("/tree/sub/b.txt", "B").ok());
    ASSERT_TRUE(fs_->plain()->MkDir("/tree/sub/deep").ok());
    ASSERT_TRUE(fs_->plain()->WriteFile("/tree/sub/deep/c.txt", "C").ok());
    ASSERT_TRUE(fs_->StegHide("u", "/tree", "tree", "uak").ok());
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
};

TEST_F(StegFsNestedTest, ConnectChildDirectlyByFullName) {
  // Connect a grand-child without connecting the root first: resolution
  // descends tree -> tree/sub -> tree/sub/deep -> c.txt.
  ASSERT_TRUE(fs_->StegConnect("u", "tree/sub/deep/c.txt", "uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("u", "tree/sub/deep/c.txt").value(), "C");
  // Only that object (it is a file) was connected.
  EXPECT_EQ(fs_->ConnectedObjects("u").size(), 1u);
}

TEST_F(StegFsNestedTest, ConnectSubtree) {
  ASSERT_TRUE(fs_->StegConnect("u", "tree/sub", "uak").ok());
  auto connected = fs_->ConnectedObjects("u");
  // sub + b.txt + deep + c.txt.
  EXPECT_EQ(connected.size(), 4u);
  EXPECT_EQ(fs_->HiddenReadAll("u", "tree/sub/b.txt").value(), "B");
}

TEST_F(StegFsNestedTest, ShareNestedChild) {
  auto keys = crypto::RsaGenerateKeyPair(512, "nested-recipient");
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(fs_->StegGetEntry("u", "tree/sub/b.txt", "uak", "/envelope",
                                keys->public_key, "e")
                  .ok());
  ASSERT_TRUE(fs_->StegAddEntry("u", "/envelope", keys->private_key,
                                "recipient-uak")
                  .ok());
  ASSERT_TRUE(fs_->StegConnect("u", "tree/sub/b.txt", "recipient-uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("u", "tree/sub/b.txt").value(), "B");
}

TEST_F(StegFsNestedTest, RevokeNestedChildUpdatesParentDirectory) {
  ASSERT_TRUE(
      fs_->RevokeSharing("u", "tree/sub/b.txt", "uak", "tree/sub/b2.txt")
          .ok());
  // Old name is gone from the parent directory...
  EXPECT_TRUE(fs_->StegConnect("u", "tree/sub/b.txt", "uak").IsNotFound());
  // ...the new one resolves with the same content.
  ASSERT_TRUE(fs_->StegConnect("u", "tree/sub/b2.txt", "uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("u", "tree/sub/b2.txt").value(), "B");
}

TEST_F(StegFsNestedTest, RemoveNestedChild) {
  uint64_t free_before = fs_->plain()->bitmap()->free_count();
  ASSERT_TRUE(fs_->HiddenRemove("u", "tree/sub/deep", "uak").ok());
  // Subtree gone...
  EXPECT_TRUE(
      fs_->StegConnect("u", "tree/sub/deep/c.txt", "uak").IsNotFound());
  EXPECT_TRUE(fs_->StegConnect("u", "tree/sub/deep", "uak").IsNotFound());
  // ...space returned...
  EXPECT_GT(fs_->plain()->bitmap()->free_count(), free_before);
  // ...siblings survive.
  ASSERT_TRUE(fs_->StegConnect("u", "tree/sub/b.txt", "uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("u", "tree/sub/b.txt").value(), "B");
}

TEST_F(StegFsNestedTest, BogusNestedNameFails) {
  EXPECT_TRUE(fs_->StegConnect("u", "tree/nope/x", "uak").IsNotFound());
  EXPECT_TRUE(fs_->StegConnect("u", "treeX/a.txt", "uak").IsNotFound());
  // A file cannot be descended through.
  EXPECT_TRUE(fs_->StegConnect("u", "tree/a.txt/child", "uak").IsNotFound());
}

TEST_F(StegFsNestedTest, UnhideRestoresFullTree) {
  ASSERT_TRUE(fs_->StegUnhide("u", "/restored", "tree", "uak").ok());
  EXPECT_EQ(fs_->plain()->ReadFile("/restored/a.txt").value(), "A");
  EXPECT_EQ(fs_->plain()->ReadFile("/restored/sub/b.txt").value(), "B");
  EXPECT_EQ(fs_->plain()->ReadFile("/restored/sub/deep/c.txt").value(), "C");
  // Everything hidden is gone, including nested objects.
  EXPECT_TRUE(fs_->StegConnect("u", "tree", "uak").IsNotFound());
  EXPECT_TRUE(fs_->StegConnect("u", "tree/sub/b.txt", "uak").IsNotFound());
}

TEST_F(StegFsNestedTest, NestedSurvivesRemount) {
  ASSERT_TRUE(fs_->Flush().ok());
  fs_.reset();
  auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  ASSERT_TRUE(fs_->StegConnect("u", "tree/sub/deep/c.txt", "uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("u", "tree/sub/deep/c.txt").value(), "C");
}

}  // namespace
}  // namespace stegfs
