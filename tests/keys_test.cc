#include "crypto/keys.h"

#include <gtest/gtest.h>

namespace stegfs {
namespace crypto {
namespace {

TEST(KeysTest, LocatorSeedDeterministic) {
  EXPECT_EQ(LocatorSeed("uid1/path", "key"), LocatorSeed("uid1/path", "key"));
}

TEST(KeysTest, LocatorSeedDependsOnBothInputs) {
  auto base = LocatorSeed("name", "key");
  EXPECT_NE(base, LocatorSeed("name2", "key"));
  EXPECT_NE(base, LocatorSeed("name", "key2"));
}

TEST(KeysTest, SignatureDiffersFromLocatorSeed) {
  // Domain separation: the locator sequence must not reveal the signature.
  EXPECT_NE(LocatorSeed("n", "k"), FileSignature("n", "k"));
}

TEST(KeysTest, NoConcatenationAmbiguity) {
  // ("ab","c") and ("a","bc") must produce different seeds — the separator
  // byte prevents physical-name/key boundary confusion.
  EXPECT_NE(LocatorSeed("ab", "c"), LocatorSeed("a", "bc"));
  EXPECT_NE(FileSignature("ab", "c"), FileSignature("a", "bc"));
}

TEST(UakHierarchyTest, TopKeyIsHighestLevel) {
  UakHierarchy h("top-secret-key", 3);
  EXPECT_EQ(h.levels(), 3);
  EXPECT_EQ(h.KeyForLevel(3), "top-secret-key");
}

TEST(UakHierarchyTest, LowerLevelsDeriveFromHigher) {
  UakHierarchy h("master", 4);
  // Reconstructing from the level-3 key gives identical level-1..3 keys.
  UakHierarchy sub(h.KeyForLevel(3), 3);
  EXPECT_EQ(sub.KeyForLevel(1), h.KeyForLevel(1));
  EXPECT_EQ(sub.KeyForLevel(2), h.KeyForLevel(2));
  EXPECT_EQ(sub.KeyForLevel(3), h.KeyForLevel(3));
}

TEST(UakHierarchyTest, LevelsAreDistinct) {
  UakHierarchy h("master", 5);
  for (int i = 1; i <= 5; ++i) {
    for (int j = i + 1; j <= 5; ++j) {
      EXPECT_NE(h.KeyForLevel(i), h.KeyForLevel(j));
    }
  }
}

TEST(UakHierarchyTest, KeysUpToLevel) {
  UakHierarchy h("master", 4);
  auto keys = h.KeysUpToLevel(2);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], h.KeyForLevel(1));
  EXPECT_EQ(keys[1], h.KeyForLevel(2));
}

TEST(UakHierarchyTest, SingleLevel) {
  UakHierarchy h("only", 1);
  EXPECT_EQ(h.levels(), 1);
  EXPECT_EQ(h.KeyForLevel(1), "only");
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
