#include "crypto/prng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace stegfs {
namespace crypto {
namespace {

TEST(HashChainPrngTest, DeterministicForSeed) {
  Sha256Digest seed = Sha256::Hash("name||key");
  HashChainPrng a(seed, 1000), b(seed, 1000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(HashChainPrngTest, RespectsModulus) {
  Sha256Digest seed = Sha256::Hash("x");
  HashChainPrng prng(seed, 37);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(prng.Next(), 37u);
  }
}

TEST(HashChainPrngTest, DifferentSeedsDiverge) {
  HashChainPrng a(Sha256::Hash("seed-a"), 1u << 20);
  HashChainPrng b(Sha256::Hash("seed-b"), 1u << 20);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(HashChainPrngTest, ChainsPastDigestBoundary) {
  // A 32-byte digest yields 4 values before re-hashing; values 5+ exercise
  // the recursive-hash step and must still be in range and deterministic.
  Sha256Digest seed = Sha256::Hash("chain");
  HashChainPrng a(seed, 1u << 30);
  std::vector<uint64_t> first(12);
  for (auto& v : first) v = a.Next();
  HashChainPrng b(seed, 1u << 30);
  for (auto v : first) EXPECT_EQ(b.Next(), v);
}

TEST(HashChainPrngTest, CoversSpaceReasonablyUniformly) {
  HashChainPrng prng(Sha256::Hash("uniform"), 16);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 1600; ++i) counts[prng.Next()]++;
  for (int c : counts) {
    EXPECT_GT(c, 40);   // expect ~100 each
    EXPECT_LT(c, 200);
  }
}

TEST(CtrDrbgTest, Deterministic) {
  CtrDrbg a("seed"), b("seed");
  EXPECT_EQ(a.Generate(64), b.Generate(64));
}

TEST(CtrDrbgTest, SeedSeparation) {
  CtrDrbg a("seed-1"), b("seed-2");
  EXPECT_NE(a.Generate(64), b.Generate(64));
}

TEST(CtrDrbgTest, StreamsAcrossCalls) {
  CtrDrbg a("seed");
  auto part1 = a.Generate(10);
  auto part2 = a.Generate(22);
  CtrDrbg b("seed");
  auto whole = b.Generate(32);
  std::vector<uint8_t> joined = part1;
  joined.insert(joined.end(), part2.begin(), part2.end());
  EXPECT_EQ(joined, whole);
}

TEST(CtrDrbgTest, UniformBounds) {
  CtrDrbg drbg("u");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(drbg.Uniform(17), 17u);
  }
}

TEST(CtrDrbgTest, UniformSmallRangeCoverage) {
  CtrDrbg drbg("cover");
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(drbg.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(CtrDrbgTest, OutputLooksRandom) {
  CtrDrbg drbg("entropy-check");
  auto bytes = drbg.Generate(1 << 16);
  std::vector<int> counts(256, 0);
  for (uint8_t b : bytes) counts[b]++;
  // Expected 256 per value; flag if any value is off by more than 4x.
  for (int c : counts) {
    EXPECT_GT(c, 64);
    EXPECT_LT(c, 1024);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
