#include "core/hidden_directory.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"

namespace stegfs {
namespace {

TEST(HiddenDirCodecTest, EmptyRoundTrip) {
  std::string blob = EncodeHiddenDir({});
  auto back = DecodeHiddenDir(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(HiddenDirCodecTest, EntriesRoundTrip) {
  std::vector<HiddenDirEntry> entries = {
      {"reports/q1.xls", HiddenType::kFile, std::string(32, 'k')},
      {"reports", HiddenType::kDirectory, "another-fak"},
      {"name with spaces and \xff bytes", HiddenType::kFile,
       std::string("\x00\x01\x02", 3)},
  };
  auto back = DecodeHiddenDir(EncodeHiddenDir(entries));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*back)[i].name, entries[i].name);
    EXPECT_EQ((*back)[i].type, entries[i].type);
    EXPECT_EQ((*back)[i].fak, entries[i].fak);
  }
}

TEST(HiddenDirCodecTest, TruncationRejected) {
  std::string blob = EncodeHiddenDir(
      {{"file", HiddenType::kFile, "fak-material"}});
  for (size_t cut : {size_t{0}, size_t{2}, size_t{5}, blob.size() - 1}) {
    EXPECT_FALSE(DecodeHiddenDir(blob.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(HiddenDirCodecTest, BadTypeRejected) {
  std::vector<HiddenDirEntry> entries = {{"f", HiddenType::kFile, "k"}};
  std::string blob = EncodeHiddenDir(entries);
  // The type byte sits after count(4) + name-len(4) + name(1).
  blob[9] = 0x7f;
  EXPECT_TRUE(DecodeHiddenDir(blob).status().IsCorruption());
}

TEST(HiddenDirViewTest, FindUpsertErase) {
  std::vector<HiddenDirEntry> entries;
  HiddenDirView::Upsert(&entries, {"a", HiddenType::kFile, "k1"});
  HiddenDirView::Upsert(&entries, {"b", HiddenType::kFile, "k2"});
  EXPECT_EQ(HiddenDirView::Find(entries, "a"), 0);
  EXPECT_EQ(HiddenDirView::Find(entries, "b"), 1);
  EXPECT_EQ(HiddenDirView::Find(entries, "c"), -1);

  // Upsert replaces in place.
  HiddenDirView::Upsert(&entries, {"a", HiddenType::kDirectory, "k3"});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fak, "k3");

  EXPECT_TRUE(HiddenDirView::Erase(&entries, "a"));
  EXPECT_FALSE(HiddenDirView::Erase(&entries, "a"));
  EXPECT_EQ(entries.size(), 1u);
}

class HiddenDirStoreTest : public ::testing::Test {
 protected:
  HiddenDirStoreTest()
      : layout_(Layout::Compute(1024, 16384, 256)),
        dev_(layout_.block_size, layout_.num_blocks),
        cache_(&dev_, 256),
        bitmap_(layout_),
        rng_(3) {
    vol_.cache = &cache_;
    vol_.bitmap = &bitmap_;
    vol_.layout = layout_;
    vol_.rng = &rng_;
    vol_.probe_limit = 1000;
  }

  Layout layout_;
  MemBlockDevice dev_;
  BufferCache cache_;
  BlockBitmap bitmap_;
  Xoshiro rng_;
  HiddenVolume vol_;
};

TEST_F(HiddenDirStoreTest, StoreLoadThroughHiddenObject) {
  auto dir =
      HiddenObject::Create(vol_, "dir", "key", HiddenType::kDirectory);
  ASSERT_TRUE(dir.ok());
  std::vector<HiddenDirEntry> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back({"entry-" + std::to_string(i), HiddenType::kFile,
                       "fak-" + std::to_string(i)});
  }
  ASSERT_TRUE(HiddenDirView::Store(dir->get(), entries).ok());
  dir->reset();

  auto reopened = HiddenObject::Open(vol_, "dir", "key");
  ASSERT_TRUE(reopened.ok());
  auto back = HiddenDirView::Load(reopened->get());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 100u);
  EXPECT_EQ((*back)[42].name, "entry-42");
  EXPECT_EQ((*back)[42].fak, "fak-42");
}

TEST_F(HiddenDirStoreTest, LoadOnFileObjectRejected) {
  auto file = HiddenObject::Create(vol_, "f", "k", HiddenType::kFile);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(HiddenDirView::Load(file->get()).status().IsInvalidArgument());
  EXPECT_TRUE(
      HiddenDirView::Store(file->get(), {}).IsInvalidArgument());
}

TEST_F(HiddenDirStoreTest, EmptyDirectoryLoadsEmpty) {
  auto dir = HiddenObject::Create(vol_, "d", "k", HiddenType::kDirectory);
  ASSERT_TRUE(dir.ok());
  auto entries = HiddenDirView::Load(dir->get());
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
}

}  // namespace
}  // namespace stegfs
