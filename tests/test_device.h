// Reusable test doubles for the BlockDevice interface, shared by the fault
// injection suite and the concurrency stress tests.
#ifndef STEGFS_TESTS_TEST_DEVICE_H_
#define STEGFS_TESTS_TEST_DEVICE_H_

#include <atomic>
#include <cstdint>

#include "blockdev/block_device.h"
#include "blockdev/mem_block_device.h"
#include "util/status.h"

namespace stegfs {
namespace test {

// Fails reads/writes on command. Thread-safe: the fault switches and the
// countdown are atomics, so faults can be armed, triggered and healed while
// other threads are mid-I/O (the concurrency suite injects faults under
// contention).
class FaultyDevice : public BlockDevice {
 public:
  FaultyDevice(uint32_t block_size, uint64_t num_blocks)
      : inner_(block_size, num_blocks) {}

  uint32_t block_size() const override { return inner_.block_size(); }
  uint64_t num_blocks() const override { return inner_.num_blocks(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    if (fail_reads_.load(std::memory_order_acquire) && CountDown()) {
      return Status::IOError("injected read fault");
    }
    return inner_.ReadBlock(block, buf);
  }
  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    if (fail_writes_.load(std::memory_order_acquire) && CountDown()) {
      return Status::IOError("injected write fault");
    }
    return inner_.WriteBlock(block, buf);
  }
  Status Flush() override { return inner_.Flush(); }
  Status Sync() override {
    if (fail_syncs_.load(std::memory_order_acquire) && CountDown()) {
      return Status::IOError("injected sync fault");
    }
    syncs_.fetch_add(1, std::memory_order_relaxed);
    return inner_.Sync();
  }
  uint64_t sync_count() const override {
    return syncs_.load(std::memory_order_relaxed);
  }

  // Fail every I/O of the chosen kind after `after` more operations.
  void FailReads(uint64_t after = 0) {
    countdown_.store(after, std::memory_order_relaxed);
    fail_reads_.store(true, std::memory_order_release);
  }
  void FailWrites(uint64_t after = 0) {
    countdown_.store(after, std::memory_order_relaxed);
    fail_writes_.store(true, std::memory_order_release);
  }
  void FailSyncs(uint64_t after = 0) {
    countdown_.store(after, std::memory_order_relaxed);
    fail_syncs_.store(true, std::memory_order_release);
  }
  void Heal() {
    fail_reads_.store(false, std::memory_order_release);
    fail_writes_.store(false, std::memory_order_release);
    fail_syncs_.store(false, std::memory_order_release);
  }

  MemBlockDevice* inner() { return &inner_; }

 private:
  // Atomically consumes one countdown charge; true once the fuse is spent.
  bool CountDown() {
    uint64_t c = countdown_.load(std::memory_order_relaxed);
    while (c > 0) {
      if (countdown_.compare_exchange_weak(c, c - 1,
                                           std::memory_order_relaxed)) {
        return false;
      }
    }
    return true;
  }

  MemBlockDevice inner_;
  std::atomic<bool> fail_reads_{false};
  std::atomic<bool> fail_writes_{false};
  std::atomic<bool> fail_syncs_{false};
  std::atomic<uint64_t> countdown_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace test
}  // namespace stegfs

#endif  // STEGFS_TESTS_TEST_DEVICE_H_
