// Reusable test doubles for the BlockDevice interface, shared by the fault
// injection suite and the concurrency stress tests.
//
// FaultyDevice is a thin compatibility shim over the first-class
// fault::FaultInjectionBlockDevice (src/fault/) — the old switch-style API
// (FailReads/FailWrites/FailSyncs + Heal) maps onto one scheduled rule of
// the untagged-error kind, which preserves the legacy behavior exactly:
// plain Status::IOError("injected <op> fault"), armed until healed, with
// the countdown consumed only by operations of the armed kind.
#ifndef STEGFS_TESTS_TEST_DEVICE_H_
#define STEGFS_TESTS_TEST_DEVICE_H_

#include <cstdint>

#include "blockdev/mem_block_device.h"
#include "fault/fault_injection_device.h"

namespace stegfs {
namespace test {

// Fails reads/writes/syncs on command. Thread-safe: rule state is guarded
// inside FaultInjectionBlockDevice, so faults can be armed, triggered and
// healed while other threads are mid-I/O (the concurrency suite injects
// faults under contention).
class FaultyDevice : public fault::FaultInjectionBlockDevice {
 public:
  FaultyDevice(uint32_t block_size, uint64_t num_blocks)
      : fault::FaultInjectionBlockDevice(block_size, num_blocks) {}

  // Fail every I/O of the chosen kind after `after` more operations.
  void FailReads(uint64_t after = 0) {
    Arm(fault::FaultRule::Op::kRead, after);
  }
  void FailWrites(uint64_t after = 0) {
    Arm(fault::FaultRule::Op::kWrite, after);
  }
  void FailSyncs(uint64_t after = 0) {
    Arm(fault::FaultRule::Op::kSync, after);
  }
  void Heal() { ClearRules(); }

  MemBlockDevice* inner() { return mem(); }

 private:
  void Arm(fault::FaultRule::Op op, uint64_t after) {
    fault::FaultRule rule;
    rule.op = op;
    rule.kind = fault::FaultRule::Kind::kUntaggedError;
    rule.after = after;
    rule.count = fault::FaultRule::kForever;
    AddRule(rule);
  }
};

}  // namespace test
}  // namespace stegfs

#endif  // STEGFS_TESTS_TEST_DEVICE_H_
