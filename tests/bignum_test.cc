#include "crypto/bignum.h"

#include <gtest/gtest.h>

namespace stegfs {
namespace crypto {
namespace {

TEST(BigIntTest, FromToUint64) {
  EXPECT_TRUE(BigInt().IsZero());
  EXPECT_TRUE(BigInt::FromUint64(0).IsZero());
  BigInt v = BigInt::FromUint64(0x123456789abcdefULL);
  EXPECT_EQ(v.ToHex(), "123456789abcdef");
}

TEST(BigIntTest, BytesRoundTrip) {
  std::vector<uint8_t> bytes = {0x01, 0x02, 0x03, 0x04, 0x05};
  BigInt v = BigInt::FromBytes(bytes);
  EXPECT_EQ(v.ToHex(), "102030405");
  EXPECT_EQ(v.ToBytes(), bytes);
  // Padding.
  auto padded = v.ToBytes(8);
  EXPECT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[0], 0);
  EXPECT_EQ(padded[3], 0x01);
}

TEST(BigIntTest, LeadingZeroBytesTrimmed) {
  std::vector<uint8_t> bytes = {0x00, 0x00, 0xff};
  BigInt v = BigInt::FromBytes(bytes);
  EXPECT_EQ(v.BitLength(), 8u);
}

TEST(BigIntTest, Comparisons) {
  BigInt a = BigInt::FromUint64(100);
  BigInt b = BigInt::FromUint64(200);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
}

TEST(BigIntTest, AddSub) {
  BigInt a = BigInt::FromUint64(UINT64_MAX);
  BigInt b = BigInt::FromUint64(1);
  BigInt sum = a + b;  // 2^64
  EXPECT_EQ(sum.ToHex(), "10000000000000000");
  EXPECT_EQ((sum - b).ToHex(), BigInt::FromUint64(UINT64_MAX).ToHex());
  EXPECT_TRUE((a - a).IsZero());
}

TEST(BigIntTest, MultiplyMatchesKnownProduct) {
  // 0xffffffffffffffff * 0xffffffffffffffff = 0xfffffffffffffffe0000000000000001
  BigInt a = BigInt::FromUint64(UINT64_MAX);
  EXPECT_EQ((a * a).ToHex(), "fffffffffffffffe0000000000000001");
  EXPECT_TRUE((a * BigInt()).IsZero());
}

TEST(BigIntTest, Shifts) {
  BigInt one = BigInt::FromUint64(1);
  EXPECT_EQ(one.ShiftLeft(100).BitLength(), 101u);
  EXPECT_EQ(one.ShiftLeft(100).ShiftRight(100), one);
  EXPECT_TRUE(one.ShiftRight(1).IsZero());
  BigInt v = BigInt::FromUint64(0xf0f0);
  EXPECT_EQ(v.ShiftLeft(4).ToHex(), "f0f00");
  EXPECT_EQ(v.ShiftRight(4).ToHex(), "f0f");
}

TEST(BigIntTest, DivMod) {
  BigInt a = BigInt::FromUint64(1000000007ULL) * BigInt::FromUint64(999999937ULL) +
             BigInt::FromUint64(12345);
  BigInt q, r;
  BigInt::DivMod(a, BigInt::FromUint64(1000000007ULL), &q, &r);
  EXPECT_EQ(q.ToHex(), BigInt::FromUint64(999999937ULL).ToHex());
  EXPECT_EQ(r.ToHex(), BigInt::FromUint64(12345).ToHex());
}

TEST(BigIntTest, DivModSmallerDividend) {
  BigInt q, r;
  BigInt::DivMod(BigInt::FromUint64(5), BigInt::FromUint64(7), &q, &r);
  EXPECT_TRUE(q.IsZero());
  EXPECT_EQ(r.ToHex(), "5");
}

TEST(BigIntTest, ModExpSmallNumbers) {
  // 3^20 mod 1000 = 3486784401 mod 1000 = 401.
  BigInt r = BigInt::FromUint64(3).ModExp(BigInt::FromUint64(20),
                                          BigInt::FromUint64(1000));
  EXPECT_EQ(r.ToHex(), BigInt::FromUint64(401).ToHex());
}

TEST(BigIntTest, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p, a not divisible by p.
  BigInt p = BigInt::FromUint64(1000000007ULL);
  BigInt a = BigInt::FromUint64(123456789ULL);
  EXPECT_EQ(a.ModExp(p - BigInt::FromUint64(1), p).ToHex(), "1");
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(
      BigInt::Gcd(BigInt::FromUint64(48), BigInt::FromUint64(36)).ToHex(),
      "c");
  EXPECT_EQ(
      BigInt::Gcd(BigInt::FromUint64(17), BigInt::FromUint64(31)).ToHex(),
      "1");
}

TEST(BigIntTest, ModInverse) {
  BigInt inv = BigInt::FromUint64(3).ModInverse(BigInt::FromUint64(11));
  EXPECT_EQ(inv.ToHex(), "4");  // 3*4 = 12 = 1 mod 11
  // Non-invertible case.
  EXPECT_TRUE(BigInt::FromUint64(6).ModInverse(BigInt::FromUint64(9)).IsZero());
}

TEST(BigIntTest, ModInverseLarge) {
  CtrDrbg drbg("inverse-test");
  BigInt m = BigInt::GeneratePrime(128, &drbg);
  BigInt a = BigInt::Random(&drbg, m);
  if (a.IsZero()) a = BigInt::FromUint64(2);
  BigInt inv = a.ModInverse(m);
  EXPECT_EQ((a * inv).Mod(m).ToHex(), "1");
}

TEST(BigIntTest, PrimalityKnownValues) {
  CtrDrbg drbg("primality");
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt::FromUint64(2), &drbg));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt::FromUint64(3), &drbg));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt::FromUint64(1), &drbg));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt::FromUint64(4), &drbg));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt::FromUint64(65537), &drbg));
  EXPECT_TRUE(BigInt::IsProbablePrime(BigInt::FromUint64(1000000007ULL), &drbg));
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt::FromUint64(1000000007ULL * 3),
                                       &drbg));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(BigInt::IsProbablePrime(BigInt::FromUint64(561), &drbg));
}

TEST(BigIntTest, GeneratePrimeHasRequestedSize) {
  CtrDrbg drbg("genprime");
  BigInt p = BigInt::GeneratePrime(96, &drbg);
  EXPECT_EQ(p.BitLength(), 96u);
  EXPECT_TRUE(p.IsOdd());
  EXPECT_TRUE(BigInt::IsProbablePrime(p, &drbg));
}

TEST(BigIntTest, RandomBelowBound) {
  CtrDrbg drbg("rand");
  BigInt bound = BigInt::FromUint64(1000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(BigInt::Random(&drbg, bound) < bound);
  }
}

TEST(BigIntTest, MulDivRoundTripRandomized) {
  CtrDrbg drbg("roundtrip");
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBits(&drbg, 200);
    BigInt b = BigInt::RandomBits(&drbg, 90);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
