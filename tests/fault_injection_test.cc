// Failure injection: a flaky device wrapper drives error paths through the
// whole stack — errors must propagate as Status (never crash, never corrupt
// silently) and the volume must stay usable after the fault clears.
#include <gtest/gtest.h>

#include "core/stegfs.h"
#include "fs/plain_fs.h"
#include "tests/test_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

using test::FaultyDevice;

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

TEST(FaultInjectionTest, PlainFsSurfacesWriteFaults) {
  FaultyDevice dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  MountOptions mo;
  mo.write_policy = WritePolicy::kWriteThrough;
  auto fs = PlainFs::Mount(&dev, mo);
  ASSERT_TRUE(fs.ok());

  dev.FailWrites(10);
  Status s = (*fs)->WriteFile("/f", RandomData(200000, 1));
  EXPECT_TRUE(s.IsIOError()) << s.ToString();

  // After the fault clears the volume still works.
  dev.Heal();
  EXPECT_TRUE((*fs)->WriteFile("/f2", "recovered").ok());
  EXPECT_EQ((*fs)->ReadFile("/f2").value(), "recovered");
}

TEST(FaultInjectionTest, PlainFsSurfacesReadFaults) {
  FaultyDevice dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  MountOptions mo;
  mo.cache_blocks = 8;  // tiny cache so reads actually hit the device
  auto fs = PlainFs::Mount(&dev, mo);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->WriteFile("/f", RandomData(100000, 2)).ok());
  ASSERT_TRUE((*fs)->Flush().ok());

  dev.FailReads();
  EXPECT_TRUE((*fs)->ReadFile("/f").status().IsIOError());
  dev.Heal();
  EXPECT_TRUE((*fs)->ReadFile("/f").ok());
}

TEST(FaultInjectionTest, MountFailsOnUnreadableSuperblock) {
  FaultyDevice dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  dev.FailReads();
  EXPECT_TRUE(PlainFs::Mount(&dev, MountOptions{}).status().IsIOError());
}

TEST(FaultInjectionTest, HiddenWriteFaultDoesNotKillVolume) {
  FaultyDevice dev(1024, 32768);
  StegFormatOptions fo;
  fo.params.dummy_file_count = 1;
  fo.params.dummy_file_avg_bytes = 32 << 10;
  fo.entropy = "fault-test";
  ASSERT_TRUE(StegFs::Format(&dev, fo).ok());
  StegFsOptions so;
  so.mount.write_policy = WritePolicy::kWriteThrough;
  auto fs = StegFs::Mount(&dev, so);
  ASSERT_TRUE(fs.ok());

  ASSERT_TRUE(
      (*fs)->StegCreate("u", "doc", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE((*fs)->StegConnect("u", "doc", "uak").ok());

  dev.FailWrites(50);
  Status s = (*fs)->HiddenWriteAll("u", "doc", RandomData(400000, 3));
  EXPECT_TRUE(s.IsIOError()) << s.ToString();

  dev.Heal();
  // The object under write may be damaged (no journaling — the paper makes
  // no crash-atomicity claim), but the VOLUME survives: other hidden
  // objects work, and a further attempt on the damaged object returns a
  // clean Status rather than corrupting anything.
  (void)(*fs)->HiddenWriteAll("u", "doc", "retry");  // must not crash
  std::string content = RandomData(100000, 4);
  ASSERT_TRUE(
      (*fs)->StegCreate("u", "doc2", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE((*fs)->StegConnect("u", "doc2", "uak").ok());
  ASSERT_TRUE((*fs)->HiddenWriteAll("u", "doc2", content).ok());
  EXPECT_EQ((*fs)->HiddenReadAll("u", "doc2").value(), content);
}

TEST(FaultInjectionTest, FormatFailsCleanlyOnDeadDevice) {
  FaultyDevice dev(1024, 16384);
  dev.FailWrites();
  StegFormatOptions fo;
  EXPECT_TRUE(StegFs::Format(&dev, fo).IsIOError());
}

TEST(FaultInjectionTest, StatusNeverSilentlyOk) {
  // Every layer must refuse to pretend an injected fault succeeded: write
  // with faults on, heal, then verify the failed write left no phantom
  // file behind.
  FaultyDevice dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&dev, FormatOptions{}).ok());
  MountOptions mo;
  mo.write_policy = WritePolicy::kWriteThrough;
  {
    auto fs = PlainFs::Mount(&dev, mo);
    ASSERT_TRUE(fs.ok());
    dev.FailWrites(2);
    (void)(*fs)->WriteFile("/ghost", RandomData(50000, 5));
    dev.Heal();
    // Do NOT flush: drop the mount with whatever state the failure left.
    (*fs)->cache()->DropAll();
  }
  auto fs = PlainFs::Mount(&dev, mo);
  ASSERT_TRUE(fs.ok());
  // The file either does not exist or reads back a consistent prefix —
  // reading must not return IOError or crash.
  if ((*fs)->Exists("/ghost")) {
    EXPECT_TRUE((*fs)->ReadFile("/ghost").ok());
  }
}

}  // namespace
}  // namespace stegfs
