// The obs metrics layer in isolation: log-linear bucket geometry,
// percentile math, the cross-thread merge identity, registry lookup and
// Prometheus exposition, and concurrent snapshot readers (the TSan leg
// of the torn-snapshot fix).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace stegfs {
namespace obs {
namespace {

TEST(HistogramBucketsTest, SmallValuesAreExact) {
  // Buckets [0, 8) hold exact values: one value per bucket.
  for (uint64_t v = 0; v < HistogramBuckets::kSub; ++v) {
    EXPECT_EQ(HistogramBuckets::IndexOf(v), v);
    EXPECT_EQ(HistogramBuckets::UpperBound(v), v);
  }
}

TEST(HistogramBucketsTest, IndexIsMonotonicWithBoundedError) {
  size_t prev_idx = 0;
  for (uint64_t v = 1; v < (1ull << 34); v = v + v / 3 + 1) {
    size_t idx = HistogramBuckets::IndexOf(v);
    ASSERT_LT(idx, HistogramBuckets::kCount);
    EXPECT_GE(idx, prev_idx) << "index not monotonic at v=" << v;
    prev_idx = idx;
    uint64_t ub = HistogramBuckets::UpperBound(idx);
    EXPECT_GE(ub, v) << "upper bound below value at v=" << v;
    // 8 sub-buckets per octave: relative bucket width <= 1/8.
    EXPECT_LE(ub - v, v / 8 + 1) << "bucket too wide at v=" << v;
  }
}

TEST(HistogramBucketsTest, UpperBoundRoundTripsThroughIndexOf) {
  for (size_t idx = 0; idx < HistogramBuckets::kCount; ++idx) {
    EXPECT_EQ(HistogramBuckets::IndexOf(HistogramBuckets::UpperBound(idx)),
              idx);
  }
}

TEST(HistogramBucketsTest, OversizedValuesClampIntoLastBucket) {
  EXPECT_EQ(HistogramBuckets::IndexOf(~0ull), HistogramBuckets::kCount - 1);
}

TEST(HistogramTest, EmptyHistogramReportsZeroes) {
  Histogram h;
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.Percentile(0.5), 0u);
  EXPECT_EQ(s.Percentile(0.99), 0u);
  EXPECT_EQ(s.Percentile(1.0), 0u);
  EXPECT_EQ(s.MeanNanos(), 0.0);
}

TEST(HistogramTest, PercentilesOfKnownDistribution) {
  Histogram h;
  // 1..1000 microseconds, uniformly.
  for (uint64_t i = 1; i <= 1000; ++i) h.Record(i * 1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  // Percentile returns the bucket upper bound (<= 12.5% above the true
  // quantile), clamped to the observed max.
  uint64_t p50 = s.Percentile(0.5);
  EXPECT_GE(p50, 500u * 1000);
  EXPECT_LE(p50, 500u * 1000 * 9 / 8 + 1);
  EXPECT_EQ(s.Percentile(1.0), s.max);
  EXPECT_EQ(s.max, 1000u * 1000);
  EXPECT_NEAR(s.MeanNanos(), 500500.0 * 1000 / 1000, 1.0);
}

TEST(HistogramTest, CrossThreadRecordingEqualsSingleThread) {
  // The merge identity: N threads recording into one histogram must
  // produce the exact snapshot single-threaded recording produces.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  Histogram shared;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      for (int i = 0; i < kPerThread; ++i) {
        shared.Record(static_cast<uint64_t>(t) * 1000003 + i * 17 + 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  Histogram single;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      single.Record(static_cast<uint64_t>(t) * 1000003 + i * 17 + 1);
    }
  }

  HistogramSnapshot a = shared.Snapshot();
  HistogramSnapshot b = single.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(HistogramTest, SnapshotMergeEqualsCombinedRecording) {
  Histogram parts[3];
  Histogram whole;
  for (int p = 0; p < 3; ++p) {
    for (uint64_t i = 1; i <= 500; ++i) {
      uint64_t v = (p + 1) * 7919 * i;
      parts[p].Record(v);
      whole.Record(v);
    }
  }
  HistogramSnapshot merged = parts[0].Snapshot();
  merged.Merge(parts[1].Snapshot());
  merged.Merge(parts[2].Snapshot());
  HistogramSnapshot direct = whole.Snapshot();
  EXPECT_EQ(merged.count, direct.count);
  EXPECT_EQ(merged.sum, direct.sum);
  EXPECT_EQ(merged.max, direct.max);
  EXPECT_EQ(merged.buckets, direct.buckets);
}

TEST(CounterTest, AddIncrementLoadReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.load(), 42u);  // the atomic-compat alias
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistryTest, SnapshotLookupAndUnregister) {
  MetricsRegistry reg;
  Counter c;
  Histogram h;
  c.Add(7);
  h.Record(1000);
  reg.RegisterCounter("test_ops_total", "ops", &c);
  reg.RegisterHistogram("test_latency_seconds", "latency", &h);

  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("test_ops_total"), 7u);
  EXPECT_EQ(snap.counter("missing_total"), 0u);
  ASSERT_NE(snap.histogram("test_latency_seconds"), nullptr);
  EXPECT_EQ(snap.histogram("test_latency_seconds")->count, 1u);
  EXPECT_EQ(snap.histogram("missing_seconds"), nullptr);

  reg.Unregister("test_ops_total");
  reg.Unregister("test_latency_seconds");
  RegistrySnapshot after = reg.Snapshot();
  EXPECT_TRUE(after.counters.empty());
  EXPECT_TRUE(after.histograms.empty());
}

TEST(MetricsRegistryTest, TextExpositionFormat) {
  MetricsRegistry reg;
  Counter c;
  Histogram h;
  c.Add(3);
  h.Record(1500);  // 1.5 us
  h.Record(2000000);  // 2 ms
  reg.RegisterCounter("test_ops_total", "Number of ops", &c);
  reg.RegisterHistogram("test_latency_seconds", "Op latency", &h);

  std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# HELP test_ops_total Number of ops"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_ops_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_sum"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentSnapshotReadersSeeMonotonicCounts) {
  // The torn-snapshot regression test: writers hammer the instruments
  // while readers snapshot and scrape. Under TSan this also proves the
  // instrument/RegistrySnapshot paths are race-free. Counts observed by
  // one reader must never go backwards.
  MetricsRegistry reg;
  Counter c;
  Histogram h;
  reg.RegisterCounter("hammer_total", "hammered", &c);
  reg.RegisterHistogram("hammer_seconds", "hammered", &h);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.Increment();
        h.Record(12345);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      uint64_t last_count = 0;
      uint64_t last_hist = 0;
      for (int i = 0; i < 200; ++i) {
        RegistrySnapshot snap = reg.Snapshot();
        uint64_t cv = snap.counter("hammer_total");
        const HistogramSnapshot* hs = snap.histogram("hammer_seconds");
        ASSERT_NE(hs, nullptr);
        EXPECT_GE(cv, last_count);
        EXPECT_GE(hs->count, last_hist);
        last_count = cv;
        last_hist = hs->count;
        std::string text = reg.TextExposition();
        EXPECT_NE(text.find("hammer_total"), std::string::npos);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();
}

TEST(MetricsEnabledTest, DisabledTimersRecordNothing) {
  ASSERT_TRUE(MetricsEnabled());  // test binaries run with obs on
  Histogram h;
  SetMetricsEnabled(false);
  { LatencyTimer t(&h); }
  EXPECT_EQ(h.count(), 0u);
  SetMetricsEnabled(true);
  { LatencyTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyTimerTest, StopIsIdempotentAndCancelDropsSample) {
  Histogram h;
  {
    LatencyTimer t(&h);
    t.Stop();
    t.Stop();  // second Stop records nothing
  }
  EXPECT_EQ(h.count(), 1u);
  {
    LatencyTimer t(&h);
    t.Cancel();
  }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace stegfs
