// FileIo + CoalescingStore: the byte-granular engine shared by plain,
// directory and hidden file I/O.
#include "fs/file_io.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "blockdev/sim_disk.h"
#include "fs/bitmap.h"
#include "util/random.h"

namespace stegfs {
namespace {

class SeqAllocator : public BlockAllocator {
 public:
  SeqAllocator(BlockBitmap* bm) : bm_(bm) {}
  StatusOr<uint64_t> AllocateBlock() override {
    return bm_->AllocateByPolicy(AllocPolicy::kContiguous, nullptr);
  }
  Status FreeBlock(uint64_t block) override { return bm_->Free(block); }

 private:
  BlockBitmap* bm_;
};

class FileIoTest : public ::testing::Test {
 protected:
  FileIoTest()
      : layout_(Layout::Compute(512, 20000, 64)),
        dev_(layout_.block_size, layout_.num_blocks),
        cache_(&dev_, 256),
        store_(&cache_),
        bitmap_(layout_),
        alloc_(&bitmap_),
        io_(layout_.block_size) {
    inode_.type = InodeType::kFile;
  }

  std::string ReadAll() {
    std::string out;
    EXPECT_TRUE(io_.Read(inode_, 0, inode_.size, &store_, &out).ok());
    return out;
  }

  Layout layout_;
  MemBlockDevice dev_;
  BufferCache cache_;
  CacheBlockStore store_;
  BlockBitmap bitmap_;
  SeqAllocator alloc_;
  FileIo io_;
  Inode inode_;
  bool dirty_ = false;
};

TEST_F(FileIoTest, UnalignedWritesAcrossBlockBoundaries) {
  // Writes at odd offsets spanning block boundaries in odd sizes.
  Xoshiro rng(1);
  std::string expect(5000, '\0');
  for (int i = 0; i < 40; ++i) {
    uint64_t off = rng.Uniform(4000);
    uint64_t len = 1 + rng.Uniform(900);
    std::string chunk(len, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(
        io_.Write(&inode_, off, chunk, &store_, &alloc_, &dirty_).ok());
    if (off + len > expect.size()) expect.resize(off + len, '\0');
    std::copy(chunk.begin(), chunk.end(), expect.begin() + off);
  }
  expect.resize(inode_.size);
  EXPECT_EQ(ReadAll(), expect);
}

TEST_F(FileIoTest, ReadPastEofClamps) {
  ASSERT_TRUE(io_.Write(&inode_, 0, "abc", &store_, &alloc_, &dirty_).ok());
  std::string out;
  ASSERT_TRUE(io_.Read(inode_, 1, 100, &store_, &out).ok());
  EXPECT_EQ(out, "bc");
  out.clear();
  ASSERT_TRUE(io_.Read(inode_, 50, 10, &store_, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(FileIoTest, HolesReadAsZeros) {
  ASSERT_TRUE(
      io_.Write(&inode_, 3000, "tail", &store_, &alloc_, &dirty_).ok());
  std::string out;
  ASSERT_TRUE(io_.Read(inode_, 0, 3004, &store_, &out).ok());
  EXPECT_EQ(out.substr(0, 3000), std::string(3000, '\0'));
  EXPECT_EQ(out.substr(3000), "tail");
}

TEST_F(FileIoTest, TruncateGrowCreatesHole) {
  ASSERT_TRUE(io_.Write(&inode_, 0, "head", &store_, &alloc_, &dirty_).ok());
  ASSERT_TRUE(io_.Truncate(&inode_, 1000, &store_, &alloc_, &dirty_).ok());
  EXPECT_EQ(inode_.size, 1000u);
  std::string out = ReadAll();
  EXPECT_EQ(out.substr(0, 4), "head");
  EXPECT_EQ(out.substr(4), std::string(996, '\0'));
}

TEST_F(FileIoTest, WriteBeyondMaxRejected) {
  uint64_t max_bytes = io_.mapper()->MaxFileBlocks() * layout_.block_size;
  EXPECT_TRUE(io_.Write(&inode_, max_bytes, "x", &store_, &alloc_, &dirty_)
                  .IsInvalidArgument());
}

TEST_F(FileIoTest, MtimeAdvancesOnMutation) {
  uint64_t t0 = inode_.mtime;
  ASSERT_TRUE(io_.Write(&inode_, 0, "x", &store_, &alloc_, &dirty_).ok());
  EXPECT_GT(inode_.mtime, t0);
  uint64_t t1 = inode_.mtime;
  ASSERT_TRUE(io_.Truncate(&inode_, 0, &store_, &alloc_, &dirty_).ok());
  EXPECT_GT(inode_.mtime, t1);
}

TEST(CoalescingStoreTest, ReadYourWrites) {
  MemBlockDevice dev(512, 64);
  BufferCache cache(&dev, 16);
  CacheBlockStore inner(&cache);
  CoalescingStore co(&inner);

  std::vector<uint8_t> data(512, 0xab);
  ASSERT_TRUE(co.WriteBlock(5, data.data()).ok());
  std::vector<uint8_t> out(512, 0);
  ASSERT_TRUE(co.ReadBlock(5, out.data()).ok());
  EXPECT_EQ(out, data);
  // Not on the device yet.
  std::vector<uint8_t> raw(512);
  ASSERT_TRUE(dev.ReadBlock(5, raw.data()).ok());
  EXPECT_EQ(raw, std::vector<uint8_t>(512, 0));
  // Until flushed.
  ASSERT_TRUE(co.Flush().ok());
  ASSERT_TRUE(cache.Flush().ok());
  ASSERT_TRUE(dev.ReadBlock(5, raw.data()).ok());
  EXPECT_EQ(raw, data);
}

TEST(CoalescingStoreTest, RepeatedWritesReachDeviceOnce) {
  auto inner_dev = std::make_unique<MemBlockDevice>(512, 64);
  SimDisk disk(std::move(inner_dev), DiskModelConfig{});
  BufferCache cache(&disk, 16, WritePolicy::kWriteThrough);
  CacheBlockStore inner(&cache);
  CoalescingStore co(&inner);

  std::vector<uint8_t> data(512);
  for (int i = 0; i < 100; ++i) {
    data[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(co.WriteBlock(7, data.data()).ok());
  }
  ASSERT_TRUE(co.Flush().ok());
  EXPECT_EQ(disk.stats().writes, 1u);  // one device write for 100 updates
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(inner.ReadBlock(7, out.data()).ok());
  EXPECT_EQ(out[0], 99);  // last value wins
}

TEST(CoalescingStoreTest, FlushWritesAscendingLba) {
  auto inner_dev = std::make_unique<MemBlockDevice>(512, 4096);
  SimDisk disk(std::move(inner_dev), DiskModelConfig{});
  BufferCache cache(&disk, 4, WritePolicy::kWriteThrough);
  CacheBlockStore inner(&cache);
  CoalescingStore co(&inner);

  IoTrace trace;
  std::vector<uint8_t> data(512, 1);
  for (uint64_t b : {900u, 3u, 512u, 77u, 2048u}) {
    ASSERT_TRUE(co.WriteBlock(b, data.data()).ok());
  }
  disk.set_trace(&trace);
  ASSERT_TRUE(co.Flush().ok());
  disk.set_trace(nullptr);
  ASSERT_EQ(trace.size(), 5u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].lba, trace[i - 1].lba);  // elevator order
  }
}

}  // namespace
}  // namespace stegfs
