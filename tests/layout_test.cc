#include "fs/layout.h"

#include <gtest/gtest.h>

#include <vector>

namespace stegfs {
namespace {

TEST(LayoutTest, RegionsAreContiguousAndOrdered) {
  Layout l = Layout::Compute(1024, 1 << 20, 16384);
  EXPECT_EQ(l.bitmap_start, 1u);
  // 2^20 blocks at 8192 bits/block -> 128 bitmap blocks.
  EXPECT_EQ(l.bitmap_blocks, 128u);
  EXPECT_EQ(l.inode_table_start, 129u);
  // 16384 inodes * 128 B = 2 MB -> 2048 blocks.
  EXPECT_EQ(l.inode_table_blocks, 2048u);
  EXPECT_EQ(l.data_start, 2177u);
  EXPECT_EQ(l.data_blocks(), (1u << 20) - 2177u);
}

TEST(LayoutTest, RoundsUpPartialBlocks) {
  // 1000 blocks at 512 B = 4096 bits/block -> 1 bitmap block.
  Layout l = Layout::Compute(512, 1000, 100);
  EXPECT_EQ(l.bitmap_blocks, 1u);
  // 100 inodes * 128 = 12800 B -> 25 blocks at 512 B.
  EXPECT_EQ(l.inode_table_blocks, 25u);
}

TEST(LayoutTest, DataBlockPredicate) {
  Layout l = Layout::Compute(1024, 4096, 256);
  EXPECT_FALSE(l.IsDataBlock(0));
  EXPECT_FALSE(l.IsDataBlock(l.data_start - 1));
  EXPECT_TRUE(l.IsDataBlock(l.data_start));
  EXPECT_TRUE(l.IsDataBlock(4095));
  EXPECT_FALSE(l.IsDataBlock(4096));
}

TEST(SuperblockTest, EncodeDecodeRoundTrip) {
  Superblock sb;
  sb.block_size = 2048;
  sb.num_blocks = 500000;
  sb.num_inodes = 8192;
  sb.steg_formatted = 1;
  sb.steg.abandoned_fraction = 0.015;
  sb.steg.free_pool_min = 2;
  sb.steg.free_pool_max = 12;
  sb.steg.dummy_file_count = 7;
  sb.steg.dummy_file_avg_bytes = 2 << 20;
  for (size_t i = 0; i < sb.dummy_seed.size(); ++i) {
    sb.dummy_seed[i] = static_cast<uint8_t>(i);
  }

  std::vector<uint8_t> buf(2048);
  ASSERT_TRUE(sb.EncodeTo(buf.data(), buf.size()).ok());
  auto decoded = Superblock::DecodeFrom(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->block_size, 2048u);
  EXPECT_EQ(decoded->num_blocks, 500000u);
  EXPECT_EQ(decoded->num_inodes, 8192u);
  EXPECT_EQ(decoded->steg_formatted, 1);
  EXPECT_NEAR(decoded->steg.abandoned_fraction, 0.015, 1e-6);
  EXPECT_EQ(decoded->steg.free_pool_min, 2u);
  EXPECT_EQ(decoded->steg.free_pool_max, 12u);
  EXPECT_EQ(decoded->steg.dummy_file_count, 7u);
  EXPECT_EQ(decoded->steg.dummy_file_avg_bytes, 2u << 20);
  EXPECT_EQ(decoded->dummy_seed, sb.dummy_seed);
}

TEST(SuperblockTest, RejectsBadMagic) {
  std::vector<uint8_t> buf(512, 0);
  EXPECT_TRUE(Superblock::DecodeFrom(buf.data(), buf.size())
                  .status()
                  .IsCorruption());
}

TEST(SuperblockTest, RejectsGeometryOverflow) {
  Superblock sb;
  sb.block_size = 512;
  sb.num_blocks = 4;  // smaller than its own metadata
  sb.num_inodes = 10000;
  std::vector<uint8_t> buf(512);
  ASSERT_TRUE(sb.EncodeTo(buf.data(), buf.size()).ok());
  EXPECT_FALSE(Superblock::DecodeFrom(buf.data(), buf.size()).ok());
}

TEST(StegParamsTest, PaperTable1Defaults) {
  StegParams p;
  EXPECT_DOUBLE_EQ(p.abandoned_fraction, 0.01);  // 1%
  EXPECT_EQ(p.free_pool_min, 0u);
  EXPECT_EQ(p.free_pool_max, 10u);
  EXPECT_EQ(p.dummy_file_count, 10u);
  EXPECT_EQ(p.dummy_file_avg_bytes, 1u << 20);  // 1 MB
}

}  // namespace
}  // namespace stegfs
