#include "baselines/steg_rand_ida.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class StegRandIdaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 65536);  // 64 MB
    FileStoreOptions opts;
    opts.ida_m = 4;
    opts.ida_n = 8;
    auto store = StegRandIdaStore::Create(dev_.get(), opts);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
  }

  void CorruptBlock(uint64_t addr) {
    std::vector<uint8_t> noise(1024);
    Xoshiro rng(addr * 17 + 3);
    rng.FillBytes(noise.data(), noise.size());
    ASSERT_TRUE(dev_->WriteBlock(addr, noise.data()).ok());
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegRandIdaStore> store_;
};

TEST_F(StegRandIdaTest, RoundTrip) {
  std::string content = RandomData(700000, 1);
  ASSERT_TRUE(store_->WriteFile("f", "k", content).ok());
  auto data = store_->ReadFile("f", "k");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), content);
}

TEST_F(StegRandIdaTest, InvalidParamsRejected) {
  FileStoreOptions opts;
  opts.ida_m = 8;
  opts.ida_n = 4;  // n < m
  EXPECT_FALSE(StegRandIdaStore::Create(dev_.get(), opts).ok());
  opts.ida_m = 0;
  opts.ida_n = 4;
  EXPECT_FALSE(StegRandIdaStore::Create(dev_.get(), opts).ok());
}

TEST_F(StegRandIdaTest, SurvivesLossOfNMinusMFragmentsPerStripe) {
  std::string content = RandomData(200000, 2);
  ASSERT_TRUE(store_->WriteFile("f", "k", content).ok());
  ASSERT_TRUE(store_->Flush().ok());

  // Destroy fragments 0..3 (n-m = 4) of EVERY stripe — including all four
  // systematic shares, so reconstruction must come from parity.
  uint64_t payload_blocks =
      (8 + content.size() + store_->payload_bytes() - 1) /
      store_->payload_bytes();
  uint64_t stripes = (payload_blocks + store_->m() - 1) / store_->m();
  for (uint64_t s = 0; s < stripes; ++s) {
    for (int f = 0; f < store_->n() - store_->m(); ++f) {
      CorruptBlock(store_->AddressOf("f", "k", f, s));
    }
  }
  store_->DropCaches();
  auto data = store_->ReadFile("f", "k");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data.value(), content);
}

TEST_F(StegRandIdaTest, OneFragmentTooManyIsDataLoss) {
  std::string content = RandomData(100000, 3);
  ASSERT_TRUE(store_->WriteFile("f", "k", content).ok());
  ASSERT_TRUE(store_->Flush().ok());
  // Destroy n-m+1 = 5 fragments of stripe 1.
  for (int f = 0; f < store_->n() - store_->m() + 1; ++f) {
    CorruptBlock(store_->AddressOf("f", "k", f, 1));
  }
  store_->DropCaches();
  auto data = store_->ReadFile("f", "k");
  EXPECT_TRUE(data.status().IsDataLoss()) << data.status().ToString();
}

TEST_F(StegRandIdaTest, WrongKeyNotFound) {
  ASSERT_TRUE(store_->WriteFile("f", "k", "payload").ok());
  EXPECT_FALSE(store_->ReadFile("f", "wrong").ok());
}

TEST_F(StegRandIdaTest, StorageBlowUpIsNOverM) {
  // Count device writes for a known payload: should be ~ (n/m) x blocks.
  std::string content = RandomData(400000, 4);
  uint64_t payload_blocks =
      (8 + content.size() + store_->payload_bytes() - 1) /
      store_->payload_bytes();
  uint64_t stripes = (payload_blocks + store_->m() - 1) / store_->m();
  ASSERT_TRUE(store_->WriteFile("f", "k", content).ok());
  // Expected fragments written = stripes * n.
  double blowup = static_cast<double>(stripes * store_->n()) /
                  static_cast<double>(payload_blocks);
  EXPECT_NEAR(blowup, 2.0, 0.1);  // n/m = 8/4
}

TEST_F(StegRandIdaTest, BetterResilienceThanReplicationAtSameBlowUp) {
  // Functional head-to-head: r=2 replication vs (4,8) IDA, both 2x. Load
  // both until the first file dies; IDA should carry more unique data.
  // (Statistical check with a fixed seed; the fig-ext bench quantifies it.)
  auto run = [&](bool ida) -> uint64_t {
    MemBlockDevice dev(1024, 32768);  // 32 MB
    FileStoreOptions opts;
    opts.replication = 2;
    opts.ida_m = 4;
    opts.ida_n = 8;
    auto store = CreateFileStore(
        ida ? SchemeKind::kStegRandIda : SchemeKind::kStegRand, &dev, opts);
    EXPECT_TRUE(store.ok());
    uint64_t loaded = 0;
    for (int i = 0; i < 200; ++i) {
      std::string name = "v" + std::to_string(i);
      std::string content = RandomData(200000, 100 + i);
      if (!(*store)->WriteFile(name, "k", content).ok()) break;
      // Verify everything written so far still reads.
      bool all_alive = true;
      for (int j = 0; j <= i && all_alive; ++j) {
        auto d = (*store)->ReadFile("v" + std::to_string(j), "k");
        all_alive = d.ok();
      }
      if (!all_alive) break;
      loaded += content.size();
    }
    return loaded;
  };
  uint64_t replication_bytes = run(false);
  uint64_t ida_bytes = run(true);
  EXPECT_GT(ida_bytes, replication_bytes);
}

}  // namespace
}  // namespace stegfs
