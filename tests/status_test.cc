#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace stegfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, EachConstructorSetsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

TEST(StatusTest, ErrorIsNotOk) {
  Status s = Status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.ToString(), "NotFound: missing file");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::IOError("disk gone"); };
  auto outer = [&]() -> Status {
    STEGFS_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

TEST(StatusTest, ReturnIfErrorPassesOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    STEGFS_RETURN_IF_ERROR(inner());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_TRUE(outer().IsAlreadyExists());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NoSpace("full"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNoSpace());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 7);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::NotFound("no value");
    return 5;
  };
  auto use = [&](bool fail) -> Status {
    STEGFS_ASSIGN_OR_RETURN(int got, make(fail));
    EXPECT_EQ(got, 5);
    return Status::OK();
  };
  EXPECT_TRUE(use(false).ok());
  EXPECT_TRUE(use(true).IsNotFound());
}

}  // namespace
}  // namespace stegfs
