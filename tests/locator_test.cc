#include "core/locator.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "core/hidden_header.h"
#include "crypto/keys.h"

namespace stegfs {
namespace {

class LocatorTest : public ::testing::Test {
 protected:
  LocatorTest()
      : layout_(Layout::Compute(1024, 8192, 256)),
        dev_(layout_.block_size, layout_.num_blocks),
        cache_(&dev_, 256),
        bitmap_(layout_),
        locator_(&cache_, &bitmap_, layout_, 1000) {}

  // Writes a minimal valid header for (name, key) at `block`, encrypted.
  void PlantHeader(const std::string& name, const std::string& key,
                   uint64_t block) {
    HiddenHeader h;
    h.signature = crypto::FileSignature(name, key);
    h.type = HiddenType::kFile;
    std::vector<uint8_t> buf(layout_.block_size);
    ASSERT_TRUE(h.EncodeTo(buf.data(), buf.size()).ok());
    crypto::BlockCrypter crypter(key);
    crypter.EncryptBlock(block, buf.data(), buf.size());
    ASSERT_TRUE(cache_.Write(block, buf.data()).ok());
  }

  Layout layout_;
  MemBlockDevice dev_;
  BufferCache cache_;
  BlockBitmap bitmap_;
  HeaderLocator locator_;
};

TEST_F(LocatorTest, CandidatesStayInDataRegion) {
  CandidateSequence seq("name", "key", layout_);
  for (int i = 0; i < 1000; ++i) {
    uint64_t c = seq.Next();
    EXPECT_GE(c, layout_.data_start);
    EXPECT_LT(c, layout_.num_blocks);
  }
}

TEST_F(LocatorTest, CandidateSequenceIsDeterministic) {
  CandidateSequence a("name", "key", layout_);
  CandidateSequence b("name", "key", layout_);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST_F(LocatorTest, DifferentKeysGiveDifferentSequences) {
  CandidateSequence a("name", "key1", layout_);
  CandidateSequence b("name", "key2", layout_);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LE(same, 2);
}

TEST_F(LocatorTest, ClaimTakesFirstFreeCandidate) {
  CandidateSequence seq("obj", "k", layout_);
  uint64_t first = seq.Next();
  auto claim = locator_.ClaimHeaderBlock("obj", "k");
  ASSERT_TRUE(claim.ok());
  EXPECT_EQ(claim->header_block, first);
  EXPECT_EQ(claim->probes, 1u);
  EXPECT_TRUE(bitmap_.IsAllocated(first));
}

TEST_F(LocatorTest, ClaimSkipsOccupiedCandidates) {
  CandidateSequence seq("obj", "k", layout_);
  uint64_t first = seq.Next();
  uint64_t second = seq.Next();
  ASSERT_TRUE(bitmap_.Allocate(first).ok());
  auto claim = locator_.ClaimHeaderBlock("obj", "k");
  ASSERT_TRUE(claim.ok());
  EXPECT_EQ(claim->header_block, second);
  EXPECT_EQ(claim->probes, 2u);
}

TEST_F(LocatorTest, FindLocatesPlantedHeader) {
  auto claim = locator_.ClaimHeaderBlock("obj", "k");
  ASSERT_TRUE(claim.ok());
  PlantHeader("obj", "k", claim->header_block);

  crypto::BlockCrypter crypter("k");
  auto found = locator_.FindHeader("obj", "k", crypter);
  ASSERT_TRUE(found.ok()) << found.status().ToString();
  EXPECT_EQ(found->header_block, claim->header_block);
}

TEST_F(LocatorTest, FindSkipsForeignAllocatedBlocks) {
  // Occupy the first candidate with somebody else's (random) data.
  CandidateSequence seq("obj", "k", layout_);
  uint64_t first = seq.Next();
  ASSERT_TRUE(bitmap_.Allocate(first).ok());
  std::vector<uint8_t> noise(layout_.block_size, 0x5c);
  ASSERT_TRUE(cache_.Write(first, noise.data()).ok());

  auto claim = locator_.ClaimHeaderBlock("obj", "k");
  ASSERT_TRUE(claim.ok());
  PlantHeader("obj", "k", claim->header_block);

  crypto::BlockCrypter crypter("k");
  auto found = locator_.FindHeader("obj", "k", crypter);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->header_block, claim->header_block);
  EXPECT_EQ(found->probes, 2u);
}

TEST_F(LocatorTest, WrongKeyFindsNothing) {
  auto claim = locator_.ClaimHeaderBlock("obj", "k");
  ASSERT_TRUE(claim.ok());
  PlantHeader("obj", "k", claim->header_block);

  crypto::BlockCrypter wrong("wrong-key");
  EXPECT_TRUE(
      locator_.FindHeader("obj", "wrong-key", wrong).status().IsNotFound());
}

TEST_F(LocatorTest, MissingObjectIsNotFoundWithinProbeLimit) {
  crypto::BlockCrypter crypter("k");
  auto found = locator_.FindHeader("never-created", "k", crypter);
  EXPECT_TRUE(found.status().IsNotFound());
}

TEST_F(LocatorTest, ClaimFailsOnFullVolume) {
  // Allocate every data block.
  for (uint64_t b = layout_.data_start; b < layout_.num_blocks; ++b) {
    ASSERT_TRUE(bitmap_.Allocate(b).ok());
  }
  EXPECT_TRUE(locator_.ClaimHeaderBlock("x", "y").status().IsNoSpace());
}

TEST_F(LocatorTest, TwoObjectsCoexistOnOverlappingChains) {
  // Create many objects; all must remain locatable.
  crypto::BlockCrypter crypters[8] = {
      crypto::BlockCrypter("k0"), crypto::BlockCrypter("k1"),
      crypto::BlockCrypter("k2"), crypto::BlockCrypter("k3"),
      crypto::BlockCrypter("k4"), crypto::BlockCrypter("k5"),
      crypto::BlockCrypter("k6"), crypto::BlockCrypter("k7")};
  for (int i = 0; i < 8; ++i) {
    std::string name = "obj" + std::to_string(i);
    std::string key = "k" + std::to_string(i);
    auto claim = locator_.ClaimHeaderBlock(name, key);
    ASSERT_TRUE(claim.ok());
    PlantHeader(name, key, claim->header_block);
  }
  for (int i = 0; i < 8; ++i) {
    std::string name = "obj" + std::to_string(i);
    std::string key = "k" + std::to_string(i);
    EXPECT_TRUE(locator_.FindHeader(name, key, crypters[i]).ok()) << i;
  }
}

}  // namespace
}  // namespace stegfs
