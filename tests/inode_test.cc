#include "fs/inode.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"

namespace stegfs {
namespace {

TEST(InodeTest, EncodeDecodeRoundTrip) {
  Inode ino;
  ino.type = InodeType::kFile;
  ino.size = 123456789;
  ino.mtime = 42;
  for (uint32_t i = 0; i < kDirectPointers; ++i) ino.direct[i] = 100 + i;
  ino.single_indirect = 777;
  ino.double_indirect = 888;

  uint8_t buf[kInodeSize];
  ino.EncodeTo(buf);
  Inode back = Inode::DecodeFrom(buf);
  EXPECT_EQ(back.type, InodeType::kFile);
  EXPECT_EQ(back.size, 123456789u);
  EXPECT_EQ(back.mtime, 42u);
  for (uint32_t i = 0; i < kDirectPointers; ++i) {
    EXPECT_EQ(back.direct[i], 100 + i);
  }
  EXPECT_EQ(back.single_indirect, 777u);
  EXPECT_EQ(back.double_indirect, 888u);
}

TEST(InodeTest, FreeInodeIsNotInUse) {
  Inode ino;
  EXPECT_FALSE(ino.InUse());
  ino.type = InodeType::kDirectory;
  EXPECT_TRUE(ino.InUse());
}

class InodeTableTest : public ::testing::Test {
 protected:
  InodeTableTest()
      : layout_(Layout::Compute(1024, 4096, 64)),
        dev_(layout_.block_size, layout_.num_blocks),
        cache_(&dev_, 64) {}

  Layout layout_;
  MemBlockDevice dev_;
  BufferCache cache_;
};

TEST_F(InodeTableTest, AllocatePersistLoad) {
  InodeTable table(&cache_, layout_);
  table.InitEmpty();
  auto a = table.Allocate(InodeType::kDirectory);
  auto b = table.Allocate(InodeType::kFile);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  table.Get(b.value())->size = 4096;
  ASSERT_TRUE(table.PersistAll().ok());

  InodeTable loaded(&cache_, layout_);
  ASSERT_TRUE(loaded.Load().ok());
  EXPECT_EQ(loaded.Get(a.value())->type, InodeType::kDirectory);
  EXPECT_EQ(loaded.Get(b.value())->type, InodeType::kFile);
  EXPECT_EQ(loaded.Get(b.value())->size, 4096u);
  EXPECT_EQ(loaded.used_count(), 2u);
}

TEST_F(InodeTableTest, FreeMakesSlotReusable) {
  InodeTable table(&cache_, layout_);
  table.InitEmpty();
  auto a = table.Allocate(InodeType::kFile);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(table.FreeInode(a.value()).ok());
  EXPECT_FALSE(table.Get(a.value())->InUse());
  EXPECT_TRUE(table.FreeInode(a.value()).IsFailedPrecondition());
}

TEST_F(InodeTableTest, ExhaustsAtCapacity) {
  InodeTable table(&cache_, layout_);
  table.InitEmpty();
  for (uint32_t i = 0; i < layout_.num_inodes; ++i) {
    ASSERT_TRUE(table.Allocate(InodeType::kFile).ok()) << i;
  }
  EXPECT_TRUE(table.Allocate(InodeType::kFile).status().IsNoSpace());
  EXPECT_EQ(table.used_count(), layout_.num_inodes);
}

TEST_F(InodeTableTest, PersistIsIncremental) {
  InodeTable table(&cache_, layout_);
  table.InitEmpty();
  ASSERT_TRUE(table.PersistAll().ok());
  uint64_t misses_before = cache_.stats().misses;
  // Nothing dirty: PersistAll touches no blocks.
  ASSERT_TRUE(table.PersistAll().ok());
  EXPECT_EQ(cache_.stats().misses, misses_before);
}

}  // namespace
}  // namespace stegfs
