#include "baselines/steg_rand.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class StegRandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 65536);  // 64 MB
    FileStoreOptions opts;
    opts.replication = 4;
    auto store = StegRandStore::Create(dev_.get(), opts);
    ASSERT_TRUE(store.ok());
    store_ = std::move(store).value();
  }

  void CorruptBlock(uint64_t addr) {
    std::vector<uint8_t> noise(1024);
    Xoshiro rng(addr * 31 + 7);
    rng.FillBytes(noise.data(), noise.size());
    ASSERT_TRUE(dev_->WriteBlock(addr, noise.data()).ok());
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegRandStore> store_;
};

TEST_F(StegRandTest, RoundTrip) {
  std::string content = RandomData(500000, 3);
  ASSERT_TRUE(store_->WriteFile("f", "k", content).ok());
  auto data = store_->ReadFile("f", "k");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), content);
}

TEST_F(StegRandTest, WrongKeyNotFound) {
  ASSERT_TRUE(store_->WriteFile("f", "k", "payload").ok());
  EXPECT_FALSE(store_->ReadFile("f", "wrong").ok());
}

TEST_F(StegRandTest, AddressSequencesDifferPerReplica) {
  EXPECT_NE(store_->AddressOf("f", "k", 0, 0), store_->AddressOf("f", "k", 1, 0));
  EXPECT_NE(store_->AddressOf("f", "k", 0, 0), store_->AddressOf("f", "k", 0, 1));
  // And are deterministic.
  EXPECT_EQ(store_->AddressOf("f", "k", 2, 5), store_->AddressOf("f", "k", 2, 5));
}

TEST_F(StegRandTest, SurvivesPartialReplicaCorruption) {
  std::string content = RandomData(100000, 9);
  ASSERT_TRUE(store_->WriteFile("f", "k", content).ok());
  ASSERT_TRUE(store_->Flush().ok());
  // Destroy replica 0 of every block: reads must fall back to replica 1+.
  uint64_t nblocks =
      (8 + content.size() + store_->payload_bytes() - 1) /
      store_->payload_bytes();
  for (uint64_t i = 0; i < nblocks; ++i) {
    CorruptBlock(store_->AddressOf("f", "k", 0, i));
  }
  store_->DropCaches();
  auto data = store_->ReadFile("f", "k");
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data.value(), content);
}

TEST_F(StegRandTest, AllReplicasGoneIsDataLoss) {
  std::string content = RandomData(50000, 5);
  ASSERT_TRUE(store_->WriteFile("f", "k", content).ok());
  ASSERT_TRUE(store_->Flush().ok());
  // Destroy every replica of block 3.
  for (uint32_t r = 0; r < store_->replication(); ++r) {
    CorruptBlock(store_->AddressOf("f", "k", r, 3));
  }
  store_->DropCaches();
  auto data = store_->ReadFile("f", "k");
  ASSERT_TRUE(data.status().IsDataLoss()) << data.status().ToString();
}

TEST_F(StegRandTest, FirstBlockGoneIsNotFound) {
  ASSERT_TRUE(store_->WriteFile("f", "k", "content").ok());
  ASSERT_TRUE(store_->Flush().ok());
  for (uint32_t r = 0; r < store_->replication(); ++r) {
    CorruptBlock(store_->AddressOf("f", "k", r, 0));
  }
  store_->DropCaches();
  EXPECT_TRUE(store_->ReadFile("f", "k").status().IsNotFound());
}

TEST_F(StegRandTest, OverloadCausesCollisionLoss) {
  // The scheme's defining flaw: packing files near capacity destroys
  // earlier files. 64 MB volume, replication 4: load 40 x 1 MB files =
  // 160 MB of writes into 64 MB — early files must die.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(store_
                    ->WriteFile("v" + std::to_string(i),
                                "k" + std::to_string(i),
                                RandomData(1 << 20, i))
                    .ok());
  }
  int lost = 0;
  for (int i = 0; i < 40; ++i) {
    if (!store_->ReadFile("v" + std::to_string(i), "k" + std::to_string(i))
             .ok()) {
      ++lost;
    }
  }
  EXPECT_GT(lost, 0);  // data loss is intrinsic at this density
}

TEST_F(StegRandTest, LastWrittenFileSurvives) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_
                    ->WriteFile("w" + std::to_string(i),
                                "k" + std::to_string(i),
                                RandomData(1 << 20, i))
                    .ok());
  }
  // Nothing was written after w9: it must be fully intact.
  auto data = store_->ReadFile("w9", "k9");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), RandomData(1 << 20, 9));
}

}  // namespace
}  // namespace stegfs
