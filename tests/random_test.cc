#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace stegfs {
namespace {

TEST(XoshiroTest, DeterministicForSeed) {
  Xoshiro a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(XoshiroTest, DifferentSeedsDiffer) {
  Xoshiro a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(XoshiroTest, UniformInRange) {
  Xoshiro rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(XoshiroTest, UniformRangeInclusive) {
  Xoshiro rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit in 1000 draws
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // mean of U(0,1)
}

TEST(XoshiroTest, BernoulliFrequency) {
  Xoshiro rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(XoshiroTest, ShuffleIsPermutation) {
  Xoshiro rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(XoshiroTest, FillBytesTailLengths) {
  // Exercise every tail length 0..7 (the tail loop must stop at 8 bytes
  // regardless of the remaining count).
  for (size_t n = 64; n < 72; ++n) {
    Xoshiro a(123), b(123);
    std::vector<uint8_t> big(n, 0), again(n, 0);
    a.FillBytes(big.data(), n);
    b.FillBytes(again.data(), n);
    EXPECT_EQ(big, again) << n;
    EXPECT_NE(big, std::vector<uint8_t>(n, 0)) << n;
  }
}

TEST(XoshiroTest, FillBytesCoversBuffer) {
  Xoshiro rng(9);
  std::vector<uint8_t> buf(1001, 0);
  rng.FillBytes(buf.data(), buf.size());
  // Statistically impossible for >900 of 1001 random bytes to be zero.
  int zeros = static_cast<int>(std::count(buf.begin(), buf.end(), 0));
  EXPECT_LT(zeros, 50);
}

}  // namespace
}  // namespace stegfs
