// Equivalence tests for the AES dispatch tiers and the batched
// BlockCrypter entry points:
//   - every tier (t-table always; AES-NI when the CPU has it) must match
//     the FIPS 197 appendix C vectors AND the byte-wise reference
//     implementation (crypto::AesRef) on random data,
//   - the ECB / 4-lane batch entry points must match the single-block
//     path,
//   - BlockCrypter::{Encrypt,Decrypt}Blocks must be bitwise identical to
//     the per-block transforms on random batches with non-contiguous
//     block numbers, including across tiers (encrypt on one, decrypt on
//     the other).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "crypto/aes.h"
#include "crypto/aes_ref.h"
#include "crypto/block_crypter.h"
#include "util/hex.h"
#include "util/random.h"

namespace stegfs {
namespace crypto {
namespace {

// Runs the test body once per tier supported on this CPU, restoring the
// original tier afterwards.
class TierScope {
 public:
  explicit TierScope(AesTier tier) : saved_(ActiveAesTier()) {
    active_ = SetAesTier(tier);
  }
  ~TierScope() { SetAesTier(saved_); }
  bool active() const { return active_; }

 private:
  AesTier saved_;
  bool active_;
};

const AesTier kAllTiers[] = {AesTier::kTable, AesTier::kAesNi};

std::vector<uint8_t> FromHex(const std::string& h) {
  std::vector<uint8_t> out;
  EXPECT_TRUE(HexDecode(h, &out));
  return out;
}

void CheckFipsVectors() {
  struct Vec {
    const char* key;
    const char* ct;
  };
  // FIPS 197 appendix C: plaintext 00112233...eeff, key 000102....
  const char* pt_hex = "00112233445566778899aabbccddeeff";
  const Vec vecs[] = {
      {"000102030405060708090a0b0c0d0e0f",
       "69c4e0d86a7b0430d8cdb78070b4c55a"},
      {"000102030405060708090a0b0c0d0e0f1011121314151617",
       "dda97ca4864cdfe06eaf70a0ec0d7191"},
      {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
       "8ea2b7ca516745bfeafc49904b496089"},
  };
  for (const Vec& v : vecs) {
    auto key = FromHex(v.key);
    auto pt = FromHex(pt_hex);
    Aes aes(key.data(), key.size());
    uint8_t enc[16], dec[16];
    aes.EncryptBlock(pt.data(), enc);
    EXPECT_EQ(HexEncode(enc, 16), v.ct);
    aes.DecryptBlock(enc, dec);
    EXPECT_EQ(HexEncode(dec, 16), pt_hex);
  }
}

TEST(CryptoTiersTest, EveryTierMatchesFips197) {
  for (AesTier tier : kAllTiers) {
    TierScope scope(tier);
    if (!scope.active()) continue;  // AES-NI absent on this CPU
    SCOPED_TRACE(AesTierName());
    CheckFipsVectors();
  }
}

TEST(CryptoTiersTest, ReferenceMatchesFips197) {
  auto key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto pt = FromHex("00112233445566778899aabbccddeeff");
  AesRef ref(key.data(), key.size());
  uint8_t enc[16], dec[16];
  ref.EncryptBlock(pt.data(), enc);
  EXPECT_EQ(HexEncode(enc, 16), "8ea2b7ca516745bfeafc49904b496089");
  ref.DecryptBlock(enc, dec);
  EXPECT_EQ(HexEncode(dec, 16), "00112233445566778899aabbccddeeff");
}

TEST(CryptoTiersTest, TiersMatchByteWiseReferenceOnRandomData) {
  Xoshiro rng(0xc0ffee);
  for (size_t key_len : {16u, 24u, 32u}) {
    std::vector<uint8_t> key(key_len);
    rng.FillBytes(key.data(), key.size());
    AesRef ref(key.data(), key.size());
    Aes aes(key.data(), key.size());
    for (int i = 0; i < 64; ++i) {
      uint8_t pt[16], want_ct[16], want_pt[16];
      rng.FillBytes(pt, 16);
      ref.EncryptBlock(pt, want_ct);
      ref.DecryptBlock(want_ct, want_pt);
      ASSERT_EQ(std::memcmp(want_pt, pt, 16), 0);  // the reference itself
      for (AesTier tier : kAllTiers) {
        TierScope scope(tier);
        if (!scope.active()) continue;
        SCOPED_TRACE(AesTierName());
        uint8_t got[16];
        aes.EncryptBlock(pt, got);
        EXPECT_EQ(std::memcmp(got, want_ct, 16), 0);
        aes.DecryptBlock(want_ct, got);
        EXPECT_EQ(std::memcmp(got, pt, 16), 0);
      }
    }
  }
}

TEST(CryptoTiersTest, EcbBatchMatchesSingleBlocks) {
  Xoshiro rng(0xba7c4ed);
  std::vector<uint8_t> key(32);
  rng.FillBytes(key.data(), key.size());
  Aes aes(key.data(), key.size());
  // Odd count exercises the 4-wide pipeline remainder.
  const size_t kN = 23;
  std::vector<uint8_t> in(kN * 16), want(kN * 16), got(kN * 16);
  rng.FillBytes(in.data(), in.size());
  for (AesTier tier : kAllTiers) {
    TierScope scope(tier);
    if (!scope.active()) continue;
    SCOPED_TRACE(AesTierName());
    for (size_t i = 0; i < kN; ++i) {
      aes.EncryptBlock(in.data() + 16 * i, want.data() + 16 * i);
    }
    aes.EncryptBlocksEcb(in.data(), got.data(), kN);
    EXPECT_EQ(want, got);
    aes.DecryptBlocksEcb(want.data(), got.data(), kN);
    EXPECT_EQ(std::memcmp(got.data(), in.data(), in.size()), 0);
    // In-place batch.
    got = in;
    aes.EncryptBlocksEcb(got.data(), got.data(), kN);
    EXPECT_EQ(want, got);
  }
}

TEST(CryptoTiersTest, Encrypt4MatchesSingleBlocks) {
  Xoshiro rng(0x4444);
  std::vector<uint8_t> key(32);
  rng.FillBytes(key.data(), key.size());
  Aes aes(key.data(), key.size());
  uint8_t in[4][16], want[4][16], got[4][16];
  for (int l = 0; l < 4; ++l) rng.FillBytes(in[l], 16);
  for (AesTier tier : kAllTiers) {
    TierScope scope(tier);
    if (!scope.active()) continue;
    SCOPED_TRACE(AesTierName());
    for (int l = 0; l < 4; ++l) aes.EncryptBlock(in[l], want[l]);
    const uint8_t* inp[4] = {in[0], in[1], in[2], in[3]};
    uint8_t* outp[4] = {got[0], got[1], got[2], got[3]};
    aes.Encrypt4(inp, outp);
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(std::memcmp(got[l], want[l], 16), 0) << "lane " << l;
    }
  }
}

TEST(CryptoTiersTest, BlockCrypterBatchMatchesSingleNonContiguous) {
  Xoshiro rng(0x5e9);
  BlockCrypter bc("tier-equivalence-key");
  const size_t kBlock = 1024;
  // Deliberately non-contiguous, unsorted, well-spread block numbers.
  const uint64_t kBlocks[] = {7, 123456789, 42, 0, 999999999999ULL, 8191, 13};
  const size_t kN = sizeof(kBlocks) / sizeof(kBlocks[0]);

  std::vector<uint8_t> plain(kN * kBlock);
  rng.FillBytes(plain.data(), plain.size());

  for (AesTier tier : kAllTiers) {
    TierScope scope(tier);
    if (!scope.active()) continue;
    SCOPED_TRACE(AesTierName());

    // Single-block transforms = ground truth.
    std::vector<uint8_t> want = plain;
    for (size_t i = 0; i < kN; ++i) {
      bc.EncryptBlock(kBlocks[i], want.data() + i * kBlock, kBlock);
    }

    std::vector<uint8_t> got = plain;
    std::vector<CryptSpan> spans(kN);
    for (size_t i = 0; i < kN; ++i) {
      spans[i] = {kBlocks[i], got.data() + i * kBlock};
    }
    bc.EncryptBlocks(spans.data(), kN, kBlock);
    EXPECT_EQ(want, got);

    bc.DecryptBlocks(spans.data(), kN, kBlock);
    EXPECT_EQ(got, plain);
  }
}

TEST(CryptoTiersTest, CiphertextIdenticalAcrossTiers) {
  TierScope probe(AesTier::kAesNi);
  if (!probe.active()) {
    GTEST_SKIP() << "CPU has no AES-NI; single-tier machine";
  }
  BlockCrypter bc("cross-tier-key");
  std::vector<uint8_t> data(4096);
  Xoshiro rng(0xabcd);
  rng.FillBytes(data.data(), data.size());
  std::vector<uint8_t> plain = data;

  // Encrypt with hardware, decrypt with software (and vice versa).
  ASSERT_TRUE(SetAesTier(AesTier::kAesNi));
  bc.EncryptBlock(31337, data.data(), data.size());
  std::vector<uint8_t> hw_cipher = data;
  ASSERT_TRUE(SetAesTier(AesTier::kTable));
  bc.DecryptBlock(31337, data.data(), data.size());
  EXPECT_EQ(data, plain);
  bc.EncryptBlock(31337, data.data(), data.size());
  EXPECT_EQ(data, hw_cipher);  // bitwise-identical ciphertext
  ASSERT_TRUE(SetAesTier(AesTier::kAesNi));
  bc.DecryptBlock(31337, data.data(), data.size());
  EXPECT_EQ(data, plain);
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
