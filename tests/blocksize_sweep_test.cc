// Parameterized sweeps: the full stack must behave identically at every
// block size the paper evaluates (512 B .. 64 KB, figure 9's range).
#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "fs/plain_fs.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class PlainFsBlockSizeTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    uint32_t bs = GetParam();
    uint64_t blocks = (32ULL << 20) / bs;  // 32 MB volume
    dev_ = std::make_unique<MemBlockDevice>(bs, blocks);
    ASSERT_TRUE(PlainFs::Format(dev_.get(), FormatOptions{}).ok());
    auto fs = PlainFs::Mount(dev_.get(), MountOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<PlainFs> fs_;
};

TEST_P(PlainFsBlockSizeTest, LargeFileRoundTrip) {
  std::string content = RandomData(3 << 20, GetParam());
  ASSERT_TRUE(fs_->WriteFile("/big", content).ok());
  auto back = fs_->ReadFile("/big");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), content);
}

TEST_P(PlainFsBlockSizeTest, SubBlockWrites) {
  ASSERT_TRUE(fs_->CreateFile("/f").ok());
  // Writes far smaller than a block, at block-straddling offsets.
  uint32_t bs = GetParam();
  ASSERT_TRUE(fs_->WriteAt("/f", bs - 3, "HELLO").ok());
  std::string out;
  ASSERT_TRUE(fs_->ReadAt("/f", bs - 3, 5, &out).ok());
  EXPECT_EQ(out, "HELLO");
}

TEST_P(PlainFsBlockSizeTest, PersistenceAcrossRemount) {
  std::string content = RandomData(500000, GetParam() + 1);
  ASSERT_TRUE(fs_->MkDir("/d").ok());
  ASSERT_TRUE(fs_->WriteFile("/d/f", content).ok());
  ASSERT_TRUE(fs_->Flush().ok());
  fs_.reset();
  auto fs = PlainFs::Mount(dev_.get(), MountOptions{});
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ((*fs)->ReadFile("/d/f").value(), content);
}

INSTANTIATE_TEST_SUITE_P(Figure9Range, PlainFsBlockSizeTest,
                         ::testing::Values(512, 1024, 2048, 4096, 8192,
                                           16384, 32768, 65536),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "bs" + std::to_string(info.param);
                         });

class StegFsBlockSizeTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  void SetUp() override {
    uint32_t bs = GetParam();
    uint64_t blocks = (32ULL << 20) / bs;
    dev_ = std::make_unique<MemBlockDevice>(bs, blocks);
    StegFormatOptions fo;
    fo.params.dummy_file_count = 2;
    fo.params.dummy_file_avg_bytes = 64 << 10;
    fo.entropy = "sweep-" + std::to_string(bs);
    ASSERT_TRUE(StegFs::Format(dev_.get(), fo).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
};

TEST_P(StegFsBlockSizeTest, HiddenRoundTripAndRemount) {
  std::string content = RandomData(1 << 20, GetParam() + 7);
  ASSERT_TRUE(
      fs_->StegCreate("u", "vault", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("u", "vault", "uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("u", "vault", content).ok());
  ASSERT_TRUE(fs_->DisconnectAll("u").ok());
  ASSERT_TRUE(fs_->Flush().ok());

  fs_.reset();
  auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  fs_ = std::move(fs).value();
  ASSERT_TRUE(fs_->StegConnect("u", "vault", "uak").ok());
  EXPECT_EQ(fs_->HiddenReadAll("u", "vault").value(), content);
}

TEST_P(StegFsBlockSizeTest, WrongKeyStillFindsNothing) {
  ASSERT_TRUE(fs_->StegCreate("u", "x", "uak", HiddenType::kFile).ok());
  EXPECT_TRUE(fs_->StegConnect("u", "x", "bad-uak").IsNotFound());
}

TEST_P(StegFsBlockSizeTest, PlainAndHiddenCoexist) {
  std::string plain_content = RandomData(400000, GetParam() + 13);
  std::string hidden_content = RandomData(400000, GetParam() + 17);
  ASSERT_TRUE(fs_->plain()->WriteFile("/cover.bin", plain_content).ok());
  ASSERT_TRUE(
      fs_->StegCreate("u", "h", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("u", "h", "uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("u", "h", hidden_content).ok());
  EXPECT_EQ(fs_->plain()->ReadFile("/cover.bin").value(), plain_content);
  EXPECT_EQ(fs_->HiddenReadAll("u", "h").value(), hidden_content);
}

INSTANTIATE_TEST_SUITE_P(Figure9Range, StegFsBlockSizeTest,
                         ::testing::Values(512, 1024, 4096, 16384, 65536),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "bs" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace stegfs
