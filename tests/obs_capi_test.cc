// The observability export surface through the C API — and the
// deniability rule behind all of it: steg_metrics_text() must cover every
// data-path subsystem, steg_trace_export() must produce a Perfetto-shaped
// trace for a mixed plain/hidden workload, and none of it may ever touch
// the volume image (bit-identical with observability on vs off).
#include "capi/steg_api.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class ObsCapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    image_ = ::testing::TempDir() + "/obs_capi_" + tag + "_volume.img";
    std::remove(image_.c_str());
    ASSERT_EQ(steg_mkfs(image_.c_str(), 1024, 16384), STEG_OK);
    ASSERT_EQ(steg_mount(image_.c_str(), 1024, &vol_), STEG_OK);
  }

  void TearDown() override {
    steg_obs_set_enabled(1);  // never leak a disabled state to other tests
    if (vol_ != nullptr) {
      EXPECT_EQ(steg_unmount(vol_), STEG_OK);
    }
    std::remove(image_.c_str());
  }

  // A little of everything: plain ops, hidden ops, a durable flush.
  void MixedWorkload() {
    ASSERT_EQ(steg_plain_write(vol_, "/obs.txt", "0123456789", 10), STEG_OK);
    char buf[64];
    size_t n = 0;
    ASSERT_EQ(steg_plain_read(vol_, "/obs.txt", buf, sizeof(buf), &n),
              STEG_OK);
    ASSERT_EQ(steg_create(vol_, "alice", "vault", "uak", STEG_TYPE_FILE),
              STEG_OK);
    ASSERT_EQ(steg_connect(vol_, "alice", "vault", "uak"), STEG_OK);
    std::string secret(4096, 's');
    ASSERT_EQ(
        steg_hidden_write(vol_, "alice", "vault", secret.data(),
                          secret.size()),
        STEG_OK);
    std::vector<char> out(8192);
    ASSERT_EQ(steg_hidden_read(vol_, "alice", "vault", out.data(),
                               out.size(), &n),
              STEG_OK);
    EXPECT_EQ(n, secret.size());
  }

  std::string image_;
  stegfs_volume* vol_ = nullptr;
};

TEST_F(ObsCapiTest, MetricsTextCoversEveryDataPathSubsystem) {
  MixedWorkload();
  char* text = nullptr;
  size_t len = 0;
  ASSERT_EQ(steg_metrics_text(vol_, &text, &len), STEG_OK);
  ASSERT_NE(text, nullptr);
  std::string metrics(text, len);
  steg_buffer_free(text);

  // One counter and one histogram family per subsystem the issue names:
  // device, cache, crypto, journal, redundancy, plus the op-level views.
  const char* kExpected[] = {
      "stegfs_device_blocks_read_total",
      "stegfs_device_read_seconds",
      "stegfs_cache_hits_total",
      "stegfs_cache_misses_total",
      "stegfs_cache_fill_seconds",
      "stegfs_crypto_blocks_encrypted_total",
      "stegfs_crypto_encrypt_seconds",
      "stegfs_journal_records_committed_total",
      "stegfs_journal_commit_seconds",
      "stegfs_red_stripes_encoded_total",
      "stegfs_red_decode_seconds",
      "stegfs_fs_write_seconds",
      "stegfs_hidden_read_seconds",
      "stegfs_hidden_write_seconds",
  };
  for (const char* name : kExpected) {
    EXPECT_NE(metrics.find(name), std::string::npos) << "missing " << name;
  }
  // Prometheus exposition shape.
  EXPECT_NE(metrics.find("# TYPE stegfs_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE stegfs_hidden_read_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("_bucket{le=\"+Inf\"}"), std::string::npos);

  // The workload actually moved the instruments.
  EXPECT_EQ(metrics.find("stegfs_hidden_read_seconds_count 0\n"),
            std::string::npos)
      << "hidden read histogram never recorded";

  EXPECT_EQ(steg_metrics_text(nullptr, &text, &len), STEG_ERR_INVALID);
  EXPECT_EQ(steg_metrics_text(vol_, nullptr, &len), STEG_ERR_INVALID);
}

TEST_F(ObsCapiTest, TraceExportProducesPerfettoShapedJson) {
  ASSERT_EQ(steg_trace_start(vol_), STEG_OK);
  MixedWorkload();
  ASSERT_EQ(steg_trace_stop(vol_), STEG_OK);

  char* json = nullptr;
  size_t len = 0;
  ASSERT_EQ(steg_trace_export(vol_, &json, &len), STEG_OK);
  ASSERT_NE(json, nullptr);
  std::string trace(json, len);
  steg_buffer_free(json);

  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  // Both halves of the mixed workload produced spans.
  EXPECT_NE(trace.find("\"cat\":\"fs\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"hidden\""), std::string::npos);
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');

  // Spans recorded while tracing was stopped would be a leak of the
  // Start/Stop contract: a fresh export after more (untraced) work must
  // not grow.
  size_t before = trace.size();
  char tmp[32];
  size_t n = 0;
  ASSERT_EQ(steg_plain_read(vol_, "/obs.txt", tmp, sizeof(tmp), &n), STEG_OK);
  ASSERT_EQ(steg_trace_export(vol_, &json, &len), STEG_OK);
  EXPECT_EQ(len, before);
  steg_buffer_free(json);
}

TEST_F(ObsCapiTest, ObsToggleRoundTrips) {
  EXPECT_EQ(steg_obs_enabled(), 1);
  steg_obs_set_enabled(0);
  EXPECT_EQ(steg_obs_enabled(), 0);
  steg_obs_set_enabled(1);
  EXPECT_EQ(steg_obs_enabled(), 1);
}

TEST_F(ObsCapiTest, ConcurrentStatsAndScrapeReaders) {
  // The torn-snapshot fix, end to end: writers mutate the volume while
  // readers pull steg_stats and steg_metrics_text. Every snapshot must be
  // internally consistent (hit rate derivable from its own counters) and
  // cumulative counters must never run backwards.
  ASSERT_EQ(steg_create(vol_, "bob", "obj", "uak", STEG_TYPE_FILE), STEG_OK);
  ASSERT_EQ(steg_connect(vol_, "bob", "obj", "uak"), STEG_OK);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::string data(2048, 'w');
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::string path = "/w" + std::to_string(i++ % 8);
      ASSERT_EQ(steg_plain_write(vol_, path.c_str(), data.data(),
                                 data.size()),
                STEG_OK);
      ASSERT_EQ(steg_hidden_write(vol_, "bob", "obj", data.data(),
                                  data.size()),
                STEG_OK);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      uint64_t last_hits = 0;
      for (int i = 0; i < 50; ++i) {
        stegfs_stats s;
        ASSERT_EQ(steg_stats(vol_, &s), STEG_OK);
        EXPECT_GE(s.cache_hits, last_hits);
        last_hits = s.cache_hits;
        EXPECT_GE(s.cache_hit_rate, 0.0);
        EXPECT_LE(s.cache_hit_rate, 1.0);
        char* text = nullptr;
        size_t len = 0;
        ASSERT_EQ(steg_metrics_text(vol_, &text, &len), STEG_OK);
        EXPECT_GT(len, 0u);
        steg_buffer_free(text);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  writer.join();
}

// The deniability acceptance test: the same mkfs + workload + unmount
// sequence must leave byte-identical volume images whether observability
// (metrics + tracing + slow-op log) ran or not. Every on-volume byte is
// accounted for by the deterministic data path; obs state lives only in
// process memory.
TEST(ObsDeniabilityTest, VolumeImageBitIdenticalWithObsOnAndOff) {
  const std::string image =
      ::testing::TempDir() + "/obs_deniability_volume.img";

  auto run = [&image](bool obs_on) -> std::string {
    std::remove(image.c_str());
    steg_obs_set_enabled(obs_on ? 1 : 0);
    EXPECT_EQ(steg_mkfs(image.c_str(), 1024, 16384), STEG_OK);
    stegfs_volume* vol = nullptr;
    EXPECT_EQ(steg_mount(image.c_str(), 1024, &vol), STEG_OK);
    if (vol == nullptr) return "";
    if (obs_on) {
      EXPECT_EQ(steg_trace_start(vol), STEG_OK);
    }
    EXPECT_EQ(steg_plain_write(vol, "/deny.txt", "same either way", 15),
              STEG_OK);
    EXPECT_EQ(steg_create(vol, "carol", "hidden", "uak", STEG_TYPE_FILE),
              STEG_OK);
    EXPECT_EQ(steg_connect(vol, "carol", "hidden", "uak"), STEG_OK);
    std::string secret(3000, 'h');
    EXPECT_EQ(
        steg_hidden_write(vol, "carol", "hidden", secret.data(),
                          secret.size()),
        STEG_OK);
    char buf[64];
    size_t n = 0;
    EXPECT_EQ(steg_plain_read(vol, "/deny.txt", buf, sizeof(buf), &n),
              STEG_OK);
    if (obs_on) {
      char* out = nullptr;
      size_t len = 0;
      EXPECT_EQ(steg_metrics_text(vol, &out, &len), STEG_OK);
      steg_buffer_free(out);
      EXPECT_EQ(steg_trace_stop(vol), STEG_OK);
      EXPECT_EQ(steg_trace_export(vol, &out, &len), STEG_OK);
      steg_buffer_free(out);
    }
    EXPECT_EQ(steg_unmount(vol), STEG_OK);
    std::string bytes = ReadWholeFile(image);
    std::remove(image.c_str());
    return bytes;
  };

  std::string with_obs = run(true);
  std::string without_obs = run(false);
  steg_obs_set_enabled(1);

  ASSERT_FALSE(with_obs.empty());
  ASSERT_EQ(with_obs.size(), without_obs.size());
  EXPECT_TRUE(with_obs == without_obs)
      << "observability left a footprint on the volume image";
}

}  // namespace
