#include "crypto/rsa.h"

#include <gtest/gtest.h>

namespace stegfs {
namespace crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  // Key generation is the slow part; share one pair across tests.
  static void SetUpTestSuite() {
    auto pair = RsaGenerateKeyPair(512, "rsa-test-fixture");
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    pair_ = new RsaKeyPair(std::move(pair).value());
  }
  static void TearDownTestSuite() {
    delete pair_;
    pair_ = nullptr;
  }
  static RsaKeyPair* pair_;
};

RsaKeyPair* RsaTest::pair_ = nullptr;

TEST_F(RsaTest, KeyGenerationProducesRequestedModulus) {
  EXPECT_EQ(pair_->public_key.n.BitLength(), 512u);
  EXPECT_EQ(pair_->public_key.e.ToHex(), "10001");  // 65537
  EXPECT_EQ(pair_->private_key.n, pair_->public_key.n);
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  std::string msg = "file=/hidden/budget.xls fak=0123456789abcdef";
  auto ct = RsaEncrypt(pair_->public_key, msg, "entropy-1");
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(pair_->private_key, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), msg);
}

TEST_F(RsaTest, EmptyMessage) {
  auto ct = RsaEncrypt(pair_->public_key, "", "entropy-2");
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(pair_->private_key, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pt.value().empty());
}

TEST_F(RsaTest, LongMessage) {
  std::string msg(10000, 'm');
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<char>(i % 251);
  auto ct = RsaEncrypt(pair_->public_key, msg, "entropy-3");
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(pair_->private_key, ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), msg);
}

TEST_F(RsaTest, CiphertextDiffersAcrossEntropy) {
  auto c1 = RsaEncrypt(pair_->public_key, "same message", "entropy-a");
  auto c2 = RsaEncrypt(pair_->public_key, "same message", "entropy-b");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST_F(RsaTest, TamperedCiphertextRejected) {
  auto ct = RsaEncrypt(pair_->public_key, "secret", "entropy-4");
  ASSERT_TRUE(ct.ok());
  std::string tampered = ct.value();
  tampered[tampered.size() / 2] ^= 0x40;
  auto pt = RsaDecrypt(pair_->private_key, tampered);
  EXPECT_FALSE(pt.ok());
}

TEST_F(RsaTest, TruncatedCiphertextRejected) {
  auto ct = RsaEncrypt(pair_->public_key, "secret", "entropy-5");
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(pair_->private_key, ct.value().substr(0, 10));
  EXPECT_FALSE(pt.ok());
}

TEST_F(RsaTest, WrongKeyRejected) {
  auto other = RsaGenerateKeyPair(512, "other-key-seed");
  ASSERT_TRUE(other.ok());
  auto ct = RsaEncrypt(pair_->public_key, "secret", "entropy-6");
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(other->private_key, ct.value());
  EXPECT_FALSE(pt.ok());
}

TEST_F(RsaTest, KeySerializationRoundTrip) {
  std::string pub_blob = pair_->public_key.Serialize();
  std::string priv_blob = pair_->private_key.Serialize();
  auto pub = RsaPublicKey::Deserialize(pub_blob);
  auto priv = RsaPrivateKey::Deserialize(priv_blob);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE(priv.ok());
  auto ct = RsaEncrypt(pub.value(), "round trip", "entropy-7");
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(priv.value(), ct.value());
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt.value(), "round trip");
}

TEST_F(RsaTest, MalformedKeyBlobsRejected) {
  EXPECT_FALSE(RsaPublicKey::Deserialize("junk").ok());
  EXPECT_FALSE(RsaPrivateKey::Deserialize("").ok());
}

TEST(RsaStandaloneTest, RejectsTinyModulus) {
  EXPECT_FALSE(RsaGenerateKeyPair(128, "tiny").ok());
}

TEST(RsaStandaloneTest, DeterministicKeygenForSeed) {
  auto a = RsaGenerateKeyPair(512, "same-seed");
  auto b = RsaGenerateKeyPair(512, "same-seed");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->public_key.n.ToHex(), b->public_key.n.ToHex());
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
