#include "core/backup.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

class BackupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 32768);
    StegFormatOptions fo;
    fo.params.dummy_file_count = 2;
    fo.params.dummy_file_avg_bytes = 32 << 10;
    fo.entropy = "backup-test";
    ASSERT_TRUE(StegFs::Format(dev_.get(), fo).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
};

TEST_F(BackupTest, RoundTripPreservesPlainAndHidden) {
  std::string hidden_content = RandomData(250000, 1);
  std::string plain_content = RandomData(120000, 2);

  ASSERT_TRUE(fs_->plain()->MkDir("/docs").ok());
  ASSERT_TRUE(fs_->plain()->WriteFile("/docs/visible.txt", plain_content).ok());
  ASSERT_TRUE(fs_->StegCreate("u", "vault", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("u", "vault", "uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("u", "vault", hidden_content).ok());
  ASSERT_TRUE(fs_->DisconnectAll("u").ok());

  BackupStats stats;
  auto image = StegBackup(fs_.get(), &stats);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_GT(stats.imaged_blocks, 250u);  // hidden + pool + dummies + abandoned
  EXPECT_EQ(stats.plain_files, 1u);
  EXPECT_EQ(stats.plain_dirs, 1u);

  // "Damage" the volume: recover onto a fresh device.
  MemBlockDevice fresh(1024, 32768);
  ASSERT_TRUE(StegRecover(&fresh, image.value()).ok());

  auto recovered = StegFs::Mount(&fresh, StegFsOptions{});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto plain_back = (*recovered)->plain()->ReadFile("/docs/visible.txt");
  ASSERT_TRUE(plain_back.ok());
  EXPECT_EQ(plain_back.value(), plain_content);

  ASSERT_TRUE((*recovered)->StegConnect("u", "vault", "uak").ok());
  auto hidden_back = (*recovered)->HiddenReadAll("u", "vault");
  ASSERT_TRUE(hidden_back.ok());
  EXPECT_EQ(hidden_back.value(), hidden_content);
}

TEST_F(BackupTest, RecoveredVolumeSupportsDummyMaintenance) {
  auto image = StegBackup(fs_.get());
  ASSERT_TRUE(image.ok());
  MemBlockDevice fresh(1024, 32768);
  ASSERT_TRUE(StegRecover(&fresh, image.value()).ok());
  auto fs = StegFs::Mount(&fresh, StegFsOptions{});
  ASSERT_TRUE(fs.ok());
  EXPECT_TRUE((*fs)->MaintenanceTick().ok());
}

TEST_F(BackupTest, HiddenFilesRestoredToOriginalAddresses) {
  ASSERT_TRUE(fs_->StegCreate("u", "pin", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("u", "pin", "uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("u", "pin", RandomData(50000, 3)).ok());
  ASSERT_TRUE(fs_->DisconnectAll("u").ok());
  ASSERT_TRUE(fs_->Flush().ok());

  // Record which blocks are allocated-but-unlisted before backup.
  std::vector<uint8_t> referenced;
  ASSERT_TRUE(fs_->plain()->CollectReferencedBlocks(&referenced).ok());
  std::vector<uint64_t> unlisted_before;
  const Layout& l = fs_->plain()->layout();
  for (uint64_t b = l.data_start; b < l.num_blocks; ++b) {
    if (fs_->plain()->bitmap()->IsAllocated(b) && !referenced[b]) {
      unlisted_before.push_back(b);
    }
  }

  auto image = StegBackup(fs_.get());
  ASSERT_TRUE(image.ok());
  MemBlockDevice fresh(1024, 32768);
  ASSERT_TRUE(StegRecover(&fresh, image.value()).ok());
  auto fs2 = StegFs::Mount(&fresh, StegFsOptions{});
  ASSERT_TRUE(fs2.ok());

  // All previously unlisted blocks are allocated at the same addresses.
  for (uint64_t b : unlisted_before) {
    EXPECT_TRUE((*fs2)->plain()->bitmap()->IsAllocated(b)) << b;
  }
}

TEST_F(BackupTest, RecoverRejectsWrongGeometry) {
  auto image = StegBackup(fs_.get());
  ASSERT_TRUE(image.ok());
  MemBlockDevice small(1024, 1024);
  EXPECT_TRUE(StegRecover(&small, image.value()).IsInvalidArgument());
  MemBlockDevice wrong_bs(2048, 32768);
  EXPECT_TRUE(StegRecover(&wrong_bs, image.value()).IsInvalidArgument());
}

TEST_F(BackupTest, RecoverRejectsCorruptImage) {
  auto image = StegBackup(fs_.get());
  ASSERT_TRUE(image.ok());
  MemBlockDevice fresh(1024, 32768);
  EXPECT_FALSE(StegRecover(&fresh, image->substr(0, 100)).ok());
  std::string garbage = "not a backup image";
  EXPECT_TRUE(StegRecover(&fresh, garbage).IsCorruption());
}

TEST_F(BackupTest, BackupIsMuchSmallerThanFullImage) {
  // The whole point of 3.3: only hidden + abandoned + dummy blocks are
  // imaged, not the full 32 MB device.
  ASSERT_TRUE(
      fs_->plain()->WriteFile("/big.bin", RandomData(4 << 20, 8)).ok());
  BackupStats stats;
  auto image = StegBackup(fs_.get(), &stats);
  ASSERT_TRUE(image.ok());
  // Plain content is stored logically (4 MB) + hidden population (< 1 MB);
  // far less than the 32 MB device.
  EXPECT_LT(stats.image_bytes, 8u << 20);
}

}  // namespace
}  // namespace stegfs
