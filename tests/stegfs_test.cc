#include "core/stegfs.h"

#include <gtest/gtest.h>

#include "blockdev/mem_block_device.h"
#include "crypto/keys.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

// 32 MB volume with small dummies so tests stay fast.
StegFormatOptions FastFormat() {
  StegFormatOptions o;
  o.params.dummy_file_count = 2;
  o.params.dummy_file_avg_bytes = 64 << 10;
  o.entropy = "test-volume";
  return o;
}

class StegFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<MemBlockDevice>(1024, 32768);
    ASSERT_TRUE(StegFs::Format(dev_.get(), FastFormat()).ok());
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok()) << fs.status().ToString();
    fs_ = std::move(fs).value();
  }

  void Remount() {
    ASSERT_TRUE(fs_->Flush().ok());
    fs_.reset();
    auto fs = StegFs::Mount(dev_.get(), StegFsOptions{});
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(fs).value();
  }

  std::unique_ptr<MemBlockDevice> dev_;
  std::unique_ptr<StegFs> fs_;
};

TEST_F(StegFsTest, MountRequiresStegFormat) {
  MemBlockDevice plain_dev(1024, 16384);
  ASSERT_TRUE(PlainFs::Format(&plain_dev, FormatOptions{}).ok());
  EXPECT_TRUE(StegFs::Mount(&plain_dev, StegFsOptions{})
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(StegFsTest, PlainApiWorksAlongside) {
  ASSERT_TRUE(fs_->plain()->WriteFile("/readme.txt", "visible data").ok());
  auto data = fs_->plain()->ReadFile("/readme.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "visible data");
}

TEST_F(StegFsTest, CreateConnectWriteReadDisconnect) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "budget.xls", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "budget.xls", "uak-a").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "budget.xls", "Q1: $1m").ok());
  auto data = fs_->HiddenReadAll("alice", "budget.xls");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "Q1: $1m");

  ASSERT_TRUE(fs_->StegDisconnect("alice", "budget.xls").ok());
  EXPECT_TRUE(fs_->HiddenReadAll("alice", "budget.xls")
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(StegFsTest, HiddenDataSurvivesRemount) {
  std::string content = RandomData(500000, 12);
  ASSERT_TRUE(
      fs_->StegCreate("alice", "vault.bin", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "vault.bin", "uak-a").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "vault.bin", content).ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());
  Remount();

  ASSERT_TRUE(fs_->StegConnect("alice", "vault.bin", "uak-a").ok());
  auto data = fs_->HiddenReadAll("alice", "vault.bin");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), content);
}

TEST_F(StegFsTest, WrongUakFindsNothing) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "secret", "uak-a", HiddenType::kFile).ok());
  EXPECT_TRUE(
      fs_->StegConnect("alice", "secret", "wrong-uak").IsNotFound());
}

TEST_F(StegFsTest, UsersAreIsolated) {
  // Same object name, same UAK string, different uid: distinct objects
  // (physical name = uid || name, paper 3.1).
  ASSERT_TRUE(fs_->StegCreate("alice", "notes", "shared-uak",
                              HiddenType::kFile).ok());
  ASSERT_TRUE(
      fs_->StegCreate("bob", "notes", "shared-uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "notes", "shared-uak").ok());
  ASSERT_TRUE(fs_->StegConnect("bob", "notes", "shared-uak").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "notes", "alice data").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("bob", "notes", "bob data").ok());
  EXPECT_EQ(fs_->HiddenReadAll("alice", "notes").value(), "alice data");
  EXPECT_EQ(fs_->HiddenReadAll("bob", "notes").value(), "bob data");
}

TEST_F(StegFsTest, StegHideConvertsPlainFile) {
  std::string content = RandomData(100000, 3);
  ASSERT_TRUE(fs_->plain()->WriteFile("/exposed.doc", content).ok());
  ASSERT_TRUE(
      fs_->StegHide("alice", "/exposed.doc", "hidden.doc", "uak-a").ok());

  // Plain file is gone ("the plain source object is deleted").
  EXPECT_FALSE(fs_->plain()->Exists("/exposed.doc"));

  ASSERT_TRUE(fs_->StegConnect("alice", "hidden.doc", "uak-a").ok());
  auto data = fs_->HiddenReadAll("alice", "hidden.doc");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), content);
}

TEST_F(StegFsTest, StegUnhideConvertsBack) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "h.txt", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "h.txt", "uak-a").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "h.txt", "now you see me").ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());

  ASSERT_TRUE(fs_->StegUnhide("alice", "/visible.txt", "h.txt", "uak-a").ok());
  auto data = fs_->plain()->ReadFile("/visible.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "now you see me");
  // Hidden object gone from the UAK directory.
  EXPECT_TRUE(fs_->StegConnect("alice", "h.txt", "uak-a").IsNotFound());
}

TEST_F(StegFsTest, HideDirectoryRecursively) {
  ASSERT_TRUE(fs_->plain()->MkDir("/project").ok());
  ASSERT_TRUE(fs_->plain()->WriteFile("/project/a.txt", "alpha").ok());
  ASSERT_TRUE(fs_->plain()->MkDir("/project/sub").ok());
  ASSERT_TRUE(fs_->plain()->WriteFile("/project/sub/b.txt", "beta").ok());

  ASSERT_TRUE(fs_->StegHide("alice", "/project", "proj", "uak-a").ok());
  EXPECT_FALSE(fs_->plain()->Exists("/project"));

  // Connecting the directory reveals all offspring (paper API 4).
  ASSERT_TRUE(fs_->StegConnect("alice", "proj", "uak-a").ok());
  auto connected = fs_->ConnectedObjects("alice");
  EXPECT_EQ(connected.size(), 4u);  // proj, proj/a.txt, proj/sub, proj/sub/b.txt
  EXPECT_EQ(fs_->HiddenReadAll("alice", "proj/a.txt").value(), "alpha");
  EXPECT_EQ(fs_->HiddenReadAll("alice", "proj/sub/b.txt").value(), "beta");
}

TEST_F(StegFsTest, UnhideDirectoryRecursively) {
  ASSERT_TRUE(fs_->plain()->MkDir("/d").ok());
  ASSERT_TRUE(fs_->plain()->WriteFile("/d/f1", "one").ok());
  ASSERT_TRUE(fs_->plain()->WriteFile("/d/f2", "two").ok());
  ASSERT_TRUE(fs_->StegHide("alice", "/d", "dirobj", "uak-a").ok());
  ASSERT_TRUE(fs_->StegUnhide("alice", "/restored", "dirobj", "uak-a").ok());
  EXPECT_EQ(fs_->plain()->ReadFile("/restored/f1").value(), "one");
  EXPECT_EQ(fs_->plain()->ReadFile("/restored/f2").value(), "two");
}

TEST_F(StegFsTest, HiddenRemoveFreesSpaceAndEntry) {
  uint64_t free_before = fs_->plain()->bitmap()->free_count();
  ASSERT_TRUE(
      fs_->StegCreate("alice", "temp", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "temp", "uak-a").ok());
  ASSERT_TRUE(
      fs_->HiddenWriteAll("alice", "temp", RandomData(200000, 5)).ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());
  ASSERT_TRUE(fs_->HiddenRemove("alice", "temp", "uak-a").ok());
  EXPECT_TRUE(fs_->StegConnect("alice", "temp", "uak-a").IsNotFound());
  // Some blocks remain for the (now-nonempty) UAK directory itself; the
  // bulk must have been returned.
  uint64_t free_after = fs_->plain()->bitmap()->free_count();
  EXPECT_GT(free_after + 30, free_before);
}

TEST_F(StegFsTest, SharingViaEntryFiles) {
  // Owner alice shares "plans" with recipient bob (paper figure 4).
  auto bob_keys = crypto::RsaGenerateKeyPair(512, "bob-keypair");
  ASSERT_TRUE(bob_keys.ok());

  ASSERT_TRUE(
      fs_->StegCreate("alice", "plans", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "plans", "uak-a").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "plans", "the master plan").ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());

  ASSERT_TRUE(fs_->StegGetEntry("alice", "plans", "uak-a", "/entry.bin",
                                bob_keys->public_key, "share-entropy")
                  .ok());
  EXPECT_TRUE(fs_->plain()->Exists("/entry.bin"));

  // Bob imports the entry with his private key under his own UAK. Note the
  // object's physical name embeds ALICE's uid, so bob must read it through
  // the owner's uid (sharing grants access to the owner's object).
  ASSERT_TRUE(fs_->StegAddEntry("alice", "/entry.bin", bob_keys->private_key,
                                "uak-b")
                  .ok());
  EXPECT_FALSE(fs_->plain()->Exists("/entry.bin"));  // ciphertext destroyed

  ASSERT_TRUE(fs_->StegConnect("alice", "plans", "uak-b").ok());
  EXPECT_EQ(fs_->HiddenReadAll("alice", "plans").value(), "the master plan");
}

TEST_F(StegFsTest, RevocationInvalidatesOldFak) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "doc", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "doc", "uak-a").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "doc", "v1 content").ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());

  // Simulate a leaked FAK: capture it via a shared entry in another UAK.
  auto eve_keys = crypto::RsaGenerateKeyPair(512, "eve-keypair");
  ASSERT_TRUE(eve_keys.ok());
  ASSERT_TRUE(fs_->StegGetEntry("alice", "doc", "uak-a", "/leak.bin",
                                eve_keys->public_key, "leak")
                  .ok());
  ASSERT_TRUE(
      fs_->StegAddEntry("alice", "/leak.bin", eve_keys->private_key, "uak-eve")
          .ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "doc", "uak-eve").ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());

  // Owner revokes: fresh FAK + new name; old FAK must now find nothing.
  ASSERT_TRUE(fs_->RevokeSharing("alice", "doc", "uak-a", "doc-v2").ok());
  EXPECT_TRUE(
      fs_->StegConnect("alice", "doc", "uak-eve").IsNotFound());

  ASSERT_TRUE(fs_->StegConnect("alice", "doc-v2", "uak-a").ok());
  EXPECT_EQ(fs_->HiddenReadAll("alice", "doc-v2").value(), "v1 content");
}

TEST_F(StegFsTest, UakHierarchySelectiveDisclosure) {
  // Three levels: signing in at level 2 reveals levels 1-2 but not 3.
  crypto::UakHierarchy hierarchy("alice-master-key", 3);
  ASSERT_TRUE(fs_->StegCreate("alice", "low", hierarchy.KeyForLevel(1),
                              HiddenType::kFile)
                  .ok());
  ASSERT_TRUE(fs_->StegCreate("alice", "mid", hierarchy.KeyForLevel(2),
                              HiddenType::kFile)
                  .ok());
  ASSERT_TRUE(fs_->StegCreate("alice", "high", hierarchy.KeyForLevel(3),
                              HiddenType::kFile)
                  .ok());

  // Under coercion alice discloses only the level-2 key. The attacker can
  // derive level 1 from it...
  crypto::UakHierarchy disclosed(hierarchy.KeyForLevel(2), 2);
  EXPECT_TRUE(
      fs_->StegConnect("alice", "low", disclosed.KeyForLevel(1)).ok());
  EXPECT_TRUE(
      fs_->StegConnect("alice", "mid", disclosed.KeyForLevel(2)).ok());
  // ...but the level-3 object remains undiscoverable.
  EXPECT_TRUE(fs_->StegConnect("alice", "high", disclosed.KeyForLevel(2))
                  .IsNotFound());
}

TEST_F(StegFsTest, MaintenanceTickChurnsBitmap) {
  ASSERT_TRUE(fs_->Flush().ok());
  // Snapshot the bitmap.
  auto before = fs_->plain()->bitmap()->free_count();
  Status s;
  for (int i = 0; i < 5; ++i) {
    s = fs_->MaintenanceTick();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  // Dummy churn must have changed allocation counts at least once across
  // ticks (grow/shrink around the average size).
  auto after = fs_->plain()->bitmap()->free_count();
  EXPECT_NE(before, after);
}

TEST_F(StegFsTest, MaintenanceDoesNotDisturbHiddenData) {
  std::string content = RandomData(300000, 77);
  ASSERT_TRUE(
      fs_->StegCreate("alice", "payload", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "payload", "uak-a").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "payload", content).ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs_->MaintenanceTick().ok());
  }

  ASSERT_TRUE(fs_->StegConnect("alice", "payload", "uak-a").ok());
  EXPECT_EQ(fs_->HiddenReadAll("alice", "payload").value(), content);
}

TEST_F(StegFsTest, PlainChurnDoesNotDisturbHiddenData) {
  // The paper's objective (a): no data loss. Hidden blocks are marked in
  // the bitmap, so plain allocation must route around them.
  std::string content = RandomData(400000, 13);
  ASSERT_TRUE(
      fs_->StegCreate("alice", "payload", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "payload", "uak-a").ok());
  ASSERT_TRUE(fs_->HiddenWriteAll("alice", "payload", content).ok());
  ASSERT_TRUE(fs_->DisconnectAll("alice").ok());

  // Fill and churn the plain side hard.
  for (int round = 0; round < 8; ++round) {
    std::string path = "/churn" + std::to_string(round % 3);
    if (fs_->plain()->Exists(path)) {
      ASSERT_TRUE(fs_->plain()->Unlink(path).ok());
    }
    ASSERT_TRUE(
        fs_->plain()->WriteFile(path, RandomData(2 << 20, round)).ok());
  }

  ASSERT_TRUE(fs_->StegConnect("alice", "payload", "uak-a").ok());
  EXPECT_EQ(fs_->HiddenReadAll("alice", "payload").value(), content);
}

TEST_F(StegFsTest, SpaceReportAccounts) {
  SpaceReport r = fs_->ReportSpace();
  EXPECT_EQ(r.total_blocks, 32768u);
  EXPECT_GT(r.metadata_blocks, 0u);
  EXPECT_GT(r.allocated_blocks, r.metadata_blocks);  // abandoned + dummies
  EXPECT_EQ(r.allocated_blocks + r.free_blocks, r.total_blocks);
}

TEST_F(StegFsTest, ConnectIsIdempotent) {
  ASSERT_TRUE(
      fs_->StegCreate("alice", "x", "uak-a", HiddenType::kFile).ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "x", "uak-a").ok());
  ASSERT_TRUE(fs_->StegConnect("alice", "x", "uak-a").ok());
  EXPECT_EQ(fs_->ConnectedObjects("alice").size(), 1u);
}

}  // namespace
}  // namespace stegfs
