// Fault-tolerance layer unit coverage (PR 8): the error taxonomy, the
// deterministic backoff function, the RetryingBlockDevice decorator's
// absorb/exhaust/persistent behaviors and the health transitions they
// cause, and the FaultInjectionBlockDevice schedule DSL.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "fault/error_taxonomy.h"
#include "fault/fault_injection_device.h"
#include "fault/health.h"
#include "fault/retry_policy.h"
#include "fault/retrying_device.h"
#include "util/status.h"

namespace stegfs {
namespace fault {
namespace {

constexpr uint32_t kBs = 512;
constexpr uint64_t kBlocks = 64;

// A policy with microscopic backoff so exhaustion tests run in microseconds.
RetryPolicy FastPolicy() {
  RetryPolicy p;
  p.max_attempts = 4;
  p.base_backoff_ns = 1000;  // 1 us
  p.max_backoff_ns = 8000;
  p.op_deadline_ns = 0;  // unbounded; deadline has its own test
  return p;
}

FaultRule Rule(FaultRule::Op op, FaultRule::Kind kind,
               uint64_t count = FaultRule::kForever, uint64_t after = 0) {
  FaultRule r;
  r.op = op;
  r.kind = kind;
  r.after = after;
  r.count = count;
  return r;
}

// --- taxonomy -------------------------------------------------------------

TEST(ErrorTaxonomyTest, TaggedStatusesKeepTheirClass) {
  EXPECT_EQ(Classify(Status::TransientIOError("x")), IoErrorClass::kTransient);
  EXPECT_EQ(Classify(Status::PersistentIOError("x")),
            IoErrorClass::kPersistent);
  EXPECT_EQ(Classify(Status::TimeoutIOError("x")), IoErrorClass::kTimeout);
  EXPECT_EQ(Classify(Status::OK()), IoErrorClass::kNone);
}

TEST(ErrorTaxonomyTest, UntaggedErrorsGetConservativeDefaults) {
  // Legacy Status::IOError: retry is cheap, losing the op is not.
  EXPECT_EQ(Classify(Status::IOError("legacy")), IoErrorClass::kTransient);
  EXPECT_EQ(Classify(Status::Corruption("bad")), IoErrorClass::kCorruption);
  EXPECT_EQ(Classify(Status::DataLoss("gone")), IoErrorClass::kCorruption);
  // Non-I/O statuses are not the fault layer's business.
  EXPECT_EQ(Classify(Status::NotFound("x")), IoErrorClass::kNone);
  EXPECT_EQ(Classify(Status::InvalidArgument("x")), IoErrorClass::kNone);
}

TEST(ErrorTaxonomyTest, OnlyTransientAndTimeoutAreRetryable) {
  EXPECT_TRUE(IsRetryable(Status::TransientIOError("x")));
  EXPECT_TRUE(IsRetryable(Status::TimeoutIOError("x")));
  EXPECT_TRUE(IsRetryable(Status::IOError("legacy")));
  EXPECT_FALSE(IsRetryable(Status::PersistentIOError("x")));
  EXPECT_FALSE(IsRetryable(Status::Corruption("x")));
  EXPECT_FALSE(IsRetryable(Status::NotFound("x")));
}

// --- deterministic backoff ------------------------------------------------

TEST(BackoffTest, DeterministicForIdenticalInputs) {
  RetryPolicy p;
  for (uint64_t op = 0; op < 8; ++op) {
    for (uint32_t r = 1; r <= p.max_attempts; ++r) {
      EXPECT_EQ(BackoffNanos(p, op, r), BackoffNanos(p, op, r));
    }
  }
}

TEST(BackoffTest, ExponentialEnvelopeWithJitterInLowerHalf) {
  RetryPolicy p;
  p.base_backoff_ns = 1000 * 1000;  // 1 ms
  p.backoff_multiplier = 2.0;
  p.max_backoff_ns = 100 * 1000 * 1000;
  for (uint32_t r = 1; r <= 5; ++r) {
    const uint64_t full = p.base_backoff_ns << (r - 1);
    const uint64_t got = BackoffNanos(p, /*op_seq=*/42, r);
    EXPECT_GE(got, full / 2) << "retry " << r;
    EXPECT_LE(got, full) << "retry " << r;
  }
}

TEST(BackoffTest, CappedAtMaxBackoff) {
  RetryPolicy p;
  p.base_backoff_ns = 1000 * 1000;
  p.max_backoff_ns = 4 * 1000 * 1000;
  // Retry 10 would be base * 2^9 = 512 ms uncapped.
  EXPECT_LE(BackoffNanos(p, 7, 10), p.max_backoff_ns);
  EXPECT_GE(BackoffNanos(p, 7, 10), p.max_backoff_ns / 2);
}

TEST(BackoffTest, DifferentOpsAndSeedsDecorrelate) {
  RetryPolicy a, b;
  b.jitter_seed = a.jitter_seed + 1;
  // Not a strict requirement per pair, but across a window the sequences
  // must not be identical — that would mean the seed/op never entered.
  int op_diffs = 0, seed_diffs = 0;
  for (uint64_t op = 0; op < 32; ++op) {
    if (BackoffNanos(a, op, 1) != BackoffNanos(a, op + 1, 1)) ++op_diffs;
    if (BackoffNanos(a, op, 1) != BackoffNanos(b, op, 1)) ++seed_diffs;
  }
  EXPECT_GT(op_diffs, 0);
  EXPECT_GT(seed_diffs, 0);
}

// --- RetryingBlockDevice --------------------------------------------------

struct RetryHarness {
  FaultInjectionBlockDevice faulty{kBs, kBlocks};
  FaultStats stats;
  HealthMonitor health;
  RetryingBlockDevice dev;
  explicit RetryHarness(const RetryPolicy& policy = FastPolicy())
      : dev(&faulty, policy, &stats, &health) {}
};

TEST(RetryingDeviceTest, AbsorbsTransientFaultsBelowTheCaller) {
  RetryHarness h;
  h.faulty.AddRule(Rule(FaultRule::Op::kWrite,
                        FaultRule::Kind::kTransientError, /*count=*/2));
  std::vector<uint8_t> buf(kBs, 0xab);
  ASSERT_TRUE(h.dev.WriteBlock(3, buf.data()).ok());
  EXPECT_EQ(h.stats.transient_errors.value(), 2u);
  EXPECT_EQ(h.stats.retries.value(), 2u);
  EXPECT_EQ(h.stats.retry_successes.value(), 1u);
  EXPECT_EQ(h.stats.retry_exhausted.value(), 0u);
  EXPECT_EQ(h.health.state(), MountHealth::kHealthy);
  // The write really landed beneath the faults.
  std::vector<uint8_t> back(kBs);
  ASSERT_TRUE(h.dev.ReadBlock(3, back.data()).ok());
  EXPECT_EQ(back, buf);
}

TEST(RetryingDeviceTest, ExhaustionSurfacesErrorAndDegradesMount) {
  RetryHarness h;
  h.faulty.AddRule(
      Rule(FaultRule::Op::kRead, FaultRule::Kind::kTransientError));
  std::vector<uint8_t> buf(kBs);
  Status s = h.dev.ReadBlock(0, buf.data());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.io_class(), IoErrorClass::kTransient);
  // max_attempts=4: one initial try + 3 retries, all failed.
  EXPECT_EQ(h.stats.retries.value(), 3u);
  EXPECT_EQ(h.stats.retry_exhausted.value(), 1u);
  EXPECT_EQ(h.stats.retry_successes.value(), 0u);
  EXPECT_EQ(h.health.state(), MountHealth::kDegraded);
  // Degraded still writes: only persistent write faults trip read-only.
  EXPECT_TRUE(h.health.CheckWritable().ok());
}

TEST(RetryingDeviceTest, PersistentWriteFaultTripsReadOnlyWithoutRetry) {
  RetryHarness h;
  h.faulty.AddRule(
      Rule(FaultRule::Op::kWrite, FaultRule::Kind::kPersistentError));
  std::vector<uint8_t> buf(kBs, 1);
  Status s = h.dev.WriteBlock(0, buf.data());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.io_class(), IoErrorClass::kPersistent);
  EXPECT_EQ(h.stats.retries.value(), 0u);  // never retried
  EXPECT_EQ(h.stats.persistent_errors.value(), 1u);
  EXPECT_EQ(h.health.state(), MountHealth::kReadOnly);
  EXPECT_EQ(h.health.readonly_transitions(), 1u);

  Status w = h.health.CheckWritable();
  EXPECT_TRUE(w.IsFailedPrecondition()) << w.ToString();
  EXPECT_GE(h.health.rejected_writes(), 1u);

  // Administrative re-enable restores writes (the schedule healed too).
  h.faulty.ClearRules();
  h.health.Reset();
  EXPECT_EQ(h.health.state(), MountHealth::kHealthy);
  EXPECT_TRUE(h.health.CheckWritable().ok());
  EXPECT_TRUE(h.dev.WriteBlock(0, buf.data()).ok());
}

TEST(RetryingDeviceTest, PersistentReadFaultDegradesButKeepsWrites) {
  RetryHarness h;
  h.faulty.AddRule(
      Rule(FaultRule::Op::kRead, FaultRule::Kind::kPersistentError));
  std::vector<uint8_t> buf(kBs);
  ASSERT_FALSE(h.dev.ReadBlock(0, buf.data()).ok());
  EXPECT_EQ(h.health.state(), MountHealth::kDegraded);
  EXPECT_TRUE(h.health.CheckWritable().ok());
}

TEST(RetryingDeviceTest, TimeoutClassIsRetriedAndCountedSeparately) {
  RetryHarness h;
  h.faulty.AddRule(
      Rule(FaultRule::Op::kSync, FaultRule::Kind::kTimeout, /*count=*/1));
  ASSERT_TRUE(h.dev.Sync().ok());
  EXPECT_EQ(h.stats.timeout_errors.value(), 1u);
  EXPECT_EQ(h.stats.transient_errors.value(), 0u);
  EXPECT_EQ(h.stats.retry_successes.value(), 1u);
}

TEST(RetryingDeviceTest, DeadlineStopsRetriesEvenWithAttemptsLeft) {
  RetryPolicy p = FastPolicy();
  p.max_attempts = 1000;
  p.op_deadline_ns = 1;  // any elapsed time at all exceeds it
  RetryHarness h(p);
  h.faulty.AddRule(
      Rule(FaultRule::Op::kRead, FaultRule::Kind::kTransientError));
  std::vector<uint8_t> buf(kBs);
  ASSERT_FALSE(h.dev.ReadBlock(0, buf.data()).ok());
  EXPECT_EQ(h.stats.retry_exhausted.value(), 1u);
  // Far fewer than 999 retries happened before the deadline cut in.
  EXPECT_LT(h.stats.retries.value(), 4u);
}

// A device that reports validated-corruption statuses (bit flips from the
// injector are SILENT; corruption-classed statuses come from layers that
// checksum, so a stub stands in for one here).
class CorruptingDevice : public MemBlockDevice {
 public:
  CorruptingDevice() : MemBlockDevice(kBs, kBlocks) {}
  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    ++reads_;
    return Status::Corruption("checksum mismatch");
  }
  int reads_ = 0;
};

TEST(RetryingDeviceTest, CorruptionIsNotRetriedAndDegrades) {
  CorruptingDevice inner;
  FaultStats stats;
  HealthMonitor health;
  RetryingBlockDevice dev(&inner, FastPolicy(), &stats, &health);
  std::vector<uint8_t> buf(kBs);
  Status s = dev.ReadBlock(0, buf.data());
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(inner.reads_, 1);  // retrying cannot un-corrupt: one attempt
  EXPECT_EQ(stats.corruption_errors.value(), 1u);
  EXPECT_EQ(stats.retries.value(), 0u);
  EXPECT_EQ(health.state(), MountHealth::kDegraded);
  EXPECT_TRUE(health.CheckWritable().ok());  // heal path owns corruption
}

// --- deterministic retry sequences ---------------------------------------

// Two identical runs (same seed, same schedule, same workload) must see
// the same fault firings and produce identical device images — the
// property the chaos matrix depends on.
TEST(RetryingDeviceTest, IdenticalSeededRunsProduceIdenticalImages) {
  auto run = [](std::vector<uint8_t>* image, uint64_t* injected) {
    FaultInjectionBlockDevice faulty(kBs, kBlocks, /*seed=*/99);
    FaultRule torn = Rule(FaultRule::Op::kWrite, FaultRule::Kind::kTornWrite,
                          /*count=*/3, /*after=*/2);
    faulty.AddRule(torn);
    faulty.AddRule(Rule(FaultRule::Op::kWrite,
                        FaultRule::Kind::kTransientError, /*count=*/2,
                        /*after=*/10));
    FaultStats stats;
    HealthMonitor health;
    RetryingBlockDevice dev(&faulty, FastPolicy(), &stats, &health);
    std::vector<uint8_t> buf(kBs);
    for (uint64_t b = 0; b < 32; ++b) {
      for (uint32_t i = 0; i < kBs; ++i) {
        buf[i] = static_cast<uint8_t>(b * 131 + i * 17);
      }
      ASSERT_TRUE(dev.WriteBlock(b, buf.data()).ok()) << "block " << b;
    }
    ASSERT_TRUE(dev.Sync().ok());
    *injected = faulty.faults_injected();
    image->clear();
    image->resize(kBs * kBlocks);
    for (uint64_t b = 0; b < kBlocks; ++b) {
      ASSERT_TRUE(
          faulty.mem()->ReadBlock(b, image->data() + b * kBs).ok());
    }
  };
  std::vector<uint8_t> img1, img2;
  uint64_t inj1 = 0, inj2 = 0;
  run(&img1, &inj1);
  run(&img2, &inj2);
  EXPECT_GT(inj1, 0u);
  EXPECT_EQ(inj1, inj2);
  EXPECT_EQ(img1, img2);
}

// A torn write leaves half-old half-new content and an error; the retry
// layer's full-block rewrite repairs it transparently.
TEST(RetryingDeviceTest, TornWriteRepairedByRetry) {
  RetryHarness h;
  std::vector<uint8_t> old_content(kBs, 0x11);
  ASSERT_TRUE(h.dev.WriteBlock(5, old_content.data()).ok());
  h.faulty.AddRule(
      Rule(FaultRule::Op::kWrite, FaultRule::Kind::kTornWrite, /*count=*/1));
  std::vector<uint8_t> new_content(kBs, 0x22);
  ASSERT_TRUE(h.dev.WriteBlock(5, new_content.data()).ok());
  std::vector<uint8_t> back(kBs);
  ASSERT_TRUE(h.faulty.mem()->ReadBlock(5, back.data()).ok());
  EXPECT_EQ(back, new_content);  // no half-torn residue survives the retry
  EXPECT_EQ(h.stats.retry_successes.value(), 1u);
}

// Bit flips are deterministic per (seed, fire, block): two devices with
// the same schedule corrupt the same bit.
TEST(FaultInjectionTest, BitFlipsAreSeedDeterministic) {
  auto flip_once = [](std::vector<uint8_t>* out) {
    FaultInjectionBlockDevice dev(kBs, kBlocks, /*seed=*/7);
    std::vector<uint8_t> content(kBs, 0x5a);
    ASSERT_TRUE(dev.WriteBlock(9, content.data()).ok());
    dev.AddRule(Rule(FaultRule::Op::kRead, FaultRule::Kind::kBitFlip,
                     /*count=*/1));
    out->resize(kBs);
    ASSERT_TRUE(dev.ReadBlock(9, out->data()).ok());
  };
  std::vector<uint8_t> a, b;
  flip_once(&a);
  flip_once(&b);
  EXPECT_EQ(a, b);
  std::vector<uint8_t> clean(kBs, 0x5a);
  EXPECT_NE(a, clean);
  // Exactly one bit differs.
  int bits = 0;
  for (uint32_t i = 0; i < kBs; ++i) {
    bits += __builtin_popcount(static_cast<uint8_t>(a[i] ^ clean[i]));
  }
  EXPECT_EQ(bits, 1);
}

// --- schedule DSL ---------------------------------------------------------

TEST(FaultInjectionTest, ParsesFullSpec) {
  uint64_t seed = 0;
  auto rules = FaultInjectionBlockDevice::ParseSchedule(
      "seed=7;write:eio@3x2;read:flip@10;sync:fail;any:delay:us=500;"
      "read:timeout:blocks=4-8", &seed);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(seed, 7u);
  ASSERT_EQ(rules->size(), 5u);
  EXPECT_EQ((*rules)[0].op, FaultRule::Op::kWrite);
  EXPECT_EQ((*rules)[0].kind, FaultRule::Kind::kTransientError);
  EXPECT_EQ((*rules)[0].after, 3u);
  EXPECT_EQ((*rules)[0].count, 2u);
  EXPECT_EQ((*rules)[1].kind, FaultRule::Kind::kBitFlip);
  EXPECT_EQ((*rules)[1].count, 1u);  // default
  EXPECT_EQ((*rules)[2].op, FaultRule::Op::kSync);
  EXPECT_EQ((*rules)[2].kind, FaultRule::Kind::kPersistentError);
  EXPECT_EQ((*rules)[2].count, FaultRule::kForever);  // fail defaults forever
  EXPECT_EQ((*rules)[3].kind, FaultRule::Kind::kLatencySpike);
  EXPECT_EQ((*rules)[3].delay_us, 500u);
  EXPECT_EQ((*rules)[4].kind, FaultRule::Kind::kTimeout);
  EXPECT_EQ((*rules)[4].block_lo, 4u);
  EXPECT_EQ((*rules)[4].block_hi, 8u);
}

TEST(FaultInjectionTest, RejectsMalformedSpecs) {
  uint64_t seed = 0;
  for (const char* bad :
       {"write", "write:nope", "frobnicate:eio", "write:eio@x",
        "read:flip:blocks=9", "seed=;write:eio", "write:eio:us=abc"}) {
    auto r = FaultInjectionBlockDevice::ParseSchedule(bad, &seed);
    EXPECT_FALSE(r.ok()) << "spec accepted: " << bad;
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsInvalidArgument()) << bad;
    }
  }
}

TEST(FaultInjectionTest, BlockRangeScopesTheRule) {
  FaultInjectionBlockDevice dev(kBs, kBlocks);
  ASSERT_TRUE(dev.LoadSchedule("read:eio:blocks=10-20").ok());
  std::vector<uint8_t> buf(kBs);
  EXPECT_TRUE(dev.ReadBlock(5, buf.data()).ok());    // outside range
  EXPECT_FALSE(dev.ReadBlock(15, buf.data()).ok());  // inside fires
  EXPECT_TRUE(dev.ReadBlock(15, buf.data()).ok());   // count=1 consumed
}

}  // namespace
}  // namespace fault
}  // namespace stegfs
