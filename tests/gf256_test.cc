#include "crypto/gf256.h"

#include <gtest/gtest.h>

#include "crypto/gf256_simd.h"
#include "util/random.h"

namespace stegfs {
namespace crypto {
namespace {

TEST(Gf256Test, MulBasics) {
  EXPECT_EQ(Gf256::Mul(0, 77), 0);
  EXPECT_EQ(Gf256::Mul(1, 77), 77);
  EXPECT_EQ(Gf256::Mul(2, 0x80), 0x1b);  // AES xtime wraparound
  // Known AES-field product: 0x57 * 0x83 = 0xc1 (FIPS 197 example).
  EXPECT_EQ(Gf256::Mul(0x57, 0x83), 0xc1);
}

TEST(Gf256Test, MulIsCommutativeAndAssociative) {
  Xoshiro rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next());
    uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c),
              Gf256::Mul(a, Gf256::Mul(b, c)));
    // Distributivity over XOR (field addition).
    EXPECT_EQ(Gf256::Mul(a, b ^ c),
              Gf256::Mul(a, b) ^ Gf256::Mul(a, c));
  }
}

TEST(Gf256Test, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = Gf256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  Xoshiro rng(2);
  for (int i = 0; i < 1000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(1 + rng.Uniform(255));
    EXPECT_EQ(Gf256::Div(a, b), Gf256::Mul(a, Gf256::Inv(b)));
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  uint8_t acc = 1;
  for (unsigned e = 0; e < 20; ++e) {
    EXPECT_EQ(Gf256::Pow(3, e), acc) << e;
    acc = Gf256::Mul(acc, 3);
  }
}

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::vector<uint8_t> v(n);
  rng.FillBytes(v.data(), n);
  return v;
}

TEST(IdaTest, RoundTripFromDataShares) {
  InformationDispersal ida(4, 7);
  auto data = RandomBytes(10000, 1);
  auto shares = ida.Encode(data);
  ASSERT_EQ(shares.size(), 7u);
  auto back = ida.Decode({shares[0], shares[1], shares[2], shares[3]});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(IdaTest, RoundTripFromParityShares) {
  InformationDispersal ida(4, 8);
  auto data = RandomBytes(5000, 2);
  auto shares = ida.Encode(data);
  auto back = ida.Decode({shares[4], shares[5], shares[6], shares[7]});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(IdaTest, EveryMSubsetReconstructs) {
  const int m = 3, n = 6;
  InformationDispersal ida(m, n);
  auto data = RandomBytes(1000, 3);
  auto shares = ida.Encode(data);
  // All C(6,3) = 20 subsets.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        auto back = ida.Decode({shares[a], shares[b], shares[c]});
        ASSERT_TRUE(back.ok()) << a << "," << b << "," << c;
        EXPECT_EQ(back.value(), data) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(IdaTest, FewerThanMSharesRejected) {
  InformationDispersal ida(3, 5);
  auto shares = ida.Encode(RandomBytes(100, 4));
  EXPECT_FALSE(ida.Decode({shares[0], shares[1]}).ok());
  // Duplicate indices don't count twice.
  EXPECT_FALSE(ida.Decode({shares[0], shares[0], shares[0]}).ok());
}

TEST(IdaTest, ShareSizeIsDataOverM) {
  InformationDispersal ida(4, 8);
  auto data = RandomBytes(40000, 5);
  auto shares = ida.Encode(data);
  // (8-byte frame + data) / 4, rounded up.
  EXPECT_EQ(shares[0].bytes.size(), (40008u + 3) / 4);
  // Total storage = n/m x data (the IDA advantage over replication).
  size_t total = 0;
  for (const auto& s : shares) total += s.bytes.size();
  EXPECT_NEAR(static_cast<double>(total) / data.size(), 8.0 / 4.0, 0.01);
}

TEST(IdaTest, EmptyAndTinyInputs) {
  InformationDispersal ida(3, 5);
  for (size_t len : {0u, 1u, 2u, 3u, 7u}) {
    auto data = RandomBytes(len, 10 + len);
    auto shares = ida.Encode(data);
    auto back = ida.Decode({shares[1], shares[3], shares[4]});
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(back.value(), data) << len;
  }
}

TEST(IdaTest, MEqualsOneIsReplication) {
  InformationDispersal ida(1, 4);
  auto data = RandomBytes(500, 6);
  auto shares = ida.Encode(data);
  for (const auto& s : shares) {
    auto back = ida.Decode({s});
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
  }
}

TEST(IdaTest, MEqualsNIsStriping) {
  InformationDispersal ida(5, 5);
  auto data = RandomBytes(1234, 7);
  auto shares = ida.Encode(data);
  auto back = ida.Decode(shares);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(IdaTest, CorruptedShareYieldsWrongDataNotCrash) {
  InformationDispersal ida(3, 5);
  auto data = RandomBytes(300, 8);
  auto shares = ida.Encode(data);
  shares[4].bytes[10] ^= 0xff;
  auto back = ida.Decode({shares[2], shares[3], shares[4]});
  // IDA has no integrity check (callers MAC their shares); decode either
  // fails structurally or returns different bytes.
  if (back.ok()) {
    EXPECT_NE(back.value(), data);
  }
}

// --- SIMD GF(256) tiers (PR 6) ---------------------------------------
// Same pattern as crypto_tiers_test.cc for AES: force each backend in
// turn and require bit-identical results against the scalar reference.

class GfTierScope {
 public:
  explicit GfTierScope(GfTier tier) : saved_(ActiveGfTier()) {
    active_ = SetGfTier(tier);
  }
  ~GfTierScope() { SetGfTier(saved_); }
  // False when the CPU lacks the tier (the setter refused the switch).
  bool active() const { return active_; }

 private:
  GfTier saved_;
  bool active_ = false;
};

const GfTier kAllTiers[] = {GfTier::kScalar, GfTier::kPshufb, GfTier::kGfni};

TEST(GfSimdTest, TierNameIsStable) {
  const char* name = GfTierName();
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(std::string(name) == "gfni" || std::string(name) == "pshufb" ||
              std::string(name) == "gf-scalar");
}

TEST(GfSimdTest, MulAccumMatchesScalarReferenceOnEveryTier) {
  // Odd lengths cover the vector tail path; every coefficient class
  // (0, 1, arbitrary) covers the fast paths.
  const size_t kLens[] = {1, 15, 16, 31, 32, 33, 64, 257, 4096, 4099};
  for (GfTier tier : kAllTiers) {
    GfTierScope scope(tier);
    if (!scope.active()) continue;  // CPU lacks this tier
    for (size_t len : kLens) {
      for (uint8_t c : {0, 1, 2, 0x53, 0xca, 0xff}) {
        auto src = RandomBytes(len, 0x1000 + len + c);
        auto dst = RandomBytes(len, 0x2000 + len + c);
        std::vector<uint8_t> expect(dst);
        for (size_t i = 0; i < len; ++i) {
          expect[i] ^= Gf256::Mul(c, src[i]);
        }
        GfMulAccum(c, src.data(), dst.data(), len);
        EXPECT_EQ(dst, expect) << GfTierName() << " c=" << int(c)
                               << " len=" << len;
      }
    }
  }
}

TEST(GfSimdTest, ScaleMatchesScalarReferenceOnEveryTier) {
  const size_t kLens[] = {1, 16, 31, 33, 1024, 4097};
  for (GfTier tier : kAllTiers) {
    GfTierScope scope(tier);
    if (!scope.active()) continue;
    for (size_t len : kLens) {
      for (uint8_t c : {0, 1, 7, 0x8e, 0xff}) {
        auto buf = RandomBytes(len, 0x3000 + len + c);
        std::vector<uint8_t> expect(len);
        for (size_t i = 0; i < len; ++i) {
          expect[i] = Gf256::Mul(c, buf[i]);
        }
        GfScale(c, buf.data(), len);
        EXPECT_EQ(buf, expect) << GfTierName() << " c=" << int(c)
                               << " len=" << len;
      }
    }
  }
}

TEST(GfSimdTest, IdaRoundTripIdenticalAcrossTiers) {
  // The k-of-n round trip exercises encode AND the Gaussian-elimination
  // decode through the SIMD kernels; every available tier must produce
  // byte-identical shares and recover the data from parity-only subsets.
  auto data = RandomBytes(40000, 42);
  std::vector<std::vector<InformationDispersal::Share>> per_tier_shares;
  for (GfTier tier : kAllTiers) {
    GfTierScope scope(tier);
    if (!scope.active()) continue;
    InformationDispersal ida(3, 6);
    auto shares = ida.Encode(data);
    ASSERT_EQ(shares.size(), 6u);
    auto back = ida.Decode({shares[5], shares[3], shares[4]});
    ASSERT_TRUE(back.ok()) << GfTierName();
    EXPECT_EQ(back.value(), data) << GfTierName();
    per_tier_shares.push_back(std::move(shares));
  }
  for (size_t t = 1; t < per_tier_shares.size(); ++t) {
    for (size_t s = 0; s < 6; ++s) {
      EXPECT_EQ(per_tier_shares[t][s].bytes, per_tier_shares[0][s].bytes)
          << "tier " << t << " share " << s;
    }
  }
}

TEST(GfSimdTest, StripeEncodeDecodeAcrossTiers) {
  const int m = 4, n = 7;
  const size_t len = 4096 + 13;
  std::vector<std::vector<uint8_t>> blocks(m);
  for (int j = 0; j < m; ++j) blocks[j] = RandomBytes(len, 99 + j);
  std::vector<std::vector<uint8_t>> first;
  for (GfTier tier : kAllTiers) {
    GfTierScope scope(tier);
    if (!scope.active()) continue;
    auto shares = IdaEncodeStripe(blocks, n);
    ASSERT_EQ(shares.size(), static_cast<size_t>(n));
    // Decode from the last m shares (all parity rows involved).
    std::vector<std::pair<uint8_t, std::vector<uint8_t>>> sel;
    for (int j = 0; j < m; ++j) {
      sel.emplace_back(static_cast<uint8_t>(n - m + j), shares[n - m + j]);
    }
    auto back = IdaDecodeStripe(sel, m);
    ASSERT_TRUE(back.ok()) << GfTierName();
    for (int j = 0; j < m; ++j) {
      EXPECT_EQ(back.value()[j], blocks[j]) << GfTierName() << " block "
                                            << j;
    }
    if (first.empty()) {
      first = shares;
    } else {
      for (int s = 0; s < n; ++s) {
        EXPECT_EQ(shares[s], first[s]) << GfTierName() << " share " << s;
      }
    }
  }
}

TEST(GfSimdTest, SetGfTierRefusesUnsupportedTier) {
  GfTierScope probe(GfTier::kGfni);
  if (!probe.active()) {
    // On a CPU without GFNI the setter must refuse and leave the active
    // tier untouched.
    EXPECT_NE(ActiveGfTier(), GfTier::kGfni);
  } else {
    EXPECT_EQ(ActiveGfTier(), GfTier::kGfni);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
