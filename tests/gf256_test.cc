#include "crypto/gf256.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace stegfs {
namespace crypto {
namespace {

TEST(Gf256Test, MulBasics) {
  EXPECT_EQ(Gf256::Mul(0, 77), 0);
  EXPECT_EQ(Gf256::Mul(1, 77), 77);
  EXPECT_EQ(Gf256::Mul(2, 0x80), 0x1b);  // AES xtime wraparound
  // Known AES-field product: 0x57 * 0x83 = 0xc1 (FIPS 197 example).
  EXPECT_EQ(Gf256::Mul(0x57, 0x83), 0xc1);
}

TEST(Gf256Test, MulIsCommutativeAndAssociative) {
  Xoshiro rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next());
    uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c),
              Gf256::Mul(a, Gf256::Mul(b, c)));
    // Distributivity over XOR (field addition).
    EXPECT_EQ(Gf256::Mul(a, b ^ c),
              Gf256::Mul(a, b) ^ Gf256::Mul(a, c));
  }
}

TEST(Gf256Test, InverseRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = Gf256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  Xoshiro rng(2);
  for (int i = 0; i < 1000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(1 + rng.Uniform(255));
    EXPECT_EQ(Gf256::Div(a, b), Gf256::Mul(a, Gf256::Inv(b)));
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  uint8_t acc = 1;
  for (unsigned e = 0; e < 20; ++e) {
    EXPECT_EQ(Gf256::Pow(3, e), acc) << e;
    acc = Gf256::Mul(acc, 3);
  }
}

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::vector<uint8_t> v(n);
  rng.FillBytes(v.data(), n);
  return v;
}

TEST(IdaTest, RoundTripFromDataShares) {
  InformationDispersal ida(4, 7);
  auto data = RandomBytes(10000, 1);
  auto shares = ida.Encode(data);
  ASSERT_EQ(shares.size(), 7u);
  auto back = ida.Decode({shares[0], shares[1], shares[2], shares[3]});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(IdaTest, RoundTripFromParityShares) {
  InformationDispersal ida(4, 8);
  auto data = RandomBytes(5000, 2);
  auto shares = ida.Encode(data);
  auto back = ida.Decode({shares[4], shares[5], shares[6], shares[7]});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(IdaTest, EveryMSubsetReconstructs) {
  const int m = 3, n = 6;
  InformationDispersal ida(m, n);
  auto data = RandomBytes(1000, 3);
  auto shares = ida.Encode(data);
  // All C(6,3) = 20 subsets.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      for (int c = b + 1; c < n; ++c) {
        auto back = ida.Decode({shares[a], shares[b], shares[c]});
        ASSERT_TRUE(back.ok()) << a << "," << b << "," << c;
        EXPECT_EQ(back.value(), data) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(IdaTest, FewerThanMSharesRejected) {
  InformationDispersal ida(3, 5);
  auto shares = ida.Encode(RandomBytes(100, 4));
  EXPECT_FALSE(ida.Decode({shares[0], shares[1]}).ok());
  // Duplicate indices don't count twice.
  EXPECT_FALSE(ida.Decode({shares[0], shares[0], shares[0]}).ok());
}

TEST(IdaTest, ShareSizeIsDataOverM) {
  InformationDispersal ida(4, 8);
  auto data = RandomBytes(40000, 5);
  auto shares = ida.Encode(data);
  // (8-byte frame + data) / 4, rounded up.
  EXPECT_EQ(shares[0].bytes.size(), (40008u + 3) / 4);
  // Total storage = n/m x data (the IDA advantage over replication).
  size_t total = 0;
  for (const auto& s : shares) total += s.bytes.size();
  EXPECT_NEAR(static_cast<double>(total) / data.size(), 8.0 / 4.0, 0.01);
}

TEST(IdaTest, EmptyAndTinyInputs) {
  InformationDispersal ida(3, 5);
  for (size_t len : {0u, 1u, 2u, 3u, 7u}) {
    auto data = RandomBytes(len, 10 + len);
    auto shares = ida.Encode(data);
    auto back = ida.Decode({shares[1], shares[3], shares[4]});
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(back.value(), data) << len;
  }
}

TEST(IdaTest, MEqualsOneIsReplication) {
  InformationDispersal ida(1, 4);
  auto data = RandomBytes(500, 6);
  auto shares = ida.Encode(data);
  for (const auto& s : shares) {
    auto back = ida.Decode({s});
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
  }
}

TEST(IdaTest, MEqualsNIsStriping) {
  InformationDispersal ida(5, 5);
  auto data = RandomBytes(1234, 7);
  auto shares = ida.Encode(data);
  auto back = ida.Decode(shares);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(IdaTest, CorruptedShareYieldsWrongDataNotCrash) {
  InformationDispersal ida(3, 5);
  auto data = RandomBytes(300, 8);
  auto shares = ida.Encode(data);
  shares[4].bytes[10] ^= 0xff;
  auto back = ida.Decode({shares[2], shares[3], shares[4]});
  // IDA has no integrity check (callers MAC their shares); decode either
  // fails structurally or returns different bytes.
  if (back.ok()) {
    EXPECT_NE(back.value(), data);
  }
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
