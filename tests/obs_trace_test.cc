// The stegtrace span recorder: ring wraparound accounting, thread-local
// nesting, the cross-thread continuation hand-off (exactly one root span
// per operation even when completions race on other threads), Chrome
// trace-event export, and the slow-op tree dump.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

namespace stegfs {
namespace obs {
namespace {

TraceEvent MakeEvent(uint64_t op_id) {
  TraceEvent ev;
  ev.name = "synthetic";
  ev.cat = "test";
  ev.op_id = op_id;
  ev.span_id = op_id;
  ev.start_ns = op_id * 100;
  ev.dur_ns = 10;
  return ev;
}

TEST(TraceRecorderTest, RingWrapsKeepingNewestEvents) {
  TraceRecorder rec(8);
  rec.Start();
  for (uint64_t i = 0; i < 20; ++i) rec.Record(MakeEvent(i));
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and only the newest 8 survive the wrap.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].op_id, 12 + i);
  }
  rec.Clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.Events().empty());
}

TEST(TraceSpanTest, InertWhileRecorderStopped) {
  TraceRecorder rec(64);  // never Start()ed
  {
    Span span(&rec, "op", "test");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(rec.recorded(), 0u);
  // A thread-child span with no ambient context is inert too.
  {
    Span child("orphan", "test");
    EXPECT_FALSE(child.active());
  }
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(TraceSpanTest, SameThreadSpansNestUnderTheRoot) {
  TraceRecorder rec(64);
  rec.Start();
  {
    Span root(&rec, "op", "test");
    ASSERT_TRUE(root.active());
    { Span child("step1", "test"); }
    { Span child("step2", "test"); }
  }
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 3u);  // children close before the root
  const TraceEvent& c1 = events[0];
  const TraceEvent& c2 = events[1];
  const TraceEvent& root = events[2];
  EXPECT_EQ(root.parent_span, 0u);
  EXPECT_EQ(std::string(c1.name), "step1");
  EXPECT_EQ(std::string(c2.name), "step2");
  EXPECT_EQ(c1.op_id, root.op_id);
  EXPECT_EQ(c2.op_id, root.op_id);
  EXPECT_EQ(c1.parent_span, root.span_id);
  EXPECT_EQ(c2.parent_span, root.span_id);
}

TEST(TraceSpanTest, CloseEndsThePhaseBeforeTheNextSiblingOpens) {
  TraceRecorder rec(64);
  rec.Start();
  {
    Span root(&rec, "op", "test");
    Span phase1("phase1", "test");
    phase1.Close();
    Span phase2("phase2", "test");
    // phase2 must be a sibling of phase1 (child of root), not its child.
  }
  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 3u);
  uint64_t root_span = events[2].span_id;
  EXPECT_EQ(std::string(events[0].name), "phase1");
  EXPECT_EQ(std::string(events[1].name), "phase2");
  EXPECT_EQ(events[0].parent_span, root_span);
  EXPECT_EQ(events[1].parent_span, root_span);
}

TEST(TraceSpanTest, ExactlyOneRootPerOpUnderCompletionRaces) {
  // The async-engine shape: each operation roots a span on its own
  // thread, hands its context to a "completion" running on a different
  // thread, and the completion only continues — it must never root. Many
  // ops race; afterwards every op_id must own exactly one root event.
  constexpr int kOpThreads = 8;
  constexpr int kOpsPerThread = 16;
  TraceRecorder rec(4096);
  rec.Start();

  std::vector<std::thread> op_threads;
  for (int t = 0; t < kOpThreads; ++t) {
    op_threads.emplace_back([&rec] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        Span root(&rec, "op", "test");
        ASSERT_TRUE(root.active());
        SpanContext ctx = root.context();
        // The completion races on its own thread, like an engine worker.
        std::thread completion([ctx] {
          Span cont(ctx, "complete", "test");
          { Span nested("decrypt", "test"); }
        });
        completion.join();
      }
    });
  }
  for (auto& th : op_threads) th.join();

  std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kOpThreads * kOpsPerThread * 3));
  EXPECT_EQ(rec.dropped(), 0u);
  std::map<uint64_t, int> roots_per_op;
  std::map<uint64_t, int> events_per_op;
  for (const TraceEvent& ev : events) {
    events_per_op[ev.op_id]++;
    if (ev.parent_span == 0) roots_per_op[ev.op_id]++;
  }
  EXPECT_EQ(events_per_op.size(),
            static_cast<size_t>(kOpThreads * kOpsPerThread));
  for (const auto& [op_id, n] : events_per_op) {
    EXPECT_EQ(n, 3) << "op " << op_id;
    EXPECT_EQ(roots_per_op[op_id], 1)
        << "op " << op_id << " does not have exactly one root span";
  }
}

TEST(TraceRecorderTest, ChromeJsonIsPerfettoShaped) {
  TraceRecorder rec(64);
  rec.Start();
  {
    Span root(&rec, "op", "test");
    { Span child("step", "test"); }
  }
  std::string json = rec.ExportChromeJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Balanced braces/brackets at the ends — loadable, not truncated.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceRecorderTest, DumpOpTreeIndentsChildren) {
  TraceRecorder rec(64);
  rec.Start();
  uint64_t op_id = 0;
  {
    Span root(&rec, "op", "test");
    op_id = root.context().op_id;
    { Span child("step", "test"); }
  }
  std::string tree = rec.DumpOpTree(op_id);
  size_t root_pos = tree.find("op");
  size_t child_pos = tree.find("  ");  // children are indented
  EXPECT_NE(root_pos, std::string::npos);
  EXPECT_NE(child_pos, std::string::npos);
  EXPECT_NE(tree.find("step"), std::string::npos);
  EXPECT_NE(tree.find("us"), std::string::npos);
}

TEST(TraceRecorderTest, SlowOpThresholdDumpsWithoutCrashing) {
  TraceRecorder rec(64);
  rec.Start();
  rec.set_slow_op_threshold_ns(1);  // everything is "slow"
  EXPECT_EQ(rec.slow_op_threshold_ns(), 1u);
  {
    Span root(&rec, "slow_op", "test");
    { Span child("slow_child", "test"); }
  }
  // The dump goes to stderr; the assertion is that the tree walk on a
  // just-closed root is safe and the events were still recorded.
  EXPECT_EQ(rec.Events().size(), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace stegfs
