#include "blockdev/disk_model.h"

#include <gtest/gtest.h>

namespace stegfs {
namespace {

DiskModelConfig TestConfig() {
  DiskModelConfig cfg;  // paper defaults
  return cfg;
}

TEST(DiskModelTest, SequentialIsCheaperThanRandom) {
  DiskModel model(TestConfig(), 1024);
  // Warm-up request establishes head position and a stream.
  model.AccessSeconds({0, 1, false});
  double seq = model.AccessSeconds({1, 1, false});

  DiskModel model2(TestConfig(), 1024);
  model2.AccessSeconds({0, 1, false});
  double rnd = model2.AccessSeconds({5000000, 1, false});

  EXPECT_LT(seq * 10, rnd);  // at least 10x cheaper
}

TEST(DiskModelTest, SequentialStreamStaysCheap) {
  DiskModel model(TestConfig(), 1024);
  model.AccessSeconds({100, 1, false});
  double total = 0;
  for (int i = 1; i <= 100; ++i) {
    total += model.AccessSeconds({100 + static_cast<uint64_t>(i), 1, false});
  }
  // 100 sequential 1 KB reads: ~controller overhead + transfer each,
  // which is well under 1 ms per request.
  EXPECT_LT(total, 0.1);
  EXPECT_EQ(model.stats().drive_cache_hits, 100u);
  EXPECT_EQ(model.stats().seeks, 1u);
}

TEST(DiskModelTest, RandomAccessPaysSeekAndRotation) {
  DiskModel model(TestConfig(), 1024);
  double t = model.AccessSeconds({10000000, 1, false});
  // Seek (>=1.2 ms) + avg rotation (4.17 ms) floor.
  EXPECT_GT(t, 0.005);
  EXPECT_LT(t, 0.030);
}

TEST(DiskModelTest, InterleavedStreamsWithinSegmentsStayCheap) {
  // Fewer concurrent sequential streams than read segments: all still hit.
  DiskModelConfig cfg = TestConfig();
  DiskModel model(cfg, 1024);
  const int kStreams = 8;  // < read_segments (12)
  uint64_t bases[kStreams];
  for (int s = 0; s < kStreams; ++s) {
    bases[s] = static_cast<uint64_t>(s) * 1000000;
    model.AccessSeconds({bases[s], 1, false});
  }
  uint64_t hits_before = model.stats().drive_cache_hits;
  for (int round = 1; round <= 50; ++round) {
    for (int s = 0; s < kStreams; ++s) {
      model.AccessSeconds({bases[s] + static_cast<uint64_t>(round), 1, false});
    }
  }
  EXPECT_EQ(model.stats().drive_cache_hits - hits_before,
            static_cast<uint64_t>(50 * kStreams));
}

TEST(DiskModelTest, TooManyStreamsThrashSegments) {
  DiskModelConfig cfg = TestConfig();
  DiskModel model(cfg, 1024);
  const int kStreams = 32;  // >> read_segments
  for (int round = 0; round < 20; ++round) {
    for (int s = 0; s < kStreams; ++s) {
      model.AccessSeconds(
          {static_cast<uint64_t>(s) * 1000000 + round, 1, false});
    }
  }
  // With 32 round-robin streams and 12 segments, nearly every request
  // misses (the LRU segment list turns over completely each round).
  double hit_rate = static_cast<double>(model.stats().drive_cache_hits) /
                    (model.stats().reads);
  EXPECT_LT(hit_rate, 0.05);
}

TEST(DiskModelTest, WriteSegmentsScarcerThanReadSegments) {
  DiskModelConfig cfg = TestConfig();
  EXPECT_LT(cfg.write_segments, cfg.read_segments);

  // 8 interleaved write streams thrash (8 > 6 write segments) while 8
  // interleaved read streams do not (8 < 12 read segments) — this asymmetry
  // is what makes figure 7(b) converge earlier than 7(a).
  DiskModel wr(cfg, 1024);
  DiskModel rd(cfg, 1024);
  const int kStreams = 8;
  for (int round = 0; round < 20; ++round) {
    for (int s = 0; s < kStreams; ++s) {
      uint64_t lba = static_cast<uint64_t>(s) * 1000000 + round;
      wr.AccessSeconds({lba, 1, true});
      rd.AccessSeconds({lba, 1, false});
    }
  }
  EXPECT_GT(rd.stats().drive_cache_hits, wr.stats().drive_cache_hits * 10);
}

TEST(DiskModelTest, LargerRequestsCostMoreTransfer) {
  DiskModel model(TestConfig(), 1024);
  double t1 = model.AccessSeconds({0, 1, false});
  model.Reset();
  double t64 = model.AccessSeconds({0, 64, false});
  EXPECT_GT(t64, t1);
  // The difference is pure transfer time: 63 KB at 40 MB/s ~ 1.6 ms.
  EXPECT_NEAR(t64 - t1, 63.0 * 1024 / 40e6, 0.0005);
}

TEST(DiskModelTest, SeekCostGrowsWithDistance) {
  DiskModel near_model(TestConfig(), 1024);
  near_model.AccessSeconds({0, 1, false});
  double near_t = near_model.AccessSeconds({1000, 1, false});

  DiskModel far_model(TestConfig(), 1024);
  far_model.AccessSeconds({0, 1, false});
  double far_t = far_model.AccessSeconds({15000000, 1, false});
  EXPECT_GT(far_t, near_t);
}

TEST(DiskModelTest, ResetClearsState) {
  DiskModel model(TestConfig(), 1024);
  model.AccessSeconds({0, 1, false});
  model.AccessSeconds({1, 1, false});
  model.Reset();
  EXPECT_EQ(model.stats().reads, 0u);
  // After reset, continuing the old stream is a miss again.
  model.AccessSeconds({2, 1, false});
  EXPECT_EQ(model.stats().seeks, 1u);
}

TEST(DiskModelTest, RotationalLatencyMatchesRpm) {
  DiskModelConfig cfg;
  cfg.rpm = 7200;
  EXPECT_NEAR(cfg.RotationMs(), 8.333, 0.01);
  EXPECT_NEAR(cfg.AvgRotationalLatencyMs(), 4.167, 0.01);
}

}  // namespace
}  // namespace stegfs
