#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "util/hex.h"

namespace stegfs {
namespace crypto {
namespace {

std::string HexOf(const Sha256Digest& d) {
  return HexEncode(d.data(), d.size());
}

// FIPS 180-2 appendix B test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexOf(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexOf(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexOf(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexOf(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to exercise "
      "buffer boundaries in the incremental hashing path.";
  Sha256Digest oneshot = Sha256::Hash(msg);
  // Feed in every possible split position.
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), oneshot) << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // Messages of exactly 55, 56, 63, 64, 65 bytes hit all padding branches.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'x');
    Sha256Digest a = Sha256::Hash(msg);
    Sha256 h;
    for (char c : msg) h.Update(&c, 1);
    EXPECT_EQ(h.Finish(), a) << "length " << len;
  }
}

TEST(Sha256Test, Hash2ConcatenatesInputs) {
  EXPECT_EQ(Sha256::Hash2("foo", "bar"), Sha256::Hash("foobar"));
  EXPECT_NE(Sha256::Hash2("foo", "bar"), Sha256::Hash2("fo", "obar2"));
}

TEST(Sha256Test, AvalancheOnSingleBitFlip) {
  std::string a = "stegfs hidden file signature";
  std::string b = a;
  b[0] ^= 1;
  Sha256Digest da = Sha256::Hash(a);
  Sha256Digest db = Sha256::Hash(b);
  int differing_bits = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    uint8_t x = da[i] ^ db[i];
    while (x) {
      differing_bits += x & 1;
      x >>= 1;
    }
  }
  // Expected ~128 of 256 bits; anything in [80, 176] is a sane avalanche.
  EXPECT_GT(differing_bits, 80);
  EXPECT_LT(differing_bits, 176);
}

TEST(Sha256Test, ResetReusesContext) {
  Sha256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(HexOf(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace crypto
}  // namespace stegfs
