// The multi-session concurrency engine under stress: N OS threads doing
// mixed plain + hidden I/O against ONE mounted volume, races between
// connect/read/write/disconnect/remove and DisconnectAll, faults injected
// under contention, and post-run volume consistency checked both live
// (ReportSpace invariants) and across a full remount.
//
// Status discipline under races: an operation that loses a race must fail
// with a clean Status (FailedPrecondition/NotFound) or succeed — never
// crash, never corrupt the volume. Content assertions are only made on
// objects with no racing writer. Run under -fsanitize=thread in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "cache/buffer_cache.h"
#include "concurrency/thread_pool.h"
#include "core/stegfs.h"
#include "fs/plain_fs.h"
#include "tests/test_device.h"
#include "util/random.h"

namespace stegfs {
namespace {

std::string RandomData(size_t n, uint64_t seed) {
  Xoshiro rng(seed);
  std::string s(n, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(s.data()), n);
  return s;
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  concurrency::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  concurrency::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { ++counter; });
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

// ---------------------------------------------------------------------------
// Sharded BufferCache
// ---------------------------------------------------------------------------

TEST(ShardedCacheTest, AutoShardCountScalesWithCapacity) {
  MemBlockDevice dev(512, 4096);
  EXPECT_EQ(BufferCache(&dev, 4).shard_count(), 1u);     // tests stay 1-shard
  EXPECT_EQ(BufferCache(&dev, 64).shard_count(), 1u);
  EXPECT_EQ(BufferCache(&dev, 256).shard_count(), 4u);
  EXPECT_EQ(BufferCache(&dev, 4096).shard_count(), 16u);
  EXPECT_EQ(BufferCache(&dev, 256, WritePolicy::kWriteBack, 8).shard_count(),
            8u);
}

TEST(ShardedCacheTest, ParallelDisjointWritesAllLand) {
  const uint32_t kBlockSize = 512;
  const int kThreads = 8;
  const uint64_t kPerThread = 64;
  MemBlockDevice dev(kBlockSize, kThreads * kPerThread);
  BufferCache cache(&dev, 128, WritePolicy::kWriteBack, 16);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint8_t> buf(kBlockSize);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t block = t * kPerThread + i;
        // Per-block deterministic pattern any thread could verify.
        for (uint32_t j = 0; j < kBlockSize; ++j) {
          buf[j] = static_cast<uint8_t>(block * 31 + j);
        }
        ASSERT_TRUE(cache.Write(block, buf.data()).ok());
        // Read something this thread wrote earlier (may hit or miss).
        uint64_t back = t * kPerThread + (i / 2);
        ASSERT_TRUE(cache.Read(back, buf.data()).ok());
        EXPECT_EQ(buf[1], static_cast<uint8_t>(back * 31 + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(cache.Flush().ok());

  // Every block readable straight from the device with the right bytes.
  std::vector<uint8_t> raw(kBlockSize);
  for (uint64_t b = 0; b < dev.num_blocks(); ++b) {
    ASSERT_TRUE(dev.ReadBlock(b, raw.data()).ok());
    ASSERT_EQ(raw[7], static_cast<uint8_t>(b * 31 + 7)) << "block " << b;
  }
  // Counter accounting stays exact under contention: one hit or miss per op.
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, 2 * kThreads * kPerThread);
}

TEST(ShardedCacheTest, SharedHotBlocksUnderContention) {
  MemBlockDevice dev(512, 64);
  BufferCache cache(&dev, 32, WritePolicy::kWriteBack, 8);
  std::vector<uint8_t> init(512, 0xAB);
  for (uint64_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(dev.WriteBlock(b, init.data()).ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache] {
      std::vector<uint8_t> buf(512);
      Xoshiro rng(42);
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(cache.Read(rng.Uniform(8), buf.data()).ok());
        EXPECT_EQ(buf[0], 0xAB);
      }
    });
  }
  for (auto& th : threads) th.join();
  // 8 hot blocks in a 32-block cache: at most one miss per block.
  EXPECT_LE(cache.stats().misses, 8u);
  EXPECT_GE(cache.stats().HitRate(), 0.99);
}

// ---------------------------------------------------------------------------
// StegFs multi-session stress
// ---------------------------------------------------------------------------

StegFormatOptions SmallFormat(const char* entropy) {
  StegFormatOptions fo;
  fo.params.dummy_file_count = 2;
  fo.params.dummy_file_avg_bytes = 16 << 10;
  fo.entropy = entropy;
  return fo;
}

void CheckSpaceInvariants(StegFs* fs) {
  SpaceReport r = fs->ReportSpace();
  EXPECT_GT(r.total_blocks, 0u);
  EXPECT_LE(r.free_blocks, r.total_blocks);
  EXPECT_EQ(r.allocated_blocks + r.free_blocks, r.total_blocks);
  EXPECT_GE(r.allocated_blocks, r.metadata_blocks);
}

TEST(StegFsConcurrencyTest, ParallelUsersMixedPlainAndHiddenIo) {
  const int kUsers = 8;
  const int kRounds = 6;
  MemBlockDevice dev(1024, 32768);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat("conc-mixed")).ok());
  auto mounted = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(mounted.ok());
  StegFs* fs = mounted->get();

  // Final contents each thread committed, verified after remount.
  std::vector<std::string> final_content(kUsers);
  std::vector<std::thread> threads;
  for (int t = 0; t < kUsers; ++t) {
    threads.emplace_back([fs, t, &final_content] {
      std::string uid = "user" + std::to_string(t);
      std::string uak = "uak" + std::to_string(t);
      ASSERT_TRUE(fs->plain()->MkDir("/" + uid).ok());
      for (int r = 0; r < kRounds; ++r) {
        std::string obj = "doc" + std::to_string(r);
        ASSERT_TRUE(fs->StegCreate(uid, obj, uak, HiddenType::kFile).ok());
        ASSERT_TRUE(fs->StegConnect(uid, obj, uak).ok());
        std::string content = RandomData(4096 + 512 * r, t * 100 + r);
        ASSERT_TRUE(fs->HiddenWriteAll(uid, obj, content).ok());
        auto read_back = fs->HiddenReadAll(uid, obj);
        ASSERT_TRUE(read_back.ok());
        EXPECT_EQ(*read_back, content);

        // Plain namespace traffic interleaved with hidden traffic.
        std::string path = "/" + uid + "/f" + std::to_string(r);
        std::string plain = RandomData(2000, t * 1000 + r);
        ASSERT_TRUE(fs->plain()->WriteFile(path, plain).ok());
        EXPECT_EQ(fs->plain()->ReadFile(path).value(), plain);

        if (r + 1 < kRounds) {
          // Churn: drop every other object for remove/reconnect races.
          if (r % 2 == 0) {
            ASSERT_TRUE(fs->HiddenRemove(uid, obj, uak).ok());
          } else {
            ASSERT_TRUE(fs->StegDisconnect(uid, obj).ok());
          }
        } else {
          final_content[t] = content;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  CheckSpaceInvariants(fs);
  ASSERT_TRUE(fs->Flush().ok());
  mounted->reset();

  // Full remount: every surviving object must come back intact.
  auto remounted = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(remounted.ok());
  for (int t = 0; t < kUsers; ++t) {
    std::string uid = "user" + std::to_string(t);
    std::string uak = "uak" + std::to_string(t);
    std::string obj = "doc" + std::to_string(kRounds - 1);
    ASSERT_TRUE((*remounted)->StegConnect(uid, obj, uak).ok());
    EXPECT_EQ((*remounted)->HiddenReadAll(uid, obj).value(),
              final_content[t]);
  }
  CheckSpaceInvariants(remounted->get());
}

TEST(StegFsConcurrencyTest, DisconnectAllRacesInFlightReads) {
  MemBlockDevice dev(1024, 32768);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat("conc-disc")).ok());
  auto mounted = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(mounted.ok());
  StegFs* fs = mounted->get();

  const std::string uid = "alice", uak = "uak";
  const int kObjects = 4;
  std::vector<std::string> contents(kObjects);
  for (int i = 0; i < kObjects; ++i) {
    std::string obj = "obj" + std::to_string(i);
    ASSERT_TRUE(fs->StegCreate(uid, obj, uak, HiddenType::kFile).ok());
    ASSERT_TRUE(fs->StegConnect(uid, obj, uak).ok());
    contents[i] = RandomData(8192, 7000 + i);
    ASSERT_TRUE(fs->HiddenWriteAll(uid, obj, contents[i]).ok());
  }

  std::atomic<bool> stop{false};
  std::thread disconnector([&] {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(fs->DisconnectAll(uid).ok());
      for (int j = 0; j < kObjects; ++j) {
        // Reconnect so readers keep finding something part of the time.
        (void)fs->StegConnect(uid, "obj" + std::to_string(j), uak);
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        std::string obj = "obj" + std::to_string(t % kObjects);
        auto data = fs->HiddenReadAll(uid, obj);
        if (data.ok()) {
          // A read that wins its race sees exactly the committed bytes.
          EXPECT_EQ(*data, contents[t % kObjects]);
        } else {
          // Losing the race to DisconnectAll yields a clean status.
          EXPECT_TRUE(data.status().IsFailedPrecondition())
              << data.status().ToString();
        }
      }
    });
  }
  disconnector.join();
  for (auto& th : readers) th.join();

  CheckSpaceInvariants(fs);
  // The volume is fully functional afterwards.
  ASSERT_TRUE(fs->StegConnect(uid, "obj0", uak).ok());
  EXPECT_EQ(fs->HiddenReadAll(uid, "obj0").value(), contents[0]);
}

TEST(StegFsConcurrencyTest, FaultInjectionUnderContention) {
  test::FaultyDevice dev(1024, 32768);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat("conc-fault")).ok());
  StegFsOptions so;
  so.mount.write_policy = WritePolicy::kWriteThrough;
  auto mounted = StegFs::Mount(&dev, so);
  ASSERT_TRUE(mounted.ok());
  StegFs* fs = mounted->get();

  const int kUsers = 4;
  std::vector<std::thread> threads;
  std::atomic<int> io_errors{0};
  dev.FailWrites(400);  // the fuse blows mid-contention
  for (int t = 0; t < kUsers; ++t) {
    threads.emplace_back([&, t] {
      std::string uid = "u" + std::to_string(t);
      std::string uak = "k" + std::to_string(t);
      for (int r = 0; r < 4; ++r) {
        std::string obj = "o" + std::to_string(r);
        std::string content = RandomData(20000, t * 17 + r);
        Status s = fs->StegCreate(uid, obj, uak, HiddenType::kFile);
        if (s.ok()) s = fs->StegConnect(uid, obj, uak);
        if (s.ok()) s = fs->HiddenWriteAll(uid, obj, content);
        if (!s.ok()) {
          // Faults surface as clean statuses, never crashes.
          io_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(io_errors.load(), 0);

  // After healing, the volume accepts new work from every session.
  dev.Heal();
  std::string content = RandomData(10000, 99);
  ASSERT_TRUE(
      fs->StegCreate("survivor", "doc", "uak", HiddenType::kFile).ok());
  ASSERT_TRUE(fs->StegConnect("survivor", "doc", "uak").ok());
  ASSERT_TRUE(fs->HiddenWriteAll("survivor", "doc", content).ok());
  EXPECT_EQ(fs->HiddenReadAll("survivor", "doc").value(), content);
  CheckSpaceInvariants(fs);
}

TEST(StegFsConcurrencyTest, ThreadPoolDrivesManySessions) {
  // The same engine the benches use: a fixed pool multiplexing more
  // logical sessions than threads.
  MemBlockDevice dev(1024, 32768);
  ASSERT_TRUE(StegFs::Format(&dev, SmallFormat("conc-pool")).ok());
  auto mounted = StegFs::Mount(&dev, StegFsOptions{});
  ASSERT_TRUE(mounted.ok());
  StegFs* fs = mounted->get();

  concurrency::ThreadPool pool(4);
  std::atomic<int> failures{0};
  for (int s = 0; s < 12; ++s) {
    pool.Submit([fs, s, &failures] {
      std::string uid = "sess" + std::to_string(s);
      std::string content = RandomData(6000, 4242 + s);
      Status st = fs->StegCreate(uid, "doc", "uak", HiddenType::kFile);
      if (st.ok()) st = fs->StegConnect(uid, "doc", "uak");
      if (st.ok()) st = fs->HiddenWriteAll(uid, "doc", content);
      if (st.ok()) {
        auto data = fs->HiddenReadAll(uid, "doc");
        if (!data.ok() || *data != content) st = Status::Corruption("bad");
      }
      if (!st.ok()) failures.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(failures.load(), 0);
  CheckSpaceInvariants(fs);
}

}  // namespace
}  // namespace stegfs
