// Shared workspace: the paper's multi-user story end-to-end (sections 3.2
// and 4) — UAK hierarchies, hidden directories, RSA entry-file sharing, and
// revocation.
//
// Cast: alice (owner) runs a project with a public brief and a hidden
// directory of sensitive files at two clearance levels; bob is granted
// access to one file via an encrypted entry file; later his access is
// revoked.
#include <cstdio>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "crypto/keys.h"
#include "crypto/rsa.h"

using namespace stegfs;

namespace {
#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::stegfs::Status _s = (expr);                                   \
    if (!_s.ok()) {                                                 \
      std::fprintf(stderr, "FATAL: %s -> %s\n", #expr,              \
                   _s.ToString().c_str());                          \
      return 1;                                                     \
    }                                                               \
  } while (0)
}  // namespace

int main() {
  std::printf("=== StegFS shared workspace walkthrough ===\n\n");

  MemBlockDevice dev(1024, 131072);  // 128 MB
  StegFormatOptions format;
  format.params.dummy_file_count = 4;
  format.params.dummy_file_avg_bytes = 256 << 10;
  format.entropy = "workspace-demo";
  CHECK_OK(StegFs::Format(&dev, format));
  auto mounted = StegFs::Mount(&dev, StegFsOptions{});
  if (!mounted.ok()) return 1;
  StegFs* fs = mounted->get();

  // --- Alice: two-level UAK hierarchy ---------------------------------
  // Level 1 = "work confidential", level 2 = "board only". Disclosing the
  // level-1 key under pressure reveals nothing about level 2.
  crypto::UakHierarchy alice_keys("alice-master-key", 2);
  const std::string uak_work = alice_keys.KeyForLevel(1);
  const std::string uak_board = alice_keys.KeyForLevel(2);
  std::printf("alice derives a 2-level UAK hierarchy from her master key\n");

  // Public cover story.
  CHECK_OK(fs->plain()->MkDir("/project"));
  CHECK_OK(fs->plain()->WriteFile("/project/brief.txt",
                                  "Project Aurora: public brief v1"));

  // A plain directory is converted to hidden in one call (steg_hide).
  CHECK_OK(fs->plain()->MkDir("/project/internal"));
  CHECK_OK(fs->plain()->WriteFile("/project/internal/roadmap.md",
                                  "Q3: ship; Q4: scale"));
  CHECK_OK(fs->plain()->WriteFile("/project/internal/salaries.csv",
                                  "alice,250000\nbob,180000"));
  CHECK_OK(fs->StegHide("alice", "/project/internal", "internal", uak_work));
  std::printf("steg_hide: /project/internal -> hidden directory 'internal' "
              "(level 1)\n");

  // Board-only file at level 2.
  CHECK_OK(fs->StegCreate("alice", "acquisition-target", uak_board,
                          HiddenType::kFile));
  CHECK_OK(fs->StegConnect("alice", "acquisition-target", uak_board));
  CHECK_OK(fs->HiddenWriteAll("alice", "acquisition-target",
                              "Target: Initech. Offer: $40M."));
  CHECK_OK(fs->DisconnectAll("alice"));
  std::printf("steg_create: 'acquisition-target' hidden at level 2\n\n");

  // --- Connecting a hidden directory reveals offspring -----------------
  CHECK_OK(fs->StegConnect("alice", "internal", uak_work));
  std::printf("steg_connect('internal') reveals:\n");
  for (const auto& name : fs->ConnectedObjects("alice")) {
    std::printf("  %s\n", name.c_str());
  }
  auto roadmap = fs->HiddenReadAll("alice", "internal/roadmap.md");
  if (!roadmap.ok()) return 1;
  std::printf("roadmap.md: \"%s\"\n\n", roadmap->c_str());
  CHECK_OK(fs->DisconnectAll("alice"));

  // --- Sharing with bob (figure 4 flow) ---------------------------------
  auto bob_keys = crypto::RsaGenerateKeyPair(768, "bob-keypair-entropy");
  if (!bob_keys.ok()) return 1;
  std::printf("bob generates an RSA-768 key pair and sends alice his public "
              "key\n");

  // Owner side: steg_getentry writes the encrypted (name, FAK) record.
  CHECK_OK(fs->StegConnect("alice", "internal", uak_work));
  CHECK_OK(fs->StegGetEntry("alice", "internal/roadmap.md", uak_work,
                            "/outbox-for-bob.bin", bob_keys->public_key,
                            "share-entropy-1"));
  CHECK_OK(fs->DisconnectAll("alice"));
  std::printf("alice: steg_getentry -> /outbox-for-bob.bin (RSA envelope)\n");

  // Recipient side: steg_addentry decrypts and registers under bob's UAK.
  const std::string bob_uak = "bob-personal-uak";
  CHECK_OK(fs->StegAddEntry("alice", "/outbox-for-bob.bin",
                            bob_keys->private_key, bob_uak));
  std::printf("bob:   steg_addentry -> entry added to his UAK directory, "
              "envelope destroyed\n");

  CHECK_OK(fs->StegConnect("alice", "internal/roadmap.md", bob_uak));
  auto bob_view = fs->HiddenReadAll("alice", "internal/roadmap.md");
  if (!bob_view.ok()) return 1;
  std::printf("bob reads the shared file: \"%s\"\n\n", bob_view->c_str());
  CHECK_OK(fs->DisconnectAll("alice"));

  // --- Revocation --------------------------------------------------------
  // Alice re-keys the file under a new FAK and name; bob's stale entry now
  // points at nothing.
  CHECK_OK(fs->RevokeSharing("alice", "internal/roadmap.md", uak_work,
                             "internal/roadmap-v2.md"));
  Status bob_after = fs->StegConnect("alice", "internal/roadmap.md", bob_uak);
  std::printf("after revocation, bob's connect: %s\n",
              bob_after.ToString().c_str());
  CHECK_OK(fs->StegConnect("alice", "internal/roadmap-v2.md", uak_work));
  auto alice_view = fs->HiddenReadAll("alice", "internal/roadmap-v2.md");
  if (!alice_view.ok()) return 1;
  std::printf("alice still reads v2: \"%s\"\n\n", alice_view->c_str());

  // --- Coercion scenario -------------------------------------------------
  std::printf("Coercion drill: alice surrenders only her level-1 key.\n");
  CHECK_OK(fs->DisconnectAll("alice"));
  crypto::UakHierarchy surrendered(uak_work, 1);
  Status probe = fs->StegConnect("alice", "acquisition-target",
                                 surrendered.KeyForLevel(1));
  std::printf("attacker probes for more with the surrendered key: %s\n",
              probe.ToString().c_str());
  std::printf("The level-2 object is mathematically out of reach; its very "
              "existence is deniable.\n\nshared_workspace: OK\n");
  return 0;
}
