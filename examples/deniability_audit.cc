// Deniability audit: plays the ADVERSARY of the paper's threat model.
//
// Builds two volumes that differ only in whether a user hid data, then runs
// every analysis the paper grants the attacker — raw-image entropy scans,
// bitmap-vs-central-directory accounting, allocated-but-unlisted census —
// and shows that the analyses cannot distinguish the volumes beyond the
// standing cover population (abandoned blocks + dummy files).
#include <cmath>
#include <cstdio>
#include <vector>

#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"
#include "util/random.h"

using namespace stegfs;

namespace {

struct AuditReport {
  uint64_t total_blocks = 0;
  uint64_t allocated = 0;
  uint64_t listed = 0;    // reachable from the central directory
  uint64_t unlisted = 0;  // allocated but unreachable: the suspect set
  double mean_entropy_unlisted = 0;
  double mean_entropy_free = 0;
  uint64_t low_entropy_unlisted = 0;  // "smoking gun" blocks (structure)
};

double BlockEntropy(const uint8_t* data, size_t n) {
  int counts[256] = {0};
  for (size_t i = 0; i < n; ++i) counts[data[i]]++;
  double h = 0;
  for (int c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

// Everything here uses only what a seizing adversary has: the raw image,
// the superblock, the bitmap, and the central directory. No keys.
AuditReport Audit(MemBlockDevice* dev, StegFs* fs) {
  AuditReport report;
  const Layout& l = fs->plain()->layout();
  report.total_blocks = l.num_blocks;

  std::vector<uint8_t> referenced;
  (void)fs->plain()->CollectReferencedBlocks(&referenced);

  const auto& raw = dev->raw();
  double unlisted_sum = 0, free_sum = 0;
  uint64_t free_count = 0;
  for (uint64_t b = l.data_start; b < l.num_blocks; ++b) {
    bool allocated = fs->plain()->bitmap()->IsAllocated(b);
    double h = BlockEntropy(raw.data() + b * l.block_size, l.block_size);
    if (allocated) {
      ++report.allocated;
      if (referenced[b]) {
        ++report.listed;
      } else {
        ++report.unlisted;
        unlisted_sum += h;
        if (h < 7.0) ++report.low_entropy_unlisted;
      }
    } else {
      ++free_count;
      free_sum += h;
    }
  }
  if (report.unlisted) report.mean_entropy_unlisted = unlisted_sum / report.unlisted;
  if (free_count) report.mean_entropy_free = free_sum / free_count;
  return report;
}

void PrintReport(const char* label, const AuditReport& r) {
  std::printf("%s\n", label);
  std::printf("  allocated blocks:            %llu\n",
              static_cast<unsigned long long>(r.allocated));
  std::printf("  listed in central directory: %llu\n",
              static_cast<unsigned long long>(r.listed));
  std::printf("  allocated-but-unlisted:      %llu  <- the suspect set\n",
              static_cast<unsigned long long>(r.unlisted));
  std::printf("  mean entropy, unlisted:      %.4f bits/byte\n",
              r.mean_entropy_unlisted / 1.0);
  std::printf("  mean entropy, free blocks:   %.4f bits/byte\n",
              r.mean_entropy_free);
  std::printf("  structured unlisted blocks:  %llu\n\n",
              static_cast<unsigned long long>(r.low_entropy_unlisted));
}

std::unique_ptr<StegFs> MakeVolume(MemBlockDevice* dev, bool with_secret) {
  StegFormatOptions format;
  format.params.dummy_file_count = 6;
  format.params.dummy_file_avg_bytes = 512 << 10;
  format.entropy = "audit-volume";  // identical cover on both volumes
  if (!StegFs::Format(dev, format).ok()) std::exit(1);
  auto fs = StegFs::Mount(dev, StegFsOptions{});
  if (!fs.ok()) std::exit(1);

  // Both volumes carry identical innocuous plain files.
  (void)(*fs)->plain()->MkDir("/home");
  (void)(*fs)->plain()->WriteFile("/home/notes.txt", "nothing to see");
  Xoshiro rng(42);
  std::string report(300 << 10, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(report.data()), report.size());
  (void)(*fs)->plain()->WriteFile("/home/report.pdf", report);

  if (with_secret) {
    std::string secret(700 << 10, '\0');
    Xoshiro srng(7);
    srng.FillBytes(reinterpret_cast<uint8_t*>(secret.data()), secret.size());
    (void)(*fs)->StegCreate("alice", "dossier", "alice-uak",
                            HiddenType::kFile);
    (void)(*fs)->StegConnect("alice", "dossier", "alice-uak");
    (void)(*fs)->HiddenWriteAll("alice", "dossier", secret);
    (void)(*fs)->DisconnectAll("alice");
  }
  // Dummy churn runs on both volumes (it is system maintenance).
  for (int i = 0; i < 3; ++i) (void)(*fs)->MaintenanceTick();
  (void)(*fs)->Flush();
  return std::move(fs).value();
}

}  // namespace

int main() {
  std::printf("=== StegFS deniability audit (the adversary's view) ===\n\n");
  std::printf("Volume A: no user secrets. Volume B: alice hid a 700 KB "
              "dossier.\nBoth audited with full access to the raw image, "
              "bitmap and central directory.\n\n");

  MemBlockDevice dev_a(1024, 65536), dev_b(1024, 65536);
  auto fs_a = MakeVolume(&dev_a, /*with_secret=*/false);
  auto fs_b = MakeVolume(&dev_b, /*with_secret=*/true);

  AuditReport a = Audit(&dev_a, fs_a.get());
  AuditReport b = Audit(&dev_b, fs_b.get());
  PrintReport("Volume A (innocent):", a);
  PrintReport("Volume B (contains hidden data):", b);

  std::printf("Adversary's dilemma:\n");
  std::printf("  * Both volumes have thousands of allocated-but-unlisted "
              "blocks\n    (abandoned blocks + dummy files do this by "
              "design).\n");
  std::printf("  * Unlisted blocks are statistically identical to free "
              "blocks\n    (entropy gap: %.4f bits/byte).\n",
              std::abs(b.mean_entropy_unlisted - b.mean_entropy_free));
  std::printf("  * Zero structured blocks betray content on either "
              "volume.\n");
  std::printf("  * Dummy-file churn varies the unlisted count between "
              "snapshots,\n    so the A-vs-B difference (%llu blocks) is "
              "not attributable.\n\n",
              static_cast<unsigned long long>(b.unlisted - a.unlisted));
  std::printf("Under coercion, alice reveals /home and a low-level UAK, and "
              "plausibly denies\nthat any higher-level key exists. "
              "deniability_audit: OK\n");
  return 0;
}
