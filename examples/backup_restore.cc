// Backup & recovery walkthrough (paper section 3.3, APIs 8-9).
//
// Shows the asymmetric backup strategy: plain files are saved logically
// while hidden/abandoned/dummy blocks are imaged raw and restored to their
// ORIGINAL addresses — the administrator backs up data they cannot even
// enumerate, and hidden files survive a total volume loss.
#include <cstdio>

#include "blockdev/mem_block_device.h"
#include "core/backup.h"
#include "core/stegfs.h"
#include "util/random.h"

using namespace stegfs;

namespace {
#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::stegfs::Status _s = (expr);                                   \
    if (!_s.ok()) {                                                 \
      std::fprintf(stderr, "FATAL: %s -> %s\n", #expr,              \
                   _s.ToString().c_str());                          \
      return 1;                                                     \
    }                                                               \
  } while (0)
}  // namespace

int main() {
  std::printf("=== StegFS backup & recovery walkthrough ===\n\n");

  MemBlockDevice dev(1024, 65536);  // 64 MB production volume
  StegFormatOptions format;
  format.params.dummy_file_count = 4;
  format.params.dummy_file_avg_bytes = 256 << 10;
  format.entropy = "backup-demo";
  CHECK_OK(StegFs::Format(&dev, format));
  auto mounted = StegFs::Mount(&dev, StegFsOptions{});
  if (!mounted.ok()) return 1;
  StegFs* fs = mounted->get();

  // Populate: plain tree + a user's hidden vault.
  CHECK_OK(fs->plain()->MkDir("/srv"));
  CHECK_OK(fs->plain()->WriteFile("/srv/index.html", "<h1>hello</h1>"));
  Xoshiro rng(21);
  std::string db(2 << 20, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(db.data()), db.size());
  CHECK_OK(fs->plain()->WriteFile("/srv/data.db", db));

  std::string vault(900 << 10, '\0');
  rng.FillBytes(reinterpret_cast<uint8_t*>(vault.data()), vault.size());
  CHECK_OK(fs->StegCreate("carol", "vault", "carol-uak", HiddenType::kFile));
  CHECK_OK(fs->StegConnect("carol", "vault", "carol-uak"));
  CHECK_OK(fs->HiddenWriteAll("carol", "vault", vault));
  CHECK_OK(fs->DisconnectAll("carol"));
  std::printf("Volume populated: 2 plain files + carol's 900 KB hidden "
              "vault\n");

  // The administrator runs steg_backup, knowing nothing of carol's vault.
  BackupStats stats;
  auto image = StegBackup(fs, &stats);
  if (!image.ok()) return 1;
  std::printf("\nsteg_backup image: %.2f MB total\n",
              stats.image_bytes / 1048576.0);
  std::printf("  raw-imaged blocks (hidden+abandoned+dummy): %llu (%.2f "
              "MB)\n",
              static_cast<unsigned long long>(stats.imaged_blocks),
              stats.imaged_blocks * 1024 / 1048576.0);
  std::printf("  plain files saved logically: %llu files, %llu dirs\n",
              static_cast<unsigned long long>(stats.plain_files),
              static_cast<unsigned long long>(stats.plain_dirs));
  std::printf("  (a full device image would be 64 MB)\n");

  // Catastrophe: the volume is lost. Recover onto a fresh device.
  std::printf("\n*** disk failure: original volume destroyed ***\n");
  MemBlockDevice fresh(1024, 65536);
  CHECK_OK(StegRecover(&fresh, image.value()));
  std::printf("steg_recovery completed onto a fresh device\n");

  auto recovered = StegFs::Mount(&fresh, StegFsOptions{});
  if (!recovered.ok()) return 1;

  auto html = (*recovered)->plain()->ReadFile("/srv/index.html");
  auto db_back = (*recovered)->plain()->ReadFile("/srv/data.db");
  if (!html.ok() || !db_back.ok()) return 1;
  std::printf("\nplain files restored: index.html %s, data.db %s\n",
              html.value() == "<h1>hello</h1>" ? "OK" : "MISMATCH",
              db_back.value() == db ? "OK" : "MISMATCH");

  CHECK_OK((*recovered)->StegConnect("carol", "vault", "carol-uak"));
  auto vault_back = (*recovered)->HiddenReadAll("carol", "vault");
  if (!vault_back.ok()) return 1;
  std::printf("carol's hidden vault: %s (%zu bytes, original addresses)\n",
              vault_back.value() == vault ? "OK" : "MISMATCH",
              vault_back->size());

  std::printf("\nNote the paper's caveat: hidden files restore together or "
              "not at all —\ntheir inode tables cannot be relocated by a "
              "process that cannot read them.\n\nbackup_restore: OK\n");
  return 0;
}
