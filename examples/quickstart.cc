// Quickstart: format a StegFS volume, hide a file, prove it survives a
// remount and that the wrong key finds nothing.
//
//   ./quickstart [volume-path]
//
// With a path, the volume persists on the host file system (re-run to see
// the hidden file come back); without, an in-memory volume is used.
#include <cstdio>
#include <memory>

#include "blockdev/file_block_device.h"
#include "blockdev/mem_block_device.h"
#include "core/stegfs.h"

using namespace stegfs;

namespace {

void Die(const Status& s, const char* where) {
  std::fprintf(stderr, "FATAL at %s: %s\n", where, s.ToString().c_str());
  std::exit(1);
}

#define CHECK_OK(expr)                       \
  do {                                       \
    ::stegfs::Status _s = (expr);            \
    if (!_s.ok()) Die(_s, #expr);            \
  } while (0)

}  // namespace

int main(int argc, char** argv) {
  // 1. A 64 MB volume with 1 KB blocks.
  std::unique_ptr<BlockDevice> device;
  bool fresh = true;
  if (argc > 1) {
    auto opened = FileBlockDevice::Open(argv[1], 1024);
    if (opened.ok()) {
      device = std::move(opened).value();
      fresh = false;
      std::printf("Reopened existing volume %s\n", argv[1]);
    } else {
      auto created = FileBlockDevice::Create(argv[1], 1024, 65536);
      if (!created.ok()) Die(created.status(), "create volume");
      device = std::move(created).value();
      std::printf("Created volume file %s (64 MB)\n", argv[1]);
    }
  } else {
    device = std::make_unique<MemBlockDevice>(1024, 65536);
    std::printf("Using an in-memory 64 MB volume\n");
  }

  // 2. Format (random-fill + abandoned blocks + dummy files), then mount.
  if (fresh) {
    StegFormatOptions format;
    format.params.dummy_file_count = 4;          // small demo volume
    format.params.dummy_file_avg_bytes = 256 << 10;
    format.entropy = "quickstart-demo";
    CHECK_OK(StegFs::Format(device.get(), format));
    std::printf("Formatted: every block random-filled, %u dummy files, "
                "%.0f%% abandoned blocks\n",
                format.params.dummy_file_count,
                format.params.abandoned_fraction * 100);
  }
  auto fs = StegFs::Mount(device.get(), StegFsOptions{});
  if (!fs.ok()) Die(fs.status(), "mount");

  // 3. Ordinary files work as usual — and provide plausible cover.
  CHECK_OK((*fs)->plain()->WriteFile("/shopping-list.txt",
                                     "eggs, milk, bread"));
  std::printf("\nPlain file /shopping-list.txt written (visible to anyone)\n");

  // 4. Hide a document under user 'alice' with her user access key.
  const std::string uid = "alice";
  const std::string uak = "alice-secret-uak";
  if (fresh) {
    CHECK_OK((*fs)->StegCreate(uid, "budget.xls", uak, HiddenType::kFile));
    CHECK_OK((*fs)->StegConnect(uid, "budget.xls", uak));
    CHECK_OK((*fs)->HiddenWriteAll(uid, "budget.xls",
                                   "Q3 acquisition budget: $4.2M"));
    CHECK_OK((*fs)->DisconnectAll(uid));
    std::printf("Hidden file 'budget.xls' created and disconnected\n");
  }

  // 5. Remount: nothing about the hidden file is visible...
  CHECK_OK((*fs)->Flush());
  fs->reset();
  fs = StegFs::Mount(device.get(), StegFsOptions{});
  if (!fs.ok()) Die(fs.status(), "remount");
  auto listing = (*fs)->plain()->List("/");
  std::printf("\nAfter remount, central directory lists %zu entr%s:\n",
              listing->size(), listing->size() == 1 ? "y" : "ies");
  for (const auto& e : *listing) {
    std::printf("  /%s\n", e.name.c_str());
  }

  // 6. ...the wrong key finds nothing...
  Status wrong = (*fs)->StegConnect(uid, "budget.xls", "wrong-key");
  std::printf("\nConnect with wrong key: %s\n", wrong.ToString().c_str());

  // 7. ...but the right key recovers the document.
  CHECK_OK((*fs)->StegConnect(uid, "budget.xls", uak));
  auto content = (*fs)->HiddenReadAll(uid, "budget.xls");
  if (!content.ok()) Die(content.status(), "hidden read");
  std::printf("Connect with correct key: \"%s\"\n", content->c_str());

  SpaceReport r = (*fs)->ReportSpace();
  std::printf("\nVolume: %llu/%llu blocks allocated (plain bytes: %llu)\n",
              static_cast<unsigned long long>(r.allocated_blocks),
              static_cast<unsigned long long>(r.total_blocks),
              static_cast<unsigned long long>(r.plain_file_bytes));
  std::printf("An observer cannot tell which unlisted blocks are abandoned, "
              "dummy, or alice's.\n");
  CHECK_OK((*fs)->DisconnectAll(uid));
  CHECK_OK((*fs)->Flush());
  std::printf("\nquickstart: OK\n");
  return 0;
}
