// stegfs_shell: an interactive (or scripted) shell over a StegFS volume —
// the closest user experience to the paper's mounted Linux file system.
//
//   ./stegfs_shell <volume.img>            interactive session
//   echo "cmds" | ./stegfs_shell <volume>  scripted session
//
// Commands:
//   mkfs                         format the volume (DESTROYS contents)
//   login <uid>                  set the session user
//   ls [path]                    list a plain directory (or /steg)
//   cat <path>                   print a plain or /steg/<obj> file
//   put <path> <text...>         write a plain file
//   mkdir <path>                 create a plain directory
//   rm <path>                    unlink a plain file
//   hide <path> <objname> <uak>  steg_hide a plain file/dir
//   unhide <path> <objname> <uak> steg_unhide back to plain
//   create <objname> <uak>       steg_create an empty hidden file
//   connect <objname> <uak>      steg_connect (reveals offspring)
//   disconnect <objname>         steg_disconnect
//   hput <objname> <text...>     write a connected hidden file
//   hrm <objname> <uak>          delete a hidden object
//   tick                         one dummy-maintenance round
//   space                        volume space report
//   quit
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "blockdev/file_block_device.h"
#include "core/stegfs.h"
#include "vfs/vfs.h"

using namespace stegfs;

namespace {

void Report(const Status& s) {
  std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
}

std::vector<std::string> Tokenize(const std::string& line, int max_parts) {
  std::vector<std::string> parts;
  std::istringstream in(line);
  std::string tok;
  while (static_cast<int>(parts.size()) + 1 < max_parts && in >> tok) {
    parts.push_back(tok);
  }
  std::string rest;
  std::getline(in, rest);
  if (!rest.empty()) {
    size_t start = rest.find_first_not_of(" \t");
    if (start != std::string::npos) parts.push_back(rest.substr(start));
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <volume.img>\n", argv[0]);
    return 2;
  }
  const std::string volume_path = argv[1];
  const uint32_t kBlockSize = 1024;
  const uint64_t kBlocks = 65536;  // 64 MB

  std::unique_ptr<BlockDevice> device;
  {
    auto opened = FileBlockDevice::Open(volume_path, kBlockSize);
    if (opened.ok()) {
      device = std::move(opened).value();
    } else {
      auto created = FileBlockDevice::Create(volume_path, kBlockSize, kBlocks);
      if (!created.ok()) {
        std::fprintf(stderr, "cannot create %s: %s\n", volume_path.c_str(),
                     created.status().ToString().c_str());
        return 1;
      }
      device = std::move(created).value();
      std::printf("created empty volume file %s — run 'mkfs' first\n",
                  volume_path.c_str());
    }
  }

  std::unique_ptr<StegFs> fs;
  {
    auto mounted = StegFs::Mount(device.get(), StegFsOptions{});
    if (mounted.ok()) {
      fs = std::move(mounted).value();
      std::printf("mounted %s\n", volume_path.c_str());
    } else {
      std::printf("not a StegFS volume yet (%s) — run 'mkfs'\n",
                  mounted.status().ToString().c_str());
    }
  }

  std::string uid = "user";
  std::string line;
  std::printf("stegfs> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    auto parts = Tokenize(line, 4);
    if (parts.empty()) {
      std::printf("stegfs> ");
      std::fflush(stdout);
      continue;
    }
    const std::string& cmd = parts[0];

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "mkfs") {
      fs.reset();
      StegFormatOptions fo;
      fo.params.dummy_file_count = 4;
      fo.params.dummy_file_avg_bytes = 256 << 10;
      fo.entropy = "shell:" + volume_path;
      Status s = StegFs::Format(device.get(), fo);
      if (s.ok()) {
        auto mounted = StegFs::Mount(device.get(), StegFsOptions{});
        if (mounted.ok()) fs = std::move(mounted).value();
        std::printf("formatted and mounted\n");
      } else {
        Report(s);
      }
    } else if (!fs) {
      std::printf("no mounted volume — run 'mkfs'\n");
    } else if (cmd == "login" && parts.size() >= 2) {
      (void)fs->DisconnectAll(uid);
      uid = parts[1];
      std::printf("session user: %s\n", uid.c_str());
    } else if (cmd == "ls") {
      std::string path = parts.size() >= 2 ? parts[1] : "/";
      if (path == "/steg") {
        for (const auto& name : fs->ConnectedObjects(uid)) {
          std::printf("  [hidden] %s\n", name.c_str());
        }
      } else {
        auto entries = fs->plain()->List(path);
        if (!entries.ok()) {
          Report(entries.status());
        } else {
          for (const auto& e : *entries) {
            auto info = fs->plain()->Stat(
                path == "/" ? "/" + e.name : path + "/" + e.name);
            std::printf("  %s%s\n", e.name.c_str(),
                        info.ok() && info->type == InodeType::kDirectory
                            ? "/"
                            : "");
          }
        }
      }
    } else if (cmd == "cat" && parts.size() >= 2) {
      const std::string& path = parts[1];
      if (path.rfind("/steg/", 0) == 0) {
        auto data = fs->HiddenReadAll(uid, path.substr(6));
        if (data.ok()) {
          std::printf("%s\n", data->c_str());
        } else {
          Report(data.status());
        }
      } else {
        auto data = fs->plain()->ReadFile(path);
        if (data.ok()) {
          std::printf("%s\n", data->c_str());
        } else {
          Report(data.status());
        }
      }
    } else if (cmd == "put" && parts.size() >= 3) {
      // Re-tokenize so <text...> keeps its spaces (parts was split for the
      // 4-argument commands).
      auto p = Tokenize(line, 3);
      Report(fs->plain()->WriteFile(p[1], p[2]));
    } else if (cmd == "mkdir" && parts.size() >= 2) {
      Report(fs->plain()->MkDir(parts[1]));
    } else if (cmd == "rm" && parts.size() >= 2) {
      Report(fs->plain()->Unlink(parts[1]));
    } else if (cmd == "hide" && parts.size() >= 4) {
      Report(fs->StegHide(uid, parts[1], parts[2], parts[3]));
    } else if (cmd == "unhide" && parts.size() >= 4) {
      Report(fs->StegUnhide(uid, parts[1], parts[2], parts[3]));
    } else if (cmd == "create" && parts.size() >= 3) {
      Report(fs->StegCreate(uid, parts[1], parts[2], HiddenType::kFile));
    } else if (cmd == "connect" && parts.size() >= 3) {
      Report(fs->StegConnect(uid, parts[1], parts[2]));
    } else if (cmd == "disconnect" && parts.size() >= 2) {
      Report(fs->StegDisconnect(uid, parts[1]));
    } else if (cmd == "hput" && parts.size() >= 3) {
      auto p = Tokenize(line, 3);
      Report(fs->HiddenWriteAll(uid, p[1], p[2]));
    } else if (cmd == "hrm" && parts.size() >= 3) {
      Report(fs->HiddenRemove(uid, parts[1], parts[2]));
    } else if (cmd == "tick") {
      Report(fs->MaintenanceTick());
    } else if (cmd == "space") {
      SpaceReport r = fs->ReportSpace();
      std::printf("blocks: %llu total, %llu allocated, %llu free "
                  "(plain bytes: %llu)\n",
                  static_cast<unsigned long long>(r.total_blocks),
                  static_cast<unsigned long long>(r.allocated_blocks),
                  static_cast<unsigned long long>(r.free_blocks),
                  static_cast<unsigned long long>(r.plain_file_bytes));
    } else {
      std::printf("unknown or incomplete command: %s\n", cmd.c_str());
    }
    std::printf("stegfs> ");
    std::fflush(stdout);
  }

  if (fs) {
    (void)fs->DisconnectAll(uid);
    (void)fs->Flush();
  }
  std::printf("\nbye\n");
  return 0;
}
