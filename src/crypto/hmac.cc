#include "crypto/hmac.h"

#include <cstring>

namespace stegfs {
namespace crypto {

Sha256Digest HmacSha256(const std::string& key, const void* data, size_t len) {
  uint8_t k[64];
  std::memset(k, 0, sizeof(k));
  if (key.size() > 64) {
    Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, 64);
  inner.Update(data, len);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, 64);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

std::vector<uint8_t> HkdfExpand(const std::string& prk, const std::string& info,
                                size_t out_len) {
  std::vector<uint8_t> out;
  out.reserve(out_len);
  std::string t;  // T(i-1)
  uint8_t counter = 1;
  while (out.size() < out_len) {
    std::string block = t;
    block += info;
    block.push_back(static_cast<char>(counter++));
    Sha256Digest d = HmacSha256(prk, block);
    t.assign(reinterpret_cast<const char*>(d.data()), d.size());
    size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

}  // namespace crypto
}  // namespace stegfs
