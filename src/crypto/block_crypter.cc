#include "crypto/block_crypter.h"

#include <cassert>
#include <cstring>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace stegfs {
namespace crypto {

BlockCrypter::BlockCrypter(const std::string& key) {
  // Derive independent data and IV keys so a related-key interaction between
  // the two cipher instances is impossible.
  std::vector<uint8_t> dk = HkdfExpand(key, "stegfs-block-data-key", 32);
  std::vector<uint8_t> ik = HkdfExpand(key, "stegfs-block-essiv-key", 32);
  data_cipher_ = std::make_unique<Aes>(dk.data(), dk.size());
  iv_cipher_ = std::make_unique<Aes>(ik.data(), ik.size());
}

void BlockCrypter::ComputeIv(uint64_t block_number, uint8_t iv[16]) const {
  uint8_t plain[16] = {0};
  for (int i = 0; i < 8; ++i) {
    plain[i] = static_cast<uint8_t>(block_number >> (8 * i));
  }
  iv_cipher_->EncryptBlock(plain, iv);
}

void BlockCrypter::EncryptBlock(uint64_t block_number, uint8_t* data,
                                size_t size) const {
  assert(size % 16 == 0);
  uint8_t chain[16];
  ComputeIv(block_number, chain);
  for (size_t off = 0; off < size; off += 16) {
    for (int i = 0; i < 16; ++i) data[off + i] ^= chain[i];
    data_cipher_->EncryptBlock(data + off, data + off);
    std::memcpy(chain, data + off, 16);
  }
}

void BlockCrypter::DecryptBlock(uint64_t block_number, uint8_t* data,
                                size_t size) const {
  assert(size % 16 == 0);
  uint8_t chain[16];
  ComputeIv(block_number, chain);
  uint8_t prev_cipher[16];
  for (size_t off = 0; off < size; off += 16) {
    std::memcpy(prev_cipher, data + off, 16);
    data_cipher_->DecryptBlock(data + off, data + off);
    for (int i = 0; i < 16; ++i) data[off + i] ^= chain[i];
    std::memcpy(chain, prev_cipher, 16);
  }
}

}  // namespace crypto
}  // namespace stegfs
