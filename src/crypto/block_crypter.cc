#include "crypto/block_crypter.h"

#include <cassert>
#include <cstring>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

namespace stegfs {
namespace crypto {

BlockCrypter::BlockCrypter(const std::string& key) {
  // Derive independent data and IV keys so a related-key interaction between
  // the two cipher instances is impossible.
  std::vector<uint8_t> dk = HkdfExpand(key, "stegfs-block-data-key", 32);
  std::vector<uint8_t> ik = HkdfExpand(key, "stegfs-block-essiv-key", 32);
  data_cipher_ = std::make_unique<Aes>(dk.data(), dk.size());
  iv_cipher_ = std::make_unique<Aes>(ik.data(), ik.size());
}

void BlockCrypter::ComputeIv(uint64_t block_number, uint8_t iv[16]) const {
  uint8_t plain[16] = {0};
  for (int i = 0; i < 8; ++i) {
    plain[i] = static_cast<uint8_t>(block_number >> (8 * i));
  }
  iv_cipher_->EncryptBlock(plain, iv);
}

void BlockCrypter::ComputeIvs(const CryptSpan* spans, size_t n,
                              uint8_t* ivs) const {
  // Little-endian block numbers, zero-padded to 16 bytes, then one
  // pipelined ECB pass over all n counters.
  std::memset(ivs, 0, n * 16);
  for (size_t s = 0; s < n; ++s) {
    for (int i = 0; i < 8; ++i) {
      ivs[s * 16 + i] = static_cast<uint8_t>(spans[s].block_number >> (8 * i));
    }
  }
  iv_cipher_->EncryptBlocksEcb(ivs, ivs, n);
}

void BlockCrypter::EncryptWithIv(const uint8_t iv[16], uint8_t* data,
                                 size_t size) const {
  uint8_t chain[16];
  std::memcpy(chain, iv, 16);
  for (size_t off = 0; off < size; off += 16) {
    for (int i = 0; i < 16; ++i) data[off + i] ^= chain[i];
    data_cipher_->EncryptBlock(data + off, data + off);
    std::memcpy(chain, data + off, 16);
  }
}

void BlockCrypter::EncryptBlock(uint64_t block_number, uint8_t* data,
                                size_t size) const {
  assert(size % 16 == 0);
  uint8_t iv[16];
  ComputeIv(block_number, iv);
  EncryptWithIv(iv, data, size);
}

void BlockCrypter::DecryptBlock(uint64_t block_number, uint8_t* data,
                                size_t size) const {
  CryptSpan span{block_number, data};
  DecryptBlocks(&span, 1, size);
}

void BlockCrypter::EncryptBlocks(const CryptSpan* spans, size_t n,
                                 size_t size) const {
  assert(size % 16 == 0);
  if (n == 0) return;
  // One timer per batch call, never per block — the AES work below is the
  // hot loop.
  obs::CryptoMetrics& cm = obs::GlobalCryptoMetrics();
  obs::LatencyTimer timer(&cm.encrypt_ns);
  cm.blocks_encrypted.Add(n);
  std::vector<uint8_t> ivs(n * 16);
  ComputeIvs(spans, n, ivs.data());

  // Four device blocks at a time: their CBC chains are independent, so the
  // four lanes keep the hardware AES pipeline full even though each chain
  // is sequential internally.
  size_t s = 0;
  for (; s + 4 <= n; s += 4) {
    uint8_t chain[4][16];
    for (int l = 0; l < 4; ++l) std::memcpy(chain[l], &ivs[(s + l) * 16], 16);
    for (size_t off = 0; off < size; off += 16) {
      const uint8_t* in[4];
      uint8_t* out[4];
      for (int l = 0; l < 4; ++l) {
        uint8_t* p = spans[s + l].data + off;
        for (int i = 0; i < 16; ++i) p[i] ^= chain[l][i];
        in[l] = p;
        out[l] = p;
      }
      data_cipher_->Encrypt4(in, out);
      for (int l = 0; l < 4; ++l) {
        std::memcpy(chain[l], spans[s + l].data + off, 16);
      }
    }
  }
  for (; s < n; ++s) {
    EncryptWithIv(&ivs[s * 16], spans[s].data, size);
  }
}

void BlockCrypter::DecryptBlocks(const CryptSpan* spans, size_t n,
                                 size_t size) const {
  assert(size % 16 == 0);
  if (n == 0) return;
  obs::CryptoMetrics& cm = obs::GlobalCryptoMetrics();
  obs::LatencyTimer timer(&cm.decrypt_ns);
  cm.blocks_decrypted.Add(n);
  std::vector<uint8_t> ivs(n * 16);
  ComputeIvs(spans, n, ivs.data());

  // CBC decryption is ciphertext-parallel: keep a copy of the ciphertext,
  // ECB-decrypt the whole block pipelined, then XOR each 16-byte cell with
  // the previous ciphertext cell (the IV for the first).
  std::vector<uint8_t> cipher(size);
  for (size_t s = 0; s < n; ++s) {
    uint8_t* data = spans[s].data;
    std::memcpy(cipher.data(), data, size);
    data_cipher_->DecryptBlocksEcb(data, data, size / 16);
    for (int i = 0; i < 16; ++i) data[i] ^= ivs[s * 16 + i];
    for (size_t off = 16; off < size; off += 16) {
      const uint8_t* prev = cipher.data() + off - 16;
      for (int i = 0; i < 16; ++i) data[off + i] ^= prev[i];
    }
  }
}

}  // namespace crypto
}  // namespace stegfs
