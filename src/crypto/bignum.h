// Arbitrary-precision unsigned integers, sized for RSA key material.
//
// Implemented from scratch (no GMP): schoolbook multiplication, bitwise long
// division, binary modular exponentiation, extended-Euclid inverse and
// Miller-Rabin primality. Performance is adequate for the 512-1024 bit keys
// used by the StegFS sharing utility; this is not a general-purpose bignum.
#ifndef STEGFS_CRYPTO_BIGNUM_H_
#define STEGFS_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/prng.h"

namespace stegfs {
namespace crypto {

// Unsigned big integer, little-endian 32-bit limbs, always normalized (no
// trailing zero limbs; zero is an empty limb vector).
class BigInt {
 public:
  BigInt() = default;
  static BigInt FromUint64(uint64_t v);
  // Big-endian byte import/export (the RSA wire format).
  static BigInt FromBytes(const uint8_t* data, size_t len);
  static BigInt FromBytes(const std::vector<uint8_t>& b) {
    return FromBytes(b.data(), b.size());
  }
  // Export as big-endian, left-padded with zeros to at least `min_len`.
  std::vector<uint8_t> ToBytes(size_t min_len = 0) const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  // Number of significant bits; 0 for zero.
  size_t BitLength() const;
  bool Bit(size_t i) const;

  // Three-way comparison: negative, zero, positive.
  static int Compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& o) const { return Compare(*this, o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(*this, o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(*this, o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(*this, o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(*this, o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(*this, o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  // Requires *this >= o (unsigned arithmetic).
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;

  BigInt ShiftLeft(size_t bits) const;
  BigInt ShiftRight(size_t bits) const;

  // q = a / b, r = a % b. b must be nonzero. Outputs may alias inputs.
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r);
  BigInt Mod(const BigInt& m) const;

  // (this ^ exp) mod m, via square-and-multiply. m must be nonzero.
  BigInt ModExp(const BigInt& exp, const BigInt& m) const;
  // Multiplicative inverse modulo m; returns zero BigInt if none exists.
  BigInt ModInverse(const BigInt& m) const;
  static BigInt Gcd(BigInt a, BigInt b);

  // Uniform random integer in [0, bound) drawn from `drbg`.
  static BigInt Random(CtrDrbg* drbg, const BigInt& bound);
  // Random integer with exactly `bits` bits (top bit set).
  static BigInt RandomBits(CtrDrbg* drbg, size_t bits);

  // Miller-Rabin probabilistic primality test.
  static bool IsProbablePrime(const BigInt& n, CtrDrbg* drbg, int rounds = 24);
  // Generates a random prime with exactly `bits` bits.
  static BigInt GeneratePrime(size_t bits, CtrDrbg* drbg);

  std::string ToHex() const;

 private:
  void Trim();

  std::vector<uint32_t> limbs_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_BIGNUM_H_
