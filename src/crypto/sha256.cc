#include "crypto/sha256.h"

namespace stegfs {
namespace crypto {

namespace {

// First 32 bits of the fractional parts of the cube roots of the first 64
// primes (FIPS 180-2 section 4.2.2).
constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint32_t Ch(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (~x & z);
}
inline uint32_t Maj(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) ^ (x & z) ^ (y & z);
}
inline uint32_t BigSigma0(uint32_t x) {
  return Rotr(x, 2) ^ Rotr(x, 13) ^ Rotr(x, 22);
}
inline uint32_t BigSigma1(uint32_t x) {
  return Rotr(x, 6) ^ Rotr(x, 11) ^ Rotr(x, 25);
}
inline uint32_t SmallSigma0(uint32_t x) {
  return Rotr(x, 7) ^ Rotr(x, 18) ^ (x >> 3);
}
inline uint32_t SmallSigma1(uint32_t x) {
  return Rotr(x, 17) ^ Rotr(x, 19) ^ (x >> 10);
}

}  // namespace

void Sha256::Reset() {
  // Initial hash value (FIPS 180-2 section 5.3.2).
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::ProcessBlock(const uint8_t block[64]) {
  uint32_t w[64];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<uint32_t>(block[t * 4]) << 24) |
           (static_cast<uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 64; ++t) {
    w[t] = SmallSigma1(w[t - 2]) + w[t - 7] + SmallSigma0(w[t - 15]) +
           w[t - 16];
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int t = 0; t < 64; ++t) {
    uint32_t t1 = h + BigSigma1(e) + Ch(e, f, g) + kK[t] + w[t];
    uint32_t t2 = BigSigma0(a) + Maj(a, b, c);
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bit_count_ += static_cast<uint64_t>(len) * 8;

  if (buffer_len_ > 0) {
    size_t need = 64 - buffer_len_;
    size_t take = len < need ? len : need;
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, p, len);
    buffer_len_ = len;
  }
}

Sha256Digest Sha256::Finish() {
  // Pad: 0x80, zeros, then the 64-bit big-endian bit count.
  uint64_t bits = bit_count_;
  uint8_t pad[72];
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i) {
    pad[pad_len + i] = static_cast<uint8_t>(bits >> (56 - 8 * i));
  }
  Update(pad, pad_len + 8);

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha256Digest Sha256::Hash(const void* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finish();
}

Sha256Digest Sha256::Hash2(const std::string& a, const std::string& b) {
  Sha256 h;
  h.Update(a);
  h.Update(b);
  return h.Finish();
}

}  // namespace crypto
}  // namespace stegfs
