// Sector-level encryption: AES-256-CBC with ESSIV per-block IVs.
//
// Every block of a hidden object (header, inode blocks, data blocks, and the
// free blocks it holds) is encrypted so that it is indistinguishable from
// the random fill written at format time (paper section 3.1). ESSIV
// (IV = AES_k2(block_number), k2 = SHA256(key)) makes the IV secret and
// position-dependent without storing it, so identical plaintext at two
// addresses yields unrelated ciphertext and no per-block metadata leaks.
#ifndef STEGFS_CRYPTO_BLOCK_CRYPTER_H_
#define STEGFS_CRYPTO_BLOCK_CRYPTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "util/status.h"

namespace stegfs {
namespace crypto {

// Encrypts/decrypts fixed-size device blocks keyed by (key, block_number).
// Block size must be a multiple of 16 bytes (true for all supported device
// block sizes, 512 B - 64 KB).
class BlockCrypter {
 public:
  // `key` is arbitrary-length key material; internally a 256-bit data key
  // and a 256-bit IV key are derived from it.
  explicit BlockCrypter(const std::string& key);

  // In-place whole-block transforms. `size` must be a multiple of 16.
  void EncryptBlock(uint64_t block_number, uint8_t* data, size_t size) const;
  void DecryptBlock(uint64_t block_number, uint8_t* data, size_t size) const;

 private:
  void ComputeIv(uint64_t block_number, uint8_t iv[16]) const;

  std::unique_ptr<Aes> data_cipher_;
  std::unique_ptr<Aes> iv_cipher_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_BLOCK_CRYPTER_H_
