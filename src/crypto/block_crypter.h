// Sector-level encryption: AES-256-CBC with ESSIV per-block IVs.
//
// Every block of a hidden object (header, inode blocks, data blocks, and the
// free blocks it holds) is encrypted so that it is indistinguishable from
// the random fill written at format time (paper section 3.1). ESSIV
// (IV = AES_k2(block_number), k2 = SHA256(key)) makes the IV secret and
// position-dependent without storing it, so identical plaintext at two
// addresses yields unrelated ciphertext and no per-block metadata leaks.
#ifndef STEGFS_CRYPTO_BLOCK_CRYPTER_H_
#define STEGFS_CRYPTO_BLOCK_CRYPTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "util/status.h"

namespace stegfs {
namespace crypto {

// One device block in a batch: the ESSIV tweak (block_number) plus its
// in-place payload. Block numbers need not be contiguous or ordered —
// each block is an independent CBC chain.
struct CryptSpan {
  uint64_t block_number;
  uint8_t* data;
};

// Encrypts/decrypts fixed-size device blocks keyed by (key, block_number).
// Block size must be a multiple of 16 bytes (true for all supported device
// block sizes, 512 B - 64 KB).
class BlockCrypter {
 public:
  // `key` is arbitrary-length key material; internally a 256-bit data key
  // and a 256-bit IV key are derived from it.
  explicit BlockCrypter(const std::string& key);

  // In-place whole-block transforms. `size` must be a multiple of 16.
  void EncryptBlock(uint64_t block_number, uint8_t* data, size_t size) const;
  void DecryptBlock(uint64_t block_number, uint8_t* data, size_t size) const;

  // Batch transforms over n device blocks of `size` bytes each, in place.
  // All ESSIV IVs are derived in one pipelined ECB pass; encryption then
  // interleaves four device blocks' CBC chains through the AES pipeline
  // (chains are independent across blocks, sequential only within one),
  // and decryption runs each block as a single pipelined ECB pass followed
  // by the XOR un-chaining. Bitwise-identical to calling the single-block
  // transforms once per span.
  void EncryptBlocks(const CryptSpan* spans, size_t n, size_t size) const;
  void DecryptBlocks(const CryptSpan* spans, size_t n, size_t size) const;

 private:
  void ComputeIv(uint64_t block_number, uint8_t iv[16]) const;
  // Derives the IVs for n spans into ivs (n * 16 bytes) with one ECB batch.
  void ComputeIvs(const CryptSpan* spans, size_t n, uint8_t* ivs) const;
  // CBC-encrypts one block whose IV is already derived.
  void EncryptWithIv(const uint8_t iv[16], uint8_t* data, size_t size) const;

  std::unique_ptr<Aes> data_cipher_;
  std::unique_ptr<Aes> iv_cipher_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_BLOCK_CRYPTER_H_
