#include "crypto/aes.h"

#include <atomic>
#include <cassert>

#include "crypto/aes_ni.h"

namespace stegfs {
namespace crypto {

namespace {

std::atomic<AesTier>& TierSlot() {
  static std::atomic<AesTier> tier{aesni::Supported() ? AesTier::kAesNi
                                                      : AesTier::kTable};
  return tier;
}

}  // namespace

AesTier ActiveAesTier() {
  return TierSlot().load(std::memory_order_relaxed);
}

const char* AesTierName() {
  return ActiveAesTier() == AesTier::kAesNi ? "aes-ni" : "t-table";
}

bool SetAesTier(AesTier tier) {
  if (tier == AesTier::kAesNi && !aesni::Supported()) return false;
  TierSlot().store(tier, std::memory_order_relaxed);
  return true;
}

namespace {

// Forward S-box (FIPS 197 figure 7).
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

// Inverse S-box (FIPS 197 figure 14).
constexpr uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

// Multiply in GF(2^8) modulo x^8 + x^4 + x^3 + x + 1. Used for table
// construction and key-schedule transforms only — the hot path is pure
// table lookups.
uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    uint8_t hi = a & 0x80;
    a = static_cast<uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

// Encryption/decryption T-tables (the classic Rijndael optimization:
// SubBytes + ShiftRows + MixColumns fused into four 1 KB lookup tables).
struct AesTables {
  uint32_t te[4][256];
  uint32_t td[4][256];

  AesTables() {
    for (int x = 0; x < 256; ++x) {
      uint8_t s = kSbox[x];
      uint8_t s2 = GfMul(s, 2);
      uint8_t s3 = GfMul(s, 3);
      uint32_t w = (static_cast<uint32_t>(s2) << 24) |
                   (static_cast<uint32_t>(s) << 16) |
                   (static_cast<uint32_t>(s) << 8) | s3;
      te[0][x] = w;
      te[1][x] = (w >> 8) | (w << 24);
      te[2][x] = (w >> 16) | (w << 16);
      te[3][x] = (w >> 24) | (w << 8);

      uint8_t is = kInvSbox[x];
      uint32_t v = (static_cast<uint32_t>(GfMul(is, 14)) << 24) |
                   (static_cast<uint32_t>(GfMul(is, 9)) << 16) |
                   (static_cast<uint32_t>(GfMul(is, 13)) << 8) |
                   GfMul(is, 11);
      td[0][x] = v;
      td[1][x] = (v >> 8) | (v << 24);
      td[2][x] = (v >> 16) | (v << 16);
      td[3][x] = (v >> 24) | (v << 8);
    }
  }
};

const AesTables& Tables() {
  static const AesTables tables;
  return tables;
}

inline uint32_t SubWord(uint32_t w) {
  return (static_cast<uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(kSbox[w & 0xff]);
}

inline uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

// InvMixColumns on a raw round-key word (for the equivalent inverse cipher).
inline uint32_t InvMixColumnsWord(uint32_t w) {
  uint8_t b0 = static_cast<uint8_t>(w >> 24);
  uint8_t b1 = static_cast<uint8_t>(w >> 16);
  uint8_t b2 = static_cast<uint8_t>(w >> 8);
  uint8_t b3 = static_cast<uint8_t>(w);
  uint8_t r0 = GfMul(b0, 14) ^ GfMul(b1, 11) ^ GfMul(b2, 13) ^ GfMul(b3, 9);
  uint8_t r1 = GfMul(b0, 9) ^ GfMul(b1, 14) ^ GfMul(b2, 11) ^ GfMul(b3, 13);
  uint8_t r2 = GfMul(b0, 13) ^ GfMul(b1, 9) ^ GfMul(b2, 14) ^ GfMul(b3, 11);
  uint8_t r3 = GfMul(b0, 11) ^ GfMul(b1, 13) ^ GfMul(b2, 9) ^ GfMul(b3, 14);
  return (static_cast<uint32_t>(r0) << 24) | (static_cast<uint32_t>(r1) << 16) |
         (static_cast<uint32_t>(r2) << 8) | r3;
}

inline uint32_t LoadWord(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | p[3];
}

inline void StoreWord(uint8_t* p, uint32_t w) {
  p[0] = static_cast<uint8_t>(w >> 24);
  p[1] = static_cast<uint8_t>(w >> 16);
  p[2] = static_cast<uint8_t>(w >> 8);
  p[3] = static_cast<uint8_t>(w);
}

}  // namespace

Aes::Aes(const uint8_t* key, size_t key_len) { ExpandKey(key, key_len); }

void Aes::ExpandKey(const uint8_t* key, size_t key_len) {
  assert(key_len == 16 || key_len == 24 || key_len == 32);
  const int nk = static_cast<int>(key_len / 4);
  rounds_ = nk + 6;
  const int total_words = 4 * (rounds_ + 1);

  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = LoadWord(key + 4 * i);
  }
  for (int i = nk; i < total_words; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^
             (static_cast<uint32_t>(kRcon[i / nk]) << 24);
    } else if (nk > 6 && i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }

  // Equivalent inverse cipher key schedule: reversed round order, with
  // InvMixColumns applied to every middle round key.
  for (int round = 0; round <= rounds_; ++round) {
    for (int c = 0; c < 4; ++c) {
      uint32_t w = round_keys_[(rounds_ - round) * 4 + c];
      if (round != 0 && round != rounds_) w = InvMixColumnsWord(w);
      dec_round_keys_[round * 4 + c] = w;
    }
  }

  // Serialize both schedules to FIPS-197 byte order for the AES-NI tier
  // (AESENC/AESDEC consume round keys as raw bytes; the equivalent inverse
  // schedule above is exactly what AESDEC expects).
  for (int i = 0; i < total_words; ++i) {
    StoreWord(enc_ks_ + 4 * i, round_keys_[i]);
    StoreWord(dec_ks_ + 4 * i, dec_round_keys_[i]);
  }
}

void Aes::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  if (ActiveAesTier() == AesTier::kAesNi) {
    aesni::Encrypt1(enc_ks_, rounds_, in, out);
    return;
  }
  EncryptBlockTable(in, out);
}

void Aes::DecryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  if (ActiveAesTier() == AesTier::kAesNi) {
    aesni::Decrypt1(dec_ks_, rounds_, in, out);
    return;
  }
  DecryptBlockTable(in, out);
}

void Aes::EncryptBlocksEcb(const uint8_t* in, uint8_t* out, size_t n) const {
  if (ActiveAesTier() == AesTier::kAesNi) {
    aesni::EncryptEcb(enc_ks_, rounds_, in, out, n);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    EncryptBlockTable(in + 16 * i, out + 16 * i);
  }
}

void Aes::DecryptBlocksEcb(const uint8_t* in, uint8_t* out, size_t n) const {
  if (ActiveAesTier() == AesTier::kAesNi) {
    aesni::DecryptEcb(dec_ks_, rounds_, in, out, n);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    DecryptBlockTable(in + 16 * i, out + 16 * i);
  }
}

void Aes::Encrypt4(const uint8_t* const in[4], uint8_t* const out[4]) const {
  if (ActiveAesTier() == AesTier::kAesNi) {
    aesni::Encrypt4(enc_ks_, rounds_, in, out);
    return;
  }
  for (int i = 0; i < 4; ++i) EncryptBlockTable(in[i], out[i]);
}

void Aes::EncryptBlockTable(const uint8_t in[16], uint8_t out[16]) const {
  const AesTables& t = Tables();
  uint32_t s0 = LoadWord(in) ^ round_keys_[0];
  uint32_t s1 = LoadWord(in + 4) ^ round_keys_[1];
  uint32_t s2 = LoadWord(in + 8) ^ round_keys_[2];
  uint32_t s3 = LoadWord(in + 12) ^ round_keys_[3];

  for (int round = 1; round < rounds_; ++round) {
    const uint32_t* rk = round_keys_ + round * 4;
    uint32_t t0 = t.te[0][s0 >> 24] ^ t.te[1][(s1 >> 16) & 0xff] ^
                  t.te[2][(s2 >> 8) & 0xff] ^ t.te[3][s3 & 0xff] ^ rk[0];
    uint32_t t1 = t.te[0][s1 >> 24] ^ t.te[1][(s2 >> 16) & 0xff] ^
                  t.te[2][(s3 >> 8) & 0xff] ^ t.te[3][s0 & 0xff] ^ rk[1];
    uint32_t t2 = t.te[0][s2 >> 24] ^ t.te[1][(s3 >> 16) & 0xff] ^
                  t.te[2][(s0 >> 8) & 0xff] ^ t.te[3][s1 & 0xff] ^ rk[2];
    uint32_t t3 = t.te[0][s3 >> 24] ^ t.te[1][(s0 >> 16) & 0xff] ^
                  t.te[2][(s1 >> 8) & 0xff] ^ t.te[3][s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows only.
  const uint32_t* rk = round_keys_ + rounds_ * 4;
  uint32_t t0 = (static_cast<uint32_t>(kSbox[s0 >> 24]) << 24) |
                (static_cast<uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8) |
                kSbox[s3 & 0xff];
  uint32_t t1 = (static_cast<uint32_t>(kSbox[s1 >> 24]) << 24) |
                (static_cast<uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8) |
                kSbox[s0 & 0xff];
  uint32_t t2 = (static_cast<uint32_t>(kSbox[s2 >> 24]) << 24) |
                (static_cast<uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8) |
                kSbox[s1 & 0xff];
  uint32_t t3 = (static_cast<uint32_t>(kSbox[s3 >> 24]) << 24) |
                (static_cast<uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8) |
                kSbox[s2 & 0xff];
  StoreWord(out, t0 ^ rk[0]);
  StoreWord(out + 4, t1 ^ rk[1]);
  StoreWord(out + 8, t2 ^ rk[2]);
  StoreWord(out + 12, t3 ^ rk[3]);
}

void Aes::DecryptBlockTable(const uint8_t in[16], uint8_t out[16]) const {
  const AesTables& t = Tables();
  uint32_t s0 = LoadWord(in) ^ dec_round_keys_[0];
  uint32_t s1 = LoadWord(in + 4) ^ dec_round_keys_[1];
  uint32_t s2 = LoadWord(in + 8) ^ dec_round_keys_[2];
  uint32_t s3 = LoadWord(in + 12) ^ dec_round_keys_[3];

  for (int round = 1; round < rounds_; ++round) {
    const uint32_t* rk = dec_round_keys_ + round * 4;
    uint32_t t0 = t.td[0][s0 >> 24] ^ t.td[1][(s3 >> 16) & 0xff] ^
                  t.td[2][(s2 >> 8) & 0xff] ^ t.td[3][s1 & 0xff] ^ rk[0];
    uint32_t t1 = t.td[0][s1 >> 24] ^ t.td[1][(s0 >> 16) & 0xff] ^
                  t.td[2][(s3 >> 8) & 0xff] ^ t.td[3][s2 & 0xff] ^ rk[1];
    uint32_t t2 = t.td[0][s2 >> 24] ^ t.td[1][(s1 >> 16) & 0xff] ^
                  t.td[2][(s0 >> 8) & 0xff] ^ t.td[3][s3 & 0xff] ^ rk[2];
    uint32_t t3 = t.td[0][s3 >> 24] ^ t.td[1][(s2 >> 16) & 0xff] ^
                  t.td[2][(s1 >> 8) & 0xff] ^ t.td[3][s0 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  const uint32_t* rk = dec_round_keys_ + rounds_ * 4;
  uint32_t t0 = (static_cast<uint32_t>(kInvSbox[s0 >> 24]) << 24) |
                (static_cast<uint32_t>(kInvSbox[(s3 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kInvSbox[(s2 >> 8) & 0xff]) << 8) |
                kInvSbox[s1 & 0xff];
  uint32_t t1 = (static_cast<uint32_t>(kInvSbox[s1 >> 24]) << 24) |
                (static_cast<uint32_t>(kInvSbox[(s0 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kInvSbox[(s3 >> 8) & 0xff]) << 8) |
                kInvSbox[s2 & 0xff];
  uint32_t t2 = (static_cast<uint32_t>(kInvSbox[s2 >> 24]) << 24) |
                (static_cast<uint32_t>(kInvSbox[(s1 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kInvSbox[(s0 >> 8) & 0xff]) << 8) |
                kInvSbox[s3 & 0xff];
  uint32_t t3 = (static_cast<uint32_t>(kInvSbox[s3 >> 24]) << 24) |
                (static_cast<uint32_t>(kInvSbox[(s2 >> 16) & 0xff]) << 16) |
                (static_cast<uint32_t>(kInvSbox[(s1 >> 8) & 0xff]) << 8) |
                kInvSbox[s0 & 0xff];
  StoreWord(out, t0 ^ rk[0]);
  StoreWord(out + 4, t1 ^ rk[1]);
  StoreWord(out + 8, t2 ^ rk[2]);
  StoreWord(out + 12, t3 ^ rk[3]);
}

}  // namespace crypto
}  // namespace stegfs
