#include "crypto/rsa.h"

#include <cstring>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/coding.h"

namespace stegfs {
namespace crypto {

namespace {

constexpr uint32_t kPublicExponent = 65537;
constexpr size_t kSessionKeyBytes = 32;
constexpr size_t kTagBytes = 32;

// AES-256-CTR keystream XOR, with a zero starting counter (the session key
// is single-use, so nonce reuse cannot occur).
void CtrXor(const std::string& key, std::string* data) {
  Aes aes(reinterpret_cast<const uint8_t*>(key.data()), key.size());
  uint8_t ctr[16] = {0};
  uint8_t ks[16];
  uint64_t counter = 0;
  for (size_t i = 0; i < data->size(); i += 16) {
    for (int b = 0; b < 8; ++b) ctr[b] = static_cast<uint8_t>(counter >> (8 * b));
    aes.EncryptBlock(ctr, ks);
    ++counter;
    size_t n = std::min<size_t>(16, data->size() - i);
    for (size_t b = 0; b < n; ++b) (*data)[i + b] ^= static_cast<char>(ks[b]);
  }
}

}  // namespace

std::string RsaPublicKey::Serialize() const {
  std::string out;
  std::vector<uint8_t> nb = n.ToBytes();
  std::vector<uint8_t> eb = e.ToBytes();
  PutLengthPrefixed(&out, std::string(nb.begin(), nb.end()));
  PutLengthPrefixed(&out, std::string(eb.begin(), eb.end()));
  return out;
}

StatusOr<RsaPublicKey> RsaPublicKey::Deserialize(const std::string& blob) {
  Decoder dec(blob);
  std::string nb, eb;
  if (!dec.GetLengthPrefixed(&nb) || !dec.GetLengthPrefixed(&eb)) {
    return Status::Corruption("truncated RSA public key");
  }
  RsaPublicKey key;
  key.n = BigInt::FromBytes(reinterpret_cast<const uint8_t*>(nb.data()),
                            nb.size());
  key.e = BigInt::FromBytes(reinterpret_cast<const uint8_t*>(eb.data()),
                            eb.size());
  if (key.n.IsZero() || key.e.IsZero()) {
    return Status::Corruption("degenerate RSA public key");
  }
  return key;
}

std::string RsaPrivateKey::Serialize() const {
  std::string out;
  std::vector<uint8_t> nb = n.ToBytes();
  std::vector<uint8_t> db = d.ToBytes();
  PutLengthPrefixed(&out, std::string(nb.begin(), nb.end()));
  PutLengthPrefixed(&out, std::string(db.begin(), db.end()));
  return out;
}

StatusOr<RsaPrivateKey> RsaPrivateKey::Deserialize(const std::string& blob) {
  Decoder dec(blob);
  std::string nb, db;
  if (!dec.GetLengthPrefixed(&nb) || !dec.GetLengthPrefixed(&db)) {
    return Status::Corruption("truncated RSA private key");
  }
  RsaPrivateKey key;
  key.n = BigInt::FromBytes(reinterpret_cast<const uint8_t*>(nb.data()),
                            nb.size());
  key.d = BigInt::FromBytes(reinterpret_cast<const uint8_t*>(db.data()),
                            db.size());
  if (key.n.IsZero() || key.d.IsZero()) {
    return Status::Corruption("degenerate RSA private key");
  }
  return key;
}

StatusOr<RsaKeyPair> RsaGenerateKeyPair(size_t bits, const std::string& seed) {
  if (bits < 512) {
    return Status::InvalidArgument("RSA modulus must be >= 512 bits");
  }
  CtrDrbg drbg("rsa-keygen:" + seed);
  BigInt e = BigInt::FromUint64(kPublicExponent);
  BigInt one = BigInt::FromUint64(1);

  for (;;) {
    BigInt p = BigInt::GeneratePrime(bits / 2, &drbg);
    BigInt q = BigInt::GeneratePrime(bits - bits / 2, &drbg);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.BitLength() != bits) continue;
    BigInt phi = (p - one) * (q - one);
    if (BigInt::Compare(BigInt::Gcd(e, phi), one) != 0) continue;
    BigInt d = e.ModInverse(phi);
    if (d.IsZero()) continue;

    RsaKeyPair pair;
    pair.public_key.n = n;
    pair.public_key.e = e;
    pair.private_key.n = n;
    pair.private_key.d = d;
    return pair;
  }
}

StatusOr<std::string> RsaEncrypt(const RsaPublicKey& pub,
                                 const std::string& plaintext,
                                 const std::string& entropy_seed) {
  const size_t k = pub.ModulusBytes();
  // PKCS#1 v1.5 block: 00 02 PS(>=8 nonzero) 00 M, M = 32-byte session key.
  if (k < kSessionKeyBytes + 11) {
    return Status::InvalidArgument("RSA modulus too small for session key");
  }
  CtrDrbg drbg("rsa-encrypt:" + entropy_seed);
  std::string session_key = drbg.GenerateString(kSessionKeyBytes);

  std::vector<uint8_t> block(k, 0);
  block[0] = 0x00;
  block[1] = 0x02;
  size_t ps_len = k - 3 - kSessionKeyBytes;
  for (size_t i = 0; i < ps_len; ++i) {
    uint8_t b;
    do {
      drbg.Generate(&b, 1);
    } while (b == 0);
    block[2 + i] = b;
  }
  block[2 + ps_len] = 0x00;
  std::memcpy(block.data() + 3 + ps_len, session_key.data(),
              kSessionKeyBytes);

  BigInt m = BigInt::FromBytes(block);
  if (m >= pub.n) {
    return Status::InvalidArgument("padded message exceeds modulus");
  }
  BigInt c = m.ModExp(pub.e, pub.n);
  std::vector<uint8_t> cb = c.ToBytes(k);

  // Envelope: [len][rsa block][len][ciphertext][hmac tag].
  std::string body = plaintext;
  CtrXor(session_key, &body);
  std::string envelope;
  PutLengthPrefixed(&envelope, std::string(cb.begin(), cb.end()));
  PutLengthPrefixed(&envelope, body);
  Sha256Digest tag = HmacSha256(session_key, envelope);
  envelope.append(reinterpret_cast<const char*>(tag.data()), tag.size());
  return envelope;
}

StatusOr<std::string> RsaDecrypt(const RsaPrivateKey& priv,
                                 const std::string& ciphertext) {
  if (ciphertext.size() < kTagBytes) {
    return Status::Corruption("envelope too short");
  }
  std::string head = ciphertext.substr(0, ciphertext.size() - kTagBytes);
  std::string tag = ciphertext.substr(ciphertext.size() - kTagBytes);

  Decoder dec(head);
  std::string rsa_block, body;
  if (!dec.GetLengthPrefixed(&rsa_block) || !dec.GetLengthPrefixed(&body) ||
      dec.remaining() != 0) {
    return Status::Corruption("malformed envelope");
  }

  const size_t k = priv.ModulusBytes();
  if (rsa_block.size() != k) {
    return Status::Corruption("RSA block size mismatch");
  }
  BigInt c = BigInt::FromBytes(
      reinterpret_cast<const uint8_t*>(rsa_block.data()), rsa_block.size());
  if (c >= priv.n) return Status::Corruption("ciphertext exceeds modulus");
  BigInt m = c.ModExp(priv.d, priv.n);
  std::vector<uint8_t> block = m.ToBytes(k);

  if (block[0] != 0x00 || block[1] != 0x02) {
    return Status::PermissionDenied("RSA padding check failed");
  }
  size_t sep = 2;
  while (sep < block.size() && block[sep] != 0x00) ++sep;
  if (sep < 10 || block.size() - sep - 1 != kSessionKeyBytes) {
    return Status::PermissionDenied("RSA padding check failed");
  }
  std::string session_key(
      reinterpret_cast<const char*>(block.data() + sep + 1), kSessionKeyBytes);

  Sha256Digest expect = HmacSha256(session_key, head);
  if (std::memcmp(expect.data(), tag.data(), kTagBytes) != 0) {
    return Status::PermissionDenied("envelope MAC mismatch");
  }
  CtrXor(session_key, &body);
  return body;
}

}  // namespace crypto
}  // namespace stegfs
