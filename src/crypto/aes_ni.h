// AES-NI backend: hardware AES round instructions (AESENC/AESDEC), used by
// crypto::Aes when the CPU supports them (runtime-detected; see
// Aes::active_tier in aes.h). Internal to the crypto layer — callers go
// through Aes, which owns tier dispatch and the key schedules.
//
// Key schedules are passed as the FIPS-197 byte serialization of the
// expanded keys: 16 bytes per round key, (rounds + 1) keys. The decryption
// schedule must be the "equivalent inverse cipher" schedule (reversed round
// order, InvMixColumns applied to the middle keys) — exactly what
// Aes::ExpandKey already computes for the table tier, so both tiers share
// one key-expansion path.
#ifndef STEGFS_CRYPTO_AES_NI_H_
#define STEGFS_CRYPTO_AES_NI_H_

#include <cstddef>
#include <cstdint>

namespace stegfs {
namespace crypto {
namespace aesni {

// True when the CPU executes AES instructions (false on non-x86 builds).
bool Supported();

// Single 16-byte block. in and out may alias.
void Encrypt1(const uint8_t* enc_ks, int rounds, const uint8_t in[16],
              uint8_t out[16]);
void Decrypt1(const uint8_t* dec_ks, int rounds, const uint8_t in[16],
              uint8_t out[16]);

// n independent 16-byte blocks, pipelined four at a time (the AES units
// are deeply pipelined; independent blocks hide the ~4-cycle round
// latency). in/out may be the same buffer.
void EncryptEcb(const uint8_t* enc_ks, int rounds, const uint8_t* in,
                uint8_t* out, size_t n);
void DecryptEcb(const uint8_t* dec_ks, int rounds, const uint8_t* in,
                uint8_t* out, size_t n);

// Four independent blocks at unrelated addresses (CBC lane interleaving
// across device blocks). in[i] and out[i] may alias per lane.
void Encrypt4(const uint8_t* enc_ks, int rounds, const uint8_t* const in[4],
              uint8_t* const out[4]);

}  // namespace aesni
}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_AES_NI_H_
