// SHA-256 (FIPS 180-2), implemented from the standard.
//
// StegFS uses SHA-256 for:
//   - hidden-file signatures: SHA256(physical name || access key) (paper 3.1)
//   - seeding and advancing the header-locator PRNG (paper 4, API 1:
//     "the seed is recursively hashed to generate the pseudorandom numbers")
//   - key derivation (crypto/keys.h)
#ifndef STEGFS_CRYPTO_SHA256_H_
#define STEGFS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace stegfs {
namespace crypto {

// 32-byte digest.
using Sha256Digest = std::array<uint8_t, 32>;

// Incremental SHA-256 context.
//
//   Sha256 h;
//   h.Update(data, len);
//   Sha256Digest d = h.Finish();
//
// Finish() may be called once; the context is not reusable afterwards.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const std::string& s) { Update(s.data(), s.size()); }
  Sha256Digest Finish();

  // One-shot helpers.
  static Sha256Digest Hash(const void* data, size_t len);
  static Sha256Digest Hash(const std::string& s) {
    return Hash(s.data(), s.size());
  }
  // Hash of the concatenation a || b (used for name||key signatures).
  static Sha256Digest Hash2(const std::string& a, const std::string& b);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_SHA256_H_
