#include "crypto/prng.h"

#include <cassert>
#include <cstring>

#include "crypto/hmac.h"

namespace stegfs {
namespace crypto {

HashChainPrng::HashChainPrng(const Sha256Digest& seed, uint64_t modulus)
    : state_(seed), modulus_(modulus) {
  assert(modulus_ > 0);
}

uint64_t HashChainPrng::Next() {
  if (offset_ + 8 > state_.size()) {
    state_ = Sha256::Hash(state_.data(), state_.size());
    offset_ = 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | state_[offset_ + i];
  }
  offset_ += 8;
  return v % modulus_;
}

CtrDrbg::CtrDrbg(const std::string& seed) {
  std::vector<uint8_t> key = HkdfExpand(seed, "stegfs-ctr-drbg", 32);
  cipher_ = std::make_unique<Aes>(key.data(), key.size());
}

void CtrDrbg::Generate(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i < n) {
    if (buffer_pos_ == 16) {
      uint8_t ctr_block[16] = {0};
      for (int b = 0; b < 8; ++b) {
        ctr_block[b] = static_cast<uint8_t>(counter_ >> (8 * b));
      }
      cipher_->EncryptBlock(ctr_block, buffer_);
      ++counter_;
      buffer_pos_ = 0;
    }
    size_t take = std::min(n - i, 16 - buffer_pos_);
    std::memcpy(out + i, buffer_ + buffer_pos_, take);
    buffer_pos_ += take;
    i += take;
  }
}

std::vector<uint8_t> CtrDrbg::Generate(size_t n) {
  std::vector<uint8_t> out(n);
  Generate(out.data(), n);
  return out;
}

std::string CtrDrbg::GenerateString(size_t n) {
  std::string out(n, '\0');
  Generate(reinterpret_cast<uint8_t*>(out.data()), n);
  return out;
}

uint64_t CtrDrbg::NextUint64() {
  uint8_t buf[8];
  Generate(buf, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return v;
}

uint64_t CtrDrbg::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % n);
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return v % n;
}

}  // namespace crypto
}  // namespace stegfs
