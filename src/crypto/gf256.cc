#include "crypto/gf256.h"

#include <cassert>
#include <cstring>

#include "crypto/gf256_simd.h"
#include "util/coding.h"

namespace stegfs {
namespace crypto {

namespace {

// exp/log tables over generator 0x03 for the AES polynomial 0x11b.
struct Gf256Tables {
  uint8_t exp[512];
  uint8_t log[256];

  Gf256Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      // multiply x by the generator 3 = x * 2 + x.
      uint16_t x2 = x << 1;
      if (x2 & 0x100) x2 ^= 0x11b;
      x = static_cast<uint16_t>(x2 ^ x);
      if (x & 0x100) x ^= 0x11b;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // undefined; guarded by callers
  }
};

const Gf256Tables& Tables() {
  static const Gf256Tables tables;
  return tables;
}

}  // namespace

uint8_t Gf256::Mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Gf256Tables& t = Tables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t Gf256::Div(uint8_t a, uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  const Gf256Tables& t = Tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

uint8_t Gf256::Inv(uint8_t a) {
  assert(a != 0);
  const Gf256Tables& t = Tables();
  return t.exp[255 - t.log[a]];
}

uint8_t Gf256::Pow(uint8_t a, unsigned e) {
  uint8_t result = 1;
  while (e > 0) {
    if (e & 1) result = Mul(result, a);
    a = Mul(a, a);
    e >>= 1;
  }
  return result;
}

InformationDispersal::InformationDispersal(int m, int n) : m_(m), n_(n) {
  assert(m >= 1 && n >= m && n <= 255);
}

std::vector<uint8_t> IdaRow(uint8_t index, int m) {
  std::vector<uint8_t> row(m, 0);
  if (index < m) {
    row[index] = 1;  // systematic: data stripe passes through
    return row;
  }
  // Cauchy row: c_j = 1 / (x ^ y_j) with x = index (>= m), y_j = j (< m).
  // Every square submatrix of [I; Cauchy] is invertible, so ANY m shares
  // reconstruct.
  for (int j = 0; j < m; ++j) {
    row[j] = Gf256::Inv(static_cast<uint8_t>(index ^ j));
  }
  return row;
}

std::vector<uint8_t> InformationDispersal::RowFor(uint8_t index) const {
  return IdaRow(index, m_);
}

void IdaEncodeParity(const uint8_t* const* blocks, int m, int n, size_t len,
                     uint8_t* const* parity) {
  assert(m >= 1 && n >= m);
  for (int i = m; i < n; ++i) {
    uint8_t* out = parity[i - m];
    std::memset(out, 0, len);
    std::vector<uint8_t> row = IdaRow(static_cast<uint8_t>(i), m);
    for (int j = 0; j < m; ++j) {
      GfMulAccum(row[j], blocks[j], out, len);
    }
  }
}

std::vector<std::vector<uint8_t>> IdaEncodeStripe(
    const std::vector<std::vector<uint8_t>>& blocks, int n) {
  const int m = static_cast<int>(blocks.size());
  assert(m >= 1 && n >= m);
  const size_t len = blocks[0].size();
  std::vector<std::vector<uint8_t>> shares(n);
  std::vector<const uint8_t*> data(m);
  for (int i = 0; i < m; ++i) {
    shares[i] = blocks[i];
    data[i] = blocks[i].data();
  }
  std::vector<uint8_t*> parity(n - m);
  for (int i = m; i < n; ++i) {
    shares[i].assign(len, 0);
    parity[i - m] = shares[i].data();
  }
  IdaEncodeParity(data.data(), m, n, len, parity.data());
  return shares;
}

StatusOr<std::vector<std::vector<uint8_t>>> IdaDecodeStripe(
    const std::vector<std::pair<uint8_t, std::vector<uint8_t>>>& shares,
    int m) {
  if (static_cast<int>(shares.size()) < m) {
    return Status::InvalidArgument("need at least m shares");
  }
  const size_t len = shares[0].second.size();
  std::vector<std::vector<uint8_t>> mat(m);
  std::vector<std::vector<uint8_t>> rhs(m);
  std::vector<bool> seen(256, false);
  int rows = 0;
  for (const auto& [index, block] : shares) {
    if (seen[index] || rows == m) continue;
    if (block.size() != len) {
      return Status::InvalidArgument("share length mismatch");
    }
    seen[index] = true;
    mat[rows] = IdaRow(index, m);
    rhs[rows] = block;
    ++rows;
  }
  if (rows < m) {
    return Status::InvalidArgument("fewer than m distinct shares");
  }
  for (int col = 0; col < m; ++col) {
    int pivot = -1;
    for (int r = col; r < m; ++r) {
      if (mat[r][col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) return Status::Corruption("singular share matrix");
    std::swap(mat[col], mat[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    uint8_t inv = Gf256::Inv(mat[col][col]);
    for (int c = 0; c < m; ++c) mat[col][c] = Gf256::Mul(mat[col][c], inv);
    GfScale(inv, rhs[col].data(), len);
    for (int r = 0; r < m; ++r) {
      if (r == col || mat[r][col] == 0) continue;
      uint8_t factor = mat[r][col];
      for (int c = 0; c < m; ++c) {
        mat[r][c] ^= Gf256::Mul(factor, mat[col][c]);
      }
      GfMulAccum(factor, rhs[col].data(), rhs[r].data(), len);
    }
  }
  return rhs;
}

std::vector<InformationDispersal::Share> InformationDispersal::Encode(
    const std::vector<uint8_t>& data) const {
  // Prefix with the true length, then pad to a multiple of m.
  std::string framed;
  PutFixed64(&framed, data.size());
  framed.append(reinterpret_cast<const char*>(data.data()), data.size());
  size_t stripe_len = (framed.size() + m_ - 1) / m_;
  framed.resize(stripe_len * m_, '\0');

  // Stripe j = bytes j, j+m, j+2m, ... (byte-interleaved).
  std::vector<std::vector<uint8_t>> stripes(
      m_, std::vector<uint8_t>(stripe_len));
  for (size_t k = 0; k < framed.size(); ++k) {
    stripes[k % m_][k / m_] = static_cast<uint8_t>(framed[k]);
  }

  std::vector<Share> shares(n_);
  for (int i = 0; i < n_; ++i) {
    shares[i].index = static_cast<uint8_t>(i);
    if (i < m_) {
      shares[i].bytes = stripes[i];
      continue;
    }
    std::vector<uint8_t> row = RowFor(static_cast<uint8_t>(i));
    shares[i].bytes.assign(stripe_len, 0);
    for (int j = 0; j < m_; ++j) {
      GfMulAccum(row[j], stripes[j].data(), shares[i].bytes.data(),
                 stripe_len);
    }
  }
  return shares;
}

StatusOr<std::vector<uint8_t>> InformationDispersal::Decode(
    const std::vector<Share>& shares) const {
  if (static_cast<int>(shares.size()) < m_) {
    return Status::InvalidArgument("need at least m shares to reconstruct");
  }
  // Take the first m distinct-index shares.
  std::vector<const Share*> chosen;
  std::vector<bool> seen(n_, false);
  for (const Share& s : shares) {
    if (s.index >= n_ || seen[s.index]) continue;
    seen[s.index] = true;
    chosen.push_back(&s);
    if (static_cast<int>(chosen.size()) == m_) break;
  }
  if (static_cast<int>(chosen.size()) < m_) {
    return Status::InvalidArgument("fewer than m distinct shares");
  }
  size_t stripe_len = chosen[0]->bytes.size();
  for (const Share* s : chosen) {
    if (s->bytes.size() != stripe_len) {
      return Status::InvalidArgument("share length mismatch");
    }
  }

  // Solve M * stripes = shares by Gaussian elimination, with the share
  // byte vectors as the augmented columns.
  std::vector<std::vector<uint8_t>> mat(m_);
  std::vector<std::vector<uint8_t>> rhs(m_);
  for (int r = 0; r < m_; ++r) {
    mat[r] = RowFor(chosen[r]->index);
    rhs[r] = chosen[r]->bytes;
  }
  for (int col = 0; col < m_; ++col) {
    // Pivot.
    int pivot = -1;
    for (int r = col; r < m_; ++r) {
      if (mat[r][col] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) {
      return Status::Corruption("singular share matrix");
    }
    std::swap(mat[col], mat[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    // Normalize.
    uint8_t inv = Gf256::Inv(mat[col][col]);
    for (int c = 0; c < m_; ++c) mat[col][c] = Gf256::Mul(mat[col][c], inv);
    GfScale(inv, rhs[col].data(), stripe_len);
    // Eliminate.
    for (int r = 0; r < m_; ++r) {
      if (r == col || mat[r][col] == 0) continue;
      uint8_t factor = mat[r][col];
      for (int c = 0; c < m_; ++c) {
        mat[r][c] ^= Gf256::Mul(factor, mat[col][c]);
      }
      GfMulAccum(factor, rhs[col].data(), rhs[r].data(), stripe_len);
    }
  }

  // De-interleave and strip the length frame.
  std::vector<uint8_t> framed(stripe_len * m_);
  for (size_t k = 0; k < framed.size(); ++k) {
    framed[k] = rhs[k % m_][k / m_];
  }
  if (framed.size() < 8) return Status::Corruption("short reconstruction");
  uint64_t length = DecodeFixed64(framed.data());
  if (length > framed.size() - 8) {
    return Status::Corruption("reconstructed length out of range");
  }
  return std::vector<uint8_t>(framed.begin() + 8,
                              framed.begin() + 8 + length);
}

}  // namespace crypto
}  // namespace stegfs
