// GF(2^8) arithmetic and systematic Vandermonde erasure coding — the
// machinery behind Rabin's Information Dispersal Algorithm (IDA), which the
// paper's related-work section cites as Hand & Roscoe's improvement over
// naive replication for the random-placement scheme: a file is encoded into
// n fragments such that any m reconstruct it, with storage blow-up n/m
// instead of the replication factor r.
#ifndef STEGFS_CRYPTO_GF256_H_
#define STEGFS_CRYPTO_GF256_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {
namespace crypto {

// Field arithmetic modulo x^8 + x^4 + x^3 + x + 1 (the AES polynomial),
// table-driven (exp/log tables built once).
class Gf256 {
 public:
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Mul(uint8_t a, uint8_t b);
  static uint8_t Div(uint8_t a, uint8_t b);  // b != 0
  static uint8_t Inv(uint8_t a);             // a != 0
  static uint8_t Pow(uint8_t a, unsigned e);
};

// Systematic (m, n) erasure code: Encode produces n shares of
// ceil(|data|/m) bytes each; Decode reconstructs from any m distinct
// shares. Shares 0..m-1 are the data stripes themselves (systematic), the
// rest are Vandermonde parity.
class InformationDispersal {
 public:
  // m >= 1, n >= m, n <= 255.
  InformationDispersal(int m, int n);

  int m() const { return m_; }
  int n() const { return n_; }

  struct Share {
    uint8_t index = 0;  // 0..n-1
    std::vector<uint8_t> bytes;
  };

  // Splits `data` into n shares (adds an 8-byte length prefix internally so
  // Decode can strip stripe padding).
  std::vector<Share> Encode(const std::vector<uint8_t>& data) const;

  // Reconstructs the original data from any m distinct shares.
  StatusOr<std::vector<uint8_t>> Decode(
      const std::vector<Share>& shares) const;

 private:
  // Evaluation point for share row i (data rows are unit vectors).
  std::vector<uint8_t> RowFor(uint8_t index) const;

  int m_;
  int n_;
};

// Stripe-level coding for block stores (Mnemosyne-style): m equal-size
// data blocks in, n coded blocks out (shares 0..m-1 systematic, the rest
// Cauchy parity); any m distinct shares reconstruct the stripe.
//
// The coefficient row for share `index` over `m` data blocks: unit vector
// for index < m, Cauchy 1/(index XOR j) otherwise. Shared by
// InformationDispersal and the stripe codecs.
std::vector<uint8_t> IdaRow(uint8_t index, int m);

// blocks.size() == m, all the same size; returns n share blocks.
std::vector<std::vector<uint8_t>> IdaEncodeStripe(
    const std::vector<std::vector<uint8_t>>& blocks, int n);

// Parity-only stripe encode: computes shares m..n-1 into parity[0..n-m),
// each `len` bytes, from the m data blocks — no copies of the systematic
// shares. This is the hot write-path entry (SIMD GF(256) under the hood).
void IdaEncodeParity(const uint8_t* const* blocks, int m, int n, size_t len,
                     uint8_t* const* parity);

// shares = (share index, block) pairs, >= m distinct; returns the m data
// blocks of the stripe.
StatusOr<std::vector<std::vector<uint8_t>>> IdaDecodeStripe(
    const std::vector<std::pair<uint8_t, std::vector<uint8_t>>>& shares,
    int m);

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_GF256_H_
