// RSA public-key encryption for the StegFS sharing utility (paper 3.2, 4).
//
// steg_getentry encrypts a (file name, FAK) record with the *recipient's*
// public key; steg_addentry decrypts it with the private key. Neither the
// owner nor StegFS knows the recipient's UAK, so public-key transport is the
// only channel — exactly the paper's figure 4 flow.
//
// Arbitrary-length records are handled with a hybrid envelope: a fresh
// AES-256 session key is RSA-encrypted (PKCS#1 v1.5-style padding), the
// record itself is AES-CTR encrypted, and the whole envelope carries an
// HMAC-SHA256 tag. Key sizes >= 512 bits are supported; use >= 2048 in any
// real deployment — small sizes exist here so tests stay fast.
#ifndef STEGFS_CRYPTO_RSA_H_
#define STEGFS_CRYPTO_RSA_H_

#include <cstdint>
#include <string>

#include "crypto/bignum.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {
namespace crypto {

struct RsaPublicKey {
  BigInt n;  // modulus
  BigInt e;  // public exponent (65537)

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  // Serialization for storing keys in files (examples/ use this).
  std::string Serialize() const;
  static StatusOr<RsaPublicKey> Deserialize(const std::string& blob);
};

struct RsaPrivateKey {
  BigInt n;
  BigInt d;  // private exponent

  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  std::string Serialize() const;
  static StatusOr<RsaPrivateKey> Deserialize(const std::string& blob);
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

// Deterministic key generation from a seed string (tests/examples inject
// seeds; callers wanting fresh keys pass entropy). `bits` >= 512.
StatusOr<RsaKeyPair> RsaGenerateKeyPair(size_t bits, const std::string& seed);

// Hybrid encrypt/decrypt of an arbitrary-length message.
StatusOr<std::string> RsaEncrypt(const RsaPublicKey& pub,
                                 const std::string& plaintext,
                                 const std::string& entropy_seed);
StatusOr<std::string> RsaDecrypt(const RsaPrivateKey& priv,
                                 const std::string& ciphertext);

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_RSA_H_
