// HMAC-SHA256 (RFC 2104) and an HKDF-style key derivation helper.
//
// StegRand uses HMAC as the per-block integrity tag that detects overwritten
// replicas; keys.h uses HkdfExpand to derive sub-keys (encryption key,
// locator seed, ESSIV key) from one access key.
#ifndef STEGFS_CRYPTO_HMAC_H_
#define STEGFS_CRYPTO_HMAC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace stegfs {
namespace crypto {

// One-shot HMAC-SHA256 over `data` with `key`.
Sha256Digest HmacSha256(const std::string& key, const void* data, size_t len);
inline Sha256Digest HmacSha256(const std::string& key, const std::string& s) {
  return HmacSha256(key, s.data(), s.size());
}

// HKDF-Expand (RFC 5869, with SHA-256): derives `out_len` bytes from a
// pseudorandom key `prk` and a context/label string `info`.
std::vector<uint8_t> HkdfExpand(const std::string& prk, const std::string& info,
                                size_t out_len);

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_HMAC_H_
