// Bulk GF(2^8) kernels (AES polynomial 0x11b) behind the IDA stripe
// codecs, with runtime-detected SIMD tiers mirroring the AES dispatch in
// crypto/aes.h:
//   kGfni   - GF2P8MULB, which multiplies in the AES field natively,
//             32 bytes per instruction (requires GFNI + AVX2),
//   kPshufb - the classic nibble-table multiply (two PSHUFB lookups per
//             vector), 32 bytes (AVX2) or 16 bytes (SSSE3) per step,
//   kScalar - a per-coefficient 256-entry product table.
// All tiers produce bitwise-identical results; SetGfTier lets tests and
// benchmarks pin a specific one.
#ifndef STEGFS_CRYPTO_GF256_SIMD_H_
#define STEGFS_CRYPTO_GF256_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace stegfs {
namespace crypto {

enum class GfTier { kScalar, kPshufb, kGfni };

// The tier bulk operations currently dispatch to (highest supported by
// default).
GfTier ActiveGfTier();

// Human-readable name of the active tier ("gfni", "pshufb", "gf-scalar").
// Static storage — safe to hand across the C API.
const char* GfTierName();

// Selects a tier; returns false (and changes nothing) if this CPU cannot
// run it. kScalar always succeeds.
bool SetGfTier(GfTier tier);

// dst[i] ^= c * src[i] for i in [0, len) — the encode / row-eliminate
// primitive. c == 0 is a no-op, c == 1 a plain XOR.
void GfMulAccum(uint8_t c, const uint8_t* src, uint8_t* dst, size_t len);

// buf[i] = c * buf[i] for i in [0, len) — the row-normalize primitive.
// c == 0 zeroes the buffer, c == 1 is a no-op.
void GfScale(uint8_t c, uint8_t* buf, size_t len);

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_GF256_SIMD_H_
