// MD5 (RFC 1321). The paper cites MD5 as an alternative signature hash
// (section 3.1); we provide it for completeness and for signature-scheme
// pluggability, but SHA-256 is the default everywhere.
#ifndef STEGFS_CRYPTO_MD5_H_
#define STEGFS_CRYPTO_MD5_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace stegfs {
namespace crypto {

using Md5Digest = std::array<uint8_t, 16>;

// Incremental MD5 context (same shape as Sha256).
class Md5 {
 public:
  Md5() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const std::string& s) { Update(s.data(), s.size()); }
  Md5Digest Finish();

  static Md5Digest Hash(const void* data, size_t len);
  static Md5Digest Hash(const std::string& s) {
    return Hash(s.data(), s.size());
  }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[4];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_MD5_H_
