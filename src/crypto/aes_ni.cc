#include "crypto/aes_ni.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace stegfs {
namespace crypto {
namespace aesni {

// Each function carries its own target attribute instead of compiling the
// whole TU with -maes: the library stays runnable on CPUs without AES-NI
// (dispatch in aes.cc never calls in here unless Supported() is true).
#define STEGFS_AESNI __attribute__((target("aes,sse2")))

bool Supported() { return __builtin_cpu_supports("aes"); }

namespace {

STEGFS_AESNI inline __m128i Key(const uint8_t* ks, int i) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(ks) + i);
}

}  // namespace

STEGFS_AESNI void Encrypt1(const uint8_t* enc_ks, int rounds,
                           const uint8_t in[16], uint8_t out[16]) {
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, Key(enc_ks, 0));
  for (int r = 1; r < rounds; ++r) s = _mm_aesenc_si128(s, Key(enc_ks, r));
  s = _mm_aesenclast_si128(s, Key(enc_ks, rounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

STEGFS_AESNI void Decrypt1(const uint8_t* dec_ks, int rounds,
                           const uint8_t in[16], uint8_t out[16]) {
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, Key(dec_ks, 0));
  for (int r = 1; r < rounds; ++r) s = _mm_aesdec_si128(s, Key(dec_ks, r));
  s = _mm_aesdeclast_si128(s, Key(dec_ks, rounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

STEGFS_AESNI void EncryptEcb(const uint8_t* enc_ks, int rounds,
                             const uint8_t* in, uint8_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i* src = reinterpret_cast<const __m128i*>(in) + i;
    __m128i k = Key(enc_ks, 0);
    __m128i s0 = _mm_xor_si128(_mm_loadu_si128(src + 0), k);
    __m128i s1 = _mm_xor_si128(_mm_loadu_si128(src + 1), k);
    __m128i s2 = _mm_xor_si128(_mm_loadu_si128(src + 2), k);
    __m128i s3 = _mm_xor_si128(_mm_loadu_si128(src + 3), k);
    for (int r = 1; r < rounds; ++r) {
      k = Key(enc_ks, r);
      s0 = _mm_aesenc_si128(s0, k);
      s1 = _mm_aesenc_si128(s1, k);
      s2 = _mm_aesenc_si128(s2, k);
      s3 = _mm_aesenc_si128(s3, k);
    }
    k = Key(enc_ks, rounds);
    __m128i* dst = reinterpret_cast<__m128i*>(out) + i;
    _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(s0, k));
    _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(s1, k));
    _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(s2, k));
    _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(s3, k));
  }
  for (; i < n; ++i) Encrypt1(enc_ks, rounds, in + 16 * i, out + 16 * i);
}

STEGFS_AESNI void DecryptEcb(const uint8_t* dec_ks, int rounds,
                             const uint8_t* in, uint8_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i* src = reinterpret_cast<const __m128i*>(in) + i;
    __m128i k = Key(dec_ks, 0);
    __m128i s0 = _mm_xor_si128(_mm_loadu_si128(src + 0), k);
    __m128i s1 = _mm_xor_si128(_mm_loadu_si128(src + 1), k);
    __m128i s2 = _mm_xor_si128(_mm_loadu_si128(src + 2), k);
    __m128i s3 = _mm_xor_si128(_mm_loadu_si128(src + 3), k);
    for (int r = 1; r < rounds; ++r) {
      k = Key(dec_ks, r);
      s0 = _mm_aesdec_si128(s0, k);
      s1 = _mm_aesdec_si128(s1, k);
      s2 = _mm_aesdec_si128(s2, k);
      s3 = _mm_aesdec_si128(s3, k);
    }
    k = Key(dec_ks, rounds);
    __m128i* dst = reinterpret_cast<__m128i*>(out) + i;
    _mm_storeu_si128(dst + 0, _mm_aesdeclast_si128(s0, k));
    _mm_storeu_si128(dst + 1, _mm_aesdeclast_si128(s1, k));
    _mm_storeu_si128(dst + 2, _mm_aesdeclast_si128(s2, k));
    _mm_storeu_si128(dst + 3, _mm_aesdeclast_si128(s3, k));
  }
  for (; i < n; ++i) Decrypt1(dec_ks, rounds, in + 16 * i, out + 16 * i);
}

STEGFS_AESNI void Encrypt4(const uint8_t* enc_ks, int rounds,
                           const uint8_t* const in[4],
                           uint8_t* const out[4]) {
  __m128i k = Key(enc_ks, 0);
  __m128i s0 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(in[0])), k);
  __m128i s1 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(in[1])), k);
  __m128i s2 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(in[2])), k);
  __m128i s3 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(in[3])), k);
  for (int r = 1; r < rounds; ++r) {
    k = Key(enc_ks, r);
    s0 = _mm_aesenc_si128(s0, k);
    s1 = _mm_aesenc_si128(s1, k);
    s2 = _mm_aesenc_si128(s2, k);
    s3 = _mm_aesenc_si128(s3, k);
  }
  k = Key(enc_ks, rounds);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out[0]),
                   _mm_aesenclast_si128(s0, k));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out[1]),
                   _mm_aesenclast_si128(s1, k));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out[2]),
                   _mm_aesenclast_si128(s2, k));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out[3]),
                   _mm_aesenclast_si128(s3, k));
}

#undef STEGFS_AESNI

}  // namespace aesni
}  // namespace crypto
}  // namespace stegfs

#else  // non-x86: the tier is never selected; stubs keep the link happy.

#include <cstdlib>

namespace stegfs {
namespace crypto {
namespace aesni {

bool Supported() { return false; }
void Encrypt1(const uint8_t*, int, const uint8_t*, uint8_t*) { std::abort(); }
void Decrypt1(const uint8_t*, int, const uint8_t*, uint8_t*) { std::abort(); }
void EncryptEcb(const uint8_t*, int, const uint8_t*, uint8_t*, size_t) {
  std::abort();
}
void DecryptEcb(const uint8_t*, int, const uint8_t*, uint8_t*, size_t) {
  std::abort();
}
void Encrypt4(const uint8_t*, int, const uint8_t* const*, uint8_t* const*) {
  std::abort();
}

}  // namespace aesni
}  // namespace crypto
}  // namespace stegfs

#endif
