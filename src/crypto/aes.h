// AES-128/192/256 block cipher (FIPS 197) with tiered backends.
//
// The paper (section 4, API 1) encrypts hidden-object blocks with an
// AES-based block cipher; we use AES-256 keys derived from the File Access
// Key. Chaining modes live in block_crypter.h.
//
// Two dispatch tiers, selected once at process start and overridable for
// tests/benchmarks:
//   kAesNi - hardware AES round instructions (runtime cpuid detection),
//            pipelined four blocks at a time in the batch entry points
//   kTable - the classic fused T-table software implementation
// A third, byte-wise FIPS-197 transcription lives in aes_ref.h as the
// verification reference; it is never dispatched to.
#ifndef STEGFS_CRYPTO_AES_H_
#define STEGFS_CRYPTO_AES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace stegfs {
namespace crypto {

enum class AesTier { kTable, kAesNi };

// The tier every Aes instance currently dispatches to. Defaults to kAesNi
// when the CPU supports it, kTable otherwise.
AesTier ActiveAesTier();
// Short stable name of the active tier: "aes-ni" or "t-table". The pointer
// is a static string (safe to hand across the C API).
const char* AesTierName();
// Overrides the tier (process-wide). Returns false — and changes nothing —
// if the requested tier is unsupported on this CPU.
bool SetAesTier(AesTier tier);

// Expanded-key AES context. Construct once per key, then encrypt/decrypt any
// number of 16-byte blocks.
class Aes {
 public:
  // key_len must be 16, 24 or 32 bytes (AES-128/192/256).
  Aes(const uint8_t* key, size_t key_len);
  explicit Aes(const std::string& key)
      : Aes(reinterpret_cast<const uint8_t*>(key.data()), key.size()) {}

  // Encrypts/decrypts exactly 16 bytes. in and out may alias.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  // ECB batch: n independent 16-byte blocks laid out back to back. The
  // AES-NI tier pipelines four blocks per dispatch; the table tier loops.
  // in and out may be the same buffer (per-block aliasing).
  void EncryptBlocksEcb(const uint8_t* in, uint8_t* out, size_t n) const;
  void DecryptBlocksEcb(const uint8_t* in, uint8_t* out, size_t n) const;

  // Four independent 16-byte blocks at unrelated addresses — the lane
  // primitive BlockCrypter uses to interleave four CBC chains (one per
  // device block) through the hardware pipeline. in[i]/out[i] may alias.
  void Encrypt4(const uint8_t* const in[4], uint8_t* const out[4]) const;

  int rounds() const { return rounds_; }

 private:
  void ExpandKey(const uint8_t* key, size_t key_len);
  void EncryptBlockTable(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlockTable(const uint8_t in[16], uint8_t out[16]) const;

  // Round keys, 4 words per round plus the initial AddRoundKey, and the
  // "equivalent inverse cipher" schedule for table-driven decryption.
  uint32_t round_keys_[60];
  uint32_t dec_round_keys_[60];
  // The same two schedules in FIPS-197 byte order, for the AES-NI tier.
  alignas(16) uint8_t enc_ks_[240];
  alignas(16) uint8_t dec_ks_[240];
  int rounds_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_AES_H_
