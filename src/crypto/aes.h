// AES-128/192/256 block cipher (FIPS 197), implemented from the standard.
//
// The paper (section 4, API 1) encrypts hidden-object blocks with an
// AES-based block cipher; we use AES-256 keys derived from the File Access
// Key. Single-block encrypt/decrypt only — chaining modes live in
// block_crypter.h.
#ifndef STEGFS_CRYPTO_AES_H_
#define STEGFS_CRYPTO_AES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace stegfs {
namespace crypto {

// Expanded-key AES context. Construct once per key, then encrypt/decrypt any
// number of 16-byte blocks.
class Aes {
 public:
  // key_len must be 16, 24 or 32 bytes (AES-128/192/256).
  Aes(const uint8_t* key, size_t key_len);
  explicit Aes(const std::string& key)
      : Aes(reinterpret_cast<const uint8_t*>(key.data()), key.size()) {}

  // Encrypts/decrypts exactly 16 bytes. in and out may alias.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  int rounds() const { return rounds_; }

 private:
  void ExpandKey(const uint8_t* key, size_t key_len);

  // Round keys, 4 words per round plus the initial AddRoundKey, and the
  // "equivalent inverse cipher" schedule for table-driven decryption.
  uint32_t round_keys_[60];
  uint32_t dec_round_keys_[60];
  int rounds_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_AES_H_
