// Cryptographic pseudo-random generators.
//
// HashChainPrng is the header locator's generator from the paper (section 4,
// API 1): "It uses SHA256 as the pseudorandom number generator for locating
// the hidden object (the seed is recursively hashed to generate the
// pseudorandom numbers)". Given the same (name, key) seed it reproduces the
// same candidate block-number sequence forever, which is what makes hidden
// files findable without any central index.
//
// CtrDrbg is an AES-CTR based deterministic random bit generator used for
// bulk random material: format-time disk fill, FAK generation, abandoned
// block selection. It is seeded explicitly so experiments are reproducible.
#ifndef STEGFS_CRYPTO_PRNG_H_
#define STEGFS_CRYPTO_PRNG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace stegfs {
namespace crypto {

// Recursive-SHA-256 generator of block numbers in [0, modulus).
class HashChainPrng {
 public:
  // `seed` is typically SHA256(physical_name || access_key).
  HashChainPrng(const Sha256Digest& seed, uint64_t modulus);

  // Next candidate block number. Consumes 8 bytes of the current digest at a
  // time; re-hashes the digest when exhausted ("recursively hashed").
  uint64_t Next();

 private:
  Sha256Digest state_;
  uint64_t modulus_;
  size_t offset_ = 0;
};

// AES-256-CTR DRBG.
class CtrDrbg {
 public:
  explicit CtrDrbg(const std::string& seed);

  void Generate(uint8_t* out, size_t n);
  std::vector<uint8_t> Generate(size_t n);
  std::string GenerateString(size_t n);
  uint64_t NextUint64();
  // Uniform in [0, n) by rejection sampling (no modulo bias).
  uint64_t Uniform(uint64_t n);

 private:
  std::unique_ptr<Aes> cipher_;
  uint64_t counter_ = 0;
  uint8_t buffer_[16];
  size_t buffer_pos_ = 16;  // empty
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_PRNG_H_
