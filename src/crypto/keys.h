// Key material and the StegFS key scheme (paper section 3.2).
//
// Two kinds of keys exist:
//   UAK (User Access Key)  - unlocks a user's per-level directory of hidden
//                            files. UAKs form a *linear hierarchy*: signing
//                            on at level k derives every UAK at level < k,
//                            so a coerced user can disclose a low level and
//                            plausibly deny the higher ones.
//   FAK (File Access Key)  - random per-file key; (name, FAK) pairs are what
//                            UAK directories store and what sharing sends.
#ifndef STEGFS_CRYPTO_KEYS_H_
#define STEGFS_CRYPTO_KEYS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"

namespace stegfs {
namespace crypto {

// Derives the locator seed for a hidden object:
// SHA256(physical_name || 0x00 || access_key). This single digest both seeds
// the HashChainPrng and (re-hashed with a distinct label) forms the header
// signature, per paper section 3.1.
Sha256Digest LocatorSeed(const std::string& physical_name,
                         const std::string& access_key);

// The header signature that "uniquely identifies the file": a one-way hash
// of name and key, so the key cannot be inferred from name + signature.
Sha256Digest FileSignature(const std::string& physical_name,
                           const std::string& access_key);

// Linear UAK hierarchy. Level keys are chained downward:
//   UAK[k-1] = SHA256(UAK[k] || "stegfs-uak-down")
// so possession of a level-k key reveals all lower levels but nothing above.
class UakHierarchy {
 public:
  // Creates a hierarchy whose *top* (highest level, most secret) key is
  // `top_key` with `levels` levels, numbered 1 (lowest) .. levels (highest).
  UakHierarchy(const std::string& top_key, int levels);

  int levels() const { return static_cast<int>(keys_.size()); }

  // The UAK for `level` in [1, levels()].
  const std::string& KeyForLevel(int level) const;

  // All UAKs visible when signing on at `level`: levels 1..level.
  std::vector<std::string> KeysUpToLevel(int level) const;

 private:
  std::vector<std::string> keys_;  // index 0 = level 1
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_KEYS_H_
