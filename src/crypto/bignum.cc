#include "crypto/bignum.h"

#include <algorithm>
#include <cassert>

namespace stegfs {
namespace crypto {

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::FromUint64(uint64_t v) {
  BigInt out;
  if (v) out.limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) out.limbs_.push_back(static_cast<uint32_t>(v >> 32));
  return out;
}

BigInt BigInt::FromBytes(const uint8_t* data, size_t len) {
  BigInt out;
  out.limbs_.assign((len + 3) / 4, 0);
  for (size_t i = 0; i < len; ++i) {
    // data[0] is the most significant byte; data[i] lands at byte
    // significance len-1-i.
    size_t sig = len - 1 - i;
    out.limbs_[sig / 4] |= static_cast<uint32_t>(data[i]) << (8 * (sig % 4));
  }
  out.Trim();
  return out;
}

std::vector<uint8_t> BigInt::ToBytes(size_t min_len) const {
  size_t nbytes = (BitLength() + 7) / 8;
  size_t total = std::max(nbytes, min_len);
  std::vector<uint8_t> out(total, 0);
  for (size_t sig = 0; sig < nbytes; ++sig) {
    uint8_t byte =
        static_cast<uint8_t>(limbs_[sig / 4] >> (8 * (sig % 4)));
    out[total - 1 - sig] = byte;
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  assert(*this >= o);
  BigInt out;
  out.limbs_.resize(limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow -
                   (i < o.limbs_.size() ? o.limbs_[i] : 0);
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  if (IsZero() || o.IsZero()) return out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(limbs_[i]) * o.limbs_[j] +
                     out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + o.limbs_.size();
    while (carry) {
      uint64_t cur = static_cast<uint64_t>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftLeft(size_t bits) const {
  if (IsZero() || bits == 0) {
    BigInt c = *this;
    return c;
  }
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigInt BigInt::ShiftRight(size_t bits) const {
  size_t limb_shift = bits / 32;
  size_t bit_shift = bits % 32;
  BigInt out;
  if (limb_shift >= limbs_.size()) return out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* q, BigInt* r) {
  assert(!b.IsZero());
  if (Compare(a, b) < 0) {
    if (q) *q = BigInt();
    if (r) *r = a;
    return;
  }
  // Bitwise long division, MSB first. O(bits * limbs) — fine at RSA sizes.
  BigInt quotient;
  BigInt remainder;
  size_t abits = a.BitLength();
  quotient.limbs_.assign(a.limbs_.size(), 0);
  remainder.limbs_.reserve(b.limbs_.size() + 1);
  for (size_t i = abits; i-- > 0;) {
    // remainder = (remainder << 1) | a.Bit(i), done in place.
    uint32_t carry = a.Bit(i) ? 1u : 0u;
    for (size_t l = 0; l < remainder.limbs_.size(); ++l) {
      uint32_t next_carry = remainder.limbs_[l] >> 31;
      remainder.limbs_[l] = (remainder.limbs_[l] << 1) | carry;
      carry = next_carry;
    }
    if (carry) remainder.limbs_.push_back(carry);
    if (Compare(remainder, b) >= 0) {
      remainder = remainder - b;
      quotient.limbs_[i / 32] |= (1u << (i % 32));
    }
  }
  quotient.Trim();
  remainder.Trim();
  if (q) *q = std::move(quotient);
  if (r) *r = std::move(remainder);
}

BigInt BigInt::Mod(const BigInt& m) const {
  BigInt r;
  DivMod(*this, m, nullptr, &r);
  return r;
}

BigInt BigInt::ModExp(const BigInt& exp, const BigInt& m) const {
  assert(!m.IsZero());
  BigInt result = FromUint64(1).Mod(m);
  BigInt base = Mod(m);
  size_t ebits = exp.BitLength();
  for (size_t i = ebits; i-- > 0;) {
    result = (result * result).Mod(m);
    if (exp.Bit(i)) {
      result = (result * base).Mod(m);
    }
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    BigInt r = a.Mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::ModInverse(const BigInt& m) const {
  // Extended Euclid tracking only the coefficient of *this, with signs
  // handled by keeping (value, negative?) pairs.
  BigInt r0 = m, r1 = Mod(m);
  BigInt t0, t1 = FromUint64(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.IsZero()) {
    BigInt q, r2;
    DivMod(r0, r1, &q, &r2);
    // t2 = t0 - q * t1 (signed).
    BigInt qt = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign: subtract magnitudes.
      if (t0 >= qt) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (Compare(r0, FromUint64(1)) != 0) return BigInt();  // not invertible
  if (t0_neg) return m - t0.Mod(m);
  return t0.Mod(m);
}

BigInt BigInt::Random(CtrDrbg* drbg, const BigInt& bound) {
  assert(!bound.IsZero());
  size_t bytes = (bound.BitLength() + 7) / 8;
  // Rejection sampling.
  for (;;) {
    std::vector<uint8_t> buf = drbg->Generate(bytes);
    // Mask the top byte down to the bound's bit length to speed acceptance.
    size_t top_bits = bound.BitLength() % 8;
    if (top_bits) buf[0] &= static_cast<uint8_t>((1u << top_bits) - 1);
    BigInt candidate = FromBytes(buf);
    if (Compare(candidate, bound) < 0) return candidate;
  }
}

BigInt BigInt::RandomBits(CtrDrbg* drbg, size_t bits) {
  assert(bits >= 2);
  size_t bytes = (bits + 7) / 8;
  std::vector<uint8_t> buf = drbg->Generate(bytes);
  size_t top_bits = bits % 8;
  if (top_bits) {
    buf[0] &= static_cast<uint8_t>((1u << top_bits) - 1);
    buf[0] |= static_cast<uint8_t>(1u << (top_bits - 1));
  } else {
    buf[0] |= 0x80;
  }
  return FromBytes(buf);
}

namespace {
constexpr uint32_t kSmallPrimes[] = {
    3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41,  43,  47,  53,  59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137};
}  // namespace

bool BigInt::IsProbablePrime(const BigInt& n, CtrDrbg* drbg, int rounds) {
  BigInt two = FromUint64(2);
  BigInt three = FromUint64(3);
  if (Compare(n, two) < 0) return false;
  if (Compare(n, three) <= 0) return true;
  if (!n.IsOdd()) return false;

  // Trial division by small primes.
  for (uint32_t p : kSmallPrimes) {
    BigInt bp = FromUint64(p);
    if (Compare(n, bp) == 0) return true;
    if (n.Mod(bp).IsZero()) return false;
  }

  // n - 1 = d * 2^s with d odd.
  BigInt one = FromUint64(1);
  BigInt n_minus_1 = n - one;
  BigInt d = n_minus_1;
  size_t s = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++s;
  }

  for (int round = 0; round < rounds; ++round) {
    // a in [2, n-2].
    BigInt a = Random(drbg, n - FromUint64(3)) + two;
    BigInt x = a.ModExp(d, n);
    if (Compare(x, one) == 0 || Compare(x, n_minus_1) == 0) continue;
    bool composite = true;
    for (size_t i = 0; i + 1 < s; ++i) {
      x = (x * x).Mod(n);
      if (Compare(x, n_minus_1) == 0) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::GeneratePrime(size_t bits, CtrDrbg* drbg) {
  for (;;) {
    BigInt candidate = RandomBits(drbg, bits);
    if (!candidate.IsOdd()) candidate = candidate + FromUint64(1);
    if (IsProbablePrime(candidate, drbg)) return candidate;
  }
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char* digits = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      int nib = (limbs_[i] >> shift) & 0xf;
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back(digits[nib]);
    }
  }
  return out;
}

}  // namespace crypto
}  // namespace stegfs
