#include "crypto/gf256_simd.h"

#include <atomic>
#include <cstring>

#include "crypto/gf256.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define STEGFS_GF_X86 1
#endif

namespace stegfs {
namespace crypto {

namespace {

// 16-entry nibble product tables for a fixed coefficient c:
//   c * b == lo[b & 15] ^ hi[b >> 4]
// because multiplication distributes over the XOR split of b.
struct NibbleTables {
  uint8_t lo[16];
  uint8_t hi[16];
};

NibbleTables TablesFor(uint8_t c) {
  NibbleTables t;
  for (int x = 0; x < 16; ++x) {
    t.lo[x] = Gf256::Mul(c, static_cast<uint8_t>(x));
    t.hi[x] = Gf256::Mul(c, static_cast<uint8_t>(x << 4));
  }
  return t;
}

void MulAccumScalar(uint8_t c, const uint8_t* src, uint8_t* dst, size_t len) {
  // One 256-entry product table per call, amortized over the whole block —
  // the honest scalar baseline (log/exp per byte would be slower).
  uint8_t table[256];
  for (int x = 0; x < 256; ++x) {
    table[x] = Gf256::Mul(c, static_cast<uint8_t>(x));
  }
  for (size_t i = 0; i < len; ++i) dst[i] ^= table[src[i]];
}

void ScaleScalar(uint8_t c, uint8_t* buf, size_t len) {
  uint8_t table[256];
  for (int x = 0; x < 256; ++x) {
    table[x] = Gf256::Mul(c, static_cast<uint8_t>(x));
  }
  for (size_t i = 0; i < len; ++i) buf[i] = table[buf[i]];
}

#ifdef STEGFS_GF_X86

#define STEGFS_GF_SSSE3 __attribute__((target("ssse3")))
#define STEGFS_GF_AVX2 __attribute__((target("avx2")))
#define STEGFS_GF_GFNI __attribute__((target("gfni,avx2")))

// Tail bytes (< vector width) via the same nibble tables the vector body
// used, so every tier is self-consistent.
inline void MulAccumTail(const NibbleTables& t, const uint8_t* src,
                         uint8_t* dst, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    dst[i] ^= static_cast<uint8_t>(t.lo[src[i] & 15] ^ t.hi[src[i] >> 4]);
  }
}

inline void ScaleTail(const NibbleTables& t, uint8_t* buf, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    buf[i] = static_cast<uint8_t>(t.lo[buf[i] & 15] ^ t.hi[buf[i] >> 4]);
  }
}

STEGFS_GF_SSSE3 void MulAccumPshufb128(const NibbleTables& t,
                                       const uint8_t* src, uint8_t* dst,
                                       size_t len) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(l, h)));
  }
  MulAccumTail(t, src + i, dst + i, len - i);
}

STEGFS_GF_SSSE3 void ScalePshufb128(const NibbleTables& t, uint8_t* buf,
                                    size_t len) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + i));
    __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
    __m128i h =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(buf + i),
                     _mm_xor_si128(l, h));
  }
  ScaleTail(t, buf + i, len - i);
}

STEGFS_GF_AVX2 void MulAccumPshufb256(const NibbleTables& t,
                                      const uint8_t* src, uint8_t* dst,
                                      size_t len) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
    __m256i h = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(l, h)));
  }
  MulAccumTail(t, src + i, dst + i, len - i);
}

STEGFS_GF_AVX2 void ScalePshufb256(const NibbleTables& t, uint8_t* buf,
                                   size_t len) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(buf + i));
    __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
    __m256i h = _mm256_shuffle_epi8(
        hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(buf + i),
                        _mm256_xor_si256(l, h));
  }
  ScaleTail(t, buf + i, len - i);
}

// GF2P8MULB multiplies in x^8 + x^4 + x^3 + x + 1 — exactly our field, no
// tables needed.
STEGFS_GF_GFNI void MulAccumGfni(uint8_t c, const uint8_t* src, uint8_t* dst,
                                 size_t len) {
  const __m256i cv = _mm256_set1_epi8(static_cast<char>(c));
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i p = _mm256_gf2p8mul_epi8(v, cv);
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  if (i < len) {
    NibbleTables t = TablesFor(c);
    MulAccumTail(t, src + i, dst + i, len - i);
  }
}

STEGFS_GF_GFNI void ScaleGfni(uint8_t c, uint8_t* buf, size_t len) {
  const __m256i cv = _mm256_set1_epi8(static_cast<char>(c));
  size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(buf + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(buf + i),
                        _mm256_gf2p8mul_epi8(v, cv));
  }
  if (i < len) {
    NibbleTables t = TablesFor(c);
    ScaleTail(t, buf + i, len - i);
  }
}

bool GfniSupported() {
  return __builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx2");
}
bool PshufbSupported() { return __builtin_cpu_supports("ssse3"); }
bool Avx2Supported() { return __builtin_cpu_supports("avx2"); }

#else  // !STEGFS_GF_X86

bool GfniSupported() { return false; }
bool PshufbSupported() { return false; }
bool Avx2Supported() { return false; }

#endif  // STEGFS_GF_X86

GfTier DetectTier() {
  if (GfniSupported()) return GfTier::kGfni;
  if (PshufbSupported()) return GfTier::kPshufb;
  return GfTier::kScalar;
}

std::atomic<GfTier>& TierSlot() {
  static std::atomic<GfTier> tier{DetectTier()};
  return tier;
}

}  // namespace

GfTier ActiveGfTier() {
  return TierSlot().load(std::memory_order_relaxed);
}

const char* GfTierName() {
  switch (ActiveGfTier()) {
    case GfTier::kGfni:
      return "gfni";
    case GfTier::kPshufb:
      return "pshufb";
    case GfTier::kScalar:
      break;
  }
  return "gf-scalar";
}

bool SetGfTier(GfTier tier) {
  if (tier == GfTier::kGfni && !GfniSupported()) return false;
  if (tier == GfTier::kPshufb && !PshufbSupported()) return false;
  TierSlot().store(tier, std::memory_order_relaxed);
  return true;
}

void GfMulAccum(uint8_t c, const uint8_t* src, uint8_t* dst, size_t len) {
  if (len == 0 || c == 0) return;
  if (c == 1) {
    for (size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  switch (ActiveGfTier()) {
#ifdef STEGFS_GF_X86
    case GfTier::kGfni:
      MulAccumGfni(c, src, dst, len);
      return;
    case GfTier::kPshufb: {
      NibbleTables t = TablesFor(c);
      if (Avx2Supported()) {
        MulAccumPshufb256(t, src, dst, len);
      } else {
        MulAccumPshufb128(t, src, dst, len);
      }
      return;
    }
#else
    case GfTier::kGfni:
    case GfTier::kPshufb:
#endif
    case GfTier::kScalar:
      break;
  }
  MulAccumScalar(c, src, dst, len);
}

void GfScale(uint8_t c, uint8_t* buf, size_t len) {
  if (len == 0 || c == 1) return;
  if (c == 0) {
    std::memset(buf, 0, len);
    return;
  }
  switch (ActiveGfTier()) {
#ifdef STEGFS_GF_X86
    case GfTier::kGfni:
      ScaleGfni(c, buf, len);
      return;
    case GfTier::kPshufb: {
      NibbleTables t = TablesFor(c);
      if (Avx2Supported()) {
        ScalePshufb256(t, buf, len);
      } else {
        ScalePshufb128(t, buf, len);
      }
      return;
    }
#else
    case GfTier::kGfni:
    case GfTier::kPshufb:
#endif
    case GfTier::kScalar:
      break;
  }
  ScaleScalar(c, buf, len);
}

}  // namespace crypto
}  // namespace stegfs
