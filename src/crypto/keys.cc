#include "crypto/keys.h"

#include <cassert>

namespace stegfs {
namespace crypto {

Sha256Digest LocatorSeed(const std::string& physical_name,
                         const std::string& access_key) {
  Sha256 h;
  h.Update("stegfs-locator\0", 15);
  h.Update(physical_name);
  h.Update("\0", 1);
  h.Update(access_key);
  return h.Finish();
}

Sha256Digest FileSignature(const std::string& physical_name,
                           const std::string& access_key) {
  Sha256 h;
  h.Update("stegfs-signature\0", 17);
  h.Update(physical_name);
  h.Update("\0", 1);
  h.Update(access_key);
  return h.Finish();
}

UakHierarchy::UakHierarchy(const std::string& top_key, int levels) {
  assert(levels >= 1);
  keys_.resize(levels);
  keys_[levels - 1] = top_key;
  for (int i = levels - 2; i >= 0; --i) {
    Sha256 h;
    h.Update(keys_[i + 1]);
    h.Update("stegfs-uak-down", 15);
    Sha256Digest d = h.Finish();
    keys_[i].assign(reinterpret_cast<const char*>(d.data()), d.size());
  }
}

const std::string& UakHierarchy::KeyForLevel(int level) const {
  assert(level >= 1 && level <= static_cast<int>(keys_.size()));
  return keys_[level - 1];
}

std::vector<std::string> UakHierarchy::KeysUpToLevel(int level) const {
  assert(level >= 1 && level <= static_cast<int>(keys_.size()));
  return std::vector<std::string>(keys_.begin(), keys_.begin() + level);
}

}  // namespace crypto
}  // namespace stegfs
