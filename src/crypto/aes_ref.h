// AesRef: a deliberately naive, byte-wise AES implementation transcribed
// from the FIPS 197 pseudo-code (state matrix, per-byte SubBytes/ShiftRows/
// MixColumns loops). It is the verification reference for the optimized
// tiers in crypto::Aes (T-tables, AES-NI): the equivalence tests check
// every tier against this code and against the published test vectors.
// Never used on a hot path.
#ifndef STEGFS_CRYPTO_AES_REF_H_
#define STEGFS_CRYPTO_AES_REF_H_

#include <cstddef>
#include <cstdint>

namespace stegfs {
namespace crypto {

class AesRef {
 public:
  // key_len must be 16, 24 or 32 bytes (AES-128/192/256).
  AesRef(const uint8_t* key, size_t key_len);

  // Encrypts/decrypts exactly 16 bytes. in and out may alias.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  int rounds() const { return rounds_; }

 private:
  // Round keys as FIPS-197 byte serialization: 16 bytes per round key.
  uint8_t round_keys_[16 * 15];
  int rounds_;
};

}  // namespace crypto
}  // namespace stegfs

#endif  // STEGFS_CRYPTO_AES_REF_H_
