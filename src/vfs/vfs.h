// Vfs: the standard-file-API surface of the paper's figure 5.
//
// "StegFS implements all the standard file system APIs, such as open() and
// read(), so it is able to support existing applications that operate only
// on plain files" — this layer provides exactly that: file-descriptor
// semantics (open/read/write/lseek/close, mkdir/readdir/unlink) over a
// mounted StegFs volume. Connected hidden objects appear in the namespace
// under the session prefix "/steg/<objname>", so an unmodified application
// handed such a path reads hidden data with ordinary calls; after
// steg_disconnect the path vanishes again.
//
// One Vfs instance = one user session (fixed uid), matching the paper's
// "connect a hidden object to the current user session" model.
//
// Threading: a single Vfs instance is one session and must be driven by
// one thread at a time (its descriptor table is unsynchronized). Parallel
// multiuser access is per-session: give each thread its own Vfs over the
// same mounted StegFs — the shared volume underneath is fully thread-safe
// (docs/ARCHITECTURE.md, "Concurrency model").
#ifndef STEGFS_VFS_VFS_H_
#define STEGFS_VFS_VFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/stegfs.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {
namespace vfs {

// open() flags (combinable).
enum OpenFlags : uint32_t {
  kRead = 1 << 0,      // O_RDONLY
  kWrite = 1 << 1,     // O_WRONLY (kRead|kWrite = O_RDWR)
  kCreate = 1 << 2,    // O_CREAT
  kTruncate = 1 << 3,  // O_TRUNC
  kAppend = 1 << 4,    // O_APPEND
};

enum class Whence { kSet, kCurrent, kEnd };

struct VfsDirEntry {
  std::string name;
  bool is_directory = false;
  bool is_hidden = false;  // lives under /steg/
};

class Vfs {
 public:
  // `fs` must outlive the Vfs. `uid` scopes every hidden-object operation.
  Vfs(StegFs* fs, std::string uid);
  ~Vfs();

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // --- steganographic session control ---------------------------------
  // Makes a hidden object (and, for directories, its offspring) visible at
  // /steg/<objname>.
  Status Connect(const std::string& objname, const std::string& uak);
  Status Disconnect(const std::string& objname);
  // Invoked automatically by the destructor: "when the user logs off, all
  // the connected hidden objects are automatically disconnected".
  Status Logoff();

  // --- standard calls ---------------------------------------------------
  // Paths: "/..." = plain namespace; "/steg/<objname>" = connected hidden
  // objects. Returns a small non-negative descriptor.
  StatusOr<int> Open(const std::string& path, uint32_t flags);
  Status Close(int fd);
  // Reads up to `n` bytes from the descriptor's offset; advances it.
  // Returns bytes read (0 at end of file).
  StatusOr<int64_t> Read(int fd, void* buf, uint64_t n);
  // Writes at the descriptor's offset (or EOF with kAppend); advances it.
  StatusOr<int64_t> Write(int fd, const void* buf, uint64_t n);
  StatusOr<int64_t> Seek(int fd, int64_t offset, Whence whence);
  Status Truncate(int fd, uint64_t size);
  // Flushes the descriptor's object (hidden header sync + metadata).
  Status Fsync(int fd);

  // MkDir and Unlink are plain-namespace only: hidden directories are made
  // with steg_create/steg_hide, and hidden objects are removed through
  // StegFs::HiddenRemove (which needs the UAK). Both return NotSupported
  // for /steg/ paths.
  Status MkDir(const std::string& path);
  Status Unlink(const std::string& path);
  // Listing "/steg" enumerates the session's connected objects; any other
  // path lists the plain directory.
  StatusOr<std::vector<VfsDirEntry>> ReadDir(const std::string& path);
  StatusOr<uint64_t> FileSize(int fd);

  StegFs* fs() { return fs_; }
  const std::string& uid() const { return uid_; }

 private:
  struct Descriptor {
    bool in_use = false;
    bool hidden = false;
    std::string target;  // plain path or hidden objname
    uint32_t flags = 0;
    uint64_t offset = 0;
  };

  // Splits "/steg/<objname>" -> objname; returns false for plain paths.
  static bool IsStegPath(const std::string& path, std::string* objname);
  StatusOr<Descriptor*> GetFd(int fd);
  StatusOr<uint64_t> TargetSize(const Descriptor& d);

  StegFs* fs_;
  std::string uid_;
  std::vector<Descriptor> fds_;
};

}  // namespace vfs
}  // namespace stegfs

#endif  // STEGFS_VFS_VFS_H_
