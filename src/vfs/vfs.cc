#include "vfs/vfs.h"

#include <algorithm>
#include <cstring>

namespace stegfs {
namespace vfs {

namespace {
constexpr char kStegPrefix[] = "/steg/";
constexpr size_t kStegPrefixLen = 6;
}  // namespace

Vfs::Vfs(StegFs* fs, std::string uid) : fs_(fs), uid_(std::move(uid)) {}

Vfs::~Vfs() { (void)Logoff(); }

bool Vfs::IsStegPath(const std::string& path, std::string* objname) {
  if (path.compare(0, kStegPrefixLen, kStegPrefix) != 0) return false;
  *objname = path.substr(kStegPrefixLen);
  return !objname->empty();
}

Status Vfs::Connect(const std::string& objname, const std::string& uak) {
  return fs_->StegConnect(uid_, objname, uak);
}

Status Vfs::Disconnect(const std::string& objname) {
  // Invalidate descriptors that point into the object.
  for (Descriptor& d : fds_) {
    if (d.in_use && d.hidden &&
        (d.target == objname ||
         d.target.compare(0, objname.size() + 1, objname + "/") == 0)) {
      d.in_use = false;
    }
  }
  return fs_->StegDisconnect(uid_, objname);
}

Status Vfs::Logoff() {
  for (Descriptor& d : fds_) d.in_use = false;
  return fs_->DisconnectAll(uid_);
}

StatusOr<Vfs::Descriptor*> Vfs::GetFd(int fd) {
  if (fd < 0 || fd >= static_cast<int>(fds_.size()) || !fds_[fd].in_use) {
    return Status::InvalidArgument("bad file descriptor");
  }
  return &fds_[fd];
}

StatusOr<uint64_t> Vfs::TargetSize(const Descriptor& d) {
  if (d.hidden) {
    return fs_->HiddenSize(uid_, d.target);
  }
  STEGFS_ASSIGN_OR_RETURN(FileInfo info, fs_->plain()->Stat(d.target));
  return info.size;
}

StatusOr<int> Vfs::Open(const std::string& path, uint32_t flags) {
  if ((flags & (kRead | kWrite)) == 0) {
    return Status::InvalidArgument("open() needs kRead and/or kWrite");
  }
  Descriptor d;
  d.flags = flags;

  std::string objname;
  if (IsStegPath(path, &objname)) {
    d.hidden = true;
    d.target = objname;
    // The object must already be connected; open() does not take keys.
    auto size = fs_->HiddenSize(uid_, objname);
    if (!size.ok()) return size.status();
    if (flags & kTruncate) {
      STEGFS_RETURN_IF_ERROR(fs_->HiddenTruncate(uid_, objname, 0));
    }
  } else {
    d.target = path;
    bool exists = fs_->plain()->Exists(path);
    if (!exists) {
      if (!(flags & kCreate)) {
        return Status::NotFound("no such plain file: " + path);
      }
      STEGFS_RETURN_IF_ERROR(fs_->plain()->CreateFile(path));
    } else if (flags & kTruncate) {
      STEGFS_RETURN_IF_ERROR(fs_->plain()->TruncateFile(path, 0));
    }
  }

  d.in_use = true;
  // Reuse the lowest free slot, POSIX-style.
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].in_use) {
      fds_[i] = std::move(d);
      return static_cast<int>(i);
    }
  }
  fds_.push_back(std::move(d));
  return static_cast<int>(fds_.size() - 1);
}

Status Vfs::Close(int fd) {
  STEGFS_ASSIGN_OR_RETURN(Descriptor * d, GetFd(fd));
  d->in_use = false;
  return Status::OK();
}

StatusOr<int64_t> Vfs::Read(int fd, void* buf, uint64_t n) {
  STEGFS_ASSIGN_OR_RETURN(Descriptor * d, GetFd(fd));
  if (!(d->flags & kRead)) {
    return Status::PermissionDenied("descriptor not open for reading");
  }
  std::string out;
  if (d->hidden) {
    STEGFS_RETURN_IF_ERROR(fs_->HiddenRead(uid_, d->target, d->offset, n,
                                           &out));
  } else {
    STEGFS_RETURN_IF_ERROR(fs_->plain()->ReadAt(d->target, d->offset, n,
                                                &out));
  }
  std::memcpy(buf, out.data(), out.size());
  d->offset += out.size();
  return static_cast<int64_t>(out.size());
}

StatusOr<int64_t> Vfs::Write(int fd, const void* buf, uint64_t n) {
  STEGFS_ASSIGN_OR_RETURN(Descriptor * d, GetFd(fd));
  if (!(d->flags & kWrite)) {
    return Status::PermissionDenied("descriptor not open for writing");
  }
  if (d->flags & kAppend) {
    STEGFS_ASSIGN_OR_RETURN(d->offset, TargetSize(*d));
  }
  std::string data(static_cast<const char*>(buf), n);
  if (d->hidden) {
    STEGFS_RETURN_IF_ERROR(fs_->HiddenWrite(uid_, d->target, d->offset,
                                            data));
  } else {
    STEGFS_RETURN_IF_ERROR(fs_->plain()->WriteAt(d->target, d->offset, data));
  }
  d->offset += n;
  return static_cast<int64_t>(n);
}

StatusOr<int64_t> Vfs::Seek(int fd, int64_t offset, Whence whence) {
  STEGFS_ASSIGN_OR_RETURN(Descriptor * d, GetFd(fd));
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCurrent:
      base = static_cast<int64_t>(d->offset);
      break;
    case Whence::kEnd: {
      STEGFS_ASSIGN_OR_RETURN(uint64_t size, TargetSize(*d));
      base = static_cast<int64_t>(size);
      break;
    }
  }
  int64_t target = base + offset;
  if (target < 0) return Status::InvalidArgument("seek before start of file");
  d->offset = static_cast<uint64_t>(target);
  return target;
}

Status Vfs::Truncate(int fd, uint64_t size) {
  STEGFS_ASSIGN_OR_RETURN(Descriptor * d, GetFd(fd));
  if (!(d->flags & kWrite)) {
    return Status::PermissionDenied("descriptor not open for writing");
  }
  if (d->hidden) {
    return fs_->HiddenTruncate(uid_, d->target, size);
  }
  return fs_->plain()->TruncateFile(d->target, size);
}

Status Vfs::Fsync(int fd) {
  STEGFS_ASSIGN_OR_RETURN(Descriptor * d, GetFd(fd));
  (void)d;
  return fs_->Flush();
}

StatusOr<uint64_t> Vfs::FileSize(int fd) {
  STEGFS_ASSIGN_OR_RETURN(Descriptor * d, GetFd(fd));
  return TargetSize(*d);
}

Status Vfs::MkDir(const std::string& path) {
  std::string objname;
  if (IsStegPath(path, &objname)) {
    return Status::NotSupported(
        "create hidden directories with steg_create/steg_hide");
  }
  return fs_->plain()->MkDir(path);
}

Status Vfs::Unlink(const std::string& path) {
  std::string objname;
  if (IsStegPath(path, &objname)) {
    return Status::NotSupported(
        "remove hidden objects with HiddenRemove (needs the UAK)");
  }
  return fs_->plain()->Unlink(path);
}

StatusOr<std::vector<VfsDirEntry>> Vfs::ReadDir(const std::string& path) {
  std::vector<VfsDirEntry> out;
  if (path == "/steg" || path == "/steg/") {
    for (const std::string& name : fs_->ConnectedObjects(uid_)) {
      VfsDirEntry e;
      e.name = name;
      e.is_hidden = true;
      e.is_directory = false;
      out.push_back(std::move(e));
    }
    return out;
  }
  STEGFS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                          fs_->plain()->List(path));
  for (const DirEntry& e : entries) {
    VfsDirEntry v;
    v.name = e.name;
    std::string child = path == "/" ? "/" + e.name : path + "/" + e.name;
    auto info = fs_->plain()->Stat(child);
    v.is_directory = info.ok() && info->type == InodeType::kDirectory;
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace vfs
}  // namespace stegfs
