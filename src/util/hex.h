// Hex encoding/decoding for keys, signatures and test vectors.
#ifndef STEGFS_UTIL_HEX_H_
#define STEGFS_UTIL_HEX_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stegfs {

// Lowercase hex string of the given bytes.
std::string HexEncode(const uint8_t* data, size_t size);
std::string HexEncode(const std::string& data);
std::string HexEncode(const std::vector<uint8_t>& data);

// Parses a hex string (case-insensitive). Returns false on odd length or a
// non-hex character; on failure `out` is left in an unspecified state.
bool HexDecode(const std::string& hex, std::vector<uint8_t>* out);

}  // namespace stegfs

#endif  // STEGFS_UTIL_HEX_H_
