// StatusOr<T>: a Status or a value of type T, never both.
//
// Use as the return type of fallible functions that produce a value:
//
//   StatusOr<uint64_t> AllocateBlock();
//   ...
//   auto blk = AllocateBlock();
//   if (!blk.ok()) return blk.status();
//   Use(blk.value());
#ifndef STEGFS_UTIL_STATUSOR_H_
#define STEGFS_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace stegfs {

template <typename T>
class StatusOr {
 public:
  // Constructs from an error status. Asserts the status is not OK, because
  // an OK StatusOr must carry a value.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }
  // Constructs from a value; status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value accessors. Only valid when ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates a StatusOr expression; on error returns the status from the
// enclosing function, otherwise binds the value to `lhs`.
#define STEGFS_ASSIGN_OR_RETURN(lhs, expr)          \
  auto STEGFS_CONCAT_(_sor_, __LINE__) = (expr);    \
  if (!STEGFS_CONCAT_(_sor_, __LINE__).ok())        \
    return STEGFS_CONCAT_(_sor_, __LINE__).status();\
  lhs = std::move(STEGFS_CONCAT_(_sor_, __LINE__)).value()

#define STEGFS_CONCAT_INNER_(a, b) a##b
#define STEGFS_CONCAT_(a, b) STEGFS_CONCAT_INNER_(a, b)

}  // namespace stegfs

#endif  // STEGFS_UTIL_STATUSOR_H_
