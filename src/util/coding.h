// Little-endian fixed-width integer encoding, used by every on-disk
// structure in the repository. Encodings are explicit (no struct casts) so
// the disk format is independent of host endianness and padding.
#ifndef STEGFS_UTIL_CODING_H_
#define STEGFS_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace stegfs {

inline void EncodeFixed16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline void EncodeFixed32(uint8_t* dst, uint32_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
  dst[2] = static_cast<uint8_t>(v >> 16);
  dst[3] = static_cast<uint8_t>(v >> 24);
}

inline void EncodeFixed64(uint8_t* dst, uint64_t v) {
  EncodeFixed32(dst, static_cast<uint32_t>(v));
  EncodeFixed32(dst + 4, static_cast<uint32_t>(v >> 32));
}

inline uint16_t DecodeFixed16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0]) |
         (static_cast<uint16_t>(src[1]) << 8);
}

inline uint32_t DecodeFixed32(const uint8_t* src) {
  return static_cast<uint32_t>(src[0]) |
         (static_cast<uint32_t>(src[1]) << 8) |
         (static_cast<uint32_t>(src[2]) << 16) |
         (static_cast<uint32_t>(src[3]) << 24);
}

inline uint64_t DecodeFixed64(const uint8_t* src) {
  return static_cast<uint64_t>(DecodeFixed32(src)) |
         (static_cast<uint64_t>(DecodeFixed32(src + 4)) << 32);
}

// Append-to-string variants, for building variable-length records.
inline void PutFixed16(std::string* dst, uint16_t v) {
  uint8_t buf[2];
  EncodeFixed16(buf, v);
  dst->append(reinterpret_cast<const char*>(buf), sizeof(buf));
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  uint8_t buf[4];
  EncodeFixed32(buf, v);
  dst->append(reinterpret_cast<const char*>(buf), sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  uint8_t buf[8];
  EncodeFixed64(buf, v);
  dst->append(reinterpret_cast<const char*>(buf), sizeof(buf));
}

// Appends a 32-bit length prefix followed by the bytes of `s`.
inline void PutLengthPrefixed(std::string* dst, const std::string& s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s);
}

// Cursor-style decoding over a byte buffer. All Get* methods return false on
// truncation and leave outputs untouched.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  bool GetFixed16(uint16_t* v) {
    if (pos_ + 2 > size_) return false;
    *v = DecodeFixed16(data_ + pos_);
    pos_ += 2;
    return true;
  }
  bool GetFixed32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = DecodeFixed32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool GetFixed64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = DecodeFixed64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool GetBytes(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool GetLengthPrefixed(std::string* out) {
    uint32_t len;
    if (!GetFixed32(&len)) return false;
    if (pos_ + len > size_) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool Skip(size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace stegfs

#endif  // STEGFS_UTIL_CODING_H_
