#include "util/status.h"

namespace stegfs {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace stegfs
