// Status: lightweight error propagation without exceptions (RocksDB idiom).
//
// Every fallible operation in this codebase returns a Status (or a
// StatusOr<T>, see statusor.h). Statuses are cheap to copy, carry an error
// code plus a human-readable message, and must be checked by the caller.
#ifndef STEGFS_UTIL_STATUS_H_
#define STEGFS_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace stegfs {

// Fault-taxonomy subcode carried by I/O statuses (see src/fault/). It
// refines kIOError/kCorruption-style codes with how the failure should be
// *handled*: transient and timeout faults are retryable, persistent ones
// trip the mount's degraded-mode state machine, corruption routes to the
// redundancy heal path. kNone means "untagged" — the producing device made
// no claim and fault::Classify() applies its defaults.
enum class IoErrorClass : uint8_t {
  kNone = 0,
  kTransient = 1,
  kPersistent = 2,
  kCorruption = 3,
  kTimeout = 4,
};

// Error categories used across the file system stack.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,            // named object does not exist (or wrong key)
  kCorruption = 2,          // on-disk structure failed validation
  kInvalidArgument = 3,     // caller error: bad parameter
  kIOError = 4,             // device-level failure
  kAlreadyExists = 5,       // create of an existing object
  kNoSpace = 6,             // volume or pool exhausted
  kPermissionDenied = 7,    // key/ACL rejected the operation
  kDataLoss = 8,            // unrecoverable content loss (StegRand overwrite)
  kNotSupported = 9,        // operation not implemented for this store
  kFailedPrecondition = 10, // object in wrong state for the request
};

// Value-semantic status object. The default-constructed Status is OK and
// carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  // Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status NoSpace(std::string_view msg) {
    return Status(StatusCode::kNoSpace, msg);
  }
  static Status PermissionDenied(std::string_view msg) {
    return Status(StatusCode::kPermissionDenied, msg);
  }
  static Status DataLoss(std::string_view msg) {
    return Status(StatusCode::kDataLoss, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }

  // Taxonomy-tagged I/O errors (src/fault/): same kIOError code — every
  // existing IsIOError() check keeps working — plus a subcode telling the
  // retry/degraded-mode machinery how to handle the fault.
  static Status TransientIOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg, IoErrorClass::kTransient);
  }
  static Status PersistentIOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg, IoErrorClass::kPersistent);
  }
  static Status TimeoutIOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg, IoErrorClass::kTimeout);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // The fault-taxonomy tag the producer attached (kNone when untagged).
  // fault::Classify() turns this plus the code into an effective class.
  IoErrorClass io_class() const { return io_class_; }
  // Returns a copy of this status carrying `cls` (for decorators that
  // classify an inner device's untagged errors).
  Status WithIoClass(IoErrorClass cls) const {
    Status s = *this;
    s.io_class_ = cls;
    return s;
  }

  // "OK" or "<Category>: <message>".
  std::string ToString() const;

  // Equality stays code-only: the taxonomy tag refines handling, it does
  // not define a new error category.
  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string_view msg,
         IoErrorClass cls = IoErrorClass::kNone)
      : code_(code), io_class_(cls), message_(msg) {}

  StatusCode code_;
  IoErrorClass io_class_ = IoErrorClass::kNone;
  std::string message_;
};

// Evaluates `expr`; if the resulting Status is not OK, returns it from the
// enclosing function. The enclosing function must return Status.
#define STEGFS_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::stegfs::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                         \
  } while (0)

}  // namespace stegfs

#endif  // STEGFS_UTIL_STATUS_H_
