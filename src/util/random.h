// Deterministic pseudo-random number generation for workloads and tests.
//
// This is NOT the cryptographic PRNG used to place hidden-file headers (see
// crypto/prng.h for that). Xoshiro256** is fast and statistically strong,
// which is what workload generation and Monte-Carlo space experiments need.
#ifndef STEGFS_UTIL_RANDOM_H_
#define STEGFS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stegfs {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro {
 public:
  explicit Xoshiro(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Fills `out` with pseudo-random bytes.
  void FillBytes(uint8_t* out, size_t n) {
    size_t i = 0;
    while (i + 8 <= n) {
      uint64_t v = Next();
      for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
    if (i < n) {
      uint64_t v = Next();
      // Bound b explicitly: the tail is < 8 bytes, and an unbounded loop
      // lets the optimizer assume a shift >= 64 (undefined) is reachable.
      for (int b = 0; b < 8 && i < n; ++b) {
        out[i++] = static_cast<uint8_t>(v >> (8 * b));
      }
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace stegfs

#endif  // STEGFS_UTIL_RANDOM_H_
