// SessionManager: the per-user session layer that lets many users drive one
// mounted StegFs volume from many threads at once.
//
// It owns what used to be StegFs's single connected_ table, split two ways:
//   SessionManager - uid -> Session          (rw-locked registry)
//   Session        - objname -> SessionObject (rw-locked per-uid table)
//   SessionObject  - one connected HiddenObject + its object lock
//
// Locking (levels 1-2 of the volume lock hierarchy, see
// docs/ARCHITECTURE.md "Concurrency model"):
//   - Session::ns_mu serializes one uid's NAMESPACE operations (create,
//     hide/unhide, remove, sharing, connect resolution) — these
//     read-modify-write the uid's hidden directories, so they must not
//     interleave within a uid. Distinct uids' namespace ops run in
//     parallel; they only meet at the allocation/plain locks below.
//   - SessionObject::mu serializes I/O on one connected object; I/O on
//     different objects (same uid or not) runs in parallel.
//
// SessionObjects are handed out as shared_ptr: a disconnect can drop the
// table entry while a reader still holds the object; the reader finishes
// under the object lock and the object dies with its last holder.
#ifndef STEGFS_CONCURRENCY_SESSION_MANAGER_H_
#define STEGFS_CONCURRENCY_SESSION_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hidden_object.h"

namespace stegfs {
namespace concurrency {

// One connected hidden object within a session.
struct SessionObject {
  std::string name;  // objname within the owning uid's namespace
  std::string fak;
  std::unique_ptr<HiddenObject> object;
  std::mutex mu;  // object lock: held for every operation on `object`
  // True once the on-disk object has been destroyed (remove/unhide/
  // revoke). Written under mu BEFORE the blocks are freed; every I/O path
  // re-checks it after locking mu, which closes the window where a thread
  // fetched this shared_ptr from the table, lost the race to a destroyer,
  // and would otherwise write through a stale free pool into freed (and
  // possibly reallocated) blocks.
  bool defunct = false;
};

class Session {
 public:
  explicit Session(std::string uid) : uid_(std::move(uid)) {}

  const std::string& uid() const { return uid_; }
  // Namespace lock; callers hold it across a whole resolve/modify flow.
  std::mutex& ns_mu() { return ns_mu_; }

  bool Contains(const std::string& objname) const;
  // nullptr when not connected.
  std::shared_ptr<SessionObject> Find(const std::string& objname) const;
  // False (and no change) if `objname` is already connected.
  bool Insert(const std::string& objname, const std::string& fak,
              std::unique_ptr<HiddenObject> object);
  // Detaches and returns the entry (nullptr if absent); the caller
  // finalizes it (Sync) under its object lock.
  std::shared_ptr<SessionObject> Remove(const std::string& objname);
  std::vector<std::shared_ptr<SessionObject>> RemoveAll();

  std::vector<std::string> Names() const;
  std::vector<std::shared_ptr<SessionObject>> Snapshot() const;

 private:
  std::string uid_;
  std::mutex ns_mu_;
  mutable std::shared_mutex table_mu_;
  std::map<std::string, std::shared_ptr<SessionObject>> objects_;
};

class SessionManager {
 public:
  SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Sessions are created on first use and live until the volume unmounts
  // (an empty session is a few pointers; uids are not unbounded).
  std::shared_ptr<Session> GetOrCreate(const std::string& uid);
  // nullptr when the uid never connected anything.
  std::shared_ptr<Session> Find(const std::string& uid) const;
  std::vector<std::shared_ptr<Session>> Snapshot() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
};

}  // namespace concurrency
}  // namespace stegfs

#endif  // STEGFS_CONCURRENCY_SESSION_MANAGER_H_
