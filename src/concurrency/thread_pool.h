// ThreadPool: a small fixed-size pool of OS threads draining a FIFO task
// queue. The real-thread benchmark drivers and the concurrency tests use it
// to put K sessions on K actual threads (as opposed to sim/interleaver,
// which replays captured traces without any real parallelism).
//
// Semantics are deliberately minimal:
//   - Submit() enqueues a task; tasks must not throw.
//   - WaitIdle() blocks until the queue is empty AND no task is running.
//   - The destructor drains remaining tasks, then joins every worker.
#ifndef STEGFS_CONCURRENCY_THREAD_POOL_H_
#define STEGFS_CONCURRENCY_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stegfs {
namespace concurrency {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  // Blocks until every submitted task has finished.
  void WaitIdle();

  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks / shutdown
  std::condition_variable idle_cv_;  // WaitIdle waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace concurrency
}  // namespace stegfs

#endif  // STEGFS_CONCURRENCY_THREAD_POOL_H_
