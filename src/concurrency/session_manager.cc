#include "concurrency/session_manager.h"

namespace stegfs {
namespace concurrency {

bool Session::Contains(const std::string& objname) const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  return objects_.count(objname) != 0;
}

std::shared_ptr<SessionObject> Session::Find(
    const std::string& objname) const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  auto it = objects_.find(objname);
  return it == objects_.end() ? nullptr : it->second;
}

bool Session::Insert(const std::string& objname, const std::string& fak,
                     std::unique_ptr<HiddenObject> object) {
  auto so = std::make_shared<SessionObject>();
  so->name = objname;
  so->fak = fak;
  so->object = std::move(object);
  std::lock_guard<std::shared_mutex> lock(table_mu_);
  return objects_.emplace(objname, std::move(so)).second;
}

std::shared_ptr<SessionObject> Session::Remove(const std::string& objname) {
  std::lock_guard<std::shared_mutex> lock(table_mu_);
  auto it = objects_.find(objname);
  if (it == objects_.end()) return nullptr;
  std::shared_ptr<SessionObject> so = std::move(it->second);
  objects_.erase(it);
  return so;
}

std::vector<std::shared_ptr<SessionObject>> Session::RemoveAll() {
  std::lock_guard<std::shared_mutex> lock(table_mu_);
  std::vector<std::shared_ptr<SessionObject>> out;
  out.reserve(objects_.size());
  for (auto& [name, so] : objects_) out.push_back(std::move(so));
  objects_.clear();
  return out;
}

std::vector<std::string> Session::Names() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, so] : objects_) names.push_back(name);
  return names;
}

std::vector<std::shared_ptr<SessionObject>> Session::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  std::vector<std::shared_ptr<SessionObject>> out;
  out.reserve(objects_.size());
  for (const auto& [name, so] : objects_) out.push_back(so);
  return out;
}

std::shared_ptr<Session> SessionManager::GetOrCreate(const std::string& uid) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = sessions_.find(uid);
    if (it != sessions_.end()) return it->second;
  }
  std::lock_guard<std::shared_mutex> lock(mu_);
  auto [it, inserted] = sessions_.emplace(uid, nullptr);
  if (inserted) it->second = std::make_shared<Session>(uid);
  return it->second;
}

std::shared_ptr<Session> SessionManager::Find(const std::string& uid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sessions_.find(uid);
  return it == sessions_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Session>> SessionManager::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::shared_ptr<Session>> out;
  out.reserve(sessions_.size());
  for (const auto& [uid, session] : sessions_) out.push_back(session);
  return out;
}

}  // namespace concurrency
}  // namespace stegfs
