// GroupBarrier: a sync-coalescing rendezvous for write barriers.
//
// Every durability site in the stack ends the same way: drain the async
// engine, flush what's dirty, fdatasync. Under multi-session load those
// syncs stack up back to back — N sessions hitting their commit barriers
// within one device-sync latency each pay for a full sync that the
// previous caller's sync would have covered. GroupBarrier collapses them:
// callers arrive at a *generation*; the first arrival runs the barrier
// function for everyone attached to that generation, later arrivals park
// until it completes and share its Status. A caller that arrives while a
// barrier is already IN FLIGHT attaches to the NEXT generation — its
// writes may have landed after the running sync was issued, so it must
// get a sync that starts after its arrival. That is the whole correctness
// argument: a generation's barrier function begins strictly after every
// member's arrival, so it covers all of their prior completed writes.
//
// The barrier function is supplied at construction (typically: engine
// Drain + cache write-back of unparked dirty blocks + device Sync) and
// runs on an arriving caller's thread — there is no dedicated thread and
// no timer; coalescing happens exactly when concurrency exists and adds
// zero latency when it doesn't.
#ifndef STEGFS_CONCURRENCY_GROUP_BARRIER_H_
#define STEGFS_CONCURRENCY_GROUP_BARRIER_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "util/status.h"

namespace stegfs {
namespace concurrency {

class GroupBarrier {
 public:
  using BarrierFn = std::function<Status()>;

  explicit GroupBarrier(BarrierFn fn) : fn_(std::move(fn)) {}
  GroupBarrier(const GroupBarrier&) = delete;
  GroupBarrier& operator=(const GroupBarrier&) = delete;

  // Runs (or joins) one full write barrier covering every write completed
  // before this call. Blocks until a barrier that STARTED after this
  // call's arrival finishes; returns that barrier's Status.
  Status Arrive();

  // Coalescing observability: `arrivals` counts Arrive() calls, `rounds`
  // counts barrier-function executions. arrivals / rounds is the measured
  // coalescing factor (1.0 when single-threaded).
  uint64_t arrivals() const { return arrivals_.value(); }
  uint64_t rounds() const { return rounds_.value(); }

  void RegisterMetrics(obs::MetricsRegistry* reg) const {
    reg->RegisterCounter("stegfs_barrier_arrivals_total",
                         "Write-barrier arrivals (before coalescing)",
                         &arrivals_);
    reg->RegisterCounter("stegfs_barrier_rounds_total",
                         "Write-barrier rounds actually executed", &rounds_);
  }

 private:
  // One generation of attached waiters. Members hold the shared_ptr, so a
  // generation outlives the barrier's pending_ slot reset.
  struct Gen {
    bool done = false;
    Status status;
  };

  BarrierFn fn_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Gen> pending_;  // accepting generation (lazily created)
  bool running_ = false;          // a barrier round is in flight
  obs::Counter arrivals_;
  obs::Counter rounds_;
};

}  // namespace concurrency
}  // namespace stegfs

#endif  // STEGFS_CONCURRENCY_GROUP_BARRIER_H_
