// StripedSharedMutex: a fixed array of reader-writer locks with a keyed
// stripe mapping — the locking primitive behind every sharded structure in
// the stack (the buffer cache's shards, and any future sharded table).
//
// Striping trades a single contended mutex for `stripe_count` independent
// ones: two operations contend only when their keys hash to the same
// stripe. The mapping mixes the key (splitmix64 finalizer) so that strided
// key patterns — consecutive block numbers, bitmap scans — spread evenly
// instead of beating on one stripe.
//
// Lock-ordering rule for holders of MULTIPLE stripes (flush, drop-all):
// always acquire in ascending stripe index, which ExclusiveAllGuard does.
#ifndef STEGFS_CONCURRENCY_SHARD_LOCK_H_
#define STEGFS_CONCURRENCY_SHARD_LOCK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace stegfs {
namespace concurrency {

class StripedSharedMutex {
 public:
  // `stripe_count` >= 1; clamped to 1 if 0 is passed.
  explicit StripedSharedMutex(size_t stripe_count)
      : count_(stripe_count == 0 ? 1 : stripe_count),
        stripes_(new std::shared_mutex[count_]) {}

  StripedSharedMutex(const StripedSharedMutex&) = delete;
  StripedSharedMutex& operator=(const StripedSharedMutex&) = delete;

  size_t stripe_count() const { return count_; }

  // Stable key -> stripe index mapping (splitmix64 finalizer).
  size_t StripeOf(uint64_t key) const {
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>((z ^ (z >> 31)) % count_);
  }

  std::shared_mutex& ForKey(uint64_t key) { return stripes_[StripeOf(key)]; }
  std::shared_mutex& stripe(size_t i) { return stripes_[i]; }

  // Holds every stripe exclusively, acquired in ascending index order (the
  // multi-stripe ordering rule). Used by whole-structure operations.
  class ExclusiveAllGuard {
   public:
    explicit ExclusiveAllGuard(StripedSharedMutex* striped)
        : striped_(striped) {
      for (size_t i = 0; i < striped_->count_; ++i) {
        striped_->stripes_[i].lock();
      }
    }
    ~ExclusiveAllGuard() {
      for (size_t i = striped_->count_; i > 0; --i) {
        striped_->stripes_[i - 1].unlock();
      }
    }
    ExclusiveAllGuard(const ExclusiveAllGuard&) = delete;
    ExclusiveAllGuard& operator=(const ExclusiveAllGuard&) = delete;

   private:
    StripedSharedMutex* striped_;
  };

 private:
  size_t count_;
  std::unique_ptr<std::shared_mutex[]> stripes_;
};

}  // namespace concurrency
}  // namespace stegfs

#endif  // STEGFS_CONCURRENCY_SHARD_LOCK_H_
