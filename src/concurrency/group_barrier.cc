#include "concurrency/group_barrier.h"

namespace stegfs {
namespace concurrency {

Status GroupBarrier::Arrive() {
  arrivals_.Increment();
  std::unique_lock<std::mutex> lock(mu_);
  if (!pending_) pending_ = std::make_shared<Gen>();
  std::shared_ptr<Gen> my = pending_;
  for (;;) {
    if (my->done) return my->status;
    if (!running_ && pending_ == my) {
      // Claim the round. Resetting pending_ makes arrivals during the
      // sync attach to a FRESH generation — their writes may postdate
      // the sync we are about to issue.
      running_ = true;
      pending_.reset();
      lock.unlock();
      Status s = fn_();
      rounds_.Increment();
      lock.lock();
      running_ = false;
      my->done = true;
      my->status = s;
      cv_.notify_all();
      return s;
    }
    cv_.wait(lock);
  }
}

}  // namespace concurrency
}  // namespace stegfs
