#include "journal/recovery.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"
#include "util/coding.h"

namespace stegfs {
namespace journal {

namespace {

// Reads the whole ring into memory (rings are small — tens of blocks).
Status ReadRing(BlockDevice* device, uint64_t start, uint32_t blocks,
                std::vector<uint8_t>* ring) {
  const uint32_t bs = device->block_size();
  ring->resize(static_cast<size_t>(blocks) * bs);
  std::vector<BlockIoVec> iov(blocks);
  for (uint32_t i = 0; i < blocks; ++i) {
    iov[i] = {start + i, ring->data() + static_cast<size_t>(i) * bs};
  }
  return device->ReadBlocks(iov.data(), iov.size());
}

}  // namespace

StatusOr<std::vector<JournalRecord>> JournalRecovery::Scan(
    BlockDevice* device, const Superblock& sb, uint64_t* torn) {
  return ScanRing(device, sb.journal_start, sb.journal_blocks, torn);
}

StatusOr<std::vector<JournalRecord>> JournalRecovery::ScanRing(
    BlockDevice* device, uint64_t journal_start, uint32_t journal_blocks,
    uint64_t* torn) {
  std::vector<JournalRecord> records;
  if (torn != nullptr) *torn = 0;
  if (journal_blocks == 0) return records;
  const uint32_t bs = device->block_size();
  const uint32_t J = journal_blocks;
  const uint64_t num_blocks = device->num_blocks();
  std::vector<uint8_t> ring;
  STEGFS_RETURN_IF_ERROR(ReadRing(device, journal_start, journal_blocks,
                                  &ring));

  const size_t max_targets = (bs - kDescriptorHeaderBytes) / 8;
  for (uint32_t pos = 0; pos < J; ++pos) {
    const uint8_t* p = ring.data() + static_cast<size_t>(pos) * bs;
    if (DecodeFixed32(p) != kRecordMagic) continue;
    if (DecodeFixed32(p + 4) != kRecordVersion) continue;
    const uint64_t seq = DecodeFixed64(p + 8);
    const uint32_t count = DecodeFixed32(p + 16);
    if (count == 0 || count > max_targets || count + 1 > J) continue;
    JournalRecord rec;
    rec.seq = seq;
    rec.ring_pos = pos;
    bool sane = true;
    rec.entries.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t target = DecodeFixed64(p + kDescriptorHeaderBytes + i * 8);
      // A record never journals the ring itself or out-of-range blocks.
      if (target >= num_blocks ||
          (target >= journal_start &&
           target < journal_start + journal_blocks)) {
        sane = false;
        break;
      }
      rec.entries[i].block = target;
    }
    if (!sane) {
      if (torn != nullptr) ++*torn;
      continue;
    }
    crypto::Sha256 h;
    uint8_t tmp[8];
    EncodeFixed64(tmp, seq);
    h.Update(tmp, 8);
    EncodeFixed32(tmp, count);
    h.Update(tmp, 4);
    for (uint32_t i = 0; i < count; ++i) {
      EncodeFixed64(tmp, rec.entries[i].block);
      h.Update(tmp, 8);
    }
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t* img =
          ring.data() + (static_cast<size_t>((pos + 1 + i) % J)) * bs;
      h.Update(img, bs);
    }
    crypto::Sha256Digest digest = h.Finish();
    if (std::memcmp(digest.data(), p + 24, digest.size()) != 0) {
      if (torn != nullptr) ++*torn;  // torn record: never committed
      continue;
    }
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t* img =
          ring.data() + (static_cast<size_t>((pos + 1 + i) % J)) * bs;
      rec.entries[i].image.assign(img, img + bs);
    }
    records.push_back(std::move(rec));
  }
  std::sort(records.begin(), records.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.seq < b.seq;
            });
  return records;
}

StatusOr<RecoveryReport> JournalRecovery::Run(BlockDevice* device,
                                              const Superblock& sb) {
  RecoveryReport report;
  if (sb.journal_blocks == 0) return report;
  const uint32_t bs = device->block_size();
  report.ring_blocks_scanned = sb.journal_blocks;

  STEGFS_ASSIGN_OR_RETURN(
      std::vector<JournalRecord> records,
      Scan(device, sb, &report.torn_candidates));

  for (const JournalRecord& rec : records) {
    for (const JournalEntry& e : rec.entries) {
      STEGFS_RETURN_IF_ERROR(device->WriteBlock(e.block, e.image.data()));
      ++report.blocks_restored;
    }
    ++report.records_replayed;
  }
  // Barrier between replay and scrub: if a second crash hits during
  // recovery, the scrub must never become durable while the replayed
  // images are not — that would destroy the only copy of a committed
  // transaction.
  if (!records.empty()) {
    STEGFS_RETURN_IF_ERROR(device->Sync());
  }

  // Scrub the whole ring back to its resting noise — identical bytes on
  // every volume with this superblock's dummy seed, which is the
  // deniability contract the test suite enforces bit-for-bit.
  const uint64_t seed = ScrubSeed(sb.dummy_seed.data(), sb.dummy_seed.size());
  std::vector<uint8_t> noise(bs);
  for (uint32_t pos = 0; pos < sb.journal_blocks; ++pos) {
    ScrubNoise(seed, pos, noise.data(), bs);
    STEGFS_RETURN_IF_ERROR(
        device->WriteBlock(sb.journal_start + pos, noise.data()));
    ++report.scrubbed_blocks;
  }
  STEGFS_RETURN_IF_ERROR(device->Sync());
  return report;
}

}  // namespace journal
}  // namespace stegfs
