#include "journal/journal.h"

#include "obs/trace.h"

#include <cassert>
#include <cstring>

#include "crypto/sha256.h"
#include "journal/recovery.h"
#include "util/coding.h"

namespace stegfs {
namespace journal {

uint64_t ScrubSeed(const uint8_t* dummy_seed, size_t len) {
  crypto::Sha256 h;
  h.Update("stegfs-journal-scrub:", 21);
  h.Update(dummy_seed, len);
  crypto::Sha256Digest d = h.Finish();
  uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | d[i];
  return seed;
}

void ScrubNoise(uint64_t seed, uint64_t pos, uint8_t* buf, size_t len) {
  // Position-keyed so scrubbing any subset of the ring, in any order, at
  // any time produces the same resting bytes.
  Xoshiro rng(seed ^ (pos * 0x9e3779b97f4a7c15ULL) ^ 0x6a6f75726e616cULL);
  rng.FillBytes(buf, len);
}

WriteAheadJournal::WriteAheadJournal(BlockDevice* device, BufferCache* cache,
                                     AsyncBlockDevice* engine,
                                     uint64_t journal_start,
                                     uint32_t journal_blocks,
                                     uint64_t scrub_seed)
    : device_(device),
      cache_(cache),
      engine_(engine),
      journal_start_(journal_start),
      journal_blocks_(journal_blocks),
      scrub_seed_(scrub_seed) {
  assert(journal_blocks_ >= 2);
}

size_t WriteAheadJournal::MaxPayloadBlocks() const {
  const size_t by_ring = journal_blocks_ - 1;  // descriptor takes one
  const size_t by_targets =
      (device_->block_size() - kDescriptorHeaderBytes) / 8;
  return by_ring < by_targets ? by_ring : by_targets;
}

Status WriteAheadJournal::Barrier() {
  obs::Span span("journal.barrier", "journal");
  obs::LatencyTimer timer(&barrier_ns_);
  if (engine_ != nullptr) engine_->Drain();
  barrier_syncs_.Increment();
  return device_->Sync();
}

Status WriteAheadJournal::WriteRing(uint64_t pos, const uint8_t* buf) {
  return device_->WriteBlock(journal_start_ + (pos % journal_blocks_), buf);
}

Status WriteAheadJournal::Commit(
    const std::vector<JournalEntry>& entries,
    const std::unordered_set<uint64_t>& hold_back) {
  if (entries.empty()) return Status::OK();
  const uint32_t bs = device_->block_size();
  obs::Span commit_span("journal.commit", "journal");
  obs::LatencyTimer commit_timer(&commit_ns_);
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return Status::FailedPrecondition(
        "journal poisoned by an unscrubbable record; remount to recover");
  }

  if (entries.size() > MaxPayloadBlocks()) {
    // Transaction larger than the ring: waive atomicity (per-block writes
    // stay atomic at the device level) but keep durability ordering —
    // data first, then metadata, each behind a barrier.
    overflow_fallbacks_.Increment();
    if (!hold_back.empty()) {
      cache_->ParkBlocks(
          std::make_shared<const std::unordered_set<uint64_t>>(hold_back));
    }
    Status s = cache_->WriteBackDirty(hold_back.empty() ? nullptr
                                                        : &hold_back);
    if (s.ok()) s = Barrier();
    if (!hold_back.empty()) cache_->ParkBlocks(nullptr);
    STEGFS_RETURN_IF_ERROR(s);
    for (const JournalEntry& e : entries) {
      STEGFS_RETURN_IF_ERROR(cache_->Write(e.block, e.image.data()));
    }
    STEGFS_RETURN_IF_ERROR(cache_->WriteBackDirty());
    return Barrier();
  }

  // 1. Ordered data: everything dirty EXCEPT the metadata images we are
  //    about to journal must be durable before the record can commit —
  //    otherwise a committed operation could reference garbage data.
  //    PARK the held-back blocks too: the hold_back argument only guards
  //    this call, while a concurrent session's flush (a hidden commit
  //    barrier, PlainFs::Flush) would otherwise push the parked images
  //    to their home blocks before the record exists.
  const bool parked = !hold_back.empty();
  if (parked) {
    cache_->ParkBlocks(
        std::make_shared<const std::unordered_set<uint64_t>>(hold_back));
  }
  auto unpark = [&] {
    if (parked) cache_->ParkBlocks(nullptr);
  };
  Status ordered =
      cache_->WriteBackDirty(hold_back.empty() ? nullptr : &hold_back);
  if (ordered.ok()) ordered = Barrier();
  if (!ordered.ok()) {
    unpark();
    return ordered;
  }

  // 2. The record. Checksum over (seq, targets, payload) makes the record
  //    self-authenticating: valid-after-crash iff every byte landed, so
  //    the barrier below is the commit point.
  obs::Span record_span("journal.record", "journal");
  obs::LatencyTimer record_timer(&record_ns_);
  const uint64_t seq = next_seq_++;
  crypto::Sha256 h;
  uint8_t tmp[8];
  EncodeFixed64(tmp, seq);
  h.Update(tmp, 8);
  EncodeFixed32(tmp, static_cast<uint32_t>(entries.size()));
  h.Update(tmp, 4);
  for (const JournalEntry& e : entries) {
    assert(e.image.size() == bs);
    EncodeFixed64(tmp, e.block);
    h.Update(tmp, 8);
  }
  for (const JournalEntry& e : entries) h.Update(e.image.data(), bs);
  crypto::Sha256Digest digest = h.Finish();

  std::vector<uint8_t> descriptor(bs, 0);
  uint8_t* p = descriptor.data();
  EncodeFixed32(p, kRecordMagic);
  EncodeFixed32(p + 4, kRecordVersion);
  EncodeFixed64(p + 8, seq);
  EncodeFixed32(p + 16, static_cast<uint32_t>(entries.size()));
  std::memcpy(p + 24, digest.data(), digest.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EncodeFixed64(p + kDescriptorHeaderBytes + i * 8, entries[i].block);
  }
  // Unused descriptor tail: noise, so a live descriptor's entropy profile
  // stays close to the resting ring (only the structured header differs).
  if (kDescriptorHeaderBytes + entries.size() * 8 < bs) {
    const size_t used = kDescriptorHeaderBytes + entries.size() * 8;
    Xoshiro filler(scrub_seed_ ^ seq);
    filler.FillBytes(descriptor.data() + used, bs - used);
  }

  const uint64_t base = head_;
  const size_t used_blocks = entries.size() + 1;
  std::vector<ConstBlockIoVec> iov;
  iov.reserve(used_blocks);
  iov.push_back(
      {journal_start_ + (base % journal_blocks_), descriptor.data()});
  for (size_t i = 0; i < entries.size(); ++i) {
    iov.push_back({journal_start_ + ((base + 1 + i) % journal_blocks_),
                   entries[i].image.data()});
  }
  // The record leaves through the async engine when one is attached —
  // staged in its registered arena, these become IORING_OP_WRITE_FIXED
  // submissions on io_uring — else through the device directly. Either
  // way the barrier below is what commits.
  Status wrote;
  bool via_engine = false;
  if (engine_ != nullptr) {
    uint8_t* span = engine_->AcquireArenaSpan(used_blocks);
    if (span != nullptr) {
      std::vector<ConstBlockIoVec> fixed_iov(used_blocks);
      for (size_t i = 0; i < used_blocks; ++i) {
        std::memcpy(span + i * bs, iov[i].buf, bs);
        fixed_iov[i] = {iov[i].block, span + i * bs};
      }
      wrote = engine_->SubmitWrite(std::move(fixed_iov)).Wait();
      engine_->ReleaseArenaSpan(span);
      via_engine = true;
    }
  }
  if (!via_engine) {
    wrote = device_->WriteBlocks(iov.data(), iov.size());
  }
  if (wrote.ok()) wrote = Barrier();  // <- commit point
  record_timer.Stop();
  record_span.Close();
  if (!wrote.ok()) {
    // The record may sit half-written (or fully, un-synced) in the ring;
    // leaving it could replay stale images over whatever later
    // transactions do. Scrub it away — or poison the journal.
    ScrubRecordOrPoison(base, used_blocks);
    unpark();
    return wrote;
  }
  records_committed_.Increment();
  blocks_journaled_.Add(entries.size());
  unpark();  // committed: concurrent flushers may now write the images

  // 3. Checkpoint the images to their home locations through the cache
  //    (the held-back blocks are already in the cache with these bytes;
  //    rewriting is idempotent) and make them durable.
  obs::Span checkpoint_span("journal.checkpoint", "journal");
  obs::LatencyTimer checkpoint_timer(&checkpoint_ns_);
  Status checkpoint;
  {
    std::vector<uint64_t> blocks(entries.size());
    std::vector<uint8_t> data(entries.size() * bs);
    for (size_t i = 0; i < entries.size(); ++i) {
      blocks[i] = entries[i].block;
      std::memcpy(data.data() + i * bs, entries[i].image.data(), bs);
    }
    checkpoint =
        cache_->WriteBatch(blocks.data(), blocks.size(), data.data());
  }
  if (checkpoint.ok()) checkpoint = cache_->WriteBackDirty();
  if (checkpoint.ok()) checkpoint = Barrier();
  if (!checkpoint.ok()) {
    // Committed but not checkpointed. The record MUST NOT outlive this
    // transaction's status as the newest state, so scrub it here too; a
    // remount would otherwise need revoke-style tracking to replay it
    // safely after later commits. The images are still in the cache and
    // reach the device through ordinary write-back.
    ScrubRecordOrPoison(base, used_blocks);
    return checkpoint;
  }

  // 4. Scrub: with the checkpoint durable the record is dead weight — and
  //    a deniability liability. Re-noise its blocks (no barrier needed:
  //    the next commit's first barrier orders the scrub before any newer
  //    record exists, and until then the record replays idempotently).
  //    A scrub WRITE failure, though, must poison the journal and
  //    surface: a record we cannot kill would replay stale images over
  //    whatever non-journaled metadata writes (the hidden path's
  //    PersistMeta) land afterwards.
  std::vector<uint8_t> noise(bs);
  for (size_t i = 0; i < used_blocks; ++i) {
    const uint64_t pos = (base + i) % journal_blocks_;
    ScrubNoise(scrub_seed_, pos, noise.data(), bs);
    Status s = WriteRing(pos, noise.data());
    if (!s.ok()) {
      failed_ = true;
      return s;
    }
  }
  scrubbed_blocks_.Add(used_blocks);
  head_ = (base + used_blocks) % journal_blocks_;
  return Status::OK();
}

void WriteAheadJournal::ScrubRecordOrPoison(uint64_t base,
                                            size_t used_blocks) {
  std::vector<uint8_t> noise(device_->block_size());
  for (size_t i = 0; i < used_blocks; ++i) {
    const uint64_t pos = (base + i) % journal_blocks_;
    ScrubNoise(scrub_seed_, pos, noise.data(), noise.size());
    if (!WriteRing(pos, noise.data()).ok()) {
      failed_ = true;
      return;
    }
  }
  if (!device_->Sync().ok()) {
    failed_ = true;
    return;
  }
  scrubbed_blocks_.Add(used_blocks);
}

Status WriteAheadJournal::ScrubStaleRecords(uint64_t* live_records,
                                            uint64_t* scrubbed_blocks) {
  *live_records = 0;
  *scrubbed_blocks = 0;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t torn = 0;
  STEGFS_ASSIGN_OR_RETURN(
      std::vector<JournalRecord> live,
      JournalRecovery::ScanRing(device_, journal_start_, journal_blocks_,
                                &torn));
  *live_records = live.size();
  if (live.empty()) return Status::OK();
  // A live record can only exist mid-session because a commit's own
  // scrub failed and poisoned the journal. In every path that gets
  // there, the record's content is REDUNDANT with the live in-memory
  // state (the checkpoint either completed, or the failure re-marked the
  // metadata dirty so it flows through ordinary write-back — the caller
  // flushes current state durably before invoking this, see
  // PlainFs::Fsck). Replaying here would write STALE images beneath the
  // live cache; scrubbing is the correct and sufficient move.
  std::vector<uint8_t> noise(device_->block_size());
  for (const JournalRecord& rec : live) {
    const size_t used = rec.entries.size() + 1;
    for (size_t i = 0; i < used; ++i) {
      const uint64_t pos = (rec.ring_pos + i) % journal_blocks_;
      ScrubNoise(scrub_seed_, pos, noise.data(), noise.size());
      STEGFS_RETURN_IF_ERROR(WriteRing(pos, noise.data()));
      ++*scrubbed_blocks;
    }
  }
  scrubbed_blocks_.Add(*scrubbed_blocks);
  STEGFS_RETURN_IF_ERROR(device_->Sync());
  // The ring is at rest again; lift the poison so commits can resume.
  failed_ = false;
  return Status::OK();
}

JournalStats WriteAheadJournal::stats() const {
  JournalStats s;
  s.records_committed = records_committed_.value();
  s.blocks_journaled = blocks_journaled_.value();
  s.barrier_syncs = barrier_syncs_.value();
  s.overflow_fallbacks = overflow_fallbacks_.value();
  s.scrubbed_blocks = scrubbed_blocks_.value();
  return s;
}

void WriteAheadJournal::RegisterMetrics(obs::MetricsRegistry* reg) const {
  reg->RegisterCounter("stegfs_journal_records_committed_total",
                       "Committed journal records", &records_committed_);
  reg->RegisterCounter("stegfs_journal_blocks_journaled_total",
                       "Payload blocks written to the ring",
                       &blocks_journaled_);
  reg->RegisterCounter("stegfs_journal_barrier_syncs_total",
                       "Device barriers issued by commits", &barrier_syncs_);
  reg->RegisterCounter("stegfs_journal_overflow_fallbacks_total",
                       "Transactions too large for the ring",
                       &overflow_fallbacks_);
  reg->RegisterCounter("stegfs_journal_scrubbed_blocks_total",
                       "Ring blocks re-noised after checkpoint",
                       &scrubbed_blocks_);
  reg->RegisterHistogram("stegfs_journal_commit_seconds",
                         "Full commit latency (ordered data to scrub)",
                         &commit_ns_);
  reg->RegisterHistogram("stegfs_journal_record_seconds",
                         "Record write latency up to the commit barrier",
                         &record_ns_);
  reg->RegisterHistogram("stegfs_journal_barrier_seconds",
                         "Write barrier (engine drain + device sync) latency",
                         &barrier_ns_);
  reg->RegisterHistogram("stegfs_journal_checkpoint_seconds",
                         "Checkpoint phase latency", &checkpoint_ns_);
}

}  // namespace journal
}  // namespace stegfs
