#include "journal/journal.h"

#include "obs/trace.h"

#include <cassert>
#include <cstring>
#include <map>

#include "crypto/sha256.h"
#include "journal/recovery.h"
#include "util/coding.h"

namespace stegfs {
namespace journal {

// One transaction parked in the stage queue. `entries` / `parked` are
// immutable after Stage; `done` / `result` are written by the resolving
// batch leader and read by the owner, both under stage_mu_.
struct StagedTxn {
  std::vector<JournalEntry> entries;
  std::unordered_set<uint64_t> parked;
  bool done = false;
  Status result;
};

uint64_t ScrubSeed(const uint8_t* dummy_seed, size_t len) {
  crypto::Sha256 h;
  h.Update("stegfs-journal-scrub:", 21);
  h.Update(dummy_seed, len);
  crypto::Sha256Digest d = h.Finish();
  uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | d[i];
  return seed;
}

void ScrubNoise(uint64_t seed, uint64_t pos, uint8_t* buf, size_t len) {
  // Position-keyed so scrubbing any subset of the ring, in any order, at
  // any time produces the same resting bytes.
  Xoshiro rng(seed ^ (pos * 0x9e3779b97f4a7c15ULL) ^ 0x6a6f75726e616cULL);
  rng.FillBytes(buf, len);
}

WriteAheadJournal::WriteAheadJournal(BlockDevice* device, BufferCache* cache,
                                     AsyncBlockDevice* engine,
                                     uint64_t journal_start,
                                     uint32_t journal_blocks,
                                     uint64_t scrub_seed,
                                     concurrency::GroupBarrier* barrier)
    : device_(device),
      cache_(cache),
      engine_(engine),
      barrier_(barrier),
      journal_start_(journal_start),
      journal_blocks_(journal_blocks),
      scrub_seed_(scrub_seed) {
  assert(journal_blocks_ >= 2);
}

size_t WriteAheadJournal::MaxPayloadBlocks() const {
  const size_t by_ring = journal_blocks_ - 1;  // descriptor takes one
  const size_t by_targets =
      (device_->block_size() - kDescriptorHeaderBytes) / 8;
  return by_ring < by_targets ? by_ring : by_targets;
}

Status WriteAheadJournal::Barrier() {
  obs::Span span("journal.barrier", "journal");
  obs::LatencyTimer timer(&barrier_ns_);
  barrier_syncs_.Increment();
  if (barrier_ != nullptr) return barrier_->Arrive();
  if (engine_ != nullptr) engine_->Drain();
  return device_->Sync();
}

Status WriteAheadJournal::WriteRing(uint64_t pos, const uint8_t* buf) {
  return device_->WriteBlock(journal_start_ + (pos % journal_blocks_), buf);
}

void WriteAheadJournal::AddParked(uint64_t block) {
  std::lock_guard<std::mutex> lock(parked_mu_);
  parked_counts_[block]++;
  RepublishParkedLocked();
}

void WriteAheadJournal::ReleaseParked(
    const std::unordered_set<uint64_t>& blocks) {
  if (blocks.empty()) return;
  std::lock_guard<std::mutex> lock(parked_mu_);
  for (uint64_t b : blocks) {
    auto it = parked_counts_.find(b);
    if (it == parked_counts_.end()) continue;
    if (--it->second == 0) parked_counts_.erase(it);
  }
  RepublishParkedLocked();
}

void WriteAheadJournal::RepublishParkedLocked() {
  if (parked_counts_.empty()) {
    cache_->ParkBlocks(nullptr);
    return;
  }
  auto snap = std::make_shared<std::unordered_set<uint64_t>>();
  snap->reserve(parked_counts_.size());
  for (const auto& kv : parked_counts_) snap->insert(kv.first);
  cache_->ParkBlocks(std::move(snap));
}

WriteAheadJournal::CommitTicket WriteAheadJournal::Stage(
    std::vector<JournalEntry> entries, std::unordered_set<uint64_t> parked) {
  if (entries.empty()) {
    // Nothing to commit; hand back the park refcounts we were given.
    ReleaseParked(parked);
    return CommitTicket();
  }
  auto txn = std::make_shared<StagedTxn>();
  txn->entries = std::move(entries);
  txn->parked = std::move(parked);
  {
    std::lock_guard<std::mutex> lock(stage_mu_);
    queue_.push_back(txn);
  }
  // Wake a lingering solo leader so it picks us up in its batch.
  stage_cv_.notify_all();
  CommitTicket ticket;
  ticket.journal_ = this;
  ticket.txn_ = txn;
  return ticket;
}

Status WriteAheadJournal::CommitTicket::Wait() {
  if (journal_ == nullptr) return Status::OK();
  WriteAheadJournal* j = journal_;
  std::shared_ptr<StagedTxn> txn = std::move(txn_);
  journal_ = nullptr;
  return j->Await(txn);
}

Status WriteAheadJournal::Commit(
    const std::vector<JournalEntry>& entries,
    const std::unordered_set<uint64_t>& hold_back) {
  if (entries.empty()) return Status::OK();
  for (uint64_t b : hold_back) AddParked(b);
  CommitTicket ticket = Stage(entries, hold_back);
  return ticket.Wait();
}

Status WriteAheadJournal::Await(const std::shared_ptr<StagedTxn>& txn) {
  obs::Span commit_span("journal.commit", "journal");
  obs::LatencyTimer commit_timer(&commit_ns_);
  std::unique_lock<std::mutex> lock(stage_mu_);
  bool lingered = (group_window_.count() == 0);
  for (;;) {
    if (txn->done) return txn->result;
    if (!executing_) {
      if (!lingered && queue_.size() == 1 && queue_.front() == txn) {
        // Alone at an idle journal: linger once for followers. Under real
        // concurrency followers pile up while a batch runs, so this only
        // matters at the front of a burst.
        lingered = true;
        stage_cv_.wait_for(lock, group_window_);
        continue;
      }
      executing_ = true;
      std::vector<std::shared_ptr<StagedTxn>> batch = PopBatchLocked();
      lock.unlock();
      Status s = RunBatch(batch);
      lock.lock();
      executing_ = false;
      for (const std::shared_ptr<StagedTxn>& member : batch) {
        member->done = true;
        member->result = s;
      }
      stage_cv_.notify_all();
      // Our transaction need not have been in the batch we just led (it
      // can sit behind an oversized one); loop until it resolves.
      continue;
    }
    stage_cv_.wait(lock);
  }
}

std::vector<std::shared_ptr<StagedTxn>> WriteAheadJournal::PopBatchLocked() {
  std::vector<std::shared_ptr<StagedTxn>> batch;
  const size_t cap = MaxPayloadBlocks();
  std::unordered_set<uint64_t> blocks;
  while (!queue_.empty()) {
    const std::shared_ptr<StagedTxn>& head = queue_.front();
    if (head->entries.size() > cap) {
      // Oversized transactions take the overflow path and run alone.
      if (batch.empty()) {
        batch.push_back(head);
        queue_.pop_front();
      }
      break;
    }
    // Admit while the batch's DISTINCT blocks still fit one record.
    // Transactions share bitmap / inode-table / directory blocks heavily,
    // so the merged count grows far slower than the transaction count.
    size_t added = 0;
    for (const JournalEntry& e : head->entries) {
      if (blocks.count(e.block) == 0) ++added;
    }
    if (!batch.empty() && blocks.size() + added > cap) break;
    for (const JournalEntry& e : head->entries) blocks.insert(e.block);
    batch.push_back(head);
    queue_.pop_front();
  }
  return batch;
}

Status WriteAheadJournal::RunOverflow(const StagedTxn& txn) {
  // Transaction larger than the ring: waive atomicity (per-block writes
  // stay atomic at the device level) but keep durability ordering — data
  // first, then metadata, each behind a barrier. CheckpointBlock keeps
  // each home write atomic against concurrent flushers.
  overflow_fallbacks_.Increment();
  std::unordered_set<uint64_t> hold_back;
  hold_back.reserve(txn.entries.size());
  for (const JournalEntry& e : txn.entries) hold_back.insert(e.block);
  Status s = cache_->WriteBackDirty(&hold_back);
  if (s.ok()) s = Barrier();
  STEGFS_RETURN_IF_ERROR(s);
  std::map<uint64_t, const std::vector<uint8_t>*> merged;
  for (const JournalEntry& e : txn.entries) merged[e.block] = &e.image;
  for (const auto& kv : merged) {
    STEGFS_RETURN_IF_ERROR(cache_->CheckpointBlock(kv.first, kv.second->data()));
  }
  return Barrier();
}

Status WriteAheadJournal::RunBatch(
    const std::vector<std::shared_ptr<StagedTxn>>& batch) {
  const uint32_t bs = device_->block_size();
  bool parks_released = false;
  auto release_parks = [&] {
    if (parks_released) return;
    parks_released = true;
    for (const std::shared_ptr<StagedTxn>& t : batch) {
      ReleaseParked(t->parked);
    }
  };

  if (failed_) {
    release_parks();
    return Status::FailedPrecondition(
        "journal poisoned by an unscrubbable record; remount to recover");
  }

  group_batches_.Increment();
  group_txns_.Add(batch.size());

  // Merge the batch into one record image set: the NEWEST image per block
  // wins. Stage order is capture order (transactions capture under the FS
  // metadata lock), and every capture snapshots monotone in-memory state,
  // so a later image of a shared block already contains every earlier
  // transaction's effect on it.
  std::map<uint64_t, const std::vector<uint8_t>*> merged;
  size_t images = 0;
  for (const std::shared_ptr<StagedTxn>& t : batch) {
    for (const JournalEntry& e : t->entries) {
      assert(e.image.size() == bs);
      ++images;
      merged[e.block] = &e.image;
    }
  }
  group_merged_blocks_.Add(images - merged.size());

  if (merged.size() > MaxPayloadBlocks()) {
    assert(batch.size() == 1);
    Status s = RunOverflow(*batch.front());
    release_parks();
    return s;
  }

  // 1. Ordered data: everything dirty EXCEPT the batch's metadata images
  //    must be durable before the record can commit — otherwise a
  //    committed operation could reference garbage data. The members'
  //    dir/pointer/inode images are additionally PARKED (since stage), so
  //    no concurrent flusher can push them home before the record exists;
  //    the hold_back list covers the rest (bitmap images) for this flush.
  std::unordered_set<uint64_t> hold_back;
  hold_back.reserve(merged.size());
  for (const auto& kv : merged) hold_back.insert(kv.first);
  Status ordered = cache_->WriteBackDirty(&hold_back);
  if (ordered.ok()) ordered = Barrier();
  if (!ordered.ok()) {
    release_parks();
    return ordered;
  }

  // 2. The record. Checksum over (seq, targets, payload) makes the record
  //    self-authenticating: valid-after-crash iff every byte landed, so
  //    the barrier below is the commit point — for the WHOLE batch at
  //    once, which is the atomicity argument for merging instead of
  //    writing one record per transaction.
  obs::Span record_span("journal.record", "journal");
  obs::LatencyTimer record_timer(&record_ns_);
  const uint64_t seq = next_seq_++;
  crypto::Sha256 h;
  uint8_t tmp[8];
  EncodeFixed64(tmp, seq);
  h.Update(tmp, 8);
  EncodeFixed32(tmp, static_cast<uint32_t>(merged.size()));
  h.Update(tmp, 4);
  for (const auto& kv : merged) {
    EncodeFixed64(tmp, kv.first);
    h.Update(tmp, 8);
  }
  for (const auto& kv : merged) h.Update(kv.second->data(), bs);
  crypto::Sha256Digest digest = h.Finish();

  std::vector<uint8_t> descriptor(bs, 0);
  uint8_t* p = descriptor.data();
  EncodeFixed32(p, kRecordMagic);
  EncodeFixed32(p + 4, kRecordVersion);
  EncodeFixed64(p + 8, seq);
  EncodeFixed32(p + 16, static_cast<uint32_t>(merged.size()));
  std::memcpy(p + 24, digest.data(), digest.size());
  {
    size_t i = 0;
    for (const auto& kv : merged) {
      EncodeFixed64(p + kDescriptorHeaderBytes + i * 8, kv.first);
      ++i;
    }
  }
  // Unused descriptor tail: noise, so a live descriptor's entropy profile
  // stays close to the resting ring (only the structured header differs).
  if (kDescriptorHeaderBytes + merged.size() * 8 < bs) {
    const size_t used = kDescriptorHeaderBytes + merged.size() * 8;
    Xoshiro filler(scrub_seed_ ^ seq);
    filler.FillBytes(descriptor.data() + used, bs - used);
  }

  const uint64_t base = head_;
  const size_t used_blocks = merged.size() + 1;
  std::vector<ConstBlockIoVec> iov;
  iov.reserve(used_blocks);
  iov.push_back(
      {journal_start_ + (base % journal_blocks_), descriptor.data()});
  {
    size_t i = 0;
    for (const auto& kv : merged) {
      iov.push_back({journal_start_ + ((base + 1 + i) % journal_blocks_),
                     kv.second->data()});
      ++i;
    }
  }
  // The record leaves through the async engine when one is attached —
  // staged in its registered arena, these become IORING_OP_WRITE_FIXED
  // submissions on io_uring — else through the device directly. Either
  // way the barrier below is what commits.
  Status wrote;
  bool via_engine = false;
  if (engine_ != nullptr) {
    uint8_t* span = engine_->AcquireArenaSpan(used_blocks);
    if (span != nullptr) {
      std::vector<ConstBlockIoVec> fixed_iov(used_blocks);
      for (size_t i = 0; i < used_blocks; ++i) {
        std::memcpy(span + i * bs, iov[i].buf, bs);
        fixed_iov[i] = {iov[i].block, span + i * bs};
      }
      wrote = engine_->SubmitWrite(std::move(fixed_iov)).Wait();
      engine_->ReleaseArenaSpan(span);
      via_engine = true;
    }
  }
  if (!via_engine) {
    wrote = device_->WriteBlocks(iov.data(), iov.size());
  }
  if (wrote.ok()) wrote = Barrier();  // <- commit point
  record_timer.Stop();
  record_span.Close();
  if (!wrote.ok()) {
    // The record may sit half-written (or fully, un-synced) in the ring;
    // leaving it could replay stale images over whatever later
    // transactions do. Scrub it away — or poison the journal.
    ScrubRecordOrPoison(base, used_blocks);
    release_parks();
    return wrote;
  }
  records_committed_.Increment();
  blocks_journaled_.Add(merged.size());
  // Committed: concurrent flushers may now write the images home.
  release_parks();

  // 3. Checkpoint the images to their home locations and make them
  //    durable. CheckpointBlock writes under the block's cache-shard lock
  //    and can never regress a strictly newer cached image, so it is safe
  //    against whatever concurrent sessions stage next.
  obs::Span checkpoint_span("journal.checkpoint", "journal");
  obs::LatencyTimer checkpoint_timer(&checkpoint_ns_);
  Status checkpoint;
  for (const auto& kv : merged) {
    checkpoint = cache_->CheckpointBlock(kv.first, kv.second->data());
    if (!checkpoint.ok()) break;
  }
  if (checkpoint.ok()) checkpoint = Barrier();
  if (!checkpoint.ok()) {
    // Committed but not checkpointed. The record MUST NOT outlive this
    // batch's status as the newest state, so scrub it here too; a remount
    // would otherwise need revoke-style tracking to replay it safely
    // after later commits. The images are re-marked dirty by the members'
    // failure handling (PlainFs::FinishCommit) and reach the device
    // through ordinary write-back.
    ScrubRecordOrPoison(base, used_blocks);
    return checkpoint;
  }

  // 4. Scrub: with the checkpoint durable the record is dead weight — and
  //    a deniability liability. Re-noise its blocks (no barrier needed:
  //    the next batch's first barrier orders the scrub before any newer
  //    record exists, and until then the record replays idempotently).
  //    A scrub WRITE failure, though, must poison the journal and
  //    surface: a record we cannot kill would replay stale images over
  //    whatever non-journaled metadata writes (the hidden path's
  //    PersistMeta) land afterwards.
  std::vector<uint8_t> noise(bs);
  for (size_t i = 0; i < used_blocks; ++i) {
    const uint64_t pos = (base + i) % journal_blocks_;
    ScrubNoise(scrub_seed_, pos, noise.data(), bs);
    Status s = WriteRing(pos, noise.data());
    if (!s.ok()) {
      failed_ = true;
      return s;
    }
  }
  scrubbed_blocks_.Add(used_blocks);
  head_ = (base + used_blocks) % journal_blocks_;
  return Status::OK();
}

void WriteAheadJournal::ScrubRecordOrPoison(uint64_t base,
                                            size_t used_blocks) {
  std::vector<uint8_t> noise(device_->block_size());
  for (size_t i = 0; i < used_blocks; ++i) {
    const uint64_t pos = (base + i) % journal_blocks_;
    ScrubNoise(scrub_seed_, pos, noise.data(), noise.size());
    if (!WriteRing(pos, noise.data()).ok()) {
      failed_ = true;
      return;
    }
  }
  if (!device_->Sync().ok()) {
    failed_ = true;
    return;
  }
  scrubbed_blocks_.Add(used_blocks);
}

Status WriteAheadJournal::ScrubStaleRecords(uint64_t* live_records,
                                            uint64_t* scrubbed_blocks) {
  *live_records = 0;
  *scrubbed_blocks = 0;
  // Take the executing claim: no batch is mid-record while we scan, and
  // none can start until we release. Queued transactions simply commit
  // after us — their records are not in the ring yet.
  {
    std::unique_lock<std::mutex> lock(stage_mu_);
    stage_cv_.wait(lock, [&] { return !executing_; });
    executing_ = true;
  }
  Status result = [&]() -> Status {
    uint64_t torn = 0;
    STEGFS_ASSIGN_OR_RETURN(
        std::vector<JournalRecord> live,
        JournalRecovery::ScanRing(device_, journal_start_, journal_blocks_,
                                  &torn));
    *live_records = live.size();
    if (live.empty()) return Status::OK();
    // A live record can only exist mid-session because a commit's own
    // scrub failed and poisoned the journal. In every path that gets
    // there, the record's content is REDUNDANT with the live in-memory
    // state (the checkpoint either completed, or the failure re-marked
    // the metadata dirty so it flows through ordinary write-back — the
    // caller flushes current state durably before invoking this, see
    // PlainFs::Fsck). Replaying here would write STALE images beneath the
    // live cache; scrubbing is the correct and sufficient move.
    std::vector<uint8_t> noise(device_->block_size());
    for (const JournalRecord& rec : live) {
      const size_t used = rec.entries.size() + 1;
      for (size_t i = 0; i < used; ++i) {
        const uint64_t pos = (rec.ring_pos + i) % journal_blocks_;
        ScrubNoise(scrub_seed_, pos, noise.data(), noise.size());
        STEGFS_RETURN_IF_ERROR(WriteRing(pos, noise.data()));
        ++*scrubbed_blocks;
      }
    }
    scrubbed_blocks_.Add(*scrubbed_blocks);
    STEGFS_RETURN_IF_ERROR(device_->Sync());
    // The ring is at rest again; lift the poison so commits can resume.
    failed_ = false;
    return Status::OK();
  }();
  {
    std::lock_guard<std::mutex> lock(stage_mu_);
    executing_ = false;
  }
  stage_cv_.notify_all();
  return result;
}

JournalStats WriteAheadJournal::stats() const {
  JournalStats s;
  s.records_committed = records_committed_.value();
  s.blocks_journaled = blocks_journaled_.value();
  s.barrier_syncs = barrier_syncs_.value();
  s.overflow_fallbacks = overflow_fallbacks_.value();
  s.scrubbed_blocks = scrubbed_blocks_.value();
  s.group_txns = group_txns_.value();
  s.group_batches = group_batches_.value();
  s.group_merged_blocks = group_merged_blocks_.value();
  return s;
}

void WriteAheadJournal::RegisterMetrics(obs::MetricsRegistry* reg) const {
  reg->RegisterCounter("stegfs_journal_records_committed_total",
                       "Committed journal records", &records_committed_);
  reg->RegisterCounter("stegfs_journal_blocks_journaled_total",
                       "Payload blocks written to the ring",
                       &blocks_journaled_);
  reg->RegisterCounter("stegfs_journal_barrier_syncs_total",
                       "Device barriers issued by commits", &barrier_syncs_);
  reg->RegisterCounter("stegfs_journal_overflow_fallbacks_total",
                       "Transactions too large for the ring",
                       &overflow_fallbacks_);
  reg->RegisterCounter("stegfs_journal_scrubbed_blocks_total",
                       "Ring blocks re-noised after checkpoint",
                       &scrubbed_blocks_);
  reg->RegisterCounter("stegfs_journal_group_txns_total",
                       "Transactions committed through group-commit batches",
                       &group_txns_);
  reg->RegisterCounter("stegfs_journal_group_batches_total",
                       "Group-commit batch rounds executed", &group_batches_);
  reg->RegisterCounter(
      "stegfs_journal_group_merged_blocks_total",
      "Duplicate after-images merged away across batches",
      &group_merged_blocks_);
  reg->RegisterHistogram("stegfs_journal_commit_seconds",
                         "Full commit latency (stage to batch resolution)",
                         &commit_ns_);
  reg->RegisterHistogram("stegfs_journal_record_seconds",
                         "Record write latency up to the commit barrier",
                         &record_ns_);
  reg->RegisterHistogram("stegfs_journal_barrier_seconds",
                         "Write barrier (engine drain + device sync) latency",
                         &barrier_ns_);
  reg->RegisterHistogram("stegfs_journal_checkpoint_seconds",
                         "Checkpoint phase latency", &checkpoint_ns_);
}

}  // namespace journal
}  // namespace stegfs
