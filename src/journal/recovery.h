// JournalRecovery: mount-time replay + scrub of the write-ahead journal,
// and the report types behind steg_fsck()'s online scrubber.
//
// Recovery runs on the RAW device, before the mount builds its cache or
// loads the bitmap: it scans the journal ring for self-authenticating
// records (see journal.h), replays every committed one onto its home
// blocks in sequence order, and then scrubs the entire ring back to keyed
// noise. Because the journal scrubs each record right after its
// checkpoint, at most the newest record is ever live — replaying it is
// always safe (nothing newer can have reallocated its blocks) and
// idempotent (physical after-images).
//
// Deniability: after recovery the ring holds only ScrubNoise(), a pure
// function of the superblock's public dummy seed and the ring position —
// the same bytes whether the volume carried hidden levels or not. The
// deniability suite compares recovered images bit-for-bit.
#ifndef STEGFS_JOURNAL_RECOVERY_H_
#define STEGFS_JOURNAL_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "blockdev/block_device.h"
#include "fs/layout.h"
#include "journal/journal.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {
namespace journal {

struct RecoveryReport {
  uint64_t ring_blocks_scanned = 0;
  uint64_t records_replayed = 0;
  uint64_t blocks_restored = 0;   // after-images written home
  uint64_t torn_candidates = 0;   // magic matched, checksum failed
  uint64_t scrubbed_blocks = 0;   // ring blocks re-noised
};

// Volume health summary produced by PlainFs::Fsck / steg_fsck().
struct FsckReport {
  // Blocks reachable from the central directory (plain metadata + plain
  // file data + indirect blocks + the journal region).
  uint64_t referenced_blocks = 0;
  // Allocated blocks no plain structure accounts for. By design this
  // lumps together abandoned blocks, dummy files, hidden objects and any
  // crash-leaked allocations — telling them apart is exactly what the
  // attacker must not be able to do, so fsck reports the count and
  // reclaims nothing.
  uint64_t unaccounted_blocks = 0;
  // Blocks a plain structure references that the bitmap said were free —
  // the dangerous direction (a later allocation would overwrite live
  // data). Fsck re-marks them.
  uint64_t repaired_refs = 0;
  // Journal records still live in the ring (0 after a healthy mount —
  // recovery replays and scrubs them; nonzero means the scrubber fixed a
  // ring that recovery never saw).
  uint64_t journal_live_records = 0;
  uint64_t journal_scrubbed_blocks = 0;
  // Hidden-side scrub (StegFs::Fsck only — fsck can audit exactly the
  // objects whose keys the running sessions hold; everything else stays
  // indistinguishable noise). Degraded stripes are healed by
  // re-dispersing lost shares onto fresh blocks; a stripe with more
  // losses than the policy tolerates counts as unrecoverable and is left
  // in place.
  uint64_t hidden_objects_scanned = 0;
  uint64_t hidden_stripes_checked = 0;
  uint64_t hidden_degraded_stripes = 0;
  uint64_t hidden_healed_shares = 0;
  uint64_t hidden_unrecoverable_stripes = 0;
  bool clean = true;  // no repairs were needed
};

class JournalRecovery {
 public:
  // Scans the ring described by `sb` (no-op when the volume has no
  // journal region), replays committed records in seq order directly to
  // the device, scrubs the whole ring, and syncs.
  static StatusOr<RecoveryReport> Run(BlockDevice* device,
                                      const Superblock& sb);

  // Scan only (fsck, tests): decodes every committed record currently in
  // the ring without modifying anything. `torn` (optional) counts
  // descriptor candidates whose checksum failed.
  static StatusOr<std::vector<JournalRecord>> Scan(BlockDevice* device,
                                                   const Superblock& sb,
                                                   uint64_t* torn = nullptr);
  // Same, addressed by raw ring geometry (the journal's fsck hook).
  static StatusOr<std::vector<JournalRecord>> ScanRing(BlockDevice* device,
                                                       uint64_t start,
                                                       uint32_t blocks,
                                                       uint64_t* torn);
};

}  // namespace journal
}  // namespace stegfs

#endif  // STEGFS_JOURNAL_RECOVERY_H_
