// WriteAheadJournal: the crash-consistency engine for plain-FS metadata.
//
// StegFS keeps hidden files alive through bookkeeping alone (bitmap
// claims, unlisted random-placed blocks); a crash that tears a multi-step
// metadata update can silently destroy both plain and hidden data. The
// journal makes every plain metadata mutation atomic with physical redo
// logging. Since PR 9 commits are GROUP-COMMITTED: concurrent sessions
// stage their transactions into a shared queue, and the first waiter to
// find the journal idle becomes the batch leader — it drains the queue
// (bounded by the ring), merges the transactions' after-images into ONE
// record, and runs the ordered protocol once for everyone:
//
//   1. ORDERED DATA  - file data (everything except the batch's held-back
//                      metadata images) is flushed and a write barrier
//                      (engine Drain + device Sync) makes it durable, so
//                      a committed record never references garbage data.
//   2. RECORD        - the merged after-images of every metadata block
//                      the batch touched (bitmap blocks, inode-table
//                      blocks, directory data blocks, indirect pointer
//                      blocks; a block multiple transactions touched
//                      contributes only its NEWEST image — later images
//                      contain the earlier transactions' effects, because
//                      every metadata writer snapshots monotone in-memory
//                      state under the FS lock) are written into the
//                      journal ring as ONE self-authenticating record
//                      (descriptor + payload, SHA-256 over the whole
//                      thing), then a barrier. A record is committed iff
//                      it checksums — a torn record is indistinguishable
//                      from noise and simply never replays, so the WHOLE
//                      BATCH commits atomically (no cross-record torn
//                      subsets, which is why the batch is one record and
//                      not one record per transaction) and the barrier is
//                      the commit point with no separate commit block.
//   3. CHECKPOINT    - each image is written to its home location with
//                      BufferCache::CheckpointBlock — atomic against
//                      concurrent flushers under the block's shard lock,
//                      and unable to regress a strictly newer cached
//                      image — then a barrier.
//   4. SCRUB         - the record's journal blocks are overwritten with
//                      keyed noise. This bounds replay (at most the
//                      newest record is ever live, so redo can never
//                      clobber a since-reallocated block — the jbd2
//                      "revoke" problem solved by construction) AND is
//                      the deniability argument: the journal region at
//                      rest is pure noise, bit-indistinguishable whether
//                      or not hidden levels exist. Hidden-level commit
//                      state NEVER enters this region — it rides the
//                      dual-header protocol in core/hidden_object.h,
//                      encrypted under the level key and chained from the
//                      object's header, so an unopened level's journal
//                      entries look like any other random block.
//
// The payoff: N concurrent transactions pay ~3 barriers TOTAL instead of
// 3 each — fdatasync, the dominant durable-write cost, is amortized
// across the batch. A single-threaded mount stages and immediately leads
// a one-transaction batch, which runs byte-for-byte the PR 5 protocol.
//
// Parked blocks: a staged transaction's uncommitted metadata images
// (directory data, indirect pointer and inode-table blocks) sit dirty in
// the cache until its batch commits; the park refcounts here keep every
// write-back path (including other batches' ordered flushes and the
// hidden commit barrier) off them for exactly that window. Bitmap blocks
// are deliberately NOT parked: flushing an uncommitted allocation early
// is harmless (a crash turns it into an abandoned block, absorbed by the
// paper's own abandoned-block concept), frees are deferred until AFTER
// the commit resolves (PlainFs::FinishCommit), and the hidden commit
// protocol ("bitmap durable before the anchor references it") must be
// able to flush bitmap bytes at any moment.
//
// Lock hierarchy: the stage lock sits BELOW the PlainFs metadata lock
// (Stage is called under it) and is never held across I/O; the executing
// flag is the commit serialization point, claimed by batch leaders and
// the fsck scrubber. The leader runs WITHOUT the PlainFs metadata lock —
// waiters park on the stage lock only, so fsck (which holds the metadata
// lock) can always wait out a running batch without deadlock.
#ifndef STEGFS_JOURNAL_JOURNAL_H_
#define STEGFS_JOURNAL_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blockdev/async_block_device.h"
#include "blockdev/block_device.h"
#include "cache/buffer_cache.h"
#include "concurrency/group_barrier.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {
namespace journal {

// Descriptor-block magic. Present only while a record is live (between
// write and post-checkpoint scrub); at rest the region holds noise.
inline constexpr uint32_t kRecordMagic = 0x534a524e;  // "SJRN"
inline constexpr uint32_t kRecordVersion = 1;
// Descriptor layout: magic(4) version(4) seq(8) count(4) pad(4) sha(32),
// then count u64 target block numbers.
inline constexpr size_t kDescriptorHeaderBytes = 56;

// One metadata block after-image.
struct JournalEntry {
  uint64_t block = 0;
  std::vector<uint8_t> image;
};

// A decoded committed record (recovery's unit of replay).
struct JournalRecord {
  uint64_t seq = 0;
  uint64_t ring_pos = 0;  // descriptor offset within the ring
  std::vector<JournalEntry> entries;
};

struct JournalStats {
  uint64_t records_committed = 0;
  uint64_t blocks_journaled = 0;   // payload blocks written to the ring
  uint64_t barrier_syncs = 0;      // write barriers issued by commits
  uint64_t overflow_fallbacks = 0; // txns too big for the ring (direct
                                   // checkpoint, atomicity waived)
  uint64_t scrubbed_blocks = 0;    // ring blocks re-noised after checkpoint
  // Group commit: transactions committed through batches, batch rounds
  // executed (txns / batches = measured batching factor), and duplicate
  // after-images merged away across a batch.
  uint64_t group_txns = 0;
  uint64_t group_batches = 0;
  uint64_t group_merged_blocks = 0;
};

// One staged-but-unresolved transaction (defined in journal.cc).
struct StagedTxn;

// Derives the deterministic scrub-noise seed for a volume. Keyed by the
// superblock's dummy seed so two volumes formatted with the same entropy
// scrub to IDENTICAL bytes — the deniability suite compares them
// bit-for-bit.
uint64_t ScrubSeed(const uint8_t* dummy_seed, size_t len);

// Fills `buf` with the ring's scrub noise for ring offset `pos`. The
// noise is a pure function of (seed, pos), so scrubbing is idempotent and
// independent of scrub order.
void ScrubNoise(uint64_t seed, uint64_t pos, uint8_t* buf, size_t len);

class WriteAheadJournal {
 public:
  // `device`, `cache` outlive the journal; `engine` may be null (the
  // sync mount); `barrier` may be null (barriers then run inline:
  // engine Drain + device Sync — the direct-construction test path).
  // `scrub_seed` comes from ScrubSeed over the superblock's dummy seed.
  // Recovery must have already run (the ring is assumed scrubbed; head
  // starts at 0).
  WriteAheadJournal(BlockDevice* device, BufferCache* cache,
                    AsyncBlockDevice* engine, uint64_t journal_start,
                    uint32_t journal_blocks, uint64_t scrub_seed,
                    concurrency::GroupBarrier* barrier = nullptr);

  // Waitable handle for one staged transaction. Wait() participates in
  // the leader/follower protocol: the first waiter to find the journal
  // idle executes the batch at the head of the queue (possibly including
  // other transactions) on its own thread; everyone else sleeps until a
  // leader resolves their transaction. Must be called WITHOUT the PlainFs
  // metadata lock (the leader's barrier work must never wait on it).
  class CommitTicket {
   public:
    CommitTicket() = default;
    bool valid() const { return journal_ != nullptr; }
    Status Wait();

   private:
    friend class WriteAheadJournal;
    WriteAheadJournal* journal_ = nullptr;
    std::shared_ptr<StagedTxn> txn_;
  };

  // Stages one atomic metadata transaction for group commit and returns
  // immediately. The caller must already hold park refcounts (AddParked)
  // on `parked` — the transaction's uncommitted dir/pointer/inode images
  // — and ownership transfers here: the batch releases them when the
  // transaction resolves, success or failure. Call under the lock that
  // serializes metadata capture (PlainFs's): stage order is seq order.
  CommitTicket Stage(std::vector<JournalEntry> entries,
                     std::unordered_set<uint64_t> parked);

  // Commits one transaction synchronously: parks `hold_back`, stages and
  // waits. Equivalent to the PR 5 call-and-wait protocol when
  // single-threaded; concurrent callers batch.
  Status Commit(const std::vector<JournalEntry>& entries,
                const std::unordered_set<uint64_t>& hold_back);

  // Park refcounting over the cache's parked set. A block stays parked —
  // skipped by EVERY write-back path — while any staged transaction holds
  // a count on it; the journal republishes the merged set to the cache on
  // every change. AddParked is the incremental hook PlainFs fires when a
  // transaction first touches a dir/pointer block (record-before-write,
  // so the uncommitted bytes are parked before any flusher can see them).
  void AddParked(uint64_t block);
  void ReleaseParked(const std::unordered_set<uint64_t>& blocks);

  // Capacity of one record's payload given the ring and block size (the
  // descriptor consumes one ring block; its target list must also fit).
  // Also the batch merge bound: a batch's DISTINCT blocks fit one record.
  size_t MaxPayloadBlocks() const;

  // Fsck hook: waits out any running batch, then — with the executing
  // claim held, so no record is in flight — scans the ring for live
  // records and scrubs any found (they can only be left behind by a
  // scrub that failed mid-commit, which poisoned the journal). The caller
  // must have flushed current metadata durably first (the record's
  // content is redundant with live state by then — see PlainFs::Fsck);
  // on success the poison is lifted. Reports how many records were live
  // and how many ring blocks were re-noised.
  Status ScrubStaleRecords(uint64_t* live_records, uint64_t* scrubbed_blocks);

  JournalStats stats() const;
  uint32_t ring_blocks() const { return journal_blocks_; }
  uint64_t ring_start() const { return journal_start_; }

  // How long a solo leader lingers for followers before running its
  // batch. 0 (the default) means "lead immediately" — single-threaded
  // mounts then behave exactly like PR 5; under concurrency followers
  // pile up naturally while a batch runs, so the window is rarely needed.
  void set_group_window(std::chrono::microseconds window) {
    group_window_ = window;
  }

  // Registers the journal's instruments with `reg` under stegfs_journal_*
  // names (the journal keeps ownership; PlainFs calls this at mount).
  void RegisterMetrics(obs::MetricsRegistry* reg) const;

 private:
  friend class CommitTicket;

  // Leader/follower rendezvous; returns txn's resolution.
  Status Await(const std::shared_ptr<StagedTxn>& txn);
  // Pops the next batch: either one oversized transaction alone, or a
  // FIFO run of transactions whose merged distinct blocks fit one record.
  // Requires stage_mu_.
  std::vector<std::shared_ptr<StagedTxn>> PopBatchLocked();
  // Executes one batch end to end (ordered -> record -> checkpoint ->
  // scrub). Runs with the executing claim held and NO locks; the shared
  // Status resolves every member. Releases the batch's park refcounts.
  Status RunBatch(const std::vector<std::shared_ptr<StagedTxn>>& batch);
  // The oversized fallback: per-block-atomic direct checkpoint.
  Status RunOverflow(const StagedTxn& txn);

  // Full write barrier. Coalesced through the volume's GroupBarrier when
  // one is attached (concurrent hidden commits and batches then share
  // device syncs); inline (engine Drain + device Sync) otherwise.
  Status Barrier();
  // Writes one block directly to the device at ring offset pos (mod ring).
  Status WriteRing(uint64_t pos, const uint8_t* buf);
  // Failure path after a record reached the ring: scrub it so it can
  // never replay over state that later transactions move past. If even
  // the scrub fails, poison the journal — every further batch refuses,
  // which keeps the invariant "a live record is always the newest state"
  // that both mount recovery and the fsck scrubber rely on.
  void ScrubRecordOrPoison(uint64_t base, size_t used_blocks);
  // Rebuilds the cache's parked-set snapshot from parked_counts_.
  // Requires parked_mu_.
  void RepublishParkedLocked();

  BlockDevice* device_;
  BufferCache* cache_;
  AsyncBlockDevice* engine_;
  concurrency::GroupBarrier* barrier_;
  uint64_t journal_start_;
  uint32_t journal_blocks_;
  uint64_t scrub_seed_;
  std::chrono::microseconds group_window_{0};

  // Stage state: the queue and the leader handoff. Never held across I/O.
  std::mutex stage_mu_;
  std::condition_variable stage_cv_;
  std::deque<std::shared_ptr<StagedTxn>> queue_;
  bool executing_ = false;  // a batch (or the fsck scrubber) owns the ring

  // Ring state: touched only with the executing claim held.
  uint64_t next_seq_ = 1;
  uint64_t head_ = 0;    // next ring offset to write
  bool failed_ = false;  // poisoned: a record could not be scrubbed

  // Park refcounts (see AddParked); republished to the cache on change.
  mutable std::mutex parked_mu_;
  std::unordered_map<uint64_t, uint32_t> parked_counts_;

  obs::Counter records_committed_;
  obs::Counter blocks_journaled_;
  obs::Counter barrier_syncs_;
  obs::Counter overflow_fallbacks_;
  obs::Counter scrubbed_blocks_;
  obs::Counter group_txns_;
  obs::Counter group_batches_;
  obs::Counter group_merged_blocks_;
  // Commit-phase latency: the full per-transaction commit (stage to
  // resolution), the record write up to its commit-point barrier, each
  // barrier, and the checkpoint phase.
  obs::Histogram commit_ns_;
  obs::Histogram record_ns_;
  obs::Histogram barrier_ns_;
  obs::Histogram checkpoint_ns_;
};

}  // namespace journal
}  // namespace stegfs

#endif  // STEGFS_JOURNAL_JOURNAL_H_
