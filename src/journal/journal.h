// WriteAheadJournal: the crash-consistency engine for plain-FS metadata.
//
// StegFS keeps hidden files alive through bookkeeping alone (bitmap
// claims, unlisted random-placed blocks); a crash that tears a multi-step
// metadata update can silently destroy both plain and hidden data. The
// journal makes every plain metadata mutation atomic with physical redo
// logging:
//
//   1. ORDERED DATA  - file data (everything except the held-back
//                      metadata images) is flushed and a write barrier
//                      (engine Drain + device Sync) makes it durable, so
//                      a committed record never references garbage data.
//   2. RECORD        - the after-images of every metadata block the
//                      operation touched (bitmap blocks, inode-table
//                      blocks, directory data blocks, indirect pointer
//                      blocks) are written into the journal ring as ONE
//                      self-authenticating record (descriptor + payload,
//                      SHA-256 over the whole thing), then a barrier.
//                      A record is committed iff it checksums — a torn
//                      record is indistinguishable from noise and simply
//                      never replays. This makes the barrier the commit
//                      point with no separate commit block.
//   3. CHECKPOINT    - the images are written to their home locations
//                      through the cache, flushed, barrier.
//   4. SCRUB         - the record's journal blocks are overwritten with
//                      keyed noise. This bounds replay (at most the
//                      newest record is ever live, so redo can never
//                      clobber a since-reallocated block — the jbd2
//                      "revoke" problem solved by construction) AND is
//                      the deniability argument: the journal region at
//                      rest is pure noise, bit-indistinguishable whether
//                      or not hidden levels exist. Hidden-level commit
//                      state NEVER enters this region — it rides the
//                      dual-header protocol in core/hidden_object.h,
//                      encrypted under the level key and chained from the
//                      object's header, so an unopened level's journal
//                      entries look like any other random block.
//
// Lock hierarchy: the journal mutex sits BELOW the PlainFs metadata lock
// and the per-object/alloc locks, and ABOVE the bitmap rw-lock and the
// cache shard stripes (commit flushes the cache while holding it). It is
// the volume's commit serialization point.
#ifndef STEGFS_JOURNAL_JOURNAL_H_
#define STEGFS_JOURNAL_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "blockdev/async_block_device.h"
#include "blockdev/block_device.h"
#include "cache/buffer_cache.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {
namespace journal {

// Descriptor-block magic. Present only while a record is live (between
// write and post-checkpoint scrub); at rest the region holds noise.
inline constexpr uint32_t kRecordMagic = 0x534a524e;  // "SJRN"
inline constexpr uint32_t kRecordVersion = 1;
// Descriptor layout: magic(4) version(4) seq(8) count(4) pad(4) sha(32),
// then count u64 target block numbers.
inline constexpr size_t kDescriptorHeaderBytes = 56;

// One metadata block after-image.
struct JournalEntry {
  uint64_t block = 0;
  std::vector<uint8_t> image;
};

// A decoded committed record (recovery's unit of replay).
struct JournalRecord {
  uint64_t seq = 0;
  uint64_t ring_pos = 0;  // descriptor offset within the ring
  std::vector<JournalEntry> entries;
};

struct JournalStats {
  uint64_t records_committed = 0;
  uint64_t blocks_journaled = 0;   // payload blocks written to the ring
  uint64_t barrier_syncs = 0;      // device Sync calls issued by commits
  uint64_t overflow_fallbacks = 0; // txns too big for the ring (direct
                                   // checkpoint, atomicity waived)
  uint64_t scrubbed_blocks = 0;    // ring blocks re-noised after checkpoint
};

// Derives the deterministic scrub-noise seed for a volume. Keyed by the
// superblock's dummy seed so two volumes formatted with the same entropy
// scrub to IDENTICAL bytes — the deniability suite compares them
// bit-for-bit.
uint64_t ScrubSeed(const uint8_t* dummy_seed, size_t len);

// Fills `buf` with the ring's scrub noise for ring offset `pos`. The
// noise is a pure function of (seed, pos), so scrubbing is idempotent and
// independent of scrub order.
void ScrubNoise(uint64_t seed, uint64_t pos, uint8_t* buf, size_t len);

class WriteAheadJournal {
 public:
  // `device`, `cache` outlive the journal; `engine` may be null (the
  // sync mount). `scrub_seed` comes from ScrubSeed over the superblock's
  // dummy seed. Recovery must have already run (the ring is assumed
  // scrubbed; head starts at 0).
  WriteAheadJournal(BlockDevice* device, BufferCache* cache,
                    AsyncBlockDevice* engine, uint64_t journal_start,
                    uint32_t journal_blocks, uint64_t scrub_seed);

  // Commits one atomic metadata transaction and checkpoints it:
  // ordered-data flush (everything dirty except `hold_back`), barrier,
  // record write, barrier (commit point), checkpoint through the cache,
  // barrier, scrub. On an overflowing transaction (record larger than
  // the ring) falls back to a direct synchronous checkpoint — atomic
  // per-block but not per-transaction — and counts it.
  Status Commit(const std::vector<JournalEntry>& entries,
                const std::unordered_set<uint64_t>& hold_back);

  // Capacity of one record's payload given the ring and block size (the
  // descriptor consumes one ring block; its target list must also fit).
  size_t MaxPayloadBlocks() const;

  // Fsck hook: with the commit lock held (so no record is in flight),
  // scans the ring for live records and scrubs any found — they can only
  // be left behind by a scrub that failed mid-commit (which poisoned the
  // journal). The caller must have flushed current metadata durably
  // first (the record's content is redundant with live state by then —
  // see PlainFs::Fsck); on success the poison is lifted. Reports how
  // many records were live and how many ring blocks were re-noised.
  Status ScrubStaleRecords(uint64_t* live_records, uint64_t* scrubbed_blocks);

  JournalStats stats() const;
  uint32_t ring_blocks() const { return journal_blocks_; }
  uint64_t ring_start() const { return journal_start_; }

  // Registers the journal's instruments with `reg` under stegfs_journal_*
  // names (the journal keeps ownership; PlainFs calls this at mount).
  void RegisterMetrics(obs::MetricsRegistry* reg) const;

 private:
  // Full write barrier: drain the async engine (both engines honor the
  // contract via Drain), then device Sync.
  Status Barrier();
  // Writes one block directly to the device at ring offset pos (mod ring).
  Status WriteRing(uint64_t pos, const uint8_t* buf);
  // Failure path after a record reached the ring: scrub it so it can
  // never replay over state that later transactions move past. If even
  // the scrub fails, poison the journal — every further Commit refuses,
  // which keeps the invariant "a live record is always the newest state"
  // that both mount recovery and the fsck scrubber rely on.
  void ScrubRecordOrPoison(uint64_t base, size_t used_blocks);

  BlockDevice* device_;
  BufferCache* cache_;
  AsyncBlockDevice* engine_;
  uint64_t journal_start_;
  uint32_t journal_blocks_;
  uint64_t scrub_seed_;

  std::mutex mu_;  // the commit lock (see lock hierarchy above)
  uint64_t next_seq_ = 1;
  uint64_t head_ = 0;   // next ring offset to write
  bool failed_ = false;  // poisoned: a record could not be scrubbed

  obs::Counter records_committed_;
  obs::Counter blocks_journaled_;
  obs::Counter barrier_syncs_;
  obs::Counter overflow_fallbacks_;
  obs::Counter scrubbed_blocks_;
  // Commit-phase latency: the full Commit, the record write up to its
  // commit-point barrier, each barrier, and the checkpoint phase.
  obs::Histogram commit_ns_;
  obs::Histogram record_ns_;
  obs::Histogram barrier_ns_;
  obs::Histogram checkpoint_ns_;
};

}  // namespace journal
}  // namespace stegfs

#endif  // STEGFS_JOURNAL_JOURNAL_H_
