#include "fs/directory.h"

#include <cstring>

#include "util/coding.h"

namespace stegfs {

namespace {

void EncodeEntry(uint8_t* buf, const std::string& name, uint32_t ino) {
  std::memset(buf, 0, kDirEntrySize);
  EncodeFixed32(buf, ino);
  buf[4] = static_cast<uint8_t>(name.size());
  std::memcpy(buf + 5, name.data(), name.size());
}

}  // namespace

StatusOr<uint32_t> Directory::Lookup(const Inode& dir, const std::string& name,
                                     BlockStore* store) {
  std::string data;
  STEGFS_RETURN_IF_ERROR(io_->Read(dir, 0, dir.size, store, &data));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  for (size_t off = 0; off + kDirEntrySize <= data.size();
       off += kDirEntrySize) {
    uint8_t len = p[off + 4];
    if (len == 0) continue;
    if (len == name.size() &&
        std::memcmp(p + off + 5, name.data(), len) == 0) {
      return DecodeFixed32(p + off);
    }
  }
  return Status::NotFound("no directory entry: " + name);
}

Status Directory::Add(Inode* dir, const std::string& name, uint32_t ino,
                      BlockStore* store, BlockAllocator* alloc,
                      bool* inode_dirty) {
  if (name.empty() || name.size() > kMaxNameLen) {
    return Status::InvalidArgument("directory entry name length invalid");
  }
  // Reuse the first free slot, else append.
  std::string data;
  STEGFS_RETURN_IF_ERROR(io_->Read(*dir, 0, dir->size, store, &data));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  uint64_t slot_offset = dir->size;
  for (size_t off = 0; off + kDirEntrySize <= data.size();
       off += kDirEntrySize) {
    if (p[off + 4] == 0) {
      slot_offset = off;
      break;
    }
  }
  uint8_t entry[kDirEntrySize];
  EncodeEntry(entry, name, ino);
  return io_->Write(dir, slot_offset,
                    std::string_view(reinterpret_cast<char*>(entry),
                                     kDirEntrySize),
                    store, alloc, inode_dirty);
}

Status Directory::Remove(Inode* dir, const std::string& name,
                         BlockStore* store, BlockAllocator* alloc,
                         bool* inode_dirty) {
  std::string data;
  STEGFS_RETURN_IF_ERROR(io_->Read(*dir, 0, dir->size, store, &data));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  for (size_t off = 0; off + kDirEntrySize <= data.size();
       off += kDirEntrySize) {
    uint8_t len = p[off + 4];
    if (len == name.size() &&
        std::memcmp(p + off + 5, name.data(), len) == 0) {
      uint8_t zero[kDirEntrySize] = {0};
      return io_->Write(dir, off,
                        std::string_view(reinterpret_cast<char*>(zero),
                                         kDirEntrySize),
                        store, alloc, inode_dirty);
    }
  }
  return Status::NotFound("no directory entry: " + name);
}

StatusOr<std::vector<DirEntry>> Directory::List(const Inode& dir,
                                                BlockStore* store) {
  std::string data;
  STEGFS_RETURN_IF_ERROR(io_->Read(dir, 0, dir.size, store, &data));
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  std::vector<DirEntry> out;
  for (size_t off = 0; off + kDirEntrySize <= data.size();
       off += kDirEntrySize) {
    uint8_t len = p[off + 4];
    if (len == 0) continue;
    DirEntry e;
    e.inode = DecodeFixed32(p + off);
    e.name.assign(reinterpret_cast<const char*>(p + off + 5), len);
    out.push_back(std::move(e));
  }
  return out;
}

StatusOr<bool> Directory::Empty(const Inode& dir, BlockStore* store) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, List(dir, store));
  return entries.empty();
}

}  // namespace stegfs
