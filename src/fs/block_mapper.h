// BlockMapper: translates (inode, file block index) -> device block through
// the classic direct / single-indirect / double-indirect walk, allocating or
// freeing blocks on demand. Parameterized on BlockStore + BlockAllocator so
// the identical logic drives plain files, directories AND encrypted hidden
// files (whose indirect blocks are themselves encrypted and pool-allocated).
#ifndef STEGFS_FS_BLOCK_MAPPER_H_
#define STEGFS_FS_BLOCK_MAPPER_H_

#include <cstdint>
#include <vector>

#include "fs/block_store.h"
#include "fs/inode.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

class BlockMapper {
 public:
  explicit BlockMapper(uint32_t block_size)
      : block_size_(block_size), ptrs_per_block_(block_size / 4) {}

  // Largest addressable file, in blocks.
  uint64_t MaxFileBlocks() const {
    return kDirectPointers + ptrs_per_block_ +
           static_cast<uint64_t>(ptrs_per_block_) * ptrs_per_block_;
  }

  // Device block holding file block `idx`, or NotFound for a hole.
  StatusOr<uint64_t> Map(const Inode& inode, uint64_t idx, BlockStore* store);

  // Like Map but allocates missing data/indirect blocks. Sets *inode_dirty
  // when the inode's pointer fields changed.
  StatusOr<uint64_t> MapOrAllocate(Inode* inode, uint64_t idx,
                                   BlockStore* store, BlockAllocator* alloc,
                                   bool* inode_dirty);

  // Repoints file block `idx` at `new_block` WITHOUT freeing the block it
  // previously mapped to — the self-healing path: the old block may have
  // been claimed by a plain allocation, and freeing a block we no longer
  // own would corrupt someone else's data. NotFound when `idx` is a hole.
  Status Remap(Inode* inode, uint64_t idx, uint64_t new_block,
               BlockStore* store, bool* inode_dirty);

  // Frees all data blocks with file index >= first_kept and any indirect
  // blocks that become empty. (first_kept = 0 frees everything.)
  Status FreeFrom(Inode* inode, uint64_t first_kept, BlockStore* store,
                  BlockAllocator* alloc);

  // Appends every device block reachable from `inode` — data AND indirect
  // blocks — to `out`. Used by backup and the space accountant.
  Status CollectBlocks(const Inode& inode, BlockStore* store,
                       std::vector<uint64_t>* out) const;

  // Metadata-write recorder: while non-null, every indirect pointer block
  // this mapper writes (allocation, pointer update, truncate zeroing) is
  // recorded into *sink BEFORE the write reaches the store. PlainFs's
  // journal transactions use it to capture the pointer blocks an operation
  // touched — in-place pointer rewrites are exactly the tear ordered-data
  // writeback cannot protect, so they must ride the journal record — and
  // the log's on_record hook parks the block against concurrent flushers.
  // The recorder is txn-scoped: set before the operation, cleared after;
  // the mapper stays single-owner per thread (PlainFs's metadata lock /
  // the per-object lock).
  void set_meta_recorder(MetaWriteLog* sink) { meta_recorder_ = sink; }

 private:
  Status ReadPointerBlock(BlockStore* store, uint64_t block,
                          std::vector<uint32_t>* ptrs) const;
  Status WritePointerBlock(BlockStore* store, uint64_t block,
                           const std::vector<uint32_t>& ptrs) const;
  StatusOr<uint64_t> AllocateZeroedPointerBlock(BlockStore* store,
                                                BlockAllocator* alloc) const;

  uint32_t block_size_;
  uint32_t ptrs_per_block_;
  MetaWriteLog* meta_recorder_ = nullptr;
};

}  // namespace stegfs

#endif  // STEGFS_FS_BLOCK_MAPPER_H_
