// Byte-granular file I/O over an inode: the read/write/truncate engine
// shared by plain files, directories and (through an EncryptedBlockStore +
// pool allocator) hidden files.
#ifndef STEGFS_FS_FILE_IO_H_
#define STEGFS_FS_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "fs/block_mapper.h"
#include "fs/block_store.h"
#include "fs/inode.h"
#include "util/status.h"

namespace stegfs {

class FileIo {
 public:
  explicit FileIo(uint32_t block_size)
      : block_size_(block_size), mapper_(block_size) {}

  // Readahead window in file blocks: after each Read, the next `blocks`
  // mapped blocks are hinted to the store's prefetcher (0 = off, the
  // default). Takes effect only when the underlying cache has a prefetch
  // pool attached.
  void set_readahead(uint32_t blocks) { readahead_ = blocks; }
  uint32_t readahead() const { return readahead_; }

  // Reads up to `n` bytes from `offset`; stops at end-of-file. Holes read
  // as zeros. Appends to *out. The extent is resolved through the mapper
  // first, then all mapped blocks transfer as vectored batches (at most
  // kMaxBatchBlocks at a time) sorted ascending by device LBA — so a
  // sequential extent reaches the device as coalesced runs, a
  // random-placed hidden extent reaches the async backend as monotonic
  // submissions, and the crypto layer sees pipelined batches either way.
  Status Read(const Inode& inode, uint64_t offset, uint64_t n,
              BlockStore* store, std::string* out);

  // Writes `data` at `offset`, allocating blocks and growing inode->size as
  // needed. Partial first/last blocks are read-modify-written.
  Status Write(Inode* inode, uint64_t offset, std::string_view data,
               BlockStore* store, BlockAllocator* alloc, bool* inode_dirty);

  // Shrinks the file, freeing blocks past the new end. Growing sets the
  // size without allocating blocks (the gap reads as zeros).
  Status Truncate(Inode* inode, uint64_t new_size, BlockStore* store,
                  BlockAllocator* alloc, bool* inode_dirty);

  BlockMapper* mapper() { return &mapper_; }

  // Upper bound on blocks per batch transfer (bounds staging memory:
  // 256 blocks = 16 MB at the largest 64 KB block size).
  static constexpr size_t kMaxBatchBlocks = 256;

 private:
  // Hints the prefetcher at the next `readahead_` mapped file blocks
  // following `next_idx`.
  void IssueReadahead(const Inode& inode, uint64_t next_idx,
                      BlockStore* store);

  uint32_t block_size_;
  uint32_t readahead_ = 0;
  BlockMapper mapper_;
};

}  // namespace stegfs

#endif  // STEGFS_FS_FILE_IO_H_
