// Byte-granular file I/O over an inode: the read/write/truncate engine
// shared by plain files, directories and (through an EncryptedBlockStore +
// pool allocator) hidden files.
#ifndef STEGFS_FS_FILE_IO_H_
#define STEGFS_FS_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "fs/block_mapper.h"
#include "fs/block_store.h"
#include "fs/inode.h"
#include "util/status.h"

namespace stegfs {

// Everything a redundancy hook needs to reach back into the file it is
// protecting: the inode (healing remaps block pointers), the store and
// allocator (fresh blocks for re-dispersed shares), and the mapper.
struct RedundancyIoCtx {
  Inode* inode = nullptr;
  BlockStore* store = nullptr;
  BlockAllocator* alloc = nullptr;
  BlockMapper* mapper = nullptr;
  bool* inode_dirty = nullptr;
};

// Per-extent redundancy hook (PR 6): FileIo calls it inline on the batched
// data path — after each vectored chunk read (verify + heal in place,
// before byte assembly), after each write's coalesced flush (re-encode the
// touched stripes' parity), and after truncate (drop parity past the new
// end). Implemented by core::RedundancyManager; null = policy kNone.
class ExtentRedundancy {
 public:
  virtual ~ExtentRedundancy() = default;

  // One mapped whole block of a read chunk: its file block index, the
  // device block it mapped to, and its plaintext in the transfer buffer.
  // A heal rewrites `data` in place so assembly picks up repaired bytes.
  struct ReadBlockRef {
    uint64_t file_idx = 0;
    uint64_t device_block = 0;
    uint8_t* data = nullptr;
  };

  // Verify `count` freshly read blocks; heal any share whose checksum or
  // bitmap evidence says it was lost. DataLoss when a stripe has fewer
  // than k intact shares.
  virtual Status OnExtentRead(const RedundancyIoCtx& ctx, ReadBlockRef* refs,
                              size_t count) = 0;

  // Re-encode parity for every stripe overlapping file blocks
  // [first_idx, last_idx] after their data reached the store.
  virtual Status OnExtentWrite(const RedundancyIoCtx& ctx, uint64_t first_idx,
                               uint64_t last_idx) = 0;

  // The file now ends at `new_file_blocks` blocks: release parity beyond
  // it and re-encode the boundary stripe.
  virtual Status OnTruncate(const RedundancyIoCtx& ctx,
                            uint64_t new_file_blocks) = 0;
};

class FileIo {
 public:
  explicit FileIo(uint32_t block_size)
      : block_size_(block_size), mapper_(block_size) {}

  // Readahead window in file blocks: after each Read, the next `blocks`
  // mapped blocks are hinted to the store's prefetcher (0 = off, the
  // default). Takes effect only when the underlying cache has a prefetch
  // pool attached.
  void set_readahead(uint32_t blocks) { readahead_ = blocks; }
  uint32_t readahead() const { return readahead_; }

  // Attaches a redundancy hook (not owned). Write and Truncate consult it
  // unconditionally; reads verify only through ReadVerified (plain Read
  // has no allocator to heal with).
  void set_redundancy(ExtentRedundancy* redundancy) {
    redundancy_ = redundancy;
  }

  // Reads up to `n` bytes from `offset`; stops at end-of-file. Holes read
  // as zeros. Appends to *out. The extent is resolved through the mapper
  // first, then all mapped blocks transfer as vectored batches (at most
  // kMaxBatchBlocks at a time) sorted ascending by device LBA — so a
  // sequential extent reaches the device as coalesced runs, a
  // random-placed hidden extent reaches the async backend as monotonic
  // submissions, and the crypto layer sees pipelined batches either way.
  Status Read(const Inode& inode, uint64_t offset, uint64_t n,
              BlockStore* store, std::string* out);

  // Read with share verification and in-place healing through the attached
  // redundancy hook (a heal allocates fresh blocks and remaps the inode,
  // hence the mutable inode + allocator). Behaves exactly like Read when
  // no hook is attached.
  Status ReadVerified(Inode* inode, uint64_t offset, uint64_t n,
                      BlockStore* store, BlockAllocator* alloc,
                      bool* inode_dirty, std::string* out);

  // Writes `data` at `offset`, allocating blocks and growing inode->size as
  // needed. Partial first/last blocks are read-modify-written.
  Status Write(Inode* inode, uint64_t offset, std::string_view data,
               BlockStore* store, BlockAllocator* alloc, bool* inode_dirty);

  // Shrinks the file, freeing blocks past the new end. Growing sets the
  // size without allocating blocks (the gap reads as zeros).
  Status Truncate(Inode* inode, uint64_t new_size, BlockStore* store,
                  BlockAllocator* alloc, bool* inode_dirty);

  BlockMapper* mapper() { return &mapper_; }

  // Upper bound on blocks per batch transfer (bounds staging memory:
  // 256 blocks = 16 MB at the largest 64 KB block size).
  static constexpr size_t kMaxBatchBlocks = 256;

 private:
  // Shared body of Read / ReadVerified; verifies through the redundancy
  // hook only when `alloc` is non-null.
  Status ReadImpl(Inode* inode, uint64_t offset, uint64_t n,
                  BlockStore* store, BlockAllocator* alloc, bool* inode_dirty,
                  std::string* out);

  // Hints the prefetcher at the next `readahead_` mapped file blocks
  // following `next_idx`.
  void IssueReadahead(const Inode& inode, uint64_t next_idx,
                      BlockStore* store);

  uint32_t block_size_;
  uint32_t readahead_ = 0;
  BlockMapper mapper_;
  ExtentRedundancy* redundancy_ = nullptr;
};

}  // namespace stegfs

#endif  // STEGFS_FS_FILE_IO_H_
