#include "fs/file_io.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

namespace stegfs {

Status FileIo::Read(const Inode& inode, uint64_t offset, uint64_t n,
                    BlockStore* store, std::string* out) {
  return ReadImpl(const_cast<Inode*>(&inode), offset, n, store,
                  /*alloc=*/nullptr, /*inode_dirty=*/nullptr, out);
}

Status FileIo::ReadVerified(Inode* inode, uint64_t offset, uint64_t n,
                            BlockStore* store, BlockAllocator* alloc,
                            bool* inode_dirty, std::string* out) {
  return ReadImpl(inode, offset, n, store, alloc, inode_dirty, out);
}

Status FileIo::ReadImpl(Inode* inode, uint64_t offset, uint64_t n,
                        BlockStore* store, BlockAllocator* alloc,
                        bool* inode_dirty, std::string* out) {
  if (offset >= inode->size) return Status::OK();
  n = std::min(n, inode->size - offset);
  out->reserve(out->size() + n);
  const bool verify = redundancy_ != nullptr && alloc != nullptr;

  // One chunk = up to kMaxBatchBlocks file blocks: resolve the mapping for
  // the whole chunk, fetch every mapped block with one vectored store
  // read, then assemble bytes (holes read as zeros).
  std::vector<uint64_t> device_blocks;
  std::vector<uint64_t> file_idxs;
  std::vector<bool> is_hole;
  std::vector<uint32_t> takes;
  std::vector<uint8_t> buf;
  uint64_t total_blocks = 0;
  while (n > 0) {
    device_blocks.clear();
    file_idxs.clear();
    is_hole.clear();
    takes.clear();
    uint64_t chunk_off = offset;
    uint64_t chunk_n = n;
    while (chunk_n > 0 && is_hole.size() < kMaxBatchBlocks) {
      uint64_t block_idx = chunk_off / block_size_;
      uint32_t in_block = static_cast<uint32_t>(chunk_off % block_size_);
      uint32_t take = static_cast<uint32_t>(
          std::min<uint64_t>(chunk_n, block_size_ - in_block));
      auto mapped = mapper_.Map(*inode, block_idx, store);
      if (mapped.ok()) {
        is_hole.push_back(false);
        device_blocks.push_back(mapped.value());
        file_idxs.push_back(block_idx);
      } else if (mapped.status().IsNotFound()) {
        is_hole.push_back(true);
      } else {
        return mapped.status();
      }
      takes.push_back(take);
      chunk_off += take;
      chunk_n -= take;
    }

    total_blocks += takes.size();
    // Submit the chunk ascending by LBA: the io_uring backend then
    // issues monotonic offsets and the FileBlockDevice coalescer sees
    // every contiguous run the mapping contains. Plain contiguous
    // extents are already ascending (the sort is a no-op); hidden
    // extents arrive in logical order, which random placement makes
    // device-random. `slot_of` maps each logical mapped index to its
    // position in the sorted transfer for reassembly below.
    std::vector<uint32_t> order(device_blocks.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return device_blocks[a] < device_blocks[b];
    });
    std::vector<uint64_t> sorted_blocks(device_blocks.size());
    std::vector<uint32_t> slot_of(device_blocks.size());
    for (size_t j = 0; j < order.size(); ++j) {
      sorted_blocks[j] = device_blocks[order[j]];
      slot_of[order[j]] = static_cast<uint32_t>(j);
    }
    buf.resize(sorted_blocks.size() * block_size_);
    if (!sorted_blocks.empty()) {
      STEGFS_RETURN_IF_ERROR(store->ReadBlocks(
          sorted_blocks.data(), sorted_blocks.size(), buf.data()));
    }

    // Share verification rides the batch: every mapped whole block of the
    // chunk is checked (and healed in place) before a byte is assembled.
    if (verify && !device_blocks.empty()) {
      std::vector<ExtentRedundancy::ReadBlockRef> refs(device_blocks.size());
      for (size_t j = 0; j < device_blocks.size(); ++j) {
        refs[j] = {file_idxs[j], device_blocks[j],
                   buf.data() + slot_of[j] * block_size_};
      }
      RedundancyIoCtx ctx{inode, store, alloc, &mapper_, inode_dirty};
      STEGFS_RETURN_IF_ERROR(
          redundancy_->OnExtentRead(ctx, refs.data(), refs.size()));
    }

    size_t mapped_i = 0;
    for (size_t i = 0; i < takes.size(); ++i) {
      uint32_t in_block = static_cast<uint32_t>(offset % block_size_);
      if (is_hole[i]) {
        out->append(takes[i], '\0');
      } else {
        const uint8_t* src =
            buf.data() + slot_of[mapped_i] * block_size_ + in_block;
        out->append(reinterpret_cast<const char*>(src), takes[i]);
        ++mapped_i;
      }
      offset += takes[i];
      n -= takes[i];
    }
  }

  // Hint the window after the extent — but only for multi-block extents:
  // a block-at-a-time reader would enqueue one prefetch task per block,
  // all chasing the block the next call is about to demand-read anyway,
  // and the task overhead swamps the win (measured 0.6x on one core).
  if (readahead_ > 0 && total_blocks >= 2) {
    IssueReadahead(*inode, offset / block_size_ + (offset % block_size_ != 0),
                   store);
  }
  return Status::OK();
}

void FileIo::IssueReadahead(const Inode& inode, uint64_t next_idx,
                            BlockStore* store) {
  std::vector<uint64_t> blocks;
  uint64_t file_blocks = (inode.size + block_size_ - 1) / block_size_;
  // The window is the next readahead_ FILE blocks — holes inside it yield
  // nothing but do not extend the scan, so a sparse tail costs at most
  // readahead_ mapper lookups per read, never a walk of the whole file.
  uint64_t window_end = std::min(file_blocks, next_idx + readahead_);
  for (uint64_t idx = next_idx; idx < window_end; ++idx) {
    auto mapped = mapper_.Map(inode, idx, store);
    if (!mapped.ok()) {
      if (mapped.status().IsNotFound()) continue;  // hole: nothing to warm
      return;  // mapping error: skip the hint, the demand path reports it
    }
    blocks.push_back(mapped.value());
  }
  if (!blocks.empty()) store->Prefetch(blocks.data(), blocks.size());
}

Status FileIo::Write(Inode* inode, uint64_t offset, std::string_view data,
                     BlockStore* store, BlockAllocator* alloc,
                     bool* inode_dirty) {
  uint64_t max_bytes = mapper_.MaxFileBlocks() * block_size_;
  if (offset + data.size() > max_bytes) {
    return Status::InvalidArgument("write exceeds maximum file size");
  }
  // Coalesce per-operation: indirect-pointer blocks are touched on every
  // allocation but must reach the device only once per logical write.
  CoalescingStore coalesced(store);
  std::vector<uint8_t> buf(block_size_);
  size_t written = 0;
  while (written < data.size()) {
    uint64_t pos = offset + written;
    uint64_t block_idx = pos / block_size_;
    uint32_t in_block = static_cast<uint32_t>(pos % block_size_);
    uint32_t take = static_cast<uint32_t>(std::min<uint64_t>(
        data.size() - written, block_size_ - in_block));
    STEGFS_ASSIGN_OR_RETURN(
        uint64_t device_block,
        mapper_.MapOrAllocate(inode, block_idx, &coalesced, alloc,
                              inode_dirty));
    if (take < block_size_) {
      // Partial block: read-modify-write (block may hold older data).
      STEGFS_RETURN_IF_ERROR(coalesced.ReadBlock(device_block, buf.data()));
    }
    std::memcpy(buf.data() + in_block, data.data() + written, take);
    STEGFS_RETURN_IF_ERROR(coalesced.WriteBlock(device_block, buf.data()));
    written += take;
  }
  STEGFS_RETURN_IF_ERROR(coalesced.Flush());
  if (offset + data.size() > inode->size) {
    inode->size = offset + data.size();
    *inode_dirty = true;
  }
  if (!data.empty()) {
    inode->mtime++;
    *inode_dirty = true;
  }
  // Parity rides behind the data batch: re-encode every stripe the write
  // touched, now that the new block contents are visible in the store.
  if (redundancy_ != nullptr && !data.empty()) {
    RedundancyIoCtx ctx{inode, store, alloc, &mapper_, inode_dirty};
    STEGFS_RETURN_IF_ERROR(redundancy_->OnExtentWrite(
        ctx, offset / block_size_,
        (offset + data.size() - 1) / block_size_));
  }
  return Status::OK();
}

Status FileIo::Truncate(Inode* inode, uint64_t new_size, BlockStore* store,
                        BlockAllocator* alloc, bool* inode_dirty) {
  if (new_size >= inode->size) {
    if (new_size != inode->size) {
      inode->size = new_size;  // grow: reads of the gap return zeros (hole)
      *inode_dirty = true;
    }
    return Status::OK();
  }
  uint64_t first_kept = (new_size + block_size_ - 1) / block_size_;
  STEGFS_RETURN_IF_ERROR(mapper_.FreeFrom(inode, first_kept, store, alloc));
  inode->size = new_size;
  inode->mtime++;
  *inode_dirty = true;
  if (redundancy_ != nullptr) {
    RedundancyIoCtx ctx{inode, store, alloc, &mapper_, inode_dirty};
    STEGFS_RETURN_IF_ERROR(redundancy_->OnTruncate(ctx, first_kept));
  }
  return Status::OK();
}

}  // namespace stegfs
