#include "fs/file_io.h"

#include <cstring>
#include <vector>

namespace stegfs {

Status FileIo::Read(const Inode& inode, uint64_t offset, uint64_t n,
                    BlockStore* store, std::string* out) {
  if (offset >= inode.size) return Status::OK();
  n = std::min(n, inode.size - offset);
  std::vector<uint8_t> buf(block_size_);
  while (n > 0) {
    uint64_t block_idx = offset / block_size_;
    uint32_t in_block = static_cast<uint32_t>(offset % block_size_);
    uint32_t take = static_cast<uint32_t>(
        std::min<uint64_t>(n, block_size_ - in_block));
    auto mapped = mapper_.Map(inode, block_idx, store);
    if (mapped.ok()) {
      STEGFS_RETURN_IF_ERROR(store->ReadBlock(mapped.value(), buf.data()));
      out->append(reinterpret_cast<const char*>(buf.data()) + in_block, take);
    } else if (mapped.status().IsNotFound()) {
      out->append(take, '\0');  // hole
    } else {
      return mapped.status();
    }
    offset += take;
    n -= take;
  }
  return Status::OK();
}

Status FileIo::Write(Inode* inode, uint64_t offset, std::string_view data,
                     BlockStore* store, BlockAllocator* alloc,
                     bool* inode_dirty) {
  uint64_t max_bytes = mapper_.MaxFileBlocks() * block_size_;
  if (offset + data.size() > max_bytes) {
    return Status::InvalidArgument("write exceeds maximum file size");
  }
  // Coalesce per-operation: indirect-pointer blocks are touched on every
  // allocation but must reach the device only once per logical write.
  CoalescingStore coalesced(store);
  std::vector<uint8_t> buf(block_size_);
  size_t written = 0;
  while (written < data.size()) {
    uint64_t pos = offset + written;
    uint64_t block_idx = pos / block_size_;
    uint32_t in_block = static_cast<uint32_t>(pos % block_size_);
    uint32_t take = static_cast<uint32_t>(std::min<uint64_t>(
        data.size() - written, block_size_ - in_block));
    STEGFS_ASSIGN_OR_RETURN(
        uint64_t device_block,
        mapper_.MapOrAllocate(inode, block_idx, &coalesced, alloc,
                              inode_dirty));
    if (take < block_size_) {
      // Partial block: read-modify-write (block may hold older data).
      STEGFS_RETURN_IF_ERROR(coalesced.ReadBlock(device_block, buf.data()));
    }
    std::memcpy(buf.data() + in_block, data.data() + written, take);
    STEGFS_RETURN_IF_ERROR(coalesced.WriteBlock(device_block, buf.data()));
    written += take;
  }
  STEGFS_RETURN_IF_ERROR(coalesced.Flush());
  if (offset + data.size() > inode->size) {
    inode->size = offset + data.size();
    *inode_dirty = true;
  }
  if (!data.empty()) {
    inode->mtime++;
    *inode_dirty = true;
  }
  return Status::OK();
}

Status FileIo::Truncate(Inode* inode, uint64_t new_size, BlockStore* store,
                        BlockAllocator* alloc, bool* inode_dirty) {
  if (new_size >= inode->size) {
    if (new_size != inode->size) {
      inode->size = new_size;  // grow: reads of the gap return zeros (hole)
      *inode_dirty = true;
    }
    return Status::OK();
  }
  uint64_t first_kept = (new_size + block_size_ - 1) / block_size_;
  STEGFS_RETURN_IF_ERROR(mapper_.FreeFrom(inode, first_kept, store, alloc));
  inode->size = new_size;
  inode->mtime++;
  *inode_dirty = true;
  return Status::OK();
}

}  // namespace stegfs
