#include "fs/block_mapper.h"

#include <cstring>

#include "util/coding.h"

namespace stegfs {

Status BlockMapper::ReadPointerBlock(BlockStore* store, uint64_t block,
                                     std::vector<uint32_t>* ptrs) const {
  std::vector<uint8_t> buf(block_size_);
  STEGFS_RETURN_IF_ERROR(store->ReadBlock(block, buf.data()));
  ptrs->resize(ptrs_per_block_);
  for (uint32_t i = 0; i < ptrs_per_block_; ++i) {
    (*ptrs)[i] = DecodeFixed32(buf.data() + i * 4);
  }
  return Status::OK();
}

Status BlockMapper::WritePointerBlock(BlockStore* store, uint64_t block,
                                      const std::vector<uint32_t>& ptrs) const {
  std::vector<uint8_t> buf(block_size_, 0);
  for (uint32_t i = 0; i < ptrs_per_block_ && i < ptrs.size(); ++i) {
    EncodeFixed32(buf.data() + i * 4, ptrs[i]);
  }
  if (meta_recorder_ != nullptr) meta_recorder_->Record(block);
  return store->WriteBlock(block, buf.data());
}

StatusOr<uint64_t> BlockMapper::AllocateZeroedPointerBlock(
    BlockStore* store, BlockAllocator* alloc) const {
  STEGFS_ASSIGN_OR_RETURN(uint64_t block, alloc->AllocateBlock());
  std::vector<uint8_t> zero(block_size_, 0);
  if (meta_recorder_ != nullptr) meta_recorder_->Record(block);
  STEGFS_RETURN_IF_ERROR(store->WriteBlock(block, zero.data()));
  return block;
}

StatusOr<uint64_t> BlockMapper::Map(const Inode& inode, uint64_t idx,
                                    BlockStore* store) {
  if (idx < kDirectPointers) {
    uint32_t b = inode.direct[idx];
    if (b == kNullBlock) return Status::NotFound("hole (direct)");
    return static_cast<uint64_t>(b);
  }
  idx -= kDirectPointers;
  if (idx < ptrs_per_block_) {
    if (inode.single_indirect == kNullBlock) {
      return Status::NotFound("hole (single indirect missing)");
    }
    std::vector<uint32_t> ptrs;
    STEGFS_RETURN_IF_ERROR(
        ReadPointerBlock(store, inode.single_indirect, &ptrs));
    if (ptrs[idx] == kNullBlock) return Status::NotFound("hole (single)");
    return static_cast<uint64_t>(ptrs[idx]);
  }
  idx -= ptrs_per_block_;
  uint64_t outer = idx / ptrs_per_block_;
  uint64_t inner = idx % ptrs_per_block_;
  if (outer >= ptrs_per_block_) {
    return Status::InvalidArgument("file block index beyond maximum size");
  }
  if (inode.double_indirect == kNullBlock) {
    return Status::NotFound("hole (double indirect missing)");
  }
  std::vector<uint32_t> l1;
  STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, inode.double_indirect, &l1));
  if (l1[outer] == kNullBlock) return Status::NotFound("hole (double L1)");
  std::vector<uint32_t> l2;
  STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, l1[outer], &l2));
  if (l2[inner] == kNullBlock) return Status::NotFound("hole (double L2)");
  return static_cast<uint64_t>(l2[inner]);
}

StatusOr<uint64_t> BlockMapper::MapOrAllocate(Inode* inode, uint64_t idx,
                                              BlockStore* store,
                                              BlockAllocator* alloc,
                                              bool* inode_dirty) {
  if (idx < kDirectPointers) {
    if (inode->direct[idx] == kNullBlock) {
      STEGFS_ASSIGN_OR_RETURN(uint64_t b, alloc->AllocateBlock());
      inode->direct[idx] = static_cast<uint32_t>(b);
      *inode_dirty = true;
    }
    return static_cast<uint64_t>(inode->direct[idx]);
  }
  uint64_t rel = idx - kDirectPointers;
  if (rel < ptrs_per_block_) {
    if (inode->single_indirect == kNullBlock) {
      STEGFS_ASSIGN_OR_RETURN(uint64_t b,
                              AllocateZeroedPointerBlock(store, alloc));
      inode->single_indirect = static_cast<uint32_t>(b);
      *inode_dirty = true;
    }
    std::vector<uint32_t> ptrs;
    STEGFS_RETURN_IF_ERROR(
        ReadPointerBlock(store, inode->single_indirect, &ptrs));
    if (ptrs[rel] == kNullBlock) {
      STEGFS_ASSIGN_OR_RETURN(uint64_t b, alloc->AllocateBlock());
      ptrs[rel] = static_cast<uint32_t>(b);
      STEGFS_RETURN_IF_ERROR(
          WritePointerBlock(store, inode->single_indirect, ptrs));
    }
    return static_cast<uint64_t>(ptrs[rel]);
  }
  rel -= ptrs_per_block_;
  uint64_t outer = rel / ptrs_per_block_;
  uint64_t inner = rel % ptrs_per_block_;
  if (outer >= ptrs_per_block_) {
    return Status::InvalidArgument("file block index beyond maximum size");
  }
  if (inode->double_indirect == kNullBlock) {
    STEGFS_ASSIGN_OR_RETURN(uint64_t b,
                            AllocateZeroedPointerBlock(store, alloc));
    inode->double_indirect = static_cast<uint32_t>(b);
    *inode_dirty = true;
  }
  std::vector<uint32_t> l1;
  STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, inode->double_indirect, &l1));
  if (l1[outer] == kNullBlock) {
    STEGFS_ASSIGN_OR_RETURN(uint64_t b,
                            AllocateZeroedPointerBlock(store, alloc));
    l1[outer] = static_cast<uint32_t>(b);
    STEGFS_RETURN_IF_ERROR(
        WritePointerBlock(store, inode->double_indirect, l1));
  }
  std::vector<uint32_t> l2;
  STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, l1[outer], &l2));
  if (l2[inner] == kNullBlock) {
    STEGFS_ASSIGN_OR_RETURN(uint64_t b, alloc->AllocateBlock());
    l2[inner] = static_cast<uint32_t>(b);
    STEGFS_RETURN_IF_ERROR(WritePointerBlock(store, l1[outer], l2));
  }
  return static_cast<uint64_t>(l2[inner]);
}

Status BlockMapper::Remap(Inode* inode, uint64_t idx, uint64_t new_block,
                          BlockStore* store, bool* inode_dirty) {
  if (idx < kDirectPointers) {
    if (inode->direct[idx] == kNullBlock) {
      return Status::NotFound("hole (direct)");
    }
    inode->direct[idx] = static_cast<uint32_t>(new_block);
    *inode_dirty = true;
    return Status::OK();
  }
  uint64_t rel = idx - kDirectPointers;
  if (rel < ptrs_per_block_) {
    if (inode->single_indirect == kNullBlock) {
      return Status::NotFound("hole (single indirect missing)");
    }
    std::vector<uint32_t> ptrs;
    STEGFS_RETURN_IF_ERROR(
        ReadPointerBlock(store, inode->single_indirect, &ptrs));
    if (ptrs[rel] == kNullBlock) return Status::NotFound("hole (single)");
    ptrs[rel] = static_cast<uint32_t>(new_block);
    return WritePointerBlock(store, inode->single_indirect, ptrs);
  }
  rel -= ptrs_per_block_;
  uint64_t outer = rel / ptrs_per_block_;
  uint64_t inner = rel % ptrs_per_block_;
  if (outer >= ptrs_per_block_) {
    return Status::InvalidArgument("file block index beyond maximum size");
  }
  if (inode->double_indirect == kNullBlock) {
    return Status::NotFound("hole (double indirect missing)");
  }
  std::vector<uint32_t> l1;
  STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, inode->double_indirect, &l1));
  if (l1[outer] == kNullBlock) return Status::NotFound("hole (double L1)");
  std::vector<uint32_t> l2;
  STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, l1[outer], &l2));
  if (l2[inner] == kNullBlock) return Status::NotFound("hole (double L2)");
  l2[inner] = static_cast<uint32_t>(new_block);
  return WritePointerBlock(store, l1[outer], l2);
}

Status BlockMapper::FreeFrom(Inode* inode, uint64_t first_kept,
                             BlockStore* store, BlockAllocator* alloc) {
  // Direct pointers.
  for (uint64_t i = 0; i < kDirectPointers; ++i) {
    if (i >= first_kept && inode->direct[i] != kNullBlock) {
      STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(inode->direct[i]));
      inode->direct[i] = kNullBlock;
    }
  }
  // Single indirect.
  if (inode->single_indirect != kNullBlock) {
    std::vector<uint32_t> ptrs;
    STEGFS_RETURN_IF_ERROR(
        ReadPointerBlock(store, inode->single_indirect, &ptrs));
    bool any_kept = false;
    bool changed = false;
    for (uint32_t i = 0; i < ptrs_per_block_; ++i) {
      uint64_t file_idx = kDirectPointers + i;
      if (ptrs[i] == kNullBlock) continue;
      if (file_idx >= first_kept) {
        STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(ptrs[i]));
        ptrs[i] = kNullBlock;
        changed = true;
      } else {
        any_kept = true;
      }
    }
    if (!any_kept) {
      STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(inode->single_indirect));
      inode->single_indirect = kNullBlock;
    } else if (changed) {
      STEGFS_RETURN_IF_ERROR(
          WritePointerBlock(store, inode->single_indirect, ptrs));
    }
  }
  // Double indirect.
  if (inode->double_indirect != kNullBlock) {
    std::vector<uint32_t> l1;
    STEGFS_RETURN_IF_ERROR(
        ReadPointerBlock(store, inode->double_indirect, &l1));
    bool any_l1_kept = false;
    bool l1_changed = false;
    for (uint32_t o = 0; o < ptrs_per_block_; ++o) {
      if (l1[o] == kNullBlock) continue;
      std::vector<uint32_t> l2;
      STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, l1[o], &l2));
      bool any_l2_kept = false;
      bool l2_changed = false;
      for (uint32_t i = 0; i < ptrs_per_block_; ++i) {
        if (l2[i] == kNullBlock) continue;
        uint64_t file_idx = kDirectPointers + ptrs_per_block_ +
                            static_cast<uint64_t>(o) * ptrs_per_block_ + i;
        if (file_idx >= first_kept) {
          STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(l2[i]));
          l2[i] = kNullBlock;
          l2_changed = true;
        } else {
          any_l2_kept = true;
        }
      }
      if (!any_l2_kept) {
        STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(l1[o]));
        l1[o] = kNullBlock;
        l1_changed = true;
      } else {
        any_l1_kept = true;
        if (l2_changed) {
          STEGFS_RETURN_IF_ERROR(WritePointerBlock(store, l1[o], l2));
        }
      }
    }
    if (!any_l1_kept) {
      STEGFS_RETURN_IF_ERROR(alloc->FreeBlock(inode->double_indirect));
      inode->double_indirect = kNullBlock;
    } else if (l1_changed) {
      STEGFS_RETURN_IF_ERROR(
          WritePointerBlock(store, inode->double_indirect, l1));
    }
  }
  return Status::OK();
}

Status BlockMapper::CollectBlocks(const Inode& inode, BlockStore* store,
                                  std::vector<uint64_t>* out) const {
  for (uint64_t i = 0; i < kDirectPointers; ++i) {
    if (inode.direct[i] != kNullBlock) out->push_back(inode.direct[i]);
  }
  if (inode.single_indirect != kNullBlock) {
    out->push_back(inode.single_indirect);
    std::vector<uint32_t> ptrs;
    STEGFS_RETURN_IF_ERROR(
        ReadPointerBlock(store, inode.single_indirect, &ptrs));
    for (uint32_t p : ptrs) {
      if (p != kNullBlock) out->push_back(p);
    }
  }
  if (inode.double_indirect != kNullBlock) {
    out->push_back(inode.double_indirect);
    std::vector<uint32_t> l1;
    STEGFS_RETURN_IF_ERROR(
        ReadPointerBlock(store, inode.double_indirect, &l1));
    for (uint32_t o : l1) {
      if (o == kNullBlock) continue;
      out->push_back(o);
      std::vector<uint32_t> l2;
      STEGFS_RETURN_IF_ERROR(ReadPointerBlock(store, o, &l2));
      for (uint32_t p : l2) {
        if (p != kNullBlock) out->push_back(p);
      }
    }
  }
  return Status::OK();
}

}  // namespace stegfs
