// Inodes and the inode table — the "central directory" of the paper.
//
// Plain files and directories are reachable from here; hidden files are NOT
// (their inode tables live inside encrypted hidden blocks). The inode layout
// is the classic Unix shape: 10 direct pointers, one single-indirect, one
// double-indirect, with 32-bit block pointers (0 = null; block 0 is the
// superblock so it can never be a data pointer).
#ifndef STEGFS_FS_INODE_H_
#define STEGFS_FS_INODE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "cache/buffer_cache.h"
#include "fs/layout.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

inline constexpr uint32_t kDirectPointers = 10;
inline constexpr uint32_t kNullBlock = 0;
inline constexpr uint32_t kRootInode = 0;

enum class InodeType : uint8_t {
  kFree = 0,
  kFile = 1,
  kDirectory = 2,
};

struct Inode {
  InodeType type = InodeType::kFree;
  uint64_t size = 0;   // bytes
  uint64_t mtime = 0;  // logical clock ticks
  uint32_t direct[kDirectPointers] = {};
  uint32_t single_indirect = kNullBlock;
  uint32_t double_indirect = kNullBlock;

  bool InUse() const { return type != InodeType::kFree; }

  void EncodeTo(uint8_t buf[kInodeSize]) const;
  static Inode DecodeFrom(const uint8_t buf[kInodeSize]);
};

// In-memory image of the on-disk inode table with per-inode writeback.
class InodeTable {
 public:
  InodeTable(BufferCache* cache, const Layout& layout);

  // Reads the whole table from disk.
  Status Load();
  // Initializes an all-free table in memory (used right after Format).
  void InitEmpty();

  uint32_t count() const { return layout_.num_inodes; }
  // Valid index required; use Lookup-style helpers in PlainFs for paths.
  Inode* Get(uint32_t ino);
  const Inode* Get(uint32_t ino) const;

  // Finds a free slot, marks it with `type`, returns its index.
  StatusOr<uint32_t> Allocate(InodeType type);
  Status FreeInode(uint32_t ino);

  // Callers that mutate an inode through Get() MUST mark it dirty, or
  // PersistAll will skip its table block and the mutation dies at unmount.
  void MarkDirty(uint32_t ino) {
    dirty_blocks_[ino / InodesPerBlock()] = true;
  }

  // Writes the device block containing `ino` back through the cache.
  Status Persist(uint32_t ino);
  // Writes every dirty inode block.
  Status PersistAll();
  // Snapshots the after-image of every dirty inode-table device block
  // into `out` (appending) and clears the dirty flags (the journal's txn
  // commit path; see BlockBitmap::CollectDirty).
  void CollectDirty(
      std::vector<std::pair<uint64_t, std::vector<uint8_t>>>* out);
  // Re-marks every inode-table block dirty (the journal commit-failure
  // path; see BlockBitmap::MarkAllDirty).
  void MarkAllDirty() {
    std::fill(dirty_blocks_.begin(), dirty_blocks_.end(), true);
  }

  // Number of in-use inodes (for stats/experiments).
  uint32_t used_count() const;

 private:
  uint32_t InodesPerBlock() const { return layout_.block_size / kInodeSize; }

  BufferCache* cache_;
  Layout layout_;
  std::vector<Inode> inodes_;
  std::vector<bool> dirty_blocks_;
  uint32_t alloc_cursor_ = 0;
};

}  // namespace stegfs

#endif  // STEGFS_FS_INODE_H_
