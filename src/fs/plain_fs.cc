#include "fs/plain_fs.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

#include "blockdev/thread_pool_async_device.h"
#include "blockdev/uring_block_device.h"

namespace stegfs {

namespace {

uint32_t AutoInodeCount(uint64_t num_blocks) {
  uint64_t n = num_blocks / 64;
  n = std::max<uint64_t>(n, 256);
  n = std::min<uint64_t>(n, 262144);
  return static_cast<uint32_t>(n);
}

}  // namespace

Status PlainFs::Format(BlockDevice* device, const FormatOptions& options) {
  Superblock sb;
  sb.block_size = device->block_size();
  sb.num_blocks = device->num_blocks();
  sb.num_inodes = options.num_inodes != 0 ? options.num_inodes
                                          : AutoInodeCount(sb.num_blocks);
  sb.steg_formatted = options.steg_formatted ? 1 : 0;
  sb.steg = options.steg;
  sb.dummy_seed = options.dummy_seed;

  Layout layout = sb.ComputeLayout();
  if (layout.data_start + 16 > sb.num_blocks) {
    return Status::InvalidArgument("volume too small for metadata regions");
  }

  std::vector<uint8_t> buf(sb.block_size, 0);
  STEGFS_RETURN_IF_ERROR(sb.EncodeTo(buf.data(), buf.size()));
  STEGFS_RETURN_IF_ERROR(device->WriteBlock(0, buf.data()));

  // Bitmap + inode table through a throwaway cache.
  BufferCache cache(device, 256, WritePolicy::kWriteBack);
  BlockBitmap bitmap(layout);
  InodeTable inodes(&cache, layout);
  inodes.InitEmpty();
  // Root directory at inode 0.
  auto root = inodes.Allocate(InodeType::kDirectory);
  if (!root.ok()) return root.status();
  assert(root.value() == kRootInode);
  STEGFS_RETURN_IF_ERROR(bitmap.Store(&cache));
  STEGFS_RETURN_IF_ERROR(inodes.PersistAll());
  return cache.Flush();
}

PlainFs::PlainFs(BlockDevice* device, const Superblock& super,
                 const MountOptions& options,
                 std::unique_ptr<AsyncBlockDevice> engine)
    : device_(device),
      super_(super),
      layout_(super.ComputeLayout()),
      options_(options),
      cache_(std::make_unique<BufferCache>(device, options.cache_blocks,
                                           options.write_policy,
                                           options.cache_shards)),
      bitmap_(layout_),
      inodes_(cache_.get(), layout_),
      file_io_(layout_.block_size),
      store_(cache_.get()),
      dir_ops_(&file_io_),
      allocator_(this),
      rng_(options.rng_seed),
      io_engine_(std::move(engine)) {
  if (io_engine_ != nullptr) cache_->SetAsyncEngine(io_engine_.get());
  // Readahead needs a second core: even with an async engine (a pure
  // submitter — no thread ever blocks on the background read) the
  // completion inserts and hit copies still run on the demand path's only
  // core, and the bench measures that as a 0.6x LOSS at window 16 on one
  // core (sweep in BENCH_io.json). So the option degrades to off on
  // single-core hosts — observably: readahead_blocks() returns the
  // effective window and steg_stats surfaces readahead_active/window.
  // With two or more cores the engine carries the prefetch I/O; only
  // engineless mounts need the one-thread pool.
  if (options.readahead_blocks > 0 &&
      std::thread::hardware_concurrency() >= 2) {
    if (io_engine_ == nullptr) {
      prefetch_pool_ = std::make_unique<concurrency::ThreadPool>(1);
      cache_->SetPrefetchPool(prefetch_pool_.get());
    }
    file_io_.set_readahead(options.readahead_blocks);
  } else {
    options_.readahead_blocks = 0;
  }
}

StatusOr<std::unique_ptr<PlainFs>> PlainFs::Mount(BlockDevice* device,
                                                  const MountOptions& options) {
  std::vector<uint8_t> buf(device->block_size());
  STEGFS_RETURN_IF_ERROR(device->ReadBlock(0, buf.data()));
  STEGFS_ASSIGN_OR_RETURN(Superblock sb,
                          Superblock::DecodeFrom(buf.data(), buf.size()));
  if (sb.block_size != device->block_size() ||
      sb.num_blocks != device->num_blocks()) {
    return Status::Corruption("superblock geometry does not match device");
  }
  // Resolve the async engine before construction so an explicit kUring
  // request fails the mount loudly instead of degrading.
  std::unique_ptr<AsyncBlockDevice> engine;
  switch (options.io_engine) {
    case IoEngine::kSync:
      break;
    case IoEngine::kThreads:
      engine = std::make_unique<ThreadPoolAsyncDevice>(device);
      break;
    case IoEngine::kUring: {
      auto uring = UringBlockDevice::Attach(
          device->file_descriptor(), device->block_size(),
          device->num_blocks());
      if (!uring.ok()) return uring.status();
      engine = std::move(uring).value();
      break;
    }
    case IoEngine::kAuto: {
      auto uring = UringBlockDevice::Attach(
          device->file_descriptor(), device->block_size(),
          device->num_blocks());
      if (uring.ok()) {
        engine = std::move(uring).value();
      } else {
        engine = std::make_unique<ThreadPoolAsyncDevice>(device);
      }
      break;
    }
  }
  std::unique_ptr<PlainFs> fs(
      new PlainFs(device, sb, options, std::move(engine)));
  STEGFS_ASSIGN_OR_RETURN(fs->bitmap_,
                          BlockBitmap::Load(fs->cache_.get(), fs->layout_));
  STEGFS_RETURN_IF_ERROR(fs->inodes_.Load());
  if (!fs->inodes_.Get(kRootInode)->InUse()) {
    return Status::Corruption("root directory inode missing");
  }
  return fs;
}

PlainFs::~PlainFs() { (void)Flush(); }

StatusOr<std::vector<std::string>> PlainFs::SplitPath(
    const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (j > i) {
      std::string part = path.substr(i, j - i);
      if (part == "." || part == "..") {
        return Status::InvalidArgument("relative components not supported");
      }
      parts.push_back(std::move(part));
    }
    i = j + 1;
  }
  return parts;
}

StatusOr<uint32_t> PlainFs::ResolvePath(const std::string& path) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kDirectory) {
      return Status::NotFound("not a directory on path: " + path);
    }
    STEGFS_ASSIGN_OR_RETURN(ino, dir_ops_.Lookup(*node, part, &store_));
  }
  return ino;
}

StatusOr<std::pair<uint32_t, std::string>> PlainFs::ResolveParent(
    const std::string& path) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Status::InvalidArgument("path has no leaf component: " + path);
  }
  uint32_t ino = kRootInode;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kDirectory) {
      return Status::NotFound("not a directory on path: " + path);
    }
    STEGFS_ASSIGN_OR_RETURN(ino, dir_ops_.Lookup(*node, parts[i], &store_));
  }
  if (inodes_.Get(ino)->type != InodeType::kDirectory) {
    return Status::NotFound("parent is not a directory: " + path);
  }
  return std::make_pair(ino, parts.back());
}

Status PlainFs::CreateFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return CreateFileLocked(path);
}

Status PlainFs::CreateFileLocked(const std::string& path) {
  STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  Inode* dir = inodes_.Get(parent.first);
  if (dir_ops_.Lookup(*dir, parent.second, &store_).ok()) {
    return Status::AlreadyExists("file exists: " + path);
  }
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, inodes_.Allocate(InodeType::kFile));
  bool dirty = false;
  Status s = dir_ops_.Add(dir, parent.second, ino, &store_, &allocator_,
                          &dirty);
  if (!s.ok()) {
    (void)inodes_.FreeInode(ino);
    return s;
  }
  inodes_.MarkDirty(parent.first);
  return Status::OK();
}

Status PlainFs::WriteFile(const std::string& path, const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ExistsLocked(path)) {
    STEGFS_RETURN_IF_ERROR(CreateFileLocked(path));
  }
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(
      file_io_.Truncate(node, 0, &store_, &allocator_, &dirty));
  STEGFS_RETURN_IF_ERROR(
      file_io_.Write(node, 0, data, &store_, &allocator_, &dirty));
  inodes_.MarkDirty(ino);
  return Status::OK();
}

StatusOr<std::string> PlainFs::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  std::string out;
  STEGFS_RETURN_IF_ERROR(file_io_.Read(*node, 0, node->size, &store_, &out));
  return out;
}

Status PlainFs::ReadAt(const std::string& path, uint64_t offset, uint64_t n,
                       std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  return file_io_.Read(*node, offset, n, &store_, out);
}

Status PlainFs::WriteAt(const std::string& path, uint64_t offset,
                        const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(
      file_io_.Write(node, offset, data, &store_, &allocator_, &dirty));
  inodes_.MarkDirty(ino);
  return Status::OK();
}

Status PlainFs::TruncateFile(const std::string& path, uint64_t new_size) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(
      file_io_.Truncate(node, new_size, &store_, &allocator_, &dirty));
  inodes_.MarkDirty(ino);
  return Status::OK();
}

Status PlainFs::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  Inode* dir = inodes_.Get(parent.first);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino,
                          dir_ops_.Lookup(*dir, parent.second, &store_));
  Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(
      file_io_.Truncate(node, 0, &store_, &allocator_, &dirty));
  STEGFS_RETURN_IF_ERROR(
      dir_ops_.Remove(dir, parent.second, &store_, &allocator_, &dirty));
  inodes_.MarkDirty(parent.first);
  return inodes_.FreeInode(ino);
}

Status PlainFs::MkDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  Inode* dir = inodes_.Get(parent.first);
  if (dir_ops_.Lookup(*dir, parent.second, &store_).ok()) {
    return Status::AlreadyExists("entry exists: " + path);
  }
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino,
                          inodes_.Allocate(InodeType::kDirectory));
  bool dirty = false;
  Status s = dir_ops_.Add(dir, parent.second, ino, &store_, &allocator_,
                          &dirty);
  if (!s.ok()) {
    (void)inodes_.FreeInode(ino);
    return s;
  }
  inodes_.MarkDirty(parent.first);
  return Status::OK();
}

Status PlainFs::RmDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  Inode* dir = inodes_.Get(parent.first);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino,
                          dir_ops_.Lookup(*dir, parent.second, &store_));
  Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kDirectory) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  STEGFS_ASSIGN_OR_RETURN(bool empty, dir_ops_.Empty(*node, &store_));
  if (!empty) {
    return Status::FailedPrecondition("directory not empty: " + path);
  }
  bool dirty = false;
  STEGFS_RETURN_IF_ERROR(
      file_io_.Truncate(node, 0, &store_, &allocator_, &dirty));
  STEGFS_RETURN_IF_ERROR(
      dir_ops_.Remove(dir, parent.second, &store_, &allocator_, &dirty));
  inodes_.MarkDirty(parent.first);
  return inodes_.FreeInode(ino);
}

StatusOr<std::vector<DirEntry>> PlainFs::List(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kDirectory) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  return dir_ops_.List(*node, &store_);
}

StatusOr<FileInfo> PlainFs::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  FileInfo info;
  info.type = node->type;
  info.size = node->size;
  info.mtime = node->mtime;
  info.inode = ino;
  return info;
}

bool PlainFs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return ExistsLocked(path);
}

bool PlainFs::ExistsLocked(const std::string& path) {
  return ResolvePath(path).ok();
}

Status PlainFs::PersistMeta() {
  std::lock_guard<std::mutex> lock(mu_);
  return PersistMetaLocked();
}

Status PlainFs::PersistMetaLocked() {
  STEGFS_RETURN_IF_ERROR(bitmap_.Store(cache_.get()));
  return inodes_.PersistAll();
}

Status PlainFs::Flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(PersistMetaLocked());
  }
  return cache_->Flush();
}

Status PlainFs::CollectReferencedBlocks(std::vector<uint8_t>* referenced) {
  std::lock_guard<std::mutex> lock(mu_);
  referenced->assign(layout_.num_blocks, 0);
  for (uint64_t b = 0; b < layout_.data_start; ++b) {
    (*referenced)[b] = 1;  // metadata region
  }
  std::vector<uint64_t> blocks;
  for (uint32_t ino = 0; ino < inodes_.count(); ++ino) {
    const Inode* node = inodes_.Get(ino);
    if (!node->InUse()) continue;
    blocks.clear();
    STEGFS_RETURN_IF_ERROR(
        file_io_.mapper()->CollectBlocks(*node, &store_, &blocks));
    for (uint64_t b : blocks) {
      if (b < layout_.num_blocks) (*referenced)[b] = 1;
    }
  }
  return Status::OK();
}

uint64_t PlainFs::TotalPlainBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint32_t ino = 0; ino < inodes_.count(); ++ino) {
    const Inode* node = inodes_.Get(ino);
    if (node->InUse() && node->type == InodeType::kFile) total += node->size;
  }
  return total;
}

}  // namespace stegfs
