#include "fs/plain_fs.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

#include "blockdev/thread_pool_async_device.h"
#include "blockdev/uring_block_device.h"
#include "fault/retrying_async_device.h"

namespace stegfs {

namespace {

uint32_t AutoInodeCount(uint64_t num_blocks) {
  uint64_t n = num_blocks / 64;
  n = std::max<uint64_t>(n, 256);
  n = std::min<uint64_t>(n, 262144);
  return static_cast<uint32_t>(n);
}

}  // namespace

Status PlainFs::Format(BlockDevice* device, const FormatOptions& options) {
  Superblock sb;
  sb.block_size = device->block_size();
  sb.num_blocks = device->num_blocks();
  sb.num_inodes = options.num_inodes != 0 ? options.num_inodes
                                          : AutoInodeCount(sb.num_blocks);
  sb.steg_formatted = options.steg_formatted ? 1 : 0;
  sb.steg = options.steg;
  sb.dummy_seed = options.dummy_seed;

  Layout layout = sb.ComputeLayout();
  if (layout.data_start + options.journal_blocks + 16 > sb.num_blocks) {
    return Status::InvalidArgument("volume too small for metadata regions");
  }
  if (options.journal_blocks != 0) {
    if (options.journal_blocks < 8) {
      return Status::InvalidArgument("journal region must be >= 8 blocks");
    }
    // The ring sits at the front of the data region, bitmap-marked like
    // metadata so no allocator ever hands its blocks out.
    sb.journal_start = layout.data_start;
    sb.journal_blocks = options.journal_blocks;
  }

  std::vector<uint8_t> buf(sb.block_size, 0);
  STEGFS_RETURN_IF_ERROR(sb.EncodeTo(buf.data(), buf.size()));
  STEGFS_RETURN_IF_ERROR(device->WriteBlock(0, buf.data()));

  // Bitmap + inode table through a throwaway cache.
  BufferCache cache(device, 256, WritePolicy::kWriteBack);
  BlockBitmap bitmap(layout);
  for (uint32_t j = 0; j < sb.journal_blocks; ++j) {
    STEGFS_RETURN_IF_ERROR(bitmap.Allocate(sb.journal_start + j));
  }
  InodeTable inodes(&cache, layout);
  inodes.InitEmpty();
  // Root directory at inode 0.
  auto root = inodes.Allocate(InodeType::kDirectory);
  if (!root.ok()) return root.status();
  assert(root.value() == kRootInode);
  STEGFS_RETURN_IF_ERROR(bitmap.Store(&cache));
  STEGFS_RETURN_IF_ERROR(inodes.PersistAll());
  // Put the journal ring at its resting state (keyed scrub noise) so a
  // fresh volume is bit-identical to a recovered one — the deniability
  // baseline the crash suite compares against.
  if (sb.journal_blocks != 0) {
    const uint64_t seed =
        journal::ScrubSeed(sb.dummy_seed.data(), sb.dummy_seed.size());
    std::vector<uint8_t> noise(sb.block_size);
    for (uint32_t j = 0; j < sb.journal_blocks; ++j) {
      journal::ScrubNoise(seed, j, noise.data(), noise.size());
      STEGFS_RETURN_IF_ERROR(
          device->WriteBlock(sb.journal_start + j, noise.data()));
    }
  }
  return cache.Flush();
}

PlainFs::PlainFs(BlockDevice* device, const Superblock& super,
                 const MountOptions& options,
                 std::unique_ptr<AsyncBlockDevice> engine)
    : device_(device),
      super_(super),
      layout_(super.ComputeLayout()),
      options_(options),
      retry_device_(options.fault.enabled
                        ? std::make_unique<fault::RetryingBlockDevice>(
                              device, options.fault.retry, &fault_stats_,
                              &health_)
                        : nullptr),
      cache_(std::make_unique<BufferCache>(
          retry_device_ ? static_cast<BlockDevice*>(retry_device_.get())
                        : device,
          options.cache_blocks, options.write_policy, options.cache_shards)),
      bitmap_(layout_),
      inodes_(cache_.get(), layout_),
      file_io_(layout_.block_size),
      store_(cache_.get()),
      dir_ops_(&file_io_),
      allocator_(this),
      rng_(options.rng_seed),
      io_engine_(std::move(engine)) {
  // The async half of the retry layer wraps whatever engine Mount
  // resolved. The thread-pool engine reaches the device directly (not
  // through retry_device_), so each async fault is retried exactly once —
  // by this wrapper, from its own worker thread.
  if (options.fault.enabled && io_engine_ != nullptr) {
    io_engine_ = std::make_unique<fault::RetryingAsyncDevice>(
        std::move(io_engine_), options.fault.retry, &fault_stats_, &health_);
  }
  if (io_engine_ != nullptr) cache_->SetAsyncEngine(io_engine_.get());
  // Readahead needs a second core: even with an async engine (a pure
  // submitter — no thread ever blocks on the background read) the
  // completion inserts and hit copies still run on the demand path's only
  // core, and the bench measures that as a 0.6x LOSS at window 16 on one
  // core (sweep in BENCH_io.json). So the option degrades to off on
  // single-core hosts — observably: readahead_blocks() returns the
  // effective window and steg_stats surfaces readahead_active/window.
  // With two or more cores the engine carries the prefetch I/O; only
  // engineless mounts need the one-thread pool.
  if (options.readahead_blocks > 0 &&
      std::thread::hardware_concurrency() >= 2) {
    if (io_engine_ == nullptr) {
      prefetch_pool_ = std::make_unique<concurrency::ThreadPool>(1);
      cache_->SetPrefetchPool(prefetch_pool_.get());
    }
    file_io_.set_readahead(options.readahead_blocks);
  } else {
    options_.readahead_blocks = 0;
  }
  // Park-at-record: the moment a transaction writes a directory data or
  // indirect pointer block (the recorder fires BEFORE the bytes reach the
  // cache), the block joins the journal's parked set — no concurrent
  // flusher (another batch's ordered flush, a hidden commit barrier) can
  // push the uncommitted image to the device before this transaction's
  // record commits. The batch releases the refs when the txn resolves.
  txn_meta_blocks_.on_record = [this](uint64_t block) {
    if (!txn_active_ || journal_ == nullptr) return;
    if (txn_parked_.insert(block).second) journal_->AddParked(block);
  };
}

StatusOr<std::unique_ptr<PlainFs>> PlainFs::Mount(BlockDevice* device,
                                                  const MountOptions& options) {
  // Mount-time I/O (superblock probe, journal replay/scrub) runs before
  // the fs's own retry decorator exists, but it deserves the same
  // transient-fault absorption — a faulty-carrier mount shouldn't die on
  // one EIO blip during recovery. Stats/health aren't constructed yet, so
  // this throwaway wrapper retries silently.
  fault::RetryingBlockDevice mount_retry(device, options.fault.retry,
                                         /*stats=*/nullptr,
                                         /*health=*/nullptr);
  BlockDevice* mount_dev =
      options.fault.enabled ? static_cast<BlockDevice*>(&mount_retry) : device;
  std::vector<uint8_t> buf(device->block_size());
  STEGFS_RETURN_IF_ERROR(mount_dev->ReadBlock(0, buf.data()));
  STEGFS_ASSIGN_OR_RETURN(Superblock sb,
                          Superblock::DecodeFrom(buf.data(), buf.size()));
  if (sb.block_size != device->block_size() ||
      sb.num_blocks != device->num_blocks()) {
    return Status::Corruption("superblock geometry does not match device");
  }
  if (options.durability == Durability::kJournal) {
    if (sb.journal_blocks == 0) {
      return Status::FailedPrecondition(
          "durable mount requires a journal region (format with "
          "journal_blocks > 0)");
    }
    if (options.write_policy != WritePolicy::kWriteBack) {
      return Status::InvalidArgument(
          "incompatible write policy: Durability::kJournal requires "
          "WritePolicy::kWriteBack — write-through pushes every metadata "
          "write to the device immediately, defeating the ordered "
          "hold-back that keeps uncommitted images off disk until their "
          "journal record commits");
    }
  }
  // Set, not set-if-false: a device is shared across sequential mounts
  // (benches re-mount the same volume), so each mount must establish its
  // own flush durability explicitly.
  device->set_flush_durability(options.durable_flush
                                   ? FlushDurability::kDurable
                                   : FlushDurability::kCacheOnly);
  // Replay + scrub the journal ring on the RAW device before any cache
  // or bitmap state is built on top of it. Runs whenever the volume has a
  // ring, whatever this mount's durability: committed-but-uncheckpointed
  // state from a crashed durable mount must never be silently dropped.
  journal::RecoveryReport recovery_report;
  if (sb.journal_blocks != 0) {
    STEGFS_ASSIGN_OR_RETURN(recovery_report,
                            journal::JournalRecovery::Run(mount_dev, sb));
  }
  // Resolve the async engine before construction so an explicit kUring
  // request fails the mount loudly instead of degrading.
  std::unique_ptr<AsyncBlockDevice> engine;
  switch (options.io_engine) {
    case IoEngine::kSync:
      break;
    case IoEngine::kThreads:
      engine = std::make_unique<ThreadPoolAsyncDevice>(device);
      break;
    case IoEngine::kUring: {
      auto uring = UringBlockDevice::Attach(
          device->file_descriptor(), device->block_size(),
          device->num_blocks());
      if (!uring.ok()) return uring.status();
      engine = std::move(uring).value();
      break;
    }
    case IoEngine::kAuto: {
      auto uring = UringBlockDevice::Attach(
          device->file_descriptor(), device->block_size(),
          device->num_blocks());
      if (uring.ok()) {
        engine = std::move(uring).value();
      } else {
        engine = std::make_unique<ThreadPoolAsyncDevice>(device);
      }
      break;
    }
  }
  std::unique_ptr<PlainFs> fs(
      new PlainFs(device, sb, options, std::move(engine)));
  fs->recovery_report_ = recovery_report;
  if (options.durability == Durability::kJournal) {
    // One volume-wide write barrier, shared by journal batch commits and
    // hidden-object commit barriers: concurrent arrivals coalesce into a
    // single drain + write-back + sync round.
    PlainFs* raw = fs.get();
    fs->commit_barrier_ =
        std::make_unique<concurrency::GroupBarrier>([raw]() -> Status {
          if (raw->io_engine_ != nullptr) raw->io_engine_->Drain();
          STEGFS_RETURN_IF_ERROR(raw->cache_->WriteBackDirty());
          return raw->data_device()->Sync();
        });
    fs->journal_ = std::make_unique<journal::WriteAheadJournal>(
        fs->data_device(), fs->cache_.get(), fs->io_engine_.get(),
        sb.journal_start,
        sb.journal_blocks,
        journal::ScrubSeed(sb.dummy_seed.data(), sb.dummy_seed.size()),
        fs->commit_barrier_.get());
    fs->journal_->set_group_window(
        std::chrono::microseconds(options.group_commit_window_us));
  }
  STEGFS_ASSIGN_OR_RETURN(fs->bitmap_,
                          BlockBitmap::Load(fs->cache_.get(), fs->layout_));
  STEGFS_RETURN_IF_ERROR(fs->inodes_.Load());
  if (!fs->inodes_.Get(kRootInode)->InUse()) {
    return Status::Corruption("root directory inode missing");
  }
  fs->RegisterInstruments();
  return fs;
}

void PlainFs::RegisterInstruments() {
  op_metrics_.RegisterWith(&registry_);
  fault_stats_.RegisterWith(&registry_);
  health_.RegisterWith(&registry_);
  cache_->RegisterMetrics(&registry_);
  obs::GlobalCryptoMetrics().RegisterWith(&registry_);
  if (const DeviceMetrics* dm = device_->device_metrics()) {
    dm->RegisterWith(&registry_);
  }
  if (io_engine_ != nullptr) io_engine_->RegisterMetrics(&registry_);
  if (journal_ != nullptr) journal_->RegisterMetrics(&registry_);
  if (commit_barrier_ != nullptr) commit_barrier_->RegisterMetrics(&registry_);
}

PlainFs::~PlainFs() { (void)Flush(); }

PlainFs::TxnGuard::TxnGuard(PlainFs* fs)
    : fs_(fs), recorder_(&fs->store_, &fs->txn_meta_blocks_) {
  fs_->BeginTxnLocked();
}

PlainFs::TxnGuard::~TxnGuard() {
  if (!committed_) fs_->AbortTxnLocked();
}

Status PlainFs::TxnGuard::Commit(PendingCommit* pc) {
  // A persistent write fault can trip read-only BETWEEN the operation's
  // CheckWritable gate and here (the faulting write happened inside this
  // very transaction). Committing on top of a device that just proved it
  // cannot persist writes is how silent corruption happens — so don't:
  // leave committed_ unset and let the destructor abort, which applies
  // the deferred frees directly (the PR 5 machinery).
  if (fs_->txn_active_ &&
      fs_->health_.state() == fault::MountHealth::kReadOnly) {
    return fs_->health_.CheckWritable();
  }
  committed_ = true;
  return fs_->CommitTxnLocked(pc);
}

BlockStore* PlainFs::TxnGuard::dir_store() {
  return fs_->txn_active_ ? static_cast<BlockStore*>(&recorder_)
                          : static_cast<BlockStore*>(&fs_->store_);
}

void PlainFs::BeginTxnLocked() {
  if (journal_ == nullptr) return;
  txn_active_ = true;
  txn_meta_blocks_.clear();
  txn_parked_.clear();
  txn_pending_frees_.clear();
  file_io_.mapper()->set_meta_recorder(&txn_meta_blocks_);
}

void PlainFs::AbortTxnLocked() {
  if (!txn_active_) return;
  file_io_.mapper()->set_meta_recorder(nullptr);
  txn_active_ = false;
  // The operation failed mid-flight: apply its deferred frees directly
  // (legacy semantics — in-memory state is already best-effort here) and
  // hand back the park refs the record hook took.
  for (uint64_t b : txn_pending_frees_) (void)bitmap_.Free(b);
  txn_pending_frees_.clear();
  if (journal_ != nullptr) journal_->ReleaseParked(txn_parked_);
  txn_parked_.clear();
  txn_meta_blocks_.clear();
}

Status PlainFs::CommitTxnLocked(PendingCommit* pc) {
  if (!txn_active_) return Status::OK();
  file_io_.mapper()->set_meta_recorder(nullptr);
  txn_active_ = false;
  // Deferred frees move to the PendingCommit — they apply only after the
  // batch resolves (FinishCommit), so the record carries the PRE-free
  // bitmap. A crash inside the commit window then leaks the blocks as
  // permanently-abandoned (fsck counts them; the paper's abandoned-block
  // concept absorbs them) instead of risking a replayed record freeing a
  // block a later transaction already reallocated and wrote.
  pc->frees = std::move(txn_pending_frees_);
  txn_pending_frees_.clear();

  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> bitmap_images;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> inode_images;
  bitmap_.CollectDirty(&bitmap_images);
  inodes_.CollectDirty(&inode_images);

  // The parked set this transaction hands to the batch: the dir/pointer
  // blocks the record hook parked plus the inode-table images captured
  // below. Inode images must be parked from stage until the batch's
  // record commits — a concurrent flusher pushing them home early would
  // make an UNCOMMITTED operation partially visible after a crash. Bitmap
  // images are deliberately NOT parked: the hidden commit protocol needs
  // bitmap bytes flushable at any moment (data + bitmap durable before
  // the anchor references them), and flushing an uncommitted allocation
  // early is harmless — frees are deferred, so a crash turns it into an
  // abandoned block at worst.
  std::unordered_set<uint64_t> parked = std::move(txn_parked_);
  txn_parked_.clear();

  auto fail = [&](const Status& s) {
    journal_->ReleaseParked(parked);
    // CollectDirty consumed the dirty flags; nothing was staged, so the
    // in-memory state must still reach disk through the ordinary
    // Store/PersistAll path. Coarse re-marking is fine on an error path.
    bitmap_.MarkAllDirty();
    inodes_.MarkAllDirty();
    return s;
  };

  std::vector<journal::JournalEntry> entries;
  entries.reserve(bitmap_images.size() + inode_images.size() +
                  txn_meta_blocks_.blocks.size());
  for (auto& [block, image] : bitmap_images) {
    journal::JournalEntry e;
    e.block = block;
    e.image = std::move(image);
    entries.push_back(std::move(e));
  }
  for (auto& [block, image] : inode_images) {
    if (parked.insert(block).second) journal_->AddParked(block);
    journal::JournalEntry e;
    e.block = block;
    e.image = std::move(image);
    entries.push_back(std::move(e));
  }
  // Directory data + pointer blocks: their post-op bytes are sitting in
  // the cache (every dir/pointer write goes through it); read them back
  // as the after-images.
  std::unordered_set<uint64_t> seen;
  for (uint64_t b : txn_meta_blocks_.blocks) {
    if (!seen.insert(b).second) continue;  // dedup
    journal::JournalEntry e;
    e.block = b;
    e.image.resize(layout_.block_size);
    Status s = cache_->Read(b, e.image.data());
    if (!s.ok()) return fail(s);
    entries.push_back(std::move(e));
  }
  txn_meta_blocks_.clear();
  // Stage and return; the operation waits the batch out via FinishCommit
  // AFTER dropping mu_ — the batch leader must never need the metadata
  // lock (Fsck holds it while waiting for batch quiescence). Park refs
  // transfer to the journal with the stage.
  pc->ticket = journal_->Stage(std::move(entries), std::move(parked));
  return Status::OK();
}

Status PlainFs::FinishCommit(PendingCommit pc) {
  if (!pc.ticket.valid() && pc.frees.empty()) return Status::OK();
  Status s = pc.ticket.Wait();
  std::lock_guard<std::mutex> lock(mu_);
  // Frees apply on success AND failure: the in-memory inode state already
  // dropped these blocks (operations do not roll back in-memory effects
  // on a failed commit), so keeping the bits set would leak them from the
  // live allocator too.
  Status free_status;
  for (uint64_t b : pc.frees) {
    Status freed = bitmap_.Free(b);
    if (!freed.ok() && free_status.ok()) free_status = freed;
  }
  if (!s.ok()) {
    // The batch failed after the images' dirty flags were consumed at
    // capture; re-mark so the state still reaches the device through
    // ordinary write-back / the next clean unmount.
    bitmap_.MarkAllDirty();
    inodes_.MarkAllDirty();
    return s;
  }
  return free_status;
}

StatusOr<std::vector<std::string>> PlainFs::SplitPath(
    const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  std::vector<std::string> parts;
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (j > i) {
      std::string part = path.substr(i, j - i);
      if (part == "." || part == "..") {
        return Status::InvalidArgument("relative components not supported");
      }
      parts.push_back(std::move(part));
    }
    i = j + 1;
  }
  return parts;
}

StatusOr<uint32_t> PlainFs::ResolvePath(const std::string& path) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  uint32_t ino = kRootInode;
  for (const std::string& part : parts) {
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kDirectory) {
      return Status::NotFound("not a directory on path: " + path);
    }
    STEGFS_ASSIGN_OR_RETURN(ino, dir_ops_.Lookup(*node, part, &store_));
  }
  return ino;
}

StatusOr<std::pair<uint32_t, std::string>> PlainFs::ResolveParent(
    const std::string& path) {
  STEGFS_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Status::InvalidArgument("path has no leaf component: " + path);
  }
  uint32_t ino = kRootInode;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kDirectory) {
      return Status::NotFound("not a directory on path: " + path);
    }
    STEGFS_ASSIGN_OR_RETURN(ino, dir_ops_.Lookup(*node, parts[i], &store_));
  }
  if (inodes_.Get(ino)->type != InodeType::kDirectory) {
    return Status::NotFound("parent is not a directory: " + path);
  }
  return std::make_pair(ino, parts.back());
}

Status PlainFs::CreateFile(const std::string& path) {
  obs::Span span(&trace_, "fs.create", "fs");
  obs::LatencyTimer timer(&op_metrics_.create_ns);
  PendingCommit pc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(health_.CheckWritable());
    TxnGuard txn(this);
    STEGFS_RETURN_IF_ERROR(CreateFileLocked(path, txn.dir_store()));
    STEGFS_RETURN_IF_ERROR(txn.Commit(&pc));
  }
  return FinishCommit(std::move(pc));
}

Status PlainFs::CreateFileLocked(const std::string& path,
                                 BlockStore* dir_store) {
  STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
  Inode* dir = inodes_.Get(parent.first);
  if (dir_ops_.Lookup(*dir, parent.second, &store_).ok()) {
    return Status::AlreadyExists("file exists: " + path);
  }
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, inodes_.Allocate(InodeType::kFile));
  bool dirty = false;
  Status s = dir_ops_.Add(dir, parent.second, ino, dir_store, &allocator_,
                          &dirty);
  if (!s.ok()) {
    (void)inodes_.FreeInode(ino);
    return s;
  }
  inodes_.MarkDirty(parent.first);
  return Status::OK();
}

Status PlainFs::WriteFile(const std::string& path, const std::string& data) {
  obs::Span span(&trace_, "fs.write_file", "fs");
  obs::LatencyTimer timer(&op_metrics_.write_ns);
  PendingCommit pc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(health_.CheckWritable());
    TxnGuard txn(this);
    if (!ExistsLocked(path)) {
      STEGFS_RETURN_IF_ERROR(CreateFileLocked(path, txn.dir_store()));
    }
    STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kFile) {
      return Status::InvalidArgument("not a regular file: " + path);
    }
    bool dirty = false;
    STEGFS_RETURN_IF_ERROR(
        file_io_.Truncate(node, 0, &store_, &allocator_, &dirty));
    STEGFS_RETURN_IF_ERROR(
        file_io_.Write(node, 0, data, &store_, &allocator_, &dirty));
    inodes_.MarkDirty(ino);
    STEGFS_RETURN_IF_ERROR(txn.Commit(&pc));
  }
  return FinishCommit(std::move(pc));
}

StatusOr<std::string> PlainFs::ReadFile(const std::string& path) {
  obs::Span span(&trace_, "fs.read_file", "fs");
  obs::LatencyTimer timer(&op_metrics_.read_ns);
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  std::string out;
  STEGFS_RETURN_IF_ERROR(file_io_.Read(*node, 0, node->size, &store_, &out));
  return out;
}

Status PlainFs::ReadAt(const std::string& path, uint64_t offset, uint64_t n,
                       std::string* out) {
  obs::Span span(&trace_, "fs.read_at", "fs");
  obs::LatencyTimer timer(&op_metrics_.read_ns);
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kFile) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  return file_io_.Read(*node, offset, n, &store_, out);
}

Status PlainFs::WriteAt(const std::string& path, uint64_t offset,
                        const std::string& data) {
  obs::Span span(&trace_, "fs.write_at", "fs");
  obs::LatencyTimer timer(&op_metrics_.write_at_ns);
  PendingCommit pc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(health_.CheckWritable());
    TxnGuard txn(this);
    STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kFile) {
      return Status::InvalidArgument("not a regular file: " + path);
    }
    bool dirty = false;
    STEGFS_RETURN_IF_ERROR(
        file_io_.Write(node, offset, data, &store_, &allocator_, &dirty));
    inodes_.MarkDirty(ino);
    STEGFS_RETURN_IF_ERROR(txn.Commit(&pc));
  }
  return FinishCommit(std::move(pc));
}

Status PlainFs::TruncateFile(const std::string& path, uint64_t new_size) {
  obs::Span span(&trace_, "fs.truncate", "fs");
  obs::LatencyTimer timer(&op_metrics_.truncate_ns);
  PendingCommit pc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(health_.CheckWritable());
    TxnGuard txn(this);
    STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kFile) {
      return Status::InvalidArgument("not a regular file: " + path);
    }
    bool dirty = false;
    STEGFS_RETURN_IF_ERROR(
        file_io_.Truncate(node, new_size, &store_, &allocator_, &dirty));
    inodes_.MarkDirty(ino);
    STEGFS_RETURN_IF_ERROR(txn.Commit(&pc));
  }
  return FinishCommit(std::move(pc));
}

Status PlainFs::Unlink(const std::string& path) {
  obs::Span span(&trace_, "fs.unlink", "fs");
  obs::LatencyTimer timer(&op_metrics_.unlink_ns);
  PendingCommit pc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(health_.CheckWritable());
    TxnGuard txn(this);
    STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
    Inode* dir = inodes_.Get(parent.first);
    STEGFS_ASSIGN_OR_RETURN(uint32_t ino,
                            dir_ops_.Lookup(*dir, parent.second, &store_));
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kFile) {
      return Status::InvalidArgument("not a regular file: " + path);
    }
    bool dirty = false;
    STEGFS_RETURN_IF_ERROR(
        file_io_.Truncate(node, 0, &store_, &allocator_, &dirty));
    STEGFS_RETURN_IF_ERROR(dir_ops_.Remove(dir, parent.second,
                                           txn.dir_store(), &allocator_,
                                           &dirty));
    inodes_.MarkDirty(parent.first);
    STEGFS_RETURN_IF_ERROR(inodes_.FreeInode(ino));
    STEGFS_RETURN_IF_ERROR(txn.Commit(&pc));
  }
  return FinishCommit(std::move(pc));
}

Status PlainFs::MkDir(const std::string& path) {
  obs::Span span(&trace_, "fs.mkdir", "fs");
  obs::LatencyTimer timer(&op_metrics_.mkdir_ns);
  PendingCommit pc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(health_.CheckWritable());
    TxnGuard txn(this);
    STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
    Inode* dir = inodes_.Get(parent.first);
    if (dir_ops_.Lookup(*dir, parent.second, &store_).ok()) {
      return Status::AlreadyExists("entry exists: " + path);
    }
    STEGFS_ASSIGN_OR_RETURN(uint32_t ino,
                            inodes_.Allocate(InodeType::kDirectory));
    bool dirty = false;
    Status s = dir_ops_.Add(dir, parent.second, ino, txn.dir_store(),
                            &allocator_, &dirty);
    if (!s.ok()) {
      (void)inodes_.FreeInode(ino);
      return s;
    }
    inodes_.MarkDirty(parent.first);
    STEGFS_RETURN_IF_ERROR(txn.Commit(&pc));
  }
  return FinishCommit(std::move(pc));
}

Status PlainFs::RmDir(const std::string& path) {
  obs::Span span(&trace_, "fs.rmdir", "fs");
  obs::LatencyTimer timer(&op_metrics_.rmdir_ns);
  PendingCommit pc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(health_.CheckWritable());
    TxnGuard txn(this);
    STEGFS_ASSIGN_OR_RETURN(auto parent, ResolveParent(path));
    Inode* dir = inodes_.Get(parent.first);
    STEGFS_ASSIGN_OR_RETURN(uint32_t ino,
                            dir_ops_.Lookup(*dir, parent.second, &store_));
    Inode* node = inodes_.Get(ino);
    if (node->type != InodeType::kDirectory) {
      return Status::InvalidArgument("not a directory: " + path);
    }
    STEGFS_ASSIGN_OR_RETURN(bool empty, dir_ops_.Empty(*node, &store_));
    if (!empty) {
      return Status::FailedPrecondition("directory not empty: " + path);
    }
    bool dirty = false;
    STEGFS_RETURN_IF_ERROR(
        file_io_.Truncate(node, 0, &store_, &allocator_, &dirty));
    STEGFS_RETURN_IF_ERROR(dir_ops_.Remove(dir, parent.second,
                                           txn.dir_store(), &allocator_,
                                           &dirty));
    inodes_.MarkDirty(parent.first);
    STEGFS_RETURN_IF_ERROR(inodes_.FreeInode(ino));
    STEGFS_RETURN_IF_ERROR(txn.Commit(&pc));
  }
  return FinishCommit(std::move(pc));
}

StatusOr<std::vector<DirEntry>> PlainFs::List(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  if (node->type != InodeType::kDirectory) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  return dir_ops_.List(*node, &store_);
}

StatusOr<FileInfo> PlainFs::Stat(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STEGFS_ASSIGN_OR_RETURN(uint32_t ino, ResolvePath(path));
  const Inode* node = inodes_.Get(ino);
  FileInfo info;
  info.type = node->type;
  info.size = node->size;
  info.mtime = node->mtime;
  info.inode = ino;
  return info;
}

bool PlainFs::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return ExistsLocked(path);
}

bool PlainFs::ExistsLocked(const std::string& path) {
  return ResolvePath(path).ok();
}

Status PlainFs::PersistMeta() {
  std::lock_guard<std::mutex> lock(mu_);
  return PersistMetaLocked();
}

Status PlainFs::PersistMetaLocked() {
  STEGFS_RETURN_IF_ERROR(bitmap_.Store(cache_.get()));
  return inodes_.PersistAll();
}

Status PlainFs::Flush() {
  obs::Span span(&trace_, "fs.flush", "fs");
  obs::LatencyTimer timer(&op_metrics_.flush_ns);
  {
    std::lock_guard<std::mutex> lock(mu_);
    STEGFS_RETURN_IF_ERROR(PersistMetaLocked());
  }
  return cache_->Flush();
}

Status PlainFs::CollectReferencedBlocks(std::vector<uint8_t>* referenced) {
  std::lock_guard<std::mutex> lock(mu_);
  return CollectReferencedBlocksLocked(referenced);
}

Status PlainFs::CollectReferencedBlocksLocked(
    std::vector<uint8_t>* referenced) {
  referenced->assign(layout_.num_blocks, 0);
  for (uint64_t b = 0; b < layout_.data_start; ++b) {
    (*referenced)[b] = 1;  // metadata region
  }
  for (uint32_t j = 0; j < super_.journal_blocks; ++j) {
    (*referenced)[super_.journal_start + j] = 1;  // journal ring
  }
  std::vector<uint64_t> blocks;
  for (uint32_t ino = 0; ino < inodes_.count(); ++ino) {
    const Inode* node = inodes_.Get(ino);
    if (!node->InUse()) continue;
    blocks.clear();
    STEGFS_RETURN_IF_ERROR(
        file_io_.mapper()->CollectBlocks(*node, &store_, &blocks));
    for (uint64_t b : blocks) {
      if (b < layout_.num_blocks) (*referenced)[b] = 1;
    }
  }
  return Status::OK();
}

Status PlainFs::Fsck(journal::FsckReport* out) {
  *out = journal::FsckReport();
  // Snapshot and repair under ONE continuous hold of the metadata lock:
  // dropping it in between would let a concurrent unlink free a block
  // the stale snapshot still shows referenced, and the "repair" would
  // permanently leak it while reporting false corruption.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> referenced;
  STEGFS_RETURN_IF_ERROR(CollectReferencedBlocksLocked(&referenced));
  // One bitmap snapshot instead of a per-block lock acquisition — this
  // loop runs over every block while holding the metadata lock.
  const std::vector<uint8_t> bits = bitmap_.SnapshotBits();
  for (uint64_t b = 0; b < layout_.num_blocks; ++b) {
    const bool ref = referenced[b] != 0;
    const bool alloc = (bits[b / 8] >> (b % 8)) & 1;
    if (ref) {
      ++out->referenced_blocks;
      if (!alloc) {
        // The dangerous tear: live plain data on a block the allocators
        // consider free. Re-mark it before anything overwrites it.
        STEGFS_RETURN_IF_ERROR(bitmap_.Allocate(b));
        ++out->repaired_refs;
        out->clean = false;
      }
    } else if (alloc) {
      // Abandoned, dummy, hidden, or crash-leaked: indistinguishable by
      // design. Counted, never reclaimed.
      ++out->unaccounted_blocks;
    }
  }
  if (out->repaired_refs > 0) {
    STEGFS_RETURN_IF_ERROR(PersistMetaLocked());
    STEGFS_RETURN_IF_ERROR(cache_->Flush());
  }
  if (super_.journal_blocks != 0) {
    if (journal_ != nullptr) {
      // Push the CURRENT metadata state durably before touching the
      // ring: any live record found there (a poisoned journal) is then
      // provably redundant and safe to scrub without replay.
      STEGFS_RETURN_IF_ERROR(PersistMetaLocked());
      STEGFS_RETURN_IF_ERROR(cache_->WriteBackDirty());
      STEGFS_RETURN_IF_ERROR(data_device()->Sync());
      STEGFS_RETURN_IF_ERROR(journal_->ScrubStaleRecords(
          &out->journal_live_records, &out->journal_scrubbed_blocks));
    } else {
      uint64_t torn = 0;
      STEGFS_ASSIGN_OR_RETURN(
          std::vector<journal::JournalRecord> live,
          journal::JournalRecovery::Scan(device_, super_, &torn));
      out->journal_live_records = live.size();
      if (!live.empty()) {
        // Should be impossible after a mount (recovery replays + scrubs);
        // re-running recovery here would double-apply stale images over
        // newer in-memory state, so just report.
        out->clean = false;
      }
    }
    if (out->journal_live_records > 0) out->clean = false;
  }
  return Status::OK();
}

uint64_t PlainFs::TotalPlainBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (uint32_t ino = 0; ino < inodes_.count(); ++ino) {
    const Inode* node = inodes_.Get(ino);
    if (node->InUse() && node->type == InodeType::kFile) total += node->size;
  }
  return total;
}

}  // namespace stegfs
