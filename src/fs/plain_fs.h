// PlainFs: the ext2-like file system substrate — superblock, block bitmap,
// central directory (inode table), hierarchical directories and regular
// files. On its own it is the "native Linux file system" baseline of the
// paper (CleanDisk when mounted with contiguous allocation, FragDisk with
// 8-block-fragment allocation). StegFS (src/core) composes with it: hidden
// objects share this bitmap and buffer cache but never appear in this inode
// table.
//
// Thread-safety: every public path/metadata operation runs under one
// internal mutex, so a mounted PlainFs may be driven from many threads.
// This coarse lock is deliberate — plain-namespace traffic is not the
// concurrency-critical path (hidden-object I/O is, and it only meets this
// lock in PersistMeta/Flush). The component accessors (cache(), bitmap())
// return objects with their own internal locking; inode_table() and
// file_io() are for maintenance flows (backup, escrow) that require a
// quiescent volume.
#ifndef STEGFS_FS_PLAIN_FS_H_
#define STEGFS_FS_PLAIN_FS_H_

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "blockdev/async_block_device.h"
#include "blockdev/block_device.h"
#include "cache/buffer_cache.h"
#include "fault/health.h"
#include "fault/retry_policy.h"
#include "fault/retrying_device.h"
#include "concurrency/group_barrier.h"
#include "concurrency/thread_pool.h"
#include "fs/bitmap.h"
#include "fs/directory.h"
#include "fs/file_io.h"
#include "fs/inode.h"
#include "fs/layout.h"
#include "journal/journal.h"
#include "journal/recovery.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

struct FormatOptions {
  // 0 = auto-size (one inode per 64 data blocks, clamped to [256, 262144]).
  uint32_t num_inodes = 0;
  // StegFS parameters recorded in the superblock (Table 1 defaults).
  StegParams steg;
  // Set by StegFS::Format after random-filling the volume.
  bool steg_formatted = false;
  std::array<uint8_t, 32> dummy_seed = {};
  // Write-ahead journal ring size in blocks (0 = no journal region — the
  // historical format, and what every pre-journal volume decodes as).
  // The region is carved from the front of the data region and bitmap-
  // marked like metadata. Mounting with Durability::kJournal requires it.
  uint32_t journal_blocks = 0;
};

// Which async I/O engine a mount attaches to its buffer cache (see
// docs/ARCHITECTURE.md "I/O engine").
enum class IoEngine {
  // No engine: the PR 3 call-and-wait batch path. The default — every
  // seeded test relies on its exact locking and accounting.
  kSync,
  // Portable fallback: ThreadPoolAsyncDevice over the mount's device.
  kThreads,
  // io_uring over the device's file descriptor; Mount fails with
  // NotSupported when the kernel or the device cannot provide it.
  kUring,
  // io_uring when attachable (FileBlockDevice + capable kernel), else the
  // thread-pool fallback. What the C API mounts use.
  kAuto,
};

// Crash-consistency level of a mount.
enum class Durability {
  // Historical behavior: metadata lives in memory until Flush, nothing is
  // transactional. The default — every seeded test pins this path.
  kNone,
  // Every metadata-mutating operation commits through the write-ahead
  // journal (ordered data flush -> record -> checkpoint -> scrub; see
  // src/journal/journal.h) and hidden objects use the dual-header commit
  // protocol. Requires a volume formatted with a journal region and the
  // kWriteBack cache policy (write-through defeats the ordered hold-back).
  kJournal,
};

struct MountOptions {
  AllocPolicy policy = AllocPolicy::kContiguous;
  size_t cache_blocks = 4096;
  // 0 = auto (one shard per 64 cache blocks, clamped to [1, 16]). The
  // multithreaded benches force 16 on small caches to keep miss I/O
  // overlappable.
  size_t cache_shards = 0;
  WritePolicy write_policy = WritePolicy::kWriteBack;
  uint64_t rng_seed = 0x5742;  // placement randomness (deterministic)
  // Readahead window in blocks after every extent read (plain AND hidden
  // files). 0 = off (the default, preserving seeded cache behavior).
  // When > 0 the prefetcher arms on multi-core hosts only — on one core
  // the prefetch work steals the demand path's cycles (bench-measured
  // 0.6x at window 16, even with an async engine) — carried by the async
  // engine when one is attached, else by a one-thread prefetch pool. The
  // effective state is observable: readahead_blocks() and steg_stats'
  // readahead_active/readahead_window report the degradation.
  uint32_t readahead_blocks = 0;
  // Async engine for the data path (hidden extents pipeline decrypt with
  // in-flight device I/O through it; see block_store.h).
  IoEngine io_engine = IoEngine::kSync;
  // Crash-consistency level (see Durability).
  Durability durability = Durability::kNone;
  // Group-commit linger window (kJournal mounts): how long a transaction
  // that reaches an IDLE journal waits for other sessions' transactions
  // before leading its own batch, in microseconds. 0 (the default) means
  // lead immediately — single-threaded workloads keep PR 5's exact event
  // sequence and latency. Concurrent sessions batch even at 0 (followers
  // accumulate while a batch runs); the window only widens the very first
  // batch of a burst. See src/journal/journal.h.
  uint32_t group_commit_window_us = 0;
  // When false, downgrades the device's Flush() from fdatasync to
  // page-cache-only (FileBlockDevice only; in-memory devices ignore it).
  // The throughput benches opt out so PR 4-comparable numbers don't pay
  // an fdatasync per flush; journal BARRIERS (Sync) are never affected.
  bool durable_flush = true;
  // Fault tolerance (see src/fault/ and docs/ARCHITECTURE.md §11). When
  // enabled — the default; the wrapper is byte-transparent and its
  // fault-free fast path adds no clock reads or allocations — a
  // RetryingBlockDevice sits between the cache/journal and the device,
  // and a RetryingAsyncDevice wraps the async engine, re-issuing
  // transient/timeout-classed I/O under `retry` before any fault
  // surfaces. Persistent/corruption faults and retry exhaustion feed the
  // mount's HealthMonitor (kHealthy -> kDegraded -> kReadOnly).
  struct FaultToleranceOptions {
    bool enabled = true;
    fault::RetryPolicy retry;
  } fault;
};

struct FileInfo {
  InodeType type = InodeType::kFree;
  uint64_t size = 0;
  uint64_t mtime = 0;
  uint32_t inode = 0;
};

// Per-operation latency histograms of the plain namespace (one instance
// per mount, registered under stegfs_fs_*_seconds). Hidden-namespace ops
// get their own pair in StegFs; everything below them — cache, device,
// journal, crypto — is shared and registered once.
struct FsOpMetrics {
  obs::Histogram create_ns;
  obs::Histogram write_ns;  // WriteFile (truncate-and-rewrite)
  obs::Histogram write_at_ns;
  obs::Histogram read_ns;  // ReadFile and ReadAt
  obs::Histogram truncate_ns;
  obs::Histogram unlink_ns;
  obs::Histogram mkdir_ns;
  obs::Histogram rmdir_ns;
  obs::Histogram flush_ns;

  void RegisterWith(obs::MetricsRegistry* reg) const {
    reg->RegisterHistogram("stegfs_fs_create_seconds",
                           "Plain CreateFile latency", &create_ns);
    reg->RegisterHistogram("stegfs_fs_write_seconds",
                           "Plain WriteFile latency", &write_ns);
    reg->RegisterHistogram("stegfs_fs_write_at_seconds",
                           "Plain WriteAt latency", &write_at_ns);
    reg->RegisterHistogram("stegfs_fs_read_seconds",
                           "Plain ReadFile/ReadAt latency", &read_ns);
    reg->RegisterHistogram("stegfs_fs_truncate_seconds",
                           "Plain TruncateFile latency", &truncate_ns);
    reg->RegisterHistogram("stegfs_fs_unlink_seconds",
                           "Plain Unlink latency", &unlink_ns);
    reg->RegisterHistogram("stegfs_fs_mkdir_seconds", "Plain MkDir latency",
                           &mkdir_ns);
    reg->RegisterHistogram("stegfs_fs_rmdir_seconds", "Plain RmDir latency",
                           &rmdir_ns);
    reg->RegisterHistogram("stegfs_fs_flush_seconds", "Plain Flush latency",
                           &flush_ns);
  }
};

class PlainFs {
 public:
  // Writes a fresh file system onto `device` (superblock + bitmap + empty
  // central directory with a root directory). Does not touch data blocks.
  static Status Format(BlockDevice* device, const FormatOptions& options);

  // Mounts a formatted device.
  static StatusOr<std::unique_ptr<PlainFs>> Mount(BlockDevice* device,
                                                  const MountOptions& options);

  ~PlainFs();
  PlainFs(const PlainFs&) = delete;
  PlainFs& operator=(const PlainFs&) = delete;

  // --- Path API (absolute, '/'-separated) ------------------------------
  // Creates an empty regular file; AlreadyExists if the name is taken.
  Status CreateFile(const std::string& path);
  // Creates (or replaces the contents of) the file at `path`.
  Status WriteFile(const std::string& path, const std::string& data);
  StatusOr<std::string> ReadFile(const std::string& path);
  // Appends up to `n` bytes from `offset` to *out, stopping at end of
  // file; holes read as zeros.
  Status ReadAt(const std::string& path, uint64_t offset, uint64_t n,
                std::string* out);
  // Writes at `offset`, allocating blocks and growing the file as needed.
  Status WriteAt(const std::string& path, uint64_t offset,
                 const std::string& data);
  // Shrinks the file, freeing blocks past the new end; growing sets the
  // size without allocating (the gap reads as zeros).
  Status TruncateFile(const std::string& path, uint64_t new_size);
  Status Unlink(const std::string& path);
  Status MkDir(const std::string& path);
  Status RmDir(const std::string& path);
  StatusOr<std::vector<DirEntry>> List(const std::string& path);
  StatusOr<FileInfo> Stat(const std::string& path);
  bool Exists(const std::string& path);

  // Writes back all metadata and flushes the cache to the device.
  Status Flush();

  // --- Introspection & StegFS integration ------------------------------
  BlockDevice* device() { return device_; }
  // The device the cache and journal actually write through: the retry
  // decorator when fault tolerance is on, else the raw device.
  BlockDevice* data_device() {
    return retry_device_ ? static_cast<BlockDevice*>(retry_device_.get())
                         : device_;
  }
  // The mount's degraded-mode state machine and fault/retry counters.
  fault::HealthMonitor* health() { return &health_; }
  fault::FaultStats* fault_stats() { return &fault_stats_; }
  const Superblock& superblock() const { return super_; }
  const Layout& layout() const { return layout_; }
  BlockBitmap* bitmap() { return &bitmap_; }
  BufferCache* cache() { return cache_.get(); }
  InodeTable* inode_table() { return &inodes_; }
  FileIo* file_io() { return &file_io_; }
  Xoshiro* rng() { return &rng_; }
  AllocPolicy policy() const { return options_.policy; }
  // Effective readahead window: 0 when off, including when the option was
  // requested but no async engine attached AND the host has no spare core
  // for the prefetch thread (steg_stats surfaces this as
  // readahead_active/readahead_window so the degradation is observable).
  uint32_t readahead_blocks() const { return options_.readahead_blocks; }
  // The attached async engine (nullptr on kSync mounts) and its name
  // ("sync" when none).
  AsyncBlockDevice* io_engine() const { return io_engine_.get(); }
  const char* io_engine_name() const {
    return io_engine_ ? io_engine_->engine_name() : "sync";
  }

  // The mount's observability surface: every component instrument of this
  // volume (cache, device, engine, journal, crypto, per-op histograms)
  // registers here at Mount, and per-op trace spans land in the recorder.
  // Both live ONLY in process memory — no block on the volume ever
  // carries metrics or trace bytes (the deniability rule).
  obs::MetricsRegistry* metrics_registry() { return &registry_; }
  obs::TraceRecorder* trace_recorder() { return &trace_; }
  FsOpMetrics* op_metrics() { return &op_metrics_; }

  // The mount's journal (nullptr on Durability::kNone mounts) and what
  // mount-time recovery found/replayed.
  journal::WriteAheadJournal* journal() { return journal_.get(); }
  // The volume-wide write-barrier coalescer (nullptr on kNone mounts):
  // journal batch barriers and hidden commit barriers share device syncs
  // through it.
  concurrency::GroupBarrier* commit_barrier() { return commit_barrier_.get(); }
  bool durable() const { return journal_ != nullptr; }
  const journal::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  // Online scrubber: cross-checks the bitmap against plain reachability
  // (repairing the dangerous direction: referenced-but-unmarked blocks),
  // counts unaccounted allocations (abandoned + dummy + hidden + crash
  // leaks — indistinguishable by design, so reported, never reclaimed),
  // and verifies the journal ring holds no live records (scrubbing any
  // stragglers). Safe on a live volume; takes the metadata lock.
  Status Fsck(journal::FsckReport* out);

  // Marks every block reachable from the central directory (data + indirect
  // blocks of every inode) in `referenced` (sized num_blocks). Metadata
  // region blocks are also marked, as is the journal region. Backup uses
  // the complement of this set.
  Status CollectReferencedBlocks(std::vector<uint8_t>* referenced);

  // Persists bitmap + inode table through the cache (no device flush).
  Status PersistMeta();

  // Effective bytes stored in plain files (for space experiments).
  uint64_t TotalPlainBytes() const;

 private:
  class PolicyAllocator : public BlockAllocator {
   public:
    PolicyAllocator(PlainFs* fs) : fs_(fs) {}
    StatusOr<uint64_t> AllocateBlock() override {
      return fs_->bitmap_.AllocateByPolicy(fs_->options_.policy, &fs_->rng_);
    }
    Status FreeBlock(uint64_t block) override {
      // Inside a journal transaction the free is DEFERRED to commit:
      // clearing the bit early would let this same operation reallocate
      // and overwrite a block the committed on-disk state still
      // references — the exact in-place tear the journal exists to stop.
      if (fs_->txn_active_) {
        fs_->txn_pending_frees_.push_back(block);
        return Status::OK();
      }
      return fs_->bitmap_.Free(block);
    }

   private:
    PlainFs* fs_;
  };

  PlainFs(BlockDevice* device, const Superblock& super,
          const MountOptions& options,
          std::unique_ptr<AsyncBlockDevice> engine);

  // Everything an operation hands to FinishCommit after dropping the
  // metadata lock: the staged transaction's ticket (invalid on kNone
  // mounts and metadata-free operations) and the operation's deferred
  // block frees. Frees apply only after the commit RESOLVES — the record
  // must carry the pre-free bitmap, or a crash in the commit window could
  // let a replay hand a still-referenced block to the next allocation.
  struct PendingCommit {
    journal::WriteAheadJournal::CommitTicket ticket;
    std::vector<uint64_t> frees;
  };

  // RAII journal transaction for one metadata-mutating operation (no-op
  // on kNone mounts). Construction arms the mapper's meta recorder and
  // the deferred-free list; Commit() captures the after-images (bitmap +
  // inode-table dirty blocks, recorded directory/pointer blocks) and
  // STAGES them for group commit, filling *pc — the operation then calls
  // FinishCommit(pc) after releasing the metadata lock to wait out the
  // batch. Destruction without Commit aborts, applying deferred frees
  // directly (legacy semantics for failed ops).
  class TxnGuard {
   public:
    explicit TxnGuard(PlainFs* fs);
    ~TxnGuard();
    Status Commit(PendingCommit* pc);
    // Directory mutations route their store through this so directory
    // data blocks land in the record (plain store when not journaling).
    BlockStore* dir_store();

   private:
    PlainFs* fs_;
    RecordingStore recorder_;
    bool committed_ = false;
  };
  friend class TxnGuard;

  void BeginTxnLocked();
  Status CommitTxnLocked(PendingCommit* pc);
  void AbortTxnLocked();
  // Second half of every mutating operation, called WITHOUT mu_: waits
  // for the staged transaction's batch to resolve (possibly leading it),
  // then applies the deferred frees under mu_. On a failed commit the
  // captured images are re-marked dirty so the in-memory state still
  // reaches the device through ordinary write-back.
  Status FinishCommit(PendingCommit pc);

  // Splits "/a/b/c" into components; rejects empty/relative paths.
  static StatusOr<std::vector<std::string>> SplitPath(const std::string& path);
  // *Locked variants assume mu_ is already held (public methods compose
  // from these instead of re-locking).
  Status CreateFileLocked(const std::string& path, BlockStore* dir_store);
  Status PersistMetaLocked();
  Status CollectReferencedBlocksLocked(std::vector<uint8_t>* referenced);
  bool ExistsLocked(const std::string& path);
  // Inode of the directory containing `path` plus the leaf name.
  StatusOr<std::pair<uint32_t, std::string>> ResolveParent(
      const std::string& path);
  StatusOr<uint32_t> ResolvePath(const std::string& path);

  // Publishes every component instrument of this mount into registry_
  // (constructor-built components; Mount adds the journal's after it
  // exists).
  void RegisterInstruments();

  // Declared first (destroyed last): registry_ holds raw pointers into
  // the components below, trace_ is written by their spans.
  obs::MetricsRegistry registry_;
  obs::TraceRecorder trace_;
  FsOpMetrics op_metrics_;
  // Fault-tolerance state, declared before the retry decorators that hold
  // pointers into it (and destroyed after them).
  fault::FaultStats fault_stats_;
  fault::HealthMonitor health_;

  // Guards the path/metadata machinery below (inodes_, dir_ops_, file_io_
  // state, rng_). The cache and bitmap carry their own locks.
  mutable std::mutex mu_;
  BlockDevice* device_;
  Superblock super_;
  Layout layout_;
  MountOptions options_;
  // Declared before cache_ (and the journal built on it): both write
  // through this decorator, so it must outlive them. nullptr when
  // options_.fault.enabled is false.
  std::unique_ptr<fault::RetryingBlockDevice> retry_device_;
  std::unique_ptr<BufferCache> cache_;
  BlockBitmap bitmap_;
  InodeTable inodes_;
  FileIo file_io_;
  CacheBlockStore store_;
  Directory dir_ops_;
  PolicyAllocator allocator_;
  Xoshiro rng_;
  // Journal state (kJournal mounts only). Txn fields are guarded by mu_
  // (every transaction runs under the metadata lock). The commit barrier
  // is declared before the journal (which holds a raw pointer to it) so
  // it is destroyed after; it coalesces the volume's write barriers —
  // journal batch barriers and hidden-object commit barriers share
  // device syncs through it.
  std::unique_ptr<concurrency::GroupBarrier> commit_barrier_;
  std::unique_ptr<journal::WriteAheadJournal> journal_;
  journal::RecoveryReport recovery_report_;
  bool txn_active_ = false;
  MetaWriteLog txn_meta_blocks_;  // dir data + pointer blocks; its
                                  // on_record hook parks each block in the
                                  // journal before the write lands
  std::unordered_set<uint64_t> txn_parked_;  // blocks THIS txn parked
  std::vector<uint64_t> txn_pending_frees_;  // deferred until commit
  // Declared last: the pool's tasks touch cache_, so it must be drained
  // and joined (destroyed) before the cache goes away.
  std::unique_ptr<concurrency::ThreadPool> prefetch_pool_;
  // Declared after the pool (destroyed first): engine destructors drain,
  // and in-flight completion handlers touch cache_ — which outlives both.
  std::unique_ptr<AsyncBlockDevice> io_engine_;
};

}  // namespace stegfs

#endif  // STEGFS_FS_PLAIN_FS_H_
