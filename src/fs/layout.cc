#include "fs/layout.h"

#include <cstring>

#include "util/coding.h"

namespace stegfs {

Layout Layout::Compute(uint32_t block_size, uint64_t num_blocks,
                       uint32_t num_inodes) {
  Layout l;
  l.block_size = block_size;
  l.num_blocks = num_blocks;
  l.num_inodes = num_inodes;
  l.bitmap_start = 1;
  uint64_t bits_per_block = static_cast<uint64_t>(block_size) * 8;
  l.bitmap_blocks = (num_blocks + bits_per_block - 1) / bits_per_block;
  l.inode_table_start = l.bitmap_start + l.bitmap_blocks;
  uint64_t inode_bytes = static_cast<uint64_t>(num_inodes) * kInodeSize;
  l.inode_table_blocks = (inode_bytes + block_size - 1) / block_size;
  l.data_start = l.inode_table_start + l.inode_table_blocks;
  return l;
}

Status Superblock::EncodeTo(uint8_t* buf, size_t size) const {
  if (size < 512) {
    return Status::InvalidArgument("superblock buffer too small");
  }
  std::memset(buf, 0, size);
  uint8_t* p = buf;
  EncodeFixed32(p, magic);
  p += 4;
  EncodeFixed32(p, version);
  p += 4;
  EncodeFixed32(p, block_size);
  p += 4;
  EncodeFixed64(p, num_blocks);
  p += 8;
  EncodeFixed32(p, num_inodes);
  p += 4;
  *p++ = steg_formatted;
  // StegParams: abandoned fraction stored as parts-per-million.
  EncodeFixed32(p, static_cast<uint32_t>(steg.abandoned_fraction * 1e6));
  p += 4;
  EncodeFixed32(p, steg.free_pool_min);
  p += 4;
  EncodeFixed32(p, steg.free_pool_max);
  p += 4;
  EncodeFixed32(p, steg.dummy_file_count);
  p += 4;
  EncodeFixed64(p, steg.dummy_file_avg_bytes);
  p += 8;
  std::memcpy(p, dummy_seed.data(), dummy_seed.size());
  p += dummy_seed.size();
  EncodeFixed64(p, journal_start);
  p += 8;
  EncodeFixed32(p, journal_blocks);
  return Status::OK();
}

StatusOr<Superblock> Superblock::DecodeFrom(const uint8_t* buf, size_t size) {
  if (size < 512) {
    return Status::InvalidArgument("superblock buffer too small");
  }
  Superblock sb;
  const uint8_t* p = buf;
  sb.magic = DecodeFixed32(p);
  p += 4;
  if (sb.magic != kSuperblockMagic) {
    return Status::Corruption("bad superblock magic");
  }
  sb.version = DecodeFixed32(p);
  p += 4;
  if (sb.version != kFormatVersion) {
    return Status::Corruption("unsupported format version");
  }
  sb.block_size = DecodeFixed32(p);
  p += 4;
  sb.num_blocks = DecodeFixed64(p);
  p += 8;
  sb.num_inodes = DecodeFixed32(p);
  p += 4;
  sb.steg_formatted = *p++;
  sb.steg.abandoned_fraction = DecodeFixed32(p) / 1e6;
  p += 4;
  sb.steg.free_pool_min = DecodeFixed32(p);
  p += 4;
  sb.steg.free_pool_max = DecodeFixed32(p);
  p += 4;
  sb.steg.dummy_file_count = DecodeFixed32(p);
  p += 4;
  sb.steg.dummy_file_avg_bytes = DecodeFixed64(p);
  p += 8;
  std::memcpy(sb.dummy_seed.data(), p, sb.dummy_seed.size());
  p += sb.dummy_seed.size();
  // Pre-journal volumes carry zeros here (no journal region).
  sb.journal_start = DecodeFixed64(p);
  p += 8;
  sb.journal_blocks = DecodeFixed32(p);

  if (sb.block_size < 512 || (sb.block_size & (sb.block_size - 1)) != 0) {
    return Status::Corruption("superblock has invalid block size");
  }
  if (sb.num_blocks == 0 || sb.num_inodes == 0) {
    return Status::Corruption("superblock has empty geometry");
  }
  Layout l = sb.ComputeLayout();
  if (l.data_start >= sb.num_blocks) {
    return Status::Corruption("metadata regions exceed volume size");
  }
  if (sb.journal_blocks != 0 &&
      (sb.journal_start < l.data_start ||
       sb.journal_start + sb.journal_blocks > sb.num_blocks)) {
    return Status::Corruption("journal region outside the data region");
  }
  return sb;
}

}  // namespace stegfs
