#include "fs/inode.h"

#include <cassert>
#include <cstring>

#include "util/coding.h"

namespace stegfs {

void Inode::EncodeTo(uint8_t buf[kInodeSize]) const {
  std::memset(buf, 0, kInodeSize);
  buf[0] = static_cast<uint8_t>(type);
  EncodeFixed64(buf + 8, size);
  EncodeFixed64(buf + 16, mtime);
  for (uint32_t i = 0; i < kDirectPointers; ++i) {
    EncodeFixed32(buf + 24 + i * 4, direct[i]);
  }
  EncodeFixed32(buf + 24 + kDirectPointers * 4, single_indirect);
  EncodeFixed32(buf + 28 + kDirectPointers * 4, double_indirect);
}

Inode Inode::DecodeFrom(const uint8_t buf[kInodeSize]) {
  Inode ino;
  ino.type = static_cast<InodeType>(buf[0]);
  ino.size = DecodeFixed64(buf + 8);
  ino.mtime = DecodeFixed64(buf + 16);
  for (uint32_t i = 0; i < kDirectPointers; ++i) {
    ino.direct[i] = DecodeFixed32(buf + 24 + i * 4);
  }
  ino.single_indirect = DecodeFixed32(buf + 24 + kDirectPointers * 4);
  ino.double_indirect = DecodeFixed32(buf + 28 + kDirectPointers * 4);
  return ino;
}

InodeTable::InodeTable(BufferCache* cache, const Layout& layout)
    : cache_(cache), layout_(layout) {
  inodes_.resize(layout_.num_inodes);
  dirty_blocks_.assign(layout_.inode_table_blocks, false);
}

void InodeTable::InitEmpty() {
  std::fill(inodes_.begin(), inodes_.end(), Inode());
  std::fill(dirty_blocks_.begin(), dirty_blocks_.end(), true);
}

Status InodeTable::Load() {
  std::vector<uint8_t> buf(layout_.block_size);
  const uint32_t per_block = InodesPerBlock();
  for (uint64_t b = 0; b < layout_.inode_table_blocks; ++b) {
    STEGFS_RETURN_IF_ERROR(
        cache_->Read(layout_.inode_table_start + b, buf.data()));
    for (uint32_t i = 0; i < per_block; ++i) {
      uint64_t ino = b * per_block + i;
      if (ino >= layout_.num_inodes) break;
      inodes_[ino] = Inode::DecodeFrom(buf.data() + i * kInodeSize);
    }
  }
  std::fill(dirty_blocks_.begin(), dirty_blocks_.end(), false);
  return Status::OK();
}

Inode* InodeTable::Get(uint32_t ino) {
  assert(ino < inodes_.size());
  return &inodes_[ino];
}

const Inode* InodeTable::Get(uint32_t ino) const {
  assert(ino < inodes_.size());
  return &inodes_[ino];
}

StatusOr<uint32_t> InodeTable::Allocate(InodeType type) {
  assert(type != InodeType::kFree);
  for (uint32_t i = 0; i < layout_.num_inodes; ++i) {
    uint32_t ino = (alloc_cursor_ + i) % layout_.num_inodes;
    if (!inodes_[ino].InUse()) {
      inodes_[ino] = Inode();
      inodes_[ino].type = type;
      alloc_cursor_ = ino + 1;
      dirty_blocks_[ino / InodesPerBlock()] = true;
      return ino;
    }
  }
  return Status::NoSpace("inode table full");
}

Status InodeTable::FreeInode(uint32_t ino) {
  if (ino >= layout_.num_inodes) {
    return Status::InvalidArgument("inode index out of range");
  }
  if (!inodes_[ino].InUse()) {
    return Status::FailedPrecondition("double free of inode");
  }
  inodes_[ino] = Inode();
  dirty_blocks_[ino / InodesPerBlock()] = true;
  return Status::OK();
}

Status InodeTable::Persist(uint32_t ino) {
  if (ino >= layout_.num_inodes) {
    return Status::InvalidArgument("inode index out of range");
  }
  dirty_blocks_[ino / InodesPerBlock()] = true;
  return PersistAll();
}

Status InodeTable::PersistAll() {
  std::vector<uint8_t> buf(layout_.block_size, 0);
  const uint32_t per_block = InodesPerBlock();
  for (uint64_t b = 0; b < layout_.inode_table_blocks; ++b) {
    if (!dirty_blocks_[b]) continue;
    std::memset(buf.data(), 0, buf.size());
    for (uint32_t i = 0; i < per_block; ++i) {
      uint64_t ino = b * per_block + i;
      if (ino >= layout_.num_inodes) break;
      inodes_[ino].EncodeTo(buf.data() + i * kInodeSize);
    }
    STEGFS_RETURN_IF_ERROR(
        cache_->Write(layout_.inode_table_start + b, buf.data()));
    dirty_blocks_[b] = false;
  }
  return Status::OK();
}

void InodeTable::CollectDirty(
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>>* out) {
  const uint32_t per_block = InodesPerBlock();
  for (uint64_t b = 0; b < layout_.inode_table_blocks; ++b) {
    if (!dirty_blocks_[b]) continue;
    std::vector<uint8_t> image(layout_.block_size, 0);
    for (uint32_t i = 0; i < per_block; ++i) {
      uint64_t ino = b * per_block + i;
      if (ino >= layout_.num_inodes) break;
      inodes_[ino].EncodeTo(image.data() + i * kInodeSize);
    }
    out->emplace_back(layout_.inode_table_start + b, std::move(image));
    dirty_blocks_[b] = false;
  }
}

uint32_t InodeTable::used_count() const {
  uint32_t used = 0;
  for (const Inode& ino : inodes_) {
    if (ino.InUse()) ++used;
  }
  return used;
}

}  // namespace stegfs
