// Directory entry format and operations, layered on FileIo.
//
// Directories are files of fixed 64-byte entries:
//   [u32 inode][u8 name_len][59-byte name]
// name_len == 0 marks a free slot. Fixed-size entries keep lookup and
// removal trivially crash-safe (one-block read-modify-write per entry).
#ifndef STEGFS_FS_DIRECTORY_H_
#define STEGFS_FS_DIRECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fs/file_io.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

inline constexpr uint32_t kDirEntrySize = 64;
inline constexpr uint32_t kMaxNameLen = kDirEntrySize - 5;

struct DirEntry {
  std::string name;
  uint32_t inode = 0;
};

// Stateless directory operations over a directory inode.
class Directory {
 public:
  explicit Directory(FileIo* io) : io_(io) {}

  // Finds `name`; returns its inode number.
  StatusOr<uint32_t> Lookup(const Inode& dir, const std::string& name,
                            BlockStore* store);

  // Adds an entry (no duplicate checking — callers Lookup first).
  Status Add(Inode* dir, const std::string& name, uint32_t ino,
             BlockStore* store, BlockAllocator* alloc, bool* inode_dirty);

  // Removes the entry for `name`; NotFound if absent.
  Status Remove(Inode* dir, const std::string& name, BlockStore* store,
                BlockAllocator* alloc, bool* inode_dirty);

  // All live entries.
  StatusOr<std::vector<DirEntry>> List(const Inode& dir, BlockStore* store);

  // True when the directory has no live entries.
  StatusOr<bool> Empty(const Inode& dir, BlockStore* store);

 private:
  FileIo* io_;
};

}  // namespace stegfs

#endif  // STEGFS_FS_DIRECTORY_H_
