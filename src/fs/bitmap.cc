#include "fs/bitmap.h"

#include <cassert>
#include <cstring>
#include <mutex>

namespace stegfs {

BlockBitmap::BlockBitmap(BlockBitmap&& other) noexcept
    : layout_(other.layout_),
      bits_(std::move(other.bits_)),
      dirty_blocks_(std::move(other.dirty_blocks_)),
      free_count_(other.free_count_),
      contiguous_cursor_(other.contiguous_cursor_),
      fragment_cursor_(other.fragment_cursor_),
      fragment_remaining_(other.fragment_remaining_),
      fragment_next_(other.fragment_next_) {}

BlockBitmap& BlockBitmap::operator=(BlockBitmap&& other) noexcept {
  layout_ = other.layout_;
  bits_ = std::move(other.bits_);
  dirty_blocks_ = std::move(other.dirty_blocks_);
  free_count_ = other.free_count_;
  contiguous_cursor_ = other.contiguous_cursor_;
  fragment_cursor_ = other.fragment_cursor_;
  fragment_remaining_ = other.fragment_remaining_;
  fragment_next_ = other.fragment_next_;
  return *this;
}

BlockBitmap::BlockBitmap(const Layout& layout) : layout_(layout) {
  bits_.assign((layout_.num_blocks + 7) / 8, 0);
  // A freshly built bitmap is entirely dirty: every on-disk bitmap block
  // must be (re)written on the first Store, or whatever the device held
  // before (e.g. StegFS's random fill) would be read back as allocation
  // state on the next mount.
  dirty_blocks_.assign(layout_.bitmap_blocks, true);
  free_count_ = layout_.num_blocks;
  MarkMetadataRegion();
  contiguous_cursor_ = layout_.data_start;
}

void BlockBitmap::MarkMetadataRegion() {
  for (uint64_t b = 0; b < layout_.data_start; ++b) {
    if (!TestBit(b)) {
      SetBit(b, true);
      --free_count_;
    }
  }
}

void BlockBitmap::SetBit(uint64_t block, bool value) {
  uint8_t mask = static_cast<uint8_t>(1u << (block % 8));
  if (value) {
    bits_[block / 8] |= mask;
  } else {
    bits_[block / 8] &= static_cast<uint8_t>(~mask);
  }
  uint64_t device_block = (block / 8) / layout_.block_size;
  if (device_block < dirty_blocks_.size()) dirty_blocks_[device_block] = true;
}

StatusOr<BlockBitmap> BlockBitmap::Load(BufferCache* cache,
                                        const Layout& layout) {
  BlockBitmap bm(layout);
  std::vector<uint8_t> buf(layout.block_size);
  uint64_t remaining = bm.bits_.size();
  for (uint64_t i = 0; i < layout.bitmap_blocks; ++i) {
    STEGFS_RETURN_IF_ERROR(cache->Read(layout.bitmap_start + i, buf.data()));
    size_t take = static_cast<size_t>(
        std::min<uint64_t>(remaining, layout.block_size));
    std::memcpy(bm.bits_.data() + i * layout.block_size, buf.data(), take);
    remaining -= take;
  }
  // Recompute the free count from the loaded bits.
  bm.free_count_ = 0;
  for (uint64_t b = 0; b < layout.num_blocks; ++b) {
    if (!bm.TestBit(b)) ++bm.free_count_;
  }
  std::fill(bm.dirty_blocks_.begin(), bm.dirty_blocks_.end(), false);
  return bm;
}

Status BlockBitmap::Store(BufferCache* cache) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  std::vector<uint8_t> buf(layout_.block_size, 0);
  uint64_t total = bits_.size();
  for (uint64_t i = 0; i < layout_.bitmap_blocks; ++i) {
    if (!dirty_blocks_[i]) continue;
    size_t offset = static_cast<size_t>(i * layout_.block_size);
    size_t take = static_cast<size_t>(std::min<uint64_t>(
        total - offset, layout_.block_size));
    std::memset(buf.data(), 0, buf.size());
    std::memcpy(buf.data(), bits_.data() + offset, take);
    STEGFS_RETURN_IF_ERROR(cache->Write(layout_.bitmap_start + i, buf.data()));
    dirty_blocks_[i] = false;
  }
  return Status::OK();
}

void BlockBitmap::CollectDirty(
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>>* out) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  uint64_t total = bits_.size();
  for (uint64_t i = 0; i < layout_.bitmap_blocks; ++i) {
    if (!dirty_blocks_[i]) continue;
    size_t offset = static_cast<size_t>(i * layout_.block_size);
    size_t take = static_cast<size_t>(
        std::min<uint64_t>(total - offset, layout_.block_size));
    std::vector<uint8_t> image(layout_.block_size, 0);
    std::memcpy(image.data(), bits_.data() + offset, take);
    out->emplace_back(layout_.bitmap_start + i, std::move(image));
    dirty_blocks_[i] = false;
  }
}

std::vector<uint8_t> BlockBitmap::SnapshotBits() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return bits_;
}

void BlockBitmap::MarkAllDirty() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  std::fill(dirty_blocks_.begin(), dirty_blocks_.end(), true);
}

bool BlockBitmap::IsAllocated(uint64_t block) const {
  assert(block < layout_.num_blocks);
  std::shared_lock<std::shared_mutex> lock(mu_);
  return TestBit(block);
}

uint64_t BlockBitmap::free_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return free_count_;
}

Status BlockBitmap::Allocate(uint64_t block) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (block >= layout_.num_blocks) {
    return Status::InvalidArgument("block out of range");
  }
  if (TestBit(block)) {
    return Status::FailedPrecondition("double allocation of block");
  }
  SetBit(block, true);
  --free_count_;
  return Status::OK();
}

Status BlockBitmap::Free(uint64_t block) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (block >= layout_.num_blocks) {
    return Status::InvalidArgument("block out of range");
  }
  if (block < layout_.data_start) {
    return Status::InvalidArgument("cannot free metadata block");
  }
  if (!TestBit(block)) {
    return Status::FailedPrecondition("double free of block");
  }
  SetBit(block, false);
  ++free_count_;
  return Status::OK();
}

StatusOr<uint64_t> BlockBitmap::AllocateFirstFit(uint64_t start_hint) {
  if (free_count_ == 0) return Status::NoSpace("volume full");
  uint64_t span = layout_.num_blocks - layout_.data_start;
  uint64_t start = start_hint < layout_.data_start ? layout_.data_start
                                                   : start_hint;
  for (uint64_t i = 0; i < span; ++i) {
    uint64_t b = layout_.data_start +
                 ((start - layout_.data_start + i) % span);
    if (!TestBit(b)) {
      SetBit(b, true);
      --free_count_;
      return b;
    }
  }
  return Status::NoSpace("volume full");
}

StatusOr<uint64_t> BlockBitmap::AllocateRandom(Xoshiro* rng) {
  if (free_count_ == 0) return Status::NoSpace("volume full");
  uint64_t span = layout_.num_blocks - layout_.data_start;
  // Rejection sampling; bail to linear scan when the volume is nearly full
  // so allocation stays O(1) amortized instead of looping unboundedly.
  for (int attempt = 0; attempt < 64; ++attempt) {
    uint64_t b = layout_.data_start + rng->Uniform(span);
    if (!TestBit(b)) {
      SetBit(b, true);
      --free_count_;
      return b;
    }
  }
  return AllocateFirstFit(layout_.data_start + rng->Uniform(span));
}

StatusOr<uint64_t> BlockBitmap::AllocateByPolicy(AllocPolicy policy,
                                                 Xoshiro* rng) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  switch (policy) {
    case AllocPolicy::kContiguous: {
      STEGFS_ASSIGN_OR_RETURN(uint64_t b,
                              AllocateFirstFit(contiguous_cursor_));
      contiguous_cursor_ = b + 1;
      return b;
    }
    case AllocPolicy::kFragmented8: {
      if (fragment_remaining_ > 0 && fragment_next_ < layout_.num_blocks &&
          !TestBit(fragment_next_)) {
        uint64_t b = fragment_next_;
        SetBit(b, true);
        --free_count_;
        --fragment_remaining_;
        ++fragment_next_;
        return b;
      }
      // Start a new fragment at a pseudo-random scattered position.
      assert(rng != nullptr);
      uint64_t span = layout_.num_blocks - layout_.data_start;
      uint64_t start = layout_.data_start + rng->Uniform(span);
      STEGFS_ASSIGN_OR_RETURN(uint64_t b, AllocateFirstFit(start));
      fragment_remaining_ = 7;  // 7 more after this one = 8-block fragments
      fragment_next_ = b + 1;
      return b;
    }
    case AllocPolicy::kRandom:
      assert(rng != nullptr);
      return AllocateRandom(rng);
  }
  return Status::InvalidArgument("unknown allocation policy");
}

StatusOr<std::vector<uint64_t>> BlockBitmap::AllocateContiguous(
    uint64_t count) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (count == 0) return std::vector<uint64_t>{};
  if (count > free_count_) return Status::NoSpace("volume full");
  uint64_t run = 0;
  for (uint64_t b = layout_.data_start; b < layout_.num_blocks; ++b) {
    run = TestBit(b) ? 0 : run + 1;
    if (run == count) {
      std::vector<uint64_t> blocks(count);
      uint64_t first = b + 1 - count;
      for (uint64_t i = 0; i < count; ++i) {
        blocks[i] = first + i;
        SetBit(first + i, true);
      }
      free_count_ -= count;
      return blocks;
    }
  }
  return Status::NoSpace("no contiguous run of requested length");
}

}  // namespace stegfs
