// On-disk layout shared by PlainFs and StegFS.
//
//   block 0                     superblock
//   blocks 1 .. b               block bitmap (1 bit per block; 1 = in use)
//   blocks b+1 .. b+i           inode table ("central directory", paper 3.1)
//   blocks b+i+1 .. N-1         data region
//
// Hidden files live *inside the data region* exactly like plain file data —
// their blocks are marked in the bitmap but appear in no inode, which is the
// paper's core trick. The superblock stores the StegFS format parameters
// (Table 1); these are public by design: the threat model assumes the
// attacker knows the implementation and its configuration.
#ifndef STEGFS_FS_LAYOUT_H_
#define STEGFS_FS_LAYOUT_H_

#include <array>
#include <cstdint>

#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

inline constexpr uint32_t kSuperblockMagic = 0x53544647;  // "STFG"
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kInodeSize = 128;

// Table 1 of the paper: StegFS parameters with their published defaults.
struct StegParams {
  // "Percentage of abandoned blocks in the disk volume" — default 1%.
  double abandoned_fraction = 0.01;
  // "Minimum number of free blocks within a hidden file" — default 0.
  uint32_t free_pool_min = 0;
  // "Maximum number of free blocks within a hidden file" — default 10.
  uint32_t free_pool_max = 10;
  // "Number of dummy hidden files in the file system" — default 10.
  uint32_t dummy_file_count = 10;
  // "Average size of the dummy hidden files" — default 1 MB.
  uint64_t dummy_file_avg_bytes = 1 << 20;
};

// Region geometry, derivable from (block_size, num_blocks, num_inodes).
struct Layout {
  uint32_t block_size = 0;
  uint64_t num_blocks = 0;
  uint32_t num_inodes = 0;

  uint64_t bitmap_start = 0;
  uint64_t bitmap_blocks = 0;
  uint64_t inode_table_start = 0;
  uint64_t inode_table_blocks = 0;
  uint64_t data_start = 0;

  static Layout Compute(uint32_t block_size, uint64_t num_blocks,
                        uint32_t num_inodes);

  uint64_t data_blocks() const { return num_blocks - data_start; }
  bool IsDataBlock(uint64_t b) const {
    return b >= data_start && b < num_blocks;
  }
};

// The superblock: geometry + StegFS format parameters + the dummy-file
// maintenance seed. Serialized into block 0.
struct Superblock {
  uint32_t magic = kSuperblockMagic;
  uint32_t version = kFormatVersion;
  uint32_t block_size = 0;
  uint64_t num_blocks = 0;
  uint32_t num_inodes = 0;
  uint8_t steg_formatted = 0;  // 1 if the volume was random-filled at mkfs
  StegParams steg;
  // Seed for system-maintained dummy hidden files. Visible to an admin, as
  // the paper concedes (section 3.1: dummy files "could be vulnerable to an
  // attacker with administrator privileges").
  std::array<uint8_t, 32> dummy_seed = {};
  // Write-ahead journal ring: `journal_blocks` blocks starting at
  // `journal_start` (inside the data region, bitmap-marked at format).
  // 0/0 = no journal region (every pre-journal volume decodes this way —
  // the fields live in the superblock's zero padding). The region's
  // location is public, like all plain-FS metadata: at rest it holds only
  // scrub noise, and hidden-level journal state never enters it (see
  // docs/ARCHITECTURE.md "Journal & recovery").
  uint64_t journal_start = 0;
  uint32_t journal_blocks = 0;

  Layout ComputeLayout() const {
    return Layout::Compute(block_size, num_blocks, num_inodes);
  }

  // Serializes into a block-sized buffer (`size` >= 512).
  Status EncodeTo(uint8_t* buf, size_t size) const;
  static StatusOr<Superblock> DecodeFrom(const uint8_t* buf, size_t size);
};

}  // namespace stegfs

#endif  // STEGFS_FS_LAYOUT_H_
