// BlockStore: how file machinery (block mapper, directory code) touches
// blocks. Two implementations make the same mapping code serve both plain
// and hidden files:
//
//   CacheBlockStore     - plain blocks, straight through the buffer cache
//   EncryptedBlockStore - hidden blocks: AES-CBC-ESSIV encrypt on write,
//                         decrypt on read, keyed by the file's FAK
//
// BlockAllocator is the matching allocation seam: PlainFs allocates by
// bitmap policy; a hidden file allocates from its internal free-block pool
// (which refills from random bitmap allocations, per paper 3.1).
#ifndef STEGFS_FS_BLOCK_STORE_H_
#define STEGFS_FS_BLOCK_STORE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <vector>

#include "cache/buffer_cache.h"
#include "crypto/block_crypter.h"
#include "obs/trace.h"
#include "util/status.h"
#include "util/statusor.h"

namespace stegfs {

class BlockStore {
 public:
  virtual ~BlockStore() = default;
  virtual uint32_t block_size() const = 0;
  virtual Status ReadBlock(uint64_t block, uint8_t* buf) = 0;
  virtual Status WriteBlock(uint64_t block, const uint8_t* buf) = 0;

  // Batch transfers of n blocks to/from the contiguous buffer (request
  // order, n * block_size() bytes). Base implementation loops; the cache-
  // backed stores forward to the cache's vectored batch path.
  virtual Status ReadBlocks(const uint64_t* blocks, size_t n, uint8_t* out) {
    for (size_t i = 0; i < n; ++i) {
      STEGFS_RETURN_IF_ERROR(ReadBlock(blocks[i], out + i * block_size()));
    }
    return Status::OK();
  }
  virtual Status WriteBlocks(const uint64_t* blocks, size_t n,
                             const uint8_t* data) {
    for (size_t i = 0; i < n; ++i) {
      STEGFS_RETURN_IF_ERROR(WriteBlock(blocks[i], data + i * block_size()));
    }
    return Status::OK();
  }

  // Best-effort readahead hint; default is to ignore it.
  virtual void Prefetch(const uint64_t* blocks, size_t n) {
    (void)blocks;
    (void)n;
  }
};

class CacheBlockStore : public BlockStore {
 public:
  explicit CacheBlockStore(BufferCache* cache) : cache_(cache) {}
  uint32_t block_size() const override { return cache_->block_size(); }
  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    return cache_->Read(block, buf);
  }
  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    return cache_->Write(block, buf);
  }
  Status ReadBlocks(const uint64_t* blocks, size_t n,
                    uint8_t* out) override {
    return cache_->ReadBatch(blocks, n, out);
  }
  Status WriteBlocks(const uint64_t* blocks, size_t n,
                     const uint8_t* data) override {
    return cache_->WriteBatch(blocks, n, data);
  }
  void Prefetch(const uint64_t* blocks, size_t n) override {
    cache_->Prefetch(blocks, n);
  }

 private:
  BufferCache* cache_;
};

class EncryptedBlockStore : public BlockStore {
 public:
  // Sub-batch size of the async pipeline: small enough that four stages
  // fit comfortably inside one FileIo 256-block chunk, large enough that
  // a submission amortizes its bookkeeping.
  static constexpr size_t kAsyncSubBatch = 64;

  EncryptedBlockStore(BufferCache* cache, const crypto::BlockCrypter* crypter)
      : cache_(cache), crypter_(crypter) {}
  uint32_t block_size() const override { return cache_->block_size(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    STEGFS_RETURN_IF_ERROR(cache_->Read(block, buf));
    crypter_->DecryptBlock(block, buf, cache_->block_size());
    return Status::OK();
  }

  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    // Copy so the caller's plaintext buffer is left untouched.
    std::vector<uint8_t> tmp(buf, buf + cache_->block_size());
    crypter_->EncryptBlock(block, tmp.data(), tmp.size());
    return cache_->Write(block, tmp.data());
  }

  // Whole-extent fast path. Synchronous form: one vectored cache/device
  // transfer, then one pipelined batch decrypt/encrypt over the extent.
  // With an async engine attached to the cache and more than one
  // sub-batch of work, this becomes a 2-stage software pipeline over
  // kAsyncSubBatch-block sub-batches: while sub-batch i decrypts on the
  // CPU, sub-batch i+1's device I/O is in flight — the overlap that makes
  // random-placed hidden extents (which can never coalesce) fast.
  Status ReadBlocks(const uint64_t* blocks, size_t n,
                    uint8_t* out) override {
    const size_t bs = cache_->block_size();
    if (cache_->async_engine() == nullptr || n <= kAsyncSubBatch) {
      obs::Span span("store.read", "store");
      STEGFS_RETURN_IF_ERROR(cache_->ReadBatch(blocks, n, out));
      std::vector<crypto::CryptSpan> spans(n);
      for (size_t i = 0; i < n; ++i) spans[i] = {blocks[i], out + i * bs};
      crypter_->DecryptBlocks(spans.data(), n, bs);
      return Status::OK();
    }
    obs::Span pipeline_span("store.read_pipeline", "store");
    // Submit every sub-batch up front (they all target disjoint ranges of
    // `out`), then wait + decrypt in order: sub-batch i decrypts while
    // i+1..k are still in flight, and the engine sees the deepest
    // possible queue.
    std::vector<CacheIoTicket> tickets;
    tickets.reserve((n + kAsyncSubBatch - 1) / kAsyncSubBatch);
    for (size_t off = 0; off < n; off += kAsyncSubBatch) {
      const size_t count = std::min(n - off, kAsyncSubBatch);
      tickets.push_back(
          cache_->ReadBatchAsync(blocks + off, count, out + off * bs));
    }
    std::vector<crypto::CryptSpan> spans(kAsyncSubBatch);
    Status first;
    for (size_t t = 0, off = 0; t < tickets.size();
         ++t, off += kAsyncSubBatch) {
      Status s = tickets[t].Wait();
      if (!s.ok()) {
        if (first.ok()) first = s;
        continue;  // keep draining: `out` may be freed on return
      }
      if (!first.ok()) continue;  // don't decrypt past the first error
      obs::Span decrypt_span("store.decrypt_subbatch", "store");
      const size_t count = std::min(n - off, kAsyncSubBatch);
      for (size_t i = 0; i < count; ++i) {
        spans[i] = {blocks[off + i], out + (off + i) * bs};
      }
      crypter_->DecryptBlocks(spans.data(), count, bs);
    }
    return first;
  }

  Status WriteBlocks(const uint64_t* blocks, size_t n,
                     const uint8_t* data) override {
    const size_t bs = cache_->block_size();
    AsyncBlockDevice* engine = cache_->async_engine();
    if (engine == nullptr || n <= kAsyncSubBatch) {
      obs::Span span("store.write", "store");
      std::vector<uint8_t> tmp(data, data + n * bs);
      std::vector<crypto::CryptSpan> spans(n);
      for (size_t i = 0; i < n; ++i) {
        spans[i] = {blocks[i], tmp.data() + i * bs};
      }
      crypter_->EncryptBlocks(spans.data(), n, bs);
      return cache_->WriteBatch(blocks, n, tmp.data());
    }
    // Pipeline the mirror image: encrypt sub-batch i+1 while sub-batch
    // i's device write is in flight. Each sub-batch stages its
    // ciphertext in a leased span of the engine's registered arena when
    // one is available — the kernel then skips the per-op page pin
    // (IORING_OP_WRITE_FIXED) — falling back to heap staging when the
    // pool is exhausted or the engine has no arena.
    obs::Span pipeline_span("store.write_pipeline", "store");
    std::vector<uint8_t> tmp;  // heap fallback, sized lazily
    std::vector<crypto::CryptSpan> spans(kAsyncSubBatch);
    struct Staged {
      CacheIoTicket ticket;
      uint8_t* arena_span = nullptr;
    };
    std::vector<Staged> staged;
    staged.reserve((n + kAsyncSubBatch - 1) / kAsyncSubBatch);
    for (size_t off = 0; off < n; off += kAsyncSubBatch) {
      const size_t count = std::min(n - off, kAsyncSubBatch);
      uint8_t* span = engine->AcquireArenaSpan(count);
      uint8_t* stage = span;
      if (stage == nullptr) {
        if (tmp.empty()) tmp.resize(n * bs);
        stage = tmp.data() + off * bs;
      }
      std::memcpy(stage, data + off * bs, count * bs);
      for (size_t i = 0; i < count; ++i) {
        spans[i] = {blocks[off + i], stage + i * bs};
      }
      crypter_->EncryptBlocks(spans.data(), count, bs);
      Staged s;
      s.arena_span = span;
      s.ticket = cache_->WriteBatchAsync(blocks + off, count, stage);
      staged.push_back(std::move(s));
    }
    // Wait ALL before any staging memory dies; first error wins.
    Status first;
    for (Staged& s : staged) {
      Status st = s.ticket.Wait();
      if (first.ok() && !st.ok()) first = st;
      if (s.arena_span != nullptr) engine->ReleaseArenaSpan(s.arena_span);
    }
    return first;
  }

  // The cache holds ciphertext, so prefetched blocks decrypt on demand.
  void Prefetch(const uint64_t* blocks, size_t n) override {
    cache_->Prefetch(blocks, n);
  }

 private:
  BufferCache* cache_;
  const crypto::BlockCrypter* crypter_;
};

// Transaction-scoped log of the metadata blocks an operation writes
// in place (directory data blocks, indirect pointer blocks). `blocks`
// accumulates the touched block numbers for journal capture; `on_record`
// — when set — fires BEFORE the write reaches the store, so PlainFs can
// park the block in the journal's refcounted parked set before any
// concurrent flusher could push the uncommitted bytes to the device
// (record-before-write is what makes the park race-free).
struct MetaWriteLog {
  std::vector<uint64_t> blocks;
  std::function<void(uint64_t)> on_record;

  void Record(uint64_t block) {
    if (on_record) on_record(block);
    blocks.push_back(block);
  }
  void clear() { blocks.clear(); }
};

// Forwards to an inner store, recording the block number of every write
// into a caller-owned MetaWriteLog. PlainFs wraps its directory mutations
// with one so the journal transaction can capture directory data blocks
// (their in-place rewrites must commit atomically with the bitmap and
// inode images; see src/journal/journal.h). Reads pass straight through.
class RecordingStore : public BlockStore {
 public:
  RecordingStore(BlockStore* inner, MetaWriteLog* sink)
      : inner_(inner), sink_(sink) {}

  uint32_t block_size() const override { return inner_->block_size(); }
  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    return inner_->ReadBlock(block, buf);
  }
  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    sink_->Record(block);
    return inner_->WriteBlock(block, buf);
  }
  Status ReadBlocks(const uint64_t* blocks, size_t n,
                    uint8_t* out) override {
    return inner_->ReadBlocks(blocks, n, out);
  }
  Status WriteBlocks(const uint64_t* blocks, size_t n,
                     const uint8_t* data) override {
    for (size_t i = 0; i < n; ++i) sink_->Record(blocks[i]);
    return inner_->WriteBlocks(blocks, n, data);
  }
  void Prefetch(const uint64_t* blocks, size_t n) override {
    inner_->Prefetch(blocks, n);
  }

 private:
  BlockStore* inner_;
  MetaWriteLog* sink_;
};

class BlockAllocator {
 public:
  virtual ~BlockAllocator() = default;
  // Returns a block already marked allocated in the bitmap.
  virtual StatusOr<uint64_t> AllocateBlock() = 0;
  // Releases a block back (to the bitmap or to a hidden file's pool).
  virtual Status FreeBlock(uint64_t block) = 0;
};

// Coalesces repeated writes to the same block within one logical operation
// (read-your-writes semantics), flushing each block once, in ascending LBA
// order. FileIo::Write uses this so that indirect-pointer blocks — which
// are updated on every data-block allocation — reach the device once per
// operation instead of once per block, matching what any write-back buffer
// cache does and keeping sequential files sequential on the device.
class CoalescingStore : public BlockStore {
 public:
  explicit CoalescingStore(BlockStore* inner) : inner_(inner) {}

  uint32_t block_size() const override { return inner_->block_size(); }

  Status ReadBlock(uint64_t block, uint8_t* buf) override {
    auto it = pending_.find(block);
    if (it != pending_.end()) {
      std::memcpy(buf, it->second.data(), it->second.size());
      return Status::OK();
    }
    return inner_->ReadBlock(block, buf);
  }

  Status WriteBlock(uint64_t block, const uint8_t* buf) override {
    auto [it, inserted] = pending_.try_emplace(block);
    it->second.assign(buf, buf + inner_->block_size());
    return Status::OK();
  }

  // Serves pending blocks from memory and fetches the rest with one
  // vectored inner read.
  Status ReadBlocks(const uint64_t* blocks, size_t n,
                    uint8_t* out) override {
    const size_t bs = inner_->block_size();
    std::vector<uint64_t> missing;
    std::vector<size_t> missing_pos;
    for (size_t i = 0; i < n; ++i) {
      auto it = pending_.find(blocks[i]);
      if (it != pending_.end()) {
        std::memcpy(out + i * bs, it->second.data(), bs);
      } else {
        missing.push_back(blocks[i]);
        missing_pos.push_back(i);
      }
    }
    if (missing.empty()) return Status::OK();
    std::vector<uint8_t> buf(missing.size() * bs);
    STEGFS_RETURN_IF_ERROR(
        inner_->ReadBlocks(missing.data(), missing.size(), buf.data()));
    for (size_t j = 0; j < missing.size(); ++j) {
      std::memcpy(out + missing_pos[j] * bs, buf.data() + j * bs, bs);
    }
    return Status::OK();
  }

  void Prefetch(const uint64_t* blocks, size_t n) override {
    inner_->Prefetch(blocks, n);
  }

  // Writes all pending blocks through as ONE vectored batch, ascending by
  // LBA (std::map order) — a sequential extent reaches a coalescing device
  // as a single transfer.
  Status Flush() {
    if (pending_.empty()) return Status::OK();
    const size_t bs = inner_->block_size();
    std::vector<uint64_t> blocks;
    std::vector<uint8_t> data;
    blocks.reserve(pending_.size());
    data.reserve(pending_.size() * bs);
    for (const auto& [block, buf] : pending_) {
      blocks.push_back(block);
      data.insert(data.end(), buf.begin(), buf.end());
    }
    STEGFS_RETURN_IF_ERROR(
        inner_->WriteBlocks(blocks.data(), blocks.size(), data.data()));
    pending_.clear();
    return Status::OK();
  }

 private:
  BlockStore* inner_;
  std::map<uint64_t, std::vector<uint8_t>> pending_;
};

}  // namespace stegfs

#endif  // STEGFS_FS_BLOCK_STORE_H_
